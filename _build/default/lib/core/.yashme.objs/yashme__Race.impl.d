lib/core/race.ml: Format Px86
