lib/core/detector.ml: Exec_record Hashtbl List Px86 Race Yashme_util
