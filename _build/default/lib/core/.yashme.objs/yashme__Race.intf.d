lib/core/race.mli: Format Px86
