lib/core/detector.mli: Exec_record Px86 Race
