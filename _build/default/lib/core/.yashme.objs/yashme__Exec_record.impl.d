lib/core/exec_record.ml: Hashtbl Px86 Yashme_util
