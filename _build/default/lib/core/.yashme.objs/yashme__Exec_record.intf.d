lib/core/exec_record.mli: Px86 Yashme_util
