module Clockvec = Yashme_util.Clockvec

type flush_entry = { fe_tid : int; fe_lclk : int }

type t = {
  rid : int;
  storemap : (Px86.Addr.t, Px86.Event.store) Hashtbl.t;
  by_line : (int, Px86.Addr.t list ref) Hashtbl.t;
  flushmap : (int, flush_entry list ref) Hashtbl.t;
  lastflush : (int, Clockvec.t) Hashtbl.t;
  mutable cvpre : Clockvec.t;
}

let create ~id =
  {
    rid = id;
    storemap = Hashtbl.create 256;
    by_line = Hashtbl.create 64;
    flushmap = Hashtbl.create 256;
    lastflush = Hashtbl.create 64;
    cvpre = Clockvec.empty;
  }

let id t = t.rid
let store_at t addr = Hashtbl.find_opt t.storemap addr

let set_store t (s : Px86.Event.store) =
  let addr = s.Px86.Event.addr in
  if not (Hashtbl.mem t.storemap addr) then begin
    let line = Px86.Addr.line addr in
    let addrs =
      match Hashtbl.find_opt t.by_line line with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add t.by_line line r;
          r
    in
    addrs := addr :: !addrs
  end;
  Hashtbl.replace t.storemap addr s

let line_addrs t line =
  match Hashtbl.find_opt t.by_line line with Some r -> !r | None -> []

let flushes_of t seq =
  match Hashtbl.find_opt t.flushmap seq with Some r -> !r | None -> []

let add_flush t ~seq entry =
  match Hashtbl.find_opt t.flushmap seq with
  | Some r -> r := entry :: !r
  | None -> Hashtbl.add t.flushmap seq (ref [ entry ])

let lastflush t ~line =
  match Hashtbl.find_opt t.lastflush line with Some cv -> cv | None -> Clockvec.empty

let join_lastflush t ~line cv =
  Hashtbl.replace t.lastflush line (Clockvec.join (lastflush t ~line) cv)

let cvpre t = t.cvpre
let join_cvpre t cv = t.cvpre <- Clockvec.join t.cvpre cv
