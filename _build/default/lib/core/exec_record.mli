(** Per-execution state of the Yashme detector (paper, section 6).

    Each execution [e] on the stack of a failure scenario owns:
    - [storemap]: the latest committed store to each address,
    - [flushmap]: for each store (by commit sequence number), the flushes
      that made it durable, recorded as the flushing/fencing thread and
      that thread's local clock,
    - [lastflush]: per cache line, a clock-vector lower bound on when the
      line was last written back — derived from post-crash reads of
      atomic stores (cache coherence, Figure 5(a)),
    - [cvpre]: the clock vector bounding the smallest pre-crash prefix
      consistent with everything the post-crash execution has observed
      (the key to prefix-based expansion, section 5.1). *)

type flush_entry = {
  fe_tid : int;  (** thread that performed the flush (or its fence) *)
  fe_lclk : int;  (** that thread's local clock at the flush/fence *)
}

type t

val create : id:int -> t
val id : t -> int

(** Latest committed store to [addr], if any. *)
val store_at : t -> Px86.Addr.t -> Px86.Event.store option

(** Record a committed store (detector-side [storemap] update). *)
val set_store : t -> Px86.Event.store -> unit

(** Addresses on [line] present in the storemap. *)
val line_addrs : t -> int -> Px86.Addr.t list

(** Flush entries recorded for the store with commit number [seq]. *)
val flushes_of : t -> int -> flush_entry list

val add_flush : t -> seq:int -> flush_entry -> unit

val lastflush : t -> line:int -> Yashme_util.Clockvec.t
val join_lastflush : t -> line:int -> Yashme_util.Clockvec.t -> unit

val cvpre : t -> Yashme_util.Clockvec.t
val join_cvpre : t -> Yashme_util.Clockvec.t -> unit
