(** The Yashme persistency-race detection algorithm (paper, section 6).

    One detector instance spans a whole failure scenario (a stack of
    executions separated by crashes).  During each pre-crash execution it
    consumes machine events through {!observer} to build that execution's
    {!Exec_record.t}; during each post-crash execution, {!load_atomic}
    and {!load_non_atomic} implement Figure 9 against the record of the
    execution the observed store belongs to.

    [mode] selects prefix-based expansion (the paper's contribution,
    section 4.2) or the baseline core algorithm that only detects a race
    when the crash landed in the store-to-flush window; Table 5 compares
    the two.

    Two further switches support the paper's discussion and our
    ablations:
    - [eadr] adapts the detector to eADR systems (section 7.5), where
      reaching the cache already guarantees persistence: the flush
      conditions (3)-(4) of Definition 5.1 are replaced by "the store's
      cache commit lies inside every consistent prefix".  eADR findings
      are always a subset of non-eADR findings, as the paper argues.
    - [coherence] disables condition (2) (the [lastflush] cache-line
      coherence argument, Figure 5(a)) to measure how many false
      positives it suppresses. *)

type mode = Prefix | Baseline

type t

val create : ?mode:mode -> ?eadr:bool -> ?coherence:bool -> unit -> t
val mode : t -> mode
val eadr : t -> bool

(** Races reported so far, oldest first. *)
val races : t -> Race.t list

(** Begin recording execution [id]; subsequent machine events are
    attributed to it.  Returns its fresh record. *)
val begin_exec : t -> id:int -> Exec_record.t

(** The record of a (begun) execution.  Executions never registered are
    treated as trusted boot data: loads from their stores are never
    race-checked. *)
val record : t -> id:int -> Exec_record.t option

(** Machine observer feeding the *current* execution's record; pass it
    in the machine config. *)
val observer : t -> Px86.Observer.t

(** Figure 9, [Load_Atomic]: a post-crash load observed an atomic
    (release) store of execution [exec].  Updates [lastflush] for the
    store's cache line and [CVpre]. *)
val load_atomic : t -> exec:int -> store:Px86.Event.store -> unit

(** Figure 9, [Load_NonAtomic]: check one pre-crash store a post-crash
    load reads (or could read) from.  [commit] is true for the store the
    execution actually read — only committed reads advance [CVpre].
    Reports (and returns) a race when the store is neither covered by
    coherence ([lastflush]) nor flushed within the consistent prefix
    (prefix mode) / flushed at all before the crash (baseline mode). *)
val load_non_atomic :
  t -> exec:int -> store:Px86.Event.store -> load_addr:Px86.Addr.t ->
  load_size:int -> load_tid:int -> load_exec:int -> commit:bool -> benign:bool ->
  Race.t option
