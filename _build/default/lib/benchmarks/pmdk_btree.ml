open Pm_runtime

(* Node: n@0, leaf@8, keys@16 (order x 8), vals@(16+8*order),
   children@(16+16*order) (order+1 pointers).
   Pool root object: root_node@0. *)

let order = 4
let o_keys = 16
let o_vals n_keys = 16 + (8 * n_keys)
let o_children n_keys = 16 + (16 * n_keys)
let node_bytes = 16 + (16 * order) + (8 * (order + 1))

type t = Pmdk_pool.t

let nkeys node = Pmem.load_int node
let is_leaf node = Pmem.load_int (node + 8) = 1
let key_at node i = Pmem.load_int (node + o_keys + (8 * i))
let val_at node i = Pmem.load_int (node + o_vals order + (8 * i))
let child_at node i = Pmem.load_int (node + o_children order + (8 * i))

let set_nkeys p node v = Pmdk_pool.tx_store p node (Int64.of_int v)
let set_leaf p node v = Pmdk_pool.tx_store p (node + 8) (if v then 1L else 0L)
let set_key p node i k = Pmdk_pool.tx_store p (node + o_keys + (8 * i)) (Int64.of_int k)
let set_val p node i v = Pmdk_pool.tx_store p (node + o_vals order + (8 * i)) (Int64.of_int v)
let set_child p node i c = Pmdk_pool.tx_store p (node + o_children order + (8 * i)) (Int64.of_int c)

let new_node p ~leaf =
  let n = Pmdk_pool.tx_alloc p ~align:64 node_bytes in
  set_nkeys p n 0;
  set_leaf p n leaf;
  n

let create () =
  let p = Pmdk_pool.create ~root_size:8 in
  Pmdk_pool.tx p (fun () ->
      let root = new_node p ~leaf:true in
      Pmdk_pool.tx_store p (Pmdk_pool.root p) (Int64.of_int root));
  p

let open_existing () = Pmdk_pool.open_pool ()

let root_node p = Pmem.load_int (Pmdk_pool.root p)

(* In-transaction views must read through the redo log. *)
let tnkeys p node = Int64.to_int (Pmdk_pool.tx_load p node)
let tkey p node i = Int64.to_int (Pmdk_pool.tx_load p (node + o_keys + (8 * i)))
let tval p node i = Int64.to_int (Pmdk_pool.tx_load p (node + o_vals order + (8 * i)))
let tchild p node i = Int64.to_int (Pmdk_pool.tx_load p (node + o_children order + (8 * i)))
let tleaf p node = Pmdk_pool.tx_load p (node + 8) = 1L

(* Split child [i] of [parent] (child is full). *)
let split_child p parent i child =
  let m = order / 2 in
  let leaf = tleaf p child in
  let sib = new_node p ~leaf in
  let moved = order - m - 1 in
  for j = 0 to moved - 1 do
    set_key p sib j (tkey p child (m + 1 + j));
    set_val p sib j (tval p child (m + 1 + j))
  done;
  if not leaf then
    for j = 0 to moved do
      set_child p sib j (tchild p child (m + 1 + j))
    done;
  set_nkeys p sib moved;
  set_nkeys p child m;
  (* Shift the parent's keys/children right of slot i. *)
  let pn = tnkeys p parent in
  for j = pn - 1 downto i do
    set_key p parent (j + 1) (tkey p parent j);
    set_val p parent (j + 1) (tval p parent j);
    set_child p parent (j + 2) (tchild p parent (j + 1))
  done;
  set_key p parent i (tkey p child m);
  set_val p parent i (tval p child m);
  set_child p parent (i + 1) sib;
  set_nkeys p parent (pn + 1)

let rec insert_nonfull p node key value =
  let n = tnkeys p node in
  if tleaf p node then begin
    let rec pos i = if i < n && tkey p node i < key then pos (i + 1) else i in
    let at = pos 0 in
    if at < n && tkey p node at = key then set_val p node at value
    else begin
      for j = n - 1 downto at do
        set_key p node (j + 1) (tkey p node j);
        set_val p node (j + 1) (tval p node j)
      done;
      set_key p node at key;
      set_val p node at value;
      set_nkeys p node (n + 1)
    end
  end
  else begin
    let rec pos i = if i < n && tkey p node i < key then pos (i + 1) else i in
    let at = pos 0 in
    if at < n && tkey p node at = key then set_val p node at value
    else begin
      let child = tchild p node at in
      if tnkeys p child = order then begin
        split_child p node at child;
        let at = if tkey p node at < key then at + 1 else at in
        insert_nonfull p (tchild p node at) key value
      end
      else insert_nonfull p child key value
    end
  end

let insert p ~key ~value =
  Pmdk_pool.tx p (fun () ->
      let root = Int64.to_int (Pmdk_pool.tx_load p (Pmdk_pool.root p)) in
      if tnkeys p root = order then begin
        let new_root = new_node p ~leaf:false in
        set_child p new_root 0 root;
        split_child p new_root 0 root;
        Pmdk_pool.tx_store p (Pmdk_pool.root p) (Int64.of_int new_root);
        insert_nonfull p new_root key value
      end
      else insert_nonfull p root key value)

let lookup p ~key =
  let rec go node =
    if node = 0 then None
    else begin
      let n = nkeys node in
      let rec pos i = if i < n && key_at node i < key then pos (i + 1) else i in
      let at = pos 0 in
      if at < n && key_at node at = key then Some (val_at node at)
      else if is_leaf node then None
      else go (child_at node at)
    end
  in
  go (root_node p)

let scan p =
  let rec go node acc =
    if node = 0 then acc
    else begin
      let n = nkeys node in
      if is_leaf node then
        List.fold_left (fun acc i -> (key_at node i, val_at node i) :: acc)
          acc (List.init n (fun i -> i))
      else begin
        let acc = go (child_at node 0) acc in
        List.fold_left
          (fun acc i -> go (child_at node (i + 1)) ((key_at node i, val_at node i) :: acc))
          acc (List.init n (fun i -> i))
      end
    end
  in
  List.sort compare (go (root_node p) [])

let workload = [ (10, 1); (20, 2); (5, 3); (6, 4); (12, 5); (30, 6); (7, 7); (17, 8) ]

let program =
  Pm_harness.Program.make ~name:"Btree"
    ~setup:(fun () -> ignore (create ()))
    ~pre:(fun () ->
      let p = Pmdk_pool.open_pool () in
      List.iter (fun (k, v) -> insert p ~key:k ~value:v) workload)
    ~post:(fun () ->
      let p = open_existing () in
      List.iter (fun (k, _) -> ignore (lookup p ~key:k)) workload;
      ignore (scan p))
    ()
