open Pm_runtime

(* Pool root object: count@0, buckets@8.. (buckets x 8).
   Entry: key@0, value@8, next@16. *)

type t = Pmdk_pool.t

let buckets = 8
let entry_bytes = 24

let create_tx () = Pmdk_pool.create ~root_size:(8 + (8 * buckets))
let create_atomic () = create_tx ()
let open_existing () = Pmdk_pool.open_pool ()

let bucket_slot p key = Pmdk_pool.root p + 8 + (8 * (Bench_util.hash64 key land (buckets - 1)))

let insert_tx p ~key ~value =
  Pmdk_pool.tx p (fun () ->
      let slot = bucket_slot p key in
      let head = Pmdk_pool.tx_load p slot in
      let e = Pmdk_pool.tx_alloc p ~align:32 entry_bytes in
      Pmdk_pool.tx_store p e (Int64.of_int key);
      Pmdk_pool.tx_store p (e + 8) (Int64.of_int value);
      Pmdk_pool.tx_store p (e + 16) head;
      Pmdk_pool.tx_store p slot (Int64.of_int e);
      let c = Pmdk_pool.tx_load p (Pmdk_pool.root p) in
      Pmdk_pool.tx_store p (Pmdk_pool.root p) (Int64.add c 1L))

(* hashmap_atomic: persist the entry out of place, then publish the
   bucket pointer and count through the allocator's redo log, mirroring
   POBJ_LIST_INSERT_NEW_HEAD. *)
let insert_atomic p ~key ~value =
  let slot = bucket_slot p key in
  let head = Pmem.load slot in
  let e = Pmem.alloc ~align:32 entry_bytes in
  Pmem.store e (Int64.of_int key);
  Pmem.store (e + 8) (Int64.of_int value);
  Pmem.store (e + 16) head;
  Pmem.persist e entry_bytes;
  let log = Pmdk_pool.ulog p in
  Pmdk_ulog.append log ~offset:slot ~value:(Int64.of_int e);
  Pmdk_ulog.append log ~offset:(Pmdk_pool.root p)
    ~value:(Int64.add (Pmem.load (Pmdk_pool.root p)) 1L);
  Pmdk_ulog.commit log;
  Pmdk_ulog.apply log;
  Pmdk_ulog.clear log

let lookup p ~key =
  let rec chase e =
    if e = 0 then None
    else if Pmem.load_int e = key then Some (Pmem.load_int (e + 8))
    else chase (Pmem.load_int (e + 16))
  in
  chase (Pmem.load_int (bucket_slot p key))

let count p = Pmem.load_int (Pmdk_pool.root p)

let workload = [ (14, 1); (25, 2); (33, 3); (47, 4); (58, 5); (66, 6) ]

let reader () =
  let p = open_existing () in
  ignore (count p);
  List.iter (fun (k, _) -> ignore (lookup p ~key:k)) workload

let program_tx =
  Pm_harness.Program.make ~name:"hashmap-tx"
    ~setup:(fun () -> ignore (create_tx ()))
    ~pre:(fun () ->
      let p = Pmdk_pool.open_pool () in
      List.iter (fun (k, v) -> insert_tx p ~key:k ~value:v) workload)
    ~post:reader ()

let program_atomic =
  Pm_harness.Program.make ~name:"hashmap-atomic"
    ~setup:(fun () -> ignore (create_atomic ()))
    ~pre:(fun () ->
      let p = Pmdk_pool.open_pool () in
      List.iter (fun (k, v) -> insert_atomic p ~key:k ~value:v) workload)
    ~post:reader ()
