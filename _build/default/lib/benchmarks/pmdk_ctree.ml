open Pm_runtime

(* Crit-bit tree.  Internal node: tag@0 = 1, bit@8, left@16, right@24.
   Leaf: tag@0 = 2, key@8, value@16.  Pool root object: tree_root@0. *)

type t = Pmdk_pool.t

let node_bytes = 32

let tag node = Pmem.load_int node
let leaf_key node = Pmem.load_int (node + 8)
let leaf_val node = Pmem.load_int (node + 16)
let crit_bit node = Pmem.load_int (node + 8)
let left node = Pmem.load_int (node + 16)
let right node = Pmem.load_int (node + 24)

let new_leaf p ~key ~value =
  let n = Pmdk_pool.tx_alloc p ~align:32 node_bytes in
  Pmdk_pool.tx_store p n 2L;
  Pmdk_pool.tx_store p (n + 8) (Int64.of_int key);
  Pmdk_pool.tx_store p (n + 16) (Int64.of_int value);
  n

let create () =
  let p = Pmdk_pool.create ~root_size:8 in
  p

let open_existing () = Pmdk_pool.open_pool ()

let root_of p = Pmem.load_int (Pmdk_pool.root p)

let highest_diff_bit a b =
  let x = a lxor b in
  let rec go i = if i < 0 then -1 else if x land (1 lsl i) <> 0 then i else go (i - 1) in
  go 62

let insert p ~key ~value =
  Pmdk_pool.tx p (fun () ->
      let troot = Int64.to_int (Pmdk_pool.tx_load p (Pmdk_pool.root p)) in
      if troot = 0 then begin
        let leaf = new_leaf p ~key ~value in
        Pmdk_pool.tx_store p (Pmdk_pool.root p) (Int64.of_int leaf)
      end
      else begin
        let tleft n = Int64.to_int (Pmdk_pool.tx_load p (n + 16)) in
        let tright n = Int64.to_int (Pmdk_pool.tx_load p (n + 24)) in
        let ttag n = Int64.to_int (Pmdk_pool.tx_load p n) in
        let tbit n = Int64.to_int (Pmdk_pool.tx_load p (n + 8)) in
        (* Find the closest leaf. *)
        let rec descend n = if ttag n = 2 then n else descend (if key land (1 lsl tbit n) <> 0 then tright n else tleft n) in
        let closest = descend troot in
        let ckey = Int64.to_int (Pmdk_pool.tx_load p (closest + 8)) in
        if ckey = key then Pmdk_pool.tx_store p (closest + 16) (Int64.of_int value)
        else begin
          let bit = highest_diff_bit key ckey in
          let leaf = new_leaf p ~key ~value in
          (* Walk again, stopping where the crit-bit order places us. *)
          let rec place parent_slot n =
            if ttag n = 2 || tbit n < bit then begin
              let inner = Pmdk_pool.tx_alloc p ~align:32 node_bytes in
              Pmdk_pool.tx_store p inner 1L;
              Pmdk_pool.tx_store p (inner + 8) (Int64.of_int bit);
              let goes_right = key land (1 lsl bit) <> 0 in
              Pmdk_pool.tx_store p (inner + 16) (Int64.of_int (if goes_right then n else leaf));
              Pmdk_pool.tx_store p (inner + 24) (Int64.of_int (if goes_right then leaf else n));
              Pmdk_pool.tx_store p parent_slot (Int64.of_int inner)
            end
            else
              let slot = if key land (1 lsl tbit n) <> 0 then n + 24 else n + 16 in
              place slot (Int64.to_int (Pmdk_pool.tx_load p slot))
          in
          place (Pmdk_pool.root p) troot
        end
      end)

(* Crit-bit deletion: splice the leaf's sibling into the grandparent
   slot, all inside one transaction. *)
let remove p ~key =
  Pmdk_pool.tx p (fun () ->
      let ttag n = Int64.to_int (Pmdk_pool.tx_load p n) in
      let tbit n = Int64.to_int (Pmdk_pool.tx_load p (n + 8)) in
      let tslot slot = Int64.to_int (Pmdk_pool.tx_load p slot) in
      let troot = tslot (Pmdk_pool.root p) in
      if troot <> 0 then
        if ttag troot = 2 then begin
          if Int64.to_int (Pmdk_pool.tx_load p (troot + 8)) = key then
            Pmdk_pool.tx_store p (Pmdk_pool.root p) 0L
        end
        else begin
          let rec descend parent_slot n =
            let child_slot = if key land (1 lsl tbit n) <> 0 then n + 24 else n + 16 in
            let child = tslot child_slot in
            if ttag child = 2 then begin
              if Int64.to_int (Pmdk_pool.tx_load p (child + 8)) = key then begin
                let sibling_slot =
                  if child_slot = n + 24 then n + 16 else n + 24
                in
                Pmdk_pool.tx_store p parent_slot
                  (Int64.of_int (tslot sibling_slot))
              end
            end
            else descend child_slot child
          in
          descend (Pmdk_pool.root p) troot
        end)

let lookup p ~key =
  let rec go n =
    if n = 0 then None
    else if tag n = 2 then if leaf_key n = key then Some (leaf_val n) else None
    else go (if key land (1 lsl crit_bit n) <> 0 then right n else left n)
  in
  go (root_of p)

let workload = [ (0b1010, 1); (0b0110, 2); (0b1111, 3); (0b0001, 4); (0b1001, 5) ]

let program =
  Pm_harness.Program.make ~name:"Ctree"
    ~setup:(fun () -> ignore (create ()))
    ~pre:(fun () ->
      let p = Pmdk_pool.open_pool () in
      List.iter (fun (k, v) -> insert p ~key:k ~value:v) workload;
      remove p ~key:0b0110)
    ~post:(fun () ->
      let p = open_existing () in
      List.iter (fun (k, _) -> ignore (lookup p ~key:k)) workload)
    ()
