(** P-CLHT: the RECIPE port of the Cache-Line Hash Table.

    P-CLHT is the one benchmark in which Yashme found {e no} persistency
    races (Tables 3 and 5): its lock-free design declares every critical
    field volatile, so all key/value/lock stores compile to single
    atomic instructions.  This port marks them all atomic accordingly. *)

type t

val create : unit -> t
val open_existing : unit -> t

(** Always succeeds; overflowing a bucket triggers a CLHT-style resize
    (new table built aside, persisted, then published atomically). *)
val insert : t -> key:int -> value:int -> bool

val get : t -> key:int -> int option

(** Current bucket count (doubles on resize). *)
val buckets : t -> int

val program : Pm_harness.Program.t
