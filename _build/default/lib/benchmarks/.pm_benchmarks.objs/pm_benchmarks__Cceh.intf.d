lib/benchmarks/cceh.mli: Pm_harness
