lib/benchmarks/p_bwtree.ml: Bench_util Int64 List Pm_harness Pm_runtime Pmem Px86
