lib/benchmarks/p_masstree.mli: Pm_harness
