lib/benchmarks/registry.ml: Cceh Fast_fair List Memcached P_art P_bwtree P_clht P_masstree Pm_harness Pmdk_btree Pmdk_ctree Pmdk_hashmap Pmdk_rbtree Redis String
