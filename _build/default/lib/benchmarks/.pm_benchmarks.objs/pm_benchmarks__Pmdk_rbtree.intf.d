lib/benchmarks/pmdk_rbtree.mli: Pm_harness
