lib/benchmarks/registry.mli: Pm_harness
