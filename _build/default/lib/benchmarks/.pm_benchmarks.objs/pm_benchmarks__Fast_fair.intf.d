lib/benchmarks/fast_fair.mli: Pm_harness
