lib/benchmarks/pmdk_undolog.mli: Px86
