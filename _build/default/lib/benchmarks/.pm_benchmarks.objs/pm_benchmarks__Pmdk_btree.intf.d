lib/benchmarks/pmdk_btree.mli: Pm_harness
