lib/benchmarks/pmdk_ulog.ml: Bench_util Int64 List Pm_runtime Pmem Px86
