lib/benchmarks/pmdk_hashmap.ml: Bench_util Int64 List Pm_harness Pm_runtime Pmdk_pool Pmdk_ulog Pmem
