lib/benchmarks/memcached.mli: Pm_harness
