lib/benchmarks/p_clht.mli: Pm_harness
