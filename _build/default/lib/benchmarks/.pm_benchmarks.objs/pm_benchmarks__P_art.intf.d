lib/benchmarks/p_art.mli: Pm_harness
