lib/benchmarks/p_bwtree.mli: Pm_harness Px86
