lib/benchmarks/redis.mli: Pm_harness
