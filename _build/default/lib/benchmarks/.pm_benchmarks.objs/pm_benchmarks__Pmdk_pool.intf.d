lib/benchmarks/pmdk_pool.mli: Pmdk_ulog Px86
