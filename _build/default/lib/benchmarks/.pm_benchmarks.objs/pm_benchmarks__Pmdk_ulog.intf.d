lib/benchmarks/pmdk_ulog.mli: Px86
