lib/benchmarks/pmdk_btree.ml: Int64 List Pm_harness Pm_runtime Pmdk_pool Pmem
