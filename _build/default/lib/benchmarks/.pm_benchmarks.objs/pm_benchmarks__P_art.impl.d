lib/benchmarks/p_art.ml: Int64 List Pm_harness Pm_runtime Pmem Px86
