lib/benchmarks/pmdk_ctree.mli: Pm_harness
