lib/benchmarks/cceh.ml: Bench_util Hashtbl Int64 List Pm_harness Pm_runtime Pmem Px86
