lib/benchmarks/pmdk_pool.ml: Int64 List Pm_runtime Pmdk_ulog Pmdk_undolog Pmem Px86
