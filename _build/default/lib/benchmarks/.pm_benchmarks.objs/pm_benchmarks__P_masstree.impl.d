lib/benchmarks/p_masstree.ml: Int64 List Pm_harness Pm_runtime Pmem Px86
