lib/benchmarks/bench_util.mli: Px86
