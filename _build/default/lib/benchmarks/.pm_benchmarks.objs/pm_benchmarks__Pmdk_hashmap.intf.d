lib/benchmarks/pmdk_hashmap.mli: Pm_harness
