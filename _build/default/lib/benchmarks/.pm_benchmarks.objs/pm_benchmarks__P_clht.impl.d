lib/benchmarks/p_clht.ml: Bench_util Int64 List Pm_harness Pm_runtime Pmem Px86
