lib/benchmarks/fast_fair.ml: Int64 List Pm_harness Pm_runtime Pmem Px86
