lib/benchmarks/redis.ml: Bench_util Hashtbl Int64 List Pm_harness Pm_runtime Pmdk_pool Pmem Px86 String
