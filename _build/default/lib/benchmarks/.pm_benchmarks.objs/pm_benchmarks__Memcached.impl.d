lib/benchmarks/memcached.ml: Bench_util Hashtbl Int64 List Option Pm_harness Pm_runtime Pmem Px86 String
