lib/benchmarks/bench_util.ml: Char Int64 Pm_runtime String
