lib/benchmarks/pmdk_undolog.ml: Bench_util Int64 List Pm_runtime Pmdk_ulog Pmem Px86
