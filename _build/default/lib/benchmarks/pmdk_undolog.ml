open Pm_runtime

type t = Px86.Addr.t

(* Layout mirrors Pmdk_ulog: next@0, checksum@8, sealed@16 (atomic),
   gen@24 (atomic), entries@32: capacity x { addr_size@0; value@8 },
   where addr_size packs (addr lsl 4) lor size. *)

let capacity = 64
let entry_size = 16
let o_entries = 32
let log_bytes = o_entries + (capacity * entry_size)

let create () =
  let log = Pmem.alloc ~align:64 log_bytes in
  Pmem.persist log log_bytes;
  log

let used t = Pmem.load_int t
let entry_addr t i = t + o_entries + (i * entry_size)

let snapshot_word t ~addr ~size =
  let n = used t / entry_size in
  if n >= capacity then failwith "Pmdk_undolog: log full";
  let old = Pmem.load ~size addr in
  let e = entry_addr t n in
  Pmem.store ~label:Pmdk_ulog.label_data e (Int64.of_int ((addr lsl 4) lor size));
  Pmem.store ~label:Pmdk_ulog.label_data (e + 8) old;
  Pmem.persist e entry_size;
  (* The shared racy entry pointer of ulog.c. *)
  Pmem.store_int ~label:Pmdk_ulog.label_next t ((n + 1) * entry_size)

let add_range t ~addr ~size =
  let rec go off =
    if off < size then begin
      let chunk = min 8 (size - off) in
      snapshot_word t ~addr:(addr + off) ~size:chunk;
      go (off + chunk)
    end
  in
  go 0;
  Pmem.persist t 8

let entries t =
  let n = used t / entry_size in
  List.init n (fun i ->
      let e = entry_addr t i in
      let packed = Pmem.load_int e in
      (packed lsr 4, Pmem.load (e + 8), packed land 0xF))

let checksum_of t =
  let n = used t in
  Bench_util.checksum_range (t + o_entries) (max 8 n)

let seal t =
  Pmem.store ~label:Pmdk_ulog.label_checksum (t + 8) (checksum_of t);
  Pmem.persist (t + 8) 8;
  Pmem.store ~atomic:Px86.Access.Release (t + 16) 1L;
  Pmem.persist (t + 16) 8

let discard t =
  Pmem.store ~atomic:Px86.Access.Release (t + 16) 0L;
  Pmem.persist (t + 16) 8;
  Pmem.store_int ~label:Pmdk_ulog.label_next t 0;
  Pmem.persist t 8;
  let gen = Pmem.load ~atomic:Px86.Access.Acquire (t + 24) in
  Pmem.store ~atomic:Px86.Access.Release (t + 24) (Int64.add gen 1L);
  Pmem.persist (t + 24) 8

let rollback t =
  (* Snapshot payloads are checksum-guarded data: read under validation
     (races on them are benign, section 7.5), then restore. *)
  let snaps = Pmem.validating (fun () -> entries t) in
  List.iter
    (fun (addr, old, size) ->
      Pmem.store ~size addr old;
      Pmem.persist addr size)
    snaps

let recover t =
  ignore (Pmem.load ~atomic:Px86.Access.Acquire (t + 24)) (* lane gen *);
  let n = used t in
  if n = 0 then false
  else begin
    let sealed = Pmem.load ~atomic:Px86.Access.Acquire (t + 16) = 1L in
    if sealed then begin
      (* The transaction had committed: its in-place stores are durable
         (persisted before the seal), so just drop the log. *)
      discard t;
      false
    end
    else begin
      (* Uncommitted: restore the snapshots.  Every entry was persisted
         before its range was modified (add_range persists eagerly), so
         rollback is always safe; the checksum detects a torn tail. *)
      ignore (Pmem.validating (fun () -> Pmem.load (t + 8) = checksum_of t));
      rollback t;
      discard t;
      true
    end
  end
