(** PMDK's [rbtree] example: a red-black tree with parent pointers,
    updated inside libpmemobj transactions (Table 5 "RBtree": the ulog
    entry-pointer race). *)

type t

val create : unit -> t

(** Reopen the pool, running log recovery. *)
val open_existing : unit -> t

val insert : t -> key:int -> value:int -> unit
val lookup : t -> key:int -> int option

(** In-order traversal; also checks the red-black invariants and raises
    [Failure] if they are violated (used by the tests). *)
val check_and_scan : t -> (int * int) list

val program : Pm_harness.Program.t
