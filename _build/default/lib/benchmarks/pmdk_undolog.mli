(** PMDK-style undo log: the other transaction flavour of libpmemobj.

    Where the redo log ({!Pmdk_ulog}) buffers new values and applies
    them at commit, the undo log snapshots the {e old} contents of a
    range before the transaction modifies it in place
    ([pmemobj_tx_add_range]).  On a crash before commit, recovery rolls
    the snapshots back; at commit the modified ranges are persisted and
    the log is discarded.

    The log shares the redo log's layout discipline — and its racy entry
    pointer (the same "pointer to ulog_entry in ulog.c" bug, which lives
    in the shared ulog.c machinery of the real library). *)

type t = Px86.Addr.t

val capacity : int

val create : unit -> t

(** [add_range t ~addr ~size] snapshots [size] bytes (multiple entries
    for ranges wider than 8 bytes) before the caller overwrites them. *)
val add_range : t -> addr:Px86.Addr.t -> size:int -> unit

(** Entries snapshotted so far: (address, old value, size). *)
val entries : t -> (Px86.Addr.t * int64 * int) list

(** Seal the log (checksum + commit flag), making rollback impossible:
    called at the start of commit processing. *)
val seal : t -> unit

(** Discard the log after the transaction's stores are persisted. *)
val discard : t -> unit

(** Post-crash recovery: an unsealed non-empty log is rolled back
    (restoring the snapshots); a sealed one is simply discarded.
    Returns [true] when a rollback happened. *)
val recover : t -> bool
