(** Shared helpers for the benchmark implementations. *)

(** Deterministic 64-bit hash used by the index benchmarks. *)
val hash64 : int -> int

(** Checksum over a PM byte range, used by the PMDK-style
    checksum-validation strategy (paper, section 7.5).  Reads the range
    through {!Pm_runtime.Pmem.load}. *)
val checksum_range : Px86.Addr.t -> int -> int64

(** Fletcher-style checksum of a string (for volatile-side checks). *)
val checksum_string : string -> int64
