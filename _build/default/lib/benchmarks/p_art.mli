(** P-ART: the RECIPE port of the Adaptive Radix Tree, with the
    epoch-based node reclamation of the original ([Epoche.h]).

    Reproduces the seven persistency races of Table 3 (#9–#15): the
    plain stores to [compactCount] and [count] in the node header
    ([N.h]) and to the [DeletionList]/[LabelDelete] bookkeeping fields
    of the epoch-based memory reclamation ([Epoche.h]) — the latter
    belong to the crash-inconsistent allocator the RECIPE authors
    acknowledged (paper, section 7.4). *)

type t

val create : unit -> t
val open_existing : unit -> t
val insert : t -> key:int -> value:int -> unit
val lookup : t -> key:int -> int option
val remove : t -> key:int -> unit

(** Recovery traversal: node headers, children, and deletion lists. *)
val recover_scan : t -> int  (** number of live leaves found *)

val program : Pm_harness.Program.t
