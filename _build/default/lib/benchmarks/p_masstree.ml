open Pm_runtime

type t = Px86.Addr.t

(* Single-layer masstree over int keys: a sorted linked list of B+ leaf
   nodes (enough to exercise the leaf protocol; the trie layering adds
   no new persistency behaviour).

   leafnode: permutation@0  next@8  lowest@16  keys@24 (width x 8)
             vals@(24 + 8*width)
   permutation word: low byte = count, bytes 1.. = slot indices in key
   order (as in Masstree).
   descriptor: root_@0 *)

let leaf_width = 7
let o_keys = 24
let o_vals = 24 + (8 * leaf_width)
let leaf_bytes = o_vals + (8 * leaf_width)

let label_root = "root_ in masstree class in masstree.h"
let label_permutation = "permutation in leafnode class in masstree.h"
let label_next = "next in leafnode class in masstree.h"

let perm_count p = Int64.to_int (Int64.logand p 0xFFL)
let perm_slot p i = Int64.to_int (Int64.logand (Int64.shift_right_logical p (8 * (i + 1))) 0xFFL)

let perm_insert p ~rank ~slot =
  let count = perm_count p in
  let rec rebuild i acc =
    if i < 0 then acc
    else
      let s = if i = rank then slot else perm_slot p (if i < rank then i else i - 1) in
      rebuild (i - 1) (Int64.logor (Int64.shift_left acc 8) (Int64.of_int s))
  in
  let slots = rebuild count 0L in
  Int64.logor (Int64.shift_left slots 8) (Int64.of_int (count + 1))

let new_leaf ~lowest =
  let l = Pmem.alloc ~align:64 leaf_bytes in
  Pmem.store l 0L;
  Pmem.store (l + 8) 0L;
  Pmem.store (l + 16) (Int64.of_int lowest);
  Pmem.persist l leaf_bytes;
  l

(* A layer is a descriptor holding the root of its own leaf chain;
   the top layer is registered in root slot 5, deeper layers hang off
   tagged values (Masstree's trie-of-B+trees shape). *)
let create_layer () =
  let t = Pmem.alloc ~align:64 8 in
  let leaf = new_leaf ~lowest:min_int in
  Pmem.store ~label:label_root t (Int64.of_int leaf);
  Pmem.persist t 8;
  t

let create () =
  let t = create_layer () in
  Pmem.set_root 5 t;
  t

let open_existing () = Pmem.get_root 5
let root_of t = Pmem.load_int t
let next_of leaf = Pmem.load_int (leaf + 8)
let lowest_of leaf = Pmem.load_int (leaf + 16)
let key_at leaf slot = Pmem.load_int (leaf + o_keys + (8 * slot))
let val_at leaf slot = Pmem.load_int (leaf + o_vals + (8 * slot))

(* The leaf responsible for [key]: walk the next chain while the
   successor's lowest bound still admits the key. *)
let rec locate leaf key =
  match next_of leaf with
  | 0 -> leaf
  | nxt -> if lowest_of nxt <= key then locate nxt key else leaf

(* Free slot = any index not referenced by the permutation. *)
let free_slot leaf =
  let p = Pmem.load leaf in
  let used = List.init (perm_count p) (fun i -> perm_slot p i) in
  let rec find i =
    if i >= leaf_width then None
    else if List.mem i used then find (i + 1)
    else Some i
  in
  find 0

let rank_for leaf key =
  let p = Pmem.load leaf in
  let count = perm_count p in
  let rec go i = if i < count && key_at leaf (perm_slot p i) < key then go (i + 1) else i in
  go 0

(* Masstree leaf insert: write the key/value into a free slot, persist
   them, then publish with a single plain store to the permutation word
   (race #18).  On overflow, split: the new sibling is persisted, then
   the plain [next] store links it (race #19). *)
let rec put_leaf t leaf key value =
  match free_slot leaf with
  | Some slot ->
      Pmem.store (leaf + o_keys + (8 * slot)) (Int64.of_int key);
      Pmem.store (leaf + o_vals + (8 * slot)) (Int64.of_int value);
      Pmem.persist (leaf + o_keys + (8 * slot)) 8;
      Pmem.persist (leaf + o_vals + (8 * slot)) 8;
      let p = Pmem.load leaf in
      let p' = perm_insert p ~rank:(rank_for leaf key) ~slot in
      Pmem.store ~label:label_permutation leaf p';
      Pmem.persist leaf 8
  | None ->
      (* Split: move the upper half into a fresh leaf. *)
      let p = Pmem.load leaf in
      let count = perm_count p in
      let half = count / 2 in
      let moved = List.init (count - half) (fun i -> perm_slot p (half + i)) in
      let sep = key_at leaf (List.nth moved 0) in
      let sib = new_leaf ~lowest:sep in
      List.iteri
        (fun i slot ->
          Pmem.store (sib + o_keys + (8 * i)) (Int64.of_int (key_at leaf slot));
          Pmem.store (sib + o_vals + (8 * i)) (Int64.of_int (val_at leaf slot)))
        moved;
      let rec build i acc =
        if i < 0 then acc else build (i - 1) (Int64.logor (Int64.shift_left acc 8) (Int64.of_int i))
      in
      let sibperm =
        Int64.logor (Int64.shift_left (build (count - half - 1) 0L) 8)
          (Int64.of_int (count - half))
      in
      Pmem.store sib sibperm;
      Pmem.store (sib + 8) (Int64.of_int (next_of leaf));
      Pmem.persist sib leaf_bytes;
      (* Shrink the old permutation, then link the sibling. *)
      let rec keep i acc =
        if i < 0 then acc
        else keep (i - 1) (Int64.logor (Int64.shift_left acc 8) (Int64.of_int (perm_slot p i)))
      in
      let oldperm = Int64.logor (Int64.shift_left (keep (half - 1) 0L) 8) (Int64.of_int half) in
      Pmem.store ~label:label_permutation leaf oldperm;
      Pmem.persist leaf 8;
      Pmem.store ~label:label_next (leaf + 8) (Int64.of_int sib);
      Pmem.persist (leaf + 8) 8;
      (* A root-leaf split reassigns root_ with a plain store (#17); in
         this single-layer port the descriptor keeps pointing at the
         first leaf, but Masstree republishes it on every split. *)
      Pmem.store ~label:label_root t (Int64.of_int (root_of t));
      Pmem.persist t 8;
      put_leaf t (if key >= sep then sib else leaf) key value

let put t ~key ~value = put_leaf t (locate (root_of t) key) key value

let get t ~key =
  let leaf = locate (root_of t) key in
  let p = Pmem.load leaf in
  let count = perm_count p in
  let rec scan i =
    if i >= count then None
    else
      let slot = perm_slot p i in
      if key_at leaf slot = key then Some (val_at leaf slot) else scan (i + 1)
  in
  scan 0

let scan t =
  let rec leaves leaf acc =
    if leaf = 0 then List.rev acc
    else begin
      let p = Pmem.load leaf in
      let count = perm_count p in
      let entries =
        List.init count (fun i ->
            let slot = perm_slot p i in
            (key_at leaf slot, val_at leaf slot))
      in
      leaves (next_of leaf) (List.rev_append entries acc)
    end
  in
  leaves (root_of t) []

(* ------------------------------------------------------------------ *)
(* Multi-layer keys (Masstree's trie of B+-trees)                       *)

(* Layer values are tagged: bit 0 set = link to a deeper layer
   descriptor; clear = user value (shifted left by one). *)
let encode_value v = v lsl 1
let decode_value v = v asr 1
let encode_link layer = (layer lsl 1) lor 1
let is_link v = v land 1 = 1
let decode_link v = v lsr 1

let rec put_multi t ~key ~value =
  match key with
  | [] -> invalid_arg "P_masstree.put_multi: empty key"
  | [ slice ] -> put t ~key:slice ~value:(encode_value value)
  | slice :: rest -> (
      match get t ~key:slice with
      | Some v when is_link v -> put_multi (decode_link v) ~key:rest ~value
      | Some _ | None ->
          (* Create the deeper layer first (fully persisted), then
             publish the link through the leaf protocol. *)
          let layer = create_layer () in
          put t ~key:slice ~value:(encode_link layer);
          put_multi layer ~key:rest ~value)

let rec get_multi t ~key =
  match key with
  | [] -> None
  | [ slice ] -> (
      match get t ~key:slice with
      | Some v when not (is_link v) -> Some (decode_value v)
      | Some _ | None -> None)
  | slice :: rest -> (
      match get t ~key:slice with
      | Some v when is_link v -> get_multi (decode_link v) ~key:rest
      | Some _ | None -> None)

let workload_keys = [ 50; 10; 90; 30; 70; 20; 80; 40; 60; 100 ]

let workload_multi = [ ([ 7; 7; 1 ], 71); ([ 7; 7; 2 ], 72); ([ 7; 8 ], 78) ]

let program =
  Pm_harness.Program.make ~name:"P-Masstree"
    ~setup:(fun () -> ignore (create ()))
    ~pre:(fun () ->
      let t = open_existing () in
      List.iter (fun k -> put t ~key:k ~value:(k * 3)) workload_keys;
      List.iter (fun (k, v) -> put_multi t ~key:k ~value:v) workload_multi)
    ~post:(fun () ->
      let t = open_existing () in
      List.iter (fun k -> ignore (get t ~key:k)) workload_keys;
      ignore (scan t);
      List.iter (fun (k, _) -> ignore (get_multi t ~key:k)) workload_multi)
    ()
