open Pm_runtime

(* Node: key@0, value@8, color@16 (0 black, 1 red), left@24, right@32,
   parent@40.  Pool root object: tree_root@0. *)

type t = Pmdk_pool.t

let node_bytes = 48

let create () = Pmdk_pool.create ~root_size:8
let open_existing () = Pmdk_pool.open_pool ()

(* Transactional field accessors. *)
let g p n off = Int64.to_int (Pmdk_pool.tx_load p (n + off))
let s p n off v = Pmdk_pool.tx_store p (n + off) (Int64.of_int v)
let key_ p n = g p n 0
let color p n = if n = 0 then 0 else g p n 16
let left p n = g p n 24
let right p n = g p n 32
let parent p n = g p n 40
let set_color p n c = s p n 16 c
let set_left p n v = s p n 24 v
let set_right p n v = s p n 32 v
let set_parent p n v = s p n 40 v

let troot p = Int64.to_int (Pmdk_pool.tx_load p (Pmdk_pool.root p))
let set_troot p n = Pmdk_pool.tx_store p (Pmdk_pool.root p) (Int64.of_int n)

let rotate_left p x =
  let y = right p x in
  set_right p x (left p y);
  if left p y <> 0 then set_parent p (left p y) x;
  set_parent p y (parent p x);
  if parent p x = 0 then set_troot p y
  else if x = left p (parent p x) then set_left p (parent p x) y
  else set_right p (parent p x) y;
  set_left p y x;
  set_parent p x y

let rotate_right p x =
  let y = left p x in
  set_left p x (right p y);
  if right p y <> 0 then set_parent p (right p y) x;
  set_parent p y (parent p x);
  if parent p x = 0 then set_troot p y
  else if x = right p (parent p x) then set_right p (parent p x) y
  else set_left p (parent p x) y;
  set_right p y x;
  set_parent p x y

let rec fixup p z =
  if parent p z <> 0 && color p (parent p z) = 1 then begin
    let pa = parent p z in
    let gp = parent p pa in
    if pa = left p gp then begin
      let uncle = right p gp in
      if color p uncle = 1 then begin
        set_color p pa 0;
        set_color p uncle 0;
        set_color p gp 1;
        fixup p gp
      end
      else begin
        let z = if z = right p pa then (rotate_left p pa; pa) else z in
        let pa = parent p z in
        let gp = parent p pa in
        set_color p pa 0;
        set_color p gp 1;
        rotate_right p gp;
        fixup p z
      end
    end
    else begin
      let uncle = left p gp in
      if color p uncle = 1 then begin
        set_color p pa 0;
        set_color p uncle 0;
        set_color p gp 1;
        fixup p gp
      end
      else begin
        let z = if z = left p pa then (rotate_right p pa; pa) else z in
        let pa = parent p z in
        let gp = parent p pa in
        set_color p pa 0;
        set_color p gp 1;
        rotate_left p gp;
        fixup p z
      end
    end
  end

let insert p ~key ~value =
  Pmdk_pool.tx p (fun () ->
      let z = Pmdk_pool.tx_alloc p ~align:64 node_bytes in
      s p z 0 key;
      s p z 8 value;
      set_color p z 1;
      set_left p z 0;
      set_right p z 0;
      set_parent p z 0;
      let rec descend x last =
        if x = 0 then last
        else if key < key_ p x then descend (left p x) x
        else descend (right p x) x
      in
      let y = descend (troot p) 0 in
      set_parent p z y;
      if y = 0 then set_troot p z
      else if key < key_ p y then set_left p y z
      else set_right p y z;
      fixup p z;
      set_color p (troot p) 0)

let lookup p ~key =
  let rec go n =
    if n = 0 then None
    else
      let k = Pmem.load_int n in
      if key = k then Some (Pmem.load_int (n + 8))
      else if key < k then go (Pmem.load_int (n + 24))
      else go (Pmem.load_int (n + 32))
  in
  go (Pmem.load_int (Pmdk_pool.root p))

let check_and_scan p =
  let root = Pmem.load_int (Pmdk_pool.root p) in
  if root <> 0 && Pmem.load_int (root + 16) = 1 then failwith "rbtree: red root";
  (* Every red node has black children; equal black height everywhere. *)
  let rec go n acc =
    if n = 0 then (acc, 1)
    else begin
      let k = Pmem.load_int n and v = Pmem.load_int (n + 8) in
      let c = Pmem.load_int (n + 16) in
      let l = Pmem.load_int (n + 24) and r = Pmem.load_int (n + 32) in
      if c = 1 then begin
        if l <> 0 && Pmem.load_int (l + 16) = 1 then failwith "rbtree: red-red";
        if r <> 0 && Pmem.load_int (r + 16) = 1 then failwith "rbtree: red-red"
      end;
      let acc, hl = go l acc in
      let acc = (k, v) :: acc in
      let acc, hr = go r acc in
      if hl <> hr then failwith "rbtree: black height";
      (acc, hl + if c = 0 then 1 else 0)
    end
  in
  let acc, _ = go root [] in
  List.rev acc

let workload = [ (8, 80); (3, 30); (11, 110); (1, 10); (6, 60); (9, 90); (13, 130); (5, 50) ]

let program =
  Pm_harness.Program.make ~name:"RBtree"
    ~setup:(fun () -> ignore (create ()))
    ~pre:(fun () ->
      let p = Pmdk_pool.open_pool () in
      List.iter (fun (k, v) -> insert p ~key:k ~value:v) workload)
    ~post:(fun () ->
      let p = open_existing () in
      List.iter (fun (k, _) -> ignore (lookup p ~key:k)) workload)
    ()
