(** PMDK's [btree] example: a B-tree whose updates run inside
    libpmemobj transactions.  All PM writes go through the redo log, so
    the only persistency race it exposes is the log's entry pointer
    (Table 4 #1 / Table 5 "Btree"). *)

type t

val order : int  (** max keys per node *)

val create : unit -> t

(** Reopen the pool, running log recovery. *)
val open_existing : unit -> t

val insert : t -> key:int -> value:int -> unit
val lookup : t -> key:int -> int option
val scan : t -> (int * int) list
val program : Pm_harness.Program.t
