(** PMDK-style redo log ([ulog.c]).

    Transactions append (offset, value) entries, advance the log's entry
    pointer, checksum and persist the log, set an atomic commit flag,
    and then apply the entries.  Recovery walks the log, validates the
    checksum, and replays committed entries.

    The log's entry pointer is updated with a {e plain} store — race #1
    of Table 4 ("pointer to ulog_entry in ulog.c").  The entry payloads
    and checksum are also plain, but recovery only reads them inside a
    checksum-validation region, so races on them are classified benign
    (paper, section 7.5). *)

type t = Px86.Addr.t

val capacity : int  (** maximum entries per transaction *)

val label_next : string
val label_data : string
val label_checksum : string

(** Allocate a zeroed log region. *)
val create : unit -> t

(** Append one redo entry; advances the entry pointer (plain store). *)
val append : t -> offset:Px86.Addr.t -> value:int64 -> unit

(** Entries appended so far (reads the log region). *)
val entries : t -> (Px86.Addr.t * int64) list

(** Checksum, persist, and set the commit flag. *)
val commit : t -> unit

(** Apply all entries to their target locations and persist them. *)
val apply : t -> unit

(** Clear the commit flag and entry pointer after a completed
    transaction. *)
val clear : t -> unit

(** Post-crash recovery: walk the log; replay it when the commit flag is
    set and the checksum validates; otherwise discard.  Returns [true]
    when a committed log was replayed. *)
val recover : t -> bool
