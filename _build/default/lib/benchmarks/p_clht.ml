open Pm_runtime

type t = Px86.Addr.t

(* One bucket per cache line, as in CLHT:
     lock@0, keys@8..24 (3 x 8), vals@32..48 (3 x 8), next@56
   Table: n_buckets buckets; descriptor: table@0, n_buckets@8.

   When a bucket overflows, the table is resized (doubled) CLHT-style:
   a fresh table is populated with atomic stores, fully persisted, and
   then published by swinging the descriptor's table pointer. *)

let initial_buckets = 8
let entries_per_bucket = 3

let release = Px86.Access.Release
let acquire = Px86.Access.Acquire

let create () =
  let t = Pmem.alloc ~align:64 16 in
  let table = Pmem.alloc ~align:64 (64 * initial_buckets) in
  Pmem.store ~atomic:release t (Int64.of_int table);
  Pmem.store (t + 8) (Int64.of_int initial_buckets);
  Pmem.persist t 16;
  Pmem.persist table (64 * initial_buckets);
  Pmem.set_root 4 t;
  t

let open_existing () = Pmem.get_root 4

let buckets t = Pmem.load_int (t + 8)

let bucket_addr t key =
  let table = Int64.to_int (Pmem.load ~atomic:acquire t) in
  table + (64 * (Bench_util.hash64 key land (buckets t - 1)))

let key_addr b i = b + 8 + (8 * i)
let val_addr b i = b + 32 + (8 * i)

let bucket_entries b =
  List.filter_map
    (fun i ->
      let k = Pmem.load ~atomic:acquire (key_addr b i) in
      if k = 0L then None
      else Some (Int64.to_int k, Int64.to_int (Pmem.load ~atomic:acquire (val_addr b i))))
    (List.init entries_per_bucket (fun i -> i))

let place_in b ~key ~value =
  let rec place i =
    if i >= entries_per_bucket then false
    else if Pmem.load ~atomic:acquire (key_addr b i) = 0L then begin
      Pmem.store ~atomic:release (val_addr b i) (Int64.of_int value);
      Pmem.store ~atomic:release (key_addr b i) (Int64.of_int key);
      Pmem.persist b 64;
      true
    end
    else place (i + 1)
  in
  place 0

(* CLHT resize: build a double-size table off to the side (atomic
   stores, fully persisted), then publish it through the descriptor. *)
let resize t =
  let old_n = buckets t in
  let old_table = Int64.to_int (Pmem.load ~atomic:acquire t) in
  let n = 2 * old_n in
  let table = Pmem.alloc ~align:64 (64 * n) in
  for i = 0 to old_n - 1 do
    List.iter
      (fun (k, v) ->
        let b = table + (64 * (Bench_util.hash64 k land (n - 1))) in
        ignore (place_in b ~key:k ~value:v))
      (bucket_entries (old_table + (64 * i)))
  done;
  Pmem.persist table (64 * n);
  Pmem.store (t + 8) (Int64.of_int n);
  Pmem.store ~atomic:release t (Int64.of_int table);
  Pmem.persist t 16

(* All stores here are atomic (volatile in the original), so none of
   them can be torn by the compiler: no persistency races. *)
let rec insert t ~key ~value =
  let b = bucket_addr t key in
  let rec lock () = if not (Pmem.cas b ~expected:0L ~desired:1L) then lock () in
  lock ();
  let placed = place_in b ~key ~value in
  Pmem.store ~atomic:release b 0L;
  Pmem.persist b 8;
  if placed then true
  else begin
    resize t;
    insert t ~key ~value
  end

let get t ~key =
  let b = bucket_addr t key in
  let rec scan i =
    if i >= entries_per_bucket then None
    else if Pmem.load ~atomic:acquire (key_addr b i) = Int64.of_int key then
      Some (Int64.to_int (Pmem.load ~atomic:acquire (val_addr b i)))
    else scan (i + 1)
  in
  scan 0

let workload_keys = [ 2; 3; 5; 7; 11; 13 ]

let program =
  Pm_harness.Program.make ~name:"P-CLHT"
    ~setup:(fun () -> ignore (create ()))
    ~pre:(fun () ->
      let t = open_existing () in
      List.iter (fun k -> ignore (insert t ~key:k ~value:(k * k))) workload_keys)
    ~post:(fun () ->
      let t = open_existing () in
      List.iter (fun k -> ignore (get t ~key:k)) workload_keys)
    ()
