(** A libpmemobj-style persistent object pool: header, a redo log for
    transactions, and one root object pointer. *)

type t

(** Create the pool (setup phase), with [root_size] bytes of root
    object, and register it in root slot 6. *)
val create : root_size:int -> t

(** Reopen after a crash; runs log recovery (replaying or discarding the
    redo log) before returning. *)
val open_pool : unit -> t

(** Address of the pool's root object. *)
val root : t -> Px86.Addr.t

(** The pool's redo log. *)
val ulog : t -> Pmdk_ulog.t

(** Run [f] as a failure-atomic transaction: every store inside goes
    through {!tx_store}; commit applies and clears the log. *)
val tx : t -> (unit -> unit) -> unit

(** Transactional store: appends a redo entry instead of writing the
    target directly.  Must run inside {!tx}. *)
val tx_store : t -> Px86.Addr.t -> int64 -> unit

(** Transactional allocation (bump allocation is naturally idempotent
    under replay because the heap break is volatile per execution). *)
val tx_alloc : t -> ?align:int -> int -> Px86.Addr.t

(** Read-through: reads the pending redo entry if the transaction wrote
    this address, else the target location. *)
val tx_load : t -> Px86.Addr.t -> int64

(** {1 Undo-log transactions}

    The other libpmemobj flavour: snapshot ranges with {!tx_add_range}
    before modifying them in place with {!tx_direct_store}; an exception
    (or a crash before commit) rolls the snapshots back. *)

val tx_undo : t -> (unit -> unit) -> unit

(** Snapshot [[addr, addr+size)] into the undo log (persisted before the
    caller may modify it). *)
val tx_add_range : t -> Px86.Addr.t -> int -> unit

(** In-place store + persist; the range must have been snapshotted. *)
val tx_direct_store : t -> Px86.Addr.t -> int64 -> unit
