open Pm_runtime

type t = Px86.Addr.t

(* An adaptive radix tree over 4-bit nibbles with two inner node sizes,
   as in ART/P-ART (N4 grows into N16 when full; the paper's bug list
   cites both N4.cpp and N16.cpp for the counter stores).

   N16 node (type 0): type@0, compactCount@8, count@16,
                      children@24: 16 x 8 (indexed by nibble)
   Leaf     (type 1): type@0, key@24, value@32
   N4 node  (type 2): type@0, compactCount@8, count@16,
                      keys@24: 4 x 1 byte, children@32: 4 x 8

   Children are std::atomic<N*> in the concurrent original; the
   compactCount/count bookkeeping stores are plain (races #9, #10).

   Deletion list (per tree, modelling Epoche.h):
     headDeletionList@0  deletitionListCount@8  added@16  thresholdCounter@24
   LabelDelete: nodes@0 (4 x 8)  nodesCount@32  next@40

   Descriptor: root@0  deletion_list@8 *)

let n16_bytes = 24 + (16 * 8)
let n4_bytes = 32 + (4 * 8)
let nibbles = 6 (* key depth: 6 nibbles of 4 bits *)

let label_compact = "compactCount in N class in N.h"
let label_count = "count in N class in N.h"
let label_dl_count = "deletitionListCount in DeletionList class in Epoche.h"
let label_dl_head = "headDeletionList in DeletionList class in Epoche.h"
let label_ld_nodes_count = "nodesCount in LabelDelete struct in Epoche.h"
let label_dl_added = "added in DeletionList class in Epoche.h"
let label_dl_threshold = "thresholdCounter in DeletionList class in Epoche.h"

let release = Px86.Access.Release
let acquire = Px86.Access.Acquire

let node_type n = Pmem.load_int n
let compact_count n = Pmem.load_int (n + 8)
let count_of n = Pmem.load_int (n + 16)

let n16_child_addr node i = node + 24 + (8 * i)
let n4_key_addr node i = node + 24 + i
let n4_child_addr node i = node + 32 + (8 * i)

let new_node ~ntype ~bytes =
  let n = Pmem.alloc ~align:64 bytes in
  Pmem.store n (Int64.of_int ntype);
  Pmem.persist n bytes;
  n

let new_n16 () = new_node ~ntype:0 ~bytes:n16_bytes
let new_n4 () = new_node ~ntype:2 ~bytes:n4_bytes

let new_leaf ~key ~value =
  let n = new_node ~ntype:1 ~bytes:n16_bytes in
  Pmem.store (n + 24) (Int64.of_int key);
  Pmem.store (n + 32) (Int64.of_int value);
  Pmem.persist (n + 24) 16;
  n

let create () =
  let t = Pmem.alloc ~align:64 16 in
  let root = new_n16 () in
  let dl = Pmem.alloc ~align:64 32 in
  Pmem.store t (Int64.of_int root);
  Pmem.store (t + 8) (Int64.of_int dl);
  Pmem.persist t 16;
  Pmem.set_root 2 t;
  t

let open_existing () = Pmem.get_root 2
let root_of t = Int64.to_int (Pmem.load t)
let deletion_list t = Int64.to_int (Pmem.load (t + 8))

let nibble key depth = (key lsr (4 * (nibbles - 1 - depth))) land 0xF

(* Bump the bookkeeping counters: the publication step of N::insert in
   N4.cpp/N16.cpp — plain stores (races #9 and #10). *)
let bump_counts node =
  let compact = compact_count node in
  let count = count_of node in
  Pmem.store_int ~label:label_compact (node + 8) (compact + 1);
  Pmem.store_int ~label:label_count (node + 16) (count + 1);
  Pmem.persist (node + 8) 16

(* N16: direct-indexed children. *)
let n16_find node idx = Pmem.load_int ~atomic:acquire (n16_child_addr node idx)

let n16_add node idx child =
  Pmem.store ~atomic:release (n16_child_addr node idx) (Int64.of_int child);
  Pmem.persist (n16_child_addr node idx) 8;
  bump_counts node

(* N4: linear key array; the key byte is persisted before the counters
   publish it. *)
let n4_find node idx =
  let cc = compact_count node in
  let rec scan i =
    if i >= cc || i >= 4 then 0
    else if Pmem.load_int ~size:1 (n4_key_addr node i) = idx then
      Pmem.load_int ~atomic:acquire (n4_child_addr node i)
    else scan (i + 1)
  in
  scan 0

let n4_is_full node = compact_count node >= 4

let n4_add node idx child =
  let cc = compact_count node in
  assert (cc < 4);
  Pmem.store ~size:1 (n4_key_addr node cc) (Int64.of_int idx);
  Pmem.store ~atomic:release (n4_child_addr node cc) (Int64.of_int child);
  Pmem.persist (n4_key_addr node cc) 1;
  Pmem.persist (n4_child_addr node cc) 8;
  bump_counts node

(* Grow a full N4 into an N16: copy the children into the bigger node,
   persist it fully, then swing the parent's child pointer (atomic), as
   N4::change does. *)
let grow_n4 node ~parent_slot =
  let n16 = new_n16 () in
  let cc = compact_count node in
  for i = 0 to min cc 4 - 1 do
    let idx = Pmem.load_int ~size:1 (n4_key_addr node i) in
    let child = Pmem.load_int ~atomic:acquire (n4_child_addr node i) in
    Pmem.store ~atomic:release (n16_child_addr n16 idx) (Int64.of_int child)
  done;
  Pmem.store_int ~label:label_compact (n16 + 8) cc;
  Pmem.store_int ~label:label_count (n16 + 16) (count_of node);
  Pmem.persist n16 n16_bytes;
  Pmem.store ~atomic:release parent_slot (Int64.of_int n16);
  Pmem.persist parent_slot 8;
  n16

let find_child node idx =
  match node_type node with
  | 0 -> n16_find node idx
  | 2 -> n4_find node idx
  | _ -> 0

let add_child node idx child =
  match node_type node with
  | 0 -> n16_add node idx child
  | 2 -> n4_add node idx child
  | _ -> invalid_arg "P_art.add_child: not an inner node"

let insert t ~key ~value =
  let rec go node ~slot depth =
    (* Grow first when a full N4 needs a new slot. *)
    let idx = nibble key depth in
    let child = find_child node idx in
    if child = 0 && node_type node = 2 && n4_is_full node then
      go (grow_n4 node ~parent_slot:slot) ~slot depth
    else if depth = nibbles - 1 then begin
      if child = 0 then add_child node idx (new_leaf ~key ~value)
      else begin
        (* Leaf update in place (persisted). *)
        Pmem.store (child + 32) (Int64.of_int value);
        Pmem.persist (child + 32) 8
      end
    end
    else if child = 0 then begin
      let inner = new_n4 () in
      add_child node idx inner;
      go inner ~slot:0 (depth + 1)
      (* slot unused: a fresh N4 cannot be full *)
    end
    else begin
      let slot =
        match node_type node with
        | 0 -> n16_child_addr node idx
        | _ ->
            (* position of idx in the N4 key array *)
            let cc = compact_count node in
            let rec pos i =
              if i >= cc then 0
              else if Pmem.load_int ~size:1 (n4_key_addr node i) = idx then
                n4_child_addr node i
              else pos (i + 1)
            in
            pos 0
      in
      go child ~slot (depth + 1)
    end
  in
  go (root_of t) ~slot:0 0

let lookup t ~key =
  let rec go node depth =
    if node = 0 then None
    else if node_type node = 1 then
      if Pmem.load_int (node + 24) = key then Some (Pmem.load_int (node + 32)) else None
    else if depth = nibbles then None
    else go (find_child node (nibble key depth)) (depth + 1)
  in
  go (root_of t) 0

(* Epoche-style deferred reclamation: the removed leaf is detached, then
   recorded on the deletion list.  Every bookkeeping store is plain and
   never carefully persisted — the crash-inconsistent allocator the
   RECIPE authors acknowledged (races #11-#15). *)
let mark_node_for_deletion t node =
  let dl = deletion_list t in
  let ld = Pmem.alloc ~align:64 48 in
  Pmem.store (ld + 0) (Int64.of_int node);
  let head = Pmem.load_int (dl + 0) in
  Pmem.store (ld + 40) (Int64.of_int head);
  Pmem.persist ld 48;
  Pmem.store_int ~label:label_ld_nodes_count (ld + 32) 1;
  Pmem.store_int ~label:label_dl_head (dl + 0) ld;
  Pmem.store_int ~label:label_dl_count (dl + 8) (Pmem.load_int (dl + 8) + 1);
  Pmem.store_int ~label:label_dl_added (dl + 16) (Pmem.load_int (dl + 16) + 1);
  Pmem.store_int ~label:label_dl_threshold (dl + 24) (Pmem.load_int (dl + 24) + 1);
  Pmem.persist dl 32

let remove t ~key =
  let rec go node depth =
    if node <> 0 && node_type node <> 1 then
      if depth = nibbles - 1 then begin
        let idx = nibble key depth in
        let leaf = find_child node idx in
        if leaf <> 0 then begin
          (* Detach: clear the child slot (atomic, as in N::remove). *)
          (match node_type node with
          | 0 ->
              Pmem.store ~atomic:release (n16_child_addr node idx) 0L;
              Pmem.persist (n16_child_addr node idx) 8
          | _ ->
              let cc = compact_count node in
              let rec clear i =
                if i < cc then
                  if Pmem.load_int ~size:1 (n4_key_addr node i) = idx then begin
                    Pmem.store ~atomic:release (n4_child_addr node i) 0L;
                    Pmem.persist (n4_child_addr node i) 8
                  end
                  else clear (i + 1)
              in
              clear 0);
          let count = count_of node in
          Pmem.store_int ~label:label_count (node + 16) (count - 1);
          Pmem.persist (node + 16) 8;
          mark_node_for_deletion t leaf
        end
      end
      else go (find_child node (nibble key depth)) (depth + 1)
  in
  go (root_of t) 0

let recover_scan t =
  (* Read node headers (counts first — they gate which slots are live in
     the original), then children; then audit the deletion list. *)
  let leaves = ref 0 in
  let rec walk node =
    if node <> 0 then
      match node_type node with
      | 1 ->
          ignore (Pmem.load_int (node + 24));
          ignore (Pmem.load_int (node + 32));
          incr leaves
      | 0 ->
          ignore (Pmem.load_int (node + 8));
          ignore (Pmem.load_int (node + 16));
          for i = 0 to 15 do
            walk (Pmem.load_int ~atomic:acquire (n16_child_addr node i))
          done
      | 2 ->
          let cc = Pmem.load_int (node + 8) in
          ignore (Pmem.load_int (node + 16));
          for i = 0 to min cc 4 - 1 do
            ignore (Pmem.load_int ~size:1 (n4_key_addr node i));
            walk (Pmem.load_int ~atomic:acquire (n4_child_addr node i))
          done
      | _ -> ()
  in
  walk (root_of t);
  let dl = deletion_list t in
  ignore (Pmem.load_int (dl + 8));
  ignore (Pmem.load_int (dl + 16));
  ignore (Pmem.load_int (dl + 24));
  let rec walk_dl ld =
    if ld <> 0 then begin
      let n = Pmem.load_int (ld + 32) in
      for i = 0 to min 3 (n - 1) do
        ignore (Pmem.load_int (ld + (8 * i)))
      done;
      walk_dl (Pmem.load_int (ld + 40))
    end
  in
  walk_dl (Pmem.load_int (dl + 0));
  !leaves

let workload_keys = [ 0x111; 0x222; 0x333; 0x1234; 0x2345; 0x2346; 0x2347; 0x2348; 0x2349 ]

let program =
  Pm_harness.Program.make ~name:"P-ART"
    ~setup:(fun () -> ignore (create ()))
    ~pre:(fun () ->
      let t = open_existing () in
      List.iter (fun k -> insert t ~key:k ~value:(k * 2)) workload_keys;
      remove t ~key:0x111;
      remove t ~key:0x333)
    ~post:(fun () ->
      let t = open_existing () in
      ignore (recover_scan t);
      List.iter (fun k -> ignore (lookup t ~key:k)) workload_keys)
    ()
