let hash64 x =
  let open Int64 in
  let z = mul (of_int x) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = logxor z (shift_right_logical z 27) in
  to_int (logand z 0x3FFFFFFFFFFFFFFFL)

let checksum_range addr len =
  let rec go off acc =
    if off >= len then acc
    else
      let chunk = min 8 (len - off) in
      let v = Pm_runtime.Pmem.load ~size:chunk (addr + off) in
      go (off + chunk) (Int64.add (Int64.mul acc 31L) v)
  in
  go 0 0x5DEECE66DL

let checksum_string s =
  let acc = ref 0x5DEECE66DL in
  String.iter (fun c -> acc := Int64.add (Int64.mul !acc 31L) (Int64.of_int (Char.code c))) s;
  !acc
