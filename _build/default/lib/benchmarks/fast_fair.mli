(** FAST_FAIR (FAST '18): a fault-tolerant B+-tree for persistent memory
    with failure-atomic shift (FAST) insertions and lock-free reads
    guarded by a [switch_counter].

    The port reproduces the six persistency races of Table 3 (#3–#8):
    the plain stores to [last_index], [switch_counter], entry [key] and
    [ptr], the btree [root] pointer, and the header [sibling_ptr]. *)

type t

val cardinality : int  (** entries per node *)

val create : unit -> t
val open_existing : unit -> t
val insert : t -> key:int -> value:int -> unit
val get : t -> key:int -> int option

(** FAIR deletion: shift-left under the switch-counter protocol. *)
val remove : t -> key:int -> unit

(** In-order key/value pairs via leftmost descent and the sibling
    chain — the recovery-time scan. *)
val scan : t -> (int * int) list

(** [range t ~lo ~hi] scans the leaf chain for keys in [[lo, hi]]. *)
val range : t -> lo:int -> hi:int -> (int * int) list

val height : t -> int
val program : Pm_harness.Program.t
