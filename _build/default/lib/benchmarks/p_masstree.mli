(** P-Masstree: the RECIPE port of Masstree — a trie of B+-tree nodes
    whose leaves publish entries through a [permutation] word and link
    through a [next] pointer.

    Reproduces races #17–#19 of Table 3: the plain stores to [root_] in
    the masstree class, and to [permutation] and [next] in the leafnode
    class ([masstree.h]).  Key/value slots are persisted before the
    permutation publishes them, so they do not race. *)

type t

val leaf_width : int

val create : unit -> t
val open_existing : unit -> t
val put : t -> key:int -> value:int -> unit
val get : t -> key:int -> int option

(** Scan all leaves through the next chain (recovery read path). *)
val scan : t -> (int * int) list

(** {1 Multi-layer keys}

    Masstree proper is a trie of B+-trees: each 8-byte key slice indexes
    one layer, and longer keys descend through link values into deeper
    layers.  [put_multi]/[get_multi] take the key as its list of
    slices. *)

val put_multi : t -> key:int list -> value:int -> unit
val get_multi : t -> key:int list -> int option

val program : Pm_harness.Program.t
