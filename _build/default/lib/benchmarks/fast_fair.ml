open Pm_runtime

type t = Px86.Addr.t

(* Layout (node, 3 cache lines):
     header: leftmost_ptr@0  sibling_ptr@8  last_index@16  switch_counter@24
             is_leaf@32      level@40
     entries@64: cardinality x { key@0; ptr@8 }
   btree descriptor: root@0, height@8. *)

let cardinality = 8
let header_bytes = 64
let entry_size = 16
let node_bytes = header_bytes + (cardinality * entry_size)

let label_last_index = "last_index in header class in btree.h"
let label_switch_counter = "switch_counter in header class in btree.h"
let label_key = "key in entry class in btree.h"
let label_ptr = "ptr in entry class in btree.h"
let label_root = "root in btree class in btree.h"
let label_sibling = "sibling_ptr in header class in btree.h"

let o_leftmost = 0
let o_sibling = 8
let o_last_index = 16
let o_switch = 24
let o_is_leaf = 32
let o_level = 40
let entry_addr node i = node + header_bytes + (i * entry_size)

let load_i node off = Int64.to_int (Pmem.load (node + off))
let leftmost node = load_i node o_leftmost
let sibling node = load_i node o_sibling
let last_index node = load_i node o_last_index
let is_leaf node = load_i node o_is_leaf = 1
let entry_key node i = Int64.to_int (Pmem.load (entry_addr node i))
let entry_ptr node i = Int64.to_int (Pmem.load (entry_addr node i + 8))

let set_last_index node v = Pmem.store ~label:label_last_index (node + o_last_index) (Int64.of_int v)
let set_switch node v = Pmem.store ~label:label_switch_counter (node + o_switch) (Int64.of_int v)
let set_entry_key node i k = Pmem.store ~label:label_key (entry_addr node i) (Int64.of_int k)
let set_entry_ptr node i p = Pmem.store ~label:label_ptr (entry_addr node i + 8) (Int64.of_int p)
let set_sibling node s = Pmem.store ~label:label_sibling (node + o_sibling) (Int64.of_int s)

let new_node ~leaf ~level =
  let n = Pmem.alloc ~align:64 node_bytes in
  Pmem.store (n + o_leftmost) 0L;
  Pmem.store (n + o_sibling) 0L;
  Pmem.store (n + o_last_index) (-1L);
  Pmem.store (n + o_switch) 0L;
  Pmem.store (n + o_is_leaf) (if leaf then 1L else 0L);
  Pmem.store (n + o_level) (Int64.of_int level);
  Pmem.persist n node_bytes;
  n

let create () =
  let t = Pmem.alloc ~align:64 16 in
  let root = new_node ~leaf:true ~level:0 in
  Pmem.store t (Int64.of_int root);
  Pmem.store (t + 8) 1L;
  Pmem.persist t 16;
  Pmem.set_root 1 t;
  t

let open_existing () = Pmem.get_root 1

let root_of t = Int64.to_int (Pmem.load t)
let height t = load_i t 8

(* Internal-node child for [key]: last entry with entry_key <= key, or
   the leftmost pointer. *)
let child_for node key =
  let n = last_index node in
  let rec scan i best =
    if i > n then best
    else if entry_key node i <= key then scan (i + 1) (entry_ptr node i)
    else best
  in
  scan 0 (leftmost node)

let rec find_leaf_with_path node key path =
  if is_leaf node then (node, path)
  else find_leaf_with_path (child_for node key) key (node :: path)

(* FAST insertion into a non-full node: bump the switch counter (odd =
   update in progress), shift entries right with plain stores, write the
   new entry, bump last_index, make the counter even again, persist. *)
let insert_into_node node key ptr =
  let sc = load_i node o_switch in
  set_switch node (sc + 1);
  let n = last_index node in
  let rec find_pos i = if i <= n && entry_key node i < key then find_pos (i + 1) else i in
  let pos = find_pos 0 in
  for i = n downto pos do
    set_entry_key node (i + 1) (entry_key node i);
    set_entry_ptr node (i + 1) (entry_ptr node i)
  done;
  set_entry_key node pos key;
  set_entry_ptr node pos ptr;
  set_last_index node (n + 1);
  set_switch node (sc + 2);
  Pmem.persist node node_bytes

let node_level node = load_i node o_level

let rec insert_entry t node key ptr path =
  if last_index node < cardinality - 1 then insert_into_node node key ptr
  else begin
    (* Split: keep the lower half, move the upper half to a new sibling. *)
    let m = cardinality / 2 in
    let leaf = is_leaf node in
    let sib = new_node ~leaf ~level:(node_level node) in
    let sep = entry_key node m in
    if leaf then begin
      for i = m to cardinality - 1 do
        set_entry_key sib (i - m) (entry_key node i);
        set_entry_ptr sib (i - m) (entry_ptr node i)
      done;
      set_last_index sib (cardinality - 1 - m)
    end
    else begin
      (* Internal split: the separator moves up; sib's leftmost gets its ptr. *)
      Pmem.store (sib + o_leftmost) (Int64.of_int (entry_ptr node m));
      for i = m + 1 to cardinality - 1 do
        set_entry_key sib (i - m - 1) (entry_key node i);
        set_entry_ptr sib (i - m - 1) (entry_ptr node i)
      done;
      set_last_index sib (cardinality - 2 - m)
    end;
    Pmem.store (sib + o_sibling) (Int64.of_int (sibling node));
    Pmem.persist sib node_bytes;
    set_sibling node sib;
    set_last_index node (m - 1);
    Pmem.persist node header_bytes;
    (* Insert the pending entry into the proper half. *)
    if key < sep then insert_into_node node key ptr
    else if leaf then insert_into_node sib key ptr
    else if key > sep then insert_into_node sib key ptr
    else ();
    (* Push the separator up. *)
    match path with
    | parent :: rest -> insert_entry t parent sep sib rest
    | [] ->
        let new_root = new_node ~leaf:false ~level:(node_level node + 1) in
        Pmem.store (new_root + o_leftmost) (Int64.of_int node);
        set_entry_key new_root 0 sep;
        set_entry_ptr new_root 0 sib;
        set_last_index new_root 0;
        Pmem.persist new_root node_bytes;
        Pmem.store ~label:label_root t (Int64.of_int new_root);
        Pmem.store (t + 8) (Int64.of_int (height t + 1));
        Pmem.persist t 16
  end

let insert t ~key ~value =
  let leaf, path = find_leaf_with_path (root_of t) key [] in
  insert_entry t leaf key value path

(* Lock-free read protocol: retry while the switch counter is odd or
   changed during the scan. *)
let read_in_node node key =
  let rec attempt tries =
    if tries = 0 then None
    else begin
      let sc0 = load_i node o_switch in
      let n = last_index node in
      let rec scan i =
        if i > n then None
        else if entry_key node i = key then Some (entry_ptr node i)
        else scan (i + 1)
      in
      let v = scan 0 in
      let sc1 = load_i node o_switch in
      if sc0 = sc1 && sc0 land 1 = 0 then v else attempt (tries - 1)
    end
  in
  attempt 4

let rec find_leaf node key = if is_leaf node then node else find_leaf (child_for node key) key

let get t ~key =
  let leaf = find_leaf (root_of t) key in
  match read_in_node leaf key with
  | Some v -> Some v
  | None -> (
      (* The entry may have shifted into the sibling during a split. *)
      match sibling leaf with
      | 0 -> None
      | sib -> read_in_node sib key)

let scan t =
  let rec descend node = if is_leaf node then node else descend (leftmost node) in
  let rec walk node acc =
    if node = 0 then List.rev acc
    else begin
      let n = last_index node in
      let rec collect i acc =
        if i > n then acc else collect (i + 1) ((entry_key node i, entry_ptr node i) :: acc)
      in
      walk (sibling node) (collect 0 acc)
    end
  in
  walk (descend (root_of t)) []

(* FAIR deletion: shift-left under the switch-counter protocol; the
   same racy header/entry stores as insertion. *)
let remove_from_node node key =
  let n = last_index node in
  let rec find i = if i > n then None else if entry_key node i = key then Some i else find (i + 1) in
  match find 0 with
  | None -> false
  | Some pos ->
      let sc = load_i node o_switch in
      set_switch node (sc + 1);
      for i = pos to n - 1 do
        set_entry_key node i (entry_key node (i + 1));
        set_entry_ptr node i (entry_ptr node (i + 1))
      done;
      set_last_index node (n - 1);
      set_switch node (sc + 2);
      Pmem.persist node node_bytes;
      true

let remove t ~key =
  let leaf = find_leaf (root_of t) key in
  if not (remove_from_node leaf key) then
    (* The key may have moved into the sibling during a split. *)
    match sibling leaf with 0 -> () | sib -> ignore (remove_from_node sib key)

(* Range scan through the leaf chain, FAST_FAIR's btree_search_range. *)
let range t ~lo ~hi =
  let rec descend node = if is_leaf node then node else descend (child_for node lo) in
  let rec walk node acc =
    if node = 0 then List.rev acc
    else begin
      let n = last_index node in
      let rec collect i acc stop =
        if i > n then (acc, stop)
        else
          let k = entry_key node i in
          if k > hi then (acc, true)
          else if k >= lo then collect (i + 1) ((k, entry_ptr node i) :: acc) stop
          else collect (i + 1) acc stop
      in
      let acc, stop = collect 0 acc false in
      if stop then List.rev acc else walk (sibling node) acc
    end
  in
  walk (descend (root_of t)) []

let workload_keys = [ 5; 1; 9; 3; 7; 11; 2; 8; 13; 4; 6; 12 ]

let program =
  Pm_harness.Program.make ~name:"Fast_Fair"
    ~setup:(fun () -> ignore (create ()))
    ~pre:(fun () ->
      let t = open_existing () in
      List.iter (fun k -> insert t ~key:k ~value:(k * 10)) workload_keys;
      remove t ~key:9;
      remove t ~key:2)
    ~post:(fun () ->
      let t = open_existing () in
      List.iter (fun k -> ignore (get t ~key:k)) workload_keys;
      ignore (scan t);
      ignore (range t ~lo:3 ~hi:11))
    ()
