open Pm_runtime

type t = Px86.Addr.t

(* Layout:
     BwTreeBase: epoch@0, mapping_table@8, table_size@16
     mapping table: table_size x 8-byte node pointers (CAS-installed)
     delta record: kind@0 (1 = insert delta, 3 = delete delta),
                   key@8, value@16, next@24
     base node:    kind@0 (2), count@8, pairs@16 (base_cap x {key;value})

   Chains longer than [consolidate_after] are consolidated into a fresh
   base node, installed with the same persist-then-CAS protocol. *)

let table_size = 16
let delta_bytes = 32
let base_cap = 16
let base_bytes = 16 + (base_cap * 16)
let consolidate_after = 6

let label_epoch = "epoch in BwTreeBase class in bwtree.h"

let create () =
  let t = Pmem.alloc ~align:64 24 in
  let mt = Pmem.alloc ~align:64 (8 * table_size) in
  Pmem.store t 0L;
  Pmem.store (t + 8) (Int64.of_int mt);
  Pmem.store (t + 16) (Int64.of_int table_size);
  Pmem.persist t 24;
  Pmem.set_root 3 t;
  t

let open_existing () = Pmem.get_root 3

let mapping_table t = Pmem.load_int (t + 8)
let slot_of_key key = Bench_util.hash64 key land (table_size - 1)
let slot_addr t key = mapping_table t + (8 * slot_of_key key)

(* Every operation bumps the global epoch for the GC — a plain store
   that the original never persists in order (race #16). *)
let bump_epoch t =
  let e = Pmem.load_int t in
  Pmem.store_int ~label:label_epoch t (e + 1);
  Pmem.persist t 8

let current_epoch t = Pmem.load_int t

(* Walk a chain: insert/delete deltas shadow older records; a base node
   terminates the chain. *)
let rec chain_find d key =
  if d = 0 then None
  else
    match Pmem.load_int d with
    | 1 (* insert delta *) ->
        if Pmem.load_int (d + 8) = key then Some (Pmem.load_int (d + 16))
        else chain_find (Pmem.load_int (d + 24)) key
    | 3 (* delete delta *) ->
        if Pmem.load_int (d + 8) = key then None
        else chain_find (Pmem.load_int (d + 24)) key
    | 2 (* base node *) ->
        let count = Pmem.load_int (d + 8) in
        let rec scan i =
          if i >= count then None
          else if Pmem.load_int (d + 16 + (16 * i)) = key then
            Some (Pmem.load_int (d + 24 + (16 * i)))
          else scan (i + 1)
        in
        scan 0
    | _ -> None

let rec chain_pairs d acc shadowed =
  if d = 0 then List.rev acc
  else
    match Pmem.load_int d with
    | 1 ->
        let k = Pmem.load_int (d + 8) in
        if List.mem k shadowed then chain_pairs (Pmem.load_int (d + 24)) acc shadowed
        else
          chain_pairs (Pmem.load_int (d + 24))
            ((k, Pmem.load_int (d + 16)) :: acc)
            (k :: shadowed)
    | 3 ->
        let k = Pmem.load_int (d + 8) in
        chain_pairs (Pmem.load_int (d + 24)) acc (k :: shadowed)
    | 2 ->
        let count = Pmem.load_int (d + 8) in
        let rec collect i acc =
          if i >= count then acc
          else
            let k = Pmem.load_int (d + 16 + (16 * i)) in
            if List.mem k shadowed then collect (i + 1) acc
            else collect (i + 1) ((k, Pmem.load_int (d + 24 + (16 * i))) :: acc)
        in
        List.rev (collect 0 (List.rev acc))
    | _ -> List.rev acc

let chain_length d =
  let rec go d n =
    if d = 0 then n
    else
      match Pmem.load_int d with
      | 1 | 3 -> go (Pmem.load_int (d + 24)) (n + 1)
      | _ -> n + 1
  in
  go d 0

(* Consolidation: collapse the chain into one base node, persist it
   fully, then CAS it in (standard Bw-tree maintenance). *)
let consolidate _t slot =
  let head = Pmem.load ~atomic:Px86.Access.Acquire slot in
  let pairs = chain_pairs (Int64.to_int head) [] [] in
  if List.length pairs <= base_cap then begin
    let b = Pmem.alloc ~align:64 base_bytes in
    Pmem.store b 2L;
    Pmem.store (b + 8) (Int64.of_int (List.length pairs));
    List.iteri
      (fun i (k, v) ->
        Pmem.store (b + 16 + (16 * i)) (Int64.of_int k);
        Pmem.store (b + 24 + (16 * i)) (Int64.of_int v))
      pairs;
    Pmem.persist b base_bytes;
    if Pmem.cas slot ~expected:head ~desired:(Int64.of_int b) then
      Pmem.persist slot 8
  end

let maybe_consolidate t slot =
  let head = Int64.to_int (Pmem.load ~atomic:Px86.Access.Acquire slot) in
  if chain_length head > consolidate_after then consolidate t slot

(* Install an insert delta at the head of the slot's chain.  The delta
   is fully persisted before the CAS makes it reachable, which is what
   keeps the data fields race-free. *)
let insert t ~key ~value =
  bump_epoch t;
  let slot = slot_addr t key in
  let rec attempt () =
    let head = Pmem.load ~atomic:Px86.Access.Acquire slot in
    let d = Pmem.alloc ~align:64 delta_bytes in
    Pmem.store d 1L;
    Pmem.store (d + 8) (Int64.of_int key);
    Pmem.store (d + 16) (Int64.of_int value);
    Pmem.store (d + 24) head;
    Pmem.persist d delta_bytes;
    if Pmem.cas slot ~expected:head ~desired:(Int64.of_int d) then Pmem.persist slot 8
    else attempt ()
  in
  attempt ();
  maybe_consolidate t slot


let lookup t ~key =
  bump_epoch t;
  chain_find (Int64.to_int (Pmem.load ~atomic:Px86.Access.Acquire (slot_addr t key))) key

let delete t ~key =
  bump_epoch t;
  let slot = slot_addr t key in
  let rec attempt () =
    let head = Pmem.load ~atomic:Px86.Access.Acquire slot in
    let d = Pmem.alloc ~align:64 delta_bytes in
    Pmem.store d 3L;
    Pmem.store (d + 8) (Int64.of_int key);
    Pmem.store (d + 24) head;
    Pmem.persist d delta_bytes;
    if Pmem.cas slot ~expected:head ~desired:(Int64.of_int d) then Pmem.persist slot 8
    else attempt ()
  in
  attempt ();
  maybe_consolidate t slot

let workload_keys = [ 4; 8; 15; 16; 23; 42 ]

let program =
  Pm_harness.Program.make ~name:"P-BwTree"
    ~setup:(fun () -> ignore (create ()))
    ~pre:(fun () ->
      let t = open_existing () in
      List.iter (fun k -> insert t ~key:k ~value:(k + 1000)) workload_keys;
      delete t ~key:15;
      List.iter (fun k -> insert t ~key:k ~value:(k + 2000)) [ 4; 8 ])
    ~post:(fun () ->
      let t = open_existing () in
      (* Recovery inspects the epoch first (GC bookkeeping), then data. *)
      ignore (current_epoch t);
      List.iter (fun k -> ignore (lookup t ~key:k)) workload_keys)
    ()
