(** PMDK's [ctree] example: a crit-bit tree updated inside libpmemobj
    transactions (Table 5 "Ctree": the ulog entry-pointer race). *)

type t

val create : unit -> t

(** Reopen the pool, running log recovery. *)
val open_existing : unit -> t

val insert : t -> key:int -> value:int -> unit

(** Crit-bit deletion: splices the sibling subtree up, transactionally. *)
val remove : t -> key:int -> unit

val lookup : t -> key:int -> int option
val program : Pm_harness.Program.t
