(** P-BwTree: the RECIPE port of the Bw-tree — a lock-free B-tree whose
    nodes are reached through a mapping table and updated by CAS-installed
    delta records, with epoch-based garbage collection.

    Reproduces race #16 of Table 3: the plain store to the [epoch]
    counter in [BwTreeBase] ([bwtree.h]).  All structural updates go
    through atomic CAS installs, so only the epoch bookkeeping races. *)

type t

val create : unit -> t
val open_existing : unit -> t
val insert : t -> key:int -> value:int -> unit
val lookup : t -> key:int -> int option

(** Install a delete delta. *)
val delete : t -> key:int -> unit

(** Collapse a key's delta chain into a base node (persist-then-CAS). *)
val consolidate : t -> Px86.Addr.t -> unit
val current_epoch : t -> int
val program : Pm_harness.Program.t
