open Pm_runtime

type t = Px86.Addr.t

(* Layout: next@0 (byte count of used entry space), checksum@8,
   committed@16 (atomic), gen@24 (atomic lane generation, bumped after
   each completed transaction — pool open reads it first, as pmemobj
   lane recovery does), entries@32: capacity x { offset@0; value@8 }. *)

let capacity = 64
let entry_size = 16
let o_entries = 32
let log_bytes = o_entries + (capacity * entry_size)

let label_next = "pointer to ulog_entry in ulog.c"
let label_data = "data in ulog_entry in ulog.c"
let label_checksum = "checksum in ulog.c"

let create () =
  let log = Pmem.alloc ~align:64 log_bytes in
  Pmem.persist log log_bytes;
  log

let used t = Pmem.load_int t
let entry_addr t i = t + o_entries + (i * entry_size)

let append t ~offset ~value =
  let n = used t / entry_size in
  if n >= capacity then failwith "Pmdk_ulog.append: log full";
  let e = entry_addr t n in
  Pmem.store ~label:label_data e (Int64.of_int offset);
  Pmem.store ~label:label_data (e + 8) value;
  (* The racy plain store: publishes the new entry boundary. *)
  Pmem.store_int ~label:label_next t ((n + 1) * entry_size)

let entries t =
  let n = used t / entry_size in
  List.init n (fun i ->
      let e = entry_addr t i in
      (Pmem.load_int e, Pmem.load (e + 8)))

let checksum_of t =
  let n = used t in
  Bench_util.checksum_range (t + o_entries) (max 8 n)

let commit t =
  Pmem.store ~label:label_checksum (t + 8) (checksum_of t);
  (* Persist only the used portion of the log, as ulog_store does. *)
  Pmem.persist t (o_entries + used t);
  Pmem.store ~atomic:Px86.Access.Release (t + 16) 1L;
  Pmem.persist (t + 16) 8

let apply t =
  List.iter
    (fun (offset, value) ->
      Pmem.store offset value;
      Pmem.persist offset 8)
    (entries t)

let clear t =
  Pmem.store ~atomic:Px86.Access.Release (t + 16) 0L;
  Pmem.persist (t + 16) 8;
  Pmem.store_int ~label:label_next t 0;
  Pmem.persist t 8;
  let gen = Pmem.load ~atomic:Px86.Access.Acquire (t + 24) in
  Pmem.store ~atomic:Px86.Access.Release (t + 24) (Int64.add gen 1L);
  Pmem.persist (t + 24) 8

let recover t =
  (* Lane recovery reads the generation marker first; it covers the
     previous transaction's cleared log in the consistent prefix. *)
  ignore (Pmem.load ~atomic:Px86.Access.Acquire (t + 24));
  (* The log walk reads the entry pointer outside any validation — the
     real persistency race PMDK developers confirmed (Table 4 #1). *)
  let n = used t in
  if n = 0 then false
  else begin
    let committed = Pmem.load ~atomic:Px86.Access.Acquire (t + 16) = 1L in
    (* Torn-log detection: entry payloads and the stored checksum are
       only ever read under validation, so races on them are benign. *)
    let valid =
      Pmem.validating (fun () ->
          let stored = Pmem.load (t + 8) in
          stored = checksum_of t)
    in
    if committed && valid then begin
      apply t;
      clear t;
      true
    end
    else begin
      (* Discard a torn or uncommitted log. *)
      clear t;
      false
    end
  end
