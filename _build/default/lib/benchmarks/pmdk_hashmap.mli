(** PMDK's two hashmap examples.

    [hashmap_tx] performs every update inside a libpmemobj transaction;
    [hashmap_atomic] persists the new entry first and then publishes it
    through the allocator's redo log (as pmemobj's atomic lists do).
    Both therefore expose the ulog entry-pointer race (Table 5 rows
    "hashmap-tx" and "hashmap-atomic"). *)

type t

val buckets : int

val create_tx : unit -> t
val create_atomic : unit -> t

(** Reopen a pool created by either variant, running log recovery. *)
val open_existing : unit -> t

val insert_tx : t -> key:int -> value:int -> unit
val insert_atomic : t -> key:int -> value:int -> unit
val lookup : t -> key:int -> int option
val count : t -> int

val program_tx : Pm_harness.Program.t
val program_atomic : Pm_harness.Program.t
