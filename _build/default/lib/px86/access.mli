(** Source-level atomicity of a memory access.

    A persistency race (Definition 5.1 of the paper) can only involve a
    [Plain] store: the language standard lets the compiler tear or invent
    plain stores, while atomic stores must be performed with a single
    instruction. *)

type memorder = Relaxed | Acquire | Release | Acq_rel | Seq_cst

type t = Plain | Atomic of memorder

val is_atomic : t -> bool

(** [is_release a] holds for [Atomic Release], [Atomic Acq_rel] and
    [Atomic Seq_cst]: the store orders prior same-cache-line stores
    (paper, Figure 5(a) coherence argument). *)
val is_release : t -> bool

(** [is_acquire a] holds for [Atomic Acquire], [Atomic Acq_rel] and
    [Atomic Seq_cst]: a load with this access synchronizes-with the
    release store it reads from. *)
val is_acquire : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
