(** Recording of committed machine events, for race witnesses and
    debugging.

    A trace captures the cache-commit order of an execution: stores,
    flush commits, flush-buffer drains and fences.  The harness attaches
    a recorder alongside the detector (via {!Observer.combine}) and uses
    the trace to print the race-revealing pre-crash prefix [E+] the
    paper reports as a witness (section 5.1). *)

type entry =
  | Store of Event.store
  | Clflush of Event.flush
  | Clwb_queued of Event.flush
  | Clwb_applied of Event.flush * Event.fence
  | Nt_persisted of Event.store * Event.fence
  | Fence of Event.fence

type t

(** A recorder and the observer that feeds it. *)
val recorder : unit -> t * Observer.t

(** Entries in commit order. *)
val entries : t -> entry list

(** Entries belonging to the consistent prefix bounded by [cvpre]: every
    event whose thread-local clock is within the clock vector. *)
val prefix : t -> cvpre:Yashme_util.Clockvec.t -> entry list

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
