(** Per-thread TSO store buffer.

    Stores, [clflush], [clwb] and [sfence] enter the buffer in program
    order and leave it subject to the Table-1 reordering constraints:
    FIFO for stores and [clflush], while a [clwb]/[clflushopt] entry may
    overtake stores and [clflush]es to *other* cache lines.  Loads bypass
    the buffer ([Store_buffer.forward]). *)

type entry =
  | Store of Event.store
  | Flush of Event.flush  (** both [clflush] and [clwb] *)
  | Sfence of Event.fence

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int
val push : t -> entry -> unit

(** Entries currently in the buffer, oldest first. *)
val entries : t -> entry list

(** Indices (into [entries]) that may legally leave the buffer next,
    according to Table 1.  Index 0 (the oldest entry) is always
    included when the buffer is nonempty. *)
val evictable : t -> int list

(** [take t i] removes and returns the [i]-th entry; [i] must come from
    [evictable]. *)
val take : t -> int -> entry

(** [forward t ~addr ~size] is the value of the newest buffered store
    that covers the byte range exactly or fully, if any ([Covered]), or
    [Partial] when some buffered store overlaps the range without
    covering it (the real CPU would stall; callers drain the buffer), or
    [Miss]. *)
type forwarding = Covered of Event.store | Partial | Miss

val forward : t -> addr:Addr.t -> size:int -> forwarding
