(** Per-thread flush buffer [F_tau] of pending [clwb] operations.

    A [clwb] that has left the store buffer does not yet force a
    write-back: it waits here until the thread executes an [sfence],
    [mfence] or locked RMW, at which point the cache line is guaranteed
    persisted (paper, Figure 8, [Evict_FB]). *)

type t

val create : unit -> t
val is_empty : t -> bool
val add : t -> Event.flush -> unit

(** [drain t] removes and returns all pending [clwb]s, oldest first. *)
val drain : t -> Event.flush list

(** Pending entries without removing them, oldest first. *)
val pending : t -> Event.flush list
