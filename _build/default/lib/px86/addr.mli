(** Byte addresses and cache-line arithmetic.

    The x86 persistency domain moves data at cache-line granularity
    (64 bytes); all flush instructions take an address and act on its
    whole line. *)

type t = int

val line_size : int

(** [line a] is the cache-line identifier of [a] ([CacheID] in the
    paper's algorithms). *)
val line : t -> int

val line_base : t -> t
val same_line : t -> t -> bool

(** [lines_covering a n] lists the line ids touched by the byte range
    [[a, a+n)]; [n >= 1]. *)
val lines_covering : t -> int -> int list

val pp : Format.formatter -> t -> unit
