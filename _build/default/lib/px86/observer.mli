(** Hooks through which the machine reports persistency-relevant events.

    The Yashme detector subscribes to these, mirroring how the paper's
    implementation plugs into Jaaru: the infrastructure "reports
    persistent memory relevant execution events to Yashme". *)

type t = {
  on_store_commit : Event.store -> unit;
      (** a store left a store buffer and hit the cache ([Evict_SB]) *)
  on_clflush_commit : Event.flush -> unit;
      (** a [clflush] left a store buffer ([Evict_SB], flushes the line) *)
  on_clwb_commit : Event.flush -> unit;
      (** a [clwb] left a store buffer and entered the flush buffer *)
  on_flush_applied : Event.flush -> fence:Event.fence -> unit;
      (** a buffered [clwb] was forced durable by a fence ([Evict_FB]) *)
  on_nt_persisted : Event.store -> fence:Event.fence -> unit;
      (** a non-temporal store was made durable by a fence *)
  on_fence : Event.fence -> unit;  (** an [sfence]/[mfence] completed *)
}

(** Observer that ignores everything. *)
val nop : t

(** [combine a b] forwards every event to [a] then [b]. *)
val combine : t -> t -> t
