lib/px86/machine.ml: Access Addr Crashstate Event Flush_buffer Hashtbl List Memimage Observer Option Persistence Store_buffer Yashme_util
