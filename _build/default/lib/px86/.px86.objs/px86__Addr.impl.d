lib/px86/addr.ml: Format
