lib/px86/crashstate.ml: Addr Event Hashtbl List Memimage
