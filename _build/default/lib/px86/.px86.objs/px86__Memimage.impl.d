lib/px86/memimage.ml: Addr Bytes Char Int64
