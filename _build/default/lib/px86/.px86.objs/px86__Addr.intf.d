lib/px86/addr.mli: Format
