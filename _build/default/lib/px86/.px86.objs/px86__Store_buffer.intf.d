lib/px86/store_buffer.mli: Addr Event
