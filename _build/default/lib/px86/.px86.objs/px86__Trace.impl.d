lib/px86/trace.ml: Event Format List Observer Yashme_util
