lib/px86/access.mli: Format
