lib/px86/event.mli: Access Addr Format Yashme_util
