lib/px86/crashstate.mli: Addr Event Hashtbl Memimage
