lib/px86/store_buffer.ml: Addr Event List Reorder
