lib/px86/observer.ml: Event
