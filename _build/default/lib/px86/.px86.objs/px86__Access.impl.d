lib/px86/access.ml: Format
