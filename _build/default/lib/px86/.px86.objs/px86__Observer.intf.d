lib/px86/observer.mli: Event
