lib/px86/flush_buffer.mli: Event
