lib/px86/memimage.mli: Addr
