lib/px86/reorder.ml: List Yashme_util
