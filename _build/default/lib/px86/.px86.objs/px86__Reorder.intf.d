lib/px86/reorder.mli:
