lib/px86/persistence.mli: Addr Event
