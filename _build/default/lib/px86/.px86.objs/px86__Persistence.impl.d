lib/px86/persistence.ml: Addr Event Hashtbl List
