lib/px86/event.ml: Access Addr Format Yashme_util
