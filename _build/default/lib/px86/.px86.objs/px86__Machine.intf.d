lib/px86/machine.mli: Access Addr Crashstate Event Observer Persistence Yashme_util
