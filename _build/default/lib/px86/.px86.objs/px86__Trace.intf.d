lib/px86/trace.mli: Event Format Observer Yashme_util
