lib/px86/flush_buffer.ml: Event
