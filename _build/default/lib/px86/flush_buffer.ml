type t = { mutable items : Event.flush list (* oldest first *) }

let create () = { items = [] }
let is_empty t = t.items = []
let add t f = t.items <- t.items @ [ f ]

let drain t =
  let items = t.items in
  t.items <- [];
  items

let pending t = t.items
