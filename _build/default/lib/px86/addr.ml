type t = int

let line_size = 64
let line a = a lsr 6
let line_base a = a land lnot 63
let same_line a b = line a = line b

let lines_covering a n =
  assert (n >= 1);
  let first = line a and last = line (a + n - 1) in
  let rec collect l acc = if l < first then acc else collect (l - 1) (l :: acc) in
  collect last []

let pp ppf a = Format.fprintf ppf "0x%x" a
