type memorder = Relaxed | Acquire | Release | Acq_rel | Seq_cst

type t = Plain | Atomic of memorder

let is_atomic = function Plain -> false | Atomic _ -> true

let is_release = function
  | Atomic (Release | Acq_rel | Seq_cst) -> true
  | Atomic (Relaxed | Acquire) | Plain -> false

let is_acquire = function
  | Atomic (Acquire | Acq_rel | Seq_cst) -> true
  | Atomic (Relaxed | Release) | Plain -> false

let to_string = function
  | Plain -> "plain"
  | Atomic Relaxed -> "atomic(relaxed)"
  | Atomic Acquire -> "atomic(acquire)"
  | Atomic Release -> "atomic(release)"
  | Atomic Acq_rel -> "atomic(acq_rel)"
  | Atomic Seq_cst -> "atomic(seq_cst)"

let pp ppf a = Format.pp_print_string ppf (to_string a)
