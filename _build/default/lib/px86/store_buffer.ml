type entry =
  | Store of Event.store
  | Flush of Event.flush
  | Sfence of Event.fence

type t = { mutable items : entry list (* oldest first *) }

let create () = { items = [] }
let is_empty t = t.items = []
let length t = List.length t.items
let push t e = t.items <- t.items @ [ e ]
let entries t = t.items

let kind_of_entry = function
  | Store _ -> Reorder.Write
  | Flush { kind = Event.Clflush; _ } -> Reorder.Clflush_k
  | Flush { kind = Event.Clwb; _ } -> Reorder.Clflushopt
  | Sfence _ -> Reorder.Sfence_k

let line_of_entry = function
  | Store s -> Some (Addr.line s.addr)
  | Flush f -> Some (Addr.line f.faddr)
  | Sfence _ -> None

(* Entry [e] may leave the buffer before an older entry [d] only when
   Table 1 does not require d-before-e order. *)
let may_overtake ~older:d ~newer:e =
  let same_line =
    match line_of_entry d, line_of_entry e with
    | Some a, Some b -> a = b
    | _ -> false
  in
  not (Reorder.required ~earlier:(kind_of_entry d) ~later:(kind_of_entry e) ~same_line)

let evictable t =
  let rec scan i olders = function
    | [] -> []
    | e :: rest ->
        let ok = List.for_all (fun d -> may_overtake ~older:d ~newer:e) olders in
        let tail = scan (i + 1) (olders @ [ e ]) rest in
        if ok then i :: tail else tail
  in
  scan 0 [] t.items

let take t i =
  let rec split j acc = function
    | [] -> invalid_arg "Store_buffer.take: index out of range"
    | e :: rest ->
        if j = i then begin
          t.items <- List.rev_append acc rest;
          e
        end
        else split (j + 1) (e :: acc) rest
  in
  split 0 [] t.items

type forwarding = Covered of Event.store | Partial | Miss

let forward t ~addr ~size =
  (* Newest matching store wins; scan newest-first. *)
  let rec scan = function
    | [] -> Miss
    | Store s :: rest ->
        if Event.store_covers s addr size then Covered s
        else if Event.store_overlaps s addr size then Partial
        else scan rest
    | (Flush _ | Sfence _) :: rest -> scan rest
  in
  scan (List.rev t.items)
