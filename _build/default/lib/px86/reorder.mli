(** Px86sim instruction-reordering constraints (paper, Table 1).

    [required ~earlier ~later ~same_line] answers whether the order of two
    instructions in program order must be preserved by the storage
    system.  [CL] cells of the table map to [same_line = true]. *)

type kind = Read | Write | Rmw | Mfence_k | Sfence_k | Clflushopt | Clflush_k

(** [required ~earlier ~later ~same_line] is true when [earlier] may not
    be reordered after [later]. *)
val required : earlier:kind -> later:kind -> same_line:bool -> bool

(** All kinds, in the row/column order of Table 1. *)
val all_kinds : kind list

val kind_to_string : kind -> string

(** Renders the full Table 1 matrix as text (used by the benchmark
    harness to regenerate the table). *)
val table : unit -> string
