type t = {
  on_store_commit : Event.store -> unit;
  on_clflush_commit : Event.flush -> unit;
  on_clwb_commit : Event.flush -> unit;
  on_flush_applied : Event.flush -> fence:Event.fence -> unit;
  on_nt_persisted : Event.store -> fence:Event.fence -> unit;
  on_fence : Event.fence -> unit;
}

let nop =
  {
    on_store_commit = (fun _ -> ());
    on_clflush_commit = (fun _ -> ());
    on_clwb_commit = (fun _ -> ());
    on_flush_applied = (fun _ ~fence:_ -> ());
    on_nt_persisted = (fun _ ~fence:_ -> ());
    on_fence = (fun _ -> ());
  }

let combine a b =
  {
    on_store_commit =
      (fun s ->
        a.on_store_commit s;
        b.on_store_commit s);
    on_clflush_commit =
      (fun f ->
        a.on_clflush_commit f;
        b.on_clflush_commit f);
    on_clwb_commit =
      (fun f ->
        a.on_clwb_commit f;
        b.on_clwb_commit f);
    on_flush_applied =
      (fun f ~fence ->
        a.on_flush_applied f ~fence;
        b.on_flush_applied f ~fence);
    on_nt_persisted =
      (fun s ~fence ->
        a.on_nt_persisted s ~fence;
        b.on_nt_persisted s ~fence);
    on_fence =
      (fun k ->
        a.on_fence k;
        b.on_fence k);
  }
