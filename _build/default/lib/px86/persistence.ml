type line_state = {
  mutable stores : Event.store list; (* newest first *)
  mutable cut_lb : int;
}

type t = {
  lines : (int, line_state) Hashtbl.t;
  durable_nt : (int, unit) Hashtbl.t;  (* seq of individually durable stores *)
}

let create () = { lines = Hashtbl.create 64; durable_nt = Hashtbl.create 16 }

let mark_durable t (s : Event.store) = Hashtbl.replace t.durable_nt s.Event.seq ()
let is_durable_nt t (s : Event.store) = Hashtbl.mem t.durable_nt s.Event.seq

let get_line t line =
  match Hashtbl.find_opt t.lines line with
  | Some ls -> ls
  | None ->
      let ls = { stores = []; cut_lb = 0 } in
      Hashtbl.add t.lines line ls;
      ls

let commit_store t (s : Event.store) =
  (* A store may straddle a line boundary; register it on every line it
     touches so flushes of either line cover it. *)
  List.iter
    (fun line ->
      let ls = get_line t line in
      ls.stores <- s :: ls.stores)
    (Addr.lines_covering s.addr s.size)

let flush_line t ~line ~seq =
  let ls = get_line t line in
  if seq > ls.cut_lb then ls.cut_lb <- seq

let line_stores t line =
  match Hashtbl.find_opt t.lines line with
  | Some ls -> List.rev ls.stores
  | None -> []

let cut_lb t line =
  match Hashtbl.find_opt t.lines line with Some ls -> ls.cut_lb | None -> 0

let lines t = Hashtbl.fold (fun line _ acc -> line :: acc) t.lines [] |> List.sort compare

let covering_stores t ~addr ~size =
  (* Stores covering the range, newest first.  All of them live on the
     line of [addr] (covering stores touch that line by definition). *)
  match Hashtbl.find_opt t.lines (Addr.line addr) with
  | None -> []
  | Some ls -> List.filter (fun s -> Event.store_covers s addr size) ls.stores

let latest_at_or_below t ~addr ~size ~cut =
  let rec scan = function
    | [] -> None
    | (s : Event.store) :: rest ->
        if s.seq <= cut || is_durable_nt t s then Some s else scan rest
  in
  scan (covering_stores t ~addr ~size)

let candidates t ~addr ~size =
  let newest_first = covering_stores t ~addr ~size in
  let lb = cut_lb t (Addr.line addr) in
  let durable (s : Event.store) = s.seq <= lb || is_durable_nt t s in
  let rec split acc = function
    | [] -> acc (* no definitely-durable base *)
    | (s : Event.store) :: rest ->
        if durable s then s :: acc
          (* s is the base; older stores are overwritten durably *)
        else split (s :: acc) rest
  in
  split [] newest_first
