(** The persistence domain: which committed stores are guaranteed durable.

    Stores to the same cache line reach persistent memory in their
    cache-commit order, so for every line the set of possible post-crash
    states is a *cut* of the line's committed-store sequence.  Explicit
    flushes raise the lower bound of that cut: after a [clflush] commits
    (or a [clwb] commits and its thread later fences), every store that
    committed to the line earlier is durable.  The upper bound is always
    "everything committed" (the cache may have evicted the line on its
    own at any time). *)

type t

val create : unit -> t

(** Record a store that has left a store buffer and hit the cache. *)
val commit_store : t -> Event.store -> unit

(** [flush_line t ~line ~seq] raises the durable lower bound of [line]:
    every store to [line] with [Event.seq < seq] is now persisted. *)
val flush_line : t -> line:int -> seq:int -> unit

(** Committed stores to [line], oldest (lowest seq) first. *)
val line_stores : t -> int -> Event.store list

(** Durable lower bound for [line]: stores with [seq] below this are
    guaranteed persisted.  0 when the line was never flushed. *)
val cut_lb : t -> int -> int

(** All lines ever stored to. *)
val lines : t -> int list

(** [candidates t ~addr ~size] lists the pre-crash stores a post-crash
    load of [[addr, addr+size)] could read from, oldest first: the newest
    covering store at or below the line's durable lower bound, plus every
    later covering store (any of them may or may not have persisted). *)
val candidates : t -> addr:Addr.t -> size:int -> Event.store list

(** [latest_at_or_below t ~addr ~size ~cut] is the newest store covering
    the range with [seq <= cut] (or individually durable), if any. *)
val latest_at_or_below : t -> addr:Addr.t -> size:int -> cut:int -> Event.store option

(** Mark one committed store durable on its own — a non-temporal store
    whose thread fenced (movnt bypasses the cache and the per-line cut
    order). *)
val mark_durable : t -> Event.store -> unit

(** Whether a store is durable independent of its line's cut. *)
val is_durable_nt : t -> Event.store -> bool
