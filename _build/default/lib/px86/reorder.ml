type kind = Read | Write | Rmw | Mfence_k | Sfence_k | Clflushopt | Clflush_k

type cell = Yes | No | Cacheline

(* Table 1 of the paper: rows are the earlier instruction, columns the
   later one.  Column order: Read, Write, RMW, mfence, sfence, clflushopt,
   clflush. *)
let matrix earlier later =
  match earlier, later with
  | Read, _ -> Yes
  | Write, Read -> No
  | Write, Clflushopt -> Cacheline
  | Write, (Write | Rmw | Mfence_k | Sfence_k | Clflush_k) -> Yes
  | Rmw, _ -> Yes
  | Mfence_k, _ -> Yes
  | Sfence_k, Read -> No
  | Sfence_k, (Write | Rmw | Mfence_k | Sfence_k | Clflushopt | Clflush_k) -> Yes
  | Clflushopt, (Read | Write | Clflushopt) -> No
  | Clflushopt, Clflush_k -> Cacheline
  | Clflushopt, (Rmw | Mfence_k | Sfence_k) -> Yes
  | Clflush_k, Read -> No
  | Clflush_k, Clflushopt -> Cacheline
  | Clflush_k, (Write | Rmw | Mfence_k | Sfence_k | Clflush_k) -> Yes

let required ~earlier ~later ~same_line =
  match matrix earlier later with
  | Yes -> true
  | No -> false
  | Cacheline -> same_line

let all_kinds = [ Read; Write; Rmw; Mfence_k; Sfence_k; Clflushopt; Clflush_k ]

let kind_to_string = function
  | Read -> "Read"
  | Write -> "Write"
  | Rmw -> "RMW"
  | Mfence_k -> "mfence"
  | Sfence_k -> "sfence"
  | Clflushopt -> "clflushopt"
  | Clflush_k -> "clflush"

let cell_to_string = function Yes -> "Y" | No -> "x" | Cacheline -> "CL"

let table () =
  let header = "earlier\\later" :: List.map kind_to_string all_kinds in
  let rows =
    List.map
      (fun earlier ->
        kind_to_string earlier
        :: List.map (fun later -> cell_to_string (matrix earlier later)) all_kinds)
      all_kinds
  in
  Yashme_util.Pretty.table ~header rows
