module Clockvec = Yashme_util.Clockvec

type entry =
  | Store of Event.store
  | Clflush of Event.flush
  | Clwb_queued of Event.flush
  | Clwb_applied of Event.flush * Event.fence
  | Nt_persisted of Event.store * Event.fence
  | Fence of Event.fence

type t = { mutable items : entry list (* newest first *) }

let recorder () =
  let t = { items = [] } in
  let push e = t.items <- e :: t.items in
  let observer =
    {
      Observer.on_store_commit = (fun s -> push (Store s));
      on_clflush_commit = (fun f -> push (Clflush f));
      on_clwb_commit = (fun f -> push (Clwb_queued f));
      on_flush_applied = (fun f ~fence -> push (Clwb_applied (f, fence)));
      on_nt_persisted = (fun s ~fence -> push (Nt_persisted (s, fence)));
      on_fence = (fun k -> push (Fence k));
    }
  in
  (t, observer)

let entries t = List.rev t.items

let entry_clock = function
  | Store s -> (s.Event.tid, s.Event.lclk)
  | Clflush f | Clwb_queued f -> (f.Event.ftid, f.Event.flclk)
  | Clwb_applied (_, k) | Nt_persisted (_, k) | Fence k -> (k.Event.ktid, k.Event.klclk)

let prefix t ~cvpre =
  List.filter
    (fun e ->
      let tid, lclk = entry_clock e in
      lclk <= Clockvec.get cvpre tid)
    (entries t)

let pp_entry ppf = function
  | Store s -> Event.pp_store ppf s
  | Clflush f -> Event.pp_flush ppf f
  | Clwb_queued f -> Format.fprintf ppf "%a (queued)" Event.pp_flush f
  | Clwb_applied (f, k) ->
      Format.fprintf ppf "%a applied by %s[tid=%d lclk=%d]" Event.pp_flush f
        (match k.Event.kkind with Event.Sfence -> "sfence" | Event.Mfence -> "mfence")
        k.Event.ktid k.Event.klclk
  | Nt_persisted (s, k) ->
      Format.fprintf ppf "%a (movnt) persisted by %s[tid=%d lclk=%d]" Event.pp_store s
        (match k.Event.kkind with Event.Sfence -> "sfence" | Event.Mfence -> "mfence")
        k.Event.ktid k.Event.klclk
  | Fence k ->
      Format.fprintf ppf "%s[tid=%d lclk=%d]"
        (match k.Event.kkind with Event.Sfence -> "sfence" | Event.Mfence -> "mfence")
        k.Event.ktid k.Event.klclk

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri (fun i e -> Format.fprintf ppf "%s%3d: %a" (if i > 0 then "\n" else "") i pp_entry e)
    (entries t);
  Format.fprintf ppf "@]"
