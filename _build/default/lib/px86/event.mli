(** Machine-level events: committed stores, flushes and fences.

    Every store, [clflush] and [sfence] is assigned a global sequence
    number [seq] when it takes effect on the cache, recording the total
    cache-commit order across all threads (paper, section 6).  Each event
    also carries its issuing thread's local clock [lclk] and the clock
    vector [cv] current at issue time, which the detector uses for
    happens-before tests. *)

type store = {
  mutable seq : int;  (** cache-commit order; -1 while still buffered *)
  tid : int;
  lclk : int;
  cv : Yashme_util.Clockvec.t;
  addr : Addr.t;
  size : int;  (** bytes, 1..8 *)
  value : int64;
  access : Access.t;
  nt : bool;
      (** non-temporal (movnt): bypasses the cache; durable at the next
          fence without an explicit flush *)
  label : string option;  (** source-level field name, for race reports *)
}

type flush_kind = Clflush | Clwb

type flush = {
  mutable fseq : int;
  ftid : int;
  flclk : int;
  fcv : Yashme_util.Clockvec.t;
  faddr : Addr.t;
  kind : flush_kind;
}

type fence_kind = Sfence | Mfence

type fence = {
  ktid : int;
  klclk : int;
  kcv : Yashme_util.Clockvec.t;
  kkind : fence_kind;
}

(** [store_covers s a n] holds when store [s] writes every byte of
    [[a, a+n)]. *)
val store_covers : store -> Addr.t -> int -> bool

(** [store_overlaps s a n] holds when store [s] writes any byte of
    [[a, a+n)]. *)
val store_overlaps : store -> Addr.t -> int -> bool

val pp_store : Format.formatter -> store -> unit
val pp_flush : Format.formatter -> flush -> unit
