type store = {
  mutable seq : int;
  tid : int;
  lclk : int;
  cv : Yashme_util.Clockvec.t;
  addr : Addr.t;
  size : int;
  value : int64;
  access : Access.t;
  nt : bool;
  label : string option;
}

type flush_kind = Clflush | Clwb

type flush = {
  mutable fseq : int;
  ftid : int;
  flclk : int;
  fcv : Yashme_util.Clockvec.t;
  faddr : Addr.t;
  kind : flush_kind;
}

type fence_kind = Sfence | Mfence

type fence = {
  ktid : int;
  klclk : int;
  kcv : Yashme_util.Clockvec.t;
  kkind : fence_kind;
}

let store_covers s a n = s.addr <= a && a + n <= s.addr + s.size
let store_overlaps s a n = s.addr < a + n && a < s.addr + s.size

let pp_store ppf s =
  Format.fprintf ppf "store[%s tid=%d lclk=%d seq=%d %a..+%d = %Ld %a]"
    (match s.label with Some l -> l | None -> "?")
    s.tid s.lclk s.seq Addr.pp s.addr s.size s.value Access.pp s.access

let pp_flush ppf f =
  Format.fprintf ppf "%s[tid=%d lclk=%d seq=%d line=%d]"
    (match f.kind with Clflush -> "clflush" | Clwb -> "clwb")
    f.ftid f.flclk f.fseq (Addr.line f.faddr)
