(** The persistent-memory programming API.

    Benchmarks and applications are ordinary OCaml functions that call
    these operations; each call performs an OCaml effect that the
    {!Executor} intercepts and replays on the simulated Px86 machine.
    This plays the role of the paper's LLVM instrumentation: every load,
    store, flush and fence is observed by the infrastructure.

    All operations must run inside {!Executor.run}; calling them outside
    raises [Effect.Unhandled]. *)

type order = Px86.Access.memorder

(** {1 Memory operations} *)

(** [store addr v] performs a plain (non-atomic) store of [size] bytes
    (default 8).  [label] names the source-level field for race reports.
    [atomic] upgrades the store to an atomic one with the given memory
    order — the fix the paper prescribes for persistency races.
    [nt] makes it a non-temporal (movnt) store: durable at the next
    fence without an explicit flush, as libpmem's [pmem_memcpy_nodrain]
    path emits. *)
val store :
  ?label:string -> ?size:int -> ?atomic:order -> ?nt:bool -> Px86.Addr.t -> int64 ->
  unit

(** Chunked non-temporal copy + [sfence] — [pmem_memcpy_persist]. *)
val memcpy_nt_persist : ?label:string -> Px86.Addr.t -> string -> unit

(** [load addr] reads [size] bytes (default 8); [atomic] makes the load
    an atomic acquire-class load. *)
val load : ?size:int -> ?atomic:order -> Px86.Addr.t -> int64

(** Locked compare-and-swap (mfence semantics on both sides). *)
val cas :
  ?label:string -> ?size:int -> Px86.Addr.t -> expected:int64 -> desired:int64 -> bool

val clflush : Px86.Addr.t -> unit
val clwb : Px86.Addr.t -> unit
val sfence : unit -> unit
val mfence : unit -> unit

(** [flush_range addr len] issues a [clwb] for every cache line touching
    [[addr, addr+len)] — the idiom PMDK's [pmem_flush] uses. *)
val flush_range : Px86.Addr.t -> int -> unit

(** [persist addr len] is [flush_range addr len] followed by [sfence],
    PMDK's [pmem_persist]. *)
val persist : Px86.Addr.t -> int -> unit

(** {1 Bulk operations}

    Chunked helpers; each 8-byte (or smaller tail) chunk is a separate
    plain store, mirroring how libc [memset]/[memcpy] tear wide copies
    (paper, section 3.2). *)

val memset : ?label:string -> Px86.Addr.t -> char -> int -> unit
val store_bytes : ?label:string -> Px86.Addr.t -> string -> unit
val load_bytes : Px86.Addr.t -> int -> string

(** {1 Allocation and roots} *)

(** Bump allocation from the persistent heap; [align] defaults to 8. *)
val alloc : ?align:int -> int -> Px86.Addr.t

(** Root slots live in cache line 0 and are written atomically and
    flushed, so they are never themselves racy.  8 slots are available. *)
val set_root : int -> Px86.Addr.t -> unit

val get_root : int -> Px86.Addr.t

(** {1 Threads} *)

val spawn : (unit -> unit) -> int
val join : int -> unit
val yield : unit -> unit
val my_tid : unit -> int

(** {1 Crash and validation} *)

(** Crash the whole machine at this point (testing hook). *)
val crash_now : unit -> 'a

(** [validating f] marks loads inside [f] as checksum-validation reads:
    races they observe are classified benign (paper, section 7.5). *)
val validating : (unit -> 'a) -> 'a

(** {1 Integer convenience wrappers} *)

val store_int : ?label:string -> ?size:int -> ?atomic:order -> Px86.Addr.t -> int -> unit
val load_int : ?size:int -> ?atomic:order -> Px86.Addr.t -> int
val cas_int : ?label:string -> ?size:int -> Px86.Addr.t -> expected:int -> desired:int -> bool

(** {1 Effect declarations (consumed by the executor)} *)

type store_req = {
  s_addr : Px86.Addr.t;
  s_size : int;
  s_value : int64;
  s_access : Px86.Access.t;
  s_nt : bool;
  s_label : string option;
}

type load_req = { l_addr : Px86.Addr.t; l_size : int; l_access : Px86.Access.t }

type cas_req = {
  c_addr : Px86.Addr.t;
  c_size : int;
  c_expected : int64;
  c_desired : int64;
  c_label : string option;
}

type flush_req = { f_addr : Px86.Addr.t; f_kind : Px86.Event.flush_kind }

type _ Effect.t +=
  | Store_e : store_req -> unit Effect.t
  | Load_e : load_req -> int64 Effect.t
  | Cas_e : cas_req -> bool Effect.t
  | Flush_e : flush_req -> unit Effect.t
  | Fence_e : Px86.Event.fence_kind -> unit Effect.t
  | Alloc_e : int * int -> Px86.Addr.t Effect.t  (** size, align *)
  | Spawn_e : (unit -> unit) -> int Effect.t
  | Join_e : int -> unit Effect.t
  | Yield_e : unit Effect.t
  | Crash_now_e : unit Effect.t
  | Validating_e : bool -> unit Effect.t
  | My_tid_e : int Effect.t
