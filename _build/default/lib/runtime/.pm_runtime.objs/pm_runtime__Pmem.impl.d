lib/runtime/pmem.ml: Buffer Char Effect Int64 List Px86 String
