lib/runtime/executor.ml: Effect Hashtbl List Pmem Px86 Yashme Yashme_util
