lib/runtime/executor.mli: Px86 Yashme
