lib/runtime/pmem.mli: Effect Px86
