type order = Px86.Access.memorder

type store_req = {
  s_addr : Px86.Addr.t;
  s_size : int;
  s_value : int64;
  s_access : Px86.Access.t;
  s_nt : bool;
  s_label : string option;
}

type load_req = { l_addr : Px86.Addr.t; l_size : int; l_access : Px86.Access.t }

type cas_req = {
  c_addr : Px86.Addr.t;
  c_size : int;
  c_expected : int64;
  c_desired : int64;
  c_label : string option;
}

type flush_req = { f_addr : Px86.Addr.t; f_kind : Px86.Event.flush_kind }

type _ Effect.t +=
  | Store_e : store_req -> unit Effect.t
  | Load_e : load_req -> int64 Effect.t
  | Cas_e : cas_req -> bool Effect.t
  | Flush_e : flush_req -> unit Effect.t
  | Fence_e : Px86.Event.fence_kind -> unit Effect.t
  | Alloc_e : int * int -> Px86.Addr.t Effect.t
  | Spawn_e : (unit -> unit) -> int Effect.t
  | Join_e : int -> unit Effect.t
  | Yield_e : unit Effect.t
  | Crash_now_e : unit Effect.t
  | Validating_e : bool -> unit Effect.t
  | My_tid_e : int Effect.t

let access_of = function
  | None -> Px86.Access.Plain
  | Some o -> Px86.Access.Atomic o

let store ?label ?(size = 8) ?atomic ?(nt = false) addr value =
  Effect.perform
    (Store_e
       { s_addr = addr; s_size = size; s_value = value; s_access = access_of atomic;
         s_nt = nt; s_label = label })

let load ?(size = 8) ?atomic addr =
  Effect.perform (Load_e { l_addr = addr; l_size = size; l_access = access_of atomic })

let cas ?label ?(size = 8) addr ~expected ~desired =
  Effect.perform
    (Cas_e
       { c_addr = addr; c_size = size; c_expected = expected; c_desired = desired;
         c_label = label })

let clflush addr = Effect.perform (Flush_e { f_addr = addr; f_kind = Px86.Event.Clflush })
let clwb addr = Effect.perform (Flush_e { f_addr = addr; f_kind = Px86.Event.Clwb })
let sfence () = Effect.perform (Fence_e Px86.Event.Sfence)
let mfence () = Effect.perform (Fence_e Px86.Event.Mfence)

let flush_range addr len =
  if len > 0 then
    List.iter
      (fun line -> clwb (line * Px86.Addr.line_size))
      (Px86.Addr.lines_covering addr len)

let persist addr len =
  flush_range addr len;
  sfence ()

let memset ?label addr c n =
  let byte = Int64.of_int (Char.code c) in
  let word =
    List.fold_left
      (fun acc i -> Int64.logor acc (Int64.shift_left byte (8 * i)))
      0L [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let rec go off =
    if off < n then begin
      let chunk = min 8 (n - off) in
      let v = if chunk = 8 then word else Int64.logand word (Int64.sub (Int64.shift_left 1L (8 * chunk)) 1L) in
      store ?label ~size:chunk (addr + off) v;
      go (off + chunk)
    end
  in
  go 0

let store_bytes ?label addr s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      let chunk = min 8 (n - off) in
      let v = ref 0L in
      for i = chunk - 1 downto 0 do
        v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
      done;
      store ?label ~size:chunk (addr + off) !v;
      go (off + chunk)
    end
  in
  go 0

let load_bytes addr n =
  let buf = Buffer.create n in
  let rec go off =
    if off < n then begin
      let chunk = min 8 (n - off) in
      let v = load ~size:chunk (addr + off) in
      for i = 0 to chunk - 1 do
        Buffer.add_char buf
          (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
      done;
      go (off + chunk)
    end
  in
  go 0;
  Buffer.contents buf

let memcpy_nt_persist ?label addr s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      let chunk = min 8 (n - off) in
      let v = ref 0L in
      for i = chunk - 1 downto 0 do
        v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
      done;
      store ?label ~size:chunk ~nt:true (addr + off) !v;
      go (off + chunk)
    end
  in
  go 0;
  sfence ()

let alloc ?(align = 8) size = Effect.perform (Alloc_e (size, align))

let root_addr slot =
  if slot < 0 || slot > 7 then invalid_arg "Pmem root slot must be in 0..7";
  slot * 8

let set_root slot addr =
  store ~label:"__root" ~atomic:Px86.Access.Seq_cst (root_addr slot) (Int64.of_int addr);
  clflush (root_addr slot);
  mfence ()

let get_root slot =
  Int64.to_int (load ~atomic:Px86.Access.Seq_cst (root_addr slot))

let spawn fn = Effect.perform (Spawn_e fn)
let join tid = Effect.perform (Join_e tid)
let yield () = Effect.perform Yield_e
let my_tid () = Effect.perform My_tid_e

let crash_now () =
  Effect.perform Crash_now_e;
  (* The executor never resumes past a crash. *)
  assert false

let validating f =
  Effect.perform (Validating_e true);
  match f () with
  | v ->
      Effect.perform (Validating_e false);
      v
  | exception e ->
      Effect.perform (Validating_e false);
      raise e

let store_int ?label ?size ?atomic addr v = store ?label ?size ?atomic addr (Int64.of_int v)
let load_int ?size ?atomic addr = Int64.to_int (load ?size ?atomic addr)

let cas_int ?label ?size addr ~expected ~desired =
  cas ?label ?size addr ~expected:(Int64.of_int expected) ~desired:(Int64.of_int desired)
