(** Shared formatting helpers for race reports and benchmark tables. *)

(** [hex64 v] renders [v] as [0x%016Lx]. *)
val hex64 : int64 -> string

(** [pad width s] right-pads [s] with spaces to at least [width]. *)
val pad : int -> string -> string

(** [rule width] is a horizontal rule of dashes. *)
val rule : int -> string

(** [table ~header rows] renders an aligned plain-text table. *)
val table : header:string list -> string list list -> string
