lib/util/clockvec.mli: Format
