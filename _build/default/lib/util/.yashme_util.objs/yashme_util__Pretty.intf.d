lib/util/pretty.mli:
