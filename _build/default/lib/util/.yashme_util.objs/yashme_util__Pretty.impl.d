lib/util/pretty.ml: Array List Printf String
