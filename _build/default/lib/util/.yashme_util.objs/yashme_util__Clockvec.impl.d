lib/util/clockvec.ml: Format Int List Map
