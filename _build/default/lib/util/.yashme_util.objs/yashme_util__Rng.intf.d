lib/util/rng.mli:
