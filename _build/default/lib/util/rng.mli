(** Deterministic, splittable pseudo-random number generator.

    The crash-testing harness must be able to replay an execution exactly
    (same schedule, same crash point, same read choices) from a seed, so
    all nondeterminism in the simulator flows through this module rather
    than the global [Random] state. *)

type t

(** [create seed] builds a generator from a 64-bit seed. *)
val create : int -> t

(** [copy t] is an independent generator with the same state. *)
val copy : t -> t

(** [split t] derives a new generator from [t], advancing [t]. *)
val split : t -> t

(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)
val int : t -> int -> int

(** [bool t] is a uniform boolean draw. *)
val bool : t -> bool

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [chance t p] is true with probability [p] (clamped to [0, 1]). *)
val chance : t -> float -> bool

(** [pick t items] draws a uniform element; raises [Invalid_argument] on
    the empty list. *)
val pick : t -> 'a list -> 'a

(** [shuffle t items] is a uniform permutation of [items]. *)
val shuffle : t -> 'a list -> 'a list
