module Imap = Map.Make (Int)

type t = int Imap.t

let empty = Imap.empty
let get cv tid = match Imap.find_opt tid cv with Some c -> c | None -> 0

let set cv tid clk =
  if clk < 0 then invalid_arg "Clockvec.set: negative clock"
  else if clk = 0 then Imap.remove tid cv
  else Imap.add tid clk cv

let tick cv tid = set cv tid (get cv tid + 1)

let join a b =
  Imap.union (fun _ x y -> Some (max x y)) a b

let leq a b = Imap.for_all (fun tid c -> c <= get b tid) a
let equal a b = Imap.equal Int.equal a b
let lt a b = leq a b && not (equal a b)
let concurrent a b = (not (leq a b)) && not (leq b a)

let of_list assoc =
  List.fold_left (fun cv (tid, clk) -> set cv tid clk) empty assoc

let to_list cv = Imap.bindings cv

let pp ppf cv =
  let pp_entry ppf (tid, clk) = Format.fprintf ppf "%d:%d" tid clk in
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_entry)
    (to_list cv)
