let hex64 v = Printf.sprintf "0x%016Lx" v

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let rule width = String.make width '-'

let trim_right s =
  let n = String.length s in
  let rec last i = if i > 0 && s.[i - 1] = ' ' then last (i - 1) else i in
  String.sub s 0 (last n)

let table ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make (max ncols 1) 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let render row =
    row
    |> List.mapi (fun i cell -> pad widths.(i) cell)
    |> String.concat "  "
    |> trim_right
  in
  let total = Array.fold_left ( + ) 0 widths + (2 * max 0 (ncols - 1)) in
  let lines = render header :: rule total :: List.map render rows in
  String.concat "\n" lines
