(** Vector clocks over thread identifiers.

    A clock vector maps each thread id to a logical clock value; absent
    entries are zero.  They order events by happens-before: [leq a b] holds
    when every component of [a] is at most the corresponding component of
    [b].  Yashme uses clock vectors for the consistent-prefix computation
    ([CVpre]), for the per-cache-line write-back lower bound ([lastflush])
    and for the happens-before guard on flush-map updates (paper, section
    6). *)

type t

(** The empty clock vector (all components zero). *)
val empty : t

(** [get cv tid] is the component of [cv] for thread [tid]; 0 if absent. *)
val get : t -> int -> int

(** [set cv tid clk] is [cv] with the component for [tid] replaced by
    [clk].  Raises [Invalid_argument] if [clk < 0]. *)
val set : t -> int -> int -> t

(** [tick cv tid] increments the component for [tid] by one. *)
val tick : t -> int -> t

(** [join a b] is the component-wise maximum of [a] and [b]. *)
val join : t -> t -> t

(** [leq a b] holds when [a] happens-before-or-equals [b] component-wise. *)
val leq : t -> t -> bool

(** [lt a b] is [leq a b && not (equal a b)]. *)
val lt : t -> t -> bool

(** Structural equality (treats absent components as zero). *)
val equal : t -> t -> bool

(** [concurrent a b] holds when neither [leq a b] nor [leq b a]. *)
val concurrent : t -> t -> bool

(** [of_list assoc] builds a clock vector from [(tid, clock)] pairs. *)
val of_list : (int * int) list -> t

(** [to_list cv] lists the nonzero [(tid, clock)] pairs in increasing
    thread-id order. *)
val to_list : t -> (int * int) list

(** Pretty-printer, e.g. [<0:3, 2:1>]. *)
val pp : Format.formatter -> t -> unit
