(* SplitMix64: tiny, fast, reproducible across OCaml versions (unlike
   [Random], whose algorithm changed between releases). *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }
let split t = { state = mix (next t) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the conversion to a 63-bit native int never wraps
     negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let chance t p = float t < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

let shuffle t items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
