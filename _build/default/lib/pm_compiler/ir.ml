type operand = Const of int64 | Tmp of int

type inst =
  | Store of { addr : int; size : int; value : operand; volatile : bool }
  | Load of { dst : int; addr : int; size : int }
  | Memset of { addr : int; byte : int; len : int }
  | Memcpy of { dst : int; src : int; len : int }
  | Memmove of { dst : int; src : int; len : int }
  | Flush of int
  | Fence
  | Other

type program = { name : string; insts : inst list }

let mem_ops p =
  List.length
    (List.filter
       (function Memset _ | Memcpy _ | Memmove _ -> true | _ -> false)
       p.insts)

let plain_stores p =
  List.length
    (List.filter (function Store { volatile = false; _ } -> true | _ -> false) p.insts)

let pp_operand ppf = function
  | Const v -> Format.fprintf ppf "%Ld" v
  | Tmp i -> Format.fprintf ppf "t%d" i

let pp_inst ppf = function
  | Store { addr; size; value; volatile } ->
      Format.fprintf ppf "store%s [%d..+%d] <- %a"
        (if volatile then ".volatile" else "")
        addr size pp_operand value
  | Load { dst; addr; size } -> Format.fprintf ppf "t%d <- load [%d..+%d]" dst addr size
  | Memset { addr; byte; len } -> Format.fprintf ppf "memset([%d], %d, %d)" addr byte len
  | Memcpy { dst; src; len } -> Format.fprintf ppf "memcpy([%d], [%d], %d)" dst src len
  | Memmove { dst; src; len } -> Format.fprintf ppf "memmove([%d], [%d], %d)" dst src len
  | Flush addr -> Format.fprintf ppf "clwb [%d]" addr
  | Fence -> Format.fprintf ppf "sfence"
  | Other -> Format.fprintf ppf "..."

let pp ppf p =
  Format.fprintf ppf "@[<v>%s:" p.name;
  List.iter (fun i -> Format.fprintf ppf "@,  %a" pp_inst i) p.insts;
  Format.fprintf ppf "@]"
