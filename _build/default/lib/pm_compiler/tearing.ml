open Pm_runtime

let store_paired ?label addr v =
  Pmem.store ?label ~size:4 addr (Int64.logand v 0xFFFFFFFFL);
  Pmem.store ?label ~size:4 (addr + 4) (Int64.shift_right_logical v 32)

let store_bytewise ?label addr v size =
  for i = 0 to size - 1 do
    Pmem.store ?label ~size:1 (addr + i)
      (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)
  done

let paired_stores = 2
let bytewise_stores size = size
