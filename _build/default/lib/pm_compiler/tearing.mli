(** Runtime helpers that perform stores the way an optimizing backend
    would — torn — so examples can observe mixed values after a crash
    (Figure 1: gcc ARM64 emits a pair of 32-bit stores for a 64-bit
    store, and the post-crash execution can print [0x12345678]). *)

(** [store_paired addr v] writes [v] as two non-atomic 32-bit halves,
    low half first — the gcc-ARM64 lowering of a 64-bit store. *)
val store_paired : ?label:string -> Px86.Addr.t -> int64 -> unit

(** [store_bytewise addr v size] writes one byte at a time — the worst
    legal lowering (or an inlined [memset]/[memcpy] tail). *)
val store_bytewise : ?label:string -> Px86.Addr.t -> int64 -> int -> unit

(** Number of machine stores each lowering emits (for crash planning:
    a crash between micro-store [i] and [i+1] yields a mixed value). *)
val paired_stores : int

val bytewise_stores : int -> int
