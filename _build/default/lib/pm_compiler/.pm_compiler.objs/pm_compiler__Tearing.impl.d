lib/pm_compiler/tearing.ml: Int64 Pm_runtime Pmem
