lib/pm_compiler/ir.ml: Format List
