lib/pm_compiler/passes.ml: Int64 Ir List String Yashme_util
