lib/pm_compiler/passes.mli: Ir
