lib/pm_compiler/programs.ml: Ir List Passes Yashme_util
