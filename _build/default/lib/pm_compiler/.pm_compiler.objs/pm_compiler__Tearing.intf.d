lib/pm_compiler/tearing.mli: Px86
