lib/pm_compiler/programs.mli: Ir
