lib/pm_compiler/ir.mli: Format
