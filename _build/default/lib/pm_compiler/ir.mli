(** A small store-oriented IR modelling the code shapes that make
    compilers introduce persistency races (paper, section 3.2): runs of
    contiguous stores that gcc/clang rewrite into [memset]/[memcpy]/
    [memmove] calls, and wide stores that backends may tear.

    Addresses are symbolic byte offsets within one object. *)

type operand =
  | Const of int64
  | Tmp of int  (** a virtual register *)

type inst =
  | Store of { addr : int; size : int; value : operand; volatile : bool }
      (** a source-level assignment; [volatile] forbids optimization *)
  | Load of { dst : int; addr : int; size : int }
  | Memset of { addr : int; byte : int; len : int }
  | Memcpy of { dst : int; src : int; len : int }
  | Memmove of { dst : int; src : int; len : int }
  | Flush of int
  | Fence
  | Other  (** arithmetic / control we don't model *)

type program = { name : string; insts : inst list }

(** [mem_ops p] counts the [Memset]/[Memcpy]/[Memmove] calls — the
    quantity compared in Table 2b. *)
val mem_ops : program -> int

(** Plain (non-volatile) [Store] instructions. *)
val plain_stores : program -> int

val pp_inst : Format.formatter -> inst -> unit
val pp : Format.formatter -> program -> unit
