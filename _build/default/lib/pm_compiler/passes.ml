type target = X86_64 | Arm64

type catalog = {
  compiler : string;
  target : target;
  merges_zero_stores : bool;
  merges_assignments : bool;
  pairs_wide_stores : bool;
}

(* Table 2a of the paper. *)
let known_compilers =
  [
    { compiler = "gcc"; target = Arm64; merges_zero_stores = true;
      merges_assignments = true; pairs_wide_stores = true };
    { compiler = "clang"; target = Arm64; merges_zero_stores = true;
      merges_assignments = true; pairs_wide_stores = false };
    { compiler = "clang"; target = X86_64; merges_zero_stores = true;
      merges_assignments = true; pairs_wide_stores = false };
    { compiler = "gcc"; target = X86_64; merges_zero_stores = false;
      merges_assignments = true; pairs_wide_stores = false };
  ]

(* A constant whose bytes are all equal can come from a repeated-byte
   memset; returns that byte. *)
let repeated_byte size v =
  let b = Int64.to_int (Int64.logand v 0xFFL) in
  let rec check i =
    if i >= size then Some b
    else if Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) = b
    then check (i + 1)
    else None
  in
  check 1

let memset_idiom (p : Ir.program) =
  let rec rewrite acc = function
    | [] -> List.rev acc
    | Ir.Store { addr; size; value = Ir.Const v; volatile = false } :: rest as all -> (
        match repeated_byte size v with
        | None -> rewrite (List.hd all :: acc) rest
        | Some byte ->
            (* Extend the run over contiguous same-byte constant stores. *)
            let rec extend stop rest =
              match rest with
              | Ir.Store { addr = a; size = s; value = Ir.Const v'; volatile = false }
                :: more
                when a = stop && repeated_byte s v' = Some byte ->
                  extend (stop + s) more
              | _ -> (stop, rest)
            in
            let stop, rest' = extend (addr + size) rest in
            if stop - addr > size then
              rewrite (Ir.Memset { addr; byte; len = stop - addr } :: acc) rest'
            else rewrite (List.hd all :: acc) rest)
    | inst :: rest -> rewrite (inst :: acc) rest
  in
  { p with insts = rewrite [] p.Ir.insts }

let memset_merge (p : Ir.program) =
  let rec rewrite acc = function
    | Ir.Memset { addr; byte; len }
      :: Ir.Memset { addr = a2; byte = b2; len = l2 }
      :: rest
      when a2 = addr + len && b2 = byte ->
        rewrite acc (Ir.Memset { addr; byte; len = len + l2 } :: rest)
    | inst :: rest -> rewrite (inst :: acc) rest
    | [] -> List.rev acc
  in
  { p with insts = rewrite [] p.Ir.insts }

let ranges_overlap d s len = abs (d - s) < len

let memcpy_idiom (p : Ir.program) =
  (* A copy pair is Load t, addr_src; Store addr_dst, Tmp t. *)
  let rec rewrite acc = function
    | Ir.Load { dst = t1; addr = src; size }
      :: Ir.Store { addr = dst; size = s2; value = Ir.Tmp t2; volatile = false }
      :: rest
      when t1 = t2 && size = s2 ->
        let rec extend len rest =
          match rest with
          | Ir.Load { dst = t1'; addr = src'; size = s' }
            :: Ir.Store { addr = dst'; size = s2'; value = Ir.Tmp t2'; volatile = false }
            :: more
            when t1' = t2' && s' = s2' && src' = src + len && dst' = dst + len ->
              extend (len + s') more
          | _ -> (len, rest)
        in
        let len, rest' = extend size rest in
        if len > size then
          let call =
            if ranges_overlap dst src len then Ir.Memmove { dst; src; len }
            else Ir.Memcpy { dst; src; len }
          in
          rewrite (call :: acc) rest'
        else rewrite (Ir.Store { addr = dst; size = s2; value = Ir.Tmp t2; volatile = false } :: Ir.Load { dst = t1; addr = src; size } :: acc) rest
    | inst :: rest -> rewrite (inst :: acc) rest
    | [] -> List.rev acc
  in
  { p with insts = rewrite [] p.Ir.insts }

let pair_wide_stores (p : Ir.program) =
  let split = function
    | Ir.Store { addr; size = 8; value = Ir.Const v; volatile = false } ->
        [
          Ir.Store { addr; size = 4; value = Ir.Const (Int64.logand v 0xFFFFFFFFL);
                     volatile = false };
          Ir.Store { addr = addr + 4; size = 4;
                     value = Ir.Const (Int64.shift_right_logical v 32); volatile = false };
        ]
    | inst -> [ inst ]
  in
  { p with insts = List.concat_map split p.Ir.insts }

(* Store inventing: when more than [pressure] temporaries are live, the
   compiler spills an intermediate into the destination of an upcoming
   guaranteed store.  We model the spill as an extra store of Tmp (-1)
   (transient garbage) immediately before the committed store. *)
let invented_marker = Ir.Tmp (-1)

let invent_stores ?(pressure = 4) (p : Ir.program) =
  let live = ref 0 in
  let rewrite inst =
    match inst with
    | Ir.Load { dst = _; _ } ->
        incr live;
        [ inst ]
    | Ir.Store { addr; size; volatile = false; _ } when !live > pressure ->
        live := 0;
        [ Ir.Store { addr; size; value = invented_marker; volatile = false }; inst ]
    | Ir.Store _ ->
        live := max 0 (!live - 1);
        [ inst ]
    | Ir.Other | Ir.Fence | Ir.Flush _ | Ir.Memset _ | Ir.Memcpy _ | Ir.Memmove _ ->
        [ inst ]
  in
  { p with insts = List.concat_map rewrite p.Ir.insts }

let invented_stores (p : Ir.program) =
  List.length
    (List.filter
       (function
         | Ir.Store { value; volatile = false; _ } -> value = invented_marker
         | _ -> false)
       p.Ir.insts)

let optimize cat p =
  let p = if cat.merges_zero_stores then memset_merge (memset_idiom p) else p in
  let p = if cat.merges_assignments then memcpy_idiom p else p in
  if cat.pairs_wide_stores then pair_wide_stores p else p

let target_to_string = function X86_64 -> "x86-64" | Arm64 -> "ARM64"

let table_2a () =
  let row c =
    let opts =
      List.filter_map
        (fun (flag, desc) -> if flag then Some desc else None)
        [
          (c.pairs_wide_stores, "non-atomic pair of stores for a 64-bit store");
          (c.merges_zero_stores, "seq. of zero stores -> memset");
          (c.merges_assignments, "seq. of assignments -> memcpy/memmove");
        ]
    in
    [ c.compiler; target_to_string c.target; String.concat "; " opts ]
  in
  Yashme_util.Pretty.table
    ~header:[ "Compiler"; "Arch"; "Store Optimizations" ]
    (List.map row known_compilers)
