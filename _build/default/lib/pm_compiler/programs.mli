(** IR encodings of the initialization and copy paths of the index
    benchmarks, shaped after the paper's empirical study (section 3.2):
    each program carries the memory-operation calls present in its
    source plus the store runs that clang -O3 rewrites into more of
    them.  [table_2b] compares source-level and post-optimization
    counts. *)

(** Source-level IR of each benchmark, in Table 2b row order. *)
val all : Ir.program list

val find : string -> Ir.program

(** [counts p] is (source mem-ops, post-optimization mem-ops) under the
    clang/x86-64 catalog entry. *)
val counts : Ir.program -> int * int

(** Render Table 2b. *)
val table_2b : unit -> string
