(* Builders for the code shapes of section 3.2.  Each helper advances a
   cursor so runs never touch and cannot merge accidentally; an [Other]
   instruction separates regions (control flow in the real code). *)

type builder = { mutable cursor : int; mutable acc : Ir.inst list }

let make () = { cursor = 0; acc = [] }
let emit b i = b.acc <- i :: b.acc

let fresh b n =
  (* Leave a gap so regions are never contiguous. *)
  let a = b.cursor + 64 in
  b.cursor <- a + n;
  a

(* An explicit memset call in the source. *)
let src_memset b len =
  let a = fresh b len in
  emit b (Ir.Memset { addr = a; byte = 0; len });
  emit b Ir.Other

(* [k] explicit memsets over adjacent ranges (P-ART's constructor
   pattern): the optimizer coalesces each adjacent group into one. *)
let adjacent_memsets b k len =
  let a = fresh b (k * len) in
  for i = 0 to k - 1 do
    emit b (Ir.Memset { addr = a + (i * len); byte = 0; len })
  done;
  emit b Ir.Other

(* A run of contiguous zero assignments (field initialization). *)
let zero_run b n =
  let a = fresh b (8 * n) in
  for i = 0 to n - 1 do
    emit b (Ir.Store { addr = a + (8 * i); size = 8; value = Ir.Const 0L; volatile = false })
  done;
  emit b Ir.Other

(* A run of contiguous field-to-field assignments (struct copy). *)
let copy_run b n =
  let src = fresh b (8 * n) in
  let dst = fresh b (8 * n) in
  for i = 0 to n - 1 do
    emit b (Ir.Load { dst = i; addr = src + (8 * i); size = 8 });
    emit b (Ir.Store { addr = dst + (8 * i); size = 8; value = Ir.Tmp i; volatile = false })
  done;
  emit b Ir.Other

(* Volatile critical stores (P-CLHT's lock-free design): never folded. *)
let volatile_stores b n =
  let a = fresh b (8 * n) in
  for i = 0 to n - 1 do
    emit b (Ir.Store { addr = a + (8 * i); size = 8; value = Ir.Const 1L; volatile = true })
  done;
  emit b Ir.Other

let build name f =
  let b = make () in
  f b;
  { Ir.name; insts = List.rev b.acc }

(* Shapes chosen to match the study: #src-op as in the benchmarks'
   sources, optimizable runs as clang -O3 found them (Table 2b). *)

let cceh =
  build "CCEH" (fun b ->
      for _ = 1 to 6 do src_memset b 64 done;
      (* Segment construction and directory doubling: many zeroing and
         bulk-copy sites. *)
      for _ = 1 to 17 do zero_run b 8 done;
      for _ = 1 to 10 do copy_run b 4 done)

let fast_fair =
  build "Fast_Fair" (fun b ->
      src_memset b 64;
      for _ = 1 to 2 do zero_run b 6 done;
      copy_run b 4)

let p_art =
  build "P-ART" (fun b ->
      (* 14 inefficient constructor memsets in 3 adjacent groups... *)
      adjacent_memsets b 5 16;
      adjacent_memsets b 5 16;
      adjacent_memsets b 4 16;
      (* ...plus 3 standalone ones... *)
      for _ = 1 to 3 do src_memset b 32 done;
      (* ...and two copy sites the compiler turns into memcpy. *)
      for _ = 1 to 2 do copy_run b 4 done)

let p_bwtree =
  build "P-BwTree" (fun b ->
      for _ = 1 to 6 do src_memset b 64 done;
      for _ = 1 to 5 do zero_run b 8 done;
      for _ = 1 to 4 do copy_run b 6 done)

let p_clht =
  build "P-CLHT" (fun b ->
      (* Lock-free design: critical stores are volatile; nothing for the
         optimizer to fold. *)
      for _ = 1 to 6 do volatile_stores b 4 done)

let p_masstree =
  build "P-Masstree" (fun b ->
      for _ = 1 to 3 do src_memset b 32 done;
      for _ = 1 to 7 do zero_run b 6 done;
      for _ = 1 to 4 do copy_run b 8 done)

let all = [ cceh; fast_fair; p_art; p_bwtree; p_clht; p_masstree ]

let find name =
  match List.find_opt (fun (p : Ir.program) -> p.Ir.name = name) all with
  | Some p -> p
  | None -> raise Not_found

let clang_x86 =
  List.find
    (fun (c : Passes.catalog) -> c.Passes.compiler = "clang" && c.Passes.target = Passes.X86_64)
    Passes.known_compilers

let counts p = (Ir.mem_ops p, Ir.mem_ops (Passes.optimize clang_x86 p))

let table_2b () =
  let rows =
    List.map
      (fun p ->
        let src, asm = counts p in
        [ p.Ir.name; string_of_int src; string_of_int asm ])
      all
  in
  Yashme_util.Pretty.table ~header:[ "Prog"; "#src-op"; "#asm-op" ] rows
