(** The store optimizations of Table 2a, as IR-to-IR passes.

    All of them are legal for non-volatile accesses under the C/C++
    data-race-freedom assumption — and all of them can turn an innocent
    assignment into a multi-instruction write that a crash can persist
    partially. *)

type target = X86_64 | Arm64

(** Which optimizations a compiler applies on a target (Table 2a). *)
type catalog = {
  compiler : string;
  target : target;
  merges_zero_stores : bool;  (** stores of zero -> memset *)
  merges_assignments : bool;  (** assignment runs -> memcpy/memmove *)
  pairs_wide_stores : bool;  (** 64-bit store -> two 32-bit stores *)
}

(** The six compiler/target rows of Table 2a. *)
val known_compilers : catalog list

(** Replace runs (>= 2) of contiguous non-volatile constant stores of a
    repeated byte with [Memset]. *)
val memset_idiom : Ir.program -> Ir.program

(** Coalesce adjacent [Memset]s of the same byte over contiguous ranges
    (what turned P-ART's 14 constructor memsets into 3). *)
val memset_merge : Ir.program -> Ir.program

(** Replace runs (>= 2) of contiguous load/store copy pairs with
    [Memcpy], or [Memmove] when the ranges overlap. *)
val memcpy_idiom : Ir.program -> Ir.program

(** Tear non-volatile 8-byte stores into two 4-byte stores (the gcc
    ARM64 pair-store behaviour of Figure 1). *)
val pair_wide_stores : Ir.program -> Ir.program

(** Store inventing (paper, sections 3 and 7.2): under register
    pressure a compiler may legally stash a temporary into a location
    the program is guaranteed to write anyway.  This pass models it by
    spilling the intermediate of a two-instruction computation into the
    final non-volatile destination before the real store — a transient
    garbage value a crash can persist.  [pressure] is the number of
    live temporaries that triggers a spill. *)
val invent_stores : ?pressure:int -> Ir.program -> Ir.program

(** Count the invented (transient) stores of a program produced by
    [invent_stores]. *)
val invented_stores : Ir.program -> int

(** The -O3-style pipeline for a given catalog entry. *)
val optimize : catalog -> Ir.program -> Ir.program

(** Render Table 2a. *)
val table_2a : unit -> string
