type finding = {
  label : string;
  benign : bool;
  count : int;
  example : Yashme.Race.t;
}

type t = {
  program : string;
  executions : int;
  raw_races : int;
  findings : finding list;
}

let dedup ~program ~executions races =
  let tbl : (string, finding) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Yashme.Race.t) ->
      let key = Yashme.Race.dedup_key r in
      match Hashtbl.find_opt tbl key with
      | None ->
          Hashtbl.add tbl key
            { label = key; benign = r.Yashme.Race.benign; count = 1; example = r }
      | Some f ->
          Hashtbl.replace tbl key
            {
              f with
              count = f.count + 1;
              (* a finding is benign only if every observation was *)
              benign = f.benign && r.Yashme.Race.benign;
            })
    races;
  let findings =
    Hashtbl.fold (fun _ f acc -> f :: acc) tbl []
    |> List.sort (fun a b -> compare a.label b.label)
  in
  { program; executions; raw_races = List.length races; findings }

let real t = List.filter (fun f -> not f.benign) t.findings
let benign t = List.filter (fun f -> f.benign) t.findings

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d distinct persistency race(s) (%d raw, %d benign) in %d execution(s)"
    t.program
    (List.length (real t))
    t.raw_races
    (List.length (benign t))
    t.executions;
  List.iter
    (fun f ->
      Format.fprintf ppf "@,  %s %s (%d report%s)"
        (if f.benign then "[benign]" else "[race]  ")
        f.label f.count
        (if f.count = 1 then "" else "s"))
    t.findings;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
