type t = {
  name : string;
  setup : (unit -> unit) option;
  pre : unit -> unit;
  post : unit -> unit;
}

let make ?setup ~name ~pre ~post () = { name; setup; pre; post }
