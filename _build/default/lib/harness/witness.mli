(** Race witnesses: the paper reports each persistency race together
    with "the pre-crash execution prefix E+ combined with the post-crash
    execution E'" (section 5.1).  This module renders that witness from
    a recorded {!Px86.Trace.t} of the racing execution. *)

(** [explain ~trace ~detector race] renders the racing store, the
    smallest consistent pre-crash prefix observed so far (from the
    execution record's [CVpre]), and the events inside it. *)
val explain :
  trace:Px86.Trace.t -> detector:Yashme.Detector.t -> race:Yashme.Race.t -> string
