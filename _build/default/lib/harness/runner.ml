module Executor = Pm_runtime.Executor
module Rng = Yashme_util.Rng

type options = {
  mode : Yashme.Detector.mode;
  eadr : bool;
  coherence : bool;
  check_candidates : bool;
  sched : Executor.sched_policy;
  sb_policy : Px86.Machine.sb_policy;
  cut : Px86.Machine.cut_strategy;
  seed : int;
}

let default_options =
  {
    mode = Yashme.Detector.Prefix;
    eadr = false;
    coherence = true;
    check_candidates = true;
    sched = Executor.Round_robin;
    sb_policy = Px86.Machine.Eager;
    cut = Px86.Machine.Cut_all;
    seed = 42;
  }

(* Execution ids within one failure scenario: the setup phase is not
   registered with the detector (its data is trusted after a clean
   shutdown); pre-crash is 1, recovery is 2. *)
let setup_exec = 0
let pre_exec = 1
let post_exec = 2

let run_setup opts (p : Program.t) =
  match p.Program.setup with
  | None -> None
  | Some setup ->
      let r =
        Executor.run ~plan:Executor.Run_to_end ~sb_policy:opts.sb_policy
          ~seed:opts.seed ~exec_id:setup_exec setup
      in
      Some r.Executor.state

let count_flush_points ?(options = default_options) (p : Program.t) =
  let inherited = run_setup options p in
  let r =
    Executor.run ?inherited ~plan:Executor.Run_to_end ~sb_policy:options.sb_policy
      ~sched:options.sched ~seed:options.seed ~exec_id:pre_exec p.Program.pre
  in
  r.Executor.flush_points

let run_once ?(options = default_options) ~plan (p : Program.t) =
  let inherited = run_setup options p in
  let detector =
    Yashme.Detector.create ~mode:options.mode ~eadr:options.eadr
      ~coherence:options.coherence ()
  in
  let pre_result =
    Executor.run ~detector ?inherited ~plan ~sb_policy:options.sb_policy
      ~cut:options.cut ~sched:options.sched ~seed:options.seed
      ~check_candidates:options.check_candidates ~exec_id:pre_exec p.Program.pre
  in
  let crash_happened =
    match pre_result.Executor.outcome with
    | Executor.Crashed -> true
    | Executor.Completed -> (
        (* [Crash_at_end] completes and then crashes; targeted plans that
           never fired leave a cleanly shut-down state with no crash. *)
        match plan with
        | Executor.Crash_at_end -> true
        | Executor.Run_to_end | Executor.Crash_before_op _
        | Executor.Crash_before_flush _ -> false)
  in
  let post_result =
    if crash_happened then
      Some
        (Executor.run ~detector ~inherited:pre_result.Executor.state
           ~plan:Executor.Run_to_end ~sb_policy:options.sb_policy
           ~sched:options.sched ~seed:(options.seed + 1)
           ~check_candidates:options.check_candidates ~exec_id:post_exec
           p.Program.post)
    else None
  in
  (detector, pre_result, post_result)

let run_once_traced ?(options = default_options) ~plan (p : Program.t) =
  let inherited = run_setup options p in
  let detector =
    Yashme.Detector.create ~mode:options.mode ~eadr:options.eadr
      ~coherence:options.coherence ()
  in
  let trace, trace_observer = Px86.Trace.recorder () in
  let pre_result =
    Executor.run ~detector ?inherited ~plan ~sb_policy:options.sb_policy
      ~cut:options.cut ~sched:options.sched ~seed:options.seed
      ~check_candidates:options.check_candidates ~observer:trace_observer
      ~exec_id:pre_exec p.Program.pre
  in
  (match pre_result.Executor.outcome with
  | Executor.Crashed ->
      ignore
        (Executor.run ~detector ~inherited:pre_result.Executor.state
           ~plan:Executor.Run_to_end ~sb_policy:options.sb_policy
           ~sched:options.sched ~seed:(options.seed + 1)
           ~check_candidates:options.check_candidates ~exec_id:post_exec
           p.Program.post)
  | Executor.Completed ->
      if plan = Executor.Crash_at_end then
        ignore
          (Executor.run ~detector ~inherited:pre_result.Executor.state
             ~plan:Executor.Run_to_end ~sb_policy:options.sb_policy
             ~sched:options.sched ~seed:(options.seed + 1)
             ~check_candidates:options.check_candidates ~exec_id:post_exec
             p.Program.post));
  (detector, trace)

let model_check ?(options = default_options) (p : Program.t) =
  let points = count_flush_points ~options p in
  let plans =
    List.init points (fun n -> Executor.Crash_before_flush n)
    @ [ Executor.Crash_at_end ]
  in
  let races =
    List.concat_map
      (fun plan ->
        let detector, _, _ = run_once ~options ~plan p in
        Yashme.Detector.races detector)
      plans
  in
  Report.dedup ~program:p.Program.name ~executions:(List.length plans) races

(* Model-check the recovery procedure itself: for each pre-crash point,
   crash the recovery at each of ITS flush points and run a second
   recovery — the two-crash failure scenarios of section 6 ("a
   persistency race in the recovery procedure would require two
   crashes"). *)
let model_check_recovery ?(options = default_options) (p : Program.t) =
  let pre_points = count_flush_points ~options p in
  let pre_plans =
    List.init pre_points (fun n -> Executor.Crash_before_flush n)
    @ [ Executor.Crash_at_end ]
  in
  let races = ref [] in
  let executions = ref 0 in
  List.iter
    (fun pre_plan ->
      (* Count the recovery's own flush points for this pre-crash state. *)
      let inherited = run_setup options p in
      let probe_detector = Yashme.Detector.create ~mode:options.mode () in
      let pre_result =
        Executor.run ~detector:probe_detector ?inherited ~plan:pre_plan
          ~sb_policy:options.sb_policy ~cut:options.cut ~sched:options.sched
          ~seed:options.seed ~exec_id:pre_exec p.Program.pre
      in
      let crashed =
        pre_result.Executor.outcome = Executor.Crashed || pre_plan = Executor.Crash_at_end
      in
      if crashed then begin
        let post_probe =
          Executor.run ~detector:probe_detector ~inherited:pre_result.Executor.state
            ~plan:Executor.Run_to_end ~sb_policy:options.sb_policy ~sched:options.sched
            ~seed:(options.seed + 1) ~exec_id:post_exec p.Program.post
        in
        let post_points = post_probe.Executor.flush_points in
        (* Now re-run with a crash inside the recovery at each point,
           followed by a second recovery. *)
        List.iter
          (fun post_n ->
            let inherited = run_setup options p in
            let detector =
              Yashme.Detector.create ~mode:options.mode ~eadr:options.eadr
                ~coherence:options.coherence ()
            in
            let r1 =
              Executor.run ~detector ?inherited ~plan:pre_plan
                ~sb_policy:options.sb_policy ~cut:options.cut ~sched:options.sched
                ~seed:options.seed ~exec_id:pre_exec p.Program.pre
            in
            let r2 =
              Executor.run ~detector ~inherited:r1.Executor.state
                ~plan:(Executor.Crash_before_flush post_n) ~sb_policy:options.sb_policy
                ~cut:options.cut ~sched:options.sched ~seed:(options.seed + 1)
                ~exec_id:post_exec p.Program.post
            in
            if r2.Executor.outcome = Executor.Crashed then begin
              let _ =
                Executor.run ~detector ~inherited:r2.Executor.state
                  ~plan:Executor.Run_to_end ~sb_policy:options.sb_policy
                  ~sched:options.sched ~seed:(options.seed + 2) ~exec_id:(post_exec + 1)
                  p.Program.post
              in
              incr executions;
              races := Yashme.Detector.races detector @ !races
            end)
          (List.init post_points (fun n -> n))
      end)
    pre_plans;
  Report.dedup ~program:(p.Program.name ^ "+recovery") ~executions:!executions !races

let random_plan rng points =
  let n = Rng.int rng (points + 1) in
  if n = points then Executor.Crash_at_end else Executor.Crash_before_flush n

let program_seed (p : Program.t) seed =
  (* Decorrelate programs sharing a numeric seed. *)
  Hashtbl.hash (p.Program.name, seed)

let random_mode ?(options = default_options) ~execs (p : Program.t) =
  let options = { options with seed = program_seed p options.seed } in
  let rng = Rng.create options.seed in
  let points = max 1 (count_flush_points ~options p) in
  let races =
    List.concat_map
      (fun i ->
        let seed = options.seed + (7919 * (i + 1)) in
        let options = { options with seed; sched = Executor.Random_sched } in
        let plan = random_plan rng points in
        let detector, _, _ = run_once ~options ~plan p in
        Yashme.Detector.races detector)
      (List.init execs (fun i -> i))
  in
  Report.dedup ~program:p.Program.name ~executions:execs races

let single_random ?(options = default_options) (p : Program.t) =
  random_mode ~options ~execs:1 p

let time_run f =
  let t0 = Sys.time () in
  let _ = f () in
  Sys.time () -. t0

let time_with_detector ?(options = default_options) (p : Program.t) =
  time_run (fun () -> single_random ~options p)

let time_without_detector ?(options = default_options) (p : Program.t) =
  time_run (fun () ->
      let options = { options with seed = program_seed p options.seed } in
      let rng = Rng.create options.seed in
      let points = max 1 (count_flush_points ~options p) in
      let plan = random_plan rng points in
      let inherited = run_setup options p in
      let options = { options with sched = Executor.Random_sched } in
      let pre_result =
        Executor.run ?inherited ~plan ~sb_policy:options.sb_policy ~cut:options.cut
          ~sched:options.sched
          ~seed:(options.seed + 7919)
          ~exec_id:pre_exec p.Program.pre
      in
      match pre_result.Executor.outcome with
      | Executor.Crashed ->
          ignore
            (Executor.run ~inherited:pre_result.Executor.state
               ~plan:Executor.Run_to_end ~sb_policy:options.sb_policy
               ~sched:options.sched
               ~seed:(options.seed + 7920)
               ~exec_id:post_exec p.Program.post)
      | Executor.Completed -> ())
