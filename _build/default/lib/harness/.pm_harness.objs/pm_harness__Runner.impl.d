lib/harness/runner.ml: Hashtbl List Pm_runtime Program Px86 Report Sys Yashme Yashme_util
