lib/harness/witness.mli: Px86 Yashme
