lib/harness/program.ml:
