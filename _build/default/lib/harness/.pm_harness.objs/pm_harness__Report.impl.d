lib/harness/report.ml: Format Hashtbl List Yashme
