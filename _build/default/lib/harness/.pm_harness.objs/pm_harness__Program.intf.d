lib/harness/program.mli:
