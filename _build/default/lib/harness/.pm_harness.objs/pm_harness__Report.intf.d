lib/harness/report.mli: Format Yashme
