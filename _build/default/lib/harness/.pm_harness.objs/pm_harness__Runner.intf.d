lib/harness/runner.mli: Pm_runtime Program Px86 Report Yashme
