lib/harness/witness.ml: Buffer Format List Printf Px86 Yashme Yashme_util
