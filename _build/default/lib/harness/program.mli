(** A crash-testable PM program: workload plus recovery. *)

type t = {
  name : string;
  setup : (unit -> unit) option;
      (** optional pre-population phase, always run to clean completion
          before the crashy phase (e.g. creating the pool) *)
  pre : unit -> unit;  (** the pre-crash workload *)
  post : unit -> unit;  (** the post-crash recovery / reader *)
}

val make : ?setup:(unit -> unit) -> name:string -> pre:(unit -> unit) ->
  post:(unit -> unit) -> unit -> t
