(* Tests for the effects-based runtime: the Pmem API surface, the
   executor's scheduling, crash plans, thread teardown, allocation,
   roots, determinism, and error propagation. *)

open Pm_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let run ?plan ?sched ?seed fn = Executor.run ?plan ?sched ?seed ~exec_id:0 fn

(* ------------------------------------------------------------------ *)
(* Basic API                                                            *)

let test_store_load_roundtrip () =
  let got = ref 0L in
  let _ = run (fun () ->
      let a = Pmem.alloc 8 in
      Pmem.store a 123L;
      got := Pmem.load a)
  in
  check_i64 "roundtrip" 123L !got

let test_sizes () =
  let ok = ref true in
  let _ = run (fun () ->
      let a = Pmem.alloc 16 in
      Pmem.store ~size:1 a 0xABL;
      Pmem.store ~size:2 (a + 2) 0xCDEFL;
      Pmem.store ~size:4 (a + 4) 0x12345678L;
      ok :=
        Pmem.load ~size:1 a = 0xABL
        && Pmem.load ~size:2 (a + 2) = 0xCDEFL
        && Pmem.load ~size:4 (a + 4) = 0x12345678L)
  in
  check "sized accesses" true !ok

let test_bytes_roundtrip () =
  let got = ref "" in
  let _ = run (fun () ->
      let a = Pmem.alloc 64 in
      Pmem.store_bytes a "hello, persistent world";
      got := Pmem.load_bytes a (String.length "hello, persistent world"))
  in
  Alcotest.(check string) "bytes roundtrip" "hello, persistent world" !got

let test_memset () =
  let ok = ref false in
  let _ = run (fun () ->
      let a = Pmem.alloc 32 in
      Pmem.memset a '\xFF' 20;
      ok :=
        Pmem.load ~size:8 a = -1L
        && Pmem.load ~size:4 (a + 16) = 0xFFFFFFFFL
        && Pmem.load ~size:4 (a + 20) = 0L)
  in
  check "memset range" true !ok

let test_cas_api () =
  let r = ref (false, false) in
  let _ = run (fun () ->
      let a = Pmem.alloc 8 in
      Pmem.store a 5L;
      let ok1 = Pmem.cas a ~expected:5L ~desired:6L in
      let ok2 = Pmem.cas a ~expected:5L ~desired:7L in
      r := (ok1, ok2))
  in
  check "first cas wins" true (fst !r);
  check "second cas fails" false (snd !r)

let test_alloc_alignment () =
  let addrs = ref [] in
  let _ = run (fun () ->
      let a = Pmem.alloc ~align:64 10 in
      let b = Pmem.alloc ~align:64 10 in
      let c = Pmem.alloc 8 in
      addrs := [ a; b; c ])
  in
  match !addrs with
  | [ a; b; c ] ->
      check_int "aligned a" 0 (a mod 64);
      check_int "aligned b" 0 (b mod 64);
      check "no overlap" true (b >= a + 10 && c >= b + 10)
  | _ -> Alcotest.fail "expected three allocations"

let test_alloc_invalid () =
  let exercised = ref false in
  let _ = run (fun () ->
      (try ignore (Pmem.alloc 0) with Invalid_argument _ -> exercised := true);
      (try ignore (Pmem.alloc ~align:3 8) with Invalid_argument _ -> ()))
  in
  check "bad alloc rejected" true !exercised

let test_roots () =
  let got = ref 0 in
  let _ = run (fun () ->
      let a = Pmem.alloc 8 in
      Pmem.set_root 3 a;
      got := Pmem.get_root 3)
  in
  check "root roundtrip" true (!got > 0);
  let bad = ref false in
  let _ = run (fun () -> try Pmem.set_root 9 1 with Invalid_argument _ -> bad := true) in
  check "slot range checked" true !bad

(* ------------------------------------------------------------------ *)
(* Threads                                                              *)

let test_spawn_join () =
  let sum = ref 0L in
  let _ = run (fun () ->
      let a = Pmem.alloc 32 in
      let ts =
        List.map
          (fun i ->
            Pmem.spawn (fun () -> Pmem.store (a + (8 * i)) (Int64.of_int (i + 1))))
          [ 0; 1; 2 ]
      in
      List.iter Pmem.join ts;
      sum :=
        Int64.add (Pmem.load a) (Int64.add (Pmem.load (a + 8)) (Pmem.load (a + 16))))
  in
  check_i64 "all threads ran" 6L !sum

let test_join_finished_thread () =
  let done_ = ref false in
  let _ = run (fun () ->
      let t = Pmem.spawn (fun () -> ()) in
      Pmem.yield ();
      Pmem.yield ();
      Pmem.join t;
      done_ := true)
  in
  check "join after finish returns" true !done_

let test_my_tid () =
  let tids = ref [] in
  let _ = run (fun () ->
      let t = Pmem.spawn (fun () -> tids := Pmem.my_tid () :: !tids) in
      Pmem.join t;
      tids := Pmem.my_tid () :: !tids)
  in
  Alcotest.(check (list int)) "main is 0, child is 1" [ 0; 1 ] !tids

let test_random_sched_deterministic () =
  let trace seed =
    let log = ref [] in
    let _ =
      run ~sched:Executor.Random_sched ~seed (fun () ->
          let a = Pmem.alloc 8 in
          let t1 = Pmem.spawn (fun () -> for _ = 1 to 5 do Pmem.store a 1L done) in
          let t2 = Pmem.spawn (fun () -> for _ = 1 to 5 do Pmem.store a 2L done) in
          Pmem.join t1;
          Pmem.join t2;
          log := [ Pmem.load a ])
    in
    !log
  in
  Alcotest.(check (list int64)) "same seed, same schedule" (trace 9) (trace 9)

(* ------------------------------------------------------------------ *)
(* Crash plans                                                          *)

let counter_program ~n () =
  let a = Pmem.alloc ~align:64 8 in
  Pmem.set_root 0 a;
  for i = 1 to n do
    Pmem.store a (Int64.of_int i);
    Pmem.clflush a;
    Pmem.mfence ()
  done

let read_counter state =
  let got = ref 0L in
  let _ =
    Executor.run ~inherited:state ~exec_id:1 (fun () ->
        got := Pmem.load (Pmem.get_root 0))
  in
  !got

let test_run_to_end () =
  let r = run ~plan:Executor.Run_to_end (counter_program ~n:3) in
  check "completed" true (r.Executor.outcome = Executor.Completed);
  check_i64 "all persisted" 3L (read_counter r.Executor.state)

let test_crash_at_end () =
  let r = run ~plan:Executor.Crash_at_end (counter_program ~n:3) in
  check "completed then crashed" true (r.Executor.outcome = Executor.Completed);
  check_i64 "cut-all keeps last value" 3L (read_counter r.Executor.state)

let test_crash_before_flush () =
  (* set_root accounts for flush points 0-1; iteration i's clflush is
     point 2i+2.  Crash before iteration 2's clflush: counter value 2 is
     committed but only 1 is flush-guaranteed. *)
  let r = run ~plan:(Executor.Crash_before_flush 4) (counter_program ~n:3) in
  check "crashed mid-run" true (r.Executor.outcome = Executor.Crashed);
  check_i64 "cut-all keeps committed value" 2L (read_counter r.Executor.state)

let test_crash_before_op () =
  let r = run ~plan:(Executor.Crash_before_op 0) (counter_program ~n:3) in
  check "crashed before anything" true (r.Executor.outcome = Executor.Crashed);
  check_int "no ops ran" 0 r.Executor.ops

let test_crash_now () =
  let r =
    run (fun () ->
        let a = Pmem.alloc 8 in
        Pmem.store a 1L;
        Pmem.crash_now ())
  in
  check "explicit crash" true (r.Executor.outcome = Executor.Crashed)

let test_crash_tears_down_threads () =
  (* All threads die at the crash; no code after the crash point runs. *)
  let after = ref false in
  let r =
    run ~plan:(Executor.Crash_before_flush 0) (fun () ->
        let a = Pmem.alloc 8 in
        let t = Pmem.spawn (fun () ->
            Pmem.store a 1L;
            Pmem.clflush a;
            after := true)
        in
        Pmem.join t;
        after := true)
  in
  check "crashed" true (r.Executor.outcome = Executor.Crashed);
  check "nothing ran past the crash" false !after

let test_ops_counted () =
  let r = run (fun () ->
      let a = Pmem.alloc 8 in
      Pmem.store a 1L;
      ignore (Pmem.load a);
      Pmem.clwb a;
      Pmem.sfence ())
  in
  check_int "ops" 4 r.Executor.ops;
  check_int "flush points" 2 r.Executor.flush_points

let test_exception_propagates () =
  Alcotest.check_raises "user exception escapes" (Failure "boom") (fun () ->
      ignore (run (fun () -> failwith "boom")))

let test_heap_break_persists () =
  let r1 = run ~plan:Executor.Crash_at_end (fun () -> ignore (Pmem.alloc 1000)) in
  let overlap = ref true in
  let _ =
    Executor.run ~inherited:r1.Executor.state ~exec_id:1 (fun () ->
        overlap := Pmem.alloc 8 < 1000)
  in
  check "allocator resumes past old break" false !overlap

let test_validating_nesting () =
  let _ = run (fun () ->
      Pmem.validating (fun () -> Pmem.validating (fun () -> ()));
      ())
  in
  ()

let test_deterministic_replay () =
  let fingerprint () =
    let r = run ~seed:5 ~plan:(Executor.Crash_before_flush 1) (counter_program ~n:4) in
    (r.Executor.ops, r.Executor.crashed_at_op)
  in
  check "same seed, same crash" true (fingerprint () = fingerprint ())

let () =
  Alcotest.run "runtime"
    [
      ( "pmem-api",
        [
          Alcotest.test_case "store/load" `Quick test_store_load_roundtrip;
          Alcotest.test_case "sized accesses" `Quick test_sizes;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "memset" `Quick test_memset;
          Alcotest.test_case "cas" `Quick test_cas_api;
          Alcotest.test_case "alloc alignment" `Quick test_alloc_alignment;
          Alcotest.test_case "alloc invalid" `Quick test_alloc_invalid;
          Alcotest.test_case "roots" `Quick test_roots;
        ] );
      ( "threads",
        [
          Alcotest.test_case "spawn/join" `Quick test_spawn_join;
          Alcotest.test_case "join finished" `Quick test_join_finished_thread;
          Alcotest.test_case "my_tid" `Quick test_my_tid;
          Alcotest.test_case "random sched deterministic" `Quick
            test_random_sched_deterministic;
        ] );
      ( "crash-plans",
        [
          Alcotest.test_case "run to end" `Quick test_run_to_end;
          Alcotest.test_case "crash at end" `Quick test_crash_at_end;
          Alcotest.test_case "crash before flush" `Quick test_crash_before_flush;
          Alcotest.test_case "crash before op" `Quick test_crash_before_op;
          Alcotest.test_case "crash_now" `Quick test_crash_now;
          Alcotest.test_case "teardown" `Quick test_crash_tears_down_threads;
          Alcotest.test_case "op counting" `Quick test_ops_counted;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "heap break persists" `Quick test_heap_break_persists;
          Alcotest.test_case "validating nesting" `Quick test_validating_nesting;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
        ] );
    ]
