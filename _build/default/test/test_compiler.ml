(* Tests for the store-optimization passes (Table 2a idioms) and the
   Table 2b study programs. *)

open Pm_compiler

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let store ?(volatile = false) addr size v =
  Ir.Store { addr; size; value = Ir.Const v; volatile }

let prog insts = { Ir.name = "t"; insts }

let count_kind p f = List.length (List.filter f p.Ir.insts)
let memsets p = count_kind p (function Ir.Memset _ -> true | _ -> false)
let memcpys p = count_kind p (function Ir.Memcpy _ -> true | _ -> false)
let memmoves p = count_kind p (function Ir.Memmove _ -> true | _ -> false)
let stores p = count_kind p (function Ir.Store _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* memset idiom                                                         *)

let test_memset_zero_run () =
  let p = prog [ store 0 8 0L; store 8 8 0L; store 16 8 0L ] in
  let p' = Passes.memset_idiom p in
  check_int "one memset" 1 (memsets p');
  check_int "no stores left" 0 (stores p');
  match p'.Ir.insts with
  | [ Ir.Memset { addr = 0; byte = 0; len = 24 } ] -> ()
  | _ -> Alcotest.fail "wrong memset shape"

let test_memset_repeated_byte () =
  let p = prog [ store 0 8 0x4242424242424242L; store 8 4 0x42424242L ] in
  let p' = Passes.memset_idiom p in
  match p'.Ir.insts with
  | [ Ir.Memset { byte = 0x42; len = 12; _ } ] -> ()
  | _ -> Alcotest.fail "repeated-byte run not recognized"

let test_memset_not_contiguous () =
  let p = prog [ store 0 8 0L; store 16 8 0L ] in
  check_int "gap blocks idiom" 0 (memsets (Passes.memset_idiom p))

let test_memset_single_store_kept () =
  let p = prog [ store 0 8 0L ] in
  check_int "single store untouched" 1 (stores (Passes.memset_idiom p))

let test_memset_volatile_blocked () =
  let p = prog [ store 0 8 0L; Ir.Store { addr = 8; size = 8; value = Ir.Const 0L; volatile = true }; store 16 8 0L ] in
  check_int "volatile splits the run" 0 (memsets (Passes.memset_idiom p))

let test_memset_mixed_bytes_blocked () =
  let p = prog [ store 0 8 0L; store 8 8 0x1111111111111111L ] in
  check_int "different bytes do not merge" 0 (memsets (Passes.memset_idiom p))

let test_memset_merge () =
  let p =
    prog
      [ Ir.Memset { addr = 0; byte = 0; len = 16 };
        Ir.Memset { addr = 16; byte = 0; len = 16 };
        Ir.Memset { addr = 32; byte = 0; len = 8 } ]
  in
  match (Passes.memset_merge p).Ir.insts with
  | [ Ir.Memset { addr = 0; byte = 0; len = 40 } ] -> ()
  | _ -> Alcotest.fail "adjacent memsets should coalesce"

let test_memset_merge_byte_mismatch () =
  let p =
    prog
      [ Ir.Memset { addr = 0; byte = 0; len = 16 };
        Ir.Memset { addr = 16; byte = 1; len = 16 } ]
  in
  check_int "byte mismatch keeps both" 2 (memsets (Passes.memset_merge p))

(* ------------------------------------------------------------------ *)
(* memcpy idiom                                                         *)

let copy_pair t src dst size =
  [ Ir.Load { dst = t; addr = src; size };
    Ir.Store { addr = dst; size; value = Ir.Tmp t; volatile = false } ]

let test_memcpy_run () =
  let p = prog (copy_pair 0 100 0 8 @ copy_pair 1 108 8 8 @ copy_pair 2 116 16 8) in
  let p' = Passes.memcpy_idiom p in
  check_int "one memcpy" 1 (memcpys p');
  match p'.Ir.insts with
  | [ Ir.Memcpy { dst = 0; src = 100; len = 24 } ] -> ()
  | _ -> Alcotest.fail "wrong memcpy shape"

let test_memmove_on_overlap () =
  let p = prog (copy_pair 0 0 4 8 @ copy_pair 1 8 12 8) in
  let p' = Passes.memcpy_idiom p in
  check_int "overlap -> memmove" 1 (memmoves p')

let test_memcpy_single_pair_kept () =
  let p = prog (copy_pair 0 100 0 8) in
  let p' = Passes.memcpy_idiom p in
  check_int "single pair untouched" 0 (memcpys p');
  check_int "load+store preserved" 1 (stores p')

(* ------------------------------------------------------------------ *)
(* pair_wide_stores                                                     *)

let test_pair_wide_stores () =
  let p = prog [ store 0 8 0x1234567812345678L ] in
  let p' = Passes.pair_wide_stores p in
  check_int "two halves" 2 (stores p');
  match p'.Ir.insts with
  | [ Ir.Store { addr = 0; size = 4; value = Ir.Const lo; _ };
      Ir.Store { addr = 4; size = 4; value = Ir.Const hi; _ } ] ->
      Alcotest.(check int64) "low half" 0x12345678L lo;
      Alcotest.(check int64) "high half" 0x12345678L hi
  | _ -> Alcotest.fail "expected a store pair"

let test_pair_skips_volatile_and_narrow () =
  let p =
    prog
      [ Ir.Store { addr = 0; size = 8; value = Ir.Const 1L; volatile = true };
        store 8 4 1L ]
  in
  check_int "untouched" 2 (stores (Passes.pair_wide_stores p))

let test_invent_stores_under_pressure () =
  let loads = List.init 6 (fun i -> Ir.Load { dst = i; addr = 100 + (8 * i); size = 8 }) in
  let p = prog (loads @ [ store 0 8 1L ]) in
  let p' = Passes.invent_stores ~pressure:4 p in
  check_int "one invented store" 1 (Passes.invented_stores p');
  (* The invented store lands on the same destination, before the real
     one. *)
  let rec find = function
    | Ir.Store { addr = 0; value; _ } :: Ir.Store { addr = 0; value = Ir.Const 1L; _ } :: _
      -> value = Ir.Tmp (-1)
    | _ :: rest -> find rest
    | [] -> false
  in
  check "spill precedes the real store" true (find p'.Ir.insts)

let test_invent_stores_respects_volatile () =
  let loads = List.init 6 (fun i -> Ir.Load { dst = i; addr = 100 + (8 * i); size = 8 }) in
  let p =
    prog (loads @ [ Ir.Store { addr = 0; size = 8; value = Ir.Const 1L; volatile = true } ])
  in
  check_int "no spill into volatile" 0 (Passes.invented_stores (Passes.invent_stores p))

let test_invent_stores_low_pressure () =
  let p = prog [ store 0 8 1L; store 8 8 2L ] in
  check_int "no pressure, no spill" 0 (Passes.invented_stores (Passes.invent_stores p))

(* ------------------------------------------------------------------ *)
(* Catalog + study programs                                             *)

let test_catalog_matches_table2a () =
  check_int "four compiler/arch rows" 4 (List.length Passes.known_compilers);
  let gcc_arm =
    List.find
      (fun (c : Passes.catalog) -> c.Passes.compiler = "gcc" && c.Passes.target = Passes.Arm64)
      Passes.known_compilers
  in
  check "gcc/ARM64 pairs wide stores" true gcc_arm.Passes.pairs_wide_stores;
  let gcc_x86 =
    List.find
      (fun (c : Passes.catalog) -> c.Passes.compiler = "gcc" && c.Passes.target = Passes.X86_64)
      Passes.known_compilers
  in
  check "gcc/x86 does not merge zero stores" false gcc_x86.Passes.merges_zero_stores

let test_table2b_counts () =
  (* The paper's Table 2b, verbatim. *)
  let expect = [ ("CCEH", 6, 33); ("Fast_Fair", 1, 4); ("P-ART", 17, 8);
                 ("P-BwTree", 6, 15); ("P-CLHT", 0, 0); ("P-Masstree", 3, 14) ] in
  List.iter
    (fun (name, src, asm) ->
      let p = Programs.find name in
      let s, a = Programs.counts p in
      check_int (name ^ " src ops") src s;
      check_int (name ^ " asm ops") asm a)
    expect

let test_asm_exceeds_src_except_art_clht () =
  List.iter
    (fun (p : Ir.program) ->
      let src, asm = Programs.counts p in
      match p.Ir.name with
      | "P-ART" -> check "P-ART shrinks" true (asm < src)
      | "P-CLHT" -> check_int "P-CLHT untouched" 0 asm
      | _ -> check (p.Ir.name ^ " grows") true (asm > src))
    Programs.all

let test_volatile_never_optimized () =
  let p = Programs.find "P-CLHT" in
  let before = Ir.plain_stores p in
  check_int "no plain stores in P-CLHT" 0 before

let () =
  Alcotest.run "compiler"
    [
      ( "memset",
        [
          Alcotest.test_case "zero run" `Quick test_memset_zero_run;
          Alcotest.test_case "repeated byte" `Quick test_memset_repeated_byte;
          Alcotest.test_case "gap blocks" `Quick test_memset_not_contiguous;
          Alcotest.test_case "single kept" `Quick test_memset_single_store_kept;
          Alcotest.test_case "volatile blocks" `Quick test_memset_volatile_blocked;
          Alcotest.test_case "mixed bytes block" `Quick test_memset_mixed_bytes_blocked;
          Alcotest.test_case "merge" `Quick test_memset_merge;
          Alcotest.test_case "merge byte mismatch" `Quick test_memset_merge_byte_mismatch;
        ] );
      ( "memcpy",
        [
          Alcotest.test_case "run" `Quick test_memcpy_run;
          Alcotest.test_case "overlap -> memmove" `Quick test_memmove_on_overlap;
          Alcotest.test_case "single pair kept" `Quick test_memcpy_single_pair_kept;
        ] );
      ( "tearing",
        [
          Alcotest.test_case "pairs wide stores" `Quick test_pair_wide_stores;
          Alcotest.test_case "skips volatile/narrow" `Quick test_pair_skips_volatile_and_narrow;
        ] );
      ( "store-inventing",
        [
          Alcotest.test_case "spill under pressure" `Quick test_invent_stores_under_pressure;
          Alcotest.test_case "respects volatile" `Quick test_invent_stores_respects_volatile;
          Alcotest.test_case "low pressure" `Quick test_invent_stores_low_pressure;
        ] );
      ( "study",
        [
          Alcotest.test_case "catalog (table 2a)" `Quick test_catalog_matches_table2a;
          Alcotest.test_case "table 2b counts" `Quick test_table2b_counts;
          Alcotest.test_case "growth shape" `Quick test_asm_exceeds_src_except_art_clht;
          Alcotest.test_case "volatile untouched" `Quick test_volatile_never_optimized;
        ] );
    ]
