(* Unit and property tests for the utility library: vector clocks,
   the deterministic RNG, and table rendering. *)

module Clockvec = Yashme_util.Clockvec
module Rng = Yashme_util.Rng
module Pretty = Yashme_util.Pretty

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Clockvec unit tests                                                  *)

let test_empty () =
  check_int "empty get" 0 (Clockvec.get Clockvec.empty 3);
  check "empty leq itself" true (Clockvec.leq Clockvec.empty Clockvec.empty);
  check "empty equals of_list []" true (Clockvec.equal Clockvec.empty (Clockvec.of_list []))

let test_set_get () =
  let cv = Clockvec.set Clockvec.empty 2 5 in
  check_int "set then get" 5 (Clockvec.get cv 2);
  check_int "other component zero" 0 (Clockvec.get cv 1);
  let cv0 = Clockvec.set cv 2 0 in
  check "setting zero removes" true (Clockvec.equal cv0 Clockvec.empty)

let test_set_negative () =
  Alcotest.check_raises "negative clock" (Invalid_argument "Clockvec.set: negative clock")
    (fun () -> ignore (Clockvec.set Clockvec.empty 0 (-1)))

let test_tick () =
  let cv = Clockvec.tick (Clockvec.tick Clockvec.empty 1) 1 in
  check_int "tick twice" 2 (Clockvec.get cv 1)

let test_join () =
  let a = Clockvec.of_list [ (0, 3); (1, 1) ] in
  let b = Clockvec.of_list [ (1, 4); (2, 2) ] in
  let j = Clockvec.join a b in
  check_int "join keeps max (0)" 3 (Clockvec.get j 0);
  check_int "join keeps max (1)" 4 (Clockvec.get j 1);
  check_int "join keeps max (2)" 2 (Clockvec.get j 2)

let test_orders () =
  let a = Clockvec.of_list [ (0, 1) ] in
  let b = Clockvec.of_list [ (0, 2); (1, 1) ] in
  let c = Clockvec.of_list [ (1, 5) ] in
  check "a leq b" true (Clockvec.leq a b);
  check "b not leq a" false (Clockvec.leq b a);
  check "a lt b" true (Clockvec.lt a b);
  check "a not lt a" false (Clockvec.lt a a);
  check "a concurrent c" true (Clockvec.concurrent a c);
  check "a not concurrent b" false (Clockvec.concurrent a b)

let test_to_list_sorted () =
  let cv = Clockvec.of_list [ (5, 1); (0, 2); (3, 9) ] in
  Alcotest.(check (list (pair int int)))
    "sorted bindings" [ (0, 2); (3, 9); (5, 1) ] (Clockvec.to_list cv)

let test_pp () =
  let cv = Clockvec.of_list [ (0, 2); (1, 7) ] in
  Alcotest.(check string) "rendering" "<0:2, 1:7>" (Format.asprintf "%a" Clockvec.pp cv)

(* ------------------------------------------------------------------ *)
(* Clockvec properties                                                  *)

let cv_gen =
  QCheck.Gen.(
    map Clockvec.of_list
      (list_size (int_bound 6) (pair (int_bound 4) (int_bound 20))))

let cv_arb = QCheck.make ~print:(Format.asprintf "%a" Clockvec.pp) cv_gen

let prop_join_commutative =
  QCheck.Test.make ~name:"join commutative" ~count:200 (QCheck.pair cv_arb cv_arb)
    (fun (a, b) -> Clockvec.equal (Clockvec.join a b) (Clockvec.join b a))

let prop_join_associative =
  QCheck.Test.make ~name:"join associative" ~count:200
    (QCheck.triple cv_arb cv_arb cv_arb) (fun (a, b, c) ->
      Clockvec.equal
        (Clockvec.join a (Clockvec.join b c))
        (Clockvec.join (Clockvec.join a b) c))

let prop_join_idempotent =
  QCheck.Test.make ~name:"join idempotent" ~count:200 cv_arb (fun a ->
      Clockvec.equal (Clockvec.join a a) a)

let prop_join_upper_bound =
  QCheck.Test.make ~name:"join is an upper bound" ~count:200 (QCheck.pair cv_arb cv_arb)
    (fun (a, b) ->
      let j = Clockvec.join a b in
      Clockvec.leq a j && Clockvec.leq b j)

let prop_leq_antisymmetric =
  QCheck.Test.make ~name:"leq antisymmetric" ~count:200 (QCheck.pair cv_arb cv_arb)
    (fun (a, b) -> (not (Clockvec.leq a b && Clockvec.leq b a)) || Clockvec.equal a b)

let prop_tick_increases =
  QCheck.Test.make ~name:"tick strictly increases" ~count:200
    (QCheck.pair cv_arb QCheck.(int_bound 4)) (fun (a, tid) ->
      Clockvec.lt a (Clockvec.tick a tid))

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 50 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let r = Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    check "float in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_copy_independent () =
  let a = Rng.create 3 in
  let b = Rng.copy a in
  check_int "copies agree" (Rng.int a 100) (Rng.int b 100)

let test_rng_split_differs () =
  let a = Rng.create 4 in
  let b = Rng.split a in
  let sa = List.init 10 (fun _ -> Rng.int a 1000) in
  let sb = List.init 10 (fun _ -> Rng.int b 1000) in
  check "split streams differ" true (sa <> sb)

let test_rng_pick () =
  let r = Rng.create 5 in
  for _ = 1 to 100 do
    check "pick from list" true (List.mem (Rng.pick r [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick r ([] : int list)))

let test_rng_shuffle_permutation () =
  let r = Rng.create 6 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let ys = Rng.shuffle r xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_rng_bad_bound () =
  let r = Rng.create 8 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

(* ------------------------------------------------------------------ *)
(* Pretty                                                               *)

let test_pad () =
  Alcotest.(check string) "pads" "ab  " (Pretty.pad 4 "ab");
  Alcotest.(check string) "no truncation" "abcdef" (Pretty.pad 3 "abcdef")

let test_hex () =
  Alcotest.(check string) "hex64" "0x00000000deadbeef" (Pretty.hex64 0xdeadbeefL)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table () =
  let t = Pretty.table ~header:[ "a"; "bb" ] [ [ "ccc"; "d" ] ] in
  check "has rule line" true (String.contains t '-');
  check "contains header" true (contains ~needle:"bb" t);
  check "contains cell" true (contains ~needle:"ccc" t);
  Alcotest.(check int) "three lines" 3 (List.length (String.split_on_char '\n' t))

let () =
  Alcotest.run "util"
    [
      ( "clockvec",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "set/get" `Quick test_set_get;
          Alcotest.test_case "set negative" `Quick test_set_negative;
          Alcotest.test_case "tick" `Quick test_tick;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "orders" `Quick test_orders;
          Alcotest.test_case "to_list sorted" `Quick test_to_list_sorted;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "clockvec-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_join_commutative;
            prop_join_associative;
            prop_join_idempotent;
            prop_join_upper_bound;
            prop_leq_antisymmetric;
            prop_tick_increases;
          ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_differs;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "bad bound" `Quick test_rng_bad_bound;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "pad" `Quick test_pad;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "table" `Quick test_table;
        ] );
    ]
