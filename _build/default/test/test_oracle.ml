(* An independent brute-force oracle for Theorem 1 (single-threaded,
   straight-line programs), checked against the detector on random
   programs.

   The oracle evaluates the four conditions of Theorem 1 directly on the
   operation list:

     a committed post-crash read of slot x from plain store s races iff
       (2) no atomic release store s' to the same cache line with
           pos(s) < pos(s') was read by the post-crash execution before
           x was read, and
       (3) no clflush f to s's line with pos(s) < pos(f) is followed
           (pos(f) < pos(s')) by a store s' the post-crash execution had
           already read, and
       (4) same as (3) for clwb + later fence.

   Slots 0,1 share cache line A and slots 2,3 share line B, so the
   coherence condition is exercised.  The crash is at program end and
   the post-crash execution reads the slots in a random order. *)

open Pm_runtime
module Detector = Yashme.Detector
module Race = Yashme.Race

type op =
  | Ostore of { slot : int; atomic : bool }
  | Ostore_nt of int  (* non-temporal store to a slot *)
  | Oclflush of int  (* slot whose line is flushed *)
  | Oclwb of int
  | Ofence

let pp_ops ops =
  String.concat ";"
    (List.map
       (function
         | Ostore { slot; atomic } ->
             Printf.sprintf "st%d%s" slot (if atomic then "!" else "")
         | Ostore_nt s -> Printf.sprintf "nt%d" s
         | Oclflush s -> Printf.sprintf "clf%d" s
         | Oclwb s -> Printf.sprintf "clwb%d" s
         | Ofence -> "fence")
       ops)

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 20)
      (frequency
         [
           (5, map2 (fun slot atomic -> Ostore { slot; atomic }) (int_bound 3) bool);
           (2, map (fun s -> Ostore_nt s) (int_bound 3));
           (2, map (fun s -> Oclflush s) (int_bound 3));
           (2, map (fun s -> Oclwb s) (int_bound 3));
           (2, return Ofence);
         ]))

let gen_case = QCheck.Gen.(pair gen_ops (map (fun r -> Yashme_util.Rng.create r) nat))

let arb_case =
  QCheck.make
    ~print:(fun (ops, _) -> pp_ops ops)
    gen_case

(* Slot layout: two slots per 64-byte line. *)
let slot_offset slot = (slot / 2 * 64) + (slot mod 2 * 8)
let slot_line slot = slot / 2

(* ------------------------------------------------------------------ *)
(* Oracle                                                               *)

type store_ev = {
  s_slot : int;
  s_atomic : bool;
  s_pos : int;
  s_nt_fence : int option;  (* movnt: position of the fence persisting it *)
}

(* Condition (3)/(4): the store must happen before the flush instruction
   itself ([f_issue]), while the already-observed store must come after
   the event that makes the flush durable ([f_eff]: the clflush itself,
   or the fence following a clwb). *)
type flush_ev = { f_line : int; f_issue : int; f_eff : int }

type ev = Estore of store_ev | Eflush of flush_ev

let oracle ops read_order =
  (* Effective flush positions: clflush at its own position; clwb at its
     position, provided a later fence exists (condition 4's fence is the
     event that must precede an observed store — we use the fence
     position for it). *)
  let evs = ref [] in
  List.iteri
    (fun pos op ->
      match op with
      | Ostore { slot; atomic } ->
          evs :=
            Estore { s_slot = slot; s_atomic = atomic; s_pos = pos; s_nt_fence = None }
            :: !evs
      | Ostore_nt slot ->
          let rec next_fence i = function
            | [] -> None
            | Ofence :: _ when i > pos -> Some i
            | _ :: rest -> next_fence (i + 1) rest
          in
          evs :=
            Estore
              { s_slot = slot; s_atomic = false; s_pos = pos;
                s_nt_fence = next_fence 0 ops }
            :: !evs
      | Oclflush s ->
          evs := Eflush { f_line = slot_line s; f_issue = pos; f_eff = pos } :: !evs
      | Oclwb s ->
          (* Find the next fence after this clwb. *)
          let rec next_fence i = function
            | [] -> None
            | Ofence :: _ when i > pos -> Some i
            | _ :: rest -> next_fence (i + 1) rest
          in
          (match next_fence 0 ops with
          | Some fpos ->
              evs := Eflush { f_line = slot_line s; f_issue = pos; f_eff = fpos } :: !evs
          | None -> ())
      | Ofence -> ())
    ops;
  let evs = List.rev !evs in
  let latest_store slot =
    List.fold_left
      (fun acc e ->
        match e with
        | Estore s -> if s.s_slot = slot then Some s else acc
        | Eflush _ -> acc)
      None evs
  in
  (* Walk the post-crash reads in order, accumulating what was read. *)
  let races = ref [] in
  let read_before : store_ev list ref = ref [] in
  List.iter
    (fun slot ->
      (match latest_store slot with
      | None -> ()
      | Some s when s.s_atomic -> ()
      | Some s ->
          let covered_by_atomic =
            List.exists
              (fun s' ->
                s'.s_atomic
                && slot_line s'.s_slot = slot_line s.s_slot
                && s'.s_pos > s.s_pos)
              !read_before
          in
          let flush_observed =
            List.exists
              (fun e ->
                match e with
                | Eflush f ->
                    f.f_line = slot_line s.s_slot
                    && f.f_issue > s.s_pos
                    && List.exists (fun s' -> s'.s_pos > f.f_eff) !read_before
                | Estore _ -> false)
              evs
          in
          (* A fenced movnt store persists itself: covered once the
             post-crash execution observed anything after the fence. *)
          let nt_persisted =
            match s.s_nt_fence with
            | None -> false
            | Some k -> List.exists (fun s' -> s'.s_pos > k) !read_before
          in
          if not (covered_by_atomic || flush_observed || nt_persisted) then
            races := slot :: !races);
      (* Record what this read observed (committed read = latest store). *)
      match latest_store slot with
      | Some s -> read_before := s :: !read_before
      | None -> ())
    read_order;
  List.sort_uniq compare !races

(* ------------------------------------------------------------------ *)
(* Run the same program through the real pipeline.                      *)

let detector_races ops read_order =
  let d = Detector.create ~mode:Detector.Prefix () in
  let pre () =
    let base = Pmem.alloc ~align:64 128 in
    Pmem.set_root 0 base;
    List.iter
      (fun op ->
        match op with
        | Ostore { slot; atomic } ->
            let addr = base + slot_offset slot in
            if atomic then
              Pmem.store ~label:(string_of_int slot) ~atomic:Px86.Access.Release addr 1L
            else Pmem.store ~label:(string_of_int slot) addr 1L
        | Ostore_nt slot ->
            Pmem.store ~label:(string_of_int slot) ~nt:true (base + slot_offset slot) 1L
        | Oclflush s -> Pmem.clflush (base + slot_offset s)
        | Oclwb s -> Pmem.clwb (base + slot_offset s)
        | Ofence -> Pmem.sfence ())
      ops
  in
  let post () =
    let base = Pmem.get_root 0 in
    List.iter
      (fun slot -> ignore (Pmem.load ~atomic:Px86.Access.Acquire (base + slot_offset slot)))
      read_order
  in
  let r1 = Executor.run ~detector:d ~plan:Executor.Crash_at_end ~exec_id:0 pre in
  let _ = Executor.run ~detector:d ~inherited:r1.Executor.state ~exec_id:1 post in
  Detector.races d
  |> List.filter_map (fun (r : Race.t) ->
         if r.Race.committed then Some (int_of_string (Race.label r)) else None)
  |> List.sort_uniq compare

let prop_matches_oracle =
  QCheck.Test.make ~name:"detector matches the Theorem-1 oracle" ~count:400 arb_case
    (fun (ops, rng) ->
      let read_order = Yashme_util.Rng.shuffle rng [ 0; 1; 2; 3 ] in
      let expected = oracle ops read_order in
      let got = detector_races ops read_order in
      if expected <> got then
        QCheck.Test.fail_reportf "ops=%s reads=%s oracle=%s detector=%s" (pp_ops ops)
          (String.concat "," (List.map string_of_int read_order))
          (String.concat "," (List.map string_of_int expected))
          (String.concat "," (List.map string_of_int got))
      else true)

(* eADR findings are a subset of non-eADR findings (section 7.5). *)
let races_with ~eadr ops read_order =
  let d = Detector.create ~eadr () in
  let pre () =
    let base = Pmem.alloc ~align:64 128 in
    Pmem.set_root 0 base;
    List.iter
      (fun op ->
        match op with
        | Ostore { slot; atomic } ->
            let addr = base + slot_offset slot in
            if atomic then
              Pmem.store ~label:(string_of_int slot) ~atomic:Px86.Access.Release addr 1L
            else Pmem.store ~label:(string_of_int slot) addr 1L
        | Ostore_nt slot ->
            Pmem.store ~label:(string_of_int slot) ~nt:true (base + slot_offset slot) 1L
        | Oclflush s -> Pmem.clflush (base + slot_offset s)
        | Oclwb s -> Pmem.clwb (base + slot_offset s)
        | Ofence -> Pmem.sfence ())
      ops
  in
  let post () =
    let base = Pmem.get_root 0 in
    List.iter (fun slot -> ignore (Pmem.load (base + slot_offset slot))) read_order
  in
  let r1 = Executor.run ~detector:d ~plan:Executor.Crash_at_end ~exec_id:0 pre in
  let _ = Executor.run ~detector:d ~inherited:r1.Executor.state ~exec_id:1 post in
  List.sort_uniq compare (List.map Race.label (Detector.races d))

let prop_eadr_subset =
  QCheck.Test.make ~name:"eADR findings are a subset of non-eADR findings" ~count:200
    arb_case (fun (ops, rng) ->
      let read_order = Yashme_util.Rng.shuffle rng [ 0; 1; 2; 3 ] in
      let eadr = races_with ~eadr:true ops read_order in
      let full = races_with ~eadr:false ops read_order in
      List.for_all (fun l -> List.mem l full) eadr)

let () =
  Alcotest.run "oracle"
    [
      ( "theorem-1",
        List.map QCheck_alcotest.to_alcotest [ prop_matches_oracle; prop_eadr_subset ] );
    ]
