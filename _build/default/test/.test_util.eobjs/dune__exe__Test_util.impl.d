test/test_util.ml: Alcotest Format List QCheck QCheck_alcotest String Yashme_util
