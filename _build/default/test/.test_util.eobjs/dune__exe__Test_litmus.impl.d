test/test_litmus.ml: Access Alcotest Crashstate List Machine Memimage Observer Px86 Yashme_util
