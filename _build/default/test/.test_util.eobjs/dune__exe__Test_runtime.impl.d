test/test_runtime.ml: Alcotest Executor Int64 List Pm_runtime Pmem String
