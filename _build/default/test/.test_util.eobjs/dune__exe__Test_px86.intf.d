test/test_px86.mli:
