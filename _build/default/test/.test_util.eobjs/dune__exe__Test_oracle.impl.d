test/test_oracle.ml: Alcotest Executor List Pm_runtime Pmem Printf Px86 QCheck QCheck_alcotest String Yashme Yashme_util
