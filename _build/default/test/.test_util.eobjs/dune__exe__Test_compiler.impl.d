test/test_compiler.ml: Alcotest Ir List Passes Pm_compiler Programs
