test/test_harness.ml: Alcotest Executor List Pm_benchmarks Pm_harness Pm_runtime Pmem Px86 String Yashme Yashme_util
