test/test_litmus.mli:
