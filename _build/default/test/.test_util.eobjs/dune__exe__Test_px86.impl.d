test/test_px86.ml: Access Addr Alcotest Crashstate Event Flush_buffer Int64 List Machine Memimage Observer Persistence Printf Px86 QCheck QCheck_alcotest Reorder Store_buffer String Yashme_util
