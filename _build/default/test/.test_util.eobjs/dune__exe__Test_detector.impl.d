test/test_detector.ml: Alcotest Executor Int64 List Pm_runtime Pmem Printf Px86 QCheck QCheck_alcotest String Yashme Yashme_util
