test/test_benchmarks.mli:
