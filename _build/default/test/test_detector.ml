(* Tests for the Yashme detection algorithm: the paper's figure
   scenarios, prefix vs baseline semantics, exec records, multi-threaded
   prefix rearrangement, multi-crash scenarios, benign classification,
   and cross-mode properties on randomly generated programs. *)

open Pm_runtime
module Detector = Yashme.Detector
module Race = Yashme.Race
module Rng = Yashme_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run [pre] under [plan], then [post], returning the detector. *)
let scenario ?(mode = Detector.Prefix) ~plan ~pre ~post () =
  let d = Detector.create ~mode () in
  let r1 = Executor.run ~detector:d ~plan ~exec_id:0 pre in
  let _ = Executor.run ~detector:d ~inherited:r1.Executor.state ~exec_id:1 post in
  d

let labels d =
  List.sort_uniq compare (List.map Race.label (Detector.races d))

let real_labels d =
  List.sort_uniq compare
    (List.filter_map
       (fun (r : Race.t) -> if r.Race.benign then None else Some (Race.label r))
       (Detector.races d))

(* Common pre/post bodies. *)
let store_flush_pre () =
  let x = Pmem.alloc ~align:64 8 in
  Pmem.set_root 0 x;
  Pmem.store ~label:"x" x 1L;
  Pmem.clflush x;
  Pmem.mfence ()

let read_post () = ignore (Pmem.load (Pmem.get_root 0))

(* ------------------------------------------------------------------ *)
(* Figure scenarios                                                     *)

let test_fig1_crash_in_window () =
  (* Crash between the store and its clflush: both modes report. *)
  List.iter
    (fun mode ->
      let d =
        scenario ~mode ~plan:(Executor.Crash_before_flush 2) ~pre:store_flush_pre
          ~post:read_post ()
      in
      Alcotest.(check (list string)) "race on x" [ "x" ] (labels d))
    [ Detector.Prefix; Detector.Baseline ]

let test_fig4a_clflush_protects_baseline () =
  let d =
    scenario ~mode:Detector.Baseline ~plan:Executor.Crash_at_end ~pre:store_flush_pre
      ~post:read_post ()
  in
  check_int "no race after flush (baseline)" 0 (List.length (Detector.races d))

let test_fig4b_clwb_fence_protects_baseline () =
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"x" x 1L;
    Pmem.clwb x;
    Pmem.sfence ()
  in
  let d =
    scenario ~mode:Detector.Baseline ~plan:Executor.Crash_at_end ~pre ~post:read_post ()
  in
  check_int "clwb+sfence persists" 0 (List.length (Detector.races d))

let test_clwb_without_fence_races () =
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"x" x 1L;
    Pmem.clwb x;
    Pmem.sfence ()
  in
  (* Crash between the clwb and the sfence: flush point 2 is the clwb,
     3 the sfence. *)
  let d =
    scenario ~mode:Detector.Baseline ~plan:(Executor.Crash_before_flush 3) ~pre
      ~post:read_post ()
  in
  Alcotest.(check (list string)) "clwb alone insufficient" [ "x" ] (labels d)

let test_fig5a_coherence_prevents () =
  (* x and y on one line; y is an atomic release store after x; reading
     y first covers x. *)
  let pre () =
    let x = Pmem.alloc ~align:64 16 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"x" x 1L;
    Pmem.store ~label:"y" ~atomic:Px86.Access.Release (x + 8) 1L
  in
  let post () =
    let x = Pmem.get_root 0 in
    ignore (Pmem.load ~atomic:Px86.Access.Acquire (x + 8));
    ignore (Pmem.load x)
  in
  let d = scenario ~plan:Executor.Crash_at_end ~pre ~post () in
  check_int "coherence covers x" 0 (List.length (Detector.races d))

let test_fig5a_requires_read_order () =
  (* Reading x BEFORE y: the race on x is real (condition 2 requires
     reading y first). *)
  let pre () =
    let x = Pmem.alloc ~align:64 16 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"x" x 1L;
    Pmem.store ~label:"y" ~atomic:Px86.Access.Release (x + 8) 1L
  in
  let post () =
    let x = Pmem.get_root 0 in
    ignore (Pmem.load x);
    ignore (Pmem.load ~atomic:Px86.Access.Acquire (x + 8))
  in
  let d = scenario ~plan:Executor.Crash_at_end ~pre ~post () in
  Alcotest.(check (list string)) "x read first still races" [ "x" ] (labels d)

let test_fig6a_prefix_finds_after_window () =
  let d =
    scenario ~mode:Detector.Prefix ~plan:Executor.Crash_at_end ~pre:store_flush_pre
      ~post:read_post ()
  in
  Alcotest.(check (list string)) "prefix expansion finds it" [ "x" ] (labels d)

let test_fig6b_observed_flush_pins_prefix () =
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    let y = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.set_root 1 y;
    Pmem.store ~label:"x" x 1L;
    Pmem.clflush x;
    Pmem.mfence ();
    Pmem.store ~label:"y" ~atomic:Px86.Access.Release y 1L
  in
  let post () =
    ignore (Pmem.load ~atomic:Px86.Access.Acquire (Pmem.get_root 1));
    ignore (Pmem.load (Pmem.get_root 0))
  in
  let d = scenario ~plan:Executor.Crash_at_end ~pre ~post () in
  check_int "flush inside consistent prefix" 0 (List.length (Detector.races d))

let test_fig6b_read_order_matters () =
  (* Same writes, but the post-crash execution reads x BEFORE y: the
     short prefix is still consistent at that point, so the race on x is
     reported. *)
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    let y = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.set_root 1 y;
    Pmem.store ~label:"x" x 1L;
    Pmem.clflush x;
    Pmem.mfence ();
    Pmem.store ~label:"y" ~atomic:Px86.Access.Release y 1L
  in
  let post () =
    ignore (Pmem.load (Pmem.get_root 0));
    ignore (Pmem.load ~atomic:Px86.Access.Acquire (Pmem.get_root 1))
  in
  let d = scenario ~plan:Executor.Crash_at_end ~pre ~post () in
  Alcotest.(check (list string)) "x before y races" [ "x" ] (labels d)

let test_section42_multithreaded () =
  (* No crash point in this interleaving exposes the race; the
     per-thread prefix analysis still finds it. *)
  let pre () =
    let z = Pmem.alloc ~align:64 8 in
    let f = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 z;
    Pmem.set_root 1 f;
    let t1 =
      Pmem.spawn (fun () ->
          Pmem.store ~label:"z" z 1L;
          Pmem.clflush z;
          Pmem.mfence ())
    in
    Pmem.join t1;
    let t2 =
      Pmem.spawn (fun () -> Pmem.store ~label:"f" ~atomic:Px86.Access.Release f 1L)
    in
    Pmem.join t2
  in
  let post () =
    if Pmem.load ~atomic:Px86.Access.Acquire (Pmem.get_root 1) = 1L then
      ignore (Pmem.load (Pmem.get_root 0))
  in
  let d = scenario ~plan:Executor.Crash_at_end ~pre ~post () in
  Alcotest.(check (list string)) "cross-thread prefix race" [ "z" ] (labels d)

(* ------------------------------------------------------------------ *)
(* Definition 5.1 condition 1: atomic stores never race                 *)

let test_atomic_store_never_races () =
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"x" ~atomic:Px86.Access.Release x 1L
  in
  List.iter
    (fun mode ->
      let d = scenario ~mode ~plan:Executor.Crash_at_end ~pre ~post:read_post () in
      check_int "atomic store safe" 0 (List.length (Detector.races d)))
    [ Detector.Prefix; Detector.Baseline ]

let test_relaxed_atomic_store_never_races () =
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"x" ~atomic:Px86.Access.Relaxed x 1L
  in
  let d = scenario ~plan:Executor.Crash_at_end ~pre ~post:read_post () in
  check_int "relaxed atomic safe" 0 (List.length (Detector.races d))

(* ------------------------------------------------------------------ *)
(* Non-temporal stores (movnt)                                          *)

let test_nt_store_fenced_is_safe_baseline () =
  (* movnt + sfence persists without any flush instruction. *)
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"x" ~nt:true x 1L;
    Pmem.sfence ()
  in
  let d =
    scenario ~mode:Detector.Baseline ~plan:Executor.Crash_at_end ~pre ~post:read_post ()
  in
  check_int "fenced movnt store safe (baseline)" 0 (List.length (Detector.races d))

let test_nt_store_prefix_still_races () =
  (* Like Figure 6(a): a consistent prefix stopping before the fence
     leaves the movnt store in flight. *)
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"x" ~nt:true x 1L;
    Pmem.sfence ()
  in
  let d = scenario ~plan:Executor.Crash_at_end ~pre ~post:read_post () in
  Alcotest.(check (list string)) "prefix mode still reports" [ "x" ] (labels d)

let test_nt_memcpy_persist_safe_baseline () =
  let pre () =
    let x = Pmem.alloc ~align:64 32 in
    Pmem.set_root 0 x;
    Pmem.memcpy_nt_persist ~label:"payload" x "twenty-four byte string!"
  in
  let post () = ignore (Pmem.load_bytes (Pmem.get_root 0) 24) in
  let d = scenario ~mode:Detector.Baseline ~plan:Executor.Crash_at_end ~pre ~post () in
  check_int "pmem_memcpy_persist safe (baseline)" 0 (List.length (Detector.races d))

(* ------------------------------------------------------------------ *)
(* Candidate checking: unread-but-readable stores are still reported    *)

let test_candidate_reported () =
  (* x is stored plainly, flushed, stored again plainly; recovery reads
     the latest value but the older candidate is also checked. *)
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"x1" x 1L;
    Pmem.clflush x;
    Pmem.mfence ();
    Pmem.store ~label:"x2" x 2L
  in
  let d = scenario ~plan:Executor.Crash_at_end ~pre ~post:read_post () in
  let ls = labels d in
  check "committed read reported" true (List.mem "x2" ls);
  check "candidate also reported" true (List.mem "x1" ls);
  let committed =
    List.filter (fun (r : Race.t) -> r.Race.committed) (Detector.races d)
  in
  Alcotest.(check (list string)) "only x2 committed" [ "x2" ]
    (List.sort_uniq compare (List.map Race.label committed))

(* ------------------------------------------------------------------ *)
(* Benign classification                                                *)

let test_benign_classification () =
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"payload" x 1L
  in
  let post () =
    Pm_runtime.Pmem.validating (fun () -> ignore (Pmem.load (Pmem.get_root 0)))
  in
  let d = scenario ~plan:Executor.Crash_at_end ~pre ~post () in
  (match Detector.races d with
  | [ r ] -> check "validating read is benign" true r.Race.benign
  | rs -> Alcotest.failf "expected one race, got %d" (List.length rs));
  (* Outside the validating region the same race is real. *)
  let d = scenario ~plan:Executor.Crash_at_end ~pre ~post:read_post () in
  match Detector.races d with
  | [ r ] -> check "plain read is real" false r.Race.benign
  | rs -> Alcotest.failf "expected one race, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* Multi-crash scenarios (exec stacks)                                  *)

let test_multi_crash_recovery_race () =
  (* A race in the recovery procedure itself requires two crashes
     (section 6, the exec stack).  Recovery writes a repair marker with
     a plain store; a second crash before its flush exposes it to the
     second recovery. *)
  let d = Detector.create () in
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"data" x 1L;
    Pmem.clflush x;
    Pmem.mfence ()
  in
  let recovery () =
    let x = Pmem.get_root 0 in
    ignore (Pmem.load x);
    Pmem.store ~label:"repair-marker" x 2L;
    Pmem.clflush x;
    Pmem.mfence ()
  in
  let r1 = Executor.run ~detector:d ~plan:Executor.Crash_at_end ~exec_id:0 pre in
  (* Crash the recovery between its store and flush: set_root is absent
     here, so the marker flush is point 0. *)
  let r2 =
    Executor.run ~detector:d ~inherited:r1.Executor.state
      ~plan:(Executor.Crash_before_flush 0) ~exec_id:1 recovery
  in
  let _ =
    Executor.run ~detector:d ~inherited:r2.Executor.state ~exec_id:2 (fun () ->
        ignore (Pmem.load (Pmem.get_root 0)))
  in
  let ls = labels d in
  check "recovery marker races" true (List.mem "repair-marker" ls)

let test_crash_state_propagates () =
  (* Data untouched by the middle execution flows through to the third
     with its original execution id. *)
  let d = Detector.create () in
  let pre () =
    let x = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 x;
    Pmem.store ~label:"deep-data" x 1L
  in
  let r1 = Executor.run ~detector:d ~plan:Executor.Crash_at_end ~exec_id:0 pre in
  let r2 =
    Executor.run ~detector:d ~inherited:r1.Executor.state ~plan:Executor.Crash_at_end
      ~exec_id:1 (fun () -> ())
  in
  let _ =
    Executor.run ~detector:d ~inherited:r2.Executor.state ~exec_id:2 (fun () ->
        ignore (Pmem.load (Pmem.get_root 0)))
  in
  let races = Detector.races d in
  check_int "race found across two crashes" 1 (List.length races);
  check_int "attributed to exec 0" 0 (List.hd races).Race.store_exec

(* ------------------------------------------------------------------ *)
(* Exec_record internals                                                 *)

module Exec_record = Yashme.Exec_record
module Clockvec = Yashme_util.Clockvec

let mk_store ?(tid = 0) ?(lclk = 1) ?(seq = 1) ?(addr = 0) () =
  { Px86.Event.seq; tid; lclk; cv = Clockvec.of_list [ (tid, lclk) ]; addr; size = 8;
    value = 0L; access = Px86.Access.Plain; nt = false; label = None }

let test_exec_record_storemap () =
  let r = Exec_record.create ~id:0 in
  check "empty" true (Exec_record.store_at r 0 = None);
  let s1 = mk_store ~addr:0 ~seq:1 () in
  let s2 = mk_store ~addr:0 ~seq:2 () in
  Exec_record.set_store r s1;
  Exec_record.set_store r s2;
  (match Exec_record.store_at r 0 with
  | Some s -> check_int "latest wins" 2 s.Px86.Event.seq
  | None -> Alcotest.fail "expected a store");
  Exec_record.set_store r (mk_store ~addr:8 ~seq:3 ());
  Exec_record.set_store r (mk_store ~addr:128 ~seq:4 ());
  Alcotest.(check (list int)) "line index" [ 0; 8 ]
    (List.sort compare (Exec_record.line_addrs r 0));
  Alcotest.(check (list int)) "other line" [ 128 ] (Exec_record.line_addrs r 2)

let test_exec_record_flushmap () =
  let r = Exec_record.create ~id:0 in
  check_int "no flushes" 0 (List.length (Exec_record.flushes_of r 1));
  Exec_record.add_flush r ~seq:1 { Exec_record.fe_tid = 0; fe_lclk = 5 };
  Exec_record.add_flush r ~seq:1 { Exec_record.fe_tid = 1; fe_lclk = 2 };
  check_int "two entries" 2 (List.length (Exec_record.flushes_of r 1));
  check_int "other seq empty" 0 (List.length (Exec_record.flushes_of r 2))

let test_exec_record_clocks () =
  let r = Exec_record.create ~id:7 in
  check_int "id" 7 (Exec_record.id r);
  check "cvpre empty" true (Clockvec.equal (Exec_record.cvpre r) Clockvec.empty);
  Exec_record.join_cvpre r (Clockvec.of_list [ (0, 3) ]);
  Exec_record.join_cvpre r (Clockvec.of_list [ (1, 2) ]);
  check_int "joined 0" 3 (Clockvec.get (Exec_record.cvpre r) 0);
  check_int "joined 1" 2 (Clockvec.get (Exec_record.cvpre r) 1);
  Exec_record.join_lastflush r ~line:4 (Clockvec.of_list [ (0, 9) ]);
  check_int "lastflush" 9 (Clockvec.get (Exec_record.lastflush r ~line:4) 0);
  check "other line empty" true
    (Clockvec.equal (Exec_record.lastflush r ~line:5) Clockvec.empty)

let test_race_rendering () =
  let race =
    { Race.store = mk_store ~addr:0 (); store_exec = 0; load_addr = 0; load_size = 8;
      load_tid = 1; load_exec = 1; committed = false; benign = true }
  in
  let s = Race.to_string race in
  check "mentions candidate" true
    (let rec has i needle =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || has (i + 1) needle)
     in
     has 0 "[candidate]" && has 0 "[benign");
  Alcotest.(check string) "unlabelled label" "<unlabelled>" (Race.label race)

(* ------------------------------------------------------------------ *)
(* Exhaustive op-level crash injection                                  *)

let test_exhaustive_op_crashes () =
  (* Crash before EVERY instruction of a small program (not only flush
     points); at each point both modes run, baseline ⊆ prefix, and the
     union over all points equals the program's racy fields. *)
  let pre () =
    let a = Pmem.alloc ~align:64 24 in
    Pmem.set_root 0 a;
    Pmem.store ~label:"f1" a 1L;
    Pmem.clflush a;
    Pmem.mfence ();
    Pmem.store ~label:"f2" (a + 8) 2L;
    Pmem.store ~label:"f3" ~atomic:Px86.Access.Release (a + 16) 3L
  in
  let post () =
    let a = Pmem.get_root 0 in
    ignore (Pmem.load a);
    ignore (Pmem.load (a + 8));
    ignore (Pmem.load ~atomic:Px86.Access.Acquire (a + 16))
  in
  let total_ops =
    (Executor.run ~plan:Executor.Run_to_end ~exec_id:0 pre).Executor.ops
  in
  let all_prefix = ref [] in
  for op = 0 to total_ops do
    let lp = labels (scenario ~plan:(Executor.Crash_before_op op) ~pre ~post ()) in
    let lb =
      labels
        (scenario ~mode:Detector.Baseline ~plan:(Executor.Crash_before_op op) ~pre
           ~post ())
    in
    check "baseline subset of prefix" true (List.for_all (fun l -> List.mem l lp) lb);
    all_prefix := lp @ !all_prefix
  done;
  Alcotest.(check (list string)) "union over all crash points"
    [ "f1"; "f2" ]
    (List.sort_uniq compare !all_prefix)

(* ------------------------------------------------------------------ *)
(* Cross-mode properties on random straight-line programs               *)

type op = Rstore of int * bool (* slot, atomic *) | Rflush of int | Rfence

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 25)
      (frequency
         [
           (4, map2 (fun s a -> Rstore (s, a)) (int_bound 3) bool);
           (2, map (fun s -> Rflush s) (int_bound 3));
           (1, return Rfence);
         ]))

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Rstore (s, a) -> Printf.sprintf "st%d%s" s (if a then "!" else "")
             | Rflush s -> Printf.sprintf "fl%d" s
             | Rfence -> "fence")
           ops))
    gen_ops

let run_ops ~mode ~plan ops =
  let pre () =
    let base = Pmem.alloc ~align:64 (4 * 64) in
    Pmem.set_root 0 base;
    List.iteri
      (fun i op ->
        match op with
        | Rstore (s, atomic) ->
            let addr = base + (64 * s) in
            if atomic then
              Pmem.store ~label:(Printf.sprintf "slot%d" s)
                ~atomic:Px86.Access.Release addr
                (Int64.of_int (i + 1))
            else
              Pmem.store ~label:(Printf.sprintf "slot%d" s) addr (Int64.of_int (i + 1))
        | Rflush s -> Pmem.clflush (base + (64 * s))
        | Rfence -> Pmem.mfence ())
      ops
  in
  let post () =
    let base = Pmem.get_root 0 in
    for s = 0 to 3 do
      ignore (Pmem.load (base + (64 * s)))
    done
  in
  scenario ~mode ~plan ~pre ~post ()

let prop_all_atomic_no_race =
  QCheck.Test.make ~name:"all-atomic programs never race" ~count:60 arb_ops (fun ops ->
      let ops =
        List.map (function Rstore (s, _) -> Rstore (s, true) | o -> o) ops
      in
      let d = run_ops ~mode:Detector.Prefix ~plan:Executor.Crash_at_end ops in
      Detector.races d = [])

let prop_baseline_subset_of_prefix =
  QCheck.Test.make ~name:"baseline findings are a subset of prefix findings" ~count:60
    (QCheck.pair arb_ops QCheck.(int_bound 10)) (fun (ops, n) ->
      let plan = Executor.Crash_before_flush n in
      let db = run_ops ~mode:Detector.Baseline ~plan ops in
      let dp = run_ops ~mode:Detector.Prefix ~plan ops in
      let lb = labels db and lp = labels dp in
      List.for_all (fun l -> List.mem l lp) lb)

let prop_races_only_on_plain =
  QCheck.Test.make ~name:"race reports only involve plain stores" ~count:60 arb_ops
    (fun ops ->
      let d = run_ops ~mode:Detector.Prefix ~plan:Executor.Crash_at_end ops in
      List.for_all
        (fun (r : Race.t) -> not (Px86.Access.is_atomic r.Race.store.Px86.Event.access))
        (Detector.races d))

let prop_fully_flushed_baseline_clean =
  QCheck.Test.make ~name:"store+clflush+mfence programs are baseline-clean" ~count:60
    QCheck.(int_range 1 8) (fun n ->
      let pre () =
        let base = Pmem.alloc ~align:64 (8 * 64) in
        Pmem.set_root 0 base;
        for i = 0 to n - 1 do
          Pmem.store ~label:"s" (base + (64 * i)) (Int64.of_int i);
          Pmem.clflush (base + (64 * i));
          Pmem.mfence ()
        done
      in
      let post () =
        let base = Pmem.get_root 0 in
        for i = 0 to n - 1 do
          ignore (Pmem.load (base + (64 * i)))
        done
      in
      let d =
        scenario ~mode:Detector.Baseline ~plan:Executor.Crash_at_end ~pre ~post ()
      in
      Detector.races d = [])

let () =
  ignore real_labels;
  Alcotest.run "detector"
    [
      ( "figures",
        [
          Alcotest.test_case "fig1 crash in window" `Quick test_fig1_crash_in_window;
          Alcotest.test_case "fig4a clflush protects (baseline)" `Quick
            test_fig4a_clflush_protects_baseline;
          Alcotest.test_case "fig4b clwb+fence protects (baseline)" `Quick
            test_fig4b_clwb_fence_protects_baseline;
          Alcotest.test_case "clwb without fence races" `Quick
            test_clwb_without_fence_races;
          Alcotest.test_case "fig5a coherence prevents" `Quick test_fig5a_coherence_prevents;
          Alcotest.test_case "fig5a needs read order" `Quick test_fig5a_requires_read_order;
          Alcotest.test_case "fig6a prefix finds after window" `Quick
            test_fig6a_prefix_finds_after_window;
          Alcotest.test_case "fig6b observed flush pins prefix" `Quick
            test_fig6b_observed_flush_pins_prefix;
          Alcotest.test_case "fig6b read order matters" `Quick test_fig6b_read_order_matters;
          Alcotest.test_case "section 4.2 multithreaded" `Quick test_section42_multithreaded;
        ] );
      ( "definition-5.1",
        [
          Alcotest.test_case "atomic store never races" `Quick test_atomic_store_never_races;
          Alcotest.test_case "relaxed atomic never races" `Quick
            test_relaxed_atomic_store_never_races;
        ] );
      ( "non-temporal",
        [
          Alcotest.test_case "fenced movnt safe (baseline)" `Quick
            test_nt_store_fenced_is_safe_baseline;
          Alcotest.test_case "prefix still races" `Quick test_nt_store_prefix_still_races;
          Alcotest.test_case "memcpy_nt_persist safe" `Quick
            test_nt_memcpy_persist_safe_baseline;
        ] );
      ( "candidates",
        [ Alcotest.test_case "candidate stores reported" `Quick test_candidate_reported ] );
      ( "benign",
        [ Alcotest.test_case "checksum validation" `Quick test_benign_classification ] );
      ( "multi-crash",
        [
          Alcotest.test_case "recovery race needs two crashes" `Quick
            test_multi_crash_recovery_race;
          Alcotest.test_case "state propagates" `Quick test_crash_state_propagates;
        ] );
      ( "exec-record",
        [
          Alcotest.test_case "storemap" `Quick test_exec_record_storemap;
          Alcotest.test_case "flushmap" `Quick test_exec_record_flushmap;
          Alcotest.test_case "clocks" `Quick test_exec_record_clocks;
          Alcotest.test_case "race rendering" `Quick test_race_rendering;
        ] );
      ( "exhaustive",
        [ Alcotest.test_case "op-level crash sweep" `Quick test_exhaustive_op_crashes ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_all_atomic_no_race;
            prop_baseline_subset_of_prefix;
            prop_races_only_on_plain;
            prop_fully_flushed_baseline_clean;
          ] );
    ]
