(* Model-checks the CCEH hashtable (the paper's motivating benchmark,
   Figure 3) and prints the resulting race report — the key and value
   fields of the Pair struct, bugs #1 and #2 of Table 3.

   Run with: dune exec examples/cceh_demo.exe *)

let () =
  print_endline "Model-checking CCEH: crash before every flush/fence of the";
  print_endline "insert workload, recovery after each crash...\n";
  let report = Pm_harness.Runner.model_check Pm_benchmarks.Cceh.program in
  print_endline (Pm_harness.Report.to_string report);
  print_newline ();

  (* Show one concrete failure: crash in the window between the value
     and key stores and their flush, then recover and observe. *)
  let detector = Yashme.Detector.create () in
  let d, pre, _post =
    Pm_harness.Runner.run_once ~plan:(Pm_runtime.Executor.Crash_before_flush 2)
      Pm_benchmarks.Cceh.program
  in
  ignore detector;
  Printf.printf "one concrete run: crashed at op %s, race reports:\n"
    (match pre.Pm_runtime.Executor.crashed_at_op with
    | Some i -> string_of_int i
    | None -> "-");
  List.iter
    (fun r -> Printf.printf "  %s\n" (Yashme.Race.to_string r))
    (Yashme.Detector.races d);

  print_endline "\nthe fix (paper, section 3.1): store the key with an atomic";
  print_endline "release store; on x86 this compiles to the same mov and";
  print_endline "costs nothing, but forbids the compiler from tearing it."
