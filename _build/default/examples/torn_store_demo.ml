(* Demonstrates the mechanism behind a persistency race: a compiler
   lowers one 64-bit source store into two 32-bit machine stores
   (gcc ARM64, Table 2a), and a crash between them persists a mixed
   value — exactly the 0x12345678 the paper prints for Figure 1.

   Run with: dune exec examples/torn_store_demo.exe *)

open Pm_runtime

let () =
  (* The compiler-side view: a wide store is legally torn. *)
  let src =
    { Pm_compiler.Ir.name = "figure-1";
      insts =
        [ Pm_compiler.Ir.Store
            { addr = 0; size = 8; value = Pm_compiler.Ir.Const 0x1234567812345678L;
              volatile = false } ] }
  in
  let gcc_arm64 = List.hd Pm_compiler.Passes.known_compilers in
  let lowered = Pm_compiler.Passes.pair_wide_stores src in
  Printf.printf "gcc/%s lowers:\n  %s\ninto:\n%s\n\n"
    (match gcc_arm64.Pm_compiler.Passes.target with
     | Pm_compiler.Passes.Arm64 -> "ARM64"
     | Pm_compiler.Passes.X86_64 -> "x86-64")
    (Format.asprintf "%a" Pm_compiler.Ir.pp_inst (List.hd src.Pm_compiler.Ir.insts))
    (String.concat "\n"
       (List.map
          (fun i -> "  " ^ Format.asprintf "%a" Pm_compiler.Ir.pp_inst i)
          lowered.Pm_compiler.Ir.insts));

  (* The machine-side view: run the torn lowering and crash between the
     two halves.  The post-crash read returns the mixed value. *)
  let pre () =
    let pmobj = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 pmobj;
    Pm_compiler.Tearing.store_paired ~label:"pmobj->val" pmobj 0x1234567812345678L;
    Pmem.clflush pmobj;
    Pmem.mfence ()
  in
  let observed = ref 0L in
  let post () = observed := Pmem.load (Pmem.get_root 0) in

  (* Count ops in a dry run, then crash between the two 32-bit halves:
     ops are root ops then the two stores; crash before the last one. *)
  let dry = Executor.run ~plan:Executor.Run_to_end ~exec_id:0 pre in
  let crash_op = dry.Executor.ops - 3 (* before high-half store *) in
  let crashed = Executor.run ~plan:(Executor.Crash_before_op crash_op) ~exec_id:0 pre in
  assert (crashed.Executor.outcome = Executor.Crashed);
  let _ = Executor.run ~inherited:crashed.Executor.state ~exec_id:1 post in
  Printf.printf "value written pre-crash : 0x%Lx\n" 0x1234567812345678L;
  Printf.printf "value read post-crash   : 0x%Lx\n" !observed;
  if !observed = 0x12345678L then
    print_endline "-> the crash persisted only the low half: store tearing observed."
