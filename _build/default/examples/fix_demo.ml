(* The fix the paper prescribes (sections 3.1, 7.2): replace racing
   non-atomic stores with atomic release stores.  On x86 the generated
   code is the same mov instruction — zero overhead — but the compiler
   may no longer tear or invent stores.

   This demo model-checks two implementations of the CCEH slot-commit
   protocol: the shipped (racy) one, and one with the atomic fix.

   Run with: dune exec examples/fix_demo.exe *)

open Pm_runtime

let slot_protocol ~fixed () =
  let atomic = if fixed then Some Px86.Access.Release else None in
  let store ?label addr v =
    match atomic with
    | Some order -> Pmem.store ?label ~atomic:order addr v
    | None -> Pmem.store ?label addr v
  in
  Pm_harness.Program.make
    ~name:(if fixed then "cceh-slot-fixed" else "cceh-slot-racy")
    ~setup:(fun () ->
      let pair = Pmem.alloc ~align:64 16 in
      Pmem.set_root 0 pair)
    ~pre:(fun () ->
      let pair = Pmem.get_root 0 in
      (* Segment::Insert: CAS-lock, value, mfence, key, persist. *)
      if Pmem.cas pair ~expected:0L ~desired:(-1L) then begin
        store ~label:"value" (pair + 8) 4200L;
        Pmem.mfence ();
        store ~label:"key" pair 42L;
        Pmem.persist pair 16
      end)
    ~post:(fun () ->
      let pair = Pmem.get_root 0 in
      (* CCEH::Get *)
      if Pmem.load pair = 42L then ignore (Pmem.load (pair + 8)))
    ()

let () =
  let report fixed =
    let r = Pm_harness.Runner.model_check (slot_protocol ~fixed ()) in
    Printf.printf "%-16s -> %d race(s)%s\n"
      (if fixed then "with atomic fix" else "as shipped")
      (List.length (Pm_harness.Report.real r))
      (match Pm_harness.Report.real r with
      | [] -> ""
      | fs ->
          ": "
          ^ String.concat ", "
              (List.map (fun (f : Pm_harness.Report.finding) -> f.Pm_harness.Report.label) fs))
  in
  print_endline "CCEH slot-commit protocol, model-checked at every crash point:";
  report false;
  report true;
  print_endline "\nthe fixed variant uses memory_order_release stores, which on x86";
  print_endline "compile to the same mov instructions (no overhead) but forbid the";
  print_endline "compiler from tearing the stores."
