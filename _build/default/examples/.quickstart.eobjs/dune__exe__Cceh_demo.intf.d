examples/cceh_demo.mli:
