examples/quickstart.ml: Executor List Pm_runtime Pmem Printf Yashme
