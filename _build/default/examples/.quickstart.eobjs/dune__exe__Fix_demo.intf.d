examples/fix_demo.mli:
