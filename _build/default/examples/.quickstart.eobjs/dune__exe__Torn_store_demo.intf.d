examples/torn_store_demo.mli:
