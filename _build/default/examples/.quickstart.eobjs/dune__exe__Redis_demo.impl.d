examples/redis_demo.ml: Executor Pm_benchmarks Pm_harness Pm_runtime Printf
