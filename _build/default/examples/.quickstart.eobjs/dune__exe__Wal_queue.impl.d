examples/wal_queue.ml: Executor Int64 List Pm_benchmarks Pm_harness Pm_runtime Pmem Px86 String
