examples/redis_demo.mli:
