examples/wal_queue.mli:
