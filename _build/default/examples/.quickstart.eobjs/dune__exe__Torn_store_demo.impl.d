examples/torn_store_demo.ml: Executor Format List Pm_compiler Pm_runtime Pmem Printf String
