examples/fix_demo.ml: List Pm_harness Pm_runtime Pmem Printf Px86 String
