examples/scenarios.mli:
