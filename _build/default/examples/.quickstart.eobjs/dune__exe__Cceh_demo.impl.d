examples/cceh_demo.ml: List Pm_benchmarks Pm_harness Pm_runtime Printf Yashme
