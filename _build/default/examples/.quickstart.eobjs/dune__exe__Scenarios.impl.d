examples/scenarios.ml: Executor List Pm_runtime Pmem Printf Px86 Yashme
