examples/quickstart.mli:
