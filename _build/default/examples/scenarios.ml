(* The paper's Figures 4, 5 and 6 and the multi-threaded example of
   section 4.2, each as a small executable scenario showing when Yashme
   does and does not report a race.

   Run with: dune exec examples/scenarios.exe *)

open Pm_runtime

let run_scenario ~name ~mode ~plan ~pre ~post =
  let detector = Yashme.Detector.create ~mode () in
  let r1 = Executor.run ~detector ~plan ~exec_id:0 pre in
  let _ = Executor.run ~detector ~inherited:r1.Executor.state ~exec_id:1 post in
  let races = Yashme.Detector.races detector in
  Printf.printf "%-44s %s\n" name
    (if races = [] then "no race" else Printf.sprintf "%d race report(s)" (List.length races))

(* Shared pre-crash shapes.  set_root emits flush points 0-1; the
   scenario's own flushes start at point 2. *)

let alloc_root () =
  let x = Pmem.alloc ~align:64 16 in
  Pmem.set_root 0 x;
  x

let () =
  print_endline "== Figure 4(a): clflush persists the store ==";
  (* Crash after the clflush: the store is persisted; but under prefix
     mode the flush is outside the consistent prefix and the race in the
     shorter prefix is still detected (this is Figure 6(a)). *)
  run_scenario ~name:"fig4a: store; clflush; CRASH; rd(x) [baseline]"
    ~mode:Yashme.Detector.Baseline ~plan:Executor.Crash_at_end
    ~pre:(fun () ->
      let x = alloc_root () in
      Pmem.store ~label:"x" x 1L;
      Pmem.clflush x;
      Pmem.mfence ())
    ~post:(fun () -> ignore (Pmem.load (Pmem.get_root 0)));

  print_endline "\n== Figure 4(b): clwb + sfence persists the store ==";
  run_scenario ~name:"fig4b: store; clwb; sfence; CRASH; rd(x) [baseline]"
    ~mode:Yashme.Detector.Baseline ~plan:Executor.Crash_at_end
    ~pre:(fun () ->
      let x = alloc_root () in
      Pmem.store ~label:"x" x 1L;
      Pmem.clwb x;
      Pmem.sfence ())
    ~post:(fun () -> ignore (Pmem.load (Pmem.get_root 0)));

  (* clwb without the fence does NOT persist: baseline now reports. *)
  run_scenario ~name:"fig4b': store; clwb; CRASH (no fence) [baseline]"
    ~mode:Yashme.Detector.Baseline ~plan:(Executor.Crash_before_flush 3)
    ~pre:(fun () ->
      let x = alloc_root () in
      Pmem.store ~label:"x" x 1L;
      Pmem.clwb x;
      Pmem.sfence ())
    ~post:(fun () -> ignore (Pmem.load (Pmem.get_root 0)));

  print_endline "\n== Figure 5(a): same-line coherence prevents the race ==";
  (* x and y share a cache line; y is an atomic release store after x.
     The post-crash execution reads y first: coherence guarantees x was
     fully written back. *)
  run_scenario ~name:"fig5a: x=1; y.rel=1; CRASH; rd(y); rd(x) [prefix]"
    ~mode:Yashme.Detector.Prefix ~plan:Executor.Crash_at_end
    ~pre:(fun () ->
      let x = alloc_root () in
      let y = x + 8 in
      Pmem.store ~label:"x" x 1L;
      Pmem.store ~label:"y" ~atomic:Px86.Access.Release y 1L)
    ~post:(fun () ->
      let x = Pmem.get_root 0 in
      ignore (Pmem.load ~atomic:Px86.Access.Acquire (x + 8));
      ignore (Pmem.load x));

  print_endline "\n== Figure 5(b) vs 6(a): crash misses the window ==";
  (* The crash lands after the flush.  The baseline core algorithm
     misses the race; prefix-based expansion still finds it, because a
     consistent prefix of the pre-crash execution stops before the
     clflush. *)
  let pre () =
    let x = alloc_root () in
    Pmem.store ~label:"x" x 1L;
    Pmem.clflush x;
    Pmem.mfence ()
  in
  let post () = ignore (Pmem.load (Pmem.get_root 0)) in
  run_scenario ~name:"fig5b: store; clflush; CRASH; rd(x) [baseline]"
    ~mode:Yashme.Detector.Baseline ~plan:Executor.Crash_at_end ~pre ~post;
  run_scenario ~name:"fig6a: same, prefix-based expansion [prefix]"
    ~mode:Yashme.Detector.Prefix ~plan:Executor.Crash_at_end ~pre ~post;

  print_endline "\n== Figure 6(b): reading y pins the flush into the prefix ==";
  (* y is stored (atomically) after the clflush of x.  Once the
     post-crash execution reads y, every consistent prefix contains the
     clflush, so the race on x disappears. *)
  run_scenario ~name:"fig6b: ...; y.rel=1; CRASH; rd(y); rd(x) [prefix]"
    ~mode:Yashme.Detector.Prefix ~plan:Executor.Crash_at_end
    ~pre:(fun () ->
      let x = alloc_root () in
      let y = Pmem.alloc ~align:64 8 in
      Pmem.set_root 1 y;
      Pmem.store ~label:"x" x 1L;
      Pmem.clflush x;
      Pmem.mfence ();
      Pmem.store ~label:"y" ~atomic:Px86.Access.Release y 1L)
    ~post:(fun () ->
      ignore (Pmem.load ~atomic:Px86.Access.Acquire (Pmem.get_root 1));
      ignore (Pmem.load (Pmem.get_root 0)));

  print_endline "\n== Section 4.2: multi-threaded prefix rearrangement ==";
  (* Thread 1 stores z and flushes it; thread 2 sets an atomic flag f.
     No single crash point in this interleaving exposes the race on z,
     but the per-thread prefix analysis rearranges the execution into
     one that crashes after the racy store and before its flush. *)
  run_scenario ~name:"4.2: t1{z=1;flush}; t2{f.rel=1}; CRASH [prefix]"
    ~mode:Yashme.Detector.Prefix ~plan:Executor.Crash_at_end
    ~pre:(fun () ->
      let z = alloc_root () in
      let f = Pmem.alloc ~align:64 8 in
      Pmem.set_root 1 f;
      let t1 =
        Pmem.spawn (fun () ->
            Pmem.store ~label:"z" z 1L;
            Pmem.clflush z;
            Pmem.mfence ())
      in
      let t2 =
        Pmem.spawn (fun () -> Pmem.store ~label:"f" ~atomic:Px86.Access.Release f 1L)
      in
      Pmem.join t1;
      Pmem.join t2)
    ~post:(fun () ->
      let f = Pmem.get_root 1 in
      if Pmem.load ~atomic:Px86.Access.Acquire f = 1L then
        ignore (Pmem.load (Pmem.get_root 0)))
