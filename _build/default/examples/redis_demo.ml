(* Runs the Redis-pmem port under the random-mode detector, the way the
   paper evaluates the larger frameworks (section 7.1), and then shows a
   functional session against the simulated server.

   Run with: dune exec examples/redis_demo.exe *)

open Pm_runtime

let () =
  (* A functional session first: SET/GET against the PM-backed store. *)
  let _ =
    Executor.run ~exec_id:0 (fun () ->
        let t = Pm_benchmarks.Redis.start () in
        Pm_benchmarks.Redis.set t ~key:7 ~value:"persistent";
        Pm_benchmarks.Redis.set t ~key:9 ~value:"memory";
        (match Pm_benchmarks.Redis.get t ~key:7 with
        | Some v -> Printf.printf "GET 7 -> %S\n" v
        | None -> print_endline "GET 7 -> (nil)");
        match Pm_benchmarks.Redis.get t ~key:9 with
        | Some v -> Printf.printf "GET 9 -> %S\n" v
        | None -> print_endline "GET 9 -> (nil)")
  in

  (* Crash-restart: values survive a crash after the SETs completed. *)
  let boot = Executor.run ~plan:Executor.Crash_at_end ~exec_id:0 (fun () ->
      let t = Pm_benchmarks.Redis.start () in
      Pm_benchmarks.Redis.set t ~key:7 ~value:"persistent")
  in
  let _ = Executor.run ~inherited:boot.Executor.state ~exec_id:1 (fun () ->
      let t = Pm_benchmarks.Redis.open_existing () in
      match Pm_benchmarks.Redis.get t ~key:7 with
      | Some v -> Printf.printf "after crash+restart, GET 7 -> %S\n" v
      | None -> print_endline "after crash+restart, GET 7 -> (nil)")
  in

  (* Random-mode detection across several executions. *)
  print_endline "\nrandom-mode detection (20 executions):";
  let report = Pm_harness.Runner.random_mode ~execs:20 Pm_benchmarks.Redis.program in
  print_endline (Pm_harness.Report.to_string report);
  print_endline "\nRedis reads are checksum-validated, so most findings are";
  print_endline "benign; the real finding (when a crash lands inside a";
  print_endline "transaction) is the PMDK ulog entry-pointer race that the";
  print_endline "paper notes \"could be revealed by Redis as well\" (section 7.2)."
