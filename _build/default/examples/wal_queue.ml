(* A write-ahead-logged persistent queue built from scratch on the
   public Pmem API — the kind of application a Yashme user would write
   and then crash-test.

   Design: a ring of fixed-size records plus head/tail indices.
   - enqueue: write the record payload + checksum, persist it, then
     publish by storing the tail index with an ATOMIC release store and
     persisting it.
   - dequeue: read head record (validating its checksum), then advance
     the head index (atomic, persisted).

   One deliberately sloppy field is left in: a statistics counter
   updated with a plain store and flushed lazily — exactly the kind of
   "harmless" bookkeeping where persistency races hide in real code
   (cf. the Memcached and P-ART findings).  Yashme flags it; the data
   path stays clean.

   Run with: dune exec examples/wal_queue.exe *)

open Pm_runtime

let capacity = 8
let record_bytes = 64 (* one cache line: len@0, checksum@8, payload@16 *)
let payload_cap = 40

(* Queue descriptor (one line): head@0, tail@8, total_enqueued@16, ring@24. *)

let create () =
  let q = Pmem.alloc ~align:64 32 in
  let ring = Pmem.alloc ~align:64 (capacity * record_bytes) in
  Pmem.store (q + 24) (Int64.of_int ring);
  Pmem.persist q 32;
  Pmem.persist ring (capacity * record_bytes);
  Pmem.set_root 0 q;
  q

let open_existing () = Pmem.get_root 0

let ring q = Pmem.load_int (q + 24)
let head q = Pmem.load_int ~atomic:Px86.Access.Acquire q
let tail q = Pmem.load_int ~atomic:Px86.Access.Acquire (q + 8)
let record q i = ring q + (i mod capacity * record_bytes)

let enqueue q payload =
  assert (String.length payload <= payload_cap);
  let t = tail q in
  if t - head q >= capacity then false
  else begin
    let r = record q t in
    Pmem.store r (Int64.of_int (String.length payload));
    Pmem.store_bytes (r + 16) payload;
    Pmem.store (r + 8) (Pm_benchmarks.Bench_util.checksum_string payload);
    Pmem.persist r record_bytes;
    (* Publication: atomic, ordered after the record persist. *)
    Pmem.store ~atomic:Px86.Access.Release (q + 8) (Int64.of_int (t + 1));
    Pmem.persist (q + 8) 8;
    (* Sloppy bookkeeping: plain store, lazily flushed -> racy. *)
    Pmem.store ~label:"total_enqueued stats counter" (q + 16)
      (Int64.of_int (t + 1));
    true
  end

let dequeue q =
  let h = head q in
  if h >= tail q then None
  else begin
    let r = record q h in
    let value =
      Pmem.validating (fun () ->
          let n = Pmem.load_int r in
          if n < 0 || n > payload_cap then None
          else
            let data = Pmem.load_bytes (r + 16) n in
            if Pmem.load (r + 8) = Pm_benchmarks.Bench_util.checksum_string data then
              Some data
            else None)
    in
    Pmem.store ~atomic:Px86.Access.Release q (Int64.of_int (h + 1));
    Pmem.persist q 8;
    value
  end

let program =
  Pm_harness.Program.make ~name:"wal-queue"
    ~setup:(fun () -> ignore (create ()))
    ~pre:(fun () ->
      let q = open_existing () in
      List.iter
        (fun p -> ignore (enqueue q p))
        [ "job-1"; "job-2"; "job-3"; "job-4" ];
      ignore (dequeue q);
      ignore (dequeue q))
    ~post:(fun () ->
      let q = open_existing () in
      ignore (Pmem.load (q + 16)) (* the stats counter *);
      let rec drain n = match dequeue q with Some _ -> drain (n + 1) | None -> n in
      ignore (drain 0))
    ()

let () =
  (* Functional session. *)
  let _ =
    Executor.run ~exec_id:0 (fun () ->
        let q = create () in
        assert (enqueue q "hello");
        assert (enqueue q "world");
        assert (dequeue q = Some "hello");
        assert (dequeue q = Some "world");
        assert (dequeue q = None))
  in
  print_endline "wal-queue functional session: ok";

  (* Crash-test it. *)
  let report = Pm_harness.Runner.model_check program in
  print_endline (Pm_harness.Report.to_string report);
  print_endline "\nthe data path (records + head/tail) is clean: payloads are";
  print_endline "persisted before atomic publication and validated by checksum.";
  print_endline "the plain-store statistics counter races, as Yashme reports —";
  print_endline "the same pattern as the Memcached and P-ART bookkeeping bugs."
