(* Quickstart: the paper's Figure 1, end to end.

   Pre-crash:   pmobj->val = 0x1234567812345678;  // plain store
                // crash here
                flush(&pmobj->val);
   Post-crash:  if (pmobj->val != 0) printf("0x%PRIx64\n", pmobj->val);

   Run with:    dune exec examples/quickstart.exe *)

open Pm_runtime

let () =
  let detector = Yashme.Detector.create ~mode:Yashme.Detector.Prefix () in

  (* Pre-crash program: one labelled plain store, then the flush that a
     crash will outrun. *)
  let pre () =
    let pmobj = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 pmobj;
    Pmem.store ~label:"pmobj->val" pmobj 0x1234567812345678L;
    Pmem.clflush pmobj;
    Pmem.mfence ()
  in

  (* Post-crash program: read the field back. *)
  let observed = ref 0L in
  let post () =
    let pmobj = Pmem.get_root 0 in
    observed := Pmem.load pmobj
  in

  (* Crash in the window between the store and its clflush.  set_root
     itself issues flush points 0-1, so the val flush is point 2. *)
  let crashed =
    Executor.run ~detector ~plan:(Executor.Crash_before_flush 2) ~exec_id:0 pre
  in
  assert (crashed.Executor.outcome = Executor.Crashed);

  let _ = Executor.run ~detector ~inherited:crashed.Executor.state ~exec_id:1 post in

  Printf.printf "post-crash read pmobj->val = 0x%Lx\n" !observed;
  match Yashme.Detector.races detector with
  | [] -> print_endline "no persistency race detected (unexpected!)"
  | races ->
      Printf.printf "Yashme detected %d persistency race report(s):\n"
        (List.length races);
      List.iter (fun r -> Printf.printf "  %s\n" (Yashme.Race.to_string r)) races;
      print_endline "\nFix: make the store atomic (e.g. std::atomic with \
                     memory_order_release) so the compiler cannot tear it."
