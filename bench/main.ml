(* Regenerates every table and figure of the paper's evaluation:

     Figure 1    torn-store scenario (race detected, mixed value read)
     Table 1     Px86 reordering constraints
     Table 2a    compiler store-optimization catalog
     Table 2b    source vs assembly memory operations
     Table 3     19 races in CCEH / FAST_FAIR / RECIPE (model checking)
     Table 4     5 races in PMDK / Memcached / Redis (random mode)
     Table 5     prefix vs baseline + Yashme vs Jaaru runtimes
     Figures 4-6 detection scenarios (see also examples/scenarios.exe)

   plus one Bechamel micro-benchmark per table.  Absolute numbers differ
   from the paper (different substrate, simulated machine); the shapes
   are the reproduction target (see EXPERIMENTS.md). *)

module Runner = Pm_harness.Runner
module Report = Pm_harness.Report
module Registry = Pm_benchmarks.Registry
module Pretty = Yashme_util.Pretty

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Figure 1                                                             *)

let figure1 () =
  section "Figure 1: persistency race on pmobj->val";
  let detector = Yashme.Detector.create () in
  let open Pm_runtime in
  let pre () =
    let pmobj = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 pmobj;
    Pm_compiler.Tearing.store_paired ~label:"pmobj->val" pmobj 0x1234567812345678L;
    Pmem.clflush pmobj;
    Pmem.mfence ()
  in
  let observed = ref 0L in
  let post () = observed := Pmem.load (Pmem.get_root 0) in
  (* Crash between the torn halves (ops: root store/flush/fence = 0-2,
     low half = 3, high half = 4). *)
  let crashed =
    Executor.run ~detector ~plan:(Executor.Crash_before_op 4) ~exec_id:0 pre
  in
  let _ = Executor.run ~detector ~inherited:crashed.Executor.state ~exec_id:1 post in
  Printf.printf "stored 0x1234567812345678, post-crash read 0x%Lx\n" !observed;
  Printf.printf "detector reports: %d race(s) on pmobj->val\n"
    (List.length (Yashme.Detector.races detector))

(* ------------------------------------------------------------------ *)
(* Tables 1, 2a, 2b                                                     *)

let table1 () =
  section "Table 1: reordering constraints in Px86";
  print_endline (Px86.Reorder.table ())

let table2a () =
  section "Table 2a: compiler store optimizations";
  print_endline (Pm_compiler.Passes.table_2a ())

let table2b () =
  section "Table 2b: #mem-ops in source vs clang -O3 assembly";
  print_endline (Pm_compiler.Programs.table_2b ());
  print_endline "(paper: CCEH 6/33, Fast_Fair 1/4, P-ART 17/8, P-BwTree 6/15,";
  print_endline " P-CLHT 0/0, P-Masstree 3/14)"

(* ------------------------------------------------------------------ *)
(* Table 3                                                              *)

let table3 () =
  section "Table 3: races found in CCEH, FAST_FAIR and RECIPE (model checking)";
  let n = ref 0 in
  let rows =
    List.concat_map
      (fun p ->
        let r = Runner.model_check p in
        List.map
          (fun (f : Report.finding) ->
            incr n;
            [ string_of_int !n; r.Report.program; f.Report.label ])
          (Report.real r))
      Registry.indexes
  in
  print_endline (Pretty.table ~header:[ "#"; "Benchmark"; "Root Cause of Bug" ] rows);
  Printf.printf "total: %d races (paper: 19)\n" !n;
  !n

(* ------------------------------------------------------------------ *)
(* Table 4                                                              *)

let table4 () =
  section "Table 4: races found in PMDK, Redis and Memcached (random mode)";
  (* PMDK is exercised through its five example programs; findings
     deduplicate to the library-level bug, as in the paper. *)
  let execs = 40 in
  let group name programs =
    let findings =
      List.concat_map
        (fun p ->
          let r = Runner.random_mode ~execs p in
          Report.real r)
        programs
    in
    let labels =
      List.sort_uniq compare
        (List.map (fun (f : Report.finding) -> f.Report.label) findings)
    in
    (name, labels)
  in
  let pmdk =
    group "PMDK"
      [ Pm_benchmarks.Pmdk_btree.program; Pm_benchmarks.Pmdk_ctree.program;
        Pm_benchmarks.Pmdk_rbtree.program; Pm_benchmarks.Pmdk_hashmap.program_atomic;
        Pm_benchmarks.Pmdk_hashmap.program_tx ]
  in
  let redis = group "Redis" [ Pm_benchmarks.Redis.program ] in
  let memcached = group "Memcached" [ Pm_benchmarks.Memcached.program ] in
  (* A label seen in several programs is one bug (the paper notes the
     PMDK races "could be revealed by Redis as well"). *)
  let seen = Hashtbl.create 8 in
  let n = ref 0 in
  let rows =
    List.concat_map
      (fun (name, labels) ->
        List.map
          (fun l ->
            if Hashtbl.mem seen l then [ "-"; name; l ^ "  (same bug as above)" ]
            else begin
              Hashtbl.add seen l ();
              incr n;
              [ string_of_int !n; name; l ]
            end)
          labels)
      [ pmdk; memcached; redis ]
  in
  print_endline (Pretty.table ~header:[ "#"; "Benchmark"; "Root Cause of Bug" ] rows);
  Printf.printf
    "total: %d distinct races (paper: 5 = 1 PMDK + 4 Memcached; Redis's reads\n" !n;
  print_endline "are checksum-validated and its PMDK-library finding is the same";
  print_endline "library bug, cf. section 7.2)";
  !n

(* ------------------------------------------------------------------ *)
(* Table 5                                                              *)

(* Wall clock, not [Sys.time]: CPU time misreports parallel engine runs. *)
let time_s f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let table5 () =
  section "Table 5: prefix vs baseline (single random execution) + runtimes";
  let tp = ref 0 and tb = ref 0 in
  let rows =
    List.map
      (fun (p : Pm_harness.Program.t) ->
        let opts mode = { Runner.default_options with mode } in
        let rp, yashme_t =
          time_s (fun () ->
              Runner.single_random ~options:(opts Yashme.Detector.Prefix) p)
        in
        let rb = Runner.single_random ~options:(opts Yashme.Detector.Baseline) p in
        let jaaru_t = Runner.time_without_detector p in
        let np = List.length (Report.real rp) in
        let nb = List.length (Report.real rb) in
        tp := !tp + np;
        tb := !tb + nb;
        [ p.Pm_harness.Program.name; string_of_int np; string_of_int nb;
          Printf.sprintf "%.4fs" yashme_t; Printf.sprintf "%.4fs" jaaru_t ])
      Registry.all
  in
  print_endline
    (Pretty.table
       ~header:[ "Benchmark"; "Prefix"; "Baseline"; "Yashme Time"; "Jaaru Time" ]
       rows);
  Printf.printf "totals: prefix %d vs baseline %d (%.1fx more; paper: 5x)\n" !tp !tb
    (if !tb = 0 then Float.infinity else float_of_int !tp /. float_of_int !tb);
  (* One draw is noisy (the paper's A.8 says the same); sweep seeds for a
     stable aggregate. *)
  let sp = ref 0 and sb = ref 0 in
  for seed = 1 to 10 do
    List.iter
      (fun p ->
        let opts mode = { Runner.default_options with mode; seed } in
        let rp = Runner.single_random ~options:(opts Yashme.Detector.Prefix) p in
        let rb = Runner.single_random ~options:(opts Yashme.Detector.Baseline) p in
        sp := !sp + List.length (Report.real rp);
        sb := !sb + List.length (Report.real rb))
      Registry.all
  done;
  Printf.printf "10-seed sweep: prefix %d vs baseline %d (%.1fx more)\n" !sp !sb
    (if !sb = 0 then Float.infinity else float_of_int !sp /. float_of_int !sb)

(* ------------------------------------------------------------------ *)
(* Exploration engine throughput                                        *)

module Engine = Pm_harness.Engine

(* One measured engine run: stats plus everything that rides along in
   the JSON line and the optional run ledger. *)
type sample = {
  b_stats : Engine.stats;
  b_diff : (string * int) list;  (* metrics diff around the run *)
  b_att : Observe.Attribution.row list;  (* cost centers, same window *)
  b_gc_minor : int;  (* Gc.quick_stat word deltas, same window *)
  b_gc_major : int;
  b_extract : Pm_corpus.Witness.extraction;
  b_report : Report.t;
}

(* One emitted row: the best-of-N sample at one jobs level, with the
   reference level's best elapsed alongside for the speedup column. *)
type measure = {
  m_name : string;
  m_jobs : int;
  m_ref_jobs : int;
  m_ref_elapsed_s : float;
  m_best : sample;
}

(* One engine run of [p] at [jobs] with the observe windows around it.
   The counter diffs are jobs-invariant (each scenario runs exactly
   once), so they double as a cheap cross-check of the determinism
   contract; attribution cost centers are collected over the same
   window; GC word deltas are process-global and volatile. *)
let run_sample ~jobs (p : Pm_harness.Program.t) =
  let before = Observe.Metrics.snapshot () in
  let att_before = Observe.Attribution.snapshot () in
  let gc0 = Gc.quick_stat () in
  let o = Runner.model_check_outcome ~jobs p in
  let gc1 = Gc.quick_stat () in
  (* Witness-corpus accounting rides along: how many distinct witnesses
     the run would emit under --corpus-out, and what fraction of the
     raw observations folded into them. *)
  let e = Pm_corpus.Witness.of_outcome ~program:p.Pm_harness.Program.name o in
  {
    b_stats = o.Runner.o_stats;
    b_diff = Observe.Metrics.diff before (Observe.Metrics.snapshot ());
    b_att = Observe.Attribution.diff att_before (Observe.Attribution.snapshot ());
    b_gc_minor = int_of_float (gc1.Gc.minor_words -. gc0.Gc.minor_words);
    b_gc_major = int_of_float (gc1.Gc.major_words -. gc0.Gc.major_words);
    b_extract = e;
    b_report = o.Runner.o_report;
  }

(* Best-of-N over interleaved repeats.  A fixed jobs=1-first order
   would hand every later level a warmed allocator and memoized
   setup — the measurement bias that made the committed speedups look
   worse than they were — so each repeat visits every jobs level
   before any level repeats, and the minimum elapsed per level wins. *)
let measure_levels ~repeats ~jobs_list (p : Pm_harness.Program.t) =
  let best : (int, sample) Hashtbl.t = Hashtbl.create 8 in
  for _rep = 1 to max 1 repeats do
    List.iter
      (fun jobs ->
        let s = run_sample ~jobs p in
        match Hashtbl.find_opt best jobs with
        | Some prev
          when prev.b_stats.Engine.elapsed_s <= s.b_stats.Engine.elapsed_s ->
            ()
        | Some _ | None -> Hashtbl.replace best jobs s)
      jobs_list
  done;
  let ref_jobs = List.fold_left min max_int jobs_list in
  let ref_elapsed_s =
    match Hashtbl.find_opt best ref_jobs with
    | Some s -> s.b_stats.Engine.elapsed_s
    | None -> 0.
  in
  List.map
    (fun jobs ->
      {
        m_name = p.Pm_harness.Program.name;
        m_jobs = jobs;
        m_ref_jobs = ref_jobs;
        m_ref_elapsed_s = ref_elapsed_s;
        m_best = Hashtbl.find best jobs;
      })
    jobs_list

(* Model-check a few multi-flush-point benchmarks through the engine
   across [jobs_list] and report scenario/execution/op throughput, plus
   one machine-readable JSON line per emitted row (the driver consuming
   the bench output parses these).  Without a sweep, only the highest
   level emits (one row per benchmark, the historical shape); with
   [sweep] every level does, keyed [bench[jobs=N]].  The same lines are
   written to [out] — the summary file [yashme bench-diff] gates
   against a committed baseline — and, with [ledger], one run-manifest
   entry per row is appended for [yashme runs]/[yashme compare]. *)
let engine_throughput ~jobs_list ~repeats ~sweep ~out ?ledger () =
  let jobs_list = List.sort_uniq compare (List.filter (fun j -> j >= 1) jobs_list) in
  let jobs_list = if jobs_list = [] then [ 1 ] else jobs_list in
  let top = List.fold_left max 1 jobs_list in
  section
    (Printf.sprintf
       "Exploration engine throughput (model checking, jobs %s, best of %d)"
       (String.concat "," (List.map string_of_int jobs_list))
       (max 1 repeats));
  let programs =
    [ Pm_benchmarks.Cceh.program; Pm_benchmarks.Fast_fair.program;
      Pm_benchmarks.Memcached.program ]
  in
  Observe.Metrics.enable ();
  Observe.Attribution.enable ();
  let counter_of diff name =
    match List.assoc_opt name diff with Some v -> v | None -> 0
  in
  let measured =
    List.concat_map
      (fun p ->
        let levels = measure_levels ~repeats ~jobs_list p in
        if sweep then levels
        else List.filter (fun m -> m.m_jobs = top) levels)
      programs
  in
  Observe.Metrics.disable ();
  Observe.Attribution.disable ();
  (* Divisions guard against elapsed ~ 0 (a degenerate fast run must
     not print "inf", which is not JSON). *)
  let safe_div a b = if b > 0. then a /. b else 0. in
  let speedup_of m = safe_div m.m_ref_elapsed_s m.m_best.b_stats.Engine.elapsed_s in
  let efficiency_of m =
    safe_div (speedup_of m)
      (float_of_int m.m_jobs /. float_of_int (max 1 m.m_ref_jobs))
  in
  let rows =
    List.map
      (fun m ->
        let sn = m.m_best.b_stats in
        [ m.m_name; string_of_int sn.Engine.jobs;
          string_of_int sn.Engine.scenarios;
          string_of_int sn.Engine.executions; string_of_int sn.Engine.ops;
          Printf.sprintf "%.4fs" m.m_ref_elapsed_s;
          Printf.sprintf "%.4fs" sn.Engine.elapsed_s;
          Printf.sprintf "%.2fx" (speedup_of m);
          Printf.sprintf "%.0f%%" (100. *. efficiency_of m);
          Printf.sprintf "%.0f" (safe_div (float_of_int sn.Engine.ops) sn.Engine.elapsed_s) ])
      measured
  in
  print_endline
    (Pretty.table
       ~header:
         [ "Benchmark"; "jobs"; "scenarios"; "execs"; "ops";
           Printf.sprintf "jobs=%d" (List.fold_left min max_int jobs_list);
           "elapsed"; "speedup"; "efficiency"; "ops/s" ]
       rows);
  print_endline "engine-throughput JSON:";
  let json_lines =
    List.map
      (fun m ->
        let sn = m.m_best.b_stats in
        let e = m.m_best.b_extract in
        let c = counter_of m.m_best.b_diff in
        let dedup_rate =
          if e.Pm_corpus.Witness.raw = 0 then 0.0
          else
            float_of_int e.Pm_corpus.Witness.duplicates
            /. float_of_int e.Pm_corpus.Witness.raw
        in
        let executor_loads =
          c "executor/setup/loads" + c "executor/pre/loads"
          + c "executor/post/loads"
        in
        let executor_stores =
          c "executor/setup/stores" + c "executor/pre/stores"
          + c "executor/post/stores"
        in
        Pm_corpus.Json.encode_obj
          [ ("bench", `S m.m_name);
            ("variant", `S Px86.Variant.default_label);
            ("jobs", `I sn.Engine.jobs);
            ("scenarios", `I sn.Engine.scenarios);
            ("faulted", `I sn.Engine.faulted);
            ("diverged", `I sn.Engine.diverged);
            ("executions", `I sn.Engine.executions);
            ("ops", `I sn.Engine.ops);
            ("elapsed_s_jobs1", `F m.m_ref_elapsed_s);
            ("elapsed_s", `F sn.Engine.elapsed_s);
            ("speedup", `F (speedup_of m));
            ("ops_per_s", `F (safe_div (float_of_int sn.Engine.ops) sn.Engine.elapsed_s));
            ("cpu_s", `F sn.Engine.cpu_s);
            ("detector_candidates", `I (c "detector/candidate_checks"));
            ("detector_prefix_expansions", `I (c "detector/prefix_expansions"));
            ("detector_cv_comparisons", `I (c "detector/cv_comparisons"));
            ("detector_races_raised", `I (c "detector/races_raised"));
            ("detector_races_benign", `I (c "detector/races_benign"));
            ("executor_loads", `I executor_loads);
            ("executor_stores", `I executor_stores);
            ("px86_sb_evictions", `I (c "px86/sb_evictions"));
            ("px86_fb_applies", `I (c "px86/fb_applies"));
            ("px86_crashes", `I (c "px86/crash_materializations"));
            ("witnesses_emitted", `I (List.length e.Pm_corpus.Witness.witnesses));
            ("corpus_dedup_rate", `F dedup_rate);
            (* Observability columns (wall-clock class: process-global
               GC deltas and snapshot-copy volume).  Appended last so
               older baselines diff cleanly — bench-diff ignores extra
               metrics it wasn't asked to compare. *)
            ("gc_minor_words", `I m.m_best.b_gc_minor);
            ("gc_major_words", `I m.m_best.b_gc_major);
            ("snapshot_bytes", `I (c "px86/snapshot_bytes"));
            ("oracle_invariants", `I (c "oracle/invariants"));
            ("oracle_violations", `I (c "oracle/violations"));
            (* Scaling-gate column (bench-diff --scaling), newest last. *)
            ("efficiency", `F (efficiency_of m)) ])
      measured
  in
  List.iter print_endline json_lines;
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        json_lines);
  Printf.printf "engine-throughput summary written to %s\n" out;
  match ledger with
  | None -> ()
  | Some file ->
      List.iter
        (fun m ->
          let sn = m.m_best.b_stats in
          let r = m.m_best.b_report in
          let entry =
            {
              Observe.Ledger.e_version = Observe.Ledger.version;
              e_run = m.m_name;
              e_ts = Unix.gettimeofday ();
              e_program = m.m_name;
              e_variant = Px86.Variant.default_label;
              e_mode = "bench";
              e_jobs = sn.Engine.jobs;
              e_seed = Runner.default_options.Runner.seed;
              e_scenarios = sn.Engine.scenarios;
              e_completed = sn.Engine.completed;
              e_faulted = sn.Engine.faulted;
              e_diverged = sn.Engine.diverged;
              e_executions = sn.Engine.executions;
              e_ops = sn.Engine.ops;
              e_races = List.length (Report.real r);
              e_benign = List.length (Report.benign r);
              e_raw_races = r.Report.raw_races;
              e_recovery_failures = List.length r.Report.recovery_failures;
              e_witnesses =
                List.length m.m_best.b_extract.Pm_corpus.Witness.witnesses;
              e_elapsed_s = sn.Engine.elapsed_s;
              e_cpu_s = sn.Engine.cpu_s;
              e_metrics_digest = Observe.Ledger.digest_counters m.m_best.b_diff;
              e_coverage_digest = "";
              e_cost = Observe.Ledger.costs_of_rows m.m_best.b_att;
            }
          in
          Pm_corpus.Ledger_store.append file entry)
        measured;
      Printf.printf "ledger: %d bench run(s) appended to %s\n"
        (List.length measured) file

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                    *)

let ablations () =
  section "Ablations (single execution, crash at end; real races)";
  (* full     — the shipped detector (prefix + coherence + candidates)
     -cand    — only committed reads checked (no Jaaru candidate sets)
     -coher   — condition (2) disabled (expect FALSE POSITIVES)
     baseline — no prefix expansion (Table 5's comparison)
     eADR     — section 7.5 persistency semantics (subset of full) *)
  let configs =
    [
      ("full", Runner.default_options);
      ("-cand", { Runner.default_options with check_candidates = false });
      ("-coher", { Runner.default_options with coherence = false });
      ("baseline", { Runner.default_options with mode = Yashme.Detector.Baseline });
      ("eADR", { Runner.default_options with eadr = true });
    ]
  in
  (* Two micro-programs that isolate the conditions: "overwrite" has a
     flushed older store under the racy latest one (only candidate
     checking reports both); "coherence" is Figure 5(a) (only condition
     (2) keeps it race-free). *)
  let open Pm_runtime in
  let overwrite =
    Pm_harness.Program.make ~name:"micro-overwrite"
      ~setup:(fun () ->
        let a = Pmem.alloc ~align:64 8 in
        Pmem.set_root 0 a)
      ~pre:(fun () ->
        let a = Pmem.get_root 0 in
        Pmem.store ~label:"old" a 1L;
        Pmem.clflush a;
        Pmem.mfence ();
        Pmem.store ~label:"new" a 2L)
      ~post:(fun () -> ignore (Pmem.load (Pmem.get_root 0)))
      ()
  in
  let coherence_micro =
    Pm_harness.Program.make ~name:"micro-coherence"
      ~setup:(fun () ->
        let a = Pmem.alloc ~align:64 16 in
        Pmem.set_root 0 a)
      ~pre:(fun () ->
        let a = Pmem.get_root 0 in
        Pmem.store ~label:"x" a 1L;
        Pmem.store ~label:"y" ~atomic:Px86.Access.Release (a + 8) 1L)
      ~post:(fun () ->
        let a = Pmem.get_root 0 in
        ignore (Pmem.load ~atomic:Px86.Access.Acquire (a + 8));
        ignore (Pmem.load a))
      ()
  in
  let programs =
    [ overwrite; coherence_micro; Pm_benchmarks.Cceh.program;
      Pm_benchmarks.Fast_fair.program; Pm_benchmarks.P_clht.program;
      Pm_benchmarks.P_masstree.program; Pm_benchmarks.Pmdk_btree.program ]
  in
  let rows =
    List.map
      (fun (p : Pm_harness.Program.t) ->
        p.Pm_harness.Program.name
        :: List.map
             (fun (_, options) ->
               let d, _, _ =
                 Runner.run_once ~options ~plan:Pm_runtime.Executor.Crash_at_end p
               in
               let report =
                 Report.dedup ~program:p.Pm_harness.Program.name ~executions:1
                   (Yashme.Detector.races d)
               in
               string_of_int (List.length (Report.real report)))
             configs)
      programs
  in
  print_endline
    (Pretty.table ~header:("Benchmark" :: List.map fst configs) rows);
  print_endline "(-cand misses races on flushed-then-overwritten fields; -coher";
  print_endline " over-reports by ignoring Figure 5(a)'s cache-coherence argument;";
  print_endline " baseline needs the crash inside the window, so a crash at program";
  print_endline " end finds nothing; eADR <= full, as section 7.5 argues.)";

  section "Ablation: crash-point density (Memcached, model checking)";
  (* Crash before every k-th flush point.  The baseline needs the crash
     to land inside each store-to-flush window, so it decays as crash
     points thin out; prefix-based expansion keeps finding the races
     from a handful of crashes — the paper's key claim (section 4.2). *)
  let p = Pm_benchmarks.Memcached.program in
  let points = Runner.count_flush_points p in
  let races_with options plans =
    let races =
      List.concat_map
        (fun plan ->
          let d, _, _ = Runner.run_once ~options ~plan p in
          Yashme.Detector.races d)
        plans
    in
    let report =
      Report.dedup ~program:"memcached" ~executions:(List.length plans) races
    in
    List.length (Report.real report)
  in
  let rows =
    List.map
      (fun stride ->
        let plans =
          List.filteri (fun i _ -> i mod stride = 0)
            (List.init points (fun n -> Pm_runtime.Executor.Crash_before_flush n))
        in
        let prefix = races_with Runner.default_options plans in
        let baseline =
          races_with { Runner.default_options with mode = Yashme.Detector.Baseline } plans
        in
        [ Printf.sprintf "every %d" stride; string_of_int (List.length plans);
          string_of_int prefix; string_of_int baseline ])
      [ 1; 2; 4; 8; 16 ]
  in
  print_endline
    (Pretty.table ~header:[ "crash density"; "executions"; "prefix"; "baseline" ] rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table                   *)

let bechamel_suite () =
  section "Bechamel micro-benchmarks (one per table)";
  let open Bechamel in
  let open Toolkit in
  let cceh = Pm_benchmarks.Cceh.program in
  let memcached = Pm_benchmarks.Memcached.program in
  let tests =
    Test.make_grouped ~name:"yashme"
      [
        Test.make ~name:"figure1-scenario"
          (Staged.stage (fun () ->
               let open Pm_runtime in
               let d = Yashme.Detector.create () in
               let pre () =
                 let x = Pmem.alloc ~align:64 8 in
                 Pmem.set_root 0 x;
                 Pmem.store ~label:"x" x 1L;
                 Pmem.clflush x;
                 Pmem.mfence ()
               in
               let r =
                 Executor.run ~detector:d ~plan:Executor.Crash_at_end ~exec_id:0 pre
               in
               ignore
                 (Executor.run ~detector:d ~inherited:r.Executor.state ~exec_id:1
                    (fun () -> ignore (Pmem.load (Pmem.get_root 0))))));
        Test.make ~name:"table1-reorder-matrix"
          (Staged.stage (fun () ->
               List.iter
                 (fun e ->
                   List.iter
                     (fun l ->
                       ignore
                         (Px86.Reorder.required ~earlier:e ~later:l ~same_line:false))
                     Px86.Reorder.all_kinds)
                 Px86.Reorder.all_kinds));
        Test.make ~name:"table2-optimizer-pipeline"
          (Staged.stage (fun () ->
               List.iter
                 (fun p -> ignore (Pm_compiler.Programs.counts p))
                 Pm_compiler.Programs.all));
        Test.make ~name:"table3-model-check-cceh"
          (Staged.stage (fun () -> ignore (Runner.model_check cceh)));
        Test.make ~name:"table4-random-exec-memcached"
          (Staged.stage (fun () -> ignore (Runner.single_random memcached)));
        Test.make ~name:"table5-prefix-vs-baseline"
          (Staged.stage (fun () ->
               let opts mode = { Runner.default_options with mode } in
               ignore (Runner.single_random ~options:(opts Yashme.Detector.Prefix) cceh);
               ignore
                 (Runner.single_random ~options:(opts Yashme.Detector.Baseline) cceh)));
      ]
  in
  let benchmark () =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances tests in
    let results = List.map (fun i -> Analyze.all ols i raw) instances in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  let clock = Measure.label Instance.monotonic_clock in
  match Hashtbl.find_opt results clock with
  | None -> print_endline "(no results)"
  | Some tbl ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some [ t ] -> Printf.sprintf "%.2f us/run" (t /. 1_000.0)
            | Some _ | None -> "n/a"
          in
          rows := [ name; est ] :: !rows)
        tbl;
      print_endline (Pretty.table ~header:[ "bench"; "time" ] (List.sort compare !rows))

(* ------------------------------------------------------------------ *)

(* [--jobs N] sizes the engine's domain pool for the throughput section
   (default 4, the evaluation's comparison point). *)
let jobs_arg =
  let rec scan = function
    | "--jobs" :: n :: _ -> ( try int_of_string n with Failure _ -> 4)
    | _ :: rest -> scan rest
    | [] -> 4
  in
  scan (Array.to_list Sys.argv)

(* [--jobs-sweep 1,2,4] emits one throughput row per jobs level instead
   of only the top one — the input of yashme bench-diff --scaling. *)
let jobs_sweep_arg =
  let parse s =
    List.filter_map
      (fun t -> match int_of_string_opt (String.trim t) with
        | Some j when j >= 1 -> Some j
        | _ -> None)
      (String.split_on_char ',' s)
  in
  let rec scan = function
    | "--jobs-sweep" :: l :: _ -> Some (parse l)
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

(* [--repeats N] (default 2) interleaves N measurement passes over the
   jobs levels and keeps the best elapsed per level. *)
let repeats_arg =
  let rec scan = function
    | "--repeats" :: n :: _ -> ( try max 1 (int_of_string n) with Failure _ -> 2)
    | _ :: rest -> scan rest
    | [] -> 2
  in
  scan (Array.to_list Sys.argv)

(* [--out FILE] places the engine-throughput summary (default: the
   baseline path committed at the repo root). *)
let out_arg =
  let rec scan = function
    | "--out" :: f :: _ -> f
    | _ :: rest -> scan rest
    | [] -> "BENCH_engine_throughput.json"
  in
  scan (Array.to_list Sys.argv)

(* [--ledger FILE] appends one run-manifest entry per benchmark to the
   ledger, mode "bench" (see yashme runs / yashme compare). *)
let ledger_arg =
  let rec scan = function
    | "--ledger" :: f :: _ -> Some f
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

(* [--throughput-only] skips the paper tables: the fast path CI's bench
   gate runs twice back to back. *)
let throughput_only = Array.exists (String.equal "--throughput-only") Sys.argv

let engine_throughput_main () =
  let jobs_list, sweep =
    match jobs_sweep_arg with
    | Some (_ :: _ as levels) -> (levels, true)
    | Some [] | None -> ([ 1; jobs_arg ], false)
  in
  engine_throughput ~jobs_list ~repeats:repeats_arg ~sweep ~out:out_arg
    ?ledger:ledger_arg ()

let () =
  print_endline "Yashme reproduction benchmark harness";
  if throughput_only then engine_throughput_main ()
  else begin
    print_endline
      "(shapes, not absolute numbers, are the target; see EXPERIMENTS.md)";
    figure1 ();
    table1 ();
    table2a ();
    table2b ();
    let t3 = table3 () in
    let t4 = table4 () in
    table5 ();
    engine_throughput_main ();
    ablations ();
    bechamel_suite ();
    section "Summary";
    Printf.printf "distinct real persistency races found: %d (paper: 24)\n"
      (t3 + t4)
  end
