open Pm_runtime

(* Pool header: magic@0, root_ptr@8, ulog_ptr@16, undo_ptr@24. *)

type t = {
  header : Px86.Addr.t;
  log : Pmdk_ulog.t;
  undo : Pmdk_undolog.t;
  mutable in_tx : bool;
  mutable in_undo_tx : bool;
}

let magic = 0x504D444BL (* "PMDK" *)

let create ~root_size =
  let header = Pmem.alloc ~align:64 32 in
  let log = Pmdk_ulog.create () in
  let undo = Pmdk_undolog.create () in
  let root = Pmem.alloc ~align:64 root_size in
  Pmem.store header magic;
  Pmem.store (header + 8) (Int64.of_int root);
  Pmem.store (header + 16) (Int64.of_int log);
  Pmem.store (header + 24) (Int64.of_int undo);
  Pmem.persist header 32;
  Pmem.persist root root_size;
  Pmem.set_root 6 header;
  { header; log; undo; in_tx = false; in_undo_tx = false }

let open_pool () =
  let header = Pmem.get_root 6 in
  if Pmem.load header <> magic then failwith "Pmdk_pool.open_pool: bad magic";
  let log = Pmem.load_int (header + 16) in
  let undo = Pmem.load_int (header + 24) in
  (* Lane recovery: roll back uncommitted undo transactions, then replay
     committed redo transactions. *)
  ignore (Pmdk_undolog.recover undo);
  ignore (Pmdk_ulog.recover log);
  { header; log; undo; in_tx = false; in_undo_tx = false }

let root t = Pmem.load_int (t.header + 8)
let ulog t = t.log

let tx_store t addr value =
  if not t.in_tx then invalid_arg "Pmdk_pool.tx_store: not inside a transaction";
  Pmdk_ulog.append t.log ~offset:addr ~value

let tx_alloc _t ?(align = 8) size = Pmem.alloc ~align size

let tx_load t addr =
  let pending =
    if t.in_tx then
      List.fold_left
        (fun acc (off, v) -> if off = addr then Some v else acc)
        None (Pmdk_ulog.entries t.log)
    else None
  in
  match pending with Some v -> v | None -> Pmem.load addr

(* ------------------------------------------------------------------ *)
(* Undo-log transactions (pmemobj_tx_add_range style)                   *)

let tx_add_range t addr size =
  if not t.in_undo_tx then
    invalid_arg "Pmdk_pool.tx_add_range: not inside an undo transaction";
  Pmdk_undolog.add_range t.undo ~addr ~size

let tx_direct_store t addr value =
  if not t.in_undo_tx then
    invalid_arg "Pmdk_pool.tx_direct_store: not inside an undo transaction";
  Pmem.store addr value;
  Pmem.persist addr 8

let tx_undo t f =
  if t.in_tx || t.in_undo_tx then
    invalid_arg "Pmdk_pool.tx_undo: nested transactions are not supported";
  t.in_undo_tx <- true;
  match f () with
  | () ->
      t.in_undo_tx <- false;
      (* All in-place stores are persisted; seal then drop the log. *)
      Pmdk_undolog.seal t.undo;
      Pmdk_undolog.discard t.undo
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      t.in_undo_tx <- false;
      (* Abort: restore the snapshots. *)
      ignore (Pmdk_undolog.recover t.undo);
      Printexc.raise_with_backtrace e bt

let tx t f =
  if t.in_tx || t.in_undo_tx then
    invalid_arg "Pmdk_pool.tx: nested transactions are not supported";
  t.in_tx <- true;
  (match f () with
  | () ->
      t.in_tx <- false;
      Pmdk_ulog.commit t.log;
      Pmdk_ulog.apply t.log;
      Pmdk_ulog.clear t.log
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      t.in_tx <- false;
      (* Abort: discard the uncommitted log. *)
      Pmdk_ulog.clear t.log;
      Printexc.raise_with_backtrace e bt)
