(** Persistency-model litmus suite: small labeled programs whose race
    reports, run across every {!Px86.Variant} built-in, localize
    semantic divergence between model variants to single rules
    (flush-buffer discipline, fence semantics, persist ordering,
    store-buffer policy).

    The rendered matrix is pinned as a golden file; CI re-runs it and
    fails on any unexpected divergence. *)

type case = {
  c_name : string;
  c_program : Pm_harness.Program.t;
  c_options : Pm_harness.Runner.options;
      (** base options (store-buffer policy, seed); the matrix driver
          overrides the [variant] field per column *)
  c_recovery : bool;
      (** drive with [model_check_recovery] (two-crash scenarios) *)
  c_doc : string;  (** one-line program summary *)
}

val cases : case list

(** The litmus programs, for the registry ([yashme list] marking and
    name lookup); never part of [Registry.all]. *)
val programs : Pm_harness.Program.t list

(** One matrix cell: the deduplicated race findings (label, report
    count, benign) and total recovery-failure reports of one litmus
    case under one variant. *)
type cell = {
  races : (string * int * bool) list;
  recovery_failures : int;
}

type matrix = {
  m_variants : string list;  (** column labels; strict-tso first *)
  m_rows : (string * cell list) list;  (** per case, in {!cases} order *)
}

(** Built-in variants, matrix column order (strict-tso first). *)
val variants : Px86.Variant.t list

val run_case : ?jobs:int -> variant:Px86.Variant.t -> case -> cell

val run_matrix : ?jobs:int -> unit -> matrix

(** Compact cell form: ["label:count[b] ..."], ["rf:n"], or ["-"]. *)
val cell_label : cell -> string

(** The divergence table: one row per case, one column per variant;
    cells differing from the strict-tso baseline carry a ['*']. *)
val render : matrix -> string

(** Does the named (case, variant) cell differ from strict-tso's? *)
val diverges : matrix -> variant:string -> case:string -> bool
