(** Name-indexed registry of all crash-test programs (the paper's
    benchmark suite). *)

(** All programs, in the row order of Table 5. *)
val all : Pm_harness.Program.t list

(** The PM index benchmarks evaluated with model checking (Table 3). *)
val indexes : Pm_harness.Program.t list

(** The frameworks evaluated in random mode (Table 4): PMDK example
    structures, Redis, Memcached. *)
val frameworks : Pm_harness.Program.t list

(** Fault-injection demos ({!Demo_faults}); findable by name but never
    part of {!all}. *)
val demos : Pm_harness.Program.t list

(** Litmus programs ({!Litmus}); findable by name but never part of
    {!all} (excluded from [check-all]). *)
val litmus : Pm_harness.Program.t list

(** Find by (case-insensitive) name, demos and litmus included; raises
    [Not_found]. *)
val find : string -> Pm_harness.Program.t

(** Program names, demos and litmus included (what [yashme list]
    prints). *)
val names : unit -> string list
