(** Name-indexed registry of all crash-test programs (the paper's
    benchmark suite). *)

(** All programs, in the row order of Table 5. *)
val all : Pm_harness.Program.t list

(** The PM index benchmarks evaluated with model checking (Table 3). *)
val indexes : Pm_harness.Program.t list

(** The frameworks evaluated in random mode (Table 4): PMDK example
    structures, Redis, Memcached. *)
val frameworks : Pm_harness.Program.t list

(** Fault-injection demos ({!Demo_faults}); findable by name but never
    part of {!all}. *)
val demos : Pm_harness.Program.t list

(** Litmus programs ({!Litmus}); findable by name but never part of
    {!all} (excluded from [check-all]). *)
val litmus : Pm_harness.Program.t list

(** Soak op streams ({!Pm_harness.Soak}) for the benchmarks with a
    randomized-client surface: memcached, redis, cceh. *)
val soak_streams : Pm_harness.Soak.op_stream list

(** The fault-storm demo stream ({!Demo_faults.storm_stream});
    findable by name, never soaked by default. *)
val soak_demo_streams : Pm_harness.Soak.op_stream list

(** Find a soak stream by (case-insensitive) name, demo streams
    included. *)
val find_soak_stream : string -> Pm_harness.Soak.op_stream option

(** Rebuild a soak program from its encoded
    ["soak:STREAM:MIX:DIST:OPS:SEED"] name (corpus replay of soak
    witnesses); [None] for non-soak or malformed names. *)
val find_soak_program : string -> Pm_harness.Program.t option

(** Find by (case-insensitive) name, demos and litmus included; raises
    [Not_found]. *)
val find : string -> Pm_harness.Program.t

(** Program names, demos and litmus included (what [yashme list]
    prints). *)
val names : unit -> string list
