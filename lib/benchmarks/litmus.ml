open Pm_runtime
module Runner = Pm_harness.Runner
module Report = Pm_harness.Report
module Program = Pm_harness.Program
module Variant = Px86.Variant

(* Persistency-model litmus programs: each is a handful of labeled
   stores, flushes and fences at fixed addresses (no setup phase, no
   roots — roots would add their own flush points and "__root" races to
   every cell).  Run across the variant matrix, their race reports
   localize semantic divergence to a single model rule; the rendered
   table is pinned as a golden file (LITMUS_matrix.txt) and checked by
   CI and the test suite.

   Address map: one variable per cache line, starting at the heap base
   so the root slots (line 0) stay untouched. *)

let a = 64 (* line 1 *)
let b = 128 (* line 2 *)
let c = 192 (* line 3 *)

type case = {
  c_name : string;
  c_program : Program.t;
  c_options : Runner.options;  (* variant field overridden per column *)
  c_recovery : bool;  (** drive with [model_check_recovery] (two-crash) *)
  c_doc : string;
}

let mk ?(sb_policy = Px86.Machine.Eager) ?(seed = Runner.default_options.seed)
    ?(recovery = false) ~doc name pre post =
  {
    c_name = name;
    c_program = Program.make ~name ~pre ~post ();
    c_options = { Runner.default_options with sb_policy; seed };
    c_recovery = recovery;
    c_doc = doc;
  }

let read addr = ignore (Pmem.load_int addr)

(* store -> clwb -> sfence, read back unconditionally.  Prefix
   expansion makes every variant agree here: the recovery read races
   with the consistent prefix that has the store committed but the
   chain incomplete, whatever the fence later did.  A control row. *)
let flush_fence_chain =
  mk "litmus-flush-fence-chain"
    ~doc:"store a; clwb a; sfence | read a"
    (fun () ->
      Pmem.store_int ~label:"lit.a" a 1;
      Pmem.clwb a;
      Pmem.sfence ())
    (fun () -> read a)

(* clwb with no fence, read back unconditionally: the pre-flush prefix
   races under every variant (prefix expansion again), so this control
   pins that an unconditional read-back cannot tell Fb_immediate from
   Fb_at_fence — only the conditional publish shape below can. *)
let clwb_unfenced =
  mk "litmus-clwb-unfenced"
    ~doc:"store a; clwb a | read a"
    (fun () ->
      Pmem.store_int ~label:"lit.ua" a 1;
      Pmem.clwb a)
    (fun () -> read a)

(* Control: clflush applies at commit and cas/mfence drains are forced,
   so every variant (fence-nop included) agrees on this cell. *)
let clflush_strict =
  mk "litmus-clflush-strict"
    ~doc:"store a; clflush a; mfence | read a"
    (fun () ->
      Pmem.store_int ~label:"lit.ca" a 1;
      Pmem.clflush a;
      Pmem.mfence ())
    (fun () -> read a)

(* Publish pattern: data is flushed and fenced before the flag store.
   The recovery reads data only behind the flag, so the early crash
   plans see no race at all; at crash-at-end the unflushed flag always
   races, and fence-nop additionally races on the data it failed to
   persist — a key-set divergence, not just a count. *)
let publish_flag =
  mk "litmus-publish-flag"
    ~doc:"store a; clwb a; sfence; store b(flag) | if b read a"
    (fun () ->
      Pmem.store_int ~label:"lit.data" a 1;
      Pmem.clwb a;
      Pmem.sfence ();
      Pmem.store_int ~label:"lit.flag" b 1)
    (fun () -> if Pmem.load_int b = 1 then read a)

(* Epoch probe: a bare sfence (no flush) between data and flag.  Under
   per-line persistency the fence persists nothing and the data races;
   under epoch persistency the fence is a persist barrier and only the
   flag races. *)
let epoch_bare_fence =
  mk "litmus-epoch-bare-fence"
    ~doc:"store a; sfence(bare); store b(flag) | if b read a"
    (fun () ->
      Pmem.store_int ~label:"lit.edata" a 1;
      Pmem.sfence ();
      Pmem.store_int ~label:"lit.eflag" b 1)
    (fun () -> if Pmem.load_int b = 1 then read a)

(* movnt publish: the non-temporal store is durable at the fence
   without any flush, so a prefix containing the flag store has the
   data durable — except under fence-nop, where the write-combining
   buffer is never drained and the data races alongside the flag. *)
let movnt_fence =
  mk "litmus-movnt-fence"
    ~doc:"movnt a; sfence; store b(flag) | if b read a"
    (fun () ->
      Pmem.store ~label:"lit.nt" ~nt:true a 1L;
      Pmem.sfence ();
      Pmem.store_int ~label:"lit.ntflag" b 1)
    (fun () -> if Pmem.load_int b = 1 then read a)

(* Unfenced-clwb publish: no fence anywhere, so Fb_at_fence never
   applies the write-back and any prefix containing the flag has the
   data unflushed; Fb_immediate (relaxed) applies it at commit, which
   is hb-before the flag store, leaving only the flag racing. *)
let relaxed_publish =
  mk "litmus-relaxed-publish"
    ~doc:"store a; clwb a (no fence); store b(flag) | if b read a"
    (fun () ->
      Pmem.store_int ~label:"lit.rdata" a 1;
      Pmem.clwb a;
      Pmem.store_int ~label:"lit.rflag" b 1)
    (fun () -> if Pmem.load_int b = 1 then read a)

(* Store-buffer bypass probe: with background drain disabled, the only
   way the store ever reaches the cache is a load forced to stall.
   Under strict-tso the load forwards from the buffer and the store
   dies with the crash (no race — nothing durable was read); with
   bypass off the load drains, committing an unflushed store that the
   recovery then reads. *)
let sb_bypass_probe =
  mk "litmus-sb-bypass-probe" ~sb_policy:(Px86.Machine.Random_drain 0.0)
    ~doc:"store a; load a (no drain) | read a"
    (fun () ->
      Pmem.store_int ~label:"lit.bflag" a 1;
      read a)
    (fun () -> read a)

(* Store-buffer eviction-order probe: under Random_drain, strict-tso
   picks any Table-1-evictable entry (a clwb may overtake older stores
   to other lines) while sb-fifo evicts strictly in order, so the two
   consume the RNG differently and strand different suffixes in the
   buffer at the crash.  The seed is chosen so the difference is
   visible in the matrix (under seed 1, fifo order drains lit.fc before
   the crash that strict-tso's free pick leaves it stranded in). *)
let sb_fifo_probe =
  mk "litmus-sb-fifo-probe" ~sb_policy:(Px86.Machine.Random_drain 0.5) ~seed:1
    ~doc:"stores a,b,c + clwbs under random drain | read a,b,c"
    (fun () ->
      Pmem.store_int ~label:"lit.fa" a 1;
      Pmem.store_int ~label:"lit.fb" b 1;
      Pmem.clwb a;
      Pmem.clwb b;
      Pmem.store_int ~label:"lit.fc" c 1)
    (fun () ->
      read a;
      read b;
      read c)

(* Two fields on one cache line behind one clwb+sfence: per-line
   persist order keeps them atomic; the cell pins that no variant
   splits a line. *)
let same_line_pair =
  mk "litmus-same-line-pair"
    ~doc:"store a, a+8 (one line); clwb; sfence | read both"
    (fun () ->
      Pmem.store_int ~label:"lit.s1" a 1;
      Pmem.store_int ~label:"lit.s2" (a + 8) 1;
      Pmem.clwb a;
      Pmem.sfence ())
    (fun () ->
      read a;
      read (a + 8))

(* Double-crash control: the recovery procedure persists its own repair
   marker and the two-crash driver crashes inside it.  Prefix expansion
   keeps the counts equal across variants; the row pins that the
   two-crash scenario space itself is variant-stable. *)
let epoch_double_crash =
  mk "litmus-epoch-double-crash" ~recovery:true
    ~doc:"pre persists a | recovery: store b(marker); clwb; sfence; read a"
    (fun () ->
      Pmem.store_int ~label:"lit.dc" a 1;
      Pmem.clwb a;
      Pmem.sfence ())
    (fun () ->
      Pmem.store_int ~label:"lit.rec" b 1;
      Pmem.clwb b;
      Pmem.sfence ();
      read a)

let cases =
  [
    flush_fence_chain;
    clwb_unfenced;
    clflush_strict;
    publish_flag;
    epoch_bare_fence;
    movnt_fence;
    relaxed_publish;
    sb_bypass_probe;
    sb_fifo_probe;
    same_line_pair;
    epoch_double_crash;
  ]

let programs = List.map (fun case -> case.c_program) cases

(* ------------------------------------------------------------------ *)
(* The matrix                                                           *)

type cell = {
  races : (string * int * bool) list;  (* label, report count, benign *)
  recovery_failures : int;
}

type matrix = {
  m_variants : string list;  (* column labels; strict-tso first *)
  m_rows : (string * cell list) list;  (* per case, in [cases] order *)
}

let variants = List.map (fun (_, v, _) -> v) Variant.builtins

let run_case ?(jobs = 1) ~variant case =
  let options = { case.c_options with Runner.variant } in
  let report =
    if case.c_recovery then
      Runner.model_check_recovery ~options ~jobs case.c_program
    else Runner.model_check ~options ~jobs case.c_program
  in
  {
    races =
      List.map
        (fun (f : Report.finding) ->
          (f.Report.label, f.Report.count, f.Report.benign))
        report.Report.findings;
    recovery_failures =
      List.fold_left
        (fun acc (r : Report.recovery_failure) -> acc + r.Report.rf_count)
        0 report.Report.recovery_failures;
  }

let run_matrix ?(jobs = 1) () =
  {
    m_variants = List.map Variant.label variants;
    m_rows =
      List.map
        (fun case ->
          ( case.c_name,
            List.map (fun variant -> run_case ~jobs ~variant case) variants ))
        cases;
  }

let cell_label cell =
  let races =
    List.map
      (fun (label, count, benign) ->
        Printf.sprintf "%s:%d%s" label count (if benign then "b" else ""))
      cell.races
  in
  let rf =
    if cell.recovery_failures = 0 then []
    else [ Printf.sprintf "rf:%d" cell.recovery_failures ]
  in
  match races @ rf with [] -> "-" | parts -> String.concat " " parts

(* Cells that differ from the strict-tso column carry a '*' — the
   divergences the matrix exists to surface. *)
let render m =
  let header = "litmus \\ variant" :: m.m_variants in
  let rows =
    List.map
      (fun (name, cells) ->
        let baseline = List.hd cells in
        name
        :: List.map
             (fun cell ->
               cell_label cell ^ (if cell <> baseline then " *" else ""))
             cells)
      m.m_rows
  in
  Yashme_util.Pretty.table ~header rows

(* [diverges m ~variant ~case]: does the named cell differ from its
   strict-tso baseline? *)
let diverges m ~variant ~case =
  match List.assoc_opt case m.m_rows with
  | None -> false
  | Some cells -> (
      match
        List.mapi (fun i v -> (v, i)) m.m_variants |> List.assoc_opt variant
      with
      | None -> false
      | Some i -> List.nth cells i <> List.hd cells)
