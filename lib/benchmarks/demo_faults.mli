(** Deliberately misbehaving demo programs for the harness's fault
    isolation.  Findable through {!Registry.find} but excluded from
    {!Registry.all} (they are not part of the paper's suite).

    - [demo-diverge]: the pre-crash phase spins forever after its first
      flush; only a [--max-ops] fuel budget (or [--timeout]) terminates
      it, marking the scenario diverged.
    - [demo-faulty-recovery]: the pre-crash phase flushes only one of
      two mirror fields, so a crash at program end tears them and the
      recovery procedure raises — a recovery-failure finding. *)

val diverge : Pm_harness.Program.t
val faulty_recovery : Pm_harness.Program.t

(** Both demos, in the order above. *)
val all : Pm_harness.Program.t list

(** A soak op stream whose delete handler always crashes: buckets whose
    mix draws deletes fault until quarantined, delete-free buckets keep
    running — the fault-storm fixture for the soak service's graceful
    degradation. *)
val storm_stream : Pm_harness.Soak.op_stream
