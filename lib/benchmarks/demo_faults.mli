(** Deliberately misbehaving demo programs for the harness's fault
    isolation.  Findable through {!Registry.find} but excluded from
    {!Registry.all} (they are not part of the paper's suite).

    - [demo-diverge]: the pre-crash phase spins forever after its first
      flush; only a [--max-ops] fuel budget (or [--timeout]) terminates
      it, marking the scenario diverged.
    - [demo-faulty-recovery]: the pre-crash phase flushes only one of
      two mirror fields, so a crash at program end tears them and the
      recovery procedure raises — a recovery-failure finding.
    - [demo-inconsistency]: a planted persist-order inversion (the
      guard flag flushes before the data it publishes).  Recovery never
      raises and every store is persisted before the phase ends, so the
      race detector stays silent; only the invariant oracle (via the
      program's [observe] hook) flags the crash state flag=1/data=0. *)

val diverge : Pm_harness.Program.t
val faulty_recovery : Pm_harness.Program.t
val inconsistency : Pm_harness.Program.t

(** All demos, in the order above. *)
val all : Pm_harness.Program.t list

(** A soak op stream whose delete handler always crashes: buckets whose
    mix draws deletes fault until quarantined, delete-free buckets keep
    running — the fault-storm fixture for the soak service's graceful
    degradation. *)
val storm_stream : Pm_harness.Soak.op_stream
