open Pm_runtime

(* Deliberately misbehaving programs exercising the harness's fault
   isolation.  Not part of the paper's suite ({!Registry.all}): they
   exist for the fault-injection smoke tests and as runnable
   documentation of --max-ops / recovery-failure findings. *)

(* One durable counter at root 0, then a spin that never terminates:
   every iteration is a scheduled operation (a load and a yield), so a
   --max-ops fuel budget kills the phase deterministically.  A plan
   that crashes before the first flush never reaches the spin. *)
let diverge =
  let setup () =
    let a = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 a
  in
  let pre () =
    let a = Pmem.get_root 0 in
    Pmem.store_int ~label:"demo.counter" a 1;
    Pmem.clflush a;
    Pmem.mfence ();
    while Pmem.load_int a >= 0 do
      Pmem.yield ()
    done
  in
  let post () =
    let a = Pmem.get_root 0 in
    ignore (Pmem.load_int a)
  in
  Pm_harness.Program.make ~name:"demo-diverge" ~setup ~pre ~post ()

(* Two mirror fields on distinct cache lines, each persisted on its
   own before the next is written.  A crash between the two updates
   leaves them unequal, and the recovery procedure — which assumes the
   mirrors always agree instead of repairing them — raises on that real
   crash image: the shape of a WITCHER-style recovery failure. *)
let faulty_recovery =
  let setup () =
    let a = Pmem.alloc ~align:64 128 in
    Pmem.set_root 0 a
  in
  let pre () =
    let a = Pmem.get_root 0 in
    Pmem.store_int ~label:"demo.mirror_x" a 1;
    Pmem.clflush a;
    Pmem.mfence ();
    Pmem.store_int ~label:"demo.mirror_y" (a + 64) 1;
    Pmem.clflush (a + 64);
    Pmem.mfence ()
  in
  let post () =
    let a = Pmem.get_root 0 in
    let x = Pmem.load_int a in
    let y = Pmem.load_int (a + 64) in
    if x <> y then
      failwith (Printf.sprintf "mirror fields differ after crash: x=%d y=%d" x y)
  in
  Pm_harness.Program.make ~name:"demo-faulty-recovery" ~setup ~pre ~post ()

(* A planted persist-order inversion for the invariant oracle: [pre]
   writes [data] then [flag] (the program-order publication protocol),
   but flushes [flag] first — a crash between the two flushes recovers
   flag=1 over data=0, the exact state the protocol promises can never
   be observed.  The recovery procedure reads nothing and never raises,
   and every store is flushed and fenced before the phase ends, so the
   race detector and the recovery-failure path both stay silent: only
   the state-diff oracle (which infers "data persisted before flag"
   from a crash-free reference run) flags it. *)
let inconsistency =
  let setup () =
    let a = Pmem.alloc ~align:64 128 in
    Pmem.set_root 0 a;
    Pmem.persist a 128
  in
  let pre () =
    let a = Pmem.get_root 0 in
    Pmem.store_int ~label:"demo.data" a 41;
    Pmem.store_int ~label:"demo.flag" (a + 64) 1;
    (* Bug: the flag publishes before the data it guards persists. *)
    Pmem.clflush (a + 64);
    Pmem.mfence ();
    Pmem.clflush a;
    Pmem.mfence ()
  in
  let post () = ignore (Pmem.get_root 0) in
  let observe () =
    let a = Pmem.get_root 0 in
    [
      ("demo.data", string_of_int (Pmem.load_int a));
      ("demo.flag", string_of_int (Pmem.load_int (a + 64)));
    ]
  in
  Pm_harness.Program.make ~name:"demo-inconsistency" ~setup ~pre ~post ~observe
    ()

let all = [ diverge; faulty_recovery; inconsistency ]

(* A soak op stream with a crashing delete handler: every bucket whose
   mix draws deletes eventually faults its way to quarantine, while the
   delete-free mixes (read-heavy, rmw-heavy) keep soaking — the fault
   storm the soak service's graceful-degradation path is tested
   against.  Writes land on four durable counters so the stream still
   produces genuine crash/recover work. *)
let storm_stream =
  let cell a key = a + (8 * ((key - 1) land 3)) in
  {
    Pm_harness.Soak.os_name = "demo-storm";
    os_keyspace = 4;
    os_setup =
      Some
        (fun () ->
          let a = Pmem.alloc ~align:64 64 in
          Pmem.set_root 0 a;
          Pmem.persist a 64);
    os_connect =
      (fun () ->
        let a = Pmem.get_root 0 in
        fun kind ~key ~payload ->
          match kind with
          | Pm_harness.Soak.Read -> ignore (Pmem.load_int (cell a key))
          | Pm_harness.Soak.Write | Pm_harness.Soak.Rmw ->
              Pmem.store_int ~label:"demo.storm_cell" (cell a key) payload;
              Pmem.clflush (cell a key);
              Pmem.mfence ()
          | Pm_harness.Soak.Delete ->
              failwith "demo-storm: delete handler crashed");
    os_audit =
      (fun () ->
        let a = Pmem.get_root 0 in
        for k = 1 to 4 do
          ignore (Pmem.load_int (cell a k))
        done);
    os_observe =
      Some
        (fun () ->
          let a = Pmem.get_root 0 in
          List.init 4 (fun i ->
              ( Printf.sprintf "cell%d" (i + 1),
                string_of_int (Pmem.load_int (cell a (i + 1))) )));
  }
