open Pm_runtime

(* Deliberately misbehaving programs exercising the harness's fault
   isolation.  Not part of the paper's suite ({!Registry.all}): they
   exist for the fault-injection smoke tests and as runnable
   documentation of --max-ops / recovery-failure findings. *)

(* One durable counter at root 0, then a spin that never terminates:
   every iteration is a scheduled operation (a load and a yield), so a
   --max-ops fuel budget kills the phase deterministically.  A plan
   that crashes before the first flush never reaches the spin. *)
let diverge =
  let setup () =
    let a = Pmem.alloc ~align:64 8 in
    Pmem.set_root 0 a
  in
  let pre () =
    let a = Pmem.get_root 0 in
    Pmem.store_int ~label:"demo.counter" a 1;
    Pmem.clflush a;
    Pmem.mfence ();
    while Pmem.load_int a >= 0 do
      Pmem.yield ()
    done
  in
  let post () =
    let a = Pmem.get_root 0 in
    ignore (Pmem.load_int a)
  in
  Pm_harness.Program.make ~name:"demo-diverge" ~setup ~pre ~post ()

(* Two mirror fields on distinct cache lines, each persisted on its
   own before the next is written.  A crash between the two updates
   leaves them unequal, and the recovery procedure — which assumes the
   mirrors always agree instead of repairing them — raises on that real
   crash image: the shape of a WITCHER-style recovery failure. *)
let faulty_recovery =
  let setup () =
    let a = Pmem.alloc ~align:64 128 in
    Pmem.set_root 0 a
  in
  let pre () =
    let a = Pmem.get_root 0 in
    Pmem.store_int ~label:"demo.mirror_x" a 1;
    Pmem.clflush a;
    Pmem.mfence ();
    Pmem.store_int ~label:"demo.mirror_y" (a + 64) 1;
    Pmem.clflush (a + 64);
    Pmem.mfence ()
  in
  let post () =
    let a = Pmem.get_root 0 in
    let x = Pmem.load_int a in
    let y = Pmem.load_int (a + 64) in
    if x <> y then
      failwith (Printf.sprintf "mirror fields differ after crash: x=%d y=%d" x y)
  in
  Pm_harness.Program.make ~name:"demo-faulty-recovery" ~setup ~pre ~post ()

let all = [ diverge; faulty_recovery ]
