(** Redis ported to persistent memory (the Intel fork): a volatile hash
    dictionary whose values live in PM, updated through PMDK's
    transaction API (libpmemobj), with checksummed value blobs.

    In the paper's single random execution Yashme found no {e new} races
    in Redis (Table 5), because its crash windows are dominated by
    out-of-transaction payload persists and its reads are checksum-
    validated; the PMDK library races "could be revealed by Redis as
    well" (section 7.2) and do show up under systematic crash
    injection. *)

type t

val start : unit -> t
val open_existing : unit -> t

(** The client's SET: persist the value blob out of place, then link it
    into the persistent key directory inside a transaction. *)
val set : t -> key:int -> value:string -> unit

(** The client's GET: checksum-validated read. *)
val get : t -> key:int -> string option

(** DEL: unlink a key inside a transaction; false when absent. *)
val del : t -> key:int -> bool

(** INCR: numeric increment (read-modify-write); returns the new value. *)
val incr : t -> key:int -> int

(** Post-restart audit of the whole keyspace. *)
val recover_all : t -> int  (** number of valid entries *)

val program : Pm_harness.Program.t

(** Randomized-client soak stream: get/set/del/incr over a keyspace
    small enough that the fixed directory never fills; audit is
    {!recover_all}. *)
val soak_stream : Pm_harness.Soak.op_stream
