let indexes =
  [
    Cceh.program;
    Fast_fair.program;
    P_art.program;
    P_bwtree.program;
    P_clht.program;
    P_masstree.program;
  ]

let frameworks =
  [
    Pmdk_btree.program;
    Pmdk_ctree.program;
    Pmdk_rbtree.program;
    Pmdk_hashmap.program_atomic;
    Pmdk_hashmap.program_tx;
    Redis.program;
    Memcached.program;
  ]

let all = indexes @ frameworks

(* Fault-injection demos: findable by name, never part of [all] (they
   are not in the paper's suite, and demo-diverge only terminates under
   a budget). *)
let demos = Demo_faults.all

(* Litmus programs ({!Litmus}): findable by name for check/witness, but
   never part of [all] — they validate the model variants, not the
   paper's suite, and check-all must stay comparable to Table 5. *)
let litmus = Litmus.programs

(* Soak op streams: the benchmarks whose client surface maps onto the
   soak driver's randomized get/set/delete/rmw shape. *)
let soak_streams = [ Memcached.soak_stream; Redis.soak_stream; Cceh.soak_stream ]

(* Fault-storm demo stream: findable by name for quarantine tests,
   never soaked by default. *)
let soak_demo_streams = [ Demo_faults.storm_stream ]

let find_soak_stream name =
  let target = String.lowercase_ascii name in
  List.find_opt
    (fun (s : Pm_harness.Soak.op_stream) ->
      String.lowercase_ascii s.Pm_harness.Soak.os_name = target)
    (soak_streams @ soak_demo_streams)

(* Rebuild a soak scenario's program from its encoded name, for corpus
   replay of soak witnesses. *)
let find_soak_program name =
  Pm_harness.Soak.find_program ~streams:(soak_streams @ soak_demo_streams) name

let find name =
  let target = String.lowercase_ascii name in
  match
    List.find_opt
      (fun (p : Pm_harness.Program.t) ->
        String.lowercase_ascii p.Pm_harness.Program.name = target)
      (all @ demos @ litmus)
  with
  | Some p -> p
  | None -> raise Not_found

let names () =
  List.map
    (fun (p : Pm_harness.Program.t) -> p.Pm_harness.Program.name)
    (all @ demos @ litmus)
