(** Memcached-pmem (Lenovo port): a slab-allocated key-value cache that
    persists items with the low-level libpmem API ([pmem_persist]).

    Reproduces the four Memcached persistency races of Table 4 (#2–#5):
    the plain byte stores to [valid] in the pool header and [id] in each
    slab header ([pslab.c]), and the plain stores to [it_flags] and
    [cas] in items ([memcached.h]).  Item payloads are checksummed, so
    races on them are benign (section 7.5). *)

type t

val slab_count : int
val items_per_slab : int

(** Format the slab pool (server startup, crash-tested). *)
val startup : unit -> t

val open_existing : unit -> t

(** Store a key/value pair (the client's [set] command). *)
val set : t -> key:int -> value:string -> unit

(** Retrieve a value ([get]); validates the payload checksum. *)
val get : t -> key:int -> string option

(** Unlink an item ([delete]); clears [it_flags]. *)
val delete : t -> key:int -> unit

(** [append] onto an existing value; false when absent or too large. *)
val append : t -> key:int -> suffix:string -> bool

(** Numeric increment of a decimal value ([incr]); returns the new
    value. *)
val incr_counter : t -> key:int -> int

(** The [stats] command: number of linked items. *)
val stats : t -> int

(** Post-crash restart: re-validate the pool and every slab/item. *)
val restart_check : t -> int  (** number of valid items found *)

val program : Pm_harness.Program.t

(** Randomized-client soak stream: get/set/delete/incr over a small
    keyspace against a pre-formatted pool; audit is {!restart_check}. *)
val soak_stream : Pm_harness.Soak.op_stream
