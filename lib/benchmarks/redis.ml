open Pm_runtime

(* PM layout.
   Pool root object (the persistent key directory):
     nslots x { key@0; blob_ptr@8 } pairs.
   Value blob: len@0, checksum@8, bytes@16 (up to blob_cap). *)

let nslots = 8
let blob_cap = 32
let blob_bytes = 16 + blob_cap

type t = { pool : Pmdk_pool.t; dict : (int, Px86.Addr.t) Hashtbl.t }

let slot_addr pool i = Pmdk_pool.root pool + (16 * i)

let start () =
  let pool = Pmdk_pool.create ~root_size:(16 * nslots) in
  { pool; dict = Hashtbl.create 16 }

(* Rebuild the volatile dict from the persistent directory, validating
   each blob — Redis reconstructs its DRAM keyspace on restart. *)
let load_dict pool =
  let dict = Hashtbl.create 16 in
  for i = 0 to nslots - 1 do
    let s = slot_addr pool i in
    let key = Pmem.load_int s in
    let blob = Pmem.load_int (s + 8) in
    if key <> 0 && blob <> 0 then Hashtbl.replace dict key blob
  done;
  dict

let open_existing () =
  let pool = Pmdk_pool.open_pool () in
  { pool; dict = load_dict pool }

let free_slot t =
  let rec go i =
    if i >= nslots then failwith "redis: directory full"
    else if Pmem.load_int (slot_addr t.pool i) = 0 then i
    else go (i + 1)
  in
  go 0

let existing_slot t key =
  let rec go i =
    if i >= nslots then None
    else if Pmem.load_int (slot_addr t.pool i) = key then Some i
    else go (i + 1)
  in
  go 0

(* SET: the blob is written and persisted out of place first (the bulk
   of the crash windows), then a short transaction links it. *)
let set t ~key ~value =
  assert (key <> 0 && String.length value <= blob_cap);
  let blob = Pmem.alloc ~align:64 blob_bytes in
  Pmem.store blob (Int64.of_int (String.length value));
  Pmem.store_bytes (blob + 16) value;
  Pmem.store (blob + 8) (Bench_util.checksum_string value);
  Pmem.persist blob blob_bytes;
  let i = match existing_slot t key with Some i -> i | None -> free_slot t in
  let s = slot_addr t.pool i in
  Pmdk_pool.tx t.pool (fun () ->
      Pmdk_pool.tx_store t.pool s (Int64.of_int key);
      Pmdk_pool.tx_store t.pool (s + 8) (Int64.of_int blob));
  Hashtbl.replace t.dict key blob

let read_blob blob =
  Pmem.validating (fun () ->
      let n = Pmem.load_int blob in
      if n < 0 || n > blob_cap then None
      else
        let data = Pmem.load_bytes (blob + 16) n in
        if Pmem.load (blob + 8) = Bench_util.checksum_string data then Some data
        else None)

let get t ~key =
  match Hashtbl.find_opt t.dict key with
  | Some blob -> read_blob blob
  | None -> None

(* DEL: clear the directory slot in a transaction. *)
let del t ~key =
  match existing_slot t key with
  | None -> false
  | Some i ->
      let s = slot_addr t.pool i in
      Pmdk_pool.tx t.pool (fun () ->
          Pmdk_pool.tx_store t.pool s 0L;
          Pmdk_pool.tx_store t.pool (s + 8) 0L);
      Hashtbl.remove t.dict key;
      true

(* INCR: read-validate-modify-write of a numeric value. *)
let incr t ~key =
  let current =
    match get t ~key with
    | Some v -> (try int_of_string v with Failure _ -> 0)
    | None -> 0
  in
  let next = current + 1 in
  set t ~key ~value:(string_of_int next);
  next

let recover_all t =
  Hashtbl.fold
    (fun _ blob acc -> match read_blob blob with Some _ -> acc + 1 | None -> acc)
    t.dict 0

let workload =
  [ (11, "one"); (22, "twenty-two"); (33, "thirty-three"); (44, "forty-four") ]

(* Soak op stream.  The keyspace must stay below [nslots]: the
   directory has 8 slots and [free_slot] fails the process when full,
   so 6 distinct keys leave headroom while still forcing slot reuse. *)
let soak_stream =
  {
    Pm_harness.Soak.os_name = "redis";
    os_keyspace = 6;
    os_setup = Some (fun () -> ignore (start ()));
    os_connect =
      (fun () ->
        let t = open_existing () in
        fun kind ~key ~payload ->
          match kind with
          | Pm_harness.Soak.Read -> ignore (get t ~key)
          | Pm_harness.Soak.Write ->
              set t ~key ~value:(Printf.sprintf "v%d" payload)
          | Pm_harness.Soak.Delete -> ignore (del t ~key)
          | Pm_harness.Soak.Rmw -> ignore (incr t ~key));
    os_audit = (fun () -> ignore (recover_all (open_existing ())));
    os_observe =
      Some
        (fun () ->
          let t = open_existing () in
          List.init 6 (fun i ->
              let k = i + 1 in
              ( Printf.sprintf "key%d" k,
                Option.value ~default:"<absent>" (get t ~key:k) )));
  }

let program =
  Pm_harness.Program.make ~name:"Redis"
    ~setup:(fun () -> ignore (start ()))
    ~pre:(fun () ->
      let t = open_existing () in
      List.iter (fun (k, v) -> set t ~key:k ~value:v) workload;
      List.iter (fun (k, _) -> ignore (get t ~key:k)) workload;
      ignore (del t ~key:22);
      ignore (incr t ~key:99);
      ignore (incr t ~key:99))
    ~post:(fun () ->
      let t = open_existing () in
      ignore (recover_all t))
    ~observe:(fun () ->
      let t = open_existing () in
      List.map
        (fun k ->
          ( Printf.sprintf "key%d" k,
            Option.value ~default:"<absent>" (get t ~key:k) ))
        [ 11; 22; 33; 44; 99 ])
    ()
