open Pm_runtime

type t = Px86.Addr.t

(* Layout:
   descriptor: dir_ptr@0 (atomic), global_depth@8
   directory:  2^global_depth segment pointers (atomic stores)
   segment:    local_depth@0, pairs at 64: slots_per_segment x
               { key@0, value@8 }

   The descriptor and directory are metadata published with atomic
   release stores and persisted before becoming reachable; pairs follow
   the racy protocol of Figure 3. *)

let slots_per_segment = 8
let initial_depth = 2
let pair_size = 16
let segment_bytes = 64 + (slots_per_segment * pair_size)
let max_depth = 8

let invalid_key = 0L
let sentinel = -1L (* slot locked, insertion in flight *)

let label_key = "key in Pair struct in pair.h"
let label_value = "value in Pair struct in pair.h"

let release = Px86.Access.Release
let acquire = Px86.Access.Acquire

let slot_addr seg slot = seg + 64 + (slot * pair_size)

let new_segment ~local_depth =
  let seg = Pmem.alloc ~align:64 segment_bytes in
  Pmem.store seg (Int64.of_int local_depth);
  Pmem.persist seg segment_bytes;
  seg

let new_directory ~depth ~init =
  let entries = 1 lsl depth in
  let dir = Pmem.alloc ~align:64 (8 * entries) in
  List.iteri
    (fun i seg -> Pmem.store ~atomic:release (dir + (8 * i)) (Int64.of_int seg))
    (init entries);
  Pmem.persist dir (8 * entries);
  dir

let create () =
  let t = Pmem.alloc ~align:64 16 in
  let entries = 1 lsl initial_depth in
  let segs = List.init entries (fun _ -> new_segment ~local_depth:initial_depth) in
  let dir = new_directory ~depth:initial_depth ~init:(fun _ -> segs) in
  Pmem.store ~atomic:release t (Int64.of_int dir);
  Pmem.store (t + 8) (Int64.of_int initial_depth);
  Pmem.persist t 16;
  Pmem.set_root 0 t;
  t

let open_existing () = Pmem.get_root 0

let dir_ptr t = Int64.to_int (Pmem.load ~atomic:acquire t)
let global_depth t = Pmem.load_int (t + 8)
let dir_entry t i = Int64.to_int (Pmem.load ~atomic:acquire (dir_ptr t + (8 * i)))
let local_depth seg = Pmem.load_int seg

let dir_index t key =
  let h = Bench_util.hash64 key in
  h land ((1 lsl global_depth t) - 1)

let seg_of_key t key = dir_entry t (dir_index t key)

(* Figure 3 of the paper: CAS locks the slot, value is written, an
   mfence orders it, then the key commits the insertion.  Both the value
   and key stores are plain, hence the persistency races. *)
let try_insert_into seg ~key ~value =
  let rec probe slot =
    if slot >= slots_per_segment then false
    else
      let a = slot_addr seg slot in
      if Pmem.cas a ~expected:invalid_key ~desired:sentinel then begin
        Pmem.store ~label:label_value (a + 8) (Int64.of_int value);
        Pmem.mfence ();
        Pmem.store ~label:label_key a (Int64.of_int key);
        (* The caller persists both stores (CCEH flushes after commit). *)
        Pmem.persist a pair_size;
        true
      end
      else probe (slot + 1)
  in
  probe 0

let segment_pairs seg =
  List.filter_map
    (fun slot ->
      let a = slot_addr seg slot in
      let k = Pmem.load a in
      if k = invalid_key || k = sentinel then None
      else Some (Int64.to_int k, Int64.to_int (Pmem.load (a + 8))))
    (List.init slots_per_segment (fun i -> i))

(* Split [seg]: allocate two children with local depth + 1, migrate the
   pairs by the discriminating hash bit, persist the children fully,
   then repoint every directory entry that referenced [seg] (atomic
   stores, persisted) — the original's lazy split. *)
let split_segment t seg =
  let ld = local_depth seg in
  let gd = global_depth t in
  (* Double the directory first if the segment is at max depth. *)
  if ld = gd then begin
    if gd >= max_depth then failwith "CCEH: directory at maximum depth";
    let old_dir = dir_ptr t in
    let old_entries = 1 lsl gd in
    let dir =
      new_directory ~depth:(gd + 1)
        ~init:(fun entries ->
          List.init entries (fun i ->
              Int64.to_int (Pmem.load ~atomic:acquire (old_dir + (8 * (i land (old_entries - 1)))))))
    in
    Pmem.store ~atomic:release t (Int64.of_int dir);
    Pmem.store (t + 8) (Int64.of_int (gd + 1));
    Pmem.persist t 16
  end;
  let gd = global_depth t in
  let left = new_segment ~local_depth:(ld + 1) in
  let right = new_segment ~local_depth:(ld + 1) in
  List.iter
    (fun (k, v) ->
      let h = Bench_util.hash64 k in
      let child = if h land (1 lsl ld) = 0 then left else right in
      ignore (try_insert_into child ~key:k ~value:v))
    (segment_pairs seg);
  Pmem.persist left segment_bytes;
  Pmem.persist right segment_bytes;
  (* Repoint the directory entries that map to this segment. *)
  let dir = dir_ptr t in
  for i = 0 to (1 lsl gd) - 1 do
    if dir_entry t i = seg then begin
      let child = if i land (1 lsl ld) = 0 then left else right in
      Pmem.store ~atomic:release (dir + (8 * i)) (Int64.of_int child)
    end
  done;
  Pmem.persist dir (8 * (1 lsl gd))

let rec insert t ~key ~value =
  assert (key <> 0);
  let seg = seg_of_key t key in
  if try_insert_into seg ~key ~value then ()
  else begin
    split_segment t seg;
    insert t ~key ~value
  end

let get t ~key =
  let seg = seg_of_key t key in
  let rec probe slot =
    if slot >= slots_per_segment then None
    else
      let a = slot_addr seg slot in
      if Pmem.load a = Int64.of_int key then Some (Int64.to_int (Pmem.load (a + 8)))
      else probe (slot + 1)
  in
  probe 0

let remove t ~key =
  let seg = seg_of_key t key in
  let rec probe slot =
    if slot < slots_per_segment then begin
      let a = slot_addr seg slot in
      if Pmem.load a = Int64.of_int key then begin
        Pmem.store ~label:label_key a invalid_key;
        Pmem.persist a 8
      end
      else probe (slot + 1)
    end
  in
  probe 0

let scan t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  for i = 0 to (1 lsl global_depth t) - 1 do
    let seg = dir_entry t i in
    if not (Hashtbl.mem seen seg) then begin
      Hashtbl.add seen seg ();
      acc := segment_pairs seg @ !acc
    end
  done;
  List.sort compare !acc

(* Soak op stream.  Writes are upserts (remove-then-insert): a plain
   [insert] of an existing key occupies a second slot, and a long
   random stream of duplicate keys would fill segments with copies and
   split its way to the max_depth failure — an artifact of the soak
   shape, not a finding.  Keys are drawn from [1..14] ([insert]
   asserts key <> 0). *)
let soak_stream =
  {
    Pm_harness.Soak.os_name = "cceh";
    os_keyspace = 14;
    os_setup = Some (fun () -> ignore (create ()));
    os_connect =
      (fun () ->
        let t = open_existing () in
        fun kind ~key ~payload ->
          match kind with
          | Pm_harness.Soak.Read -> ignore (get t ~key)
          | Pm_harness.Soak.Write ->
              remove t ~key;
              insert t ~key ~value:payload
          | Pm_harness.Soak.Delete -> remove t ~key
          | Pm_harness.Soak.Rmw ->
              let v = Option.value ~default:0 (get t ~key) in
              remove t ~key;
              insert t ~key ~value:(v + 1));
    os_audit = (fun () -> ignore (scan (open_existing ())));
    os_observe =
      Some
        (fun () ->
          List.map
            (fun (k, v) -> (Printf.sprintf "key%d" k, string_of_int v))
            (scan (open_existing ())));
  }

let workload_keys = [ 3; 7; 11; 19; 23; 42; 57; 63; 78; 91; 104; 119; 131; 150 ]

let program =
  Pm_harness.Program.make ~name:"CCEH"
    ~setup:(fun () -> ignore (create ()))
    ~pre:(fun () ->
      let t = open_existing () in
      List.iter (fun k -> insert t ~key:k ~value:(k * 100)) workload_keys;
      remove t ~key:7;
      remove t ~key:63)
    ~post:(fun () ->
      let t = open_existing () in
      List.iter (fun k -> ignore (get t ~key:k)) workload_keys;
      ignore (scan t))
    ~observe:(fun () ->
      List.map
        (fun (k, v) -> (Printf.sprintf "key%d" k, string_of_int v))
        (scan (open_existing ())))
    ()
