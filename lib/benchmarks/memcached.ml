open Pm_runtime

type t = Px86.Addr.t

(* pslab_pool_t header (one cache line):
     magic@0, version@8 (one-time format markers, written atomically),
     valid@16 (1 byte, PLAIN — race #2), count@24,
     slabs@32.. (slab_count x 8, atomic publication stores).
   pslab_t: header line { id@0 (1 byte, PLAIN — race #3), used@8 },
     items at 64.
   item (one cache line): it_flags@0 (1 byte, PLAIN — race #4),
     cas@8 (PLAIN — race #5), key@16, nbytes@24, checksum@32, data@40;
     key/nbytes/data/checksum are validated by checksum on read, so
     races on them are benign. *)

let slab_count = 2
let items_per_slab = 4
let item_bytes = 64
let slab_bytes = 64 + (items_per_slab * item_bytes)
let data_cap = 24

let magic = 0x70736C6162L (* "pslab" *)

let label_valid = "valid variable in pslab_pool_t struct in pslab.c"
let label_id = "id variable in pslab_t struct in pslab.c"
let label_it_flags = "it_flags variable in item_chunk struct in memcached.h"
let label_cas = "cas variable in item struct in memcached.h"
let label_data = "data bytes in item struct in memcached.c"
let label_checksum = "checksum in item struct in memcached.c"

let it_linked = 1L

let slab_addr t i = Int64.to_int (Pmem.load ~atomic:Px86.Access.Acquire (t + 32 + (8 * i)))
let item_addr slab j = slab + 64 + (j * item_bytes)

(* Slab classes: slab 0 serves small payloads, slab 1 large ones, as
   memcached's size-class allocator does. *)
let small_cap = 8
let class_of_size n = if n <= small_cap then 0 else 1

(* Volatile DRAM state: the LRU clock (memcached keeps LRU state in
   DRAM) and the global cas counter.  Domain-local so failure scenarios
   explored concurrently on separate domains cannot observe each other's
   volatile state; [startup] resets it, making every scenario
   self-contained and deterministic regardless of exploration order. *)
type volatile = {
  lru : (Px86.Addr.t, int) Hashtbl.t;
  mutable lru_tick : int;
  mutable global_cas : int;
}

let volatile_key =
  Domain.DLS.new_key (fun () ->
      { lru = Hashtbl.create 16; lru_tick = 0; global_cas = 0 })

let volatile () = Domain.DLS.get volatile_key

let touch it =
  let v = volatile () in
  v.lru_tick <- v.lru_tick + 1;
  Hashtbl.replace v.lru it v.lru_tick

(* Server startup formats the pool.  [valid] and the slab [id] bytes are
   plain stores whose flushes trail far behind — the wide windows behind
   races #2 and #3. *)
let startup () =
  (* Volatile state resets with the process. *)
  let v = volatile () in
  Hashtbl.reset v.lru;
  v.lru_tick <- 0;
  v.global_cas <- 0;
  let t = Pmem.alloc ~align:64 (32 + (8 * slab_count)) in
  (* The pool mapping is published before formatting (the real server
     knows the pool by file, not by a pointer written after format). *)
  Pmem.set_root 7 t;
  Pmem.store ~atomic:Px86.Access.Seq_cst t magic;
  Pmem.store ~atomic:Px86.Access.Seq_cst (t + 8) 1L;
  for i = 0 to slab_count - 1 do
    let slab = Pmem.alloc ~align:64 slab_bytes in
    Pmem.store ~label:label_id ~size:1 slab (Int64.of_int (i + 1));
    Pmem.store (slab + 8) 0L;
    Pmem.store ~atomic:Px86.Access.Release (t + 32 + (8 * i)) (Int64.of_int slab)
  done;
  Pmem.store ~label:label_valid ~size:1 (t + 16) 1L;
  Pmem.store (t + 24) (Int64.of_int slab_count);
  Pmem.persist t (32 + (8 * slab_count));
  t

let open_existing () = Pmem.get_root 7

(* Find the item currently holding [key], scanning every slab class. *)
let find_item t key =
  let rec scan_slab slab j =
    if j >= items_per_slab then None
    else
      let it = item_addr slab j in
      if Pmem.load ~size:1 it = it_linked && Pmem.load_int (it + 16) = key then Some it
      else scan_slab slab (j + 1)
  in
  let rec scan_class i =
    if i >= slab_count then None
    else
      match scan_slab (slab_addr t i) 0 with
      | Some it -> Some it
      | None -> scan_class (i + 1)
  in
  scan_class 0

(* A slot for a new item in [cls]: reuse the key's slot, else a free
   one, else evict the least-recently-used item of the class. *)
let allocate_slot t ~cls ~key =
  let slab = slab_addr t cls in
  let slots = List.init items_per_slab (fun j -> item_addr slab j) in
  let existing =
    List.find_opt
      (fun it -> Pmem.load ~size:1 it = it_linked && Pmem.load_int (it + 16) = key)
      slots
  in
  match existing with
  | Some it -> it
  | None -> (
      match List.find_opt (fun it -> Pmem.load ~size:1 it <> it_linked) slots with
      | Some it -> it
      | None ->
          (* LRU eviction within the class. *)
          let victim =
            List.fold_left
              (fun best it ->
                let tick = Option.value ~default:0 (Hashtbl.find_opt (volatile ()).lru it) in
                match best with
                | Some (_, bt) when bt <= tick -> best
                | _ -> Some (it, tick))
              None slots
          in
          (match victim with Some (it, _) -> it | None -> List.hd slots))

let set t ~key ~value =
  assert (String.length value <= data_cap);
  let it = allocate_slot t ~cls:(class_of_size (String.length value)) ~key in
  touch it;
  let v = volatile () in
  v.global_cas <- v.global_cas + 1;
  Pmem.store ~label:label_it_flags ~size:1 it it_linked;
  Pmem.store ~label:label_cas (it + 8) (Int64.of_int v.global_cas);
  Pmem.store ~label:label_data (it + 16) (Int64.of_int key);
  Pmem.store ~label:label_data (it + 24) (Int64.of_int (String.length value));
  (* The payload goes through libpmem's movnt path (pmem_memcpy). *)
  Pmem.memcpy_nt_persist ~label:label_data (it + 40) value;
  Pmem.store ~label:label_checksum (it + 32) (Bench_util.checksum_string value);
  Pmem.persist it item_bytes

let read_item it key =
  if Pmem.load ~size:1 it <> it_linked then None
  else begin
    ignore (Pmem.load (it + 8)) (* cas *);
    Pmem.validating (fun () ->
        let k = Pmem.load_int (it + 16) in
        let n = Pmem.load_int (it + 24) in
        if k <> key || n < 0 || n > data_cap then None
        else
          let data = Pmem.load_bytes (it + 40) n in
          if Pmem.load (it + 32) = Bench_util.checksum_string data then Some data
          else None)
  end

let get t ~key =
  match find_item t key with
  | None -> None
  | Some it ->
      touch it;
      read_item it key

(* APPEND: concatenate onto an existing value (memcached's append). *)
let append t ~key ~suffix =
  match get t ~key with
  | None -> false
  | Some v when String.length v + String.length suffix > data_cap -> false
  | Some v ->
      set t ~key ~value:(v ^ suffix);
      true

(* INCR: numeric increment of a decimal value. *)
let incr_counter t ~key =
  let current =
    match get t ~key with
    | Some v -> (try int_of_string v with Failure _ -> 0)
    | None -> 0
  in
  let next = current + 1 in
  set t ~key ~value:(string_of_int next);
  next

(* DELETE: unlink by clearing it_flags — the same racy plain byte store
   the item-set path uses. *)
let delete t ~key =
  match find_item t key with
  | None -> ()
  | Some it ->
      Pmem.store ~label:label_it_flags ~size:1 it 0L;
      Pmem.persist it 8;
      Hashtbl.remove (volatile ()).lru it

(* The `stats' command: sweep the slabs counting linked items. *)
let stats t =
  let linked = ref 0 in
  for i = 0 to slab_count - 1 do
    let slab = slab_addr t i in
    for j = 0 to items_per_slab - 1 do
      if Pmem.load ~size:1 (item_addr slab j) = it_linked then incr linked
    done
  done;
  !linked

let restart_check t =
  if Pmem.load ~atomic:Px86.Access.Seq_cst t <> magic then 0
  else if Pmem.load ~size:1 (t + 16) <> 1L then 0
  else begin
    let found = ref 0 in
    for i = 0 to slab_count - 1 do
      let slab = slab_addr t i in
      ignore (Pmem.load ~size:1 slab) (* slab id, race #3 *);
      for j = 0 to items_per_slab - 1 do
        let it = item_addr slab j in
        if Pmem.load ~size:1 it = it_linked then begin
          let key = Pmem.validating (fun () -> Pmem.load_int (it + 16)) in
          match read_item it key with Some _ -> incr found | None -> ()
        end
      done
    done;
    !found
  end

let workload =
  [ (101, "alpha"); (202, "bravo"); (303, "charlie"); (404, "delta"); (505, "echo") ]

(* Soak op stream: the pool is formatted once in trusted setup (so the
   soak driver can memoize and rehydrate it), and [os_connect] resets
   the volatile DRAM state the way a fresh server process would —
   without it, LRU ticks and the cas counter would leak across
   scenarios on the same domain and break run-to-run determinism. *)
let soak_stream =
  {
    Pm_harness.Soak.os_name = "memcached";
    os_keyspace = 12;
    os_setup = Some (fun () -> ignore (startup ()));
    os_connect =
      (fun () ->
        let v = volatile () in
        Hashtbl.reset v.lru;
        v.lru_tick <- 0;
        v.global_cas <- 0;
        let t = open_existing () in
        fun kind ~key ~payload ->
          match kind with
          | Pm_harness.Soak.Read -> ignore (get t ~key)
          | Pm_harness.Soak.Write ->
              set t ~key ~value:(Printf.sprintf "v%d" payload)
          | Pm_harness.Soak.Delete -> delete t ~key
          | Pm_harness.Soak.Rmw -> ignore (incr_counter t ~key));
    os_audit = (fun () -> ignore (restart_check (open_existing ())));
    os_observe =
      Some
        (fun () ->
          let t = open_existing () in
          List.init 12 (fun i ->
              let k = i + 1 in
              ( Printf.sprintf "key%d" k,
                Option.value ~default:"<absent>" (get t ~key:k) )));
  }

let program =
  Pm_harness.Program.make ~name:"Memcached"
    ~pre:(fun () ->
      (* Startup is part of the crash-tested run: the pool-format stores
         race against crashes during the serving phase. *)
      let t = startup () in
      List.iter (fun (k, v) -> set t ~key:k ~value:v) workload;
      List.iter (fun (k, _) -> ignore (get t ~key:k)) workload;
      delete t ~key:303;
      ignore (append t ~key:101 ~suffix:"-v2");
      ignore (incr_counter t ~key:777);
      ignore (incr_counter t ~key:777);
      ignore (stats t))
    ~post:(fun () ->
      let t = open_existing () in
      ignore (restart_check t))
    ~observe:(fun () ->
      let t = open_existing () in
      List.map
        (fun k ->
          ( Printf.sprintf "key%d" k,
            Option.value ~default:"<absent>" (get t ~key:k) ))
        [ 101; 202; 303; 404; 505; 777 ])
    ()
