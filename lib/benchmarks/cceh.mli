(** Cacheline-Conscious Extendible Hashing (CCEH, FAST '19), ported to
    the simulated PM API with the commit protocol of the original:
    [Segment::Insert] locks a slot by CAS on the key field, writes the
    value, fences, then writes the key — both writes are {e non-atomic},
    which is the paper's motivating persistency race (Figure 3, bugs #1
    and #2 of Table 3).

    The port implements the full extendible-hashing machinery: per-
    segment local depths, lazy segment splits with pair migration, and
    directory doubling.  Directory pointers are published with atomic
    release stores and persisted before use (as the original's
    [Directory::Update] does with CAS), so the only racy fields are the
    pair's [key] and [value]. *)

type t

val slots_per_segment : int
val initial_depth : int

(** Allocate a fresh table (directory plus segments) and register it in
    root slot 0. *)
val create : unit -> t

(** Reopen a table from root slot 0 (recovery path). *)
val open_existing : unit -> t

(** [insert t ~key ~value] inserts, splitting the target segment (and
    doubling the directory if needed) when it is full. *)
val insert : t -> key:int -> value:int -> unit

(** Lookup via the original's [CCEH::Get]: non-atomic reads of the key
    and value fields. *)
val get : t -> key:int -> int option

(** [remove t ~key] deletes by storing INVALID over the key (a plain
    store, like the original). *)
val remove : t -> key:int -> unit

(** Sweep every slot of every segment, reading keys and values
    (recovery scan).  Segments shared by several directory entries are
    visited once. *)
val scan : t -> (int * int) list

(** Current directory depth (grows with doubling). *)
val global_depth : t -> int

(** The crash-test program for the harness: populate, crash, recover. *)
val program : Pm_harness.Program.t

(** Randomized-client soak stream: get/upsert/remove/rmw over a small
    keyspace (writes remove-then-insert so duplicate keys never pile up
    and force runaway splits); audit is {!scan}. *)
val soak_stream : Pm_harness.Soak.op_stream
