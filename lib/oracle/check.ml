type reference = {
  r_init : (string * string) list;
  r_final : (string * string) list;
  r_invariants : Invariant.t list;
}

type violation = { v_key : string; v_detail : string }

type state = Old | New | Torn | Unknown

(* Only fields that changed between the two crash-free observations are
   tracked: a field equal in init and final cannot witness an ordering
   and would classify every crash state as both Old and New. *)
let tracked r =
  List.filter_map
    (fun (f, init) ->
      match List.assoc_opt f r.r_final with
      | Some final when final <> init -> Some (f, (init, final))
      | _ -> None)
    r.r_init

let classify r ~observed f =
  match List.assoc_opt f (tracked r) with
  | None -> Unknown
  | Some (init, final) -> (
      match List.assoc_opt f observed with
      | None -> Unknown
      | Some v when v = final -> New
      | Some v when v = init -> Old
      | Some _ -> Torn)

let check r ~observed =
  let tracked = tracked r in
  let state f =
    match List.assoc_opt f tracked with
    | None -> Unknown
    | Some (init, final) -> (
        match List.assoc_opt f observed with
        | None -> Unknown
        | Some v when v = final -> New
        | Some v when v = init -> Old
        | Some _ -> Torn)
  in
  let values =
    List.filter_map
      (fun (f, (init, final)) ->
        match state f with
        | Torn ->
            let v =
              match List.assoc_opt f observed with Some v -> v | None -> "?"
            in
            Some
              {
                v_key = Printf.sprintf "value:%s" (Invariant.escape f);
                v_detail =
                  Printf.sprintf
                    "field %s observed %S, reachable only as %S (old) or %S \
                     (new)"
                    f v init final;
              }
        | Old | New | Unknown -> None)
      tracked
  in
  let invariants =
    List.filter_map
      (fun inv ->
        match inv with
        | Invariant.Order { before; after } -> (
            match (state before, state after) with
            | Old, New ->
                Some
                  {
                    v_key =
                      Printf.sprintf "order:%s<%s" (Invariant.escape before)
                        (Invariant.escape after);
                    v_detail =
                      Printf.sprintf
                        "%s persisted before %s in every reference run, but \
                         the crash image has %s new while %s is still old"
                        before after after before;
                  }
            | _ -> None)
        | Invariant.Atomic { fields } ->
            let states = List.map (fun f -> (f, state f)) fields in
            let old_f = List.filter (fun (_, s) -> s = Old) states in
            let new_f = List.filter (fun (_, s) -> s = New) states in
            if old_f <> [] && new_f <> [] then
              Some
                {
                  v_key =
                    Printf.sprintf "atomic:%s"
                      (String.concat ","
                         (List.map Invariant.escape fields));
                  v_detail =
                    Printf.sprintf
                      "fields {%s} update atomically in every reference run, \
                       but the crash image split them: %s old, %s new"
                      (String.concat ", " fields)
                      (String.concat ", " (List.map fst old_f))
                      (String.concat ", " (List.map fst new_f));
                }
            else None)
      r.r_invariants
  in
  List.sort_uniq
    (fun a b ->
      match String.compare a.v_key b.v_key with
      | 0 -> String.compare a.v_detail b.v_detail
      | c -> c)
    (values @ invariants)
