module SM = Map.Make (String)

type t =
  | Order of { before : string; after : string }
  | Atomic of { fields : string list }

(* Labels are arbitrary program strings (source field names, keys).
   The single-line formats use [<] and [,] as separators, so those —
   plus backslash and the line-breaking characters — are \xNN-escaped;
   everything else (spaces included) passes through verbatim. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' | '\t' | '\n' | '\r' | ',' | '<' ->
          Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '\\' then
      if i + 3 < n && s.[i + 1] = 'x' then
        match int_of_string_opt ("0x" ^ String.sub s (i + 2) 2) with
        | Some c ->
            Buffer.add_char buf (Char.chr c);
            go (i + 4)
        | None -> Error (Printf.sprintf "bad escape in label %S" s)
      else Error (Printf.sprintf "bad escape in label %S" s)
    else (
      Buffer.add_char buf s.[i];
      go (i + 1))
  in
  go 0

let label = function
  | Order { before; after } ->
      Printf.sprintf "order %s < %s" (escape before) (escape after)
  | Atomic { fields } ->
      Printf.sprintf "atomic %s" (String.concat ", " (List.map escape fields))

let compare a b =
  match (a, b) with
  | Order x, Order y -> (
      match String.compare x.before y.before with
      | 0 -> String.compare x.after y.after
      | c -> c)
  | Order _, Atomic _ -> -1
  | Atomic _, Order _ -> 1
  | Atomic x, Atomic y -> List.compare String.compare x.fields y.fields

let infer entries =
  let stores =
    List.filter_map
      (function
        | Px86.Trace.Store s -> (
            match s.Px86.Event.label with
            | Some l -> Some (l, s)
            | None -> None)
        | _ -> None)
      entries
  in
  (* Per label: [first, last] commit index and the set of cache lines
     touched.  Commit order is the list order {!Px86.Trace.entries}
     guarantees. *)
  let _, spans, lines =
    List.fold_left
      (fun (i, spans, lines) (l, s) ->
        let spans =
          SM.update l
            (function None -> Some (i, i) | Some (f, _) -> Some (f, i))
            spans
        in
        let touched =
          Px86.Addr.lines_covering s.Px86.Event.addr s.Px86.Event.size
        in
        let lines =
          SM.update l
            (function
              | None -> Some touched
              | Some old ->
                  Some
                    (List.sort_uniq Stdlib.compare
                       (List.rev_append touched old)))
            lines
        in
        (i + 1, spans, lines))
      (0, SM.empty, SM.empty) stores
  in
  let labels = SM.bindings spans in
  (* Ordering: every committed store to [a] precedes every committed
     store to [b].  Quadratic in distinct labels, which are few (they
     are source-level field names). *)
  let orders =
    List.concat_map
      (fun (a, (_, last_a)) ->
        List.filter_map
          (fun (b, (first_b, _)) ->
            if a <> b && last_a < first_b then
              Some (Order { before = a; after = b })
            else None)
          labels)
      labels
  in
  (* Atomicity: labels confined to a single cache line, grouped by that
     line; groups of >= 2 persist as a unit. *)
  let by_line = Hashtbl.create 8 in
  SM.iter
    (fun l -> function
      | [ line ] ->
          Hashtbl.replace by_line line
            (l :: (try Hashtbl.find by_line line with Not_found -> []))
      | _ -> ())
    lines;
  let atomics =
    Hashtbl.fold
      (fun _line members acc ->
        match List.sort String.compare members with
        | _ :: _ :: _ as fields -> Atomic { fields } :: acc
        | _ -> acc)
      by_line []
  in
  List.sort_uniq compare (orders @ atomics)

let to_lines invs =
  String.concat "" (List.map (fun i -> label i ^ "\n") invs)

let of_lines text =
  let parse_label s =
    match unescape (String.trim s) with
    | Ok l when l <> "" -> Ok l
    | Ok _ -> Error "empty label"
    | Error e -> Error e
  in
  let parse_line ln line =
    if String.length line >= 6 && String.sub line 0 6 = "order " then
      let body = String.sub line 6 (String.length line - 6) in
      match String.split_on_char '<' body with
      | [ before; after ] -> (
          match (parse_label before, parse_label after) with
          | Ok before, Ok after -> Ok (Some (Order { before; after }))
          | Error e, _ | _, Error e ->
              Error (Printf.sprintf "line %d: %s" ln e))
      | _ -> Error (Printf.sprintf "line %d: malformed order invariant" ln)
    else if String.length line >= 7 && String.sub line 0 7 = "atomic " then
      let body = String.sub line 7 (String.length line - 7) in
      let fields = String.split_on_char ',' body in
      let rec all acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> (
            match parse_label f with
            | Ok l -> all (l :: acc) rest
            | Error e -> Error (Printf.sprintf "line %d: %s" ln e))
      in
      match all [] fields with
      | Ok (_ :: _ :: _ as fields) -> Ok (Some (Atomic { fields }))
      | Ok _ -> Error (Printf.sprintf "line %d: atomic needs >= 2 fields" ln)
      | Error e -> Error e
    else Error (Printf.sprintf "line %d: unknown invariant %S" ln line)
  in
  let rec go acc ln = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc (ln + 1) rest
        else (
          match parse_line ln line with
          | Ok (Some inv) -> go (inv :: acc) (ln + 1) rest
          | Ok None -> go acc (ln + 1) rest
          | Error e -> Error e)
  in
  go [] 1 (String.split_on_char '\n' text)
