(** Likely-persistence invariants inferred from crash-free traces.

    WITCHER-style (arXiv 2012.06086): a crash-free reference execution
    is traced at cache-commit granularity ({!Px86.Trace}); the labelled
    stores in that trace induce two families of likely invariants over
    the program's named durable fields:

    - {b ordering} — field [A] is always made persistent before field
      [B].  Inferred when every committed store to [A] precedes every
      committed store to [B] in the reference trace (persist order on
      x86 follows commit order for same-thread flush+fence protocols,
      so commit order is the observable proxy the trace gives us);
    - {b atomicity} — a set of fields is always updated together.
      Inferred when two or more labelled fields live on one cache line
      in the reference trace: the persistency domain moves whole lines,
      so a crash can never split them.

    Inference is {e likely}, not sound: a single reference trace cannot
    distinguish invariants from coincidences (see DESIGN "Invariant
    oracle" for the caveats).  What it is, is deterministic — equal
    traces infer equal invariant lists in equal order — which is what
    the byte-identity contracts downstream need. *)

type t =
  | Order of { before : string; after : string }
      (** [before] is always persisted no later than [after]. *)
  | Atomic of { fields : string list }
      (** Sorted, >= 2 fields sharing one cache line: persisted as a
          unit. *)

(** Stable rendering, also the serialized form: ["order A < B"] /
    ["atomic A, B"].  Labels are escaped ({!escape}) so arbitrary
    program strings round-trip. *)
val label : t -> string

val compare : t -> t -> int

(** Infer invariants from a reference trace's entries (commit order).
    Only [Store] entries with a [label] participate; the result is
    sorted ({!compare}) and duplicate-free. *)
val infer : Px86.Trace.entry list -> t list

(** Serialize to/from the invariant-file format: one {!label} line per
    invariant.  [of_lines] ignores blank lines and [#] comments and
    reports the first malformed line. *)
val to_lines : t list -> string

val of_lines : string -> (t list, string) result

(** Escape a field label for the single-line formats: backslash, tab,
    newline, comma and [<] are [\xNN]-escaped so separators stay
    unambiguous. *)
val escape : string -> string

val unescape : string -> (string, string) result
