(** The state-diff oracle: post-crash observations against the states
    reachable under the inferred invariants.

    A {!reference} pairs two crash-free observations of the program's
    [observe] snapshot — [r_init] (recovery over a cleanly-shut-down
    image, before the workload ran) and [r_final] (recovery after the
    workload ran to completion) — with the invariants inferred from the
    workload's trace.  Only fields whose value {e changed} between init
    and final are tracked; a crash can leave each tracked field at its
    old value, its new value, or (a bug) something else.

    {!check} classifies every tracked field of a post-crash-recovery
    observation and reports:

    - [value:F] — field [F] holds neither its init nor its final value:
      no crash point under any ordering explains it (torn or corrupted);
    - [order:A<B] — an [Order {before = A; after = B}] invariant with
      [A] old and [B] new: [B] persisted first, contradicting every
      reference execution;
    - [atomic:F1,F2,..] — an [Atomic] group mixing old and new members:
      a single-line update was split.

    Keys are plan-free — like race dedup keys, one violation identity
    collapses across every crash point that exhibits it — and the
    violation list is sorted by key, so reports and corpora stay
    byte-identical across [--jobs]. *)

type reference = {
  r_init : (string * string) list;
  r_final : (string * string) list;
  r_invariants : Invariant.t list;
}

type violation = {
  v_key : string;  (** stable dedup identity, plan-free *)
  v_detail : string;  (** human-readable exemplar *)
}

(** Classification of one tracked field in an observation. *)
type state =
  | Old  (** init value *)
  | New  (** final value *)
  | Torn  (** neither — a value violation *)
  | Unknown  (** absent from the observation *)

val classify : reference -> observed:(string * string) list -> string -> state

val check : reference -> observed:(string * string) list -> violation list
