(* A persistency-model variant: the knobs of the px86 storage system
   that competing formalizations disagree on.  [strict_tso] is the
   machine's historical behaviour; every other descriptor perturbs one
   axis so litmus tests can localize divergence to a single rule. *)

type sb_drain = Drain_tso | Drain_fifo
type fence_semantics = Fence_full | Fence_nop
type fb_apply = Fb_at_fence | Fb_immediate
type persist_order = Per_line | Epoch_fenced

type t = {
  sb_drain : sb_drain;
  sb_bypass : bool;
  fence : fence_semantics;
  fb_apply : fb_apply;
  persist_order : persist_order;
}

let strict_tso =
  {
    sb_drain = Drain_tso;
    sb_bypass = true;
    fence = Fence_full;
    fb_apply = Fb_at_fence;
    persist_order = Per_line;
  }

let sb_bypass_off = { strict_tso with sb_bypass = false }
let sb_fifo = { strict_tso with sb_drain = Drain_fifo }
let fence_nop = { strict_tso with fence = Fence_nop }
let epoch = { strict_tso with persist_order = Epoch_fenced }
let relaxed = { strict_tso with fb_apply = Fb_immediate }

let builtins =
  [
    ( "strict-tso", strict_tso,
      "px86 as formalized by Raad et al.: TSO store buffers with load \
       bypassing, flush buffers drained at fences, per-line persist order" );
    ( "sb-bypass-off", sb_bypass_off,
      "loads never forward from the own store buffer; a load stalls until \
       the buffer drains (sequentially-consistent reads)" );
    ( "sb-fifo", sb_fifo,
      "random store-buffer drain evicts strictly in FIFO order, disabling \
       the Table-1 flush/store reorderings" );
    ( "fence-nop", fence_nop,
      "sfence/mfence keep their volatile ordering but do NOT drain flush \
       or write-combining buffers (a common implementation bug)" );
    ( "epoch", epoch,
      "epoch persistency: a fence persists everything committed before it, \
       so persists are ordered only across fences" );
    ( "relaxed", relaxed,
      "CXL-flavoured: clwb applies to the persistence domain immediately \
       and unordered, without waiting for a fence" );
  ]

let names () = List.map (fun (n, _, _) -> n) builtins
let describe v = List.find_opt (fun (_, b, _) -> b = v) builtins

(* ------------------------------------------------------------------ *)
(* Stable labels.  Built-ins serialize by name; any other descriptor
   falls back to a field-by-field "custom:" form so every value of [t]
   round-trips through [of_label]. *)

let sb_drain_label = function Drain_tso -> "tso" | Drain_fifo -> "fifo"
let fence_label = function Fence_full -> "full" | Fence_nop -> "nop"
let fb_apply_label = function Fb_at_fence -> "at-fence" | Fb_immediate -> "immediate"

let persist_order_label = function
  | Per_line -> "per-line"
  | Epoch_fenced -> "epoch-fenced"

let field_form v =
  Printf.sprintf "custom:sb=%s,bypass=%s,fence=%s,fb=%s,persist=%s"
    (sb_drain_label v.sb_drain)
    (if v.sb_bypass then "on" else "off")
    (fence_label v.fence) (fb_apply_label v.fb_apply)
    (persist_order_label v.persist_order)

let label v =
  match describe v with Some (n, _, _) -> n | None -> field_form v

let split_fields s =
  String.split_on_char ',' s
  |> List.map (fun kv ->
         match String.index_opt kv '=' with
         | Some i ->
             Some
               ( String.sub kv 0 i,
                 String.sub kv (i + 1) (String.length kv - i - 1) )
         | None -> None)

let of_field_form s =
  let ( let* ) = Option.bind in
  let fields = split_fields s in
  let* fields =
    if List.mem None fields then None else Some (List.filter_map Fun.id fields)
  in
  let* _ = if List.length fields = 5 then Some () else None in
  let find k = List.assoc_opt k fields in
  let* sb_drain =
    match find "sb" with
    | Some "tso" -> Some Drain_tso
    | Some "fifo" -> Some Drain_fifo
    | _ -> None
  in
  let* sb_bypass =
    match find "bypass" with
    | Some "on" -> Some true
    | Some "off" -> Some false
    | _ -> None
  in
  let* fence =
    match find "fence" with
    | Some "full" -> Some Fence_full
    | Some "nop" -> Some Fence_nop
    | _ -> None
  in
  let* fb_apply =
    match find "fb" with
    | Some "at-fence" -> Some Fb_at_fence
    | Some "immediate" -> Some Fb_immediate
    | _ -> None
  in
  let* persist_order =
    match find "persist" with
    | Some "per-line" -> Some Per_line
    | Some "epoch-fenced" -> Some Epoch_fenced
    | _ -> None
  in
  Some { sb_drain; sb_bypass; fence; fb_apply; persist_order }

let custom_prefix = "custom:"

let of_label s =
  match List.find_opt (fun (n, _, _) -> n = s) builtins with
  | Some (_, v, _) -> Some v
  | None ->
      let pl = String.length custom_prefix in
      if String.length s > pl && String.sub s 0 pl = custom_prefix then
        of_field_form (String.sub s pl (String.length s - pl))
      else None

let is_default v = v = strict_tso
let default_label = label strict_tso

let pp ppf v = Format.pp_print_string ppf (label v)
