(** Persistency-model variant descriptors.

    The px86 machine's semantics are parameterized by five axes that
    published formalizations (and real implementations) disagree on.
    A [t] selects one point in that space; {!strict_tso} is the
    machine's historical behaviour and the default everywhere.

    Labels are stable and total: built-in descriptors serialize by
    name, anything else by a ["custom:..."] field encoding, and
    [of_label (label v) = Some v] for every [v]. *)

type sb_drain =
  | Drain_tso  (** Random_drain evicts any Table-1-evictable entry *)
  | Drain_fifo  (** Random_drain evicts strictly in FIFO order *)

type fence_semantics =
  | Fence_full  (** fences drain flush + write-combining buffers *)
  | Fence_nop  (** fences keep volatile ordering but persist nothing *)

type fb_apply =
  | Fb_at_fence  (** clwb queues; the flush applies when a fence drains *)
  | Fb_immediate  (** clwb applies to the persistence domain at commit *)

type persist_order =
  | Per_line  (** persists ordered per cache line (px86) *)
  | Epoch_fenced  (** a fence persists everything committed before it *)

type t = {
  sb_drain : sb_drain;
  sb_bypass : bool;  (** loads may forward from the own store buffer *)
  fence : fence_semantics;
  fb_apply : fb_apply;
  persist_order : persist_order;
}

val strict_tso : t
val sb_bypass_off : t
val sb_fifo : t
val fence_nop : t
val epoch : t
val relaxed : t

(** Built-in variants: name, descriptor, one-line description. *)
val builtins : (string * t * string) list

(** Built-in names, in listing order. *)
val names : unit -> string list

(** The built-in entry for a descriptor, if it is one. *)
val describe : t -> (string * t * string) option

(** Stable textual form: a built-in name, or ["custom:sb=...,..."]. *)
val label : t -> string

(** The explicit five-field encoding (["custom:sb=...,bypass=...,..."]),
    also for built-ins; parsed by {!of_label}. *)
val field_form : t -> string

val of_label : string -> t option

val is_default : t -> bool

(** [label strict_tso]. *)
val default_label : string

val pp : Format.formatter -> t -> unit
