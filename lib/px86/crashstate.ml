type origin = { store : Event.store; exec_id : int }

type t = {
  exec_id : int;
  image : Memimage.t;
  origins : (Addr.t, origin) Hashtbl.t;
  cands : (Addr.t * int, origin list) Hashtbl.t;
  mutable heap_break : int;
}

let boot () =
  {
    exec_id = -1;
    image = Memimage.create ();
    origins = Hashtbl.create 64;
    cands = Hashtbl.create 64;
    heap_break = Addr.line_size (* keep line 0 for runtime metadata *);
  }

let ct_copy = Observe.Attribution.center ~units:"bytes" "px86/snapshot_copy"
let m_copies = Observe.Metrics.counter "px86/snapshot_copies"
let m_bytes = Observe.Metrics.counter "px86/snapshot_bytes"

(* Size of what [copy] duplicates: the image's backing bytes plus a
   fixed per-entry charge for the two index tables.  Both are
   deterministic functions of the committed store history, so the
   charge is jobs-invariant.  The 16-byte entry charge is nominal
   (word-sized key + pointer), not a measured heap layout: the point is
   a stable, comparable magnitude, not allocator truth. *)
let copy_cost t =
  Memimage.footprint t.image
  + (16 * (Hashtbl.length t.origins + Hashtbl.length t.cands))

(* The [Event.store] records reachable through [origins]/[cands] are
   frozen once committed (their [seq] is assigned at cache commit, before
   they can enter a crash state), so sharing them between the copy and
   the original is safe even across domains. *)
let copy t =
  let observing =
    Observe.Attribution.is_enabled () || Observe.Metrics.is_enabled ()
  in
  let t0 = if observing then Observe.Trace.now_us () else 0 in
  let c =
    {
      exec_id = t.exec_id;
      image = Memimage.copy t.image;
      origins = Hashtbl.copy t.origins;
      cands = Hashtbl.copy t.cands;
      heap_break = t.heap_break;
    }
  in
  if observing then begin
    let bytes = copy_cost t in
    Observe.Metrics.incr m_copies;
    Observe.Metrics.add m_bytes bytes;
    Observe.Attribution.charge ct_copy ~count:1 ~units:bytes
      ~wall_us:(Observe.Trace.now_us () - t0) ()
  end;
  c

let find_origin t ~addr ~size =
  let rec scan i best distinct =
    if i >= size then (best, distinct)
    else
      match Hashtbl.find_opt t.origins (addr + i) with
      | None -> scan (i + 1) best distinct
      | Some o ->
          let best' =
            match best with
            | None -> Some o
            | Some b -> if o.store.Event.seq > b.store.Event.seq then Some o else Some b
          in
          let distinct' =
            match best with
            | Some b when b.store != o.store -> true
            | _ -> distinct
          in
          scan (i + 1) best' distinct'
  in
  match scan 0 None false with
  | None, _ -> None
  | Some o, torn -> Some (o, torn)

let find_candidates t ~addr ~size =
  match Hashtbl.find_opt t.cands (addr, size) with
  | Some cs -> cs
  | None ->
      (* Distinct byte origins, oldest first. *)
      let seen = Hashtbl.create 4 in
      let acc = ref [] in
      for i = 0 to size - 1 do
        match Hashtbl.find_opt t.origins (addr + i) with
        | None -> ()
        | Some o ->
            if not (Hashtbl.mem seen o.store.Event.seq) then begin
              Hashtbl.add seen o.store.Event.seq ();
              acc := o :: !acc
            end
      done;
      List.sort
        (fun a b -> compare a.store.Event.seq b.store.Event.seq)
        !acc
