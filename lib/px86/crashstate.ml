type origin = { store : Event.store; exec_id : int }

type t = {
  exec_id : int;
  image : Memimage.t;
  origins : (Addr.t, origin) Hashtbl.t;
  cands : (Addr.t * int, origin list) Hashtbl.t;
  mutable heap_break : int;
}

let boot () =
  {
    exec_id = -1;
    image = Memimage.create ();
    origins = Hashtbl.create 64;
    cands = Hashtbl.create 64;
    heap_break = Addr.line_size (* keep line 0 for runtime metadata *);
  }

(* The [Event.store] records reachable through [origins]/[cands] are
   frozen once committed (their [seq] is assigned at cache commit, before
   they can enter a crash state), so sharing them between the copy and
   the original is safe even across domains. *)
let copy t =
  {
    exec_id = t.exec_id;
    image = Memimage.copy t.image;
    origins = Hashtbl.copy t.origins;
    cands = Hashtbl.copy t.cands;
    heap_break = t.heap_break;
  }

let find_origin t ~addr ~size =
  let rec scan i best distinct =
    if i >= size then (best, distinct)
    else
      match Hashtbl.find_opt t.origins (addr + i) with
      | None -> scan (i + 1) best distinct
      | Some o ->
          let best' =
            match best with
            | None -> Some o
            | Some b -> if o.store.Event.seq > b.store.Event.seq then Some o else Some b
          in
          let distinct' =
            match best with
            | Some b when b.store != o.store -> true
            | _ -> distinct
          in
          scan (i + 1) best' distinct'
  in
  match scan 0 None false with
  | None, _ -> None
  | Some o, torn -> Some (o, torn)

let find_candidates t ~addr ~size =
  match Hashtbl.find_opt t.cands (addr, size) with
  | Some cs -> cs
  | None ->
      (* Distinct byte origins, oldest first. *)
      let seen = Hashtbl.create 4 in
      let acc = ref [] in
      for i = 0 to size - 1 do
        match Hashtbl.find_opt t.origins (addr + i) with
        | None -> ()
        | Some o ->
            if not (Hashtbl.mem seen o.store.Event.seq) then begin
              Hashtbl.add seen o.store.Event.seq ();
              acc := o :: !acc
            end
      done;
      List.sort
        (fun a b -> compare a.store.Event.seq b.store.Event.seq)
        !acc
