module Clockvec = Yashme_util.Clockvec
module Rng = Yashme_util.Rng
module Metrics = Observe.Metrics

(* Storage-system effort counters: store-buffer drains, flush-buffer
   applies, write-combining persists and crash materializations. *)
let m_sb_evictions = Metrics.counter "px86/sb_evictions"
let m_fb_applies = Metrics.counter "px86/fb_applies"
let m_nt_persists = Metrics.counter "px86/nt_persists"
let m_crashes = Metrics.counter "px86/crash_materializations"
let h_crash_lines = Metrics.histogram "px86/crash_lines"

type sb_policy = Eager | Random_drain of float

(* Stable textual forms for serialized witnesses (lib/corpus).  The
   float uses %.17g so [sb_policy_of_label] recovers the exact bits. *)
let sb_policy_label = function
  | Eager -> "eager"
  | Random_drain p -> Printf.sprintf "random_drain:%.17g" p

let sb_policy_of_label s =
  match s with
  | "eager" -> Some Eager
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "random_drain" -> (
          match
            float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some p -> Some (Random_drain p)
          | None -> None)
      | _ -> None)

type config = {
  sb_policy : sb_policy;
  variant : Variant.t;
  rng : Rng.t;
  observer : Observer.t;
}

type thread = {
  tid : int;
  mutable cv : Clockvec.t;
  mutable lclk : int;
  sb : Store_buffer.t;
  fb : Flush_buffer.t;
  mutable pending_nt : Event.store list;
      (* committed non-temporal stores not yet fenced (WC buffers) *)
}

type t = {
  cfg : config;
  exec_id : int;
  inherited : Crashstate.t;
  threads : (int, thread) Hashtbl.t;
  cache : Memimage.t;  (* committed state: inherited image + committed stores *)
  base : Memimage.t;  (* pristine copy of the inherited image *)
  pers : Persistence.t;
  mutable seq : int;  (* global cache-commit order counter *)
}

type read_source =
  | From_buffer of Event.store
  | From_cache of Event.store
  | From_crash of Crashstate.origin * Crashstate.origin list
  | From_init

let create ?inherited ~exec_id cfg =
  let inherited = match inherited with Some c -> c | None -> Crashstate.boot () in
  {
    cfg;
    exec_id;
    inherited;
    threads = Hashtbl.create 8;
    cache = Memimage.copy inherited.Crashstate.image;
    base = Memimage.copy inherited.Crashstate.image;
    pers = Persistence.create ();
    seq = 0;
  }

let exec_id t = t.exec_id
let inherited t = t.inherited
let persistence t = t.pers

let thread t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some th -> th
  | None ->
      let th =
        { tid; cv = Clockvec.empty; lclk = 0;
          sb = Store_buffer.create (); fb = Flush_buffer.create ();
          pending_nt = [] }
      in
      Hashtbl.add t.threads tid th;
      th

let thread_cv t ~tid = (thread t tid).cv

let tick th =
  th.lclk <- th.lclk + 1;
  th.cv <- Clockvec.set th.cv th.tid th.lclk

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

(* ------------------------------------------------------------------ *)
(* Store-buffer eviction                                               *)

let apply_store t (s : Event.store) =
  s.Event.seq <- next_seq t;
  Memimage.write t.cache ~addr:s.Event.addr ~size:s.Event.size ~value:s.Event.value;
  Persistence.commit_store t.pers s;
  (if s.Event.nt then
     let th = Hashtbl.find t.threads s.Event.tid in
     th.pending_nt <- s :: th.pending_nt);
  t.cfg.observer.Observer.on_store_commit s

(* A fence also drains the write-combining buffers: every committed
   non-temporal store becomes durable on its own. *)
let drain_nt t th (fence : Event.fence) =
  List.iter
    (fun (s : Event.store) ->
      Metrics.incr m_nt_persists;
      Persistence.mark_durable t.pers s;
      t.cfg.observer.Observer.on_nt_persisted s ~fence)
    (List.rev th.pending_nt);
  th.pending_nt <- []

(* Epoch persistency: a fence acts as a persist barrier for the whole
   domain — every store committed before it is persist-ordered before
   anything after it.  We model the barrier as a synthetic flush of
   every touched line at the fence's position in commit order, reported
   through [on_flush_applied] so the detector learns it like any other
   fenced flush.  The flush clock is the join of all thread clocks: the
   barrier covers commits by every thread, not just the fencing one. *)
let epoch_barrier t (fence : Event.fence) =
  let cv =
    Hashtbl.fold (fun _ th acc -> Clockvec.join acc th.cv) t.threads Clockvec.empty
  in
  List.iter
    (fun line ->
      Persistence.flush_line t.pers ~line ~seq:t.seq;
      let f =
        { Event.fseq = t.seq; ftid = fence.Event.ktid;
          flclk = fence.Event.klclk; fcv = cv;
          faddr = line * Addr.line_size; kind = Event.Clwb }
      in
      t.cfg.observer.Observer.on_flush_applied f ~fence)
    (List.sort compare (Persistence.lines t.pers))

(* [forced] drains regardless of the variant's fence semantics: clean
   shutdown and locked RMWs must empty the buffers even under
   [Fence_nop], where ordinary fences persist nothing. *)
let drain_flush_buffer ?(forced = false) t th (fence : Event.fence) =
  if forced || t.cfg.variant.Variant.fence = Variant.Fence_full then begin
    List.iter
      (fun (f : Event.flush) ->
        Metrics.incr m_fb_applies;
        Persistence.flush_line t.pers ~line:(Addr.line f.Event.faddr) ~seq:f.Event.fseq;
        t.cfg.observer.Observer.on_flush_applied f ~fence)
      (Flush_buffer.drain th.fb);
    drain_nt t th fence;
    if t.cfg.variant.Variant.persist_order = Variant.Epoch_fenced then
      epoch_barrier t fence
  end

let apply_entry t th (entry : Store_buffer.entry) =
  Metrics.incr m_sb_evictions;
  match entry with
  | Store_buffer.Store s -> apply_store t s
  | Store_buffer.Flush ({ kind = Event.Clflush; _ } as f) ->
      f.Event.fseq <- next_seq t;
      Persistence.flush_line t.pers ~line:(Addr.line f.Event.faddr) ~seq:f.Event.fseq;
      t.cfg.observer.Observer.on_clflush_commit f
  | Store_buffer.Flush ({ kind = Event.Clwb; _ } as f) -> (
      f.Event.fseq <- next_seq t;
      match t.cfg.variant.Variant.fb_apply with
      | Variant.Fb_at_fence ->
          Flush_buffer.add th.fb f;
          t.cfg.observer.Observer.on_clwb_commit f
      | Variant.Fb_immediate ->
          (* CXL-flavoured: the write-back reaches the persistence domain
             at commit, unordered with respect to any fence.  Reported as
             a clflush commit so the detector records the applied flush
             (on_clwb_commit only notes the queueing). *)
          Metrics.incr m_fb_applies;
          Persistence.flush_line t.pers ~line:(Addr.line f.Event.faddr)
            ~seq:f.Event.fseq;
          t.cfg.observer.Observer.on_clflush_commit f)
  | Store_buffer.Sfence k ->
      ignore (next_seq t);
      drain_flush_buffer t th k;
      t.cfg.observer.Observer.on_fence k

let drain_sb t th =
  while not (Store_buffer.is_empty th.sb) do
    apply_entry t th (Store_buffer.take th.sb 0)
  done

let drain_all_sb t = Hashtbl.iter (fun _ th -> drain_sb t th) t.threads

let background t =
  match t.cfg.sb_policy with
  | Eager -> drain_all_sb t
  | Random_drain p ->
      let nonempty () =
        Hashtbl.fold (fun _ th acc -> if Store_buffer.is_empty th.sb then acc else th :: acc)
          t.threads []
      in
      let rec loop () =
        match nonempty () with
        | [] -> ()
        | ths ->
            if Rng.chance t.cfg.rng p then begin
              let th = Rng.pick t.cfg.rng ths in
              let idx =
                match t.cfg.variant.Variant.sb_drain with
                | Variant.Drain_fifo -> 0
                | Variant.Drain_tso ->
                    Rng.pick t.cfg.rng (Store_buffer.evictable th.sb)
              in
              apply_entry t th (Store_buffer.take th.sb idx);
              loop ()
            end
      in
      loop ()

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)

let store ?(nt = false) t ~tid ~addr ~size ~value ~access ~label =
  let th = thread t tid in
  tick th;
  let s =
    { Event.seq = -1; tid; lclk = th.lclk; cv = th.cv; addr; size; value; access; nt;
      label }
  in
  Store_buffer.push th.sb (Store_buffer.Store s)

let committed_read_from t ~addr ~size =
  let rec newest_covering = function
    | [] -> None
    | (s : Event.store) :: rest ->
        if Event.store_covers s addr size then Some s else newest_covering rest
  in
  (* line_stores is oldest-first; search newest-first. *)
  newest_covering (List.rev (Persistence.line_stores t.pers (Addr.line addr)))

let cache_read t th ~addr ~size ~access =
  let value = Memimage.read t.cache ~addr ~size in
  let source =
    match committed_read_from t ~addr ~size with
    | Some s -> From_cache s
    | None -> (
        match Crashstate.find_origin t.inherited ~addr ~size with
        | Some (origin, _torn) ->
            let cands = Crashstate.find_candidates t.inherited ~addr ~size in
            From_crash (origin, cands)
        | None -> From_init)
  in
  (* Acquire loads synchronize-with the release store they read from. *)
  (if Access.is_acquire access then
     match source with
     | From_cache s when Access.is_release s.Event.access ->
         th.cv <- Clockvec.join th.cv s.Event.cv
     | From_cache _ | From_buffer _ | From_crash _ | From_init -> ());
  (value, source)

let load t ~tid ~addr ~size ~access =
  let th = thread t tid in
  tick th;
  if not t.cfg.variant.Variant.sb_bypass then begin
    (* No forwarding: every load stalls until the own buffer drains. *)
    drain_sb t th;
    cache_read t th ~addr ~size ~access
  end
  else
    match Store_buffer.forward th.sb ~addr ~size with
    | Store_buffer.Covered s -> (s.Event.value, From_buffer s)
    | Store_buffer.Partial ->
        (* Real hardware stalls partial forwarding; drain and read the cache. *)
        drain_sb t th;
        cache_read t th ~addr ~size ~access
    | Store_buffer.Miss -> cache_read t th ~addr ~size ~access

let clflush t ~tid ~addr =
  let th = thread t tid in
  tick th;
  let f =
    { Event.fseq = -1; ftid = tid; flclk = th.lclk; fcv = th.cv; faddr = addr;
      kind = Event.Clflush }
  in
  Store_buffer.push th.sb (Store_buffer.Flush f)

let clwb t ~tid ~addr =
  let th = thread t tid in
  tick th;
  let f =
    { Event.fseq = -1; ftid = tid; flclk = th.lclk; fcv = th.cv; faddr = addr;
      kind = Event.Clwb }
  in
  Store_buffer.push th.sb (Store_buffer.Flush f)

let sfence t ~tid =
  let th = thread t tid in
  tick th;
  let k = { Event.ktid = tid; klclk = th.lclk; kcv = th.cv; kkind = Event.Sfence } in
  Store_buffer.push th.sb (Store_buffer.Sfence k)

let mfence t ~tid =
  let th = thread t tid in
  tick th;
  drain_sb t th;
  let k = { Event.ktid = tid; klclk = th.lclk; kcv = th.cv; kkind = Event.Mfence } in
  drain_flush_buffer t th k;
  t.cfg.observer.Observer.on_fence k

let cas t ~tid ~addr ~size ~expected ~desired ~label =
  let th = thread t tid in
  tick th;
  (* Locked RMW: clears the store buffer and (like mfence) the flush
     buffer before taking effect.  Forced: a locked instruction drains
     even under [Fence_nop], which weakens only explicit fences. *)
  drain_sb t th;
  let k = { Event.ktid = tid; klclk = th.lclk; kcv = th.cv; kkind = Event.Mfence } in
  drain_flush_buffer ~forced:true t th k;
  let observed, source = cache_read t th ~addr ~size ~access:(Access.Atomic Access.Acq_rel) in
  if observed = expected then begin
    tick th;
    let s =
      { Event.seq = -1; tid; lclk = th.lclk; cv = th.cv; addr; size; value = desired;
        access = Access.Atomic Access.Acq_rel; nt = false; label }
    in
    apply_store t s;
    (true, observed, source)
  end
  else (false, observed, source)

(* ------------------------------------------------------------------ *)
(* Crashes                                                             *)

type cut_strategy = Cut_all | Cut_lowerbound | Cut_random of Rng.t

(* [Cut_random] serializes by name only: its Rng is rebuilt from the
   witness seed on decode, which preserves replay determinism because
   the scenario seed fully determined the original draws. *)
let cut_label = function
  | Cut_all -> "cut_all"
  | Cut_lowerbound -> "cut_lowerbound"
  | Cut_random _ -> "cut_random"

let cut_of_label ~seed = function
  | "cut_all" -> Some Cut_all
  | "cut_lowerbound" -> Some Cut_lowerbound
  | "cut_random" -> Some (Cut_random (Rng.create seed))
  | _ -> None

let buffered_stores t =
  Hashtbl.fold
    (fun _ th acc ->
      acc
      + List.length
          (List.filter
             (function Store_buffer.Store _ -> true | _ -> false)
             (Store_buffer.entries th.sb)))
    t.threads 0

let line_cut t ~strategy line =
  let lb = Persistence.cut_lb t.pers line in
  let later =
    List.filter (fun (s : Event.store) -> s.Event.seq > lb) (Persistence.line_stores t.pers line)
  in
  match strategy with
  | Cut_all -> List.fold_left (fun acc (s : Event.store) -> max acc s.Event.seq) lb later
  | Cut_lowerbound -> lb
  | Cut_random rng ->
      let choices = lb :: List.map (fun (s : Event.store) -> s.Event.seq) later in
      Rng.pick rng choices

let rec drain_everything t =
  drain_all_sb t;
  let pending =
    Hashtbl.fold
      (fun _ th acc -> if Flush_buffer.is_empty th.fb then acc else th :: acc)
      t.threads []
  in
  match pending with
  | [] -> ()
  | ths ->
      List.iter
        (fun th ->
          let k =
            { Event.ktid = th.tid; klclk = th.lclk; kcv = th.cv; kkind = Event.Mfence }
          in
          (* Forced: shutdown must terminate even under [Fence_nop]. *)
          drain_flush_buffer ~forced:true t th k)
        ths;
      drain_everything t

let crash t ~strategy =
  Metrics.incr m_crashes;
  Metrics.observe h_crash_lines (List.length (Persistence.lines t.pers));
  List.iter Observe.Coverage.line_materialized (Persistence.lines t.pers);
  let span_t0 =
    if Observe.Trace.recording () then Some (Observe.Trace.now_us ()) else None
  in
  (* Store-buffer contents are volatile and vanish: do NOT drain. *)
  let image = Memimage.copy t.base in
  let origins : (Addr.t, Crashstate.origin) Hashtbl.t =
    Hashtbl.copy t.inherited.Crashstate.origins
  in
  let cands : (Addr.t * int, Crashstate.origin list) Hashtbl.t =
    Hashtbl.copy t.inherited.Crashstate.cands
  in
  let cuts = Hashtbl.create 16 in
  List.iter
    (fun line -> Hashtbl.replace cuts line (line_cut t ~strategy line))
    (Persistence.lines t.pers);
  (* Replay persisted stores in global commit order to materialize the image. *)
  let all_stores =
    Persistence.lines t.pers
    |> List.concat_map (fun line ->
           let cut = Hashtbl.find cuts line in
           Persistence.line_stores t.pers line
           |> List.filter (fun (s : Event.store) ->
                  (s.Event.seq <= cut || Persistence.is_durable_nt t.pers s)
                  (* a straddling store is listed on both lines; attribute it
                     to the line of its first byte to replay it once *)
                  && Addr.line s.Event.addr = line))
    |> List.sort (fun (a : Event.store) b -> compare a.Event.seq b.Event.seq)
  in
  List.iter
    (fun (s : Event.store) ->
      Memimage.write image ~addr:s.Event.addr ~size:s.Event.size ~value:s.Event.value;
      let origin = { Crashstate.store = s; exec_id = t.exec_id } in
      for i = 0 to s.Event.size - 1 do
        Hashtbl.replace origins (s.Event.addr + i) origin
      done)
    all_stores;
  (* Candidate sets: group committed stores by (addr, size). *)
  let groups : (Addr.t * int, Event.store list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun line ->
      List.iter
        (fun (s : Event.store) ->
          if Addr.line s.Event.addr = line then
            let key = (s.Event.addr, s.Event.size) in
            let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
            Hashtbl.replace groups key (s :: prev))
        (Persistence.line_stores t.pers line))
    (Persistence.lines t.pers);
  Hashtbl.iter
    (fun (addr, size) _ ->
      let this_exec =
        Persistence.candidates t.pers ~addr ~size
        |> List.map (fun s -> { Crashstate.store = s; exec_id = t.exec_id })
      in
      let lb = Persistence.cut_lb t.pers (Addr.line addr) in
      let has_durable_base =
        Persistence.latest_at_or_below t.pers ~addr ~size ~cut:lb <> None
      in
      let merged =
        if has_durable_base then this_exec
        else Crashstate.find_candidates t.inherited ~addr ~size @ this_exec
      in
      Hashtbl.replace cands (addr, size) merged)
    groups;
  let cs =
    {
      Crashstate.exec_id = t.exec_id;
      image;
      origins;
      cands;
      heap_break = t.inherited.Crashstate.heap_break;
    }
  in
  (match span_t0 with
  | Some ts ->
      Observe.Trace.complete ~cat:"px86"
        ~args:[ ("exec_id", string_of_int t.exec_id) ]
        ~ts_us:ts
        ~dur_us:(Observe.Trace.now_us () - ts)
        "crash_materialize"
  | None -> ());
  cs

let shutdown t =
  drain_everything t;
  List.iter
    (fun line -> Persistence.flush_line t.pers ~line ~seq:t.seq)
    (Persistence.lines t.pers);
  crash t ~strategy:Cut_all
