(** Durable memory state handed from a crashed execution to its
    post-crash successor.

    A crash materializes, per cache line, one *cut* of the committed
    store sequence (chosen by a {!cut_strategy}) into a concrete byte
    image that drives post-crash control flow.  Independently of the
    materialized cut, the state records for every stored-to location the
    full set of {e candidate} stores a post-crash load could have read —
    the detector checks all of them for persistency races, which is how
    Yashme piggybacks on Jaaru's constraint-based execution enumeration
    (paper, section 6, Implementation). *)

type origin = { store : Event.store; exec_id : int }

type t = {
  exec_id : int;  (** execution that produced this state; -1 for boot *)
  image : Memimage.t;
  origins : (Addr.t, origin) Hashtbl.t;  (** byte address -> writer *)
  cands : (Addr.t * int, origin list) Hashtbl.t;
      (** (addr, size) -> candidate stores, oldest first *)
  mutable heap_break : int;  (** allocator high-water mark, persisted *)
}

(** The pristine pre-boot state: zero image, no origins. *)
val boot : unit -> t

(** A snapshot that shares no mutable structure with [t]: the byte image
    and both index tables are duplicated, so executions seeded from the
    copy (possibly on another domain) can never mutate the original.
    The immutable committed [Event.store] records are shared.

    Instrumented: when metrics or attribution are enabled, each copy
    charges {!copy_cost} bytes to the [px86/snapshot_copy] cost center
    and the [px86/snapshot_copies]/[px86/snapshot_bytes] counters. *)
val copy : t -> t

(** Bytes {!copy} duplicates: image backing bytes plus a nominal
    16-byte charge per index-table entry.  Deterministic for a given
    store history, hence jobs-invariant. *)
val copy_cost : t -> int

(** Origin of a load of [[addr, addr+size)]: the newest writer among the
    bytes' origins, and whether the bytes mix several writers (a torn
    read). [None] when no byte was ever written. *)
val find_origin : t -> addr:Addr.t -> size:int -> (origin * bool) option

(** Candidate stores for a load; falls back to the byte origins when no
    exact (addr, size) entry exists. *)
val find_candidates : t -> addr:Addr.t -> size:int -> origin list
