(** The simulated x86-TSO persistent storage system (paper, Figure 2).

    One machine instance simulates one execution: per-thread store
    buffers with load bypassing, per-thread flush buffers, a shared
    volatile cache, and the persistence domain.  A machine is created
    either fresh or from the {!Crashstate.t} of a crashed predecessor,
    and produces a new crash state when it crashes.

    The machine knows nothing about the race detector; it reports events
    through an {!Observer.t}. *)

type sb_policy =
  | Eager  (** drain store buffers after every instruction *)
  | Random_drain of float
      (** after each instruction, evict random evictable entries with the
          given per-step probability, exercising Table-1 reorderings *)

(** Stable textual form of a drain policy (serialized witnesses);
    [Random_drain] renders its probability with enough digits that
    {!sb_policy_of_label} recovers the exact float. *)
val sb_policy_label : sb_policy -> string

val sb_policy_of_label : string -> sb_policy option

type config = {
  sb_policy : sb_policy;
  variant : Variant.t;
      (** persistency-model variant; {!Variant.strict_tso} is the
          historical behaviour *)
  rng : Yashme_util.Rng.t;
  observer : Observer.t;
}

type t

(** Where a load found its value. *)
type read_source =
  | From_buffer of Event.store  (** store-buffer bypass (own thread) *)
  | From_cache of Event.store  (** committed store of this execution *)
  | From_crash of Crashstate.origin * Crashstate.origin list
      (** pre-crash store: committed origin plus every candidate the load
          could have read (the detector checks all of them) *)
  | From_init  (** never-written memory (reads as zero) *)

val create : ?inherited:Crashstate.t -> exec_id:int -> config -> t

val exec_id : t -> int
val inherited : t -> Crashstate.t

(** Current clock vector of a thread (registers the thread if new). *)
val thread_cv : t -> tid:int -> Yashme_util.Clockvec.t

(** [nt] marks a non-temporal (movnt) store: it bypasses the cache's
    write-back uncertainty and becomes durable at the thread's next
    fence, without an explicit flush. *)
val store :
  ?nt:bool ->
  t -> tid:int -> addr:Addr.t -> size:int -> value:int64 -> access:Access.t ->
  label:string option -> unit

val load :
  t -> tid:int -> addr:Addr.t -> size:int -> access:Access.t ->
  int64 * read_source

(** Compare-and-swap with locked-RMW semantics: drains the thread's
    store and flush buffers, then atomically updates the cache.  Returns
    whether the swap happened, the observed value, and where the observed
    value came from. *)
val cas :
  t -> tid:int -> addr:Addr.t -> size:int -> expected:int64 -> desired:int64 ->
  label:string option -> bool * int64 * read_source

val clflush : t -> tid:int -> addr:Addr.t -> unit
val clwb : t -> tid:int -> addr:Addr.t -> unit
val sfence : t -> tid:int -> unit
val mfence : t -> tid:int -> unit

(** Apply the configured background store-buffer drain policy; the
    executor calls this between instructions. *)
val background : t -> unit

(** Drain every store buffer and apply pending policy-independent state;
    flush buffers are left pending (only fences drain those). *)
val drain_all_sb : t -> unit

(** How a crash chooses each line's materialized persist cut. *)
type cut_strategy =
  | Cut_all  (** everything committed persisted (maximal recovery view) *)
  | Cut_lowerbound  (** only what flushes guarantee *)
  | Cut_random of Yashme_util.Rng.t  (** uniform cut at or above the bound *)

(** Stable textual form of a cut strategy.  [Cut_random] renders by
    name only — its mutable Rng is not serialized; {!cut_of_label}
    rebuilds one from [seed] (the scenario seed that determined the
    original draws), keeping replay deterministic. *)
val cut_label : cut_strategy -> string

val cut_of_label : seed:int -> string -> cut_strategy option

(** Crash now: store-buffer contents are lost; each line persists a cut
    chosen by [strategy].  Returns the durable state for the next
    execution. *)
val crash : t -> strategy:cut_strategy -> Crashstate.t

(** Clean shutdown: drain every buffer and persist every line, so the
    returned state is concrete (each location has exactly one candidate
    store). *)
val shutdown : t -> Crashstate.t

(** Number of stores currently buffered across all threads (testing). *)
val buffered_stores : t -> int

(** The persistence domain (testing and candidate inspection). *)
val persistence : t -> Persistence.t
