type t = { mutable data : Bytes.t; mutable extent : int }

let initial_capacity = 4096

let create () = { data = Bytes.make initial_capacity '\000'; extent = 0 }

let copy t = { data = Bytes.copy t.data; extent = t.extent }

let ensure t upto =
  let cap = Bytes.length t.data in
  if upto > cap then begin
    let cap' = max upto (cap * 2) in
    let data' = Bytes.make cap' '\000' in
    Bytes.blit t.data 0 data' 0 cap;
    t.data <- data'
  end

let check_size size =
  if size < 1 || size > 8 then invalid_arg "Memimage: size must be in 1..8"

let read t ~addr ~size =
  check_size size;
  if addr < 0 then invalid_arg "Memimage.read: negative address";
  let v = ref 0L in
  for i = size - 1 downto 0 do
    let b =
      if addr + i < Bytes.length t.data then Char.code (Bytes.get t.data (addr + i))
      else 0
    in
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
  done;
  !v

let write t ~addr ~size ~value =
  check_size size;
  if addr < 0 then invalid_arg "Memimage.write: negative address";
  ensure t (addr + size);
  for i = 0 to size - 1 do
    let b = Int64.to_int (Int64.logand (Int64.shift_right_logical value (8 * i)) 0xFFL) in
    Bytes.set t.data (addr + i) (Char.chr b)
  done;
  if addr + size > t.extent then t.extent <- addr + size

let blit_line ~src ~dst line =
  let base = line * Addr.line_size in
  ensure dst (base + Addr.line_size);
  let copy_byte i =
    let a = base + i in
    let b = if a < Bytes.length src.data then Bytes.get src.data a else '\000' in
    Bytes.set dst.data a b
  in
  for i = 0 to Addr.line_size - 1 do
    copy_byte i
  done;
  if base + Addr.line_size > dst.extent then dst.extent <- base + Addr.line_size

let extent t = t.extent

let footprint t = Bytes.length t.data
