(** A growable byte image of (persistent or cached) memory.

    Values are little-endian; reads and writes may span cache lines.
    Unwritten bytes read as zero, matching zero-initialized persistent
    pools. *)

type t

val create : unit -> t
val copy : t -> t

(** [read t ~addr ~size] reads [size] bytes (1..8) little-endian. *)
val read : t -> addr:Addr.t -> size:int -> int64

(** [write t ~addr ~size ~value] writes the low [size] bytes of [value]. *)
val write : t -> addr:Addr.t -> size:int -> value:int64 -> unit

(** [blit_line ~src ~dst line] copies one whole cache line. *)
val blit_line : src:t -> dst:t -> int -> unit

(** Highest written address + 1 (0 for a fresh image). *)
val extent : t -> int

(** Allocated backing bytes (>= {!extent}; capacity doubles
    deterministically from a fixed initial size, so two equal write
    sequences have equal footprints).  What {!copy} duplicates — the
    snapshot-cost accounting unit. *)
val footprint : t -> int
