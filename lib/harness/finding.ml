type phase = Setup | Pre_crash | Recovery of int | Observe

let phase_label = function
  | Setup -> "setup"
  | Pre_crash -> "pre"
  | Recovery 0 -> "recovery"
  | Recovery n -> Printf.sprintf "recovery#%d" (n + 1)
  | Observe -> "observe"

type fault = {
  label : string;
  phase : phase;
  exn_text : string;
  backtrace : string;
  plan : string;
  post_plan : string;
  seed : int;
  crash_fired : bool;
}

let is_recovery_failure f =
  f.crash_fired
  &&
  match f.phase with
  | Recovery _ -> true
  (* A throwing [observe] hook is an oracle-instrumentation fault, not
     evidence against the recovery code: contained, never a finding. *)
  | Setup | Pre_crash | Observe -> false

(* The dedup key deliberately excludes the backtrace (whose rendering
   depends on the build) and the seed (reported separately as the repro
   handle): one recovery bug observed from several crash plans of the
   same scenario label still folds per (label, plan, exception).  The
   components form is shared with the corpus replayer, which recomputes
   candidate keys without building a full fault record. *)
let make_recovery_failure_key ~label ~plan ~post_plan ~exn_text =
  Printf.sprintf "%s @ %s%s: %s" label plan
    (if post_plan = "run_to_end" then "" else "+" ^ post_plan)
    exn_text

let recovery_failure_key f =
  make_recovery_failure_key ~label:f.label ~plan:f.plan ~post_plan:f.post_plan
    ~exn_text:f.exn_text

let pp ppf f =
  Format.fprintf ppf "fault in %s phase of %s @ %s%s: %s" (phase_label f.phase)
    f.label f.plan
    (if f.post_plan = "run_to_end" then "" else "+" ^ f.post_plan)
    f.exn_text

let to_string f = Format.asprintf "%a" pp f

(* A consistency violation from the invariant oracle.  Its dedup key is
   the oracle's plan-free violation key — like a race key, one broken
   invariant observed from several crash plans folds to one finding;
   the plan and seed of the first observation travel along as the repro
   handle. *)
type consistency = {
  c_label : string;
  c_key : string;
  c_detail : string;
  c_plan : string;
  c_post_plan : string;
  c_seed : int;
}

let consistency_key c = c.c_key

let pp_consistency ppf c =
  Format.fprintf ppf "%s: %s (e.g. @@ %s%s, seed %d)" c.c_key c.c_detail
    c.c_plan
    (if c.c_post_plan = "run_to_end" then "" else "+" ^ c.c_post_plan)
    c.c_seed

let consistency_to_string c = Format.asprintf "%a" pp_consistency c
