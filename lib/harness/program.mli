(** A crash-testable PM program: workload plus recovery. *)

type t = {
  name : string;
  setup : (unit -> unit) option;
      (** optional pre-population phase, always run to clean completion
          before the crashy phase (e.g. creating the pool) *)
  pre : unit -> unit;  (** the pre-crash workload *)
  post : unit -> unit;  (** the post-crash recovery / reader *)
  observe : (unit -> (string * string) list) option;
      (** optional state snapshot for the invariant oracle: read the
          recovered structure's observable fields as (name, value)
          pairs.  Runs inside the executor (so it may use {!Pm_runtime.Pmem}
          loads) but with no detector attached — observation never
          perturbs race reports.  Only consulted under [--oracle]. *)
}

val make : ?setup:(unit -> unit) ->
  ?observe:(unit -> (string * string) list) -> name:string ->
  pre:(unit -> unit) -> post:(unit -> unit) -> unit -> t
