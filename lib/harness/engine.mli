(** The exploration engine: executes a batch of independent failure
    {!Scenario}s on a pool of OCaml 5 domains.

    Each crash plan of a model-checking (or random-mode) run is an
    independent failure scenario with its own detector instance, so the
    batch is embarrassingly parallel.  The engine

    + materializes the whole scenario list up front (the strategy
      drivers in {!Runner} enumerate crash plans eagerly),
    + memoizes the trusted setup phase once per program
      ({!materialize_setup}) — workers re-hydrate it with
      {!Px86.Crashstate.copy} so no two scenarios share mutable durable
      state,
    + executes scenarios on [jobs] domains pulling from a shared work
      queue, and
    + merges per-scenario results {e in submission order}, which makes
      the deduplicated race report byte-identical to a sequential run
      (see {!Yashme.Race.merge_ordered}).

    Determinism contract: for any [jobs >= 1], [run ~jobs scenarios]
    returns the same {!scenario_result} list (modulo [wall_s]; compare
    with {!signature} / {!structural}) as [run ~jobs:1 scenarios].
    Scenarios whose options are not domain-safe
    ({!Scenario.parallel_safe}) force [jobs = 1], with a warning
    through {!Observe.Log} when a higher job count was requested.

    Observability: when the {!Observe.Trace} sink is recording, the
    engine emits a [batch] span plus per-worker [worker] spans (trace
    lane pid 0, tid = worker slot) containing one [scenario] span per
    scenario, tagged with submission index, label and crash plan;
    executor and machine sub-spans inherit the worker's lane.  Metrics
    are merged outside the race-report path and never affect it. *)

(** Execution ids within one failure scenario. *)

val setup_exec : int
val pre_exec : int
val post_exec : int

(** Run a program's setup phase exactly as the sequential harness does
    (round-robin schedule, no detector: setup data is trusted after a
    clean shutdown).  [None] when the program has no setup phase. *)
val run_setup : Scenario.options -> Program.t -> Px86.Crashstate.t option

(** Decide how scenarios of [p] obtain their setup state: a memoized
    {!Scenario.Snapshot} when the setup run is seed-independent (eager
    store-buffer drain), a per-scenario {!Scenario.Run_setup} otherwise. *)
val materialize_setup : options:Scenario.options -> Program.t -> Scenario.setup

(** Run one phase of a scenario.  All pre-crash, recovery and
    crashed-recovery executions go through this single code path. *)
val run_phase :
  ?detector:Yashme.Detector.t ->
  ?observer:Px86.Observer.t ->
  ?inherited:Px86.Crashstate.t ->
  options:Scenario.options ->
  plan:Pm_runtime.Executor.plan ->
  seed:int ->
  exec_id:int ->
  (unit -> unit) ->
  Pm_runtime.Executor.result

(** The one recovery path: {!run_phase} specialized to [Run_to_end].
    Every post-crash recovery run in the harness uses this helper. *)
val run_recovery :
  ?detector:Yashme.Detector.t ->
  ?observer:Px86.Observer.t ->
  options:Scenario.options ->
  inherited:Px86.Crashstate.t ->
  seed:int ->
  exec_id:int ->
  (unit -> unit) ->
  Pm_runtime.Executor.result

(** Did this run's crash plan actually fire?  ([Crash_at_end] completes
    and then crashes; a targeted plan that never fired leaves a cleanly
    shut-down state with no crash.) *)
val crash_fired : plan:Pm_runtime.Executor.plan -> Pm_runtime.Executor.result -> bool

type scenario_result = {
  label : string;
  races : Yashme.Race.t list;  (** the scenario detector's raw races *)
  chain_crashed : bool;
      (** every crash plan in the scenario's chain fired (for two-crash
          scenarios: the recovery crash fired too) *)
  executions : int;  (** executor runs, including a re-run setup *)
  ops : int;  (** memory/flush operations executed across the chain *)
  flush_points : int;  (** flush points of the pre-crash run *)
  post_flush_points : int option;
      (** flush points of the first recovery run, when it ran — the
          probe datum two-crash drivers need *)
  wall_s : float;
}

(** Execute one scenario on the calling domain. *)
val run_scenario : Scenario.t -> scenario_result

type stats = {
  jobs : int;  (** worker domains actually used *)
  scenarios : int;
  executions : int;
  ops : int;
  cpu_s : float;  (** sum of per-scenario wall times (worker-side) *)
  elapsed_s : float;  (** end-to-end wall time of the batch *)
}

(** The timing-free projection of {!stats}: determinism comparisons
    must use this (or {!signature}), never polymorphic equality over
    the full records — [cpu_s]/[elapsed_s]/[wall_s] vary run to run. *)
type structural_stats = {
  s_jobs : int;
  s_scenarios : int;
  s_executions : int;
  s_ops : int;
}

val structural : stats -> structural_stats

(** The timing-free projection of a {!scenario_result} (everything but
    [wall_s]). *)
type scenario_sig = {
  sig_label : string;
  sig_races : Yashme.Race.t list;
  sig_chain_crashed : bool;
  sig_executions : int;
  sig_ops : int;
  sig_flush_points : int;
  sig_post_flush_points : int option;
}

val signature : scenario_result -> scenario_sig

type run_result = { results : scenario_result list; stats : stats }

(** Execute the batch on [jobs] domains (default 1; clamped to the
    batch size and to 1 for non-{!Scenario.parallel_safe} batches).
    Results are in submission order.  A scenario that raises aborts the
    batch: the exception of the earliest-submitted failing scenario is
    re-raised after all workers have drained. *)
val run : ?jobs:int -> Scenario.t list -> run_result

(** Merged races in scenario order; [keep] filters whole scenarios
    (e.g. two-crash drivers keep only [chain_crashed] scenarios). *)
val races : ?keep:(scenario_result -> bool) -> run_result -> Yashme.Race.t list
