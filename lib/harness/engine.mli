(** The exploration engine: executes a batch of independent failure
    {!Scenario}s on a pool of OCaml 5 domains.

    Each crash plan of a model-checking (or random-mode) run is an
    independent failure scenario with its own detector instance, so the
    batch is embarrassingly parallel.  The engine

    + materializes the whole scenario list up front (the strategy
      drivers in {!Runner} enumerate crash plans eagerly),
    + memoizes the trusted setup phase once per program
      ({!materialize_setup}) — workers re-hydrate it with
      {!Px86.Crashstate.copy} so no two scenarios share mutable durable
      state,
    + executes scenarios on [jobs] domains pulling from a shared work
      queue, and
    + merges per-scenario results {e in submission order}, which makes
      the deduplicated race report byte-identical to a sequential run
      (see {!Yashme.Race.merge_ordered}).

    {b Fault isolation.}  A misbehaving scenario never poisons the
    batch.  {!run_scenario} sandboxes every phase: an exception raised
    by setup, pre-crash or recovery code is captured (with its raw
    backtrace) into a {!fault} and the scenario completes as
    {!Faulted}; a phase that exceeds a {!Scenario.options} budget
    ([max_ops] fuel / [max_wall_s]) is terminated by the executor with
    {!Pm_runtime.Executor.Diverged} and the scenario completes with
    [diverged = true].  {!run} therefore returns {e all} results —
    partial batches survive — unless the opt-in [fail_fast] is set, in
    which case workers cancel the remaining queue cooperatively (an
    [Atomic] stop flag checked before each claim) and the
    earliest-submitted recorded fault is re-raised with
    [Printexc.raise_with_backtrace].

    A recovery phase that raises after a {e real} crash is classified
    by {!Finding.is_recovery_failure}: WITCHER-style crash-consistency
    evidence, merged into {!Report} alongside persistency races.

    Determinism contract: for any [jobs >= 1], [run ~jobs scenarios]
    returns the same {!scenario_result} list (modulo wall times;
    compare with {!signature} / {!structural}) as [run ~jobs:1
    scenarios] — faults and fuel divergences included.  Wall-clock
    budgets and fail-fast cancellation are the two knobs that trade
    this determinism away (documented per knob).  Scenarios whose
    options are not domain-safe ({!Scenario.parallel_safe}) force
    [jobs = 1], with a warning through {!Observe.Log} when a higher job
    count was requested.

    Observability: when the {!Observe.Trace} sink is recording, the
    engine emits a [batch] span plus per-worker [worker] spans (trace
    lane pid 0, tid = worker slot) containing one [scenario] span per
    scenario, tagged with submission index, label and crash plan;
    executor and machine sub-spans inherit the worker's lane.  Faults
    raise [fault] instants in the faulting worker's lane, divergences
    raise [diverged] instants (executor), cancelled queue entries raise
    [cancelled] instants; counters [engine/faults],
    [engine/recovery_failures], [engine/cancelled] and
    [executor/divergences] accumulate in {!Observe.Metrics}.  Metrics
    are merged outside the race-report path and never affect it.

    When {!Observe.Coverage} is enabled, each scenario runs under its
    label as the ambient coverage program, accounting crash-plan
    indices exercised, crash points fired, detector expansions/prunes
    and materialized cache lines; merged totals are byte-identical for
    every [jobs] count.  When {!Observe.Progress} is active, {!run}
    announces the batch and ticks once per finished scenario. *)

(** Execution ids within one failure scenario. *)

val setup_exec : int
val pre_exec : int
val post_exec : int

(** Run a program's setup phase exactly as the sequential harness does
    (round-robin schedule, no detector: setup data is trusted after a
    clean shutdown).  [None] when the program has no setup phase. *)
val run_setup : Scenario.options -> Program.t -> Px86.Crashstate.t option

(** Decide how scenarios of [p] obtain their setup state: a memoized
    {!Scenario.Snapshot} when the setup run is seed-independent (eager
    store-buffer drain), a per-scenario {!Scenario.Run_setup} otherwise. *)
val materialize_setup : options:Scenario.options -> Program.t -> Scenario.setup

(** Run one phase of a scenario.  All pre-crash, recovery and
    crashed-recovery executions go through this single code path,
    including the budget options. *)
val run_phase :
  ?detector:Yashme.Detector.t ->
  ?observer:Px86.Observer.t ->
  ?inherited:Px86.Crashstate.t ->
  options:Scenario.options ->
  plan:Pm_runtime.Executor.plan ->
  seed:int ->
  exec_id:int ->
  (unit -> unit) ->
  Pm_runtime.Executor.result

(** The one recovery path: {!run_phase} specialized to [Run_to_end].
    Every post-crash recovery run in the harness uses this helper. *)
val run_recovery :
  ?detector:Yashme.Detector.t ->
  ?observer:Px86.Observer.t ->
  options:Scenario.options ->
  inherited:Px86.Crashstate.t ->
  seed:int ->
  exec_id:int ->
  (unit -> unit) ->
  Pm_runtime.Executor.result

(** Coverage index of a crash plan: [Crash_before_flush n] is [Some n],
    [Crash_at_end] is [Some (-1)] (the ["end"] pseudo-index of
    {!Observe.Coverage}), untargeted plans are [None]. *)
val plan_index : Pm_runtime.Executor.plan -> int option

(** Did this run's crash plan actually fire?  ([Crash_at_end] completes
    and then crashes; a targeted plan that never fired leaves a cleanly
    shut-down state with no crash; a {!Pm_runtime.Executor.Diverged}
    run was killed by a budget, not a crash.) *)
val crash_fired : plan:Pm_runtime.Executor.plan -> Pm_runtime.Executor.result -> bool

type completed = {
  label : string;
  races : Yashme.Race.t list;  (** the scenario detector's raw races *)
  chain_crashed : bool;
      (** every crash plan in the scenario's chain fired (for two-crash
          scenarios: the recovery crash fired too) *)
  diverged : bool;
      (** some phase was terminated by a [max_ops]/[max_wall_s] budget *)
  executions : int;  (** executor runs, including a re-run setup *)
  ops : int;  (** memory/flush operations executed across the chain *)
  flush_points : int;  (** flush points of the pre-crash run *)
  post_flush_points : int option;
      (** flush points of the first recovery run, when it ran — the
          probe datum two-crash drivers need *)
  observed : bool;
      (** the oracle observe phase ran (oracle context attached and the
          chain crashed and recovered) *)
  violations : (string * string) list;
      (** oracle (key, detail) violations, sorted by key; empty unless
          [observed] *)
  wall_s : float;
}

(** A sandboxed scenario phase exception: the reportable projection
    ({!Finding.fault}), the raw exception + backtrace for the
    fail-fast re-raise, and the partial evidence gathered before the
    fault. *)
type fault = {
  f_info : Finding.fault;
  f_exn : exn;
  f_backtrace : Printexc.raw_backtrace;
  f_races : Yashme.Race.t list;  (** races detected before the fault *)
  f_executions : int;
  f_ops : int;
  f_wall_s : float;
}

type scenario_result = Completed of completed | Faulted of fault

(** Execute one scenario on the calling domain.  Never raises: phase
    exceptions are captured as {!Faulted}. *)
val run_scenario : Scenario.t -> scenario_result

type stats = {
  jobs : int;  (** worker domains actually used *)
  scenarios : int;
  completed : int;
  faulted : int;
  diverged : int;  (** completed scenarios with a budget-killed phase *)
  cancelled : int;  (** queue entries cancelled by fail-fast (else 0) *)
  executions : int;
  ops : int;
  cpu_s : float;  (** sum of per-scenario wall times (worker-side) *)
  elapsed_s : float;  (** end-to-end wall time of the batch *)
}

(** The timing-free projection of {!stats}: determinism comparisons
    must use this (or {!signature}), never polymorphic equality over
    the full records — [cpu_s]/[elapsed_s]/wall times vary run to run,
    and [cancelled] is scheduling-dependent under fail-fast. *)
type structural_stats = {
  s_jobs : int;
  s_scenarios : int;
  s_completed : int;
  s_faulted : int;
  s_diverged : int;
  s_executions : int;
  s_ops : int;
}

val structural : stats -> structural_stats

(** The timing-free projection of a {!scenario_result} (everything but
    the wall times and the fault's backtrace, whose rendering depends
    on the build). *)

type completed_sig = {
  sig_label : string;
  sig_races : Yashme.Race.t list;
  sig_chain_crashed : bool;
  sig_diverged : bool;
  sig_executions : int;
  sig_ops : int;
  sig_flush_points : int;
  sig_post_flush_points : int option;
  sig_observed : bool;
  sig_violations : (string * string) list;
}

type fault_sig = {
  sig_f_label : string;
  sig_f_phase : Finding.phase;
  sig_f_exn : string;
  sig_f_plan : string;
  sig_f_post_plan : string;
  sig_f_seed : int;
  sig_f_crash_fired : bool;
  sig_f_races : Yashme.Race.t list;
  sig_f_executions : int;
  sig_f_ops : int;
}

type scenario_sig = Sig_completed of completed_sig | Sig_faulted of fault_sig

val signature : scenario_result -> scenario_sig

type run_result = { results : scenario_result list; stats : stats }

(** Execute the batch on [jobs] domains (default 1; clamped to the
    batch size and to 1 for non-{!Scenario.parallel_safe} batches).
    Results are in submission order and {e complete}: faulting
    scenarios appear as {!Faulted}, healthy ones as {!Completed}, and
    no result is ever discarded.

    With [fail_fast] (default false), a recorded fault raises a stop
    flag that workers check before claiming the next queue entry;
    remaining entries are cancelled (visible as [engine/cancelled]
    counter ticks and [cancelled] trace instants, since the result
    record never materializes) and the earliest-submitted recorded
    fault's exception is re-raised with its original backtrace once all
    workers have drained. *)
val run : ?jobs:int -> ?fail_fast:bool -> Scenario.t list -> run_result

(** Merged races in scenario order; [keep] filters completed scenarios
    (e.g. two-crash drivers keep only [chain_crashed] scenarios).
    Races a faulting scenario detected before its fault are always
    kept. *)
val races : ?keep:(completed -> bool) -> run_result -> Yashme.Race.t list

(** Faults of the run, in submission order — feed to
    {!Report.dedup}'s [faults] argument. *)
val faults : run_result -> Finding.fault list

(** Number of completed scenarios with a budget-killed phase. *)
val diverged_count : run_result -> int
