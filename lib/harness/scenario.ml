module Executor = Pm_runtime.Executor

type options = {
  mode : Yashme.Detector.mode;
  eadr : bool;
  coherence : bool;
  check_candidates : bool;
  sched : Executor.sched_policy;
  sb_policy : Px86.Machine.sb_policy;
  variant : Px86.Variant.t;
  cut : Px86.Machine.cut_strategy;
  seed : int;
  max_ops : int option;
  max_wall_s : float option;
}

let default_options =
  {
    mode = Yashme.Detector.Prefix;
    eadr = false;
    coherence = true;
    check_candidates = true;
    sched = Executor.Round_robin;
    sb_policy = Px86.Machine.Eager;
    variant = Px86.Variant.strict_tso;
    cut = Px86.Machine.Cut_all;
    seed = 42;
    max_ops = None;
    max_wall_s = None;
  }

(* ------------------------------------------------------------------ *)
(* Options serialization: the flat field list a corpus witness embeds.
   Everything round-trips exactly; [Cut_random]'s Rng is rebuilt from
   the serialized seed (see Px86.Machine.cut_of_label). *)

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

let mode_label = function
  | Yashme.Detector.Prefix -> "prefix"
  | Yashme.Detector.Baseline -> "baseline"

let mode_of_label = function
  | "prefix" -> Some Yashme.Detector.Prefix
  | "baseline" -> Some Yashme.Detector.Baseline
  | _ -> None

let options_fields o : (string * field) list =
  [
    ("mode", `S (mode_label o.mode));
    ("eadr", `B o.eadr);
    ("coherence", `B o.coherence);
    ("check_candidates", `B o.check_candidates);
    ("sched", `S (Executor.sched_label o.sched));
    ("sb_policy", `S (Px86.Machine.sb_policy_label o.sb_policy));
    ("variant", `S (Px86.Variant.label o.variant));
    ("cut", `S (Px86.Machine.cut_label o.cut));
    ("seed", `I o.seed);
    ("max_ops", match o.max_ops with Some n -> `I n | None -> `Null);
    ("max_wall_s", match o.max_wall_s with Some s -> `F s | None -> `Null);
  ]

let options_of_fields (fields : (string * field) list) =
  let ( let* ) = Result.bind in
  let find key = List.assoc_opt key fields in
  let str key =
    match find key with
    | Some (`S s) -> Ok s
    | _ -> Error (Printf.sprintf "options: missing or non-string %S" key)
  in
  let boolean key =
    match find key with
    | Some (`B b) -> Ok b
    | _ -> Error (Printf.sprintf "options: missing or non-bool %S" key)
  in
  let parsed key of_label what =
    let* s = str key in
    match of_label s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "options: unknown %s %S" what s)
  in
  let* seed =
    match find "seed" with
    | Some (`I n) -> Ok n
    | _ -> Error "options: missing or non-int \"seed\""
  in
  let* mode = parsed "mode" mode_of_label "detector mode" in
  let* eadr = boolean "eadr" in
  let* coherence = boolean "coherence" in
  let* check_candidates = boolean "check_candidates" in
  let* sched = parsed "sched" Executor.sched_of_label "scheduling policy" in
  let* sb_policy =
    parsed "sb_policy" Px86.Machine.sb_policy_of_label "store-buffer policy"
  in
  let* variant =
    (* Absent in pre-variant (v1) witnesses: default to strict-tso. *)
    match find "variant" with
    | None | Some `Null -> Ok Px86.Variant.strict_tso
    | Some (`S s) -> (
        match Px86.Variant.of_label s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "options: unknown variant %S" s))
    | Some _ -> Error "options: non-string \"variant\""
  in
  let* cut =
    parsed "cut" (Px86.Machine.cut_of_label ~seed) "cut strategy"
  in
  let* max_ops =
    match find "max_ops" with
    | Some (`I n) -> Ok (Some n)
    | Some `Null | None -> Ok None
    | Some _ -> Error "options: non-int \"max_ops\""
  in
  let* max_wall_s =
    match find "max_wall_s" with
    | Some (`F s) -> Ok (Some s)
    | Some (`I n) -> Ok (Some (float_of_int n))
    | Some `Null | None -> Ok None
    | Some _ -> Error "options: non-number \"max_wall_s\""
  in
  Ok
    {
      mode;
      eadr;
      coherence;
      check_candidates;
      sched;
      sb_policy;
      variant;
      cut;
      seed;
      max_ops;
      max_wall_s;
    }

(* Randomized knobs make a scenario's evidence RNG-dependent; the
   minimizer re-searches such witnesses for a deterministic
   equivalent. *)
let options_randomized o =
  o.sched = Executor.Random_sched
  || (match o.sb_policy with
     | Px86.Machine.Random_drain _ -> true
     | Px86.Machine.Eager -> false)
  ||
  match o.cut with
  | Px86.Machine.Cut_random _ -> true
  | Px86.Machine.Cut_all | Px86.Machine.Cut_lowerbound -> false

type setup =
  | No_setup
  | Snapshot of Px86.Crashstate.t
  | Run_setup of (unit -> unit)

(* The invariant-oracle context a driver may attach: a state snapshot
   hook and a checker closed over the crash-free reference.  Closures,
   never serialized — a corpus witness records only that the oracle was
   involved (its kind) and the context is rebuilt from the program at
   replay time. *)
type oracle = {
  oc_observe : unit -> (string * string) list;
  oc_check : observed:(string * string) list -> (string * string) list;
      (** (plan-free violation key, human detail) pairs, sorted *)
}

type t = {
  label : string;
  setup : setup;
  pre : unit -> unit;
  post : unit -> unit;
  plan : Executor.plan;
  post_plan : Executor.plan;
  options : options;
  oracle : oracle option;
}

let make ?(post_plan = Executor.Run_to_end) ?oracle ~label ~setup ~pre ~post
    ~plan ~options () =
  { label; setup; pre; post; plan; post_plan; options; oracle }

let of_program ?post_plan ?oracle ~setup ~plan ~options (p : Program.t) =
  make ?post_plan ?oracle ~label:p.Program.name ~setup ~pre:p.Program.pre
    ~post:p.Program.post ~plan ~options ()

(* [Cut_random] carries a mutable Rng shared by every scenario built
   from the same options record: scenarios using it must stay on one
   domain (see the executor's domain-safety audit). *)
let parallel_safe t =
  match t.options.cut with
  | Px86.Machine.Cut_random _ -> false
  | Px86.Machine.Cut_all | Px86.Machine.Cut_lowerbound -> true
