module Executor = Pm_runtime.Executor

type options = {
  mode : Yashme.Detector.mode;
  eadr : bool;
  coherence : bool;
  check_candidates : bool;
  sched : Executor.sched_policy;
  sb_policy : Px86.Machine.sb_policy;
  cut : Px86.Machine.cut_strategy;
  seed : int;
  max_ops : int option;
  max_wall_s : float option;
}

let default_options =
  {
    mode = Yashme.Detector.Prefix;
    eadr = false;
    coherence = true;
    check_candidates = true;
    sched = Executor.Round_robin;
    sb_policy = Px86.Machine.Eager;
    cut = Px86.Machine.Cut_all;
    seed = 42;
    max_ops = None;
    max_wall_s = None;
  }

type setup =
  | No_setup
  | Snapshot of Px86.Crashstate.t
  | Run_setup of (unit -> unit)

type t = {
  label : string;
  setup : setup;
  pre : unit -> unit;
  post : unit -> unit;
  plan : Executor.plan;
  post_plan : Executor.plan;
  options : options;
}

let make ?(post_plan = Executor.Run_to_end) ~label ~setup ~pre ~post ~plan
    ~options () =
  { label; setup; pre; post; plan; post_plan; options }

let of_program ?post_plan ~setup ~plan ~options (p : Program.t) =
  make ?post_plan ~label:p.Program.name ~setup ~pre:p.Program.pre
    ~post:p.Program.post ~plan ~options ()

(* [Cut_random] carries a mutable Rng shared by every scenario built
   from the same options record: scenarios using it must stay on one
   domain (see the executor's domain-safety audit). *)
let parallel_safe t =
  match t.options.cut with
  | Px86.Machine.Cut_random _ -> false
  | Px86.Machine.Cut_all | Px86.Machine.Cut_lowerbound -> true
