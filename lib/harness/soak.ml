(* Soak driver: crash testing as a long-running service.

   Structure: (stream x bucket) combos; one scenario per active combo
   per round; one Engine.run batch per round.  All randomness derives
   from pure functions of (base seed, round, combo label), so the
   scenario stream is reproducible from the seed alone — including
   after a checkpoint/resume, which only has to remember the next
   round index and the per-combo fault state, never RNG internals. *)

module Executor = Pm_runtime.Executor
module Rng = Yashme_util.Rng

(* ------------------------------------------------------------------ *)
(* Op streams                                                           *)

type op_kind = Read | Write | Delete | Rmw

type op_stream = {
  os_name : string;
  os_keyspace : int;
  os_setup : (unit -> unit) option;
  os_connect : unit -> op_kind -> key:int -> payload:int -> unit;
  os_audit : unit -> unit;
  os_observe : (unit -> (string * string) list) option;
}

(* ------------------------------------------------------------------ *)
(* Op-mix buckets                                                       *)

type mix = {
  mix_label : string;
  w_read : int;
  w_write : int;
  w_delete : int;
  w_rmw : int;
}

type dist = Uniform | Hotspot

let dist_label = function Uniform -> "uniform" | Hotspot -> "hotspot"
let dist_of_label = function
  | "uniform" -> Some Uniform
  | "hotspot" -> Some Hotspot
  | _ -> None

type bucket = { b_mix : mix; b_dist : dist }

let bucket_label b = b.b_mix.mix_label ^ ":" ^ dist_label b.b_dist

let default_mixes =
  [
    { mix_label = "read-heavy"; w_read = 8; w_write = 2; w_delete = 0; w_rmw = 0 };
    { mix_label = "write-heavy"; w_read = 2; w_write = 6; w_delete = 1; w_rmw = 1 };
    { mix_label = "churn"; w_read = 1; w_write = 4; w_delete = 4; w_rmw = 1 };
    { mix_label = "rmw-heavy"; w_read = 2; w_write = 3; w_delete = 0; w_rmw = 5 };
  ]

let default_buckets =
  List.concat_map
    (fun m -> [ { b_mix = m; b_dist = Uniform }; { b_mix = m; b_dist = Hotspot } ])
    default_mixes

let draw_kind rng m =
  let total = m.w_read + m.w_write + m.w_delete + m.w_rmw in
  assert (total > 0);
  let r = Rng.int rng total in
  if r < m.w_read then Read
  else if r < m.w_read + m.w_write then Write
  else if r < m.w_read + m.w_write + m.w_delete then Delete
  else Rmw

let draw_key rng d keyspace =
  match d with
  | Uniform -> 1 + Rng.int rng keyspace
  | Hotspot ->
      let hot = max 1 (keyspace / 5) in
      if Rng.int rng 10 < 8 then 1 + Rng.int rng hot
      else 1 + Rng.int rng keyspace

(* ------------------------------------------------------------------ *)
(* Soak programs (replayable by encoded name)                           *)

let program_name ~stream ~bucket ~ops ~seed =
  Printf.sprintf "soak:%s:%s:%s:%d:%d" stream bucket.b_mix.mix_label
    (dist_label bucket.b_dist) ops seed

let pre_of ~stream ~bucket ~ops ~seed () =
  let rng = Rng.create seed in
  let apply = stream.os_connect () in
  for _ = 1 to ops do
    let kind = draw_kind rng bucket.b_mix in
    let key = draw_key rng bucket.b_dist stream.os_keyspace in
    let payload = Rng.int rng 1000 in
    apply kind ~key ~payload
  done

let program ~stream ~bucket ~ops ~seed =
  Program.make
    ?setup:stream.os_setup
    ?observe:stream.os_observe
    ~name:(program_name ~stream:stream.os_name ~bucket ~ops ~seed)
    ~pre:(pre_of ~stream ~bucket ~ops ~seed)
    ~post:(fun () -> stream.os_audit ())
    ()

let find_program ~streams name =
  match String.split_on_char ':' name with
  | [ "soak"; stream_name; mix_label; dist_name; ops_s; seed_s ] -> (
      match
        ( List.find_opt (fun s -> s.os_name = stream_name) streams,
          List.find_opt (fun m -> m.mix_label = mix_label) default_mixes,
          dist_of_label dist_name,
          int_of_string_opt ops_s,
          int_of_string_opt seed_s )
      with
      | Some stream, Some mix, Some dist, Some ops, Some seed
        when ops > 0 ->
          Some
            (program ~stream
               ~bucket:{ b_mix = mix; b_dist = dist }
               ~ops ~seed)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Configuration and state                                              *)

type config = {
  sk_streams : op_stream list;
  sk_buckets : bucket list;
  sk_options : Scenario.options;
  sk_jobs : int;
  sk_ops_per_exec : int;
  sk_fault_budget : int;
  sk_max_ops : int option;
  sk_wall_s : float option;
  sk_checkpoint_every : int;
  sk_oracle : bool;
}

let default_config ~streams =
  {
    sk_streams = streams;
    sk_buckets = default_buckets;
    sk_options = Scenario.default_options;
    sk_jobs = 1;
    sk_ops_per_exec = 24;
    sk_fault_budget = 3;
    sk_max_ops = None;
    sk_wall_s = None;
    sk_checkpoint_every = 10;
    sk_oracle = false;
  }

type bucket_state = {
  bs_combo : string;
  bs_faults : int;
  bs_quarantined : bool;
}

type snapshot = {
  snap_next_round : int;
  snap_scenarios : int;
  snap_completed : int;
  snap_faulted : int;
  snap_diverged : int;
  snap_crashed : int;
  snap_executions : int;
  snap_ops : int;
  snap_client_ops : int;
  snap_races : int;
  snap_buckets : bucket_state list;
}

type stop_reason = Op_budget | Wall_budget | Exhausted | Interrupted

let stop_reason_label = function
  | Op_budget -> "op-budget"
  | Wall_budget -> "wall-budget"
  | Exhausted -> "exhausted"
  | Interrupted -> "interrupted"

let stop_reason_of_label = function
  | "op-budget" -> Some Op_budget
  | "wall-budget" -> Some Wall_budget
  | "exhausted" -> Some Exhausted
  | "interrupted" -> Some Interrupted
  | _ -> None

type result = {
  r_snapshot : snapshot;
  r_reason : stop_reason;
  r_ok : bool;
  r_elapsed_s : float;
}

(* ------------------------------------------------------------------ *)
(* Cancellation                                                         *)

let stop_flag = Atomic.make false
let request_stop () = Atomic.set stop_flag true

(* ------------------------------------------------------------------ *)
(* The driver                                                           *)

type combo = {
  c_stream : op_stream;
  c_bucket : bucket;
  c_label : string;  (* scenario label = coverage bucket; seed-free *)
  c_points : int;  (* calibrated flush-point estimate, >= 1 *)
  mutable c_faults : int;
  mutable c_quarantined : bool;
}

(* Derived seeds: pure functions of (base seed, round, combo label),
   mirroring Runner.program_seed — this is what makes resume re-wind
   the RNG stream without serializing generator state. *)
let iter_seed ~seed ~round ~label = Hashtbl.hash (seed, round, label)

(* The crash plan for one iteration: a uniform draw over the combo's
   estimated flush points plus Crash_at_end.  An index beyond the
   iteration's actual flush points simply never fires (a completed,
   uncrashed scenario) — still a useful execution, so no re-draw. *)
let plan_of ~points ~seed =
  let rng = Rng.create (seed lxor 0x2545F49) in
  let n = Rng.int rng (points + 1) in
  if n >= points then Executor.Crash_at_end else Executor.Crash_before_flush n

(* Flush-point calibration: one probe scenario per combo, from a seed
   independent of the round counter so fresh and resumed runs agree.
   Probe executions are excluded from the totals for the same reason.
   A faulting probe (fault-storm streams) falls back to 1. *)
let calibrate ~options combo ~setup =
  let seed = iter_seed ~seed:options.Scenario.seed ~round:(-1) ~label:combo.c_label in
  let stream = combo.c_stream and bucket = combo.c_bucket in
  let sc =
    Scenario.make ~label:combo.c_label ~setup
      ~pre:(pre_of ~stream ~bucket ~ops:8 ~seed)
      ~post:(fun () -> stream.os_audit ())
      ~plan:Executor.Crash_at_end
      ~options:{ options with Scenario.seed }
      ()
  in
  match Engine.run_scenario sc with
  | Engine.Completed c -> max 1 c.Engine.flush_points
  | Engine.Faulted _ -> 1

let snapshot_of ~next_round ~totals ~combos =
  let t = totals in
  {
    snap_next_round = next_round;
    snap_scenarios = t.(0);
    snap_completed = t.(1);
    snap_faulted = t.(2);
    snap_diverged = t.(3);
    snap_crashed = t.(4);
    snap_executions = t.(5);
    snap_ops = t.(6);
    snap_client_ops = t.(7);
    snap_races = t.(8);
    snap_buckets =
      List.map
        (fun c ->
          {
            bs_combo = c.c_label;
            bs_faults = c.c_faults;
            bs_quarantined = c.c_quarantined;
          })
        combos;
  }

let run ?resume ?(on_batch = fun _ -> ()) ?(on_checkpoint = fun _ -> ()) cfg =
  if cfg.sk_streams = [] then invalid_arg "Soak.run: no op streams";
  if cfg.sk_buckets = [] then invalid_arg "Soak.run: no buckets";
  Atomic.set stop_flag false;
  let t0 = Unix.gettimeofday () in
  let options = cfg.sk_options in
  (* Setup states are memoized per stream, like the scripted drivers'
     per-program memoization: every scenario of a stream re-hydrates
     the same trusted snapshot. *)
  let setups = Hashtbl.create 8 in
  let setup_of stream =
    match Hashtbl.find_opt setups stream.os_name with
    | Some s -> s
    | None ->
        let p =
          program ~stream
            ~bucket:(List.hd cfg.sk_buckets)
            ~ops:1 ~seed:options.Scenario.seed
        in
        let s = Engine.materialize_setup ~options p in
        Hashtbl.add setups stream.os_name s;
        s
  in
  let combos =
    List.concat_map
      (fun stream ->
        List.map
          (fun bucket ->
            let label =
              Printf.sprintf "soak:%s:%s" stream.os_name (bucket_label bucket)
            in
            let c =
              {
                c_stream = stream;
                c_bucket = bucket;
                c_label = label;
                c_points = 1;
                c_faults = 0;
                c_quarantined = false;
              }
            in
            { c with c_points = calibrate ~options c ~setup:(setup_of stream) })
          cfg.sk_buckets)
      cfg.sk_streams
  in
  (* scenarios/completed/faulted/diverged/crashed/executions/ops/
     client_ops/races *)
  let totals = Array.make 9 0 in
  (match resume with
  | None -> ()
  | Some s ->
      totals.(0) <- s.snap_scenarios;
      totals.(1) <- s.snap_completed;
      totals.(2) <- s.snap_faulted;
      totals.(3) <- s.snap_diverged;
      totals.(4) <- s.snap_crashed;
      totals.(5) <- s.snap_executions;
      totals.(6) <- s.snap_ops;
      totals.(7) <- s.snap_client_ops;
      totals.(8) <- s.snap_races;
      List.iter
        (fun bs ->
          match List.find_opt (fun c -> c.c_label = bs.bs_combo) combos with
          | Some c ->
              c.c_faults <- bs.bs_faults;
              c.c_quarantined <- bs.bs_quarantined
          | None -> ())
        s.snap_buckets);
  let round = ref (match resume with Some s -> s.snap_next_round | None -> 0) in
  let reason = ref None in
  while !reason = None do
    if Atomic.get stop_flag then reason := Some Interrupted
    else if
      match cfg.sk_wall_s with
      | Some budget -> Unix.gettimeofday () -. t0 >= budget
      | None -> false
    then reason := Some Wall_budget
    else if
      match cfg.sk_max_ops with
      | Some budget -> totals.(7) >= budget
      | None -> false
    then reason := Some Op_budget
    else begin
      let active = List.filter (fun c -> not c.c_quarantined) combos in
      if active = [] then reason := Some Exhausted
      else begin
        let batch =
          List.map
            (fun c ->
              let seed =
                iter_seed ~seed:options.Scenario.seed ~round:!round
                  ~label:c.c_label
              in
              let stream = c.c_stream and bucket = c.c_bucket in
              let name =
                program_name ~stream:stream.os_name ~bucket
                  ~ops:cfg.sk_ops_per_exec ~seed
              in
              (* Oracle contexts are per scenario: the reference is a
                 crash-free run of this round's exact op sequence, so
                 it cannot be memoized across rounds.  A faulting
                 reference (fault-storm streams) just runs the
                 scenario oracle-free. *)
              let oracle =
                if not cfg.sk_oracle then None
                else
                  match
                    Runner.prepare_oracle
                      ~options:{ options with Scenario.seed }
                      (program ~stream ~bucket ~ops:cfg.sk_ops_per_exec ~seed)
                  with
                  | prep -> Option.map (fun pr -> pr.Runner.op_ctx) prep
                  | exception _ -> None
              in
              let sc =
                Scenario.make ?oracle ~label:c.c_label ~setup:(setup_of stream)
                  ~pre:(pre_of ~stream ~bucket ~ops:cfg.sk_ops_per_exec ~seed)
                  ~post:(fun () -> stream.os_audit ())
                  ~plan:(plan_of ~points:c.c_points ~seed)
                  ~options:{ options with Scenario.seed }
                  ()
              in
              (c, name, sc))
            active
        in
        let rr = Engine.run ~jobs:cfg.sk_jobs (List.map (fun (_, _, sc) -> sc) batch) in
        let stats = rr.Engine.stats in
        totals.(0) <- totals.(0) + stats.Engine.scenarios;
        totals.(1) <- totals.(1) + stats.Engine.completed;
        totals.(2) <- totals.(2) + stats.Engine.faulted;
        totals.(3) <- totals.(3) + stats.Engine.diverged;
        totals.(5) <- totals.(5) + stats.Engine.executions;
        totals.(6) <- totals.(6) + stats.Engine.ops;
        totals.(7) <- totals.(7) + (cfg.sk_ops_per_exec * List.length active);
        List.iter2
          (fun (c, _, _) res ->
            match res with
            | Engine.Completed comp ->
                if comp.Engine.chain_crashed then totals.(4) <- totals.(4) + 1;
                totals.(8) <- totals.(8) + List.length comp.Engine.races
            | Engine.Faulted f ->
                totals.(8) <- totals.(8) + List.length f.Engine.f_races;
                c.c_faults <- c.c_faults + 1)
          batch rr.Engine.results;
        (* Quarantine decisions happen at the round boundary, after the
           whole batch merged — deterministic for every jobs count. *)
        List.iter
          (fun (c, _, _) ->
            if (not c.c_quarantined) && c.c_faults >= cfg.sk_fault_budget
            then begin
              c.c_quarantined <- true;
              Observe.Log.warn
                (Printf.sprintf
                   "soak: quarantining %s after %d faulted scenario(s) \
                    (budget %d); continuing with the remaining combos"
                   c.c_label c.c_faults cfg.sk_fault_budget)
            end)
          batch;
        on_batch
          (List.map2 (fun (_, name, sc) res -> (name, sc, res)) batch
             rr.Engine.results);
        incr round;
        if
          cfg.sk_checkpoint_every > 0
          && !round mod cfg.sk_checkpoint_every = 0
        then on_checkpoint (snapshot_of ~next_round:!round ~totals ~combos)
      end
    end
  done;
  let r_reason = Option.get !reason in
  {
    r_snapshot = snapshot_of ~next_round:!round ~totals ~combos;
    r_reason;
    r_ok = (match r_reason with Op_budget | Wall_budget -> true | _ -> false);
    r_elapsed_s = Unix.gettimeofday () -. t0;
  }
