(** A failure scenario: one self-contained unit of crash exploration.

    A scenario bundles everything one worker needs to explore a single
    crash point — the trusted setup state, the pre-crash and recovery
    programs, the crash plan and the harness options.  Scenarios are
    pure descriptions: building one runs nothing, and two scenarios
    never share mutable state (a {!Snapshot} is copied before use), so
    the {!Engine} is free to execute them in any order on any domain. *)

type options = {
  mode : Yashme.Detector.mode;
  eadr : bool;  (** eADR persistency semantics (paper, section 7.5) *)
  coherence : bool;  (** condition (2) of Definition 5.1; ablation *)
  check_candidates : bool;  (** check all candidate stores; ablation *)
  sched : Pm_runtime.Executor.sched_policy;
  sb_policy : Px86.Machine.sb_policy;
  variant : Px86.Variant.t;
      (** persistency-model variant (default {!Px86.Variant.strict_tso}) *)
  cut : Px86.Machine.cut_strategy;
  seed : int;
  max_ops : int option;
      (** per-phase fuel budget (deterministic); a phase exceeding it is
          terminated with {!Pm_runtime.Executor.Diverged} *)
  max_wall_s : float option;
      (** per-phase wall-clock budget in seconds (run-dependent) *)
}

val default_options : options

(** {2 Options serialization}

    The witness corpus persists a scenario's options as a flat,
    order-stable field list; {!options_fields} and {!options_of_fields}
    are exact inverses.  [Cut_random] is the one lossy-looking case: it
    serializes by name and its Rng is rebuilt from the serialized seed,
    which reproduces the original draws because the seed fully
    determined them. *)

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

val mode_label : Yashme.Detector.mode -> string
val mode_of_label : string -> Yashme.Detector.mode option
val options_fields : options -> (string * field) list
val options_of_fields : (string * field) list -> (options, string) result

(** True when any option draws from an RNG at exploration time
    ([Random_sched], [Random_drain], [Cut_random]): such witnesses are
    re-searched for a deterministic equivalent by the minimizer. *)
val options_randomized : options -> bool

(** How a scenario obtains the trusted post-setup durable state.

    - [No_setup]: the program has no setup phase; boot from pristine
      memory.
    - [Snapshot cs]: the memoized setup state, computed once per
      program.  Workers take a {!Px86.Crashstate.copy} before running,
      so a scenario can never mutate the shared snapshot.  Only valid
      when the setup phase is seed-independent (eager store-buffer
      drain); {!Engine.materialize_setup} decides.
    - [Run_setup fn]: re-execute the setup phase with the scenario's
      own options (needed when a randomized drain policy makes the
      setup state depend on the scenario seed). *)
type setup =
  | No_setup
  | Snapshot of Px86.Crashstate.t
  | Run_setup of (unit -> unit)

(** The invariant-oracle context a driver may attach ([--oracle]): the
    program's [observe] snapshot hook plus a checker closed over the
    crash-free reference ({!Runner.prepare_oracle} builds it).  Pure
    description like the rest of the scenario; never serialized — a
    consistency witness rebuilds the context from the program at replay
    time. *)
type oracle = {
  oc_observe : unit -> (string * string) list;
  oc_check : observed:(string * string) list -> (string * string) list;
      (** (plan-free violation key, human detail) pairs, sorted *)
}

type t = {
  label : string;
  setup : setup;
  pre : unit -> unit;
  post : unit -> unit;
  plan : Pm_runtime.Executor.plan;  (** crash plan for the pre phase *)
  post_plan : Pm_runtime.Executor.plan;
      (** plan for the {e first} recovery run.  [Run_to_end] for the
          ordinary one-crash scenarios; a crash plan turns the scenario
          into a two-crash one (crash inside recovery, then a second,
          clean recovery — section 6's execution stacks). *)
  options : options;
  oracle : oracle option;
      (** when set and the chain really crashed, the engine runs the
          observe phase (detector-free, sandboxed) and checks it *)
}

val make :
  ?post_plan:Pm_runtime.Executor.plan ->
  ?oracle:oracle ->
  label:string ->
  setup:setup ->
  pre:(unit -> unit) ->
  post:(unit -> unit) ->
  plan:Pm_runtime.Executor.plan ->
  options:options ->
  unit ->
  t

(** Scenario for one crash plan of a {!Program.t}. *)
val of_program :
  ?post_plan:Pm_runtime.Executor.plan ->
  ?oracle:oracle ->
  setup:setup ->
  plan:Pm_runtime.Executor.plan ->
  options:options ->
  Program.t ->
  t

(** False when the scenario's options embed domain-unsafe shared state
    ([Cut_random]'s mutable Rng); the engine then refuses to spread the
    batch over several domains. *)
val parallel_safe : t -> bool
