(** Aggregated findings for one program: persistency races plus
    recovery-failure witnesses.

    Raw race reports are deduplicated by source-level field label — the
    granularity of the paper's Tables 3 and 4 (one row per field).
    Benign (checksum-validated) findings are kept but flagged, matching
    section 7.5.

    Scenario faults captured by the engine ride along: recovery-phase
    faults on a real crash image ({!Finding.is_recovery_failure}) are
    first-class findings — WITCHER-style crash-consistency evidence —
    deduplicated by {!Finding.recovery_failure_key} and rendered with
    the crash plan and seed that reproduce them; all other faults and
    budget divergences are counted and summarized on a [contained]
    line.  Faults must be supplied in submission order so the exemplar
    choice (and thus the report) is byte-identical across [--jobs]
    counts. *)

type finding = {
  label : string;
  benign : bool;
  count : int;  (** raw reports collapsed into this finding *)
  example : Yashme.Race.t;
}

type recovery_failure = {
  rf_key : string;  (** {!Finding.recovery_failure_key} *)
  rf_example : Finding.fault;  (** first observation, submission order *)
  rf_count : int;  (** raw faults collapsed into this finding *)
}

type consistency_violation = {
  cv_key : string;  (** the oracle's plan-free violation key *)
  cv_example : Finding.consistency;  (** first observation *)
  cv_count : int;  (** raw observations collapsed into this finding *)
}

type t = {
  program : string;
  variant : string;
      (** persistency-model variant label ({!Px86.Variant.label});
          rendered as a ["[variant ...]"] line only when it is not
          {!Px86.Variant.default_label}, keeping default-variant
          reports byte-identical to historical output *)
  executions : int;  (** pre/post execution pairs explored *)
  raw_races : int;
  findings : finding list;  (** sorted by label *)
  recovery_failures : recovery_failure list;  (** sorted by key *)
  consistency_violations : consistency_violation list;
      (** invariant-oracle findings, sorted by key; always empty when
          no oracle context was attached, so oracle-off reports render
          byte-identically to pre-oracle output *)
  fault_count : int;
      (** contained faults that are {e not} recovery failures (setup or
          pre-crash phase, or a recovery raising without a crash) *)
  diverged : int;  (** scenarios with a budget-terminated phase *)
  metrics : (string * int) list;
      (** observe-layer counters attributed to this report (empty
          unless attached with {!with_metrics}).  Never rendered by
          {!pp}/{!to_string}: the race report is byte-identical with
          metrics on or off. *)
  coverage : Observe.Coverage.stats option;
      (** crash-space coverage attributed to this report ([None]
          unless attached with {!with_coverage}).  Never rendered by
          {!pp}/{!to_string} for the same byte-identity reason. *)
  attribution : Observe.Attribution.row list;
      (** per-scenario cost-center rows attributed to this report
          (empty unless attached with {!with_attribution}).  Never
          rendered by {!pp}/{!to_string} for the same byte-identity
          reason — rendered by {!pp_attribution}. *)
  oracle : string list option;
      (** inferred invariant labels ([None] unless attached with
          {!with_oracle}).  Never rendered by {!pp}/{!to_string} —
          rendered by {!pp_oracle}. *)
}

(** Deduplicate raw races by field label and [faults] (submission
    order) by recovery-failure key.  A label is benign only if every
    report for it is benign.  [metrics] starts empty; duplicate
    observations are counted on the [report/duplicate_races] counter
    of the global {!Observe.Metrics} registry. *)
val dedup :
  program:string ->
  ?variant:string ->
  executions:int ->
  ?faults:Finding.fault list ->
  ?consistency:Finding.consistency list ->
  ?diverged:int ->
  Yashme.Race.t list ->
  t

(** Attach a metrics block (e.g. an {!Observe.Metrics.diff} covering
    this report's run). *)
val with_metrics : t -> (string * int) list -> t

(** Attach the program's crash-space coverage
    ({!Observe.Coverage.find}). *)
val with_coverage : t -> Observe.Coverage.stats -> t

(** Attach the oracle's inferred invariant labels
    ({!Pm_oracle.Invariant.label} of each, sorted). *)
val with_oracle : t -> string list -> t

(** Attach cost-attribution rows (an {!Observe.Attribution.diff}
    covering this report's run). *)
val with_attribution : t -> Observe.Attribution.row list -> t

(** Real (non-benign) findings. *)
val real : t -> finding list

val benign : t -> finding list

(** Race keys of all findings (benign included), in report order —
    the identity set the witness corpus must cover exactly. *)
val keys : t -> string list

(** Recovery-failure keys, in report order. *)
val recovery_failure_keys : t -> string list

(** Consistency-violation keys, in report order. *)
val consistency_keys : t -> string list

(** Render one recovery-failure finding (key, repro seed, count). *)
val pp_recovery_failure : Format.formatter -> recovery_failure -> unit

(** Render one consistency-violation finding (key, repro seed, count). *)
val pp_consistency_violation : Format.formatter -> consistency_violation -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Render the attached metrics block (name/value per line). *)
val pp_metrics : Format.formatter -> t -> unit

val metrics_to_string : t -> string

(** Render the attached coverage block ({!Observe.Coverage.pp}), or a
    ["(not recorded)"] placeholder when none is attached. *)
val pp_coverage : Format.formatter -> t -> unit

val coverage_to_string : t -> string

(** Render the [\[oracle\]] block: inferred invariant set plus
    per-violation detail, byte-identical across [--jobs] counts; a
    ["(not run)"] placeholder when no oracle was attached. *)
val pp_oracle : Format.formatter -> t -> unit

val oracle_to_string : t -> string

(** Render the attached [\[attribution\]] cost-center table
    ({!Observe.Attribution.pp}, wall clocks included), or a
    ["(not recorded)"] placeholder when none is attached. *)
val pp_attribution : Format.formatter -> t -> unit

val attribution_to_string : t -> string
