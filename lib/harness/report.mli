(** Aggregated race findings for one program.

    Raw race reports are deduplicated by source-level field label — the
    granularity of the paper's Tables 3 and 4 (one row per field).
    Benign (checksum-validated) findings are kept but flagged, matching
    section 7.5. *)

type finding = {
  label : string;
  benign : bool;
  count : int;  (** raw reports collapsed into this finding *)
  example : Yashme.Race.t;
}

type t = {
  program : string;
  executions : int;  (** pre/post execution pairs explored *)
  raw_races : int;
  findings : finding list;  (** sorted by label *)
  metrics : (string * int) list;
      (** observe-layer counters attributed to this report (empty
          unless attached with {!with_metrics}).  Never rendered by
          {!pp}/{!to_string}: the race report is byte-identical with
          metrics on or off. *)
}

(** Deduplicate raw races by field label.  A label is benign only if
    every report for it is benign.  [metrics] starts empty; duplicate
    observations are counted on the [report/duplicate_races] counter
    of the global {!Observe.Metrics} registry. *)
val dedup : program:string -> executions:int -> Yashme.Race.t list -> t

(** Attach a metrics block (e.g. an {!Observe.Metrics.diff} covering
    this report's run). *)
val with_metrics : t -> (string * int) list -> t

(** Real (non-benign) findings. *)
val real : t -> finding list

val benign : t -> finding list
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Render the attached metrics block (name/value per line). *)
val pp_metrics : Format.formatter -> t -> unit

val metrics_to_string : t -> string
