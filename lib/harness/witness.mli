(** Race witnesses: the paper reports each persistency race together
    with "the pre-crash execution prefix E+ combined with the post-crash
    execution E'" (section 5.1).  This module renders that witness from
    a recorded {!Px86.Trace.t} of the racing execution. *)

(** [explain ~trace ~detector ~race ()] renders the racing store, the
    smallest consistent pre-crash prefix observed so far (from the
    execution record's [CVpre]), and the events inside it.  [variant]
    (a {!Px86.Variant.label}) adds a ["[variant ...]"] line when the
    race was found under a non-default persistency model; the default
    renders byte-identically to historical output. *)
val explain :
  ?variant:string ->
  trace:Px86.Trace.t ->
  detector:Yashme.Detector.t ->
  race:Yashme.Race.t ->
  unit ->
  string
