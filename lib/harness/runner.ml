module Executor = Pm_runtime.Executor
module Rng = Yashme_util.Rng

type options = Scenario.options = {
  mode : Yashme.Detector.mode;
  eadr : bool;
  coherence : bool;
  check_candidates : bool;
  sched : Executor.sched_policy;
  sb_policy : Px86.Machine.sb_policy;
  variant : Px86.Variant.t;
  cut : Px86.Machine.cut_strategy;
  seed : int;
  max_ops : int option;
  max_wall_s : float option;
}

let default_options = Scenario.default_options

let pre_exec = Engine.pre_exec
let post_exec = Engine.post_exec

let run_setup = Engine.run_setup

let count_flush_points ?(options = default_options) (p : Program.t) =
  let inherited = run_setup options p in
  let r =
    Engine.run_phase ?inherited ~options ~plan:Executor.Run_to_end
      ~seed:options.seed ~exec_id:pre_exec p.Program.pre
  in
  r.Executor.flush_points

(* Flush-point count against an already materialized setup (the engine
   drivers' variant of {!count_flush_points}; same result, but a
   memoized snapshot is re-hydrated instead of re-running the setup). *)
let count_points ~options ~setup (p : Program.t) =
  let inherited =
    match setup with
    | Scenario.No_setup -> None
    | Scenario.Snapshot cs -> Some (Px86.Crashstate.copy cs)
    | Scenario.Run_setup _ -> run_setup options p
  in
  let r =
    Engine.run_phase ?inherited ~options ~plan:Executor.Run_to_end
      ~seed:options.seed ~exec_id:pre_exec p.Program.pre
  in
  r.Executor.flush_points

let run_once ?(options = default_options) ~plan (p : Program.t) =
  let inherited = run_setup options p in
  let detector =
    Yashme.Detector.create ~mode:options.mode ~eadr:options.eadr
      ~coherence:options.coherence ()
  in
  let pre_result =
    Engine.run_phase ~detector ?inherited ~options ~plan ~seed:options.seed
      ~exec_id:pre_exec p.Program.pre
  in
  let post_result =
    if Engine.crash_fired ~plan pre_result then
      Some
        (Engine.run_recovery ~detector ~options
           ~inherited:pre_result.Executor.state ~seed:(options.seed + 1)
           ~exec_id:post_exec p.Program.post)
    else None
  in
  (detector, pre_result, post_result)

let run_once_traced ?(options = default_options) ~plan (p : Program.t) =
  let inherited = run_setup options p in
  let detector =
    Yashme.Detector.create ~mode:options.mode ~eadr:options.eadr
      ~coherence:options.coherence ()
  in
  let trace, trace_observer = Px86.Trace.recorder () in
  let pre_result =
    Engine.run_phase ~detector ?inherited ~observer:trace_observer ~options ~plan
      ~seed:options.seed ~exec_id:pre_exec p.Program.pre
  in
  if Engine.crash_fired ~plan pre_result then
    ignore
      (Engine.run_recovery ~detector ~options
         ~inherited:pre_result.Executor.state ~seed:(options.seed + 1)
         ~exec_id:post_exec p.Program.post);
  (detector, trace)

(* ------------------------------------------------------------------ *)
(* Invariant-oracle reference preparation                               *)

let m_oracle_invariants = Observe.Metrics.counter "oracle/invariants"

type oracle_prep = {
  op_invariants : Pm_oracle.Invariant.t list;
  op_ctx : Scenario.oracle;
}

(* Build the oracle context for [p]: run the crash-free reference
   pipeline (recovery over a clean workload-free image for the init
   observation; traced workload to completion plus recovery for the
   final observation), infer invariants from the workload trace unless
   a pre-inferred set is supplied, and close the checker over the
   resulting reference.  [None] when the program has no [observe] hook.
   Runs detector-free — reference executions contribute nothing to race
   reports — and raises on reference faults (callers guard, e.g. with
   {!guarded_probe}). *)
let prepare_oracle ?(options = default_options) ?invariants (p : Program.t) =
  match p.Program.observe with
  | None -> None
  | Some observe ->
      let setup = Engine.materialize_setup ~options p in
      let hydrate () =
        match setup with
        | Scenario.No_setup -> None
        | Scenario.Snapshot cs -> Some (Px86.Crashstate.copy cs)
        | Scenario.Run_setup _ -> run_setup options p
      in
      let observe_on st =
        let out = ref [] in
        ignore
          (Engine.run_phase ~inherited:st ~options ~plan:Executor.Run_to_end
             ~seed:(options.seed + 3)
             ~exec_id:(post_exec + 2)
             (fun () -> out := observe ()));
        !out
      in
      (* Init: recovery over a cleanly-shut-down image the workload
         never touched. *)
      let r_init =
        let r =
          Engine.run_phase ?inherited:(hydrate ()) ~options
            ~plan:Executor.Run_to_end ~seed:(options.seed + 1)
            ~exec_id:post_exec p.Program.post
        in
        observe_on r.Executor.state
      in
      (* Final: the workload runs to clean completion (traced), then
         recovery. *)
      let trace, trace_observer = Px86.Trace.recorder () in
      let pre_r =
        Engine.run_phase ?inherited:(hydrate ()) ~observer:trace_observer
          ~options ~plan:Executor.Run_to_end ~seed:options.seed
          ~exec_id:pre_exec p.Program.pre
      in
      let post_r =
        Engine.run_recovery ~options ~inherited:pre_r.Executor.state
          ~seed:(options.seed + 1) ~exec_id:post_exec p.Program.post
      in
      let r_final = observe_on post_r.Executor.state in
      let r_invariants =
        match invariants with
        | Some invs -> List.sort_uniq Pm_oracle.Invariant.compare invs
        | None -> Pm_oracle.Invariant.infer (Px86.Trace.entries trace)
      in
      List.iter
        (fun _ -> Observe.Metrics.incr m_oracle_invariants)
        r_invariants;
      let reference = { Pm_oracle.Check.r_init; r_final; r_invariants } in
      Some
        {
          op_invariants = r_invariants;
          op_ctx =
            {
              Scenario.oc_observe = observe;
              oc_check =
                (fun ~observed ->
                  List.map
                    (fun (v : Pm_oracle.Check.violation) ->
                      (v.Pm_oracle.Check.v_key, v.Pm_oracle.Check.v_detail))
                    (Pm_oracle.Check.check reference ~observed));
            };
        }

let oracle_invariant_labels prep =
  List.map Pm_oracle.Invariant.label prep.op_invariants

(* ------------------------------------------------------------------ *)
(* Model checking: one scenario per flush point (plus crash-at-end),    *)
(* explored by the engine.                                              *)

let model_check_plans points =
  List.init points (fun n -> Executor.Crash_before_flush n)
  @ [ Executor.Crash_at_end ]

(* ------------------------------------------------------------------ *)
(* Driver-level fault containment                                      *)

(* The drivers probe a program (materialize the setup, count flush
   points) before any sandboxed scenario runs.  A program whose setup
   raises would otherwise take the whole driver down, so the probes are
   guarded too: a probe fault yields a report holding that single
   fault and no scenarios. *)
let guarded_probe ~(options : options) (p : Program.t) f =
  match f () with
  | v -> Ok v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Error
        {
          Finding.label = p.Program.name;
          phase = Finding.Setup;
          exn_text = Printexc.to_string e;
          backtrace = Printexc.raw_backtrace_to_string bt;
          plan = "probe";
          post_plan = "probe";
          seed = options.seed;
          crash_fired = false;
        }

let empty_stats ~jobs =
  {
    Engine.jobs;
    scenarios = 0;
    completed = 0;
    faulted = 0;
    diverged = 0;
    cancelled = 0;
    executions = 0;
    ops = 0;
    cpu_s = 0.;
    elapsed_s = 0.;
  }

(* Build the per-program report of an engine run: deduplicated races,
   recovery-failure witnesses, consistency violations and
   contained-fault counts, all derived from the submission-ordered
   result list. *)
let report_of_run ~program ~(options : options) ~executions ?consistency
    ?oracle run =
  let r =
    Report.dedup ~program
      ~variant:(Px86.Variant.label options.variant)
      ~executions ~faults:(Engine.faults run) ?consistency
      ~diverged:(Engine.diverged_count run)
      (Engine.races run)
  in
  match oracle with
  | None -> r
  | Some invariants -> Report.with_oracle r invariants

(* ------------------------------------------------------------------ *)
(* Outcomes: report + stats + the scenario/result pairs behind them    *)

type evidence = Full | Faults_only

type outcome = {
  o_report : Report.t;
  o_stats : Engine.stats;
  o_pairs : (Scenario.t * Engine.scenario_result * evidence) list;
}

let probe_outcome ~program ~(options : options) ~jobs fault =
  {
    o_report =
      Report.dedup ~program
        ~variant:(Px86.Variant.label options.variant)
        ~executions:0 ~faults:[ fault ] [];
    o_stats = empty_stats ~jobs;
    o_pairs = [];
  }

(* Zip a batch with its submission-ordered results, tagging every pair
   [Full]: both its races and its fault (if any) reach the report. *)
let full_pairs scenarios (run : Engine.run_result) =
  List.map2 (fun s r -> (s, r, Full)) scenarios run.Engine.results

(* Consistency findings of a run's [Full] pairs, in submission order —
   mirrors exactly which violations the corpus extractor will emit. *)
let consistencies_of_pairs pairs =
  List.concat_map
    (fun ((s : Scenario.t), (r : Engine.scenario_result), ev) ->
      match (r, ev) with
      | Engine.Completed c, Full ->
          List.map
            (fun (key, detail) ->
              {
                Finding.c_label = s.Scenario.label;
                c_key = key;
                c_detail = detail;
                c_plan = Executor.plan_label s.Scenario.plan;
                c_post_plan = Executor.plan_label s.Scenario.post_plan;
                c_seed = s.Scenario.options.Scenario.seed;
              })
            c.Engine.violations
      | (Engine.Completed _ | Engine.Faulted _), _ -> [])
    pairs

let model_check_outcome ?(options = default_options) ?(jobs = 1)
    ?(fail_fast = false) ?(oracle = false) ?invariants (p : Program.t) =
  match
    guarded_probe ~options p (fun () ->
        let setup = Engine.materialize_setup ~options p in
        let prep =
          if oracle then prepare_oracle ~options ?invariants p else None
        in
        (setup, count_points ~options ~setup p, prep))
  with
  | Error fault -> probe_outcome ~program:p.Program.name ~options ~jobs fault
  | Ok (setup, points, prep) ->
      let octx = Option.map (fun pr -> pr.op_ctx) prep in
      let scenarios =
        List.map
          (fun plan -> Scenario.of_program ?oracle:octx ~setup ~plan ~options p)
          (model_check_plans points)
      in
      let run = Engine.run ~jobs ~fail_fast scenarios in
      let pairs = full_pairs scenarios run in
      {
        o_report =
          report_of_run ~program:p.Program.name ~options
            ~executions:(List.length scenarios)
            ~consistency:(consistencies_of_pairs pairs)
            ?oracle:(Option.map oracle_invariant_labels prep)
            run;
        o_stats = run.Engine.stats;
        o_pairs = pairs;
      }

let model_check_run ?options ?jobs ?fail_fast ?oracle p =
  let o = model_check_outcome ?options ?jobs ?fail_fast ?oracle p in
  (o.o_report, o.o_stats)

let model_check ?options ?jobs ?fail_fast p =
  fst (model_check_run ?options ?jobs ?fail_fast p)

(* Reference sequential implementation (the pre-engine plan loop); the
   determinism suite checks the engine against it at every job count. *)
let model_check_seq ?(options = default_options) (p : Program.t) =
  let points = count_flush_points ~options p in
  let plans = model_check_plans points in
  let races =
    List.concat_map
      (fun plan ->
        let detector, _, _ = run_once ~options ~plan p in
        Yashme.Detector.races detector)
      plans
  in
  Report.dedup ~program:p.Program.name
    ~variant:(Px86.Variant.label options.variant)
    ~executions:(List.length plans) races

(* ------------------------------------------------------------------ *)
(* Recovery model checking: two-crash failure scenarios (section 6).    *)

(* Model-check the recovery procedure itself: for each pre-crash point,
   crash the recovery at each of ITS flush points and run a second
   recovery — the two-crash failure scenarios of section 6 ("a
   persistency race in the recovery procedure would require two
   crashes").  Wave 1 probes each pre-crash point for the recovery's
   own flush points; wave 2 explores the (pre point x recovery point)
   grid.  Both waves are engine batches. *)
let model_check_recovery_outcome ?(options = default_options) ?(jobs = 1)
    ?(fail_fast = false) ?(oracle = false) (p : Program.t) =
  let program = p.Program.name ^ "+recovery" in
  match
    guarded_probe ~options p (fun () ->
        let setup = Engine.materialize_setup ~options p in
        let prep = if oracle then prepare_oracle ~options p else None in
        (setup, count_points ~options ~setup p, prep))
  with
  | Error fault -> probe_outcome ~program ~options ~jobs fault
  | Ok (setup, points, prep) ->
      let octx = Option.map (fun pr -> pr.op_ctx) prep in
      let pre_plans = model_check_plans points in
      let probe_scenarios =
        List.map (fun plan -> Scenario.of_program ~setup ~plan ~options p) pre_plans
      in
      let probes = Engine.run ~jobs ~fail_fast probe_scenarios in
      (* A probe that faulted contributes no grid scenarios; its fault
         still reaches the report below. *)
      let scenarios =
        List.concat_map
          (fun (plan, probe) ->
            match (probe : Engine.scenario_result) with
            | Engine.Faulted _ -> []
            | Engine.Completed c ->
                if not c.Engine.chain_crashed then []
                else
                  let post_points =
                    Option.value ~default:0 c.Engine.post_flush_points
                  in
                  List.init post_points (fun post_n ->
                      Scenario.of_program ?oracle:octx ~setup ~plan
                        ~post_plan:(Executor.Crash_before_flush post_n)
                        ~options p))
          (List.combine pre_plans probes.Engine.results)
      in
      let run = Engine.run ~jobs ~fail_fast scenarios in
      let keep (c : Engine.completed) = c.Engine.chain_crashed in
      let executions =
        List.length
          (List.filter
             (function
               | Engine.Completed c -> keep c
               | Engine.Faulted _ -> false)
             run.Engine.results)
      in
      (* Evidence tags mirror the report exactly: probe races never
         reach it (the probe wave only sizes the grid), probe faults
         do; grid races only count when the whole chain crashed. *)
      let probe_pairs =
        List.map2
          (fun s r -> (s, r, Faults_only))
          probe_scenarios probes.Engine.results
      in
      let grid_pairs =
        List.map2
          (fun s (r : Engine.scenario_result) ->
            match r with
            | Engine.Completed c when not (keep c) -> (s, r, Faults_only)
            | Engine.Completed _ | Engine.Faulted _ -> (s, r, Full))
          scenarios run.Engine.results
      in
      (* Probe-wave faults and divergences ride along, in probe-then-grid
         submission order. *)
      let report =
        Report.dedup ~program
          ~variant:(Px86.Variant.label options.variant)
          ~executions
          ~faults:(Engine.faults probes @ Engine.faults run)
          ~consistency:(consistencies_of_pairs grid_pairs)
          ~diverged:(Engine.diverged_count probes + Engine.diverged_count run)
          (Engine.races ~keep run)
      in
      let report =
        match prep with
        | None -> report
        | Some pr -> Report.with_oracle report (oracle_invariant_labels pr)
      in
      {
        o_report = report;
        o_stats = run.Engine.stats;
        o_pairs = probe_pairs @ grid_pairs;
      }

let model_check_recovery_run ?options ?jobs ?fail_fast ?oracle p =
  let o = model_check_recovery_outcome ?options ?jobs ?fail_fast ?oracle p in
  (o.o_report, o.o_stats)

let model_check_recovery ?options ?jobs ?fail_fast p =
  fst (model_check_recovery_run ?options ?jobs ?fail_fast p)

let model_check_recovery_seq ?(options = default_options) (p : Program.t) =
  let pre_points = count_flush_points ~options p in
  let pre_plans = model_check_plans pre_points in
  let races = ref [] in
  let executions = ref 0 in
  List.iter
    (fun pre_plan ->
      (* Count the recovery's own flush points for this pre-crash state. *)
      let inherited = run_setup options p in
      let probe_detector = Yashme.Detector.create ~mode:options.mode () in
      let pre_result =
        Engine.run_phase ~detector:probe_detector ?inherited ~options
          ~plan:pre_plan ~seed:options.seed ~exec_id:pre_exec p.Program.pre
      in
      if Engine.crash_fired ~plan:pre_plan pre_result then begin
        let post_probe =
          Engine.run_recovery ~detector:probe_detector ~options
            ~inherited:pre_result.Executor.state ~seed:(options.seed + 1)
            ~exec_id:post_exec p.Program.post
        in
        let post_points = post_probe.Executor.flush_points in
        (* Now re-run with a crash inside the recovery at each point,
           followed by a second recovery. *)
        List.iter
          (fun post_n ->
            let inherited = run_setup options p in
            let detector =
              Yashme.Detector.create ~mode:options.mode ~eadr:options.eadr
                ~coherence:options.coherence ()
            in
            let r1 =
              Engine.run_phase ~detector ?inherited ~options ~plan:pre_plan
                ~seed:options.seed ~exec_id:pre_exec p.Program.pre
            in
            let r2 =
              Engine.run_phase ~detector ~inherited:r1.Executor.state ~options
                ~plan:(Executor.Crash_before_flush post_n)
                ~seed:(options.seed + 1) ~exec_id:post_exec p.Program.post
            in
            if r2.Executor.outcome = Executor.Crashed then begin
              let _ =
                Engine.run_recovery ~detector ~options
                  ~inherited:r2.Executor.state ~seed:(options.seed + 2)
                  ~exec_id:(post_exec + 1) p.Program.post
              in
              incr executions;
              races := Yashme.Detector.races detector @ !races
            end)
          (List.init post_points (fun n -> n))
      end)
    pre_plans;
  Report.dedup ~program:(p.Program.name ^ "+recovery")
    ~variant:(Px86.Variant.label options.variant)
    ~executions:!executions !races

(* ------------------------------------------------------------------ *)
(* Random mode                                                          *)

let random_plan rng points =
  let n = Rng.int rng (points + 1) in
  if n = points then Executor.Crash_at_end else Executor.Crash_before_flush n

let program_seed (p : Program.t) seed =
  (* Decorrelate programs sharing a numeric seed. *)
  Hashtbl.hash (p.Program.name, seed)

(* Per-execution options and crash plan of random mode.  Plans are
   drawn sequentially from one generator, so they are materialized up
   front (in draw order) before the engine spreads the executions over
   domains. *)
let random_scenarios ~options ~execs (p : Program.t) =
  let rng = Rng.create options.seed in
  let setup = Engine.materialize_setup ~options p in
  let points = max 1 (count_points ~options ~setup p) in
  let rec build i acc =
    if i >= execs then List.rev acc
    else
      let seed = options.seed + (7919 * (i + 1)) in
      let options = { options with seed; sched = Executor.Random_sched } in
      let plan = random_plan rng points in
      build (i + 1) (Scenario.of_program ~setup ~plan ~options p :: acc)
  in
  build 0 []

let random_mode_outcome ?(options = default_options) ?(jobs = 1)
    ?(fail_fast = false) ?(oracle = false) ~execs (p : Program.t) =
  let options = { options with seed = program_seed p options.seed } in
  match
    guarded_probe ~options p (fun () ->
        let prep = if oracle then prepare_oracle ~options p else None in
        (random_scenarios ~options ~execs p, prep))
  with
  | Error fault -> probe_outcome ~program:p.Program.name ~options ~jobs fault
  | Ok (scenarios, prep) ->
      let scenarios =
        match prep with
        | None -> scenarios
        | Some pr ->
            List.map
              (fun (s : Scenario.t) -> { s with Scenario.oracle = Some pr.op_ctx })
              scenarios
      in
      let run = Engine.run ~jobs ~fail_fast scenarios in
      let pairs = full_pairs scenarios run in
      {
        o_report =
          report_of_run ~program:p.Program.name ~options ~executions:execs
            ~consistency:(consistencies_of_pairs pairs)
            ?oracle:(Option.map oracle_invariant_labels prep)
            run;
        o_stats = run.Engine.stats;
        o_pairs = pairs;
      }

let random_mode_run ?options ?jobs ?fail_fast ?oracle ~execs p =
  let o = random_mode_outcome ?options ?jobs ?fail_fast ?oracle ~execs p in
  (o.o_report, o.o_stats)

let random_mode ?options ?jobs ?fail_fast ~execs p =
  fst (random_mode_run ?options ?jobs ?fail_fast ~execs p)

let random_mode_seq ?(options = default_options) ~execs (p : Program.t) =
  let options = { options with seed = program_seed p options.seed } in
  let rng = Rng.create options.seed in
  let points = max 1 (count_flush_points ~options p) in
  let races =
    List.concat_map
      (fun i ->
        let seed = options.seed + (7919 * (i + 1)) in
        let options = { options with seed; sched = Executor.Random_sched } in
        let plan = random_plan rng points in
        let detector, _, _ = run_once ~options ~plan p in
        Yashme.Detector.races detector)
      (List.init execs (fun i -> i))
  in
  Report.dedup ~program:p.Program.name
    ~variant:(Px86.Variant.label options.variant)
    ~executions:execs races

let single_random ?(options = default_options) (p : Program.t) =
  random_mode ~options ~execs:1 p

(* ------------------------------------------------------------------ *)
(* Timing                                                               *)

(* Wall-clock, not [Sys.time]: CPU time misreports parallel runs and
   undercounts anything that blocks. *)
let time_run f =
  let t0 = Unix.gettimeofday () in
  let _ = f () in
  Unix.gettimeofday () -. t0

let time_with_detector ?(options = default_options) (p : Program.t) =
  time_run (fun () -> single_random ~options p)

let time_without_detector ?(options = default_options) (p : Program.t) =
  time_run (fun () ->
      let options = { options with seed = program_seed p options.seed } in
      let rng = Rng.create options.seed in
      let points = max 1 (count_flush_points ~options p) in
      let plan = random_plan rng points in
      let inherited = run_setup options p in
      let options = { options with sched = Executor.Random_sched } in
      let pre_result =
        Engine.run_phase ?inherited ~options ~plan
          ~seed:(options.seed + 7919)
          ~exec_id:pre_exec p.Program.pre
      in
      if pre_result.Executor.outcome = Executor.Crashed then
        ignore
          (Engine.run_recovery ~options ~inherited:pre_result.Executor.state
             ~seed:(options.seed + 7920)
             ~exec_id:post_exec p.Program.post))
