(** The two operating modes of Yashme (paper, section 4):

    - {!model_check} systematically injects a crash before every flush
      and fence operation of the pre-crash workload (plus one crash at
      program end) and runs recovery after each — suitable for the PM
      index benchmarks;
    - {!random_mode} runs [execs] randomized executions (random thread
      schedules and a crash before a random fence) — used for the larger
      PMDK / Memcached / Redis programs.

    Both run every post-crash load through the detector, checking all
    candidate stores.

    Since the engine refactor, both modes are thin strategy drivers
    over {!Engine}: they enumerate the crash plans, build one
    {!Scenario.t} per plan against a memoized setup snapshot, and hand
    the batch to the engine's domain pool.  [jobs] (default 1) selects
    the number of worker domains; the deduplicated report is identical
    for every job count.

    {b Fault isolation.}  The engine sandboxes every scenario phase, so
    a raising or budget-exceeding scenario never takes down the driver:
    its fault (or divergence) is merged into the {!Report} alongside
    the races, and recovery-phase faults on a real crash image become
    recovery-failure findings.  The drivers additionally guard their
    own un-sandboxed probes (setup materialization, flush-point
    counting): a probe fault yields a report carrying that single fault
    and zero executions.  [fail_fast] (default false) instead cancels
    the remaining batch on the first fault and re-raises it with its
    original backtrace. *)

type options = Scenario.options = {
  mode : Yashme.Detector.mode;
  eadr : bool;  (** eADR persistency semantics (paper, section 7.5) *)
  coherence : bool;  (** condition (2) of Definition 5.1; ablation *)
  check_candidates : bool;  (** check all candidate stores; ablation *)
  sched : Pm_runtime.Executor.sched_policy;
  sb_policy : Px86.Machine.sb_policy;
  variant : Px86.Variant.t;
      (** persistency-model variant (default {!Px86.Variant.strict_tso}) *)
  cut : Px86.Machine.cut_strategy;
  seed : int;
  max_ops : int option;
      (** per-phase fuel budget (scheduled operations); deterministic *)
  max_wall_s : float option;
      (** per-phase wall-clock budget; a nondeterministic last resort *)
}

val default_options : options

(** Count the flush/fence crash points of the program's pre-crash phase
    (dry run, no detector). *)
val count_flush_points : ?options:options -> Program.t -> int

(** One pre-crash execution under [plan], then recovery.  Returns the
    detector (holding raw races) and the executor results. *)
val run_once :
  ?options:options ->
  plan:Pm_runtime.Executor.plan ->
  Program.t ->
  Yashme.Detector.t * Pm_runtime.Executor.result * Pm_runtime.Executor.result option

(** Like {!run_once}, additionally recording the pre-crash execution's
    commit trace, for rendering race witnesses with {!Witness.explain}. *)
val run_once_traced :
  ?options:options ->
  plan:Pm_runtime.Executor.plan ->
  Program.t ->
  Yashme.Detector.t * Px86.Trace.t

(** {2 The invariant oracle}

    With [?oracle:true], each driver prepares a WITCHER-style oracle
    context before exploration: the crash-free reference pipeline runs
    (recovery over a clean workload-free image, then a traced full
    workload run plus recovery), invariants are inferred from the
    workload trace ({!Pm_oracle.Invariant.infer}), and every scenario
    carries the resulting {!Scenario.oracle} context so the engine
    checks each crashed-and-recovered state.  Violations surface as
    {!Report.consistency_violations} and the inferred invariant labels
    are attached for {!Report.pp_oracle}.  Programs without an
    [observe] hook run exactly as with the oracle off. *)

type oracle_prep = {
  op_invariants : Pm_oracle.Invariant.t list;  (** sorted *)
  op_ctx : Scenario.oracle;
}

(** Build the oracle context for a program: [None] when it has no
    [observe] hook.  [invariants] substitutes a pre-inferred set (the
    [oracle check --invariants] path) for trace inference.  Reference
    executions run detector-free and contribute nothing to race
    reports.  Raises on reference faults — callers guard (the drivers
    use their probe guard). *)
val prepare_oracle :
  ?options:options ->
  ?invariants:Pm_oracle.Invariant.t list ->
  Program.t ->
  oracle_prep option

val oracle_invariant_labels : oracle_prep -> string list

(** {2 Outcomes}

    The corpus subsystem needs more than the deduplicated report: to
    serialize a race witness it must know {e which scenario} (crash
    plan, seed, options) first produced each race key.  Each driver
    therefore has an [_outcome] variant returning the report, the
    engine statistics {e and} the submission-ordered scenario/result
    pairs behind them.  Every pair carries an {!evidence} tag mirroring
    exactly what the report kept: [Full] pairs contribute races and
    faults, [Faults_only] pairs only faults (the recovery driver's
    probe wave, and grid scenarios whose chain did not fully crash —
    their races are not in the report, so no witness may cite them). *)

type evidence = Full | Faults_only

type outcome = {
  o_report : Report.t;
  o_stats : Engine.stats;
  o_pairs : (Scenario.t * Engine.scenario_result * evidence) list;
      (** submission order: probe wave first for the recovery driver *)
}

val model_check_outcome :
  ?options:options ->
  ?jobs:int ->
  ?fail_fast:bool ->
  ?oracle:bool ->
  ?invariants:Pm_oracle.Invariant.t list ->
  Program.t ->
  outcome

val model_check_recovery_outcome :
  ?options:options ->
  ?jobs:int ->
  ?fail_fast:bool ->
  ?oracle:bool ->
  Program.t ->
  outcome

val random_mode_outcome :
  ?options:options ->
  ?jobs:int ->
  ?fail_fast:bool ->
  ?oracle:bool ->
  execs:int ->
  Program.t ->
  outcome

(** Consistency findings of an outcome's [Full] pairs, in submission
    order — what {!Report.dedup} received and the corpus extractor
    emits. *)
val consistencies_of_pairs :
  (Scenario.t * Engine.scenario_result * evidence) list ->
  Finding.consistency list

val model_check :
  ?options:options -> ?jobs:int -> ?fail_fast:bool -> Program.t -> Report.t

(** {!model_check} plus the engine's batch statistics (throughput
    accounting for the bench harness). *)
val model_check_run :
  ?options:options ->
  ?jobs:int ->
  ?fail_fast:bool ->
  ?oracle:bool ->
  Program.t ->
  Report.t * Engine.stats

(** Two-crash failure scenarios (section 6's execution stack): for every
    pre-crash point, also crash the {e recovery} before each of its own
    flush points and run a second recovery — the only way to find
    persistency races in recovery code. *)
val model_check_recovery :
  ?options:options -> ?jobs:int -> ?fail_fast:bool -> Program.t -> Report.t

val model_check_recovery_run :
  ?options:options ->
  ?jobs:int ->
  ?fail_fast:bool ->
  ?oracle:bool ->
  Program.t ->
  Report.t * Engine.stats

val random_mode :
  ?options:options ->
  ?jobs:int ->
  ?fail_fast:bool ->
  execs:int ->
  Program.t ->
  Report.t

val random_mode_run :
  ?options:options ->
  ?jobs:int ->
  ?fail_fast:bool ->
  ?oracle:bool ->
  execs:int ->
  Program.t ->
  Report.t * Engine.stats

(** Reference sequential implementations (the pre-engine plan loops).
    The determinism suite asserts the engine reproduces their reports
    exactly at every job count; they also remain the simplest oracle
    for debugging the engine itself. *)

val model_check_seq : ?options:options -> Program.t -> Report.t
val model_check_recovery_seq : ?options:options -> Program.t -> Report.t
val random_mode_seq : ?options:options -> execs:int -> Program.t -> Report.t

(** [single_random ~seed] is one random-mode execution pair, the
    experiment Table 5 reports ("a single randomly generated
    execution"). *)
val single_random : ?options:options -> Program.t -> Report.t

(** Wall-clock seconds spent in [f ()]. *)
val time_run : (unit -> 'a) -> float

(** Run one random execution pair without any detector, measuring the
    bare infrastructure (the paper's "Jaaru time" column).  Returns
    wall-clock seconds. *)
val time_without_detector : ?options:options -> Program.t -> float

(** Wall-clock seconds for [single_random] (the "Yashme time" column). *)
val time_with_detector : ?options:options -> Program.t -> float
