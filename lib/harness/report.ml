type finding = {
  label : string;
  benign : bool;
  count : int;
  example : Yashme.Race.t;
}

type recovery_failure = {
  rf_key : string;
  rf_example : Finding.fault;
  rf_count : int;
}

type consistency_violation = {
  cv_key : string;
  cv_example : Finding.consistency;
  cv_count : int;
}

type t = {
  program : string;
  variant : string;
      (* persistency-model variant label; rendered (as a "[variant ...]"
         line) only when it is not the default, so historical reports
         stay byte-identical *)
  executions : int;
  raw_races : int;
  findings : finding list;
  recovery_failures : recovery_failure list;
  consistency_violations : consistency_violation list;
      (* invariant-oracle findings, sorted by key; empty unless the run
         attached an oracle context, so oracle-off reports are
         byte-identical to pre-oracle output *)
  fault_count : int;
  diverged : int;
  metrics : (string * int) list;
      (* observe-layer counters attributed to this report (e.g. the
         per-program Metrics.diff the CLI attaches under --metrics);
         deliberately excluded from [pp]/[to_string] so the race
         report stays byte-identical with metrics on or off *)
  coverage : Observe.Coverage.stats option;
      (* crash-space coverage attributed to this report (attached by
         the CLI under --coverage); excluded from [pp]/[to_string] for
         the same byte-identity reason — rendered by [pp_coverage] *)
  attribution : Observe.Attribution.row list;
      (* cost-center rows attributed to this report (attached by the
         CLI under --attribution / --ledger); excluded from
         [pp]/[to_string] — rendered by [pp_attribution] *)
  oracle : string list option;
      (* the inferred invariant labels ([--oracle] only); rendered by
         [pp_oracle], never by [pp]/[to_string] *)
}

let m_duplicates = Observe.Metrics.counter "report/duplicate_races"

let dedup ~program ?(variant = Px86.Variant.default_label) ~executions
    ?(faults = []) ?(consistency = []) ?(diverged = 0) races =
  let tbl : (string, finding) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Yashme.Race.t) ->
      let key = Yashme.Race.dedup_key r in
      match Hashtbl.find_opt tbl key with
      | None ->
          Hashtbl.add tbl key
            { label = key; benign = r.Yashme.Race.benign; count = 1; example = r }
      | Some f ->
          Observe.Metrics.incr m_duplicates;
          Hashtbl.replace tbl key
            {
              f with
              count = f.count + 1;
              (* a finding is benign only if every observation was *)
              benign = f.benign && r.Yashme.Race.benign;
            })
    races;
  let findings =
    Hashtbl.fold (fun _ f acc -> f :: acc) tbl []
    |> List.sort (fun a b -> compare a.label b.label)
  in
  (* Faults arrive in submission order; the exemplar of each
     recovery-failure key is the first observation, so the report is
     independent of which domain hit it first. *)
  let rf_tbl : (string, recovery_failure) Hashtbl.t = Hashtbl.create 8 in
  let fault_count = ref 0 in
  List.iter
    (fun (f : Finding.fault) ->
      if Finding.is_recovery_failure f then begin
        let key = Finding.recovery_failure_key f in
        match Hashtbl.find_opt rf_tbl key with
        | None -> Hashtbl.add rf_tbl key { rf_key = key; rf_example = f; rf_count = 1 }
        | Some r -> Hashtbl.replace rf_tbl key { r with rf_count = r.rf_count + 1 }
      end
      else incr fault_count)
    faults;
  let recovery_failures =
    Hashtbl.fold (fun _ r acc -> r :: acc) rf_tbl []
    |> List.sort (fun a b -> compare a.rf_key b.rf_key)
  in
  (* Consistency violations arrive in submission order; like recovery
     failures, the exemplar of each key is the first observation. *)
  let cv_tbl : (string, consistency_violation) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (c : Finding.consistency) ->
      let key = Finding.consistency_key c in
      match Hashtbl.find_opt cv_tbl key with
      | None ->
          Hashtbl.add cv_tbl key { cv_key = key; cv_example = c; cv_count = 1 }
      | Some v -> Hashtbl.replace cv_tbl key { v with cv_count = v.cv_count + 1 })
    consistency;
  let consistency_violations =
    Hashtbl.fold (fun _ v acc -> v :: acc) cv_tbl []
    |> List.sort (fun a b -> compare a.cv_key b.cv_key)
  in
  {
    program;
    variant;
    executions;
    raw_races = List.length races;
    findings;
    recovery_failures;
    consistency_violations;
    fault_count = !fault_count;
    diverged;
    metrics = [];
    coverage = None;
    attribution = [];
    oracle = None;
  }

let with_metrics t metrics = { t with metrics }
let with_oracle t invariants = { t with oracle = Some invariants }
let with_coverage t coverage = { t with coverage = Some coverage }
let with_attribution t attribution = { t with attribution }

let real t = List.filter (fun f -> not f.benign) t.findings
let benign t = List.filter (fun f -> f.benign) t.findings

(* Key projections for the corpus round-trip property: every witness
   emitted for a run must map onto exactly these keys. *)
let keys t = List.map (fun f -> f.label) t.findings
let recovery_failure_keys t = List.map (fun r -> r.rf_key) t.recovery_failures
let consistency_keys t = List.map (fun v -> v.cv_key) t.consistency_violations

let pp_recovery_failure ppf r =
  Format.fprintf ppf "[recovery-failure] %s (seed %d) (%d report%s)" r.rf_key
    r.rf_example.Finding.seed r.rf_count
    (if r.rf_count = 1 then "" else "s")

let pp_consistency_violation ppf v =
  Format.fprintf ppf "[consistency-violation] %s (seed %d) (%d report%s)"
    v.cv_key v.cv_example.Finding.c_seed v.cv_count
    (if v.cv_count = 1 then "" else "s")

let pp_contained ppf t =
  if t.fault_count > 0 || t.diverged > 0 then
    Format.fprintf ppf "@,  [contained] %d scenario fault(s), %d diverged (budget)"
      t.fault_count t.diverged

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d distinct persistency race(s) (%d raw, %d benign) in %d execution(s)"
    t.program
    (List.length (real t))
    t.raw_races
    (List.length (benign t))
    t.executions;
  if t.variant <> Px86.Variant.default_label then
    Format.fprintf ppf "@,  [variant %s]" t.variant;
  List.iter
    (fun f ->
      Format.fprintf ppf "@,  %s %s (%d report%s)"
        (if f.benign then "[benign]" else "[race]  ")
        f.label f.count
        (if f.count = 1 then "" else "s"))
    t.findings;
  List.iter
    (fun r -> Format.fprintf ppf "@,  %a" pp_recovery_failure r)
    t.recovery_failures;
  List.iter
    (fun v -> Format.fprintf ppf "@,  %a" pp_consistency_violation v)
    t.consistency_violations;
  pp_contained ppf t;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let pp_metrics ppf t =
  Format.fprintf ppf "@[<v>%s metrics:" t.program;
  if t.metrics = [] then Format.fprintf ppf "@,  (none recorded)"
  else
    List.iter
      (fun (name, v) -> Format.fprintf ppf "@,  %-42s %d" name v)
      t.metrics;
  Format.fprintf ppf "@]"

let metrics_to_string t = Format.asprintf "%a" pp_metrics t

let pp_coverage ppf t =
  match t.coverage with
  | None -> Format.fprintf ppf "@[<v>%s coverage:@,  (not recorded)@]" t.program
  | Some c -> Observe.Coverage.pp ppf c

let coverage_to_string t = Format.asprintf "%a" pp_coverage t

(* The [oracle] block: the inferred invariant set plus per-violation
   detail.  Deterministic — the invariant list is sorted at inference
   and violations are sorted by key — so the block is byte-identical
   across --jobs counts. *)
let pp_oracle ppf t =
  match t.oracle with
  | None -> Format.fprintf ppf "[oracle] %s: (not run)" t.program
  | Some invariants ->
      Format.fprintf ppf
        "@[<v>[oracle] %s: %d inferred invariant(s), %d violation(s)"
        t.program (List.length invariants)
        (List.length t.consistency_violations);
      List.iter (fun l -> Format.fprintf ppf "@,  %s" l) invariants;
      List.iter
        (fun v ->
          Format.fprintf ppf "@,  %s: %s" v.cv_key
            v.cv_example.Finding.c_detail)
        t.consistency_violations;
      Format.fprintf ppf "@]"

let oracle_to_string t = Format.asprintf "%a" pp_oracle t

let pp_attribution ppf t =
  if t.attribution = [] then
    Format.fprintf ppf "[attribution] %s: (not recorded)" t.program
  else Observe.Attribution.pp ppf t.attribution

let attribution_to_string t = Format.asprintf "%a" pp_attribution t
