type finding = {
  label : string;
  benign : bool;
  count : int;
  example : Yashme.Race.t;
}

type t = {
  program : string;
  executions : int;
  raw_races : int;
  findings : finding list;
  metrics : (string * int) list;
      (* observe-layer counters attributed to this report (e.g. the
         per-program Metrics.diff the CLI attaches under --metrics);
         deliberately excluded from [pp]/[to_string] so the race
         report stays byte-identical with metrics on or off *)
}

let m_duplicates = Observe.Metrics.counter "report/duplicate_races"

let dedup ~program ~executions races =
  let tbl : (string, finding) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Yashme.Race.t) ->
      let key = Yashme.Race.dedup_key r in
      match Hashtbl.find_opt tbl key with
      | None ->
          Hashtbl.add tbl key
            { label = key; benign = r.Yashme.Race.benign; count = 1; example = r }
      | Some f ->
          Observe.Metrics.incr m_duplicates;
          Hashtbl.replace tbl key
            {
              f with
              count = f.count + 1;
              (* a finding is benign only if every observation was *)
              benign = f.benign && r.Yashme.Race.benign;
            })
    races;
  let findings =
    Hashtbl.fold (fun _ f acc -> f :: acc) tbl []
    |> List.sort (fun a b -> compare a.label b.label)
  in
  { program; executions; raw_races = List.length races; findings; metrics = [] }

let with_metrics t metrics = { t with metrics }

let real t = List.filter (fun f -> not f.benign) t.findings
let benign t = List.filter (fun f -> f.benign) t.findings

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d distinct persistency race(s) (%d raw, %d benign) in %d execution(s)"
    t.program
    (List.length (real t))
    t.raw_races
    (List.length (benign t))
    t.executions;
  List.iter
    (fun f ->
      Format.fprintf ppf "@,  %s %s (%d report%s)"
        (if f.benign then "[benign]" else "[race]  ")
        f.label f.count
        (if f.count = 1 then "" else "s"))
    t.findings;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let pp_metrics ppf t =
  Format.fprintf ppf "@[<v>%s metrics:" t.program;
  if t.metrics = [] then Format.fprintf ppf "@,  (none recorded)"
  else
    List.iter
      (fun (name, v) -> Format.fprintf ppf "@,  %-42s %d" name v)
      t.metrics;
  Format.fprintf ppf "@]"

let metrics_to_string t = Format.asprintf "%a" pp_metrics t
