(** Soak mode: crash testing as a long-running service.

    Where {!Runner} checks short scripted executions, the soak driver
    streams an open-ended supply of randomized client operations
    through the exploration {!Engine} under continuous crash/recover
    cycles, until a hard budget (wall clock or total client ops) stops
    it — WITCHER-style long randomized workloads that reach states
    fixed scripts never visit.

    {b Op streams.}  A benchmark participates by exposing an
    {!op_stream}: a keyspace bound, a trusted setup, a [connect]
    returning a client-op applier, and a post-crash [audit].  The
    driver draws operation kinds from a configurable read/write mix
    and keys from a keyspace distribution (uniform or hotspot); one
    (stream x mix x distribution) combination is a {e combo}, the unit
    of scheduling, coverage accounting and quarantine.

    {b Rounds.}  Each round builds one failure scenario per active
    combo (randomized ops, randomized crash plan) and hands the batch
    to {!Engine.run} — so live progress, coverage and attribution
    telemetry flow exactly as they do for the scripted drivers.  All
    per-scenario randomness derives from pure functions of (base seed,
    round index, combo label): a soak run is reproducible from its
    seed at any [jobs] count, and a resumed run re-winds to the exact
    scenario stream the interrupted run would have produced.

    {b Graceful degradation.}  A combo whose scenarios keep faulting
    (a fault storm — e.g. a crashing op handler) is quarantined once
    its fault count reaches the budget: the service logs it, stops
    scheduling it and keeps soaking the healthy combos rather than
    aborting.  A run whose combos are all quarantined stops with
    {!Exhausted}.

    {b Checkpoint/resume.}  The driver's whole mutable state is the
    {!snapshot}: round counter, cumulative totals and per-combo fault
    and quarantine state.  [on_checkpoint] surfaces it periodically
    (the store layer persists it crash-safely with the witness corpus
    and a versioned manifest); [run ~resume:snapshot] restarts from
    the next round with budgets, fault counts and quarantines intact.
    Because iteration seeds are pure functions of (seed, round,
    combo), the resumed run replays the identical scenario stream —
    byte-identical witnesses — without serializing any RNG state.

    {b Cancellation.}  {!request_stop} (async-signal-safe: one atomic
    store, the CLI's SIGINT handler calls it) stops the loop at the
    next round boundary with {!Interrupted}; the caller then flushes a
    final checkpoint and manifest. *)

(** {1 Op streams} *)

type op_kind = Read | Write | Delete | Rmw

type op_stream = {
  os_name : string;  (** stream name; the replay lookup handle *)
  os_keyspace : int;  (** keys are drawn from [1..os_keyspace] *)
  os_setup : (unit -> unit) option;
      (** trusted setup (runs once per stream, memoized like
          {!Engine.materialize_setup}) *)
  os_connect : unit -> op_kind -> key:int -> payload:int -> unit;
      (** open the store at the start of a pre-crash phase (resetting
          any volatile per-domain state for determinism) and return
          the client-op applier; [payload] is a small random value *)
  os_audit : unit -> unit;
      (** post-crash recovery check (the scenario's [post] phase) *)
  os_observe : (unit -> (string * string) list) option;
      (** optional state snapshot for the invariant oracle (the
          stream-level counterpart of {!Program.t}'s [observe] hook):
          read the recovered store's observable fields as (name, value)
          pairs.  Only consulted when [sk_oracle] is set. *)
}

(** {1 Op-mix buckets} *)

type mix = {
  mix_label : string;
  w_read : int;
  w_write : int;
  w_delete : int;
  w_rmw : int;  (** draw weights; at least one must be positive *)
}

type dist = Uniform | Hotspot
    (** [Hotspot]: 80% of draws hit the first fifth of the keyspace. *)

val dist_label : dist -> string

type bucket = { b_mix : mix; b_dist : dist }

val bucket_label : bucket -> string

(** The four built-in mixes: [read-heavy] (8/2/0/0),
    [write-heavy] (2/6/1/1), [churn] (1/4/4/1), [rmw-heavy] (2/3/0/5). *)
val default_mixes : mix list

(** [default_mixes] crossed with both distributions: 8 buckets. *)
val default_buckets : bucket list

(** {1 Soak programs}

    Each scenario's program name encodes everything needed to rebuild
    it — ["soak:STREAM:MIX:DIST:OPS:SEED"] — so soak witnesses replay
    through the ordinary corpus machinery via {!find_program}. *)

val program_name :
  stream:string -> bucket:bucket -> ops:int -> seed:int -> string

(** The program behind one soak scenario: [pre] connects and applies
    [ops] randomized client ops drawn from the bucket with an RNG
    seeded by [seed]; [post] audits. *)
val program :
  stream:op_stream -> bucket:bucket -> ops:int -> seed:int -> Program.t

(** Rebuild a soak program from its encoded name ([None] if the name
    is not a soak program, names an unknown stream, mix or
    distribution, or is otherwise malformed).  Pass the registry's
    soak streams; used by the CLI's replay lookup. *)
val find_program : streams:op_stream list -> string -> Program.t option

(** {1 Configuration and state} *)

type config = {
  sk_streams : op_stream list;
  sk_buckets : bucket list;
  sk_options : Scenario.options;  (** seed, variant, budgets per phase *)
  sk_jobs : int;
  sk_ops_per_exec : int;  (** client ops streamed per scenario *)
  sk_fault_budget : int;
      (** faulted scenarios tolerated per combo before quarantine *)
  sk_max_ops : int option;  (** total client-op budget (deterministic) *)
  sk_wall_s : float option;
      (** wall-clock budget for this invocation (checked at round
          boundaries; nondeterministic stop point by nature) *)
  sk_checkpoint_every : int;  (** rounds between [on_checkpoint] calls *)
  sk_oracle : bool;
      (** attach an invariant-oracle context to every scenario of
          streams exposing [os_observe].  The reference is this round's
          exact op sequence run crash-free, so it is prepared per
          scenario (a few extra executions each); a faulting reference
          runs that scenario oracle-free.  Violations surface through
          the emitted witnesses ([on_batch] triples), not the totals. *)
}

(** [default_config ~streams] : all default buckets, 24 ops per
    scenario, fault budget 3, checkpoint every 10 rounds, no budgets,
    jobs 1, {!Scenario.default_options}, oracle off. *)
val default_config : streams:op_stream list -> config

(** Serializable per-combo state. *)
type bucket_state = {
  bs_combo : string;  (** combo label ["soak:STREAM:MIX:DIST"] *)
  bs_faults : int;
  bs_quarantined : bool;
}

(** The driver's whole resumable state: everything a checkpoint must
    persist (all deterministic — no wall clocks). *)
type snapshot = {
  snap_next_round : int;
  snap_scenarios : int;
  snap_completed : int;
  snap_faulted : int;
  snap_diverged : int;
  snap_crashed : int;  (** scenarios whose crash plan actually fired *)
  snap_executions : int;
  snap_ops : int;  (** executor memory/flush operations *)
  snap_client_ops : int;  (** randomized client ops streamed *)
  snap_races : int;  (** raw race observations *)
  snap_buckets : bucket_state list;  (** config combo order *)
}

type stop_reason = Op_budget | Wall_budget | Exhausted | Interrupted

val stop_reason_label : stop_reason -> string
val stop_reason_of_label : string -> stop_reason option

type result = {
  r_snapshot : snapshot;
  r_reason : stop_reason;
  r_ok : bool;
      (** true iff the run ended by budget ([Op_budget]/[Wall_budget])
          — the manifest's [soak_ok] marker.  Interrupted and
          exhausted (every combo quarantined) runs are not ok. *)
  r_elapsed_s : float;  (** this invocation's wall time *)
}

(** {1 Running} *)

(** Ask the running soak loop to stop at the next round boundary
    (async-signal-safe; the CLI's SIGINT handler).  {!run} clears the
    flag when it starts. *)
val request_stop : unit -> unit

(** Drive the soak loop.

    [on_batch] receives each finished round's
    [(program_name, scenario, result)] triples in submission order —
    the witness-extraction feed (the store layer absorbs them into a
    deduplicating sink).  [on_checkpoint] fires every
    [sk_checkpoint_every] rounds with the current snapshot.

    [resume] restarts from a checkpoint snapshot: totals, fault counts
    and quarantines carry over, and rounds continue from
    [snap_next_round] with the identical derived seeds.

    Requires at least one stream and one bucket. *)
val run :
  ?resume:snapshot ->
  ?on_batch:((string * Scenario.t * Engine.scenario_result) list -> unit) ->
  ?on_checkpoint:(snapshot -> unit) ->
  config ->
  result
