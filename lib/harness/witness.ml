let explain ?(variant = Px86.Variant.default_label) ~trace ~detector
    ~race:(r : Yashme.Race.t) () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Yashme.Race.to_string r);
  (* Non-default variants are part of the witness identity — without
     the line, a reader would replay the race under the wrong model.
     The default renders nothing, keeping historical output. *)
  if variant <> Px86.Variant.default_label then
    Buffer.add_string buf (Printf.sprintf "\n  [variant %s]" variant);
  Buffer.add_string buf "\n  witness (E+ combined with E'):\n";
  (match Yashme.Detector.record detector ~id:r.Yashme.Race.store_exec with
  | None -> Buffer.add_string buf "    (pre-crash execution not recorded)\n"
  | Some record ->
      let cvpre = Yashme.Exec_record.cvpre record in
      let prefix = Px86.Trace.prefix trace ~cvpre in
      Buffer.add_string buf
        (Printf.sprintf
           "    consistent prefix CVpre = %s (%d of %d committed events)\n"
           (Format.asprintf "%a" Yashme_util.Clockvec.pp cvpre)
           (List.length prefix)
           (List.length (Px86.Trace.entries trace)));
      List.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf "    | %s\n" (Format.asprintf "%a" Px86.Trace.pp_entry e)))
        prefix;
      Buffer.add_string buf
        (Printf.sprintf "    the racing store itself: %s\n"
           (Format.asprintf "%a" Px86.Event.pp_store r.Yashme.Race.store));
      Buffer.add_string buf
        "    every pre-crash prefix extending E+ without flushing this store\n\
        \    crashes with the store only partially persistent.\n");
  Buffer.contents buf
