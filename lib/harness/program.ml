type t = {
  name : string;
  setup : (unit -> unit) option;
  pre : unit -> unit;
  post : unit -> unit;
  observe : (unit -> (string * string) list) option;
}

let make ?setup ?observe ~name ~pre ~post () =
  { name; setup; pre; post; observe }
