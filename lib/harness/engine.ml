module Executor = Pm_runtime.Executor

(* Execution ids within one failure scenario: the setup phase is not
   registered with the detector (its data is trusted after a clean
   shutdown); pre-crash is 1, first recovery is 2, a second recovery
   (two-crash scenarios) is 3. *)
let setup_exec = 0
let pre_exec = 1
let post_exec = 2

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Setup memoization                                                    *)

let run_setup (opts : Scenario.options) (p : Program.t) =
  match p.Program.setup with
  | None -> None
  | Some setup ->
      let r =
        Executor.run ~plan:Executor.Run_to_end ~sb_policy:opts.Scenario.sb_policy
          ~seed:opts.Scenario.seed ~exec_id:setup_exec setup
      in
      Some r.Executor.state

let materialize_setup ~(options : Scenario.options) (p : Program.t) =
  match p.Program.setup with
  | None -> Scenario.No_setup
  | Some fn -> (
      match options.Scenario.sb_policy with
      | Px86.Machine.Eager -> (
          (* Eager drain makes the setup run deterministic and
             seed-independent: one snapshot serves every scenario. *)
          match run_setup options p with
          | None -> Scenario.No_setup
          | Some cs -> Scenario.Snapshot cs)
      | Px86.Machine.Random_drain _ ->
          (* The drained state depends on the scenario seed; each
             scenario re-runs the setup with its own options. *)
          Scenario.Run_setup fn)

(* ------------------------------------------------------------------ *)
(* Phase execution                                                      *)

(* Every phase of a scenario funnels through here so pre-crash runs,
   recovery runs and crashed-recovery runs share one code path. *)
let run_phase ?detector ?observer ?inherited ~(options : Scenario.options) ~plan
    ~seed ~exec_id body =
  Executor.run ?detector ?observer ?inherited ~plan
    ~sb_policy:options.Scenario.sb_policy ~cut:options.Scenario.cut
    ~sched:options.Scenario.sched ~seed
    ~check_candidates:options.Scenario.check_candidates ~exec_id body

(* The one recovery path: every post-crash [Executor.run] in the
   harness goes through this helper. *)
let run_recovery ?detector ?observer ~options ~inherited ~seed ~exec_id post =
  run_phase ?detector ?observer ~inherited ~options ~plan:Executor.Run_to_end
    ~seed ~exec_id post

(* Did the crash plan of this run actually fire?  [Crash_at_end]
   completes and then crashes; targeted plans that never fired leave a
   cleanly shut-down state with no crash. *)
let crash_fired ~plan (r : Executor.result) =
  match r.Executor.outcome with
  | Executor.Crashed -> true
  | Executor.Completed -> (
      match plan with
      | Executor.Crash_at_end -> true
      | Executor.Run_to_end | Executor.Crash_before_op _
      | Executor.Crash_before_flush _ -> false)

(* ------------------------------------------------------------------ *)
(* Scenario execution                                                   *)

type scenario_result = {
  label : string;
  races : Yashme.Race.t list;
  chain_crashed : bool;
  executions : int;
  ops : int;
  flush_points : int;
  post_flush_points : int option;
  wall_s : float;
}

let run_scenario (s : Scenario.t) =
  let open Scenario in
  let t0 = now () in
  let opts = s.options in
  let execs = ref 0 and ops = ref 0 in
  let count (r : Executor.result) =
    incr execs;
    ops := !ops + r.Executor.ops;
    r
  in
  let detector =
    Yashme.Detector.create ~mode:opts.mode ~eadr:opts.eadr
      ~coherence:opts.coherence ()
  in
  let inherited =
    match s.setup with
    | No_setup -> None
    | Snapshot cs -> Some (Px86.Crashstate.copy cs)
    | Run_setup fn ->
        (* Mirror [run_setup]: default round-robin scheduling, no
           detector — the setup phase is trusted. *)
        let r =
          count
            (Executor.run ~plan:Executor.Run_to_end ~sb_policy:opts.sb_policy
               ~seed:opts.seed ~exec_id:setup_exec fn)
        in
        Some r.Executor.state
  in
  let pre_result =
    count
      (run_phase ~detector ?inherited ~options:opts ~plan:s.plan ~seed:opts.seed
         ~exec_id:pre_exec s.pre)
  in
  let post_flush_points = ref None in
  let chain_crashed =
    crash_fired ~plan:s.plan pre_result
    && begin
         let r1 =
           count
             (run_phase ~detector ~options:opts
                ~inherited:pre_result.Executor.state ~plan:s.post_plan
                ~seed:(opts.seed + 1) ~exec_id:post_exec s.post)
         in
         post_flush_points := Some r1.Executor.flush_points;
         match s.post_plan with
         | Executor.Run_to_end -> true
         | _ ->
             let fired = crash_fired ~plan:s.post_plan r1 in
             if fired then
               ignore
                 (count
                    (run_recovery ~detector ~options:opts
                       ~inherited:r1.Executor.state ~seed:(opts.seed + 2)
                       ~exec_id:(post_exec + 1) s.post));
             fired
       end
  in
  {
    label = s.label;
    races = Yashme.Detector.races detector;
    chain_crashed;
    executions = !execs;
    ops = !ops;
    flush_points = pre_result.Executor.flush_points;
    post_flush_points = !post_flush_points;
    wall_s = now () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* The worker pool                                                      *)

type stats = {
  jobs : int;
  scenarios : int;
  executions : int;
  ops : int;
  cpu_s : float;
  elapsed_s : float;
}

(* The timing-free projection: what determinism comparisons may look
   at.  [cpu_s]/[elapsed_s] (and [scenario_result.wall_s]) vary run to
   run, so polymorphic equality over the full records is latently
   flaky — compare these instead. *)
type structural_stats = {
  s_jobs : int;
  s_scenarios : int;
  s_executions : int;
  s_ops : int;
}

let structural stats =
  {
    s_jobs = stats.jobs;
    s_scenarios = stats.scenarios;
    s_executions = stats.executions;
    s_ops = stats.ops;
  }

type scenario_sig = {
  sig_label : string;
  sig_races : Yashme.Race.t list;
  sig_chain_crashed : bool;
  sig_executions : int;
  sig_ops : int;
  sig_flush_points : int;
  sig_post_flush_points : int option;
}

let signature (r : scenario_result) =
  {
    sig_label = r.label;
    sig_races = r.races;
    sig_chain_crashed = r.chain_crashed;
    sig_executions = r.executions;
    sig_ops = r.ops;
    sig_flush_points = r.flush_points;
    sig_post_flush_points = r.post_flush_points;
  }

type run_result = { results : scenario_result list; stats : stats }

let run ?(jobs = 1) scenarios =
  let t0 = now () in
  let arr = Array.of_list scenarios in
  let n = Array.length arr in
  let jobs =
    if List.for_all Scenario.parallel_safe scenarios then
      max 1 (min jobs (max 1 n))
    else begin
      if jobs > 1 then
        Observe.Log.warn
          "Cut_random's shared RNG is not domain-safe; running the batch on 1 \
           domain (use Cut_all/Cut_lowerbound for parallel exploration, or \
           --quiet to silence this)";
      1
    end
  in
  let out = Array.make n None in
  let next = Atomic.make 0 in
  (* Workers claim the next unstarted scenario; each result lands in
     its scenario's slot, so the merge below is in submission order no
     matter which domain finished first.  Each worker owns trace lane
     (pid 0, tid = slot): scenario spans land in their worker's lane,
     making per-domain utilization and queue idle time visible in the
     Chrome viewer. *)
  let worker slot =
    Observe.Trace.set_context ~pid:0 ~tid:slot;
    Observe.Span.with_ ~cat:"engine"
      ~args:[ ("slot", string_of_int slot) ]
      "worker"
      (fun () ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let s = arr.(i) in
            (out.(i) <-
               Some
                 (Observe.Span.with_ ~cat:"scenario"
                    ~args:
                      [
                        ("index", string_of_int i);
                        ("label", s.Scenario.label);
                        ("plan", Executor.plan_label s.Scenario.plan);
                      ]
                    s.Scenario.label
                    (fun () ->
                      match run_scenario s with
                      | r -> Ok r
                      | exception e -> Error e)));
            loop ()
          end
        in
        loop ());
    Observe.Trace.clear_context ()
  in
  Observe.Span.with_ ~cat:"engine"
    ~args:[ ("jobs", string_of_int jobs); ("scenarios", string_of_int n) ]
    "batch"
    (fun () ->
      if jobs = 1 then worker 0
      else begin
        let helpers =
          List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
        in
        worker 0;
        List.iter Domain.join helpers
      end);
  let results =
    Array.to_list out
    |> List.map (function
         | Some (Ok r) -> r
         | Some (Error e) -> raise e
         | None -> assert false)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let stats =
    {
      jobs;
      scenarios = n;
      executions = sum (fun r -> r.executions);
      ops = sum (fun r -> r.ops);
      cpu_s = List.fold_left (fun acc r -> acc +. r.wall_s) 0. results;
      elapsed_s = now () -. t0;
    }
  in
  { results; stats }

(* Merged races of a run, in scenario order (see
   {!Yashme.Race.merge_ordered} for why order matters). *)
let races ?(keep = fun (_ : scenario_result) -> true) run =
  Yashme.Race.merge_ordered
    (List.map (fun r -> if keep r then r.races else []) run.results)
