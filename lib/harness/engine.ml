module Executor = Pm_runtime.Executor

(* Execution ids within one failure scenario: the setup phase is not
   registered with the detector (its data is trusted after a clean
   shutdown); pre-crash is 1, first recovery is 2, a second recovery
   (two-crash scenarios) is 3. *)
let setup_exec = 0
let pre_exec = 1
let post_exec = 2

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Setup memoization                                                    *)

let run_setup (opts : Scenario.options) (p : Program.t) =
  match p.Program.setup with
  | None -> None
  | Some setup ->
      let r =
        Executor.run ~plan:Executor.Run_to_end ~sb_policy:opts.Scenario.sb_policy
          ~variant:opts.Scenario.variant ~seed:opts.Scenario.seed
          ?max_ops:opts.Scenario.max_ops ?max_wall_s:opts.Scenario.max_wall_s
          ~exec_id:setup_exec setup
      in
      Some r.Executor.state

let materialize_setup ~(options : Scenario.options) (p : Program.t) =
  match p.Program.setup with
  | None -> Scenario.No_setup
  | Some fn -> (
      match options.Scenario.sb_policy with
      | Px86.Machine.Eager -> (
          (* Eager drain makes the setup run deterministic and
             seed-independent: one snapshot serves every scenario. *)
          match run_setup options p with
          | None -> Scenario.No_setup
          | Some cs -> Scenario.Snapshot cs)
      | Px86.Machine.Random_drain _ ->
          (* The drained state depends on the scenario seed; each
             scenario re-runs the setup with its own options. *)
          Scenario.Run_setup fn)

(* ------------------------------------------------------------------ *)
(* Phase execution                                                      *)

(* Every phase of a scenario funnels through here so pre-crash runs,
   recovery runs and crashed-recovery runs share one code path. *)
let run_phase ?detector ?observer ?inherited ~(options : Scenario.options) ~plan
    ~seed ~exec_id body =
  Executor.run ?detector ?observer ?inherited ~plan
    ~sb_policy:options.Scenario.sb_policy ~variant:options.Scenario.variant
    ~cut:options.Scenario.cut ~sched:options.Scenario.sched ~seed
    ~check_candidates:options.Scenario.check_candidates
    ?max_ops:options.Scenario.max_ops ?max_wall_s:options.Scenario.max_wall_s
    ~exec_id body

(* The one recovery path: every post-crash [Executor.run] in the
   harness goes through this helper. *)
let run_recovery ?detector ?observer ~options ~inherited ~seed ~exec_id post =
  run_phase ?detector ?observer ~inherited ~options ~plan:Executor.Run_to_end
    ~seed ~exec_id post

(* Coverage index of a crash plan: targeted flush-point plans carry
   their index, crash-at-end is the pseudo-index -1 and untargeted
   plans have none.  Kept here (not in Observe) so lib/observe stays
   free of runtime types. *)
let plan_index = function
  | Executor.Crash_before_flush n -> Some n
  | Executor.Crash_at_end -> Some (-1)
  | Executor.Run_to_end | Executor.Crash_before_op _ -> None

(* Did the crash plan of this run actually fire?  [Crash_at_end]
   completes and then crashes; targeted plans that never fired leave a
   cleanly shut-down state with no crash. *)
let crash_fired ~plan (r : Executor.result) =
  match r.Executor.outcome with
  | Executor.Crashed -> true
  | Executor.Diverged -> false
  | Executor.Completed -> (
      match plan with
      | Executor.Crash_at_end -> true
      | Executor.Run_to_end | Executor.Crash_before_op _
      | Executor.Crash_before_flush _ -> false)

(* ------------------------------------------------------------------ *)
(* Scenario execution                                                   *)

type completed = {
  label : string;
  races : Yashme.Race.t list;
  chain_crashed : bool;
  diverged : bool;
  executions : int;
  ops : int;
  flush_points : int;
  post_flush_points : int option;
  observed : bool;
  violations : (string * string) list;
  wall_s : float;
}

type fault = {
  f_info : Finding.fault;
  f_exn : exn;
  f_backtrace : Printexc.raw_backtrace;
  f_races : Yashme.Race.t list;
  f_executions : int;
  f_ops : int;
  f_wall_s : float;
}

type scenario_result = Completed of completed | Faulted of fault

let m_faults = Observe.Metrics.counter "engine/faults"
let m_recovery_failures = Observe.Metrics.counter "engine/recovery_failures"
let m_cancelled = Observe.Metrics.counter "engine/cancelled"
let m_oracle_violations = Observe.Metrics.counter "oracle/violations"

(* Worker-pool cost centers.  Counts and charged units are
   jobs-invariant (one queue-wait charge per claimed scenario, one work
   charge per scenario with the scenario's execution count as units);
   wall clocks are scheduling-dependent and the GC word deltas are
   volatile — [Gc.quick_stat] counters are flushed globally at minor
   collections, so a per-domain delta absorbs allocation from whichever
   domains happened to run concurrently. *)
let ct_queue_wait = Observe.Attribution.center "engine/queue_wait"
let ct_work = Observe.Attribution.center ~units:"execs" "engine/work"

let ct_gc_minor =
  Observe.Attribution.center ~units:"words" ~volatile_units:true "gc/minor"

let ct_gc_major =
  Observe.Attribution.center ~units:"words" ~volatile_units:true "gc/major"

(* One charge per oracle observe phase, units = its operation count —
   both jobs-invariant. *)
let ct_oracle = Observe.Attribution.center ~units:"ops" "oracle/observe"

(* One charge per race merge, units = results merged — jobs-invariant;
   the wall clock is the serial post-batch cost the scaling analysis
   sets against lost parallel time. *)
let ct_merge = Observe.Attribution.center ~units:"results" "engine/merge"

let run_scenario (s : Scenario.t) =
  let open Scenario in
  let t0 = now () in
  let opts = s.options in
  let execs = ref 0 and ops = ref 0 in
  let count (r : Executor.result) =
    incr execs;
    ops := !ops + r.Executor.ops;
    r
  in
  let detector =
    Yashme.Detector.create ~mode:opts.mode ~eadr:opts.eadr
      ~coherence:opts.coherence ()
  in
  (* Sandbox bookkeeping: which phase is executing, whether a real crash
     preceded it (a raising recovery then witnesses a crash-consistency
     bug, not an infrastructure fault), and whether any phase was
     terminated by a budget. *)
  let phase = ref Finding.Setup in
  let crash_seen = ref false in
  let diverged = ref false in
  let note (r : Executor.result) =
    if r.Executor.outcome = Executor.Diverged then diverged := true;
    r
  in
  let body () =
    Observe.Coverage.scenario_started ();
    Option.iter Observe.Coverage.plan_exercised (plan_index s.plan);
    Option.iter Observe.Coverage.plan_exercised (plan_index s.post_plan);
    let inherited =
      match s.setup with
      | No_setup -> None
      | Snapshot cs -> Some (Px86.Crashstate.copy cs)
      | Run_setup fn ->
          (* Mirror [run_setup]: default round-robin scheduling, no
             detector — the setup phase is trusted. *)
          let r =
            note
              (count
                 (Executor.run ~plan:Executor.Run_to_end ~sb_policy:opts.sb_policy
                    ~variant:opts.variant ~seed:opts.seed ?max_ops:opts.max_ops
                    ?max_wall_s:opts.max_wall_s ~exec_id:setup_exec fn))
          in
          Some r.Executor.state
    in
    (* The oracle replays the whole chain from the same durable base
       under [Cut_lowerbound], so duplicate the hydrated setup image
       before the pre phase consumes it (copy cost paid only when an
       oracle context is attached). *)
    let oracle_base =
      match (s.oracle, inherited) with
      | Some _, Some st -> Some (Some (Px86.Crashstate.copy st))
      | Some _, None -> Some None
      | None, _ -> None
    in
    phase := Finding.Pre_crash;
    let pre_result =
      note
        (count
           (run_phase ~detector ?inherited ~options:opts ~plan:s.plan
              ~seed:opts.seed ~exec_id:pre_exec s.pre))
    in
    let post_flush_points = ref None in
    let pre_fired = crash_fired ~plan:s.plan pre_result in
    if pre_fired then Option.iter Observe.Coverage.crash_point (plan_index s.plan);
    let chain_crashed =
      pre_fired
      && begin
           crash_seen := true;
           phase := Finding.Recovery 0;
           let r1 =
             note
               (count
                  (run_phase ~detector ~options:opts
                     ~inherited:pre_result.Executor.state ~plan:s.post_plan
                     ~seed:(opts.seed + 1) ~exec_id:post_exec s.post))
           in
           post_flush_points := Some r1.Executor.flush_points;
           match s.post_plan with
           | Executor.Run_to_end -> true
           | _ ->
               let fired = crash_fired ~plan:s.post_plan r1 in
               if fired then begin
                 Option.iter Observe.Coverage.crash_point (plan_index s.post_plan);
                 phase := Finding.Recovery 1;
                 ignore
                   (note
                      (count
                         (run_recovery ~detector ~options:opts
                            ~inherited:r1.Executor.state ~seed:(opts.seed + 2)
                            ~exec_id:(post_exec + 1) s.post)))
               end;
               fired
         end
    in
    (* Invariant-oracle observe phase: only when an oracle context is
       attached and the chain really crashed and recovered — a clean
       run has nothing to diff.  The scenario's own chain materializes
       crashes with the configured cut (default [Cut_all], the maximal
       recovery view the race detector wants), so the oracle replays
       the identical chain — same plans, same seeds, hence the same
       schedules and crash points — under [Cut_lowerbound]: the image
       holding only what flushes {e guarantee}, the states a real
       power failure is allowed to expose.  Recovery runs over that
       image too (recovery may legitimately repair), then the observe
       hook snapshots the recovered store and the check diffs it
       against the invariant-reachable states.  All replay executions
       are detector-free (observation never adds races) and inside the
       sandbox, so a throwing hook is a contained [Observe]-phase
       fault.  None of this runs without an oracle context, keeping
       oracle-off runs byte-identical. *)
    let observed = ref false in
    let violations = ref [] in
    (match (s.oracle, oracle_base) with
    | Some oc, Some base when chain_crashed ->
        phase := Finding.Observe;
        let lopts = { opts with Scenario.cut = Px86.Machine.Cut_lowerbound } in
        let o_ops = ref 0 in
        let track (r : Executor.result) =
          o_ops := !o_ops + r.Executor.ops;
          note (count r)
        in
        let o_pre =
          track
            (run_phase ?inherited:base ~options:lopts ~plan:s.plan
               ~seed:opts.seed ~exec_id:(post_exec + 2) s.pre)
        in
        let o_final =
          if not (crash_fired ~plan:s.plan o_pre) then None
          else
            let o_r1 =
              track
                (run_phase ~options:lopts ~inherited:o_pre.Executor.state
                   ~plan:s.post_plan ~seed:(opts.seed + 1)
                   ~exec_id:(post_exec + 3) s.post)
            in
            match s.post_plan with
            | Executor.Run_to_end -> Some o_r1.Executor.state
            | _ ->
                if not (crash_fired ~plan:s.post_plan o_r1) then None
                else
                  let o_r2 =
                    track
                      (run_recovery ~options:lopts
                         ~inherited:o_r1.Executor.state ~seed:(opts.seed + 2)
                         ~exec_id:(post_exec + 4) s.post)
                  in
                  Some o_r2.Executor.state
        in
        (match o_final with
        | None -> ()
        | Some st ->
            let snap = ref [] in
            ignore
              (track
                 (run_phase ~options:lopts ~inherited:st
                    ~plan:Executor.Run_to_end ~seed:(opts.seed + 3)
                    ~exec_id:(post_exec + 5) (fun () ->
                      snap := oc.oc_observe ())));
            observed := true;
            Observe.Coverage.oracle_checked ();
            if Observe.Attribution.is_enabled () then
              Observe.Attribution.charge ct_oracle ~count:1 ~units:!o_ops ();
            let vs = oc.oc_check ~observed:!snap in
            List.iter
              (fun _ ->
                Observe.Coverage.oracle_violation ();
                Observe.Metrics.incr m_oracle_violations)
              vs;
            violations := vs)
    | (Some _ | None), _ -> ());
    {
      label = s.label;
      races = Yashme.Detector.races detector;
      chain_crashed;
      diverged = !diverged;
      executions = !execs;
      ops = !ops;
      flush_points = pre_result.Executor.flush_points;
      post_flush_points = !post_flush_points;
      observed = !observed;
      violations = !violations;
      wall_s = now () -. t0;
    }
  in
  match
    Observe.Coverage.with_program
      ~variant:(Px86.Variant.label opts.variant)
      s.label body
  with
  | c -> Completed c
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      let info =
        {
          Finding.label = s.label;
          phase = !phase;
          exn_text = Printexc.to_string e;
          backtrace = Printexc.raw_backtrace_to_string bt;
          plan = Executor.plan_label s.plan;
          post_plan = Executor.plan_label s.post_plan;
          seed = opts.seed;
          crash_fired = !crash_seen;
        }
      in
      Observe.Metrics.incr m_faults;
      if Finding.is_recovery_failure info then
        Observe.Metrics.incr m_recovery_failures;
      if Observe.Trace.recording () then
        Observe.Trace.instant ~cat:"engine" "fault"
          ~args:
            [
              ("label", s.label);
              ("phase", Finding.phase_label !phase);
              ("plan", info.Finding.plan);
              ("exn", info.Finding.exn_text);
              ( "kind",
                if Finding.is_recovery_failure info then "recovery_failure"
                else "fault" );
            ];
      Faulted
        {
          f_info = info;
          f_exn = e;
          f_backtrace = bt;
          f_races = Yashme.Detector.races detector;
          f_executions = !execs;
          f_ops = !ops;
          f_wall_s = now () -. t0;
        }

(* ------------------------------------------------------------------ *)
(* The worker pool                                                      *)

type stats = {
  jobs : int;
  scenarios : int;
  completed : int;
  faulted : int;
  diverged : int;
  cancelled : int;
  executions : int;
  ops : int;
  cpu_s : float;
  elapsed_s : float;
}

(* The timing-free projection: what determinism comparisons may look
   at.  [cpu_s]/[elapsed_s] (and the wall times) vary run to run, so
   polymorphic equality over the full records is latently flaky —
   compare these instead.  [cancelled] is also excluded: under
   fail-fast with several domains, how many queue entries were already
   claimed when the stop flag rose is scheduling-dependent. *)
type structural_stats = {
  s_jobs : int;
  s_scenarios : int;
  s_completed : int;
  s_faulted : int;
  s_diverged : int;
  s_executions : int;
  s_ops : int;
}

let structural stats =
  {
    s_jobs = stats.jobs;
    s_scenarios = stats.scenarios;
    s_completed = stats.completed;
    s_faulted = stats.faulted;
    s_diverged = stats.diverged;
    s_executions = stats.executions;
    s_ops = stats.ops;
  }

type completed_sig = {
  sig_label : string;
  sig_races : Yashme.Race.t list;
  sig_chain_crashed : bool;
  sig_diverged : bool;
  sig_executions : int;
  sig_ops : int;
  sig_flush_points : int;
  sig_post_flush_points : int option;
  sig_observed : bool;
  sig_violations : (string * string) list;
}

type fault_sig = {
  sig_f_label : string;
  sig_f_phase : Finding.phase;
  sig_f_exn : string;
  sig_f_plan : string;
  sig_f_post_plan : string;
  sig_f_seed : int;
  sig_f_crash_fired : bool;
  sig_f_races : Yashme.Race.t list;
  sig_f_executions : int;
  sig_f_ops : int;
}

type scenario_sig = Sig_completed of completed_sig | Sig_faulted of fault_sig

let signature = function
  | Completed r ->
      Sig_completed
        {
          sig_label = r.label;
          sig_races = r.races;
          sig_chain_crashed = r.chain_crashed;
          sig_diverged = r.diverged;
          sig_executions = r.executions;
          sig_ops = r.ops;
          sig_flush_points = r.flush_points;
          sig_post_flush_points = r.post_flush_points;
          sig_observed = r.observed;
          sig_violations = r.violations;
        }
  | Faulted f ->
      Sig_faulted
        {
          sig_f_label = f.f_info.Finding.label;
          sig_f_phase = f.f_info.Finding.phase;
          sig_f_exn = f.f_info.Finding.exn_text;
          sig_f_plan = f.f_info.Finding.plan;
          sig_f_post_plan = f.f_info.Finding.post_plan;
          sig_f_seed = f.f_info.Finding.seed;
          sig_f_crash_fired = f.f_info.Finding.crash_fired;
          sig_f_races = f.f_races;
          sig_f_executions = f.f_executions;
          sig_f_ops = f.f_ops;
        }

type run_result = { results : scenario_result list; stats : stats }

let run ?(jobs = 1) ?(fail_fast = false) scenarios =
  let t0 = now () in
  let arr = Array.of_list scenarios in
  let n = Array.length arr in
  let jobs =
    if List.for_all Scenario.parallel_safe scenarios then
      max 1 (min jobs (max 1 n))
    else begin
      if jobs > 1 then
        Observe.Log.warn
          "Cut_random's shared RNG is not domain-safe; running the batch on 1 \
           domain (use Cut_all/Cut_lowerbound for parallel exploration, or \
           --quiet to silence this)";
      1
    end
  in
  let out = Array.make n None in
  Observe.Progress.batch n;
  Observe.Progress.set_jobs jobs;
  let next = Atomic.make 0 in
  (* Cooperative cancellation for fail-fast: a worker that records a
     fault raises the flag; every worker re-checks it before claiming
     the next queue entry, so in-flight scenarios finish but the rest
     of the queue is cancelled — never silently "completed". *)
  let stop = Atomic.make false in
  (* Workers claim the next unstarted scenario; each result lands in
     its scenario's slot, so the merge below is in submission order no
     matter which domain finished first.  Each worker owns trace lane
     (pid 0, tid = slot): scenario spans land in their worker's lane,
     making per-domain utilization and queue idle time visible in the
     Chrome viewer. *)
  let worker slot =
    Observe.Trace.set_context ~pid:0 ~tid:slot;
    Observe.Span.with_ ~cat:"engine"
      ~args:[ ("slot", string_of_int slot) ]
      "worker"
      (fun () ->
        let att = Observe.Attribution.is_enabled () in
        let idle_since = ref (if att then Observe.Trace.now_us () else 0) in
        let rec loop () =
          if not (Atomic.get stop) then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              if att then
                Observe.Attribution.charge ct_queue_wait ~count:1
                  ~wall_us:(Observe.Trace.now_us () - !idle_since)
                  ();
              let s = arr.(i) in
              let gc0 = if att then Some (Gc.quick_stat ()) else None in
              let w0 = if att then Observe.Trace.now_us () else 0 in
              let r =
                Observe.Span.with_ ~cat:"scenario"
                  ~args:
                    [
                      ("index", string_of_int i);
                      ("label", s.Scenario.label);
                      ("plan", Executor.plan_label s.Scenario.plan);
                    ]
                  s.Scenario.label
                  (fun () -> run_scenario s)
              in
              if att then begin
                let w1 = Observe.Trace.now_us () in
                let execs =
                  match r with
                  | Completed c -> c.executions
                  | Faulted f -> f.f_executions
                in
                Observe.Attribution.charge ct_work ~count:1 ~units:execs
                  ~wall_us:(w1 - w0) ();
                (match gc0 with
                | Some g0 ->
                    let g1 = Gc.quick_stat () in
                    Observe.Attribution.charge ct_gc_minor ~count:1
                      ~units:
                        (int_of_float (g1.Gc.minor_words -. g0.Gc.minor_words))
                      ();
                    Observe.Attribution.charge ct_gc_major ~count:1
                      ~units:
                        (int_of_float (g1.Gc.major_words -. g0.Gc.major_words))
                      ()
                | None -> ());
                idle_since := w1
              end;
              out.(i) <- Some r;
              (match r with
              | Completed c ->
                  Observe.Progress.tick ~lane:slot
                    ~races:(List.length c.races) ~faulted:false ()
              | Faulted f ->
                  Observe.Progress.tick ~lane:slot
                    ~races:(List.length f.f_races) ~faulted:true ());
              (match r with
              | Faulted _ when fail_fast -> Atomic.set stop true
              | Faulted _ | Completed _ -> ());
              loop ()
            end
          end
        in
        loop ());
    Observe.Trace.clear_context ()
  in
  Observe.Span.with_ ~cat:"engine"
    ~args:[ ("jobs", string_of_int jobs); ("scenarios", string_of_int n) ]
    "batch"
    (fun () ->
      if jobs = 1 then worker 0
      else begin
        let helpers =
          List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
        in
        worker 0;
        List.iter Domain.join helpers
      end);
  let cancelled = ref 0 in
  Array.iteri
    (fun i slot ->
      match slot with
      | Some _ -> ()
      | None ->
          incr cancelled;
          Observe.Metrics.incr m_cancelled;
          if Observe.Trace.recording () then
            Observe.Trace.instant ~cat:"engine" "cancelled"
              ~args:
                [
                  ("index", string_of_int i);
                  ("label", arr.(i).Scenario.label);
                ])
    out;
  if fail_fast then begin
    (* Re-raise the earliest-submitted recorded fault with its original
       backtrace.  (With several domains, a later-submitted scenario may
       fault first in wall time; the submission-order scan keeps the
       choice as deterministic as cancellation allows.) *)
    let first_fault =
      Array.to_seq out
      |> Seq.find_map (function Some (Faulted f) -> Some f | _ -> None)
    in
    match first_fault with
    | Some f -> Printexc.raise_with_backtrace f.f_exn f.f_backtrace
    | None -> ()
  end;
  let results = Array.to_list out |> List.filter_map Fun.id in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let execs = function Completed c -> c.executions | Faulted f -> f.f_executions in
  let ops = function Completed c -> c.ops | Faulted f -> f.f_ops in
  let wall = function Completed c -> c.wall_s | Faulted f -> f.f_wall_s in
  let count p = sum (fun r -> if p r then 1 else 0) in
  let stats =
    {
      jobs;
      scenarios = n;
      completed = count (function Completed _ -> true | Faulted _ -> false);
      faulted = count (function Faulted _ -> true | Completed _ -> false);
      diverged = count (function Completed c -> c.diverged | Faulted _ -> false);
      cancelled = !cancelled;
      executions = sum execs;
      ops = sum ops;
      cpu_s = List.fold_left (fun acc r -> acc +. wall r) 0. results;
      elapsed_s = now () -. t0;
    }
  in
  { results; stats }

(* Merged races of a run, in scenario order (see
   {!Yashme.Race.merge_ordered} for why order matters).  Races observed
   before a fault are genuine evidence and are kept. *)
let races ?(keep = fun (_ : completed) -> true) run =
  let att = Observe.Attribution.is_enabled () in
  let w0 = if att then Observe.Trace.now_us () else 0 in
  let merged =
    Yashme.Race.merge_ordered
      (List.map
         (function
           | Completed c -> if keep c then c.races else []
           | Faulted f -> f.f_races)
         run.results)
  in
  if att then
    Observe.Attribution.charge ct_merge ~count:1
      ~units:(List.length run.results)
      ~wall_us:(Observe.Trace.now_us () - w0)
      ();
  merged

(* Faults of a run, in submission order — the list {!Report.dedup}
   folds into recovery-failure findings and fault counts. *)
let faults run =
  List.filter_map
    (function Faulted f -> Some f.f_info | Completed _ -> None)
    run.results

let diverged_count run = run.stats.diverged
