(** Fault taxonomy of the exploration engine.

    A scenario phase that raises is captured — never re-raised into the
    batch — and classified:

    - a {e recovery} phase raising after a {e real} crash is a
      {!is_recovery_failure}: the recovery code could not cope with a
      legitimately-torn crash image.  WITCHER-style, this is first-class
      crash-consistency evidence and is merged into the {!Report}
      alongside persistency races, carrying the crash plan and seed that
      reproduce it;
    - any other fault (setup or pre-crash phase, or a recovery raising
      without a preceding crash) is an infrastructure/program fault:
      contained, counted and surfaced, but not a crash-consistency
      witness.

    The record holds string projections ([exn_text], rendered plans) so
    reports built from it are deterministic and byte-identical across
    [--jobs] counts; the engine keeps the raw [exn] and backtrace
    separately for the [--fail-fast] re-raise path. *)

type phase =
  | Setup  (** a re-run setup phase (trusted data, untrusted code) *)
  | Pre_crash
  | Recovery of int
      (** [Recovery 0] is the first recovery; [Recovery 1] the second
          recovery of a two-crash scenario *)
  | Observe
      (** the oracle's [observe] snapshot hook, run after recovery; a
          fault here is contained instrumentation failure, never a
          recovery failure *)

val phase_label : phase -> string

type fault = {
  label : string;  (** scenario label (program name) *)
  phase : phase;
  exn_text : string;  (** [Printexc.to_string] of the exception *)
  backtrace : string;  (** captured at the raise site; display only *)
  plan : string;  (** {!Pm_runtime.Executor.plan_label} of the crash plan *)
  post_plan : string;  (** plan of the first recovery run *)
  seed : int;  (** scenario seed — with [plan], the repro handle *)
  crash_fired : bool;  (** a real crash preceded the faulting phase *)
}

(** A recovery-phase fault observed on a real crash image. *)
val is_recovery_failure : fault -> bool

(** Stable dedup key of a recovery failure: label, plan(s) and
    exception text — no backtrace, no seed. *)
val recovery_failure_key : fault -> string

(** {!recovery_failure_key} from its components — the corpus replayer
    recomputes candidate keys without building a full fault record. *)
val make_recovery_failure_key :
  label:string -> plan:string -> post_plan:string -> exn_text:string -> string

val pp : Format.formatter -> fault -> unit
val to_string : fault -> string

(** A crash-consistency violation from the invariant oracle
    ({!Pm_oracle.Check}): the post-crash-recovery observation reached a
    state no reference execution's invariants allow. *)
type consistency = {
  c_label : string;  (** scenario label (program name) *)
  c_key : string;
      (** the oracle's plan-free violation key — the dedup identity *)
  c_detail : string;  (** human-readable exemplar *)
  c_plan : string;  (** crash plan of the witnessing scenario *)
  c_post_plan : string;
  c_seed : int;
}

val consistency_key : consistency -> string
val pp_consistency : Format.formatter -> consistency -> unit
val consistency_to_string : consistency -> string
