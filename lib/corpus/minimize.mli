(** Delta-debugging-style witness minimization.

    Greedy ddmin over the scenario description, verifying after every
    candidate step that the witness's identity key still reproduces:

    + {b derandomize} — a witness whose options draw from an RNG at
      exploration time ({!Pm_harness.Scenario.options_randomized}) is
      re-searched for an equivalent deterministic scenario
      (round-robin schedule, eager drain, [Cut_all]) over the
      systematic [Crash_before_flush] plans, so minimized witnesses
      never depend on random mode;
    + {b drop the double crash} — a two-crash chain whose key survives
      with [post_plan = Run_to_end] keeps the simpler chain;
    + {b shrink the crash-plan index} — the smallest
      [Crash_before_flush]/[Crash_before_op] index (or a flush-indexed
      conversion of an op-indexed or end-of-program plan) still
      reproducing the key;
    + {b tighten fuel} — [max_ops] is pinned to the minimized chain's
      observed operation count, so a future regression that makes the
      scenario run away trips the budget instead of hanging replay.

    A [recovery_failure] witness embeds its crash plans in its identity
    key, so only the fuel step can apply to it.  A witness whose key no
    longer reproduces at all is returned unchanged with
    [reproduced = false].

    Every adopted step is re-verified through {!Replay.replay_one}
    before being returned, so a minimized corpus always replays
    clean. *)

type shrink = {
  original : Witness.t;
  minimized : Witness.t;
  reproduced : bool;  (** the original witness reproduced at all *)
  derandomized : bool;  (** step 1 replaced randomized options *)
  runs : int;  (** scenario executions spent searching *)
}

val minimize :
  lookup:(string -> Pm_harness.Program.t option) -> Witness.t -> shrink

(** Minimize a whole corpus in order. *)
val minimize_all :
  lookup:(string -> Pm_harness.Program.t option) -> Witness.t list -> shrink list
