type stats = {
  total : int;
  races : int;
  recovery_failures : int;
  programs : (string * int) list;
  distinct_keys : int;
  duplicates_folded : int;
}

let dedup ws =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let folded = ref 0 in
  let kept =
    List.filter
      (fun w ->
        let id = Witness.identity w in
        if Hashtbl.mem seen id then begin
          incr folded;
          false
        end
        else begin
          Hashtbl.add seen id ();
          true
        end)
      ws
  in
  (kept, !folded)

let merge corpora = dedup (List.concat corpora)

let stats ?(duplicates_folded = 0) ws =
  let races = ref 0 and rfs = ref 0 in
  let per_program : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let keys : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (w : Witness.t) ->
      (match w.Witness.kind with
      | Witness.Race -> incr races
      | Witness.Recovery_failure -> incr rfs);
      Hashtbl.replace per_program w.Witness.program
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_program w.Witness.program));
      Hashtbl.replace keys w.Witness.key ())
    ws;
  {
    total = List.length ws;
    races = !races;
    recovery_failures = !rfs;
    programs =
      Hashtbl.fold (fun p n acc -> (p, n) :: acc) per_program []
      |> List.sort compare;
    distinct_keys = Hashtbl.length keys;
    duplicates_folded;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>%d witness(es): %d race(s), %d recovery failure(s)" s.total s.races
    s.recovery_failures;
  Format.fprintf ppf "@,distinct keys (cross-program): %d" s.distinct_keys;
  if s.duplicates_folded > 0 then
    Format.fprintf ppf "@,duplicates folded: %d" s.duplicates_folded;
  List.iter
    (fun (p, n) -> Format.fprintf ppf "@,  %-24s %d" p n)
    s.programs;
  Format.fprintf ppf "@]"

let to_jsonl ws =
  let buf = Buffer.create 1024 in
  List.iter
    (fun w ->
      Buffer.add_string buf (Witness.encode w);
      Buffer.add_char buf '\n')
    ws;
  Buffer.contents buf

let save path ws =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl ws))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> loop (lineno + 1) acc
        | line -> (
            match Witness.decode line with
            | Ok w -> loop (lineno + 1) (w :: acc)
            | Error msg ->
                Error (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      loop 1 [])
