type stats = {
  total : int;
  races : int;
  recovery_failures : int;
  consistency_violations : int;
  programs : (string * int) list;
  distinct_keys : int;
  duplicates_folded : int;
}

let dedup ws =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let folded = ref 0 in
  let kept =
    List.filter
      (fun w ->
        let id = Witness.identity w in
        if Hashtbl.mem seen id then begin
          incr folded;
          false
        end
        else begin
          Hashtbl.add seen id ();
          true
        end)
      ws
  in
  (kept, !folded)

let merge corpora = dedup (List.concat corpora)

let stats ?(duplicates_folded = 0) ws =
  let races = ref 0 and rfs = ref 0 and cvs = ref 0 in
  let per_program : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let keys : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (w : Witness.t) ->
      (match w.Witness.kind with
      | Witness.Race -> incr races
      | Witness.Recovery_failure -> incr rfs
      | Witness.Consistency_violation -> incr cvs);
      Hashtbl.replace per_program w.Witness.program
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_program w.Witness.program));
      Hashtbl.replace keys w.Witness.key ())
    ws;
  {
    total = List.length ws;
    races = !races;
    recovery_failures = !rfs;
    consistency_violations = !cvs;
    programs =
      Hashtbl.fold (fun p n acc -> (p, n) :: acc) per_program []
      |> List.sort compare;
    distinct_keys = Hashtbl.length keys;
    duplicates_folded;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>%d witness(es): %d race(s), %d recovery failure(s)" s.total s.races
    s.recovery_failures;
  (* Appended only when present, so pre-oracle corpora render the
     exact bytes they always did. *)
  if s.consistency_violations > 0 then
    Format.fprintf ppf ", %d consistency violation(s)" s.consistency_violations;
  Format.fprintf ppf "@,distinct keys (cross-program): %d" s.distinct_keys;
  if s.duplicates_folded > 0 then
    Format.fprintf ppf "@,duplicates folded: %d" s.duplicates_folded;
  List.iter
    (fun (p, n) -> Format.fprintf ppf "@,  %-24s %d" p n)
    s.programs;
  Format.fprintf ppf "@]"

let to_jsonl ws =
  let buf = Buffer.create 1024 in
  List.iter
    (fun w ->
      Buffer.add_string buf (Witness.encode w);
      Buffer.add_char buf '\n')
    ws;
  Buffer.contents buf

(* Crash-safe: the corpus appears under [path] only once fully
   written, so a reader can never observe a half-saved checkpoint. *)
let save path ws = Yashme_util.Atomic_file.write path (to_jsonl ws)

(* Every failure is a positioned [Error], never an exception: soak
   checkpoints make partial and empty files a real-world input.  An
   empty (or whitespace-only) file is rejected loudly — a corpus you
   can replay must carry at least one witness, and a 0-byte file is
   the signature of an interrupted non-atomic writer. *)
let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec loop lineno acc =
            match input_line ic with
            | exception End_of_file ->
                if acc = [] then
                  Error
                    (Printf.sprintf "%s:1: empty corpus (no witness lines)"
                       path)
                else Ok (List.rev acc)
            | line when String.trim line = "" -> loop (lineno + 1) acc
            | line -> (
                match Witness.decode line with
                | Ok w -> loop (lineno + 1) (w :: acc)
                | Error msg ->
                    Error (Printf.sprintf "%s:%d: %s" path lineno msg))
          in
          loop 1 [])
