(** Deterministic witness replay — the corpus regression gate.

    Each witness is rebuilt into its failure scenario
    ({!Witness.scenario_of}) and re-run through the sandboxed
    {!Pm_harness.Engine.run_scenario}; the witness {e reproduces} when
    its identity key is observed again:

    - a [race] witness reproduces when some detected race (of the
      completed scenario, or gathered before a fault) has the same
      {!Yashme.Race.dedup_key};
    - a [recovery_failure] witness reproduces when the scenario faults
      with the same {!Pm_harness.Finding.recovery_failure_key};
    - a [consistency_violation] witness reproduces when the re-attached
      invariant oracle reports the same
      {!Pm_harness.Finding.consistency_key}.

    WITCHER-style, this validates findings by re-execution: a corpus
    that replays clean means every recorded bug still exists; a replay
    failure is either a fixed bug or a determinism regression — both
    worth failing CI over. *)

(** Keys observed when re-running one scenario: every race key in
    report order, the recovery-failure key if the scenario faulted in
    recovery on a real crash image, and every oracle
    consistency-violation key (sorted; empty without an attached oracle
    context). *)
val observed_keys :
  Pm_harness.Engine.scenario_result ->
  string list * string option * string list

(** Replay one witness.  [Error] carries a human-readable diff: why it
    did not reproduce and which keys were seen instead. *)
val replay_one :
  lookup:(string -> Pm_harness.Program.t option) ->
  Witness.t ->
  (unit, string) result

type failure = { witness : Witness.t; reason : string }

type result = {
  total : int;
  reproduced : int;
  failures : failure list;  (** corpus order *)
}

val replay_all :
  lookup:(string -> Pm_harness.Program.t option) ->
  Witness.t list ->
  result
