(** File I/O and run-to-run comparison for the durable run ledger.

    The schema (entry record, field encoding, version gate, digests,
    field classification) lives in {!Observe.Ledger}; this module binds
    it to the corpus JSONL codec: one {!Json.encode_obj} line per run,
    appended by [--ledger FILE] and re-read by [yashme runs] /
    [yashme compare].  Every line {!Observe.Trace.check_jsonl} accepts
    everything {!append} writes. *)

(** Append one entry to [path] (created if absent), crash-safely: the
    existing entries and the new line are written to a temporary that
    atomically replaces [path], so an interrupted append never leaves
    a truncated ledger. *)
val append : string -> Observe.Ledger.entry -> unit

(** Read and decode a ledger file.  Errors carry the 1-based line
    position (["line N: ..."]); an empty file is an error (a ledger you
    can list must have at least one run), and a line with a version
    newer than {!Observe.Ledger.version} is a positioned error, never a
    silent misread. *)
val load : string -> (Observe.Ledger.entry list, string) result

(** Select one run: a 1-based ordinal into the file ("2" = second
    line), or a unique [e_run] label.  Ambiguous labels and
    out-of-range ordinals are errors. *)
val find :
  Observe.Ledger.entry list -> string -> (Observe.Ledger.entry, string) result

type comparison = {
  cmp_changed : Bench_gate.verdict list;
      (** non-timing numeric fields whose values differ (tolerance 0,
          {!Observe.Ledger.direction}-aware: a [`Higher] field that
          dropped, or a [`Lower] field that rose, is regressed; every
          other delta is a change) *)
  cmp_timing : Bench_gate.verdict list;
      (** timing-class deltas — informational, never gate *)
  cmp_mismatched : (string * string * string) list;
      (** (field, baseline, current) string-field disagreements —
          comparing runs of different programs/variants/digests fails *)
  cmp_passed : bool;
      (** no non-timing numeric delta and no string mismatch *)
}

(** Compare two runs field by field.  The field set is the union of
    both sides' numeric fields (a side missing a field contributes 0,
    so a cost center present in only one run surfaces as a delta
    rather than vanishing); unknown extra fields never error. *)
val compare_runs :
  baseline:Observe.Ledger.entry -> current:Observe.Ledger.entry -> comparison

(** Deterministic rendering: changed fields (regressions flagged),
    string mismatches, timing deltas, and a final
    ["ledger compare: PASS"]/[FAIL] line. *)
val render : a_label:string -> b_label:string -> comparison -> string
