module Engine = Pm_harness.Engine
module Finding = Pm_harness.Finding

let observed_keys (result : Engine.scenario_result) =
  match result with
  | Engine.Completed c ->
      ( List.map Yashme.Race.dedup_key c.Engine.races,
        None,
        List.map fst c.Engine.violations )
  | Engine.Faulted f ->
      ( List.map Yashme.Race.dedup_key f.Engine.f_races,
        (if Finding.is_recovery_failure f.Engine.f_info then
           Some (Finding.recovery_failure_key f.Engine.f_info)
         else None),
        [] )

let replay_one ~lookup (w : Witness.t) =
  match Witness.scenario_of ~lookup w with
  | Error msg -> Error msg
  | Ok scenario -> (
      let result = Engine.run_scenario scenario in
      let race_keys, rf_key, consistency_keys = observed_keys result in
      let seen_summary () =
        let keys =
          List.sort_uniq compare
            (race_keys @ Option.to_list rf_key @ consistency_keys)
        in
        if keys = [] then "no race, recovery failure or violation observed"
        else "observed instead: " ^ String.concat ", " keys
      in
      match w.Witness.kind with
      | Witness.Race ->
          if List.mem w.Witness.key race_keys then Ok ()
          else
            Error
              (Printf.sprintf "race key %S did not reproduce (%s)"
                 w.Witness.key (seen_summary ()))
      | Witness.Recovery_failure ->
          if rf_key = Some w.Witness.key then Ok ()
          else
            Error
              (Printf.sprintf "recovery-failure key %S did not reproduce (%s)"
                 w.Witness.key (seen_summary ()))
      | Witness.Consistency_violation ->
          if List.mem w.Witness.key consistency_keys then Ok ()
          else
            Error
              (Printf.sprintf
                 "consistency-violation key %S did not reproduce (%s)"
                 w.Witness.key (seen_summary ())))

type failure = { witness : Witness.t; reason : string }
type result = { total : int; reproduced : int; failures : failure list }

let replay_all ~lookup ws =
  let failures = ref [] in
  let reproduced = ref 0 in
  List.iter
    (fun w ->
      match replay_one ~lookup w with
      | Ok () -> incr reproduced
      | Error reason -> failures := { witness = w; reason } :: !failures)
    ws;
  { total = List.length ws; reproduced = !reproduced; failures = List.rev !failures }
