(** Serializable race witnesses.

    The paper reports each persistency race as "the pre-crash execution
    prefix E+ combined with the post-crash execution E'" (§5.1); a
    witness is the durable form of that pair: everything needed to
    rebuild the failure scenario that exhibited a finding — program
    name, crash plan(s), full {!Pm_harness.Scenario.options} (detector
    mode, seed, policies, budgets) — plus the finding's stable identity
    key and a human-readable exemplar.

    One witness is one single-line JSON object (see {!Json}); a corpus
    is a JSONL file of them.  The format is versioned ({!version});
    decoding rejects other versions loudly rather than misreading
    them.

    Witness extraction ({!of_pairs}) walks an exploration's
    submission-ordered scenario/result pairs and emits one witness per
    {e first} observation of each identity key — the same
    exemplar-selection rule {!Pm_harness.Report.dedup} uses, so the
    emitted corpus is byte-identical across [--jobs] counts and its key
    set equals the report's. *)

module Executor = Pm_runtime.Executor
module Scenario = Pm_harness.Scenario
module Engine = Pm_harness.Engine
module Runner = Pm_harness.Runner

(** Format version written to every line.  Decoding accepts
    [oldest_readable]..[version]: v1 predates the persistency-model
    variant field (such witnesses load with the strict-tso default),
    v2 predates the consistency-violation kind — both still decode
    because v3 changed only the [kind] vocabulary, not the line
    shape. *)
val version : int

val oldest_readable : int

type kind =
  | Race  (** key = {!Yashme.Race.dedup_key} of the racing store *)
  | Recovery_failure
      (** key = {!Pm_harness.Finding.recovery_failure_key} *)
  | Consistency_violation
      (** key = {!Pm_harness.Finding.consistency_key} — an
          invariant-oracle finding; its scenario only reproduces with
          the oracle context re-attached (see {!scenario_of}) *)

val kind_label : kind -> string

type t = {
  kind : kind;
  program : string;  (** registry name — the replay lookup handle *)
  key : string;  (** stable identity of the finding *)
  plan : Executor.plan;  (** pre-crash plan of the witnessing scenario *)
  post_plan : Executor.plan;  (** first-recovery plan (two-crash chains) *)
  options : Scenario.options;  (** full options, seed included *)
  summary : string;  (** rendered exemplar (display only) *)
}

(** Corpus-level identity: kind + program + key.  Two witnesses with
    equal identity describe the same finding; merge keeps the first. *)
val identity : t -> string

(** One JSON line (no trailing newline).  Deterministic: equal
    witnesses encode to equal bytes. *)
val encode : t -> string

(** Decode one line; [Error] on malformed JSON, unknown fields of the
    wrong type, or a version mismatch. *)
val decode : string -> (t, string) result

(** Rebuild the witness's failure scenario.  Runs the program's setup
    materialization, so a raising setup is reported as [Error], not an
    exception.  For a {!Consistency_violation} witness the oracle
    context is rebuilt from the program's observe hook via
    {!Pm_harness.Runner.prepare_oracle} under the witness's options
    (the context holds closures and is never serialized); a program
    without an observe hook is an [Error]. *)
val scenario_of :
  lookup:(string -> Pm_harness.Program.t option) ->
  t ->
  (Scenario.t, string) result

type extraction = {
  witnesses : t list;  (** first-observation order *)
  raw : int;  (** candidate observations walked *)
  duplicates : int;  (** observations folded into an existing witness *)
}

(** Extract witnesses from a driver {!Pm_harness.Runner.outcome}'s
    pairs.  [Full] pairs contribute race observations (and, for faulted
    scenarios, the recovery-failure fault); [Faults_only] pairs
    contribute only the fault — mirroring exactly what the report
    kept. *)
val of_pairs :
  program:string ->
  (Scenario.t * Engine.scenario_result * Runner.evidence) list ->
  extraction

(** {!of_pairs} over a whole {!Pm_harness.Runner.outcome}. *)
val of_outcome : program:string -> Runner.outcome -> extraction
