(* The benchmark regression gate.

   bench/main.exe writes its engine-throughput summary as a JSONL file
   of flat objects ({!Json.encode_obj} shape); the gate re-reads two
   such files — a committed baseline and a fresh run — and compares
   one numeric metric per benchmark under a percentage tolerance.
   Higher is better (the default metric is [ops_per_s]): a current
   value below [baseline * (1 - tolerance/100)] regresses, and a
   baseline benchmark missing from the current file fails the gate
   outright (a silently dropped benchmark must not read as a pass). *)

type entry = { e_key : string; e_fields : (string * Json.value) list }

let field e name = List.assoc_opt name e.e_fields

let number e name =
  match field e name with
  | Some (`I i) -> Some (float_of_int i)
  | Some (`F f) -> Some f
  | _ -> None

(* Identity of one benchmark row: its name plus the job count when
   present, so jobs=1 and jobs=N rows of one benchmark gate
   independently. *)
let key_of fields =
  let str name =
    match List.assoc_opt name fields with
    | Some (`S s) -> Some s
    | Some (`I i) -> Some (string_of_int i)
    | _ -> None
  in
  match str "bench" with
  | None -> None
  | Some bench -> (
      match str "jobs" with
      | None -> Some bench
      | Some jobs -> Some (Printf.sprintf "%s[jobs=%s]" bench jobs))

let of_jsonl data =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' data)
  in
  let rec loop i acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match Json.decode_obj l with
        | Error e -> Error (Printf.sprintf "line %d: %s" i e)
        | Ok fields -> (
            match key_of fields with
            | None -> Error (Printf.sprintf "line %d: no \"bench\" field" i)
            | Some key -> loop (i + 1) ({ e_key = key; e_fields = fields } :: acc) rest))
  in
  loop 1 [] lines

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | data ->
      if String.trim data = "" then
        Error (Printf.sprintf "%s: empty bench file" path)
      else of_jsonl data

type verdict = {
  v_key : string;
  v_metric : string;
  v_baseline : float;
  v_current : float;
  v_delta_pct : float;  (* (current - baseline) / baseline * 100 *)
  v_regressed : bool;
}

type better = Higher | Lower

(* One metric comparison under a percentage tolerance.  [Higher] means
   higher-is-better (throughput: regress when current drops below the
   tolerance band); [Lower] means lower-is-better (latency, counts of
   bad events: regress when current rises above it).  Shared with the
   run-ledger compare, which judges counter deltas with tolerance 0. *)
let judge ~key ~metric ?(better = Higher) ~tolerance ~baseline ~current () =
  let delta_pct =
    if baseline <> 0. then (current -. baseline) /. baseline *. 100. else 0.
  in
  let regressed =
    match better with
    | Higher -> current < baseline *. (1. -. (tolerance /. 100.))
    | Lower -> current > baseline *. (1. +. (tolerance /. 100.))
  in
  {
    v_key = key;
    v_metric = metric;
    v_baseline = baseline;
    v_current = current;
    v_delta_pct = delta_pct;
    v_regressed = regressed;
  }

type outcome = {
  passed : bool;
  verdicts : verdict list;  (* baseline order *)
  missing : string list;  (* baseline keys absent from current *)
}

(* Gate [current] against [baseline] on several metrics per row.  Each
   baseline row is judged once per (metric, direction); a metric absent
   on either side fails loudly under the row's ["key.metric"] name,
   like a missing benchmark. *)
let diff_metrics ~metrics ~tolerance ~baseline ~current () =
  let verdicts = ref [] and missing = ref [] in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.e_key = b.e_key) current with
      | None -> missing := b.e_key :: !missing
      | Some c ->
          List.iter
            (fun (metric, better) ->
              match (number b metric, number c metric) with
              | Some bv, Some cv ->
                  verdicts :=
                    judge ~key:b.e_key ~metric ~better ~tolerance ~baseline:bv
                      ~current:cv ()
                    :: !verdicts
              | _ -> missing := (b.e_key ^ "." ^ metric) :: !missing)
            metrics)
    baseline;
  let verdicts = List.rev !verdicts and missing = List.rev !missing in
  let passed = missing = [] && not (List.exists (fun v -> v.v_regressed) verdicts) in
  { passed; verdicts; missing }

let diff ?(metric = "ops_per_s") ~tolerance ~baseline ~current () =
  diff_metrics ~metrics:[ (metric, Higher) ] ~tolerance ~baseline ~current ()

(* The scaling gate's metric set: parallel speedup and efficiency,
   both higher-is-better.  Used by [yashme bench-diff --scaling] over
   [bench --jobs-sweep] rows. *)
let scaling_metrics = [ ("speedup", Higher); ("efficiency", Higher) ]

let pp_verdict ppf v =
  Format.fprintf ppf "%s %s: baseline %.1f, current %.1f (%+.1f%%)%s" v.v_key
    v.v_metric v.v_baseline v.v_current v.v_delta_pct
    (if v.v_regressed then " REGRESSED" else "")

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>";
  List.iter (fun v -> Format.fprintf ppf "%a@," pp_verdict v) o.verdicts;
  List.iter (fun k -> Format.fprintf ppf "%s: MISSING from current@," k) o.missing;
  Format.fprintf ppf "bench gate: %s@]" (if o.passed then "PASS" else "FAIL")

let outcome_to_string o = Format.asprintf "%a" pp_outcome o
