(** Persistence for the soak service ({!Pm_harness.Soak}): the
    deduplicating witness sink fed by [on_batch], and the versioned
    run manifest that makes a soak run a durable, resumable artifact.

    A checkpoint is two files, both written crash-safely
    ({!Yashme_util.Atomic_file}): the witness corpus (ordinary
    {!Corpus} JSONL, only written once non-empty) and the manifest —
    one {!Json} line carrying the run's configuration (seed, budgets,
    variant, streams), the driver {!Pm_harness.Soak.snapshot}
    (per-combo fault/quarantine state flattened to [bucket:*] fields),
    sink counters, a coverage digest and the [soak_ok] marker.  Since
    soak scenarios are pure functions of (seed, round, combo), the
    manifest plus the corpus is everything resume needs: no RNG state,
    no scenario queue. *)

module Soak = Pm_harness.Soak

(** {1 Witness sink}

    Cross-round first-occurrence dedup by {!Witness.identity} — the
    corpus-level rule — so checkpoints re-save a stable, growing
    witness list. *)

type sink

val sink : unit -> sink

(** Seed the sink with a loaded checkpoint corpus (resume): the
    witnesses keep their order and their identities suppress
    re-observations in later rounds. *)
val preload : sink -> Witness.t list -> unit

(** Absorb one soak round's [(program_name, scenario, result)] triples
    (the {!Pm_harness.Soak.run} [on_batch] feed), extracting witnesses
    with {!Witness.of_pairs} and folding duplicates. *)
val absorb : sink -> (string * Pm_harness.Scenario.t * Pm_harness.Engine.scenario_result) list -> unit

(** Witnesses in first-observation order. *)
val witnesses : sink -> Witness.t list

val raw : sink -> int  (** candidate observations walked *)

val duplicates : sink -> int  (** observations folded by dedup *)

(** {1 Run manifest} *)

val version : int

type manifest = {
  m_run : string;  (** run label *)
  m_streams : string list;  (** soaked stream names, config order *)
  m_seed : int;
  m_variant : string;  (** persistency-model variant label *)
  m_jobs : int;
  m_ops_per_exec : int;
  m_fault_budget : int;
  m_max_ops : int option;
  m_wall_s : float option;
  m_checkpoint_every : int;
  m_corpus : string;  (** checkpoint corpus path ("" when none) *)
  m_snapshot : Soak.snapshot;
  m_witnesses : int;  (** sink witness count (0 = no corpus written) *)
  m_raw : int;
  m_duplicates : int;
  m_coverage_digest : string;
  m_soak_ok : bool;  (** true iff the run ended by budget *)
  m_stopped : string;
      (** {!Soak.stop_reason_label} of the final stop, or ["running"]
          for an intermediate checkpoint *)
  m_ts : float;  (** wall-clock stamp (timing; excluded from identity) *)
  m_elapsed_s : float;  (** invocation wall time (timing) *)
}

(** One deterministic JSON line (no trailing newline); equal manifests
    encode to equal bytes.  {!Observe.Trace.check_jsonl} accepts it. *)
val encode : manifest -> string

(** Decode one manifest line: positioned on nothing (a manifest is one
    line) but loud on malformed JSON, missing fields, or a version
    newer than {!version}. *)
val decode : string -> (manifest, string) result

(** The fields two runs of the same seed must agree on: everything
    except the timing stamps ([ts], [elapsed_s]).  Byte-compare the
    encodings of two identity projections to check reproducibility. *)
val identity_fields : manifest -> (string * Json.value) list

(** Write [path] crash-safely (tmp + atomic rename). *)
val save : string -> manifest -> unit

(** Load a manifest file: first non-blank line decoded; empty,
    unreadable or malformed files are positioned [Error]s, never
    exceptions. *)
val load : string -> (manifest, string) result
