(* Run-ledger file I/O and comparison.

   The schema lives in Observe.Ledger; here it meets the corpus JSONL
   codec (Json.encode_obj / Json.decode_obj — the two field types are
   the same structural polymorphic variant, so entries flow through
   without conversion) and the bench gate's tolerance judge. *)

module Ledger = Observe.Ledger

(* Crash-safe append: existing entries plus the new line are republished
   under [path] by atomic rename ({!Yashme_util.Atomic_file}), so an
   interrupted append can never truncate earlier runs.  Ledgers are
   small (one line per run), so the copy is cheap. *)
let append path e =
  Yashme_util.Atomic_file.append_line path (Json.encode_obj (Ledger.fields e))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | data ->
      if String.trim data = "" then
        Error (Printf.sprintf "%s: empty ledger" path)
      else
        let lines =
          List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' data)
        in
        let rec loop i acc = function
          | [] -> Ok (List.rev acc)
          | l :: rest -> (
              match Json.decode_obj l with
              | Error e -> Error (Printf.sprintf "line %d: %s" i e)
              | Ok fields -> (
                  match Ledger.of_fields fields with
                  | Error e -> Error (Printf.sprintf "line %d: %s" i e)
                  | Ok entry -> loop (i + 1) (entry :: acc) rest))
        in
        loop 1 [] lines

let find entries sel =
  let n = List.length entries in
  match int_of_string_opt sel with
  | Some i ->
      if i >= 1 && i <= n then Ok (List.nth entries (i - 1))
      else
        Error
          (Printf.sprintf "run %d out of range (ledger has %d run%s)" i n
             (if n = 1 then "" else "s"))
  | None -> (
      match List.filter (fun e -> e.Ledger.e_run = sel) entries with
      | [ e ] -> Ok e
      | [] -> Error (Printf.sprintf "no run labelled %S in ledger" sel)
      | l ->
          Error
            (Printf.sprintf "%d runs labelled %S; select by 1-based ordinal"
               (List.length l) sel))

type comparison = {
  cmp_changed : Bench_gate.verdict list;
  cmp_timing : Bench_gate.verdict list;
  cmp_mismatched : (string * string * string) list;
  cmp_passed : bool;
}

let compare_runs ~baseline ~current =
  let bn = Ledger.numeric_fields baseline in
  let cn = Ledger.numeric_fields current in
  (* Union of both sides' fields, baseline order first: a cost center
     recorded by only one run must surface as a delta against 0, not
     silently vanish. *)
  let keys =
    List.map fst bn
    @ List.filter (fun k -> not (List.mem_assoc k bn)) (List.map fst cn)
  in
  let changed = ref [] and timing = ref [] in
  List.iter
    (fun k ->
      let bv = Option.value ~default:0. (List.assoc_opt k bn) in
      let cv = Option.value ~default:0. (List.assoc_opt k cn) in
      if bv <> cv then begin
        let v =
          match Ledger.direction k with
          | `Higher ->
              Bench_gate.judge ~key:k ~metric:k ~better:Bench_gate.Higher
                ~tolerance:0. ~baseline:bv ~current:cv ()
          | `Lower ->
              Bench_gate.judge ~key:k ~metric:k ~better:Bench_gate.Lower
                ~tolerance:0. ~baseline:bv ~current:cv ()
          | `Neutral ->
              (* any delta is a change, neither direction a regression *)
              {
                (Bench_gate.judge ~key:k ~metric:k ~tolerance:0. ~baseline:bv
                   ~current:cv ())
                with
                Bench_gate.v_regressed = false;
              }
        in
        if Ledger.timing_field k then
          (* informational only — never flagged, never gates *)
          timing := { v with Bench_gate.v_regressed = false } :: !timing
        else changed := v :: !changed
      end)
    keys;
  let cmp_changed = List.rev !changed and cmp_timing = List.rev !timing in
  let bs = Ledger.string_fields baseline in
  let cs = Ledger.string_fields current in
  let cmp_mismatched =
    List.filter_map
      (fun (k, a) ->
        match List.assoc_opt k cs with
        | Some b when b <> a -> Some (k, a, b)
        | _ -> None)
      bs
  in
  {
    cmp_changed;
    cmp_timing;
    cmp_mismatched;
    cmp_passed = cmp_changed = [] && cmp_mismatched = [];
  }

(* %g keeps integral counters integral ("3", not "3.0") while still
   rendering real-valued timings, so the golden compare output is
   stable and readable. *)
let render ~a_label ~b_label c =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  add "ledger compare: %s (baseline) vs %s (current)" a_label b_label;
  List.iter
    (fun (f, a, b) -> add "  %s: %S != %S MISMATCH" f a b)
    c.cmp_mismatched;
  List.iter
    (fun (v : Bench_gate.verdict) ->
      add "  %s: %g -> %g (%+.1f%%)%s" v.Bench_gate.v_key v.Bench_gate.v_baseline
        v.Bench_gate.v_current v.Bench_gate.v_delta_pct
        (if v.Bench_gate.v_regressed then " REGRESSED" else " CHANGED"))
    c.cmp_changed;
  if c.cmp_changed = [] && c.cmp_mismatched = [] then
    add "  no non-timing deltas";
  List.iter
    (fun (v : Bench_gate.verdict) ->
      add "  [timing] %s: %g -> %g" v.Bench_gate.v_key v.Bench_gate.v_baseline
        v.Bench_gate.v_current)
    c.cmp_timing;
  add "ledger compare: %s" (if c.cmp_passed then "PASS" else "FAIL");
  String.concat "\n" (List.rev !lines)
