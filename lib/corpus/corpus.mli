(** Corpus files: JSONL collections of witnesses with key-based dedup.

    A corpus file holds one {!Witness.t} per line.  All operations
    deduplicate by {!Witness.identity} keeping the {e first}
    occurrence, so {!merge} is idempotent: merging a saved corpus with
    itself re-emits the original file byte-for-byte. *)

type stats = {
  total : int;  (** witnesses after dedup *)
  races : int;
  recovery_failures : int;
  consistency_violations : int;  (** invariant-oracle findings *)
  programs : (string * int) list;  (** per-program counts, sorted by name *)
  distinct_keys : int;
      (** distinct finding keys ignoring the program — cross-program
          collisions (e.g. one PMDK library bug surfacing through
          several example programs) collapse here *)
  duplicates_folded : int;  (** input lines dropped by dedup *)
}

(** First-occurrence dedup by {!Witness.identity}.  Returns the kept
    witnesses (input order) and the number folded away. *)
val dedup : Witness.t list -> Witness.t list * int

(** Concatenate-then-{!dedup}. *)
val merge : Witness.t list list -> Witness.t list * int

val stats : ?duplicates_folded:int -> Witness.t list -> stats
val pp_stats : Format.formatter -> stats -> unit

(** Render witnesses as JSONL (one line each, trailing newline). *)
val to_jsonl : Witness.t list -> string

(** Write a corpus file ({!to_jsonl} bytes), crash-safely: the bytes
    go to a temporary which atomically replaces [path]
    ({!Yashme_util.Atomic_file}), so an interrupted save never leaves
    a truncated corpus. *)
val save : string -> Witness.t list -> unit

(** Load and decode a corpus file.  Never raises: [Error] carries a
    positioned reason ([file:line: ...]) for malformed or mid-line
    truncated input, an unreadable path reports the system error, and
    an empty (or whitespace-only) file is an error — the signature of
    an interrupted non-atomic writer, not a valid corpus. *)
val load : string -> (Witness.t list, string) result
