module Executor = Pm_runtime.Executor
module Scenario = Pm_harness.Scenario
module Engine = Pm_harness.Engine
module Runner = Pm_harness.Runner
module Finding = Pm_harness.Finding

(* v3 added the "consistency_violation" kind (invariant-oracle
   findings); the line shape is unchanged, so v2 and v1 lines still
   decode (v1 predates the "variant" options field and defaults to the
   strict-tso variant). *)
let version = 3
let oldest_readable = 1

type kind = Race | Recovery_failure | Consistency_violation

let kind_label = function
  | Race -> "race"
  | Recovery_failure -> "recovery_failure"
  | Consistency_violation -> "consistency_violation"

let kind_of_label = function
  | "race" -> Some Race
  | "recovery_failure" -> Some Recovery_failure
  | "consistency_violation" -> Some Consistency_violation
  | _ -> None

type t = {
  kind : kind;
  program : string;
  key : string;
  plan : Executor.plan;
  post_plan : Executor.plan;
  options : Scenario.options;
  summary : string;
}

let identity w =
  Printf.sprintf "%s|%s|%s" (kind_label w.kind) w.program w.key

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)

(* Field order is part of the format: a corpus re-emitted from equal
   witnesses must be byte-identical (merge idempotence, jobs
   invariance). *)
let encode w =
  Json.encode_obj
    ([
       ("v", `I version);
       ("kind", `S (kind_label w.kind));
       ("program", `S w.program);
       ("key", `S w.key);
       ("plan", `S (Executor.plan_label w.plan));
       ("post_plan", `S (Executor.plan_label w.post_plan));
     ]
    @ (Scenario.options_fields w.options :> (string * Json.value) list)
    @ [ ("summary", `S w.summary) ])

let decode line =
  let ( let* ) = Result.bind in
  let* fields = Json.decode_obj line in
  let str key =
    match List.assoc_opt key fields with
    | Some (`S s) -> Ok s
    | _ -> Error (Printf.sprintf "witness: missing or non-string %S" key)
  in
  let* () =
    match List.assoc_opt "v" fields with
    | Some (`I v) when v >= oldest_readable && v <= version -> Ok ()
    | Some (`I v) ->
        Error
          (Printf.sprintf "witness: format version %d (this build reads %d-%d)"
             v oldest_readable version)
    | _ -> Error "witness: missing version field \"v\""
  in
  let* kind =
    let* s = str "kind" in
    match kind_of_label s with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "witness: unknown kind %S" s)
  in
  let* program = str "program" in
  let* key = str "key" in
  let plan_field name =
    let* s = str name in
    match Executor.plan_of_label s with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "witness: unknown %s %S" name s)
  in
  let* plan = plan_field "plan" in
  let* post_plan = plan_field "post_plan" in
  let* options =
    Scenario.options_of_fields (fields :> (string * Scenario.field) list)
  in
  let* summary = str "summary" in
  Ok { kind; program; key; plan; post_plan; options; summary }

(* ------------------------------------------------------------------ *)
(* Scenario reconstruction                                              *)

let scenario_of ~lookup w =
  match lookup w.program with
  | None -> Error (Printf.sprintf "unknown program %S" w.program)
  | Some p -> (
      (* A consistency witness only reproduces with its oracle context
         re-attached: the context holds closures (never serialized), so
         it is rebuilt here from the program's observe hook — crash-free
         reference runs under the witness's own options, hence the same
         inferred invariants as the original run. *)
      let oracle () =
        match w.kind with
        | Race | Recovery_failure -> Ok None
        | Consistency_violation -> (
            match Runner.prepare_oracle ~options:w.options p with
            | Some prep -> Ok (Some prep.Runner.op_ctx)
            | None ->
                Error
                  (Printf.sprintf "program %S has no observe hook" w.program)
            | exception e ->
                Error
                  (Printf.sprintf "oracle preparation for %S raised %s"
                     w.program (Printexc.to_string e)))
      in
      match oracle () with
      | Error msg -> Error msg
      | Ok oracle -> (
          match Engine.materialize_setup ~options:w.options p with
          | setup ->
              Ok
                (Scenario.of_program ?oracle ~post_plan:w.post_plan ~setup
                   ~plan:w.plan ~options:w.options p)
          | exception e ->
              Error
                (Printf.sprintf "setup of %S raised %s" w.program
                   (Printexc.to_string e))))

(* ------------------------------------------------------------------ *)
(* Extraction                                                           *)

type extraction = { witnesses : t list; raw : int; duplicates : int }

let of_pairs ~program pairs =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let acc = ref [] in
  let raw = ref 0 in
  let dups = ref 0 in
  let emit w =
    incr raw;
    let id = identity w in
    if Hashtbl.mem seen id then incr dups
    else begin
      Hashtbl.add seen id ();
      acc := w :: !acc
    end
  in
  let of_scenario (s : Scenario.t) kind key summary =
    {
      kind;
      program;
      key;
      plan = s.Scenario.plan;
      post_plan = s.Scenario.post_plan;
      options = s.Scenario.options;
      summary;
    }
  in
  let races s rs =
    List.iter
      (fun (r : Yashme.Race.t) ->
        emit
          (of_scenario s Race (Yashme.Race.dedup_key r) (Yashme.Race.to_string r)))
      rs
  in
  let consistencies (s : Scenario.t) (c : Engine.completed) =
    List.iter
      (fun (k, d) ->
        let f =
          {
            Finding.c_label = c.Engine.label;
            c_key = k;
            c_detail = d;
            c_plan = Executor.plan_label s.Scenario.plan;
            c_post_plan = Executor.plan_label s.Scenario.post_plan;
            c_seed = s.Scenario.options.Scenario.seed;
          }
        in
        emit
          (of_scenario s Consistency_violation k
             (Finding.consistency_to_string f)))
      c.Engine.violations
  in
  List.iter
    (fun ((s : Scenario.t), (result : Engine.scenario_result), evidence) ->
      match (result, (evidence : Runner.evidence)) with
      | Engine.Completed c, Runner.Full ->
          races s c.Engine.races;
          consistencies s c
      | Engine.Faulted f, Runner.Full | Engine.Faulted f, Runner.Faults_only ->
          (* Race evidence gathered before the fault only counts when
             the report kept it ([Full]); the recovery-failure finding
             itself always does. *)
          (match evidence with
          | Runner.Full -> races s f.Engine.f_races
          | Runner.Faults_only -> ());
          if Finding.is_recovery_failure f.Engine.f_info then
            emit
              (of_scenario s Recovery_failure
                 (Finding.recovery_failure_key f.Engine.f_info)
                 (Finding.to_string f.Engine.f_info))
      | Engine.Completed _, Runner.Faults_only -> ())
    pairs;
  { witnesses = List.rev !acc; raw = !raw; duplicates = !dups }

let of_outcome ~program (o : Runner.outcome) = of_pairs ~program o.Runner.o_pairs
