(** Dependency-free flat JSON codec for the witness corpus.

    One witness is one single-line JSON object whose values are scalars
    (string, int, float, bool, null) — no nesting.  The encoder is
    deterministic (field order preserved, fixed number rendering), so a
    corpus emitted twice from the same exploration is byte-identical;
    {!Observe.Trace.check_jsonl} accepts everything {!encode_obj}
    produces.

    The value type is a structural polymorphic variant shared with
    {!Pm_harness.Scenario.field}, so option field lists flow through
    without conversion. *)

type value = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

(** Escape and quote a JSON string. *)
val escape : string -> string

(** Render a flat object; field order is preserved verbatim. *)
val encode_obj : (string * value) list -> string

(** Parse a flat object.  Rejects nested arrays/objects (the corpus
    format has none) with a descriptive error.  Floats are
    distinguished from ints by the presence of [.], [e] or [E]. *)
val decode_obj : string -> ((string * value) list, string) result
