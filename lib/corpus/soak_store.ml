(* Soak persistence: witness sink + versioned run manifest.

   The manifest is one flat Json line, like a witness or ledger entry,
   so the trace linter and the corpus codec cover it for free.  The
   per-combo quarantine state is flattened to [bucket:LABEL:faults] /
   [bucket:LABEL:quarantined] fields — labels contain ':' themselves,
   so decoding strips the fixed prefix and suffixes rather than
   splitting. *)

module Soak = Pm_harness.Soak
module Scenario = Pm_harness.Scenario
module Engine = Pm_harness.Engine
module Runner = Pm_harness.Runner

(* ------------------------------------------------------------------ *)
(* Witness sink                                                         *)

type sink = {
  mutable sk_rev : Witness.t list;  (* reverse first-observation order *)
  sk_seen : (string, unit) Hashtbl.t;
  mutable sk_raw : int;
  mutable sk_dups : int;
}

let sink () =
  { sk_rev = []; sk_seen = Hashtbl.create 64; sk_raw = 0; sk_dups = 0 }

let preload s ws =
  List.iter
    (fun w ->
      let id = Witness.identity w in
      if not (Hashtbl.mem s.sk_seen id) then begin
        Hashtbl.add s.sk_seen id ();
        s.sk_rev <- w :: s.sk_rev
      end)
    ws

let absorb s triples =
  List.iter
    (fun (name, sc, res) ->
      let ex = Witness.of_pairs ~program:name [ (sc, res, Runner.Full) ] in
      s.sk_raw <- s.sk_raw + ex.Witness.raw;
      s.sk_dups <- s.sk_dups + ex.Witness.duplicates;
      List.iter
        (fun w ->
          let id = Witness.identity w in
          if Hashtbl.mem s.sk_seen id then s.sk_dups <- s.sk_dups + 1
          else begin
            Hashtbl.add s.sk_seen id ();
            s.sk_rev <- w :: s.sk_rev
          end)
        ex.Witness.witnesses)
    triples

let witnesses s = List.rev s.sk_rev
let raw s = s.sk_raw
let duplicates s = s.sk_dups

(* ------------------------------------------------------------------ *)
(* Manifest                                                             *)

let version = 1

type manifest = {
  m_run : string;
  m_streams : string list;
  m_seed : int;
  m_variant : string;
  m_jobs : int;
  m_ops_per_exec : int;
  m_fault_budget : int;
  m_max_ops : int option;
  m_wall_s : float option;
  m_checkpoint_every : int;
  m_corpus : string;
  m_snapshot : Soak.snapshot;
  m_witnesses : int;
  m_raw : int;
  m_duplicates : int;
  m_coverage_digest : string;
  m_soak_ok : bool;
  m_stopped : string;
  m_ts : float;
  m_elapsed_s : float;
}

let bucket_prefix = "bucket:"
let faults_suffix = ":faults"
let quarantined_suffix = ":quarantined"

let identity_fields m =
  let s = m.m_snapshot in
  [
    ("manifest_version", `I version);
    ("run", `S m.m_run);
    ("streams", `S (String.concat "," m.m_streams));
    ("seed", `I m.m_seed);
    ("variant", `S m.m_variant);
    ("jobs", `I m.m_jobs);
    ("ops_per_exec", `I m.m_ops_per_exec);
    ("fault_budget", `I m.m_fault_budget);
    ("max_ops", match m.m_max_ops with Some n -> `I n | None -> `Null);
    ("wall_s", match m.m_wall_s with Some w -> `F w | None -> `Null);
    ("checkpoint_every", `I m.m_checkpoint_every);
    ("corpus", `S m.m_corpus);
    ("next_round", `I s.Soak.snap_next_round);
    ("scenarios", `I s.Soak.snap_scenarios);
    ("completed", `I s.Soak.snap_completed);
    ("faulted", `I s.Soak.snap_faulted);
    ("diverged", `I s.Soak.snap_diverged);
    ("crashed", `I s.Soak.snap_crashed);
    ("executions", `I s.Soak.snap_executions);
    ("ops", `I s.Soak.snap_ops);
    ("client_ops", `I s.Soak.snap_client_ops);
    ("races", `I s.Soak.snap_races);
  ]
  @ List.concat_map
      (fun b ->
        [
          (bucket_prefix ^ b.Soak.bs_combo ^ faults_suffix, `I b.Soak.bs_faults);
          ( bucket_prefix ^ b.Soak.bs_combo ^ quarantined_suffix,
            `B b.Soak.bs_quarantined );
        ])
      s.Soak.snap_buckets
  @ [
      ("witnesses", `I m.m_witnesses);
      ("raw", `I m.m_raw);
      ("duplicates", `I m.m_duplicates);
      ("coverage_digest", `S m.m_coverage_digest);
      ("soak_ok", `B m.m_soak_ok);
      ("stopped", `S m.m_stopped);
    ]

let fields m =
  identity_fields m @ [ ("ts", `F m.m_ts); ("elapsed_s", `F m.m_elapsed_s) ]

let encode m = Json.encode_obj (fields m)

(* Field accessors over the decoded assoc list. *)
let str fields k =
  match List.assoc_opt k fields with
  | Some (`S s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %s: expected a string" k)
  | None -> Error (Printf.sprintf "missing field %s" k)

let int fields k =
  match List.assoc_opt k fields with
  | Some (`I i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %s: expected an int" k)
  | None -> Error (Printf.sprintf "missing field %s" k)

let boolean fields k =
  match List.assoc_opt k fields with
  | Some (`B b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %s: expected a bool" k)
  | None -> Error (Printf.sprintf "missing field %s" k)

let flt fields k =
  match List.assoc_opt k fields with
  | Some (`F f) -> Ok f
  | Some (`I i) -> Ok (float_of_int i)
  | Some _ -> Error (Printf.sprintf "field %s: expected a number" k)
  | None -> Error (Printf.sprintf "missing field %s" k)

let opt_int fields k =
  match List.assoc_opt k fields with
  | Some (`I i) -> Ok (Some i)
  | Some `Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "field %s: expected an int or null" k)

let opt_flt fields k =
  match List.assoc_opt k fields with
  | Some (`F f) -> Ok (Some f)
  | Some (`I i) -> Ok (Some (float_of_int i))
  | Some `Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "field %s: expected a number or null" k)

let strip_affixes name =
  (* "bucket:LABEL:faults" -> (LABEL, `Faults); labels contain ':'. *)
  let plen = String.length bucket_prefix in
  let body = String.sub name plen (String.length name - plen) in
  let ends_with suffix =
    let sl = String.length suffix and bl = String.length body in
    bl > sl && String.sub body (bl - sl) sl = suffix
  in
  if ends_with faults_suffix then
    Some
      ( String.sub body 0 (String.length body - String.length faults_suffix),
        `Faults )
  else if ends_with quarantined_suffix then
    Some
      ( String.sub body 0
          (String.length body - String.length quarantined_suffix),
        `Quarantined )
  else None

(* Rebuild bucket states from the flattened fields, preserving field
   (= snapshot) order. *)
let buckets_of fields =
  let order = ref [] and faults = Hashtbl.create 8 and quar = Hashtbl.create 8 in
  let note label = if not (List.mem label !order) then order := label :: !order in
  let rec walk = function
    | [] -> Ok ()
    | (name, v) :: rest
      when String.length name > String.length bucket_prefix
           && String.sub name 0 (String.length bucket_prefix) = bucket_prefix
      -> (
        match (strip_affixes name, v) with
        | Some (label, `Faults), `I n ->
            note label;
            Hashtbl.replace faults label n;
            walk rest
        | Some (label, `Quarantined), `B b ->
            note label;
            Hashtbl.replace quar label b;
            walk rest
        | _ -> Error (Printf.sprintf "malformed bucket field %s" name))
    | _ :: rest -> walk rest
  in
  match walk fields with
  | Error e -> Error e
  | Ok () ->
      Ok
        (List.rev_map
           (fun label ->
             {
               Soak.bs_combo = label;
               bs_faults = Option.value ~default:0 (Hashtbl.find_opt faults label);
               bs_quarantined =
                 Option.value ~default:false (Hashtbl.find_opt quar label);
             })
           !order)

let decode line =
  let ( let* ) = Result.bind in
  let* fields = Json.decode_obj line in
  let* v = int fields "manifest_version" in
  if v > version then
    Error
      (Printf.sprintf
         "manifest version %d is newer than this build understands (%d)" v
         version)
  else
    let* m_run = str fields "run" in
    let* streams = str fields "streams" in
    let* m_seed = int fields "seed" in
    let* m_variant = str fields "variant" in
    let* m_jobs = int fields "jobs" in
    let* m_ops_per_exec = int fields "ops_per_exec" in
    let* m_fault_budget = int fields "fault_budget" in
    let* m_max_ops = opt_int fields "max_ops" in
    let* m_wall_s = opt_flt fields "wall_s" in
    let* m_checkpoint_every = int fields "checkpoint_every" in
    let* m_corpus = str fields "corpus" in
    let* snap_next_round = int fields "next_round" in
    let* snap_scenarios = int fields "scenarios" in
    let* snap_completed = int fields "completed" in
    let* snap_faulted = int fields "faulted" in
    let* snap_diverged = int fields "diverged" in
    let* snap_crashed = int fields "crashed" in
    let* snap_executions = int fields "executions" in
    let* snap_ops = int fields "ops" in
    let* snap_client_ops = int fields "client_ops" in
    let* snap_races = int fields "races" in
    let* snap_buckets = buckets_of fields in
    let* m_witnesses = int fields "witnesses" in
    let* m_raw = int fields "raw" in
    let* m_duplicates = int fields "duplicates" in
    let* m_coverage_digest = str fields "coverage_digest" in
    let* m_soak_ok = boolean fields "soak_ok" in
    let* m_stopped = str fields "stopped" in
    let* m_ts = flt fields "ts" in
    let* m_elapsed_s = flt fields "elapsed_s" in
    Ok
      {
        m_run;
        m_streams =
          (if streams = "" then [] else String.split_on_char ',' streams);
        m_seed;
        m_variant;
        m_jobs;
        m_ops_per_exec;
        m_fault_budget;
        m_max_ops;
        m_wall_s;
        m_checkpoint_every;
        m_corpus;
        m_snapshot =
          {
            Soak.snap_next_round;
            snap_scenarios;
            snap_completed;
            snap_faulted;
            snap_diverged;
            snap_crashed;
            snap_executions;
            snap_ops;
            snap_client_ops;
            snap_races;
            snap_buckets;
          };
        m_witnesses;
        m_raw;
        m_duplicates;
        m_coverage_digest;
        m_soak_ok;
        m_stopped;
        m_ts;
        m_elapsed_s;
      }

let save path m = Yashme_util.Atomic_file.write path (encode m ^ "\n")

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | data -> (
      match
        List.find_opt
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' data)
      with
      | None -> Error (Printf.sprintf "%s:1: empty soak manifest" path)
      | Some line -> (
          match decode line with
          | Ok m -> Ok m
          | Error e -> Error (Printf.sprintf "%s:1: %s" path e)))
