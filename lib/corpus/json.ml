type value = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* %.17g round-trips every finite float through float_of_string; the
   witness format never carries non-finite numbers. *)
let encode_value = function
  | `S s -> escape s
  | `I n -> string_of_int n
  | `B true -> "true"
  | `B false -> "false"
  | `F f -> Printf.sprintf "%.17g" f
  | `Null -> "null"

let encode_obj fields =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (escape k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (encode_value v))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)

exception Bad of string

let decode_obj s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  (* UTF-8 encode a \uXXXX codepoint (astral codepoints arrive as
     decoded surrogate pairs, so the 4-byte plane is reachable even
     though our encoder never emits \u escapes itself). *)
  let add_codepoint buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            let read_hex4 () =
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              match int_of_string_opt ("0x" ^ hex) with
              | Some cp -> cp
              | None -> fail (Printf.sprintf "bad \\u escape %S" hex)
            in
            let cp = read_hex4 () in
            if cp < 0xd800 || cp > 0xdfff then add_codepoint buf cp
            else if cp >= 0xdc00 then
              (* A low surrogate with no preceding high surrogate. *)
              fail (Printf.sprintf "unpaired low surrogate \\u%04X" cp)
            else begin
              (* High surrogate: RFC 8259 requires the low half as an
                 immediately following \uXXXX escape. *)
              if
                not
                  (!pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
              then fail (Printf.sprintf "unpaired high surrogate \\u%04X" cp)
              else begin
                pos := !pos + 2;
                let lo = read_hex4 () in
                if lo < 0xdc00 || lo > 0xdfff then
                  fail
                    (Printf.sprintf
                       "high surrogate \\u%04X followed by non-low \\u%04X" cp
                       lo)
                else
                  add_codepoint buf
                    (0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00))
              end
            end
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_scalar () : value =
    match peek () with
    | Some '"' -> `S (parse_string ())
    | Some ('{' | '[') -> fail "nested values unsupported in corpus objects"
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          &&
          match s.[!pos] with
          | ',' | '}' | ' ' | '\t' | '\n' | '\r' -> false
          | _ -> true
        do
          incr pos
        done;
        let tok = String.sub s start (!pos - start) in
        (match tok with
        | "true" -> `B true
        | "false" -> `B false
        | "null" -> `Null
        | _ ->
            if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
              match float_of_string_opt tok with
              | Some f -> `F f
              | None -> fail (Printf.sprintf "bad number %S" tok)
            else (
              match int_of_string_opt tok with
              | Some i -> `I i
              | None -> fail (Printf.sprintf "bad literal %S" tok)))
    | None -> fail "unexpected end of input"
  in
  try
    skip_ws ();
    expect '{';
    skip_ws ();
    let fields = ref [] in
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        skip_ws ();
        let v = parse_scalar () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | Some '}' -> incr pos
        | _ -> fail "expected ',' or '}'"
      in
      members ()
    end;
    skip_ws ();
    if !pos <> n then fail "trailing garbage after object";
    Ok (List.rev !fields)
  with Bad msg -> Error msg
