(** The benchmark regression gate.

    Compares two bench summary files (JSONL of flat {!Json} objects,
    as written by [bench/main.exe --out]) on one numeric metric under
    a percentage tolerance.  Metrics are higher-is-better: a current
    value below [baseline * (1 - tolerance/100)] regresses, and a
    baseline benchmark missing from the current file fails the gate
    outright. *)

type entry = {
  e_key : string;  (** ["bench"] plus ["[jobs=N]"] when present *)
  e_fields : (string * Json.value) list;
}

(** Look up a field. *)
val field : entry -> string -> Json.value option

(** Numeric field ([`I] or [`F]); [None] when absent or non-numeric. *)
val number : entry -> string -> float option

(** Parse JSONL content; every line must carry a ["bench"] field. *)
val of_jsonl : string -> (entry list, string) result

(** Read and parse a bench file; empty/unreadable files are errors. *)
val load : string -> (entry list, string) result

type verdict = {
  v_key : string;
  v_metric : string;
  v_baseline : float;
  v_current : float;
  v_delta_pct : float;  (** (current - baseline) / baseline * 100 *)
  v_regressed : bool;
}

(** Which direction of change is an improvement for a metric. *)
type better = Higher | Lower

(** Judge one metric comparison under a percentage [tolerance].
    [better] defaults to [Higher] (higher-is-better, the throughput
    convention): the verdict regresses when [current] falls below
    [baseline * (1 - tolerance/100)]; with [Lower] it regresses when
    [current] exceeds [baseline * (1 + tolerance/100)].  The run-ledger
    compare ([yashme compare]) reuses this with tolerance 0. *)
val judge :
  key:string ->
  metric:string ->
  ?better:better ->
  tolerance:float ->
  baseline:float ->
  current:float ->
  unit ->
  verdict

type outcome = {
  passed : bool;
  verdicts : verdict list;  (** in baseline order *)
  missing : string list;
      (** baseline keys absent from current (or absent the metric) —
          any entry here fails the gate *)
}

(** Gate [current] against [baseline].  [metric] defaults to
    ["ops_per_s"]; [tolerance] is the allowed regression in percent.
    Benchmarks only in [current] are ignored (new benchmarks don't
    need a baseline to land), and so are fields other than [metric]:
    rows may carry extra metrics (e.g. GC or snapshot columns added in
    a newer build) without disturbing an older baseline. *)
val diff :
  ?metric:string ->
  tolerance:float ->
  baseline:entry list ->
  current:entry list ->
  unit ->
  outcome

(** Like {!diff}, judging several [(metric, direction)] pairs per
    baseline row — one verdict per pair; a metric absent on either
    side fails the gate under the ["key.metric"] name. *)
val diff_metrics :
  metrics:(string * better) list ->
  tolerance:float ->
  baseline:entry list ->
  current:entry list ->
  unit ->
  outcome

(** The scaling-gate metric set — [speedup] and [efficiency], both
    higher-is-better ([yashme bench-diff --scaling]). *)
val scaling_metrics : (string * better) list

val pp_verdict : Format.formatter -> verdict -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val outcome_to_string : outcome -> string
