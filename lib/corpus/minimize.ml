module Executor = Pm_runtime.Executor
module Scenario = Pm_harness.Scenario
module Engine = Pm_harness.Engine
module Finding = Pm_harness.Finding
module Runner = Pm_harness.Runner

type shrink = {
  original : Witness.t;
  minimized : Witness.t;
  reproduced : bool;
  derandomized : bool;
  runs : int;
}

(* The candidate state a greedy step mutates: options (with their
   materialized setup, reused across probes of the same options) and
   the two plans. *)
type cand = {
  options : Scenario.options;
  setup : Scenario.setup;
  plan : Executor.plan;
  post_plan : Executor.plan;
}

let ops_of = function
  | Engine.Completed c -> c.Engine.ops
  | Engine.Faulted f -> f.Engine.f_ops

let races_of = function
  | Engine.Completed c -> c.Engine.races
  | Engine.Faulted f -> f.Engine.f_races

let minimize ~lookup (w : Witness.t) =
  let unchanged ~reproduced =
    { original = w; minimized = w; reproduced; derandomized = false; runs = 0 }
  in
  match lookup w.Witness.program with
  | None -> unchanged ~reproduced:false
  | Some p -> (
      let runs = ref 0 in
      (* Run one candidate; [Some result] iff the witness key is
         observed again.  A consistency witness needs the oracle context
         rebuilt per candidate (the reference runs under the candidate's
         options — so e.g. a fuel-tightening step whose budget starves
         the reference simply fails to reproduce and is rejected). *)
      let probe (c : cand) =
        incr runs;
        let oracle =
          match w.Witness.kind with
          | Witness.Race | Witness.Recovery_failure -> None
          | Witness.Consistency_violation -> (
              match Runner.prepare_oracle ~options:c.options p with
              | Some prep -> Some prep.Runner.op_ctx
              | None -> None
              | exception _ -> None)
        in
        let s =
          Scenario.of_program ?oracle ~post_plan:c.post_plan ~setup:c.setup
            ~plan:c.plan ~options:c.options p
        in
        let result = Engine.run_scenario s in
        let race_keys, rf_key, consistency_keys = Replay.observed_keys result in
        let hit =
          match w.Witness.kind with
          | Witness.Race -> List.mem w.Witness.key race_keys
          | Witness.Recovery_failure -> rf_key = Some w.Witness.key
          | Witness.Consistency_violation ->
              List.mem w.Witness.key consistency_keys
        in
        if hit then Some result else None
      in
      (* Pre-crash flush points under [options] (clean run, no crash). *)
      let flush_points ~options ~setup =
        incr runs;
        let s =
          Scenario.of_program ~setup ~plan:Executor.Run_to_end ~options p
        in
        match Engine.run_scenario s with
        | Engine.Completed c -> c.Engine.flush_points
        | Engine.Faulted _ -> 0
      in
      let cand_of options plan post_plan =
        { options; setup = Engine.materialize_setup ~options p; plan; post_plan }
      in
      (* First reproducing plan of [plans] against [base]'s options. *)
      let first_hit base plans =
        List.find_map
          (fun plan ->
            let c = { base with plan } in
            Option.map (fun _ -> c) (probe c))
          plans
      in
      match cand_of w.Witness.options w.Witness.plan w.Witness.post_plan with
      | exception _ -> unchanged ~reproduced:false
      | original_cand -> (
          match probe original_cand with
          | None -> unchanged ~reproduced:false
          | Some _ -> (
              (* Step 1: derandomize.  The deterministic search space is
                 the model checker's: every Crash_before_flush index plus
                 Crash_at_end, single-crash, round-robin, eager drain. *)
              let cand, derandomized =
                if not (Scenario.options_randomized w.Witness.options) then
                  (original_cand, false)
                else
                  let det_options =
                    {
                      w.Witness.options with
                      Scenario.sched = Executor.Round_robin;
                      sb_policy = Px86.Machine.Eager;
                      cut = Px86.Machine.Cut_all;
                    }
                  in
                  match cand_of det_options Executor.Run_to_end Executor.Run_to_end with
                  | exception _ -> (original_cand, false)
                  | det_base -> (
                      let points =
                        flush_points ~options:det_options ~setup:det_base.setup
                      in
                      let plans =
                        List.init points (fun n -> Executor.Crash_before_flush n)
                        @ [ Executor.Crash_at_end ]
                      in
                      match first_hit det_base plans with
                      | Some c -> (c, true)
                      | None -> (original_cand, false))
              in
              (* Step 2: drop the double crash. *)
              let cand =
                if cand.post_plan = Executor.Run_to_end then cand
                else
                  let c = { cand with post_plan = Executor.Run_to_end } in
                  if probe c <> None then c else cand
              in
              (* Step 3: shrink the crash-plan index.  Ascending scan, so
                 the first hit is the minimum. *)
              let cand =
                let shrunk =
                  match cand.plan with
                  | Executor.Crash_before_flush n ->
                      first_hit cand
                        (List.init n (fun k -> Executor.Crash_before_flush k))
                  | Executor.Crash_at_end ->
                      let points =
                        flush_points ~options:cand.options ~setup:cand.setup
                      in
                      first_hit cand
                        (List.init points (fun k -> Executor.Crash_before_flush k))
                  | Executor.Crash_before_op n -> (
                      let points =
                        flush_points ~options:cand.options ~setup:cand.setup
                      in
                      match
                        first_hit cand
                          (List.init points (fun k -> Executor.Crash_before_flush k))
                      with
                      | Some _ as c -> c
                      | None ->
                          first_hit cand
                            (List.init n (fun k -> Executor.Crash_before_op k)))
                  | Executor.Run_to_end -> None
                in
                Option.value shrunk ~default:cand
              in
              (* Step 4: tighten fuel to the observed chain cost (an upper
                 bound on any single phase, so the budget never trips a
                 healthy replay). *)
              let final_result = probe cand in
              let cand, summary =
                match final_result with
                | None -> (cand, w.Witness.summary)  (* unreachable: cand reproduced *)
                | Some result ->
                    let summary =
                      match w.Witness.kind with
                      | Witness.Race ->
                          races_of result
                          |> List.find_opt (fun r ->
                                 Yashme.Race.dedup_key r = w.Witness.key)
                          |> Option.fold ~none:w.Witness.summary
                               ~some:Yashme.Race.to_string
                      | Witness.Recovery_failure -> (
                          match result with
                          | Engine.Faulted f -> Finding.to_string f.Engine.f_info
                          | Engine.Completed _ -> w.Witness.summary)
                      | Witness.Consistency_violation -> (
                          match result with
                          | Engine.Completed cres -> (
                              match
                                List.assoc_opt w.Witness.key
                                  cres.Engine.violations
                              with
                              | Some detail ->
                                  Finding.consistency_to_string
                                    {
                                      Finding.c_label = w.Witness.program;
                                      c_key = w.Witness.key;
                                      c_detail = detail;
                                      c_plan = Executor.plan_label cand.plan;
                                      c_post_plan =
                                        Executor.plan_label cand.post_plan;
                                      c_seed = cand.options.Scenario.seed;
                                    }
                              | None -> w.Witness.summary)
                          | Engine.Faulted _ -> w.Witness.summary)
                    in
                    let fuel =
                      match cand.options.Scenario.max_ops with
                      | Some m -> min m (ops_of result)
                      | None -> ops_of result
                    in
                    let fueled =
                      {
                        cand.options with
                        Scenario.max_ops = Some fuel;
                      }
                    in
                    (match cand_of fueled cand.plan cand.post_plan with
                    | exception _ -> (cand, summary)
                    | c -> if probe c <> None then (c, summary) else (cand, summary))
              in
              let minimized =
                {
                  w with
                  Witness.plan = cand.plan;
                  post_plan = cand.post_plan;
                  options = cand.options;
                  summary;
                }
              in
              (* The contract: a minimized corpus always replays clean.
                 Verify through the same path replay uses (fresh setup
                 materialization from the witness options). *)
              match Replay.replay_one ~lookup minimized with
              | Ok () ->
                  {
                    original = w;
                    minimized;
                    reproduced = true;
                    derandomized;
                    runs = !runs;
                  }
              | Error _ ->
                  {
                    original = w;
                    minimized = w;
                    reproduced = true;
                    derandomized = false;
                    runs = !runs;
                  })))

let minimize_all ~lookup ws = List.map (minimize ~lookup) ws
