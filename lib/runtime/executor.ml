module Rng = Yashme_util.Rng
module Machine = Px86.Machine
module Metrics = Observe.Metrics

exception Crash_signal
(** Raised into suspended threads when the machine crashes. *)

type plan =
  | Run_to_end
  | Crash_at_end
  | Crash_before_op of int
  | Crash_before_flush of int

let plan_label = function
  | Run_to_end -> "run_to_end"
  | Crash_at_end -> "crash_at_end"
  | Crash_before_op n -> Printf.sprintf "crash_before_op:%d" n
  | Crash_before_flush n -> Printf.sprintf "crash_before_flush:%d" n

(* Inverse of [plan_label]; serialized witnesses round-trip plans
   through these two functions. *)
let plan_of_label s =
  let indexed prefix k =
    let pl = String.length prefix in
    if
      String.length s > pl
      && String.sub s 0 pl = prefix
      && s.[pl] = ':'
    then
      match int_of_string_opt (String.sub s (pl + 1) (String.length s - pl - 1)) with
      | Some n when n >= 0 -> Some (k n)
      | Some _ | None -> None
    else None
  in
  match s with
  | "run_to_end" -> Some Run_to_end
  | "crash_at_end" -> Some Crash_at_end
  | _ -> (
      match indexed "crash_before_op" (fun n -> Crash_before_op n) with
      | Some _ as p -> p
      | None -> indexed "crash_before_flush" (fun n -> Crash_before_flush n))

(* Per-phase operation counters: execution ids map to the setup /
   pre-crash / post-crash (recovery) phases of a failure scenario (see
   Engine).  Resolved once per [run], so the per-op cost when metrics
   are off is the single branch inside [Metrics.incr]. *)
type phase_counters = {
  pc_loads : Metrics.counter;
  pc_stores : Metrics.counter;
  pc_cas : Metrics.counter;
  pc_flushes : Metrics.counter;
  pc_fences : Metrics.counter;
}

let phase_counters phase =
  {
    pc_loads = Metrics.counter (Printf.sprintf "executor/%s/loads" phase);
    pc_stores = Metrics.counter (Printf.sprintf "executor/%s/stores" phase);
    pc_cas = Metrics.counter (Printf.sprintf "executor/%s/cas" phase);
    pc_flushes = Metrics.counter (Printf.sprintf "executor/%s/flushes" phase);
    pc_fences = Metrics.counter (Printf.sprintf "executor/%s/fences" phase);
  }

let all_phase_counters =
  [| phase_counters "setup"; phase_counters "pre"; phase_counters "post" |]

(* Per-phase wall-clock/op attribution: one charge per [run], count 1,
   units = memory ops executed.  Counts and ops are deterministic; the
   wall column is volatile by nature (see Observe.Attribution). *)
let att_phase_centers =
  [|
    Observe.Attribution.center ~units:"ops" "phase/setup";
    Observe.Attribution.center ~units:"ops" "phase/pre";
    Observe.Attribution.center ~units:"ops" "phase/post";
  |]

let phase_of_exec_id exec_id = if exec_id <= 0 then 0 else if exec_id = 1 then 1 else 2
let phase_name exec_id = [| "setup"; "pre"; "post" |].(phase_of_exec_id exec_id)

let m_crashes = Metrics.counter "executor/crashes"
let m_divergences = Metrics.counter "executor/divergences"
let h_ops = Metrics.histogram "executor/ops_per_exec"

type sched_policy = Round_robin | Random_sched

let sched_label = function
  | Round_robin -> "round_robin"
  | Random_sched -> "random"

let sched_of_label = function
  | "round_robin" -> Some Round_robin
  | "random" -> Some Random_sched
  | _ -> None

type outcome = Completed | Crashed | Diverged

let outcome_label = function
  | Completed -> "completed"
  | Crashed -> "crashed"
  | Diverged -> "diverged"

type result = {
  outcome : outcome;
  state : Px86.Crashstate.t;
  ops : int;
  flush_points : int;
  crashed_at_op : int option;
}

type opkind =
  | Op_mem  (** load / store / cas *)
  | Op_flushpt  (** clflush / clwb / sfence / mfence: crash-plan points *)
  | Op_meta  (** alloc / spawn / join / yield / ... *)
  | Op_crash_req  (** explicit [Pmem.crash_now] *)

type pending = {
  p_kind : opkind;
  p_run : unit -> unit;  (** execute the op, resume the thread *)
  p_abort : unit -> unit;  (** discontinue the thread with [Crash_signal] *)
}

type tstate =
  | Ready of pending
  | Waiting of { target : int; w_resume : unit -> unit; w_abort : unit -> unit }
  | Done

type state = {
  detector : Yashme.Detector.t option;
  check_candidates : bool;
  machine : Machine.t;
  cut : Machine.cut_strategy;
  plan : plan;
  sched : sched_policy;
  rng : Rng.t;
  exec_id : int;
  max_ops : int option;  (** fuel: scheduled operations before [Diverged] *)
  deadline : float option;  (** absolute wall-clock cutoff *)
  pc : phase_counters;  (** this execution's phase counters *)
  threads : (int, tstate) Hashtbl.t;
  mutable tid_order : int list;  (** spawn order, for deterministic picks *)
  mutable next_tid : int;
  mutable rr_cursor : int;
  mutable heap_break : int;
  validating : (int, int) Hashtbl.t;  (** tid -> nesting depth *)
  mutable ops : int;
  mutable fuel_used : int;  (** every scheduled op, incl. meta ops *)
  mutable flush_points : int;
  mutable crashed : bool;
  mutable diverged : bool;
  mutable crash_state : Px86.Crashstate.t option;
  mutable crashed_at_op : int option;
  mutable error : (exn * Printexc.raw_backtrace) option;
}

let set_state st tid s = Hashtbl.replace st.threads tid s

let get_state st tid =
  match Hashtbl.find_opt st.threads tid with Some s -> s | None -> Done

let validating_depth st tid =
  match Hashtbl.find_opt st.validating tid with Some d -> d | None -> 0

(* ------------------------------------------------------------------ *)
(* Detector wiring for post-crash reads                                 *)

let same_origin (a : Px86.Crashstate.origin) (b : Px86.Crashstate.origin) =
  a.Px86.Crashstate.exec_id = b.Px86.Crashstate.exec_id
  && a.Px86.Crashstate.store.Px86.Event.seq = b.Px86.Crashstate.store.Px86.Event.seq

let check_crash_read st ~tid ~addr ~size source =
  match st.detector, source with
  | None, _ -> ()
  | Some d, Machine.From_crash (origin, cands) ->
      let benign = validating_depth st tid > 0 in
      let check ~commit (o : Px86.Crashstate.origin) =
        let store = o.Px86.Crashstate.store in
        if commit && Px86.Access.is_release store.Px86.Event.access then
          Yashme.Detector.load_atomic d ~exec:o.Px86.Crashstate.exec_id ~store
        else
          ignore
            (Yashme.Detector.load_non_atomic d ~exec:o.Px86.Crashstate.exec_id ~store
               ~load_addr:addr ~load_size:size ~load_tid:tid ~load_exec:st.exec_id
               ~commit ~benign)
      in
      (* Candidate stores the load could have read in some consistent
         execution are all checked (paper §6, random mode); only the
         committed read advances CVpre / lastflush. *)
      if st.check_candidates then
        List.iter
          (fun c -> if not (same_origin c origin) then check ~commit:false c)
          cands;
      check ~commit:true origin
  | Some _, (Machine.From_buffer _ | Machine.From_cache _ | Machine.From_init) -> ()

(* ------------------------------------------------------------------ *)
(* Operation execution                                                  *)

let exec_store st tid (r : Pmem.store_req) =
  Metrics.incr st.pc.pc_stores;
  Machine.store ~nt:r.Pmem.s_nt st.machine ~tid ~addr:r.Pmem.s_addr
    ~size:r.Pmem.s_size ~value:r.Pmem.s_value ~access:r.Pmem.s_access
    ~label:r.Pmem.s_label

let exec_load st tid (r : Pmem.load_req) =
  Metrics.incr st.pc.pc_loads;
  let value, source =
    Machine.load st.machine ~tid ~addr:r.Pmem.l_addr ~size:r.Pmem.l_size
      ~access:r.Pmem.l_access
  in
  check_crash_read st ~tid ~addr:r.Pmem.l_addr ~size:r.Pmem.l_size source;
  value

let exec_cas st tid (r : Pmem.cas_req) =
  Metrics.incr st.pc.pc_cas;
  let ok, _observed, source =
    Machine.cas st.machine ~tid ~addr:r.Pmem.c_addr ~size:r.Pmem.c_size
      ~expected:r.Pmem.c_expected ~desired:r.Pmem.c_desired ~label:r.Pmem.c_label
  in
  check_crash_read st ~tid ~addr:r.Pmem.c_addr ~size:r.Pmem.c_size source;
  ok

let exec_flush st tid (r : Pmem.flush_req) =
  Metrics.incr st.pc.pc_flushes;
  match r.Pmem.f_kind with
  | Px86.Event.Clflush -> Machine.clflush st.machine ~tid ~addr:r.Pmem.f_addr
  | Px86.Event.Clwb -> Machine.clwb st.machine ~tid ~addr:r.Pmem.f_addr

let exec_fence st tid fk =
  Metrics.incr st.pc.pc_fences;
  match fk with
  | Px86.Event.Sfence -> Machine.sfence st.machine ~tid
  | Px86.Event.Mfence -> Machine.mfence st.machine ~tid

let exec_alloc st (size, align) =
  if size <= 0 then invalid_arg "Pmem.alloc: size must be positive";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Pmem.alloc: alignment must be a positive power of two";
  let base = (st.heap_break + align - 1) land lnot (align - 1) in
  st.heap_break <- base + size;
  base

(* ------------------------------------------------------------------ *)
(* Thread management                                                    *)

let finish_thread st tid =
  set_state st tid Done;
  (* Wake joiners. *)
  Hashtbl.iter
    (fun wtid s ->
      match s with
      | Waiting { target; w_resume; w_abort } when target = tid ->
          set_state st wtid
            (Ready { p_kind = Op_meta; p_run = w_resume; p_abort = w_abort })
      | Waiting _ | Ready _ | Done -> ())
    st.threads

let rec start_thread st tid (fn : unit -> unit) =
  let open Effect.Deep in
  match_with fn ()
    {
      retc = (fun () -> finish_thread st tid);
      exnc =
        (fun e ->
          (match e with
          | Crash_signal -> ()
          | e ->
              (* Capture the backtrace here, at the raise site, so the
                 re-raise after the scheduling loop (and any fault
                 report built from it) points at the real frame. *)
              if st.error = None then
                st.error <- Some (e, Printexc.get_raw_backtrace ()));
          finish_thread st tid);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          (* [compute] runs when the scheduler picks this thread; an
             exception it raises is delivered into the performing thread
             (like a failing syscall), not into the scheduler. *)
          let ready kind (compute : unit -> a) =
            Some
              (fun (k : (a, unit) continuation) ->
                set_state st tid
                  (Ready
                     {
                       p_kind = kind;
                       p_run =
                         (fun () ->
                           match compute () with
                           | v -> continue k v
                           | exception e -> discontinue k e);
                       p_abort = (fun () -> discontinue k Crash_signal);
                     }))
          in
          match eff with
          | Pmem.Store_e r -> ready Op_mem (fun () -> exec_store st tid r)
          | Pmem.Load_e r -> ready Op_mem (fun () -> exec_load st tid r)
          | Pmem.Cas_e r ->
              (* Locked RMW has fence semantics: a crash point like any
                 other fence in model-checking mode. *)
              ready Op_flushpt (fun () -> exec_cas st tid r)
          | Pmem.Flush_e r -> ready Op_flushpt (fun () -> exec_flush st tid r)
          | Pmem.Fence_e fk -> ready Op_flushpt (fun () -> exec_fence st tid fk)
          | Pmem.Alloc_e (size, align) ->
              ready Op_meta (fun () -> exec_alloc st (size, align))
          | Pmem.Spawn_e fn' ->
              ready Op_meta (fun () ->
                  let ntid = st.next_tid in
                  st.next_tid <- ntid + 1;
                  st.tid_order <- st.tid_order @ [ ntid ];
                  set_state st ntid
                    (Ready
                       {
                         p_kind = Op_meta;
                         p_run = (fun () -> start_thread st ntid fn');
                         p_abort = (fun () -> set_state st ntid Done);
                       });
                  ntid)
          | Pmem.Join_e target ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match get_state st target with
                  | Done ->
                      set_state st tid
                        (Ready
                           {
                             p_kind = Op_meta;
                             p_run = (fun () -> continue k ());
                             p_abort = (fun () -> discontinue k Crash_signal);
                           })
                  | Ready _ | Waiting _ ->
                      set_state st tid
                        (Waiting
                           {
                             target;
                             w_resume = (fun () -> continue k ());
                             w_abort = (fun () -> discontinue k Crash_signal);
                           }))
          | Pmem.Yield_e -> ready Op_meta (fun () -> ())
          | Pmem.Crash_now_e -> ready Op_crash_req (fun () -> ())
          | Pmem.Validating_e on ->
              ready Op_meta (fun () ->
                  let d = validating_depth st tid in
                  Hashtbl.replace st.validating tid (if on then d + 1 else max 0 (d - 1)))
          | Pmem.My_tid_e -> ready Op_meta (fun () -> tid)
          | _ -> None)
    }

(* ------------------------------------------------------------------ *)
(* Scheduling                                                           *)

let ready_tids st =
  List.filter (fun tid -> match get_state st tid with Ready _ -> true | _ -> false)
    st.tid_order

let pick_next st =
  match ready_tids st with
  | [] -> None
  | ready ->
      let tid =
        match st.sched with
        | Random_sched -> Rng.pick st.rng ready
        | Round_robin ->
            (* First ready tid at or after the cursor, wrapping. *)
            let ge = List.filter (fun t -> t >= st.rr_cursor) ready in
            (match ge with t :: _ -> t | [] -> List.hd ready)
      in
      st.rr_cursor <- tid + 1;
      (match get_state st tid with
      | Ready p -> Some (tid, p)
      | Waiting _ | Done -> assert false)

(* Tear down every thread; buffered work is lost. *)
let rec teardown_threads st =
  let victim =
    List.find_opt
      (fun tid -> match get_state st tid with Ready _ | Waiting _ -> true | Done -> false)
      st.tid_order
  in
  match victim with
  | None -> ()
  | Some tid ->
      (match get_state st tid with
      | Ready p ->
          set_state st tid Done;
          p.p_abort ()
      | Waiting w ->
          set_state st tid Done;
          w.w_abort ()
      | Done -> ());
      teardown_threads st

let do_crash st =
  Metrics.incr m_crashes;
  st.crashed <- true;
  st.crashed_at_op <- Some st.ops;
  let cs = Machine.crash st.machine ~strategy:st.cut in
  cs.Px86.Crashstate.heap_break <- st.heap_break;
  st.crash_state <- Some cs;
  teardown_threads st

(* A budget fired: terminate the runaway phase.  Unlike a crash this is
   not a simulated power failure — the phase is killed and the scenario
   chain stops here — but the durable state is still materialized (as a
   crash cut) so callers can inspect what the runaway left behind. *)
let do_diverge st ~budget =
  Metrics.incr m_divergences;
  st.diverged <- true;
  if Observe.Trace.recording () then
    Observe.Trace.instant ~cat:"executor" "diverged"
      ~args:
        [
          ("phase", phase_name st.exec_id);
          ("plan", plan_label st.plan);
          ("budget", budget);
          ("ops", string_of_int st.ops);
        ];
  teardown_threads st

(* Which budget, if any, is exhausted?  Fuel counts every scheduled
   operation (meta ops included, so a yield-spin cannot dodge it) and
   is deterministic; the wall-clock budget is a last-resort valve and
   inherently run-dependent.  Budgets trip at scheduling points only: a
   loop with no [Pmem] operation in its body cannot be preempted. *)
let budget_exhausted st =
  match st.max_ops with
  | Some m when st.fuel_used >= m -> Some "max_ops"
  | Some _ | None -> (
      match st.deadline with
      | Some d when Unix.gettimeofday () >= d -> Some "max_wall_s"
      | Some _ | None -> None)

let should_crash st kind =
  match kind with
  | Op_crash_req -> true
  | Op_meta -> false
  | Op_mem | Op_flushpt -> (
      match st.plan with
      | Run_to_end | Crash_at_end -> false
      | Crash_before_op n -> st.ops = n
      | Crash_before_flush n -> kind = Op_flushpt && st.flush_points = n)

let sched_loop st =
  let continue_loop = ref true in
  while !continue_loop do
    (match budget_exhausted st with
    | Some budget when not (st.crashed || st.diverged) -> do_diverge st ~budget
    | Some _ | None -> ());
    match pick_next st with
    | None -> continue_loop := false
    | Some (tid, p) ->
        if should_crash st p.p_kind then do_crash st
        else begin
          st.fuel_used <- st.fuel_used + 1;
          (match p.p_kind with
          | Op_mem -> st.ops <- st.ops + 1
          | Op_flushpt ->
              st.ops <- st.ops + 1;
              st.flush_points <- st.flush_points + 1
          | Op_meta | Op_crash_req -> ());
          (* Mark running before resuming so a re-suspend can overwrite. *)
          set_state st tid Done;
          p.p_run ();
          if not st.crashed then Machine.background st.machine
        end
  done

(* ------------------------------------------------------------------ *)

let run ?detector ?inherited ?(plan = Run_to_end) ?(sb_policy = Machine.Eager)
    ?(variant = Px86.Variant.strict_tso) ?(cut = Machine.Cut_all)
    ?(sched = Round_robin) ?(seed = 0) ?(check_candidates = true) ?max_ops
    ?max_wall_s ?observer:extra ~exec_id fn =
  let span_t0 =
    if Observe.Trace.recording () then Some (Observe.Trace.now_us ()) else None
  in
  let att = Observe.Attribution.is_enabled () in
  let att_t0 = if att then Observe.Trace.now_us () else 0 in
  let rng = Rng.create seed in
  let observer =
    match detector with
    | Some d ->
        ignore (Yashme.Detector.begin_exec d ~id:exec_id);
        Yashme.Detector.observer d
    | None -> Px86.Observer.nop
  in
  let observer =
    match extra with
    | Some o -> Px86.Observer.combine observer o
    | None -> observer
  in
  let machine =
    Machine.create ?inherited ~exec_id
      { Machine.sb_policy; variant; rng = Rng.split rng; observer }
  in
  let heap_break =
    match inherited with
    | Some c -> c.Px86.Crashstate.heap_break
    | None -> Px86.Addr.line_size
  in
  let st =
    {
      detector;
      check_candidates;
      machine;
      cut;
      plan;
      sched;
      rng;
      exec_id;
      max_ops;
      deadline = Option.map (fun s -> Unix.gettimeofday () +. s) max_wall_s;
      pc = all_phase_counters.(phase_of_exec_id exec_id);
      threads = Hashtbl.create 8;
      tid_order = [ 0 ];
      next_tid = 1;
      rr_cursor = 0;
      heap_break;
      validating = Hashtbl.create 4;
      ops = 0;
      fuel_used = 0;
      flush_points = 0;
      crashed = false;
      diverged = false;
      crash_state = None;
      crashed_at_op = None;
      error = None;
    }
  in
  set_state st 0
    (Ready
       {
         p_kind = Op_meta;
         p_run = (fun () -> start_thread st 0 fn);
         p_abort = (fun () -> set_state st 0 Done);
       });
  sched_loop st;
  (match st.error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let state, outcome =
    if st.diverged then begin
      (* The runaway was killed mid-flight: materialize durable state
         as a crash cut (buffers lost), but report [Diverged] so the
         harness never mistakes this for a planned crash. *)
      let cs = Machine.crash machine ~strategy:cut in
      cs.Px86.Crashstate.heap_break <- st.heap_break;
      (cs, Diverged)
    end
    else
      match st.crash_state with
      | Some cs -> (cs, Crashed)
      | None ->
          let cs =
            match plan with
            | Crash_at_end -> Machine.crash machine ~strategy:cut
            | Run_to_end | Crash_before_op _ | Crash_before_flush _ ->
                Machine.shutdown machine
          in
          cs.Px86.Crashstate.heap_break <- st.heap_break;
          (cs, Completed)
  in
  Metrics.observe h_ops st.ops;
  if att then
    Observe.Attribution.charge att_phase_centers.(phase_of_exec_id exec_id)
      ~count:1 ~units:st.ops
      ~wall_us:(Observe.Trace.now_us () - att_t0)
      ();
  (match span_t0 with
  | Some ts ->
      Observe.Trace.complete ~cat:"executor"
        ~args:
          [
            ("phase", phase_name exec_id);
            ("exec_id", string_of_int exec_id);
            ("plan", plan_label plan);
            ("ops", string_of_int st.ops);
            ("outcome", outcome_label outcome);
          ]
        ~ts_us:ts
        ~dur_us:(Observe.Trace.now_us () - ts)
        "exec"
  | None -> ());
  { outcome; state; ops = st.ops; flush_points = st.flush_points;
    crashed_at_op = st.crashed_at_op }
