(** Runs PM programs on the simulated machine, injecting crashes.

    The executor is the Jaaru-equivalent driver: it schedules cooperative
    threads (every {!Pmem} operation is a scheduling point), executes
    their memory operations on a {!Px86.Machine.t}, consults the crash
    plan before every instruction, and — when a detector is attached —
    feeds post-crash loads to the Yashme algorithms, checking {e every}
    candidate store a load could have read.

    {b Domain safety (re-entrancy audit).}  [run] allocates every piece
    of mutable state it touches — scheduler tables, RNG, machine,
    effect-handler continuations — inside the call, so concurrent [run]s
    on separate domains never share structure, {e provided} their inputs
    are unshared:
    - an [inherited] crash state must not be given to two concurrent
      runs (post-crash reads consult its tables; snapshot one with
      {!Px86.Crashstate.copy} per run instead);
    - a [detector] and an [observer] are single-scenario objects;
    - a [Px86.Machine.Cut_random] cut strategy carries a mutable
      {!Yashme_util.Rng.t} inside the variant and is the one knob that
      is {e not} safe to share across domains (the exploration engine
      refuses to parallelize it).
    The effect declarations in {!Pmem} are immutable registrations;
    handlers are installed per-run, per-domain. *)

(** When to crash the execution. *)
type plan =
  | Run_to_end  (** complete and shut down cleanly (all lines persisted) *)
  | Crash_at_end  (** complete, then crash (buffers lost, cuts apply) *)
  | Crash_before_op of int  (** crash before the n-th memory operation *)
  | Crash_before_flush of int
      (** crash immediately before the n-th flush/fence operation — the
          model-checking mode's systematic crash points (paper, §6) *)

(** Stable rendering of a plan for trace events, logs and serialized
    witnesses. *)
val plan_label : plan -> string

(** Inverse of {!plan_label} ([None] on unrecognized input); the
    witness corpus round-trips crash plans through this pair. *)
val plan_of_label : string -> plan option

(** The phase name a scenario execution id maps to ("setup", "pre" or
    "post") — the tag used by the per-phase executor counters and the
    [exec] trace spans. *)
val phase_name : int -> string

type sched_policy =
  | Round_robin
  | Random_sched  (** uniform choice among runnable threads (random mode) *)

(** Stable textual form of a scheduling policy, with its inverse
    (serialized witnesses). *)
val sched_label : sched_policy -> string

val sched_of_label : string -> sched_policy option

type outcome =
  | Completed
  | Crashed
  | Diverged
      (** a budget ([max_ops] fuel or [max_wall_s]) terminated a
          runaway phase.  The durable state is materialized as a crash
          cut, but no planned crash fired: the harness stops the
          scenario chain here and classifies the scenario as diverged *)

val outcome_label : outcome -> string

type result = {
  outcome : outcome;
  state : Px86.Crashstate.t;  (** durable memory after the run *)
  ops : int;  (** memory operations executed (incl. flushes/fences) *)
  flush_points : int;  (** flush/fence operations executed *)
  crashed_at_op : int option;
}

(** [run ~exec_id fn] executes [fn] as thread 0.

    @param detector attach a Yashme detector ([None] = bare Jaaru run)
    @param inherited durable state from the previous execution of the
      failure scenario
    @param plan crash plan; default [Run_to_end]
    @param sb_policy store-buffer drain policy; default [Eager]
    @param variant persistency-model variant descriptor; default
      {!Px86.Variant.strict_tso} (the historical semantics)
    @param cut how a crash materializes each line; default [Cut_all]
    @param sched thread scheduling policy; default [Round_robin]
    @param seed seed for all randomized choices; default 0
    @param check_candidates also race-check the candidate stores a load
      could have read, not just the committed one (Jaaru integration,
      paper section 6); default true — disabling it is an ablation
    @param max_ops fuel budget: terminate the run with {!Diverged} after
      this many scheduled operations (meta operations included, so a
      yield-spin cannot dodge it).  Deterministic — the same program and
      seed diverge at the same point on every run.  Default: unlimited
    @param max_wall_s wall-clock budget in seconds, checked at every
      scheduling point; a last-resort valve for phases that burn real
      time, inherently run-dependent.  Budgets cannot preempt a loop
      that performs no {!Pmem} operation.  Default: unlimited
    @param observer an extra machine observer (e.g. a {!Px86.Trace}
      recorder), combined with the detector's *)
val run :
  ?detector:Yashme.Detector.t ->
  ?inherited:Px86.Crashstate.t ->
  ?plan:plan ->
  ?sb_policy:Px86.Machine.sb_policy ->
  ?variant:Px86.Variant.t ->
  ?cut:Px86.Machine.cut_strategy ->
  ?sched:sched_policy ->
  ?seed:int ->
  ?check_candidates:bool ->
  ?max_ops:int ->
  ?max_wall_s:float ->
  ?observer:Px86.Observer.t ->
  exec_id:int ->
  (unit -> unit) ->
  result
