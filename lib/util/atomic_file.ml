(* Crash-safe writes: tmp file in the destination directory + atomic
   rename.  The counter disambiguates concurrent writers inside one
   process; the pid disambiguates across processes sharing /tmp. *)

let counter = Atomic.make 0

let tmp_of path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add counter 1)

let remove_noerr path = try Sys.remove path with Sys_error _ -> ()

let write path content =
  let tmp = tmp_of path in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     remove_noerr tmp;
     raise e);
  try Sys.rename tmp path
  with e ->
    remove_noerr tmp;
    raise e

let read_if_exists path =
  if Sys.file_exists path then
    Some
      (let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in ic)
         (fun () -> really_input_string ic (in_channel_length ic)))
  else None

let append_line path line =
  let existing = Option.value ~default:"" (read_if_exists path) in
  write path (existing ^ line ^ "\n")

type stream = {
  s_path : string;
  s_tmp : string;
  s_oc : out_channel;
  mutable s_state : [ `Open | `Committed | `Aborted ];
}

let stream path =
  let tmp = tmp_of path in
  { s_path = path; s_tmp = tmp; s_oc = open_out_bin tmp; s_state = `Open }

let output_string s str =
  if s.s_state = `Open then begin
    output_string s.s_oc str;
    flush s.s_oc
  end

let commit s =
  if s.s_state = `Open then begin
    s.s_state <- `Committed;
    (try close_out s.s_oc
     with e ->
       remove_noerr s.s_tmp;
       raise e);
    try Sys.rename s.s_tmp s.s_path
    with e ->
      remove_noerr s.s_tmp;
      raise e
  end

let abort s =
  if s.s_state = `Open then begin
    s.s_state <- `Aborted;
    close_out_noerr s.s_oc;
    remove_noerr s.s_tmp
  end
