(** Crash-safe file emission: write to a temporary file in the
    destination's directory, then publish with an atomic [Sys.rename].

    Every artifact emitter in the harness ([--ledger], [--corpus-out],
    [--coverage-out], [--progress-out], soak checkpoints and manifests)
    goes through this module, so an interrupted run — SIGKILL, crash,
    full disk — never leaves a truncated or half-written file under the
    destination name: the reader sees either the previous complete
    artifact or the new complete one, nothing in between.

    The temporary lives next to the destination (same directory, hence
    same filesystem) with a [.tmp.<pid>.<n>] suffix, so the rename is
    atomic on POSIX and concurrent writers in one process never collide
    on the temporary name. *)

(** [write path content] atomically replaces [path] with [content].
    On any write error the temporary is removed and the exception
    re-raised; [path] is left untouched. *)
val write : string -> string -> unit

(** [append_line path line] atomically appends [line ^ "\n"] to [path]
    (created if absent): the existing bytes and the new line are
    written to a temporary which then replaces [path].  An interrupted
    append can therefore never truncate earlier entries. *)
val append_line : string -> string -> unit

(** A crash-safe output stream: bytes accumulate in the temporary and
    the destination name only appears at {!commit}.  For streaming
    emitters (progress JSONL) where the file must be complete-or-absent
    rather than tail-truncated. *)
type stream

(** Open a stream targeting [path]. *)
val stream : string -> stream

val output_string : stream -> string -> unit

(** Publish the accumulated bytes under the target name.  Idempotent:
    a second call is a no-op. *)
val commit : stream -> unit

(** Discard the stream and its temporary (no-op after {!commit}). *)
val abort : stream -> unit
