(** Per-domain execution timelines, reconstructed from recorded traces.

    Folds the engine's per-worker trace lanes (pid 0, tid = worker
    slot; see {!Trace}) back into busy / queue-wait / idle segments:
    {b busy} is time covered by a work span (category ["scenario"] by
    default, top-level spans when a lane carries none), {b queue-wait}
    is time inside the lane's alive span (name ["worker"]) but outside
    any work span, and {b idle} is the remainder of the batch window.

    Everything here is wall-clock class: timelines differ run to run
    and across [--jobs] counts by construction.  Nothing feeds back
    into the deterministic report path. *)

type kind = Busy | Wait | Idle

type segment = { g_start_us : int; g_end_us : int; g_kind : kind }

type lane = {
  tl_pid : int;
  tl_tid : int;
  tl_segments : segment list;  (** sorted, covering the batch window *)
  tl_spans : int;  (** work spans folded into the busy cover *)
  tl_busy_us : int;
  tl_wait_us : int;
  tl_idle_us : int;
  tl_first_us : int;  (** first busy microsecond (window start if none) *)
  tl_last_us : int;  (** last busy microsecond (window start if none) *)
  tl_utilization : float;  (** busy / window *)
  tl_gaps : int list;  (** non-busy gap lengths between busy segments *)
}

type t = {
  t_start_us : int;
  t_end_us : int;
  t_makespan_us : int;
  t_lanes : lane list;  (** sorted by (pid, tid) *)
  t_busy_us : int;
  t_critical_path_us : int;
      (** largest per-lane busy total: a lower bound on the makespan
          any schedule could reach with this work partition *)
  t_utilization : float;  (** busy / (lanes * makespan) *)
  t_straggler : (int * int) option;
      (** (pid, tid) of the lane whose busy cover ends last *)
  t_straggler_tail_us : int;
      (** the straggler's lead over the next-latest lane *)
}

(** Reconstruct lanes from a trace.  Events may arrive out of order;
    0-length spans are tolerated (they contribute no busy time but are
    counted).  [work_cat] (default ["scenario"]) selects work spans,
    [alive_name] (default ["worker"]) the alive cover.  Errors on a
    trace with no Complete spans. *)
val of_events :
  ?work_cat:string ->
  ?alive_name:string ->
  Trace.event list ->
  (t, string) result

(** Idle-gap histogram of a lane: power-of-two buckets as
    [(upper bound in us, count)], ascending, non-empty buckets only. *)
val gap_histogram : lane -> (int * int) list

(** Compact rendering of {!gap_histogram} (["-"] when gap-free). *)
val histogram_label : lane -> string

val max_gap_us : lane -> int

(** ASCII lane chart: one row per lane, [#] busy / [.] queue-wait /
    space idle, plus a legend line.  [width] (default 64) is the
    number of time buckets. *)
val ascii : ?width:int -> t -> string

(** Dependency-free SVG lane chart; the document passes {!check_svg}. *)
val svg : ?width:int -> t -> string

(** XML well-formedness check for the SVG artifact (trace-lint
    analogue): balanced tags, quoted attributes, predefined entities
    only, root element [<svg>]. *)
val check_svg : string -> (unit, string) result

val check_svg_file : string -> (unit, string) result

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

(** One flat JSONL object per lane (corpus-codec shape).  Timestamps
    are window-relative.  All wall-clock class: timeline exports are
    timing artifacts, not byte-stable across runs. *)
val lane_fields : t -> lane -> (string * field) list

(** The per-lane utilization / idle-gap table. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
