(* A trace sink for structured events, exported as Chrome
   about://tracing JSON ({"traceEvents":[...]}) or machine-readable
   JSONL (one event object per line).

   Events are recorded into per-domain sharded buffers (one mutex per
   shard, domains collide only modulo the shard count) and merged at
   export.  Recording is off until [start]; every emit is a no-op
   behind one [Atomic.get] branch, so instrumentation left in hot
   paths costs one load + branch when tracing is disabled. *)

type phase = Complete | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_us : int;
  dur_us : int; (* 0 for instants *)
  pid : int;
  tid : int;
  args : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Clock: wall time clamped to never run backwards, so span durations
   and event order stay sane across NTP steps.  Only consulted while
   recording, so the shared CAS cell is off every disabled path. *)

let last_us = Atomic.make 0

let now_us () =
  let t = int_of_float (Unix.gettimeofday () *. 1e6) in
  let rec clamp () =
    let l = Atomic.get last_us in
    if t <= l then l else if Atomic.compare_and_set last_us l t then t else clamp ()
  in
  clamp ()

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

let recording_flag = Atomic.make false
let recording () = Atomic.get recording_flag

let shard_count = 64

type shard = { lock : Mutex.t; mutable shard_events : event list (* newest first *) }

let shards =
  Array.init shard_count (fun _ -> { lock = Mutex.create (); shard_events = [] })

let clear () =
  Array.iter
    (fun s -> Mutex.protect s.lock (fun () -> s.shard_events <- []))
    shards

let start () =
  clear ();
  Atomic.set recording_flag true

let stop () = Atomic.set recording_flag false

(* Ambient (pid, tid) of the calling domain: the engine labels each
   worker's lane once and every span emitted underneath inherits it,
   so executor/machine instrumentation needs no plumbing. *)
let context : (int * int) option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_context ~pid ~tid = Domain.DLS.set context (Some (pid, tid))
let clear_context () = Domain.DLS.set context None

let default_pid_tid () =
  match Domain.DLS.get context with
  | Some c -> c
  | None -> (0, (Domain.self () :> int))

let record ev =
  let s = shards.((Domain.self () :> int) land (shard_count - 1)) in
  Mutex.protect s.lock (fun () -> s.shard_events <- ev :: s.shard_events)

let complete ?(cat = "") ?pid ?tid ?(args = []) ~ts_us ~dur_us name =
  if recording () then begin
    let dpid, dtid = default_pid_tid () in
    let pid = Option.value ~default:dpid pid
    and tid = Option.value ~default:dtid tid in
    record { name; cat; ph = Complete; ts_us; dur_us; pid; tid; args }
  end

let instant ?(cat = "") ?pid ?tid ?(args = []) name =
  if recording () then begin
    let dpid, dtid = default_pid_tid () in
    let pid = Option.value ~default:dpid pid
    and tid = Option.value ~default:dtid tid in
    record { name; cat; ph = Instant; ts_us = now_us (); dur_us = 0; pid; tid; args }
  end

(* Merged events, earliest first; at equal timestamps longer spans
   sort first so enclosing spans precede their children.  When both the
   timestamp and the duration tie (sub-microsecond spans), fall back to
   reverse recording order within the shard: a span is recorded when it
   ends, so the enclosing span is recorded after — and must still sort
   before — its children. *)
let events () =
  let all =
    Array.fold_left
      (fun acc s ->
        List.rev_append (List.mapi (fun i e -> (i, e)) s.shard_events) acc)
      [] shards
  in
  List.stable_sort
    (fun (ia, a) (ib, b) ->
      match compare a.ts_us b.ts_us with
      | 0 -> (
          match compare b.dur_us a.dur_us with 0 -> compare ia ib | c -> c)
      | c -> c)
    all
  |> List.map snd

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let event_json buf ev =
  Buffer.add_string buf "{\"name\":\"";
  json_escape buf ev.name;
  Buffer.add_string buf "\",\"cat\":\"";
  json_escape buf ev.cat;
  (match ev.ph with
  | Complete ->
      Buffer.add_string buf
        (Printf.sprintf "\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d" ev.ts_us ev.dur_us)
  | Instant ->
      Buffer.add_string buf
        (Printf.sprintf "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d" ev.ts_us));
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d,\"args\":{" ev.pid ev.tid);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      json_escape buf k;
      Buffer.add_string buf "\":\"";
      json_escape buf v;
      Buffer.add_char buf '"')
    ev.args;
  Buffer.add_string buf "}}"

let to_chrome_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n";
      event_json buf ev)
    (events ());
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let to_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      event_json buf ev;
      Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf

let event_count () = List.length (events ())

let is_jsonl path = Filename.check_suffix path ".jsonl"

let write path =
  let data = if is_jsonl path then to_jsonl () else to_chrome_json () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

(* ------------------------------------------------------------------ *)
(* JSON well-formedness: a tiny recursive-descent checker, so traces
   can be validated by tests and CI without a JSON dependency. *)

exception Bad of int * string

let check_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = pos := !pos + 1 in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal l =
    if !pos + String.length l <= n && String.sub s !pos (String.length l) = l then
      pos := !pos + String.length l
    else fail (Printf.sprintf "expected %s" l)
  in
  let string_lit () =
    expect '"';
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              loop ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              loop ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some _ ->
          advance ();
          loop ()
    in
    loop ()
  in
  let digits () =
    let start = !pos in
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      advance ()
    done;
    if !pos = start then fail "expected digit"
  in
  let number () =
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ())
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ()
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ()
        end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
    | None -> fail "unexpected end of input"
  in
  match
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

let check_jsonl s =
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' s)
  in
  let rec loop i = function
    | [] -> Ok ()
    | l :: rest -> (
        match check_json l with
        | Ok () -> loop (i + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" i e))
  in
  loop 1 lines

(* An empty (or whitespace-only) file is rejected for both formats:
   check_json would already fail on it, but check_jsonl vacuously
   accepts zero lines, which turned truncated-at-birth trace files
   into lint passes. *)
let check_file path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.trim data = "" then
    Error
      (Printf.sprintf "offset 0: empty trace file (%d byte(s))"
         (String.length data))
  else if is_jsonl path then check_jsonl data
  else check_json data
