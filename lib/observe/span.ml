(* Span timers: time a function and emit a Complete trace event.  When
   the sink is not recording the function runs untouched behind a
   single branch — no clock reads, no allocation beyond the caller's
   own argument list. *)

let with_ ?(cat = "") ?pid ?tid ?(args = []) name f =
  if not (Trace.recording ()) then f ()
  else begin
    let t0 = Trace.now_us () in
    let finish () =
      Trace.complete ?pid ?tid ~cat ~args ~ts_us:t0 ~dur_us:(Trace.now_us () - t0)
        name
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end
