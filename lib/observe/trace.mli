(** A trace sink for structured events, exported as Chrome
    [about://tracing] JSON or machine-readable JSONL.

    Events carry a name, a category, a (pid, tid) lane, a microsecond
    timestamp (wall clock clamped to be monotone) and string args.
    They are recorded into per-domain sharded buffers (one mutex per
    shard) and merged, timestamp-sorted, at export.

    Recording is off until {!start}: every emit is a no-op behind one
    [Atomic.get] branch, so instrumentation in hot paths costs one
    load + branch when disabled. *)

type phase = Complete | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_us : int;
  dur_us : int;  (** 0 for instants *)
  pid : int;
  tid : int;
  args : (string * string) list;
}

(** Current clock reading in microseconds (monotone-clamped). *)
val now_us : unit -> int

(** Clear the buffers and begin recording. *)
val start : unit -> unit

val stop : unit -> unit
val recording : unit -> bool
val clear : unit -> unit

(** Set the ambient (pid, tid) lane of the calling domain; events
    emitted without explicit [?pid]/[?tid] inherit it.  The default is
    [(0, Domain.self)]. *)
val set_context : pid:int -> tid:int -> unit

val clear_context : unit -> unit

(** Emit a completed span covering [\[ts_us, ts_us + dur_us\]]. *)
val complete :
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?args:(string * string) list ->
  ts_us:int ->
  dur_us:int ->
  string ->
  unit

(** Emit a point-in-time event stamped with the current clock. *)
val instant :
  ?cat:string -> ?pid:int -> ?tid:int -> ?args:(string * string) list -> string -> unit

(** Recorded events, earliest first (at equal timestamps, longer spans
    first so parents precede children). *)
val events : unit -> event list

val event_count : unit -> int

(** The Chrome trace-viewer document ({["{\"traceEvents\":[...]}"]}). *)
val to_chrome_json : unit -> string

(** One JSON object per line. *)
val to_jsonl : unit -> string

(** Write the trace to [path]: JSONL when the name ends in [.jsonl],
    the Chrome document otherwise. *)
val write : string -> unit

(** Tiny JSON well-formedness checkers (no values are built), so tests
    and CI can validate emitted traces without a JSON dependency. *)

val check_json : string -> (unit, string) result

(** Validate every non-empty line as a standalone JSON value. *)
val check_jsonl : string -> (unit, string) result

(** Validate a file, dispatching on the [.jsonl] suffix like {!write}. *)
val check_file : string -> (unit, string) result
