(* Warnings surfaced through the observe layer: printed to stderr
   unless quieted, and mirrored into the trace (as Instant events in
   the "log" category) whenever the sink is recording, so a trace file
   is self-describing about degradations like the Cut_random
   jobs-to-1 fallback. *)

let quiet_flag = Atomic.make false
let set_quiet q = Atomic.set quiet_flag q
let quiet () = Atomic.get quiet_flag

let warn msg =
  Trace.instant ~cat:"log" ~args:[ ("message", msg) ] "warning";
  if not (Atomic.get quiet_flag) then Printf.eprintf "yashme: warning: %s\n%!" msg
