(* Leveled logging surfaced through the observe layer: printed to
   stderr when at or above the current threshold, and mirrored into
   the trace (as Instant events in the "log" category) whenever the
   sink is recording — regardless of the threshold, so a trace file is
   self-describing about degradations like the Cut_random jobs-to-1
   fallback even in a quiet run. *)

type level = Off | Warn | Info | Debug

let int_of_level = function Off -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_of_int = function
  | 0 -> Off
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

(* Threshold as an int so readers are a single Atomic.get. *)
let threshold = Atomic.make (int_of_level Warn)
let set_level l = Atomic.set threshold (int_of_level l)
let level () = level_of_int (Atomic.get threshold)

let level_of_string = function
  | "off" | "quiet" -> Some Off
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let level_to_string = function
  | Off -> "off"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

(* Back-compat aliases: --quiet predates levels and meant "no stderr
   chatter", i.e. Off.  quiet () is true whenever warnings are
   suppressed. *)
let set_quiet q = if q then set_level Off else set_level Warn
let quiet () = Atomic.get threshold < int_of_level Warn

let emit lvl name msg =
  Trace.instant ~cat:"log" ~args:[ ("message", msg) ] name;
  if Atomic.get threshold >= int_of_level lvl then
    Printf.eprintf "yashme: %s: %s\n%!" name msg

let warn msg = emit Warn "warning" msg
let info msg = emit Info "info" msg
let debug msg = emit Debug "debug" msg
