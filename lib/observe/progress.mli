(** Live exploration progress: a throttled heartbeat over engine batch
    callbacks.

    The engine announces batches ({!batch}) and ticks once per finished
    scenario ({!tick}); emissions go to stderr (human heartbeat) and/or
    a JSONL stream of flat objects
    ([{"done":..,"total":..,"races":..,"faults":..,"rate_per_s":..,
    "eta_s":..,"elapsed_s":..}]) accepted by {!Trace.check_jsonl}.

    Inactive by default; when inactive, {!tick} is a no-op behind a
    single [Atomic.get] branch.  Progress is wall-clock dependent and
    is never read back by the harness: the deterministic report path
    is unaffected.

    Rate and ETA are clamped to finite non-negative values — a tick
    before any work, a zero observed rate, or a clock step never
    produces [inf]/[nan] in the stderr line or the JSONL stream (the
    heartbeat prints [eta --] while no rate is observable).  The JSONL
    stream is written through {!Yashme_util.Atomic_file}: bytes
    accumulate in a temporary and the destination name only appears at
    {!stop}, so an interrupted run leaves no truncated artifact. *)

(** Reset counters and begin emitting.  [interval_s] (default 0.5)
    throttles emissions; [heartbeat] (default true) prints the stderr
    line — suppressed while {!Log.quiet} holds (log level [off]), like
    any other stderr chatter; [jsonl] opens a JSONL stream at the given
    path, unaffected by the log level. *)
val start : ?interval_s:float -> ?heartbeat:bool -> ?jsonl:string -> unit -> unit

val is_active : unit -> bool

(** Announce [n] more scenarios to explore (grows the [total]). *)
val batch : int -> unit

(** Record the worker-pool size for the final summary line.  The final
    JSONL emission then appends ["jobs"] and a ["per_domain"] label
    ("slot:count" per worker lane) so soak/scaling runs are
    attributable after the fact; throttled mid-run lines keep the
    historical shape. *)
val set_jobs : int -> unit

(** One scenario finished, having found [races] raw races; [faulted]
    marks a sandboxed scenario fault; [lane] attributes it to a worker
    slot for the final per-domain summary. *)
val tick : ?lane:int -> races:int -> faulted:bool -> unit -> unit

(** Emit a final (unthrottled) update, close the JSONL stream and
    deactivate.  Returns the number of emissions (0 if inactive), so a
    [--progress-out] file always carries at least one line. *)
val stop : unit -> int
