(* Per-scenario cost attribution: where does exploration time go?

   A [center] is a named cost bucket (snapshot copying, queue wait,
   detector clock-vector comparisons, ...) holding three domain-sharded
   accumulators: an occurrence count, a charged-unit total (bytes, ops,
   comparisons — whatever the center's [units] label says) and a
   wall-clock total in microseconds.  Concurrent charges from engine
   workers land on different shards; reads merge the shards.

   The two-class column model is the crux.  Counts and charged units of
   deterministic work commute under addition, so their merged totals
   are identical for every --jobs count — that projection (rendered by
   [to_string ~timing:false] and exported by [fields]) is byte-stable
   and CI-comparable.  Wall clocks are not, and neither are GC word
   deltas: OCaml 5's [Gc.quick_stat] counters are flushed globally at
   minor collections, so a delta taken on one domain absorbs other
   domains' allocation.  Centers carrying such quantities declare
   [volatile_units]; volatile columns render in the full table but are
   excluded from the invariant projection and from ledger comparison.

   Like {!Metrics}, everything is a no-op behind one [Atomic.get]
   branch until [enable], and nothing here feeds back into the engine:
   attribution on vs off never changes a race report. *)

let shards = 64

let slot () = (Domain.self () :> int) land (shards - 1)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

type center = {
  a_name : string;
  a_units_label : string; (* "" = the center charges no units *)
  a_volatile_units : bool; (* units are wall-clock class (GC words) *)
  a_counts : int Atomic.t array;
  a_units : int Atomic.t array;
  a_wall : int Atomic.t array;
}

let registry_lock = Mutex.create ()
let registry : (string, center) Hashtbl.t = Hashtbl.create 32

let atomics n = Array.init n (fun _ -> Atomic.make 0)

(* Find-or-create, like {!Metrics.counter}: one name, one set of cells,
   so instrumentation sites and tests share centers by name alone.
   The first registration fixes the units label. *)
let center ?(units = "") ?(volatile_units = false) name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c =
            {
              a_name = name;
              a_units_label = units;
              a_volatile_units = volatile_units;
              a_counts = atomics shards;
              a_units = atomics shards;
              a_wall = atomics shards;
            }
          in
          Hashtbl.add registry name c;
          c)

let center_name c = c.a_name

let charge c ?(count = 1) ?(units = 0) ?(wall_us = 0) () =
  if Atomic.get enabled then begin
    let s = slot () in
    if count <> 0 then ignore (Atomic.fetch_and_add c.a_counts.(s) count);
    if units <> 0 then ignore (Atomic.fetch_and_add c.a_units.(s) units);
    if wall_us > 0 then ignore (Atomic.fetch_and_add c.a_wall.(s) wall_us)
  end

let tick c =
  if Atomic.get enabled then ignore (Atomic.fetch_and_add c.a_counts.(slot ()) 1)

(* ------------------------------------------------------------------ *)
(* Merge-on-read rows                                                   *)

type row = {
  r_center : string;
  r_units_label : string;
  r_volatile_units : bool;
  r_count : int;
  r_units : int;
  r_wall_us : int;
}

let merged a = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 a

let row_of c =
  {
    r_center = c.a_name;
    r_units_label = c.a_units_label;
    r_volatile_units = c.a_volatile_units;
    r_count = merged c.a_counts;
    r_units = merged c.a_units;
    r_wall_us = merged c.a_wall;
  }

(* Registered-but-uncharged centers are dropped so the table only names
   cost centers the run actually exercised (and stays deterministic
   regardless of which modules happened to register centers). *)
let live r = r.r_count <> 0 || r.r_units <> 0 || r.r_wall_us <> 0

let snapshot () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold (fun _ c acc -> row_of c :: acc) registry [])
  |> List.filter live
  |> List.sort (fun a b -> compare a.r_center b.r_center)

(* after - before per center, dropping all-zero deltas; centers absent
   from [before] count as zero there. *)
let diff before after =
  List.filter_map
    (fun r ->
      match List.find_opt (fun b -> b.r_center = r.r_center) before with
      | None -> if live r then Some r else None
      | Some b ->
          let d =
            {
              r with
              r_count = r.r_count - b.r_count;
              r_units = r.r_units - b.r_units;
              r_wall_us = r.r_wall_us - b.r_wall_us;
            }
          in
          if live d then Some d else None)
    after

let reset () =
  Mutex.protect registry_lock (fun () ->
      let zero a = Array.iter (fun cell -> Atomic.set cell 0) a in
      Hashtbl.iter
        (fun _ c ->
          zero c.a_counts;
          zero c.a_units;
          zero c.a_wall)
        registry)

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let charged_cell ~timing r =
  if r.r_units_label = "" then "-"
  else if r.r_volatile_units && not timing then "-"
  else Printf.sprintf "%d %s" r.r_units r.r_units_label

let wall_cell r = Printf.sprintf "%.3fms" (float_of_int r.r_wall_us /. 1000.)

(* [timing:false] is the jobs-invariant projection: the wall column is
   dropped and volatile charged units render as "-". *)
let pp ?(timing = true) ppf rows =
  let cells =
    List.map
      (fun r ->
        let base =
          [ r.r_center; string_of_int r.r_count; charged_cell ~timing r ]
        in
        if timing then base @ [ wall_cell r ] else base)
      rows
  in
  let header =
    if timing then [ "cost center"; "count"; "charged"; "wall" ]
    else [ "cost center"; "count"; "charged" ]
  in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      cells
  in
  let render_row row =
    String.concat "  " (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths row)
  in
  Format.fprintf ppf "@[<v>[attribution]";
  if rows = [] then Format.fprintf ppf "@,  (no cost recorded)"
  else begin
    Format.fprintf ppf "@,  %s" (render_row header);
    List.iter (fun row -> Format.fprintf ppf "@,  %s" (render_row row)) cells
  end;
  Format.fprintf ppf "@]"

let to_string ?timing rows = Format.asprintf "%a" (pp ?timing) rows

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

(* One flat JSONL object per center — only the invariant projection, so
   an --attribution-out file is byte-identical for every --jobs count. *)
let fields r : (string * field) list =
  [
    ("center", `S r.r_center);
    ("count", `I r.r_count);
    ("units", if r.r_volatile_units then `Null else `I r.r_units);
    ("units_label", `S r.r_units_label);
  ]

(* Inverse of [fields], for re-rendering an --attribution-out file
   (yashme profile --attribution).  Wall clocks are not serialized, so
   the reconstructed row carries none. *)
let of_fields (fs : (string * field) list) =
  let str k =
    match List.assoc_opt k fs with Some (`S s) -> Some s | _ -> None
  in
  match (str "center", List.assoc_opt "count" fs) with
  | Some center, Some (`I count) ->
      let units, volatile =
        match List.assoc_opt "units" fs with
        | Some (`I u) -> (u, false)
        | Some `Null -> (0, true)
        | _ -> (0, false)
      in
      Ok
        {
          r_center = center;
          r_units_label = Option.value ~default:"" (str "units_label");
          r_volatile_units = volatile;
          r_count = count;
          r_units = units;
          r_wall_us = 0;
        }
  | _ -> Error "not an attribution row (missing \"center\"/\"count\")"
