(** Domain-safe counters and histograms.

    Cells are [Atomic.t]s sharded by domain id; reads merge the shards.
    Because addition commutes, merged totals are independent of how work
    was interleaved across domains — counters of deterministic work are
    identical for every [--jobs] count.

    The whole module is disabled by default: every write is a no-op
    behind a single [Atomic.get] branch until {!enable} is called, and
    nothing here influences the instrumented computation (metrics on vs
    off must never change a race report). *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

type counter

(** Find-or-create the counter registered under [name] (creation is
    idempotent: one name, one set of cells). *)
val counter : string -> counter

val counter_name : counter -> string

(** Add 1 / [n] to the calling domain's shard.  No-op when disabled. *)
val incr : counter -> unit

val add : counter -> int -> unit

(** Merge-on-read total across all shards. *)
val value : counter -> int

type histogram

(** Find-or-create a power-of-two-bucketed histogram. *)
val histogram : string -> histogram

val histogram_name : histogram -> string

(** Record one (non-negative) sample.  No-op when disabled. *)
val observe : histogram -> int -> unit

type hstats = { count : int; sum : int; max : int }

(** Merged sample statistics across all shards. *)
val hstats : histogram -> hstats

(** Merged per-bucket sample counts; bucket [i] holds samples in
    [2^(i-1), 2^i) (bucket 0 holds 0). *)
val bucket_counts : histogram -> int array

(** Merged view of the whole registry, sorted by name.  Histograms
    appear as [name#count] / [name#sum] / [name#max] entries. *)
val snapshot : unit -> (string * int) list

(** [diff before after] is the per-name delta, dropping zero entries;
    names absent from [before] count as zero there. *)
val diff : (string * int) list -> (string * int) list -> (string * int) list

(** Zero every registered cell (the registry itself is kept). *)
val reset : unit -> unit
