(* Per-domain execution timelines, reconstructed from recorded traces.

   The engine's trace gives every worker domain a lane (pid 0, tid =
   worker slot) holding one [worker] span per pool lifetime and one
   [scenario] span per unit of claimed work.  This module folds those
   spans back into a lane chart: for each lane, maximal segments of

   - {b busy} time — covered by a work span (category ["scenario"] by
     default; top-level spans when a lane has none),
   - {b queue-wait} time — inside an alive span (name ["worker"] by
     default; the lane's own extent when it has none) but outside any
     work span: the domain existed and was polling the queue, and
   - {b idle} time — inside the batch window but outside the lane's
     alive cover: the domain had not started or had already finished.

   Everything here is wall-clock class: lane charts differ run to run
   and across --jobs counts by construction, so nothing below feeds
   the deterministic report path.  The [t_critical_path_us] figure is
   the largest per-lane busy total — a lower bound on the makespan any
   schedule could reach with this work partition.

   Rendering is dependency-free: an ASCII lane chart, a hand-built SVG
   document (checked by {!check_svg}, the trace-lint analogue for the
   CI artifact), and flat JSONL field lists for the corpus codec. *)

type kind = Busy | Wait | Idle

type segment = { g_start_us : int; g_end_us : int; g_kind : kind }

type lane = {
  tl_pid : int;
  tl_tid : int;
  tl_segments : segment list;  (* sorted, contiguous over the window *)
  tl_spans : int;  (* work spans folded into the busy cover *)
  tl_busy_us : int;
  tl_wait_us : int;
  tl_idle_us : int;
  tl_first_us : int;  (* first busy microsecond (window start if none) *)
  tl_last_us : int;  (* last busy microsecond (window start if none) *)
  tl_utilization : float;  (* busy / window *)
  tl_gaps : int list;  (* non-busy gap lengths between busy segments *)
}

type t = {
  t_start_us : int;
  t_end_us : int;
  t_makespan_us : int;
  t_lanes : lane list;  (* sorted by (pid, tid) *)
  t_busy_us : int;
  t_critical_path_us : int;
  t_utilization : float;  (* busy / (lanes * makespan) *)
  t_straggler : (int * int) option;  (* lane whose busy cover ends last *)
  t_straggler_tail_us : int;  (* its lead over the next-latest lane *)
}

(* ------------------------------------------------------------------ *)
(* Interval algebra: sorted, disjoint, non-empty [(start, end)] lists   *)

let interval_union ivs =
  let sorted = List.sort compare (List.filter (fun (a, b) -> b > a) ivs) in
  let rec merge acc = function
    | [] -> List.rev acc
    | iv :: rest -> (
        match acc with
        | (a, b) :: tl when fst iv <= b ->
            merge ((a, max b (snd iv)) :: tl) rest
        | _ -> merge (iv :: acc) rest)
  in
  merge [] sorted

(* [a] minus [b]; both unions as produced by {!interval_union}. *)
let interval_sub a b =
  List.concat_map
    (fun (lo, hi) ->
      let rec cut lo acc = function
        | [] -> if hi > lo then (lo, hi) :: acc else acc
        | (blo, bhi) :: rest ->
            if bhi <= lo then cut lo acc rest
            else if blo >= hi then if hi > lo then (lo, hi) :: acc else acc
            else
              let acc = if blo > lo then (lo, blo) :: acc else acc in
              if bhi < hi then cut bhi acc rest else acc
      in
      List.rev (cut lo [] b))
    a

let interval_total ivs = List.fold_left (fun s (a, b) -> s + (b - a)) 0 ivs

(* ------------------------------------------------------------------ *)
(* Reconstruction                                                       *)

let span_interval (e : Trace.event) = (e.Trace.ts_us, e.Trace.ts_us + e.Trace.dur_us)

(* Spans not contained in any other span of the lane — the fallback
   work cover for traces that never tagged a work category. *)
let top_level spans =
  List.filter
    (fun (e : Trace.event) ->
      let s, f = span_interval e in
      not
        (List.exists
           (fun (o : Trace.event) ->
             let os, odf = span_interval o in
             o != e && os <= s && f <= odf && (os < s || f < odf))
           spans))
    spans

let of_events ?(work_cat = "scenario") ?(alive_name = "worker") events =
  let spans =
    List.filter (fun (e : Trace.event) -> e.Trace.ph = Trace.Complete) events
  in
  match spans with
  | [] -> Error "empty trace: no complete spans to reconstruct lanes from"
  | _ ->
      (* Group by lane; input order is irrelevant (events may arrive
         out of order), every computation below is over interval
         unions. *)
      let lanes_tbl : (int * int, Trace.event list) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iter
        (fun (e : Trace.event) ->
          let key = (e.Trace.pid, e.Trace.tid) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt lanes_tbl key) in
          Hashtbl.replace lanes_tbl key (e :: prev))
        spans;
      let window_start =
        List.fold_left (fun m e -> min m (fst (span_interval e))) max_int spans
      in
      let window_end =
        List.fold_left (fun m e -> max m (snd (span_interval e))) min_int spans
      in
      let makespan = max 0 (window_end - window_start) in
      let lane_of (pid, tid) lane_spans =
        let work =
          match
            List.filter (fun (e : Trace.event) -> e.Trace.cat = work_cat) lane_spans
          with
          | [] -> top_level lane_spans
          | ws -> ws
        in
        let busy = interval_union (List.map span_interval work) in
        let alive_spans =
          List.filter (fun (e : Trace.event) -> e.Trace.name = alive_name) lane_spans
        in
        let alive =
          match alive_spans with
          | [] ->
              (* No alive marker: the lane's own extent is its cover. *)
              interval_union (List.map span_interval lane_spans)
          | _ -> interval_union (List.map span_interval alive_spans)
        in
        (* The busy cover may leak past a 0-length alive cover; keep the
           classification total by folding busy into alive. *)
        let alive = interval_union (alive @ busy) in
        let wait = interval_sub alive busy in
        let idle = interval_sub [ (window_start, window_end) ] alive in
        let segments =
          List.sort compare
            (List.map (fun (a, b) -> { g_start_us = a; g_end_us = b; g_kind = Busy }) busy
            @ List.map (fun (a, b) -> { g_start_us = a; g_end_us = b; g_kind = Wait }) wait
            @ List.map (fun (a, b) -> { g_start_us = a; g_end_us = b; g_kind = Idle }) idle)
        in
        let busy_us = interval_total busy in
        let first_us =
          match busy with (a, _) :: _ -> a | [] -> window_start
        in
        let last_us =
          match List.rev busy with (_, b) :: _ -> b | [] -> window_start
        in
        (* Gaps between consecutive busy segments: the idle-gap
           histogram's raw material (queue polls, stragglers' tails are
           measured globally instead). *)
        let gaps =
          let rec walk = function
            | (_, b) :: ((a, _) :: _ as rest) -> (a - b) :: walk rest
            | _ -> []
          in
          List.filter (fun g -> g > 0) (walk busy)
        in
        {
          tl_pid = pid;
          tl_tid = tid;
          tl_segments = segments;
          tl_spans = List.length work;
          tl_busy_us = busy_us;
          tl_wait_us = interval_total wait;
          tl_idle_us = interval_total idle;
          tl_first_us = first_us;
          tl_last_us = last_us;
          tl_utilization =
            (if makespan > 0 then float_of_int busy_us /. float_of_int makespan
             else 0.);
          tl_gaps = gaps;
        }
      in
      let lanes =
        Hashtbl.fold (fun key evs acc -> lane_of key evs :: acc) lanes_tbl []
        |> List.sort (fun a b ->
               compare (a.tl_pid, a.tl_tid) (b.tl_pid, b.tl_tid))
      in
      let busy_total = List.fold_left (fun s l -> s + l.tl_busy_us) 0 lanes in
      let critical = List.fold_left (fun m l -> max m l.tl_busy_us) 0 lanes in
      let straggler, tail =
        match
          List.sort
            (fun a b -> compare (b.tl_last_us, b.tl_pid, b.tl_tid) (a.tl_last_us, a.tl_pid, a.tl_tid))
            lanes
        with
        | last :: next :: _ ->
            (Some (last.tl_pid, last.tl_tid), last.tl_last_us - next.tl_last_us)
        | [ only ] -> (Some (only.tl_pid, only.tl_tid), 0)
        | [] -> (None, 0)
      in
      Ok
        {
          t_start_us = window_start;
          t_end_us = window_end;
          t_makespan_us = makespan;
          t_lanes = lanes;
          t_busy_us = busy_total;
          t_critical_path_us = critical;
          t_utilization =
            (let cap = makespan * List.length lanes in
             if cap > 0 then float_of_int busy_total /. float_of_int cap else 0.);
          t_straggler = straggler;
          t_straggler_tail_us = tail;
        }

(* ------------------------------------------------------------------ *)
(* Idle-gap histogram                                                   *)

(* Power-of-two buckets: (upper bound in us, count), ascending, only
   non-empty buckets.  The bucket of gap [g] is the smallest power of
   two >= g. *)
let gap_histogram lane =
  let bucket g =
    let rec up b = if b >= g then b else up (b * 2) in
    up 1
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun g ->
      let b = bucket g in
      Hashtbl.replace tbl b (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
    lane.tl_gaps;
  Hashtbl.fold (fun b n acc -> (b, n) :: acc) tbl [] |> List.sort compare

let histogram_label lane =
  match gap_histogram lane with
  | [] -> "-"
  | buckets ->
      String.concat ","
        (List.map
           (fun (b, n) ->
             if b >= 1000 then Printf.sprintf "<=%dms:%d" (b / 1000) n
             else Printf.sprintf "<=%dus:%d" b n)
           buckets)

let max_gap_us lane = List.fold_left max 0 lane.tl_gaps

(* ------------------------------------------------------------------ *)
(* ASCII lane chart                                                     *)

let ascii ?(width = 64) t =
  let width = max 8 width in
  let buf = Buffer.create 1024 in
  let span = max 1 t.t_makespan_us in
  let label_w =
    List.fold_left
      (fun w l -> max w (String.length (Printf.sprintf "%d/%d" l.tl_pid l.tl_tid)))
      4 t.t_lanes
  in
  List.iter
    (fun l ->
      (* One cell per time bucket; busy wins over wait wins over idle,
         so short scenarios remain visible at coarse resolution. *)
      let cells = Bytes.make width ' ' in
      List.iter
        (fun g ->
          let clamp v = max 0 (min (width - 1) v) in
          let c0 = clamp ((g.g_start_us - t.t_start_us) * width / span) in
          let c1 = clamp ((g.g_end_us - 1 - t.t_start_us) * width / span) in
          let ch = match g.g_kind with Busy -> '#' | Wait -> '.' | Idle -> ' ' in
          for i = c0 to c1 do
            let prev = Bytes.get cells i in
            let keep =
              match (prev, ch) with
              | '#', _ -> true
              | '.', ' ' -> true
              | _ -> false
            in
            if not keep then Bytes.set cells i ch
          done)
        l.tl_segments;
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s| %3.0f%% busy\n" label_w
           (Printf.sprintf "%d/%d" l.tl_pid l.tl_tid)
           (Bytes.to_string cells)
           (100. *. l.tl_utilization)))
    t.t_lanes;
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %s\n" label_w ""
       (Printf.sprintf "# busy  . queue-wait  (makespan %.3fms, pool utilization %.0f%%)"
          (float_of_int t.t_makespan_us /. 1000.)
          (100. *. t.t_utilization)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* SVG export                                                           *)

let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* A dependency-free lane chart: one <rect> per segment, one row per
   lane.  Coordinates are integers, colors are fixed; the document
   passes {!check_svg}, which CI runs on the emitted artifact. *)
let svg ?(width = 800) t =
  let width = max 100 width in
  let row_h = 18 and row_gap = 4 and label_w = 64 and margin = 8 in
  let chart_w = width - label_w - (2 * margin) in
  let n = List.length t.t_lanes in
  let height = (2 * margin) + (n * (row_h + row_gap)) + 16 in
  let span = max 1 t.t_makespan_us in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n"
       width height width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<title>%s</title>\n"
       (xml_escape
          (Printf.sprintf "engine lanes: makespan %dus, %d lane(s)" t.t_makespan_us n)));
  List.iteri
    (fun i l ->
      let y = margin + (i * (row_h + row_gap)) in
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%d\" y=\"%d\" font-family=\"monospace\" font-size=\"11\">%s</text>\n"
           margin
           (y + row_h - 5)
           (xml_escape (Printf.sprintf "%d/%d" l.tl_pid l.tl_tid)));
      List.iter
        (fun g ->
          let x0 = (g.g_start_us - t.t_start_us) * chart_w / span in
          let x1 = (g.g_end_us - t.t_start_us) * chart_w / span in
          let w = max 1 (x1 - x0) in
          let fill =
            match g.g_kind with
            | Busy -> "#4c9f70"
            | Wait -> "#e0b23c"
            | Idle -> "#e5e5e5"
          in
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"/>\n"
               (label_w + margin + x0) y w row_h fill))
        l.tl_segments)
    t.t_lanes;
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" font-family=\"monospace\" font-size=\"10\">%s</text>\n"
       margin (height - margin)
       (xml_escape
          (Printf.sprintf
             "busy (green) / queue-wait (amber) / idle (grey); pool utilization %.0f%%"
             (100. *. t.t_utilization))));
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* SVG well-formedness (trace-lint for the SVG artifact)                *)

(* A small XML well-formedness scanner, in the spirit of
   {!Trace.check_json}: tags must balance, attributes must be quoted,
   text may only use the five predefined entities.  No DOM is built. *)
let check_svg s =
  let n = String.length s in
  let pos = ref 0 in
  let err msg = Error (Printf.sprintf "at offset %d: %s" !pos msg) in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '-' || c = '_' || c = ':' || c = '.'
  in
  let read_name () =
    let start = !pos in
    while !pos < n && is_name_char s.[!pos] do
      incr pos
    done;
    String.sub s start (!pos - start)
  in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let check_entity () =
    (* at '&': require one of the predefined entities *)
    let ok e = String.length s - !pos >= String.length e
               && String.sub s !pos (String.length e) = e in
    match
      List.find_opt ok [ "&amp;"; "&lt;"; "&gt;"; "&quot;"; "&apos;" ]
    with
    | Some e ->
        pos := !pos + String.length e;
        true
    | None -> false
  in
  let rec attrs () =
    skip_ws ();
    if !pos >= n then err "unterminated tag"
    else
      match s.[!pos] with
      | '>' | '/' -> Ok ()
      | c when is_name_char c -> (
          let _ = read_name () in
          if !pos >= n || s.[!pos] <> '=' then err "attribute without '='"
          else begin
            incr pos;
            if !pos >= n || s.[!pos] <> '"' then err "unquoted attribute value"
            else begin
              incr pos;
              let bad = ref None in
              while !pos < n && s.[!pos] <> '"' && !bad = None do
                if s.[!pos] = '<' then bad := Some "'<' in attribute value"
                else if s.[!pos] = '&' then begin
                  if not (check_entity ()) then bad := Some "bad entity"
                end
                else incr pos
              done;
              match !bad with
              | Some msg -> err msg
              | None ->
                  if !pos >= n then err "unterminated attribute value"
                  else begin
                    incr pos;
                    attrs ()
                  end
            end
          end)
      | _ -> err "malformed tag"
  in
  let rec scan stack seen_root =
    if !pos >= n then
      match stack with
      | [] -> if seen_root then Ok () else Error "no root element"
      | tag :: _ -> Error (Printf.sprintf "unclosed element <%s>" tag)
    else
      match s.[!pos] with
      | '<' ->
          incr pos;
          if !pos < n && s.[!pos] = '/' then begin
            incr pos;
            let name = read_name () in
            skip_ws ();
            if !pos >= n || s.[!pos] <> '>' then err "malformed closing tag"
            else begin
              incr pos;
              match stack with
              | top :: rest when top = name -> scan rest seen_root
              | top :: _ ->
                  Error (Printf.sprintf "</%s> closes <%s>" name top)
              | [] -> Error (Printf.sprintf "</%s> without opener" name)
            end
          end
          else if !pos < n && s.[!pos] = '?' then begin
            (* <?xml ...?> prolog *)
            match String.index_from_opt s !pos '>' with
            | Some i ->
                pos := i + 1;
                scan stack seen_root
            | None -> err "unterminated processing instruction"
          end
          else begin
            let name = read_name () in
            if name = "" then err "empty tag name"
            else if stack = [] && seen_root then
              Error "content after the root element"
            else
              match attrs () with
              | Error _ as e -> e
              | Ok () ->
                  if s.[!pos] = '/' then begin
                    incr pos;
                    if !pos >= n || s.[!pos] <> '>' then err "malformed self-close"
                    else begin
                      incr pos;
                      scan stack true
                    end
                  end
                  else begin
                    incr pos;
                    scan (name :: stack) true
                  end
          end
      | '&' ->
          if check_entity () then scan stack seen_root else err "bad entity"
      | _ ->
          if stack = [] && not (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
          then err "text outside the root element"
          else begin
            incr pos;
            scan stack seen_root
          end
  in
  pos := 0;
  if String.trim s = "" then Error "empty SVG document"
  else
    match scan [] false with
    | Ok () ->
        (* The artifact contract: the root element is an <svg>. *)
        let t = String.trim s in
        let root_ok =
          String.length t > 5
          && (String.sub t 0 5 = "<svg " || String.sub t 0 5 = "<svg>")
        in
        let rec past_prolog t =
          if String.length t > 2 && String.sub t 0 2 = "<?" then
            match String.index_opt t '>' with
            | Some i ->
                past_prolog
                  (String.trim (String.sub t (i + 1) (String.length t - i - 1)))
            | None -> t
          else t
        in
        let t = past_prolog t in
        if root_ok
           || (String.length t > 5
              && (String.sub t 0 5 = "<svg " || String.sub t 0 5 = "<svg>"))
        then Ok ()
        else Error "root element is not <svg>"
    | Error _ as e -> e

let check_svg_file path =
  let data = In_channel.with_open_bin path In_channel.input_all in
  match check_svg data with
  | Ok () -> Ok ()
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)

(* ------------------------------------------------------------------ *)
(* Flat export + tables                                                 *)

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

(* One flat object per lane, through the corpus codec.  All wall-clock
   class: timeline exports are timing artifacts and are NOT expected to
   be byte-stable across runs or --jobs counts (unlike the scaling
   report's non-timing projection). *)
let lane_fields t l : (string * field) list =
  [
    ("pid", `I l.tl_pid);
    ("tid", `I l.tl_tid);
    ("spans", `I l.tl_spans);
    ("busy_us", `I l.tl_busy_us);
    ("wait_us", `I l.tl_wait_us);
    ("idle_us", `I l.tl_idle_us);
    ("utilization", `F l.tl_utilization);
    ("first_us", `I (l.tl_first_us - t.t_start_us));
    ("last_us", `I (l.tl_last_us - t.t_start_us));
    ("max_gap_us", `I (max_gap_us l));
    ("gap_histogram", `S (histogram_label l));
  ]

let fmt_ms us = Printf.sprintf "%.3fms" (float_of_int us /. 1000.)

let pp ppf t =
  Format.fprintf ppf "@[<v>[timeline]";
  Format.fprintf ppf "@,  makespan %s, %d lane(s), critical path %s, pool utilization %.0f%%"
    (fmt_ms t.t_makespan_us) (List.length t.t_lanes)
    (fmt_ms t.t_critical_path_us)
    (100. *. t.t_utilization);
  (match t.t_straggler with
  | Some (pid, tid) when List.length t.t_lanes > 1 ->
      Format.fprintf ppf "@,  straggler lane %d/%d finishes %s after the rest"
        pid tid (fmt_ms t.t_straggler_tail_us)
  | _ -> ());
  let header = [ "pid"; "tid"; "spans"; "busy"; "wait"; "idle"; "util"; "max-gap"; "gaps" ] in
  let rows =
    List.map
      (fun l ->
        [
          string_of_int l.tl_pid;
          string_of_int l.tl_tid;
          string_of_int l.tl_spans;
          fmt_ms l.tl_busy_us;
          fmt_ms l.tl_wait_us;
          fmt_ms l.tl_idle_us;
          Printf.sprintf "%.0f%%" (100. *. l.tl_utilization);
          fmt_ms (max_gap_us l);
          histogram_label l;
        ])
      t.t_lanes
  in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      rows
  in
  let render row =
    String.concat "  " (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths row)
  in
  Format.fprintf ppf "@,  %s" (render header);
  List.iter (fun row -> Format.fprintf ppf "@,  %s" (render row)) rows;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
