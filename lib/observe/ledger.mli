(** The durable run ledger: one versioned manifest per detection run.

    This module owns the schema — entry record, flat-field encoding,
    version gate, digests and the timing/identity field classification.
    File I/O and run-to-run comparison live in [Pm_corpus.Ledger_store]
    (lib/corpus depends on lib/observe, not the other way around). *)

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

(** Current schema version; lines carrying a newer [v] are decode
    errors, never silent misinterpretations. *)
val version : int

type cost = {
  c_center : string;
  c_count : int;
  c_units : int;
  c_wall_us : int;
}

type entry = {
  e_version : int;
  e_run : string;  (** free-form label; identity, never compared *)
  e_ts : float;  (** unix seconds at append time *)
  e_program : string;
  e_variant : string;
  e_mode : string;  (** mc | mc-recovery | random | bench *)
  e_jobs : int;
  e_seed : int;
  e_scenarios : int;
  e_completed : int;
  e_faulted : int;
  e_diverged : int;
  e_executions : int;
  e_ops : int;
  e_races : int;
  e_benign : int;
  e_raw_races : int;
  e_recovery_failures : int;
  e_witnesses : int;
  e_elapsed_s : float;
  e_cpu_s : float;
  e_metrics_digest : string;
  e_coverage_digest : string;
  e_cost : cost list;  (** sorted by center name *)
}

(** FNV-1a (64-bit) of every byte, as 16 hex characters.  A real hash:
    [Hashtbl.hash] samples a bounded prefix and would collide silently. *)
val digest_string : string -> string

(** Digest of a counter snapshot (e.g. a {!Metrics.diff}), sorted by
    name so shard interleaving cannot change it. *)
val digest_counters : (string * int) list -> string

(** Digest of a flat field list (e.g. {!Coverage.fields}), in field
    order. *)
val digest_fields : (string * field) list -> string

(** Wall-clock/GC-word class fields ([ts], [elapsed_s], [cpu_s],
    [cc:*:wall_us], [cc:gc/*]): excluded from regression gating. *)
val timing_field : string -> bool

(** Fields naming a run rather than describing it ([run], [v]). *)
val identity_field : string -> bool

(** Regression direction of a numeric field under comparison: [`Higher]
    is better (races, witnesses — losing one is the regression the
    gate exists to catch), [`Lower] is better (timing), [`Neutral]
    means any delta is a change worth flagging. *)
val direction : string -> [ `Higher | `Lower | `Neutral ]

(** Flat, order-stable field list — the shape [Pm_corpus.Json] encodes
    verbatim as one JSONL line.  Cost centers appear as
    [cc:<center>:count] / [cc:<center>:units] / [cc:<center>:wall_us]
    triples, sorted by center. *)
val fields : entry -> (string * field) list

(** Inverse of {!fields}.  Errors on missing/mistyped fields and on a
    version newer than {!version}.  [of_fields (fields e) = Ok e]. *)
val of_fields : (string * field) list -> (entry, string) result

(** Every numeric field (timing included; identity excluded), in
    {!fields} order — the comparison substrate. *)
val numeric_fields : entry -> (string * float) list

(** Configuration/digest strings two comparable runs must agree on;
    [run] is identity and excluded. *)
val string_fields : entry -> (string * string) list

(** Fold an {!Attribution.diff} into cost records. *)
val costs_of_rows : Attribution.row list -> cost list
