(** Leveled logging routed through the observe layer.

    Messages at or above the current threshold print to stderr as
    ["yashme: <level>: <msg>"]; every message is also mirrored into
    the {!Trace} sink (Instant, category ["log"]) when it is
    recording, regardless of the threshold. *)

type level = Off | Warn | Info | Debug

(** Set the stderr threshold (default [Warn]). *)
val set_level : level -> unit

val level : unit -> level

(** Parse ["off"|"quiet"|"warn"|"info"|"debug"] (plus ["warning"]). *)
val level_of_string : string -> level option

val level_to_string : level -> string

(** [set_quiet true] is {!set_level}[ Off]; [set_quiet false] restores
    the [Warn] default.  Kept for the [--quiet] flag. *)
val set_quiet : bool -> unit

(** True whenever warnings are suppressed (threshold below [Warn]). *)
val quiet : unit -> bool

val warn : string -> unit
val info : string -> unit
val debug : string -> unit
