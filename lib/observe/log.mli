(** Warnings routed through the observe layer. *)

(** Suppress stderr output of {!warn} (the trace mirror is kept). *)
val set_quiet : bool -> unit

val quiet : unit -> bool

(** Print ["yashme: warning: <msg>"] to stderr (unless quieted) and
    mirror the message into the {!Trace} sink when it is recording. *)
val warn : string -> unit
