(* Domain-safe counters and histograms.

   Every cell is an [Atomic.t] sharded by domain id: concurrent
   increments from engine workers land on different cells, and reads
   merge the shards (addition commutes, so merged totals are identical
   for any interleaving — and therefore for any --jobs count).

   Everything is a no-op behind a single [Atomic.get] branch until
   [enable] is called, and nothing here feeds back into the systems
   being measured: instrumented code behaves identically with metrics
   on or off. *)

let shards = 64 (* power of two; domain ids map to cells by masking *)

let slot () = (Domain.self () :> int) land (shards - 1)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

type counter = { c_name : string; cells : int Atomic.t array }

(* Power-of-two buckets: a value v lands in bucket [bits v], so bucket
   i holds values in [2^(i-1), 2^i). *)
let buckets = 63

type histogram = {
  h_name : string;
  h_counts : int Atomic.t array; (* shards * buckets, flattened *)
  h_sums : int Atomic.t array; (* per-shard value sums *)
  h_maxes : int Atomic.t array; (* per-shard maxima *)
}

type hstats = { count : int; sum : int; max : int }

let registry_lock = Mutex.create ()
let counter_registry : (string, counter) Hashtbl.t = Hashtbl.create 64
let histogram_registry : (string, histogram) Hashtbl.t = Hashtbl.create 16

let atomics n = Array.init n (fun _ -> Atomic.make 0)

(* Creation is idempotent: asking twice for one name yields the same
   cells, so instrumentation sites and tests can share counters by
   name alone. *)
let counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt counter_registry name with
      | Some c -> c
      | None ->
          let c = { c_name = name; cells = atomics shards } in
          Hashtbl.add counter_registry name c;
          c)

let histogram name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt histogram_registry name with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              h_counts = atomics (shards * buckets);
              h_sums = atomics shards;
              h_maxes = atomics shards;
            }
          in
          Hashtbl.add histogram_registry name h;
          h)

let counter_name c = c.c_name
let histogram_name h = h.h_name

let add c n =
  if Atomic.get enabled then ignore (Atomic.fetch_and_add c.cells.(slot ()) n)

let incr c = add c 1

let value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.cells

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      b := !b + 1;
      v := !v lsr 1
    done;
    min !b (buckets - 1)
  end

let observe h v =
  if Atomic.get enabled then begin
    let s = slot () in
    ignore (Atomic.fetch_and_add h.h_counts.((s * buckets) + bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.h_sums.(s) v);
    let rec bump () =
      let m = Atomic.get h.h_maxes.(s) in
      if v > m && not (Atomic.compare_and_set h.h_maxes.(s) m v) then bump ()
    in
    bump ()
  end

let hstats h =
  let count = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 h.h_counts in
  let sum = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 h.h_sums in
  let max = Array.fold_left (fun acc a -> Stdlib.max acc (Atomic.get a)) 0 h.h_maxes in
  { count; sum; max }

let bucket_counts h =
  Array.init buckets (fun b ->
      let acc = ref 0 in
      for s = 0 to shards - 1 do
        acc := !acc + Atomic.get h.h_counts.((s * buckets) + b)
      done;
      !acc)

(* Merged view of the whole registry: counters by name, plus #count /
   #sum / #max pseudo-counters per histogram, sorted by name so two
   snapshots of identical work compare equal structurally. *)
let snapshot () =
  Mutex.protect registry_lock (fun () ->
      let cs =
        Hashtbl.fold (fun name c acc -> (name, value c) :: acc) counter_registry []
      in
      let hs =
        Hashtbl.fold
          (fun name h acc ->
            let s = hstats h in
            (name ^ "#count", s.count)
            :: (name ^ "#sum", s.sum)
            :: (name ^ "#max", s.max)
            :: acc)
          histogram_registry []
      in
      List.sort (fun (a, _) (b, _) -> compare a b) (cs @ hs))

(* after - before, dropping zero deltas (names absent from [before]
   count as zero). *)
let diff before after =
  List.filter_map
    (fun (name, v) ->
      let prev = Option.value ~default:0 (List.assoc_opt name before) in
      if v - prev = 0 then None else Some (name, v - prev))
    after

let reset () =
  Mutex.protect registry_lock (fun () ->
      let zero a = Array.iter (fun cell -> Atomic.set cell 0) a in
      Hashtbl.iter (fun _ c -> zero c.cells) counter_registry;
      Hashtbl.iter
        (fun _ h ->
          zero h.h_counts;
          zero h.h_sums;
          zero h.h_maxes)
        histogram_registry)
