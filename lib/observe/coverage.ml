(* Crash-space coverage accounting.

   Answers, per program, "how much of the crash space did this run
   actually explore?": which crash-plan indices were exercised, which
   crash points actually fired, how many prefix expansions the detector
   performed vs how many checks it pruned (coherence / persisted), and
   how many distinct cache lines a crash ever materialized.

   Accounting is attributed to the ambient program of the calling
   domain (a [Domain.DLS] slot the engine sets around each scenario),
   and accumulated into per-domain shards merged on read.  Every
   per-program quantity is either a set union or a counter sum, and
   each scenario executes exactly once regardless of the pool size, so
   merged coverage is byte-identical for every [--jobs] count.

   Like {!Metrics}, the whole module is disabled by default: each hook
   is a no-op behind a single [Atomic.get] branch, and nothing here
   feeds back into the exploration being measured. *)

let shards = 64 (* power of two; domain ids map to shards by masking *)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* Persistency-model variant label used when the engine supplies none.
   Kept as an opaque string convention (lib/observe must not depend on
   px86); it matches [Px86.Variant.default_label]. *)
let default_variant = "strict-tso"

(* Ambient (program, variant) of the calling domain.  Hooks fired
   outside any scenario (setup memoization, flush-point probes) have no
   ambient program and are deliberately dropped: those runs happen once
   on the launching domain no matter the job count, and attributing
   them would double-count work the scenarios repeat. *)
let ambient : (string * string) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* Per-shard accumulator of one program.  Mutated only under the
   owning shard's lock; sets are unit-valued hashtables. *)
type acc = {
  mutable a_scenarios : int;
  a_plans : (int, unit) Hashtbl.t;
  a_crashes : (int, unit) Hashtbl.t;
  mutable a_expansions : int;
  mutable a_pruned_coherence : int;
  mutable a_pruned_persisted : int;
  a_lines : (int, unit) Hashtbl.t;
  mutable a_oracle_checks : int;
  mutable a_oracle_violations : int;
}

(* Keyed by (program, variant label): running the same program under
   several model variants accumulates separate rows. *)
type shard = { lock : Mutex.t; progs : (string * string, acc) Hashtbl.t }

let store =
  Array.init shards (fun _ -> { lock = Mutex.create (); progs = Hashtbl.create 8 })

let reset () =
  Array.iter
    (fun s -> Mutex.protect s.lock (fun () -> Hashtbl.reset s.progs))
    store

let acc_of s key =
  match Hashtbl.find_opt s.progs key with
  | Some a -> a
  | None ->
      let a =
        {
          a_scenarios = 0;
          a_plans = Hashtbl.create 8;
          a_crashes = Hashtbl.create 8;
          a_expansions = 0;
          a_pruned_coherence = 0;
          a_pruned_persisted = 0;
          a_lines = Hashtbl.create 8;
          a_oracle_checks = 0;
          a_oracle_violations = 0;
        }
      in
      Hashtbl.add s.progs key a;
      a

(* Run [f] on the calling domain's accumulator for the ambient
   program; the common disabled / no-ambient-program case is two loads
   and a branch. *)
let touch f =
  if Atomic.get enabled then
    match Domain.DLS.get ambient with
    | None -> ()
    | Some key ->
        let s = store.((Domain.self () :> int) land (shards - 1)) in
        Mutex.protect s.lock (fun () -> f (acc_of s key))

let with_program ?(variant = default_variant) program f =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some (program, variant));
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let mark tbl k = if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k ()

let scenario_started () = touch (fun a -> a.a_scenarios <- a.a_scenarios + 1)
let plan_exercised i = touch (fun a -> mark a.a_plans i)
let crash_point i = touch (fun a -> mark a.a_crashes i)
let prefix_expanded () = touch (fun a -> a.a_expansions <- a.a_expansions + 1)

let pruned = function
  | `Coherence ->
      touch (fun a -> a.a_pruned_coherence <- a.a_pruned_coherence + 1)
  | `Persisted ->
      touch (fun a -> a.a_pruned_persisted <- a.a_pruned_persisted + 1)

let line_materialized line = touch (fun a -> mark a.a_lines line)

let oracle_checked () =
  touch (fun a -> a.a_oracle_checks <- a.a_oracle_checks + 1)

let oracle_violation () =
  touch (fun a -> a.a_oracle_violations <- a.a_oracle_violations + 1)

(* ------------------------------------------------------------------ *)
(* Merge-on-read snapshots                                              *)

type stats = {
  program : string;
  variant : string;
  scenarios : int;
  plan_indices : int list;
  crash_points : int list;
  prefix_expansions : int;
  pruned_coherence : int;
  pruned_persisted : int;
  lines_materialized : int;
  oracle_checks : int;
  oracle_violations : int;
}

let keys tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl []

(* Merge one program's shard accumulators: counters sum, sets union —
   both commute, so the result is independent of which domain did
   which scenario. *)
let merge (program, variant) accs =
  let scenarios = ref 0
  and expansions = ref 0
  and coh = ref 0
  and per = ref 0
  and plans = ref []
  and crashes = ref []
  and lines = ref []
  and ochecks = ref 0
  and oviolations = ref 0 in
  List.iter
    (fun a ->
      scenarios := !scenarios + a.a_scenarios;
      expansions := !expansions + a.a_expansions;
      coh := !coh + a.a_pruned_coherence;
      per := !per + a.a_pruned_persisted;
      plans := keys a.a_plans @ !plans;
      crashes := keys a.a_crashes @ !crashes;
      lines := keys a.a_lines @ !lines;
      ochecks := !ochecks + a.a_oracle_checks;
      oviolations := !oviolations + a.a_oracle_violations)
    accs;
  {
    program;
    variant;
    scenarios = !scenarios;
    plan_indices = List.sort_uniq compare !plans;
    crash_points = List.sort_uniq compare !crashes;
    prefix_expansions = !expansions;
    pruned_coherence = !coh;
    pruned_persisted = !per;
    lines_materialized = List.length (List.sort_uniq compare !lines);
    oracle_checks = !ochecks;
    oracle_violations = !oviolations;
  }

let snapshot () =
  let by_key : (string * string, acc list) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Hashtbl.iter
            (fun key a ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt by_key key) in
              Hashtbl.replace by_key key (a :: prev))
            s.progs))
    store;
  Hashtbl.fold (fun key accs out -> merge key accs :: out) by_key []
  |> List.sort (fun a b -> compare (a.program, a.variant) (b.program, b.variant))

let find ?(variant = default_variant) program =
  List.find_opt
    (fun s -> s.program = program && s.variant = variant)
    (snapshot ())

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

(* Compact range form of a sorted index set; -1 is the crash-at-end
   pseudo-index and renders as "end". *)
let indices_label indices =
  let at_end = List.mem (-1) indices in
  let indices = List.filter (fun i -> i >= 0) indices in
  let ranges =
    let rec group acc cur = function
      | [] -> List.rev (match cur with None -> acc | Some r -> r :: acc)
      | i :: rest -> (
          match cur with
          | Some (lo, hi) when i = hi + 1 -> group acc (Some (lo, i)) rest
          | Some r -> group (r :: acc) (Some (i, i)) rest
          | None -> group acc (Some (i, i)) rest)
    in
    group [] None indices
  in
  let parts =
    List.map
      (fun (lo, hi) ->
        if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi)
      ranges
    @ (if at_end then [ "end" ] else [])
  in
  match parts with [] -> "-" | parts -> String.concat "," parts

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

(* Flat field list, stable order: the shape lib/corpus's codec encodes
   verbatim (one JSON object per program). *)
let fields s : (string * field) list =
  [
    ("program", `S s.program);
    ("variant", `S s.variant);
    ("scenarios", `I s.scenarios);
    ("plan_indices", `S (indices_label s.plan_indices));
    ("plan_index_count", `I (List.length s.plan_indices));
    ("crash_points", `S (indices_label s.crash_points));
    ("crash_point_count", `I (List.length s.crash_points));
    ("prefix_expansions", `I s.prefix_expansions);
    ("pruned_coherence", `I s.pruned_coherence);
    ("pruned_persisted", `I s.pruned_persisted);
    ("lines_materialized", `I s.lines_materialized);
    (* Appended last so pre-oracle consumers of the JSONL shape keep
       their field prefix unchanged. *)
    ("oracle_checks", `I s.oracle_checks);
    ("oracle_violations", `I s.oracle_violations);
  ]

let pp ppf s =
  Format.fprintf ppf "@[<v>%s coverage:" s.program;
  (* The variant line appears only off the default, keeping historical
     coverage blocks byte-identical. *)
  if s.variant <> default_variant then
    Format.fprintf ppf "@,  variant                  %s" s.variant;
  Format.fprintf ppf "@,  scenarios run            %d" s.scenarios;
  Format.fprintf ppf "@,  crash-plan indices       %d exercised (%s)"
    (List.length s.plan_indices)
    (indices_label s.plan_indices);
  Format.fprintf ppf "@,  crash points fired       %d (%s)"
    (List.length s.crash_points)
    (indices_label s.crash_points);
  Format.fprintf ppf "@,  prefix expansions        %d" s.prefix_expansions;
  Format.fprintf ppf "@,  pruned checks            %d coherence, %d persisted"
    s.pruned_coherence s.pruned_persisted;
  Format.fprintf ppf "@,  cache lines materialized %d distinct" s.lines_materialized;
  (* Oracle lines appear only when the oracle ran, keeping pre-oracle
     coverage blocks byte-identical. *)
  if s.oracle_checks > 0 then
    Format.fprintf ppf "@,  oracle checks            %d (%d violation%s)"
      s.oracle_checks s.oracle_violations
      (if s.oracle_violations = 1 then "" else "s");
  Format.fprintf ppf "@]"

let to_string s = Format.asprintf "%a" pp s
