(** Hot-spot profiles over recorded span traces.

    Re-reads a trace file written by [--trace-out] (Chrome JSON or
    JSONL) and aggregates its Complete spans into self-time tables.
    Self time is a span's duration minus its direct children's
    durations, where nesting is interval containment within one
    (pid, tid) lane — matching how the Chrome viewer nests them. *)

(** Parse a trace file into events.  Dispatches on the [.jsonl]
    suffix like {!Trace.write}; unknown phases are skipped.  Errors
    carry a position ([offset N] / [line N]). *)
val parse_file : string -> (Trace.event list, string) result

type row = {
  r_key : string;  (** span name or category *)
  r_count : int;
  r_total_us : int;  (** summed inclusive duration *)
  r_self_us : int;  (** summed duration minus direct children *)
}

(** Aggregate by span name, sorted by self time descending (name
    ascending on ties). *)
val by_name : Trace.event list -> row list

(** Aggregate by category; empty categories group under
    ["(uncategorized)"]. *)
val by_cat : Trace.event list -> row list

type lane = {
  l_pid : int;
  l_tid : int;
  l_spans : int;
  l_instants : int;
  l_busy_us : int;  (** summed duration of top-level spans *)
}

(** Per-(pid, tid) lane summary, sorted by (pid, tid). *)
val lanes : Trace.event list -> lane list
