(* Hot-spot profiles over recorded span traces.

   [yashme profile trace.json] re-reads a file written by
   [--trace-out] and aggregates its Complete spans into per-name /
   per-category self-time tables plus a per-lane utilization summary.

   Self time is a span's duration minus the durations of its direct
   children, where nesting is interval containment within one
   (pid, tid) lane — exactly how the Chrome viewer draws them.  The
   parser is a minimal recursive-descent JSON reader (the repo policy
   is no JSON library dependency) that accepts both export formats of
   {!Trace.write}. *)

(* ------------------------------------------------------------------ *)
(* JSON values (the trace format needs nesting, unlike the flat corpus
   codec)                                                              *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of int * string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal l v =
    if !pos + String.length l <= n && String.sub s !pos (String.length l) = l then begin
      pos := !pos + String.length l;
      v
    end
    else fail (Printf.sprintf "expected %s" l)
  in
  let add_codepoint buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some cp -> add_codepoint buf cp
            | None -> fail (Printf.sprintf "bad \\u escape %S" hex))
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let elems = ref [] in
          let rec loop () =
            let v = value () in
            elems := v :: !elems;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          loop ();
          Arr (List.rev !elems)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
    | None -> fail "unexpected end of input"
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

let field obj key = match obj with Obj kvs -> List.assoc_opt key kvs | _ -> None

let int_field obj key ~default =
  match field obj key with Some (Num f) -> int_of_float f | _ -> default

let str_field obj key ~default =
  match field obj key with Some (Str s) -> s | _ -> default

(* One trace event object; [None] for phases this profiler does not
   aggregate (forward compatibility, not an error). *)
let event_of_json obj =
  match field obj "ph" with
  | Some (Str "X") ->
      Some
        {
          Trace.name = str_field obj "name" ~default:"";
          cat = str_field obj "cat" ~default:"";
          ph = Trace.Complete;
          ts_us = int_field obj "ts" ~default:0;
          dur_us = int_field obj "dur" ~default:0;
          pid = int_field obj "pid" ~default:0;
          tid = int_field obj "tid" ~default:0;
          args = [];
        }
  | Some (Str "i") ->
      Some
        {
          Trace.name = str_field obj "name" ~default:"";
          cat = str_field obj "cat" ~default:"";
          ph = Trace.Instant;
          ts_us = int_field obj "ts" ~default:0;
          dur_us = 0;
          pid = int_field obj "pid" ~default:0;
          tid = int_field obj "tid" ~default:0;
          args = [];
        }
  | _ -> None

let events_of_chrome s =
  match parse_json s with
  | Error e -> Error e
  | Ok doc -> (
      match field doc "traceEvents" with
      | Some (Arr evs) -> Ok (List.filter_map event_of_json evs)
      | Some _ -> Error "\"traceEvents\" is not an array"
      | None -> Error "not a Chrome trace (no \"traceEvents\" member)")

let events_of_jsonl s =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
  in
  let rec loop i acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse_json l with
        | Error e -> Error (Printf.sprintf "line %d: %s" i e)
        | Ok obj -> (
            match event_of_json obj with
            | Some ev -> loop (i + 1) (ev :: acc) rest
            | None -> loop (i + 1) acc rest))
  in
  loop 1 [] lines

let parse_file path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.trim data = "" then
    Error (Printf.sprintf "offset 0: empty trace file (%d byte(s))" (String.length data))
  else if Filename.check_suffix path ".jsonl" then events_of_jsonl data
  else events_of_chrome data

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)

type row = { r_key : string; r_count : int; r_total_us : int; r_self_us : int }

type lane = {
  l_pid : int;
  l_tid : int;
  l_spans : int;
  l_instants : int;
  l_busy_us : int;  (* summed duration of top-level spans *)
}

(* Parents-first ordering within a lane: ascending start, longer spans
   first on ties (same rule {!Trace.events} exports with). *)
let lane_sort evs =
  List.stable_sort
    (fun (a : Trace.event) (b : Trace.event) ->
      match compare a.Trace.ts_us b.Trace.ts_us with
      | 0 -> compare b.Trace.dur_us a.Trace.dur_us
      | c -> c)
    evs

let group_lanes events =
  let tbl : (int * int, Trace.event list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      let k = (e.Trace.pid, e.Trace.tid) in
      Hashtbl.replace tbl k (e :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
    events;
  Hashtbl.fold (fun k evs acc -> (k, List.rev evs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Stack scan of one lane's spans: a span whose interval is contained
   in the stack top is its child; its duration is charged to the
   parent's child-time, making parent self = dur - children.  Calls
   [f ev ~self_us ~top_level] for every Complete span. *)
let scan_lane evs f =
  let spans =
    lane_sort (List.filter (fun (e : Trace.event) -> e.Trace.ph = Trace.Complete) evs)
  in
  (* stack entries: (end_ts, child duration accumulator, event) *)
  let stack = ref [] in
  let pop (_, children, (ev : Trace.event)) =
    f ev ~self_us:(max 0 (ev.Trace.dur_us - !children))
      ~top_level:(!stack = [])
  in
  let rec unwind ts =
    match !stack with
    | (end_ts, _, _) :: rest when end_ts <= ts ->
        let top = List.hd !stack in
        stack := rest;
        pop top;
        unwind ts
    | _ -> ()
  in
  List.iter
    (fun (e : Trace.event) ->
      unwind e.Trace.ts_us;
      (match !stack with
      | (_, children, _) :: _ -> children := !children + e.Trace.dur_us
      | [] -> ());
      stack := (e.Trace.ts_us + e.Trace.dur_us, ref 0, e) :: !stack)
    spans;
  unwind max_int

let aggregate ~key events =
  let tbl : (string, int * int * int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (_, evs) ->
      scan_lane evs (fun ev ~self_us ~top_level:_ ->
          let k = key ev in
          let count, total, self =
            Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl k)
          in
          Hashtbl.replace tbl k
            (count + 1, total + ev.Trace.dur_us, self + self_us)))
    (group_lanes events);
  Hashtbl.fold
    (fun k (count, total, self) acc ->
      { r_key = k; r_count = count; r_total_us = total; r_self_us = self } :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.r_self_us a.r_self_us with
         | 0 -> compare a.r_key b.r_key
         | c -> c)

let by_name events = aggregate ~key:(fun (e : Trace.event) -> e.Trace.name) events

let by_cat events =
  aggregate
    ~key:(fun (e : Trace.event) ->
      if e.Trace.cat = "" then "(uncategorized)" else e.Trace.cat)
    events

let lanes events =
  List.map
    (fun ((pid, tid), evs) ->
      let spans = ref 0 and instants = ref 0 and busy = ref 0 in
      List.iter
        (fun (e : Trace.event) ->
          match e.Trace.ph with
          | Trace.Instant -> incr instants
          | Trace.Complete -> incr spans)
        evs;
      scan_lane evs (fun ev ~self_us:_ ~top_level ->
          if top_level then busy := !busy + ev.Trace.dur_us);
      { l_pid = pid; l_tid = tid; l_spans = !spans; l_instants = !instants;
        l_busy_us = !busy })
    (group_lanes events)
