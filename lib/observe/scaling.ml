(* Jobs-sweep analysis: where does parallel wall-clock go?

   The driver runs the same program at several --jobs levels and hands
   this module one {!level} per job count.  The analysis derives
   speedup and parallel efficiency against the lowest-jobs reference
   level, fits an Amdahl serial fraction across the multi-domain
   levels, and sets the lost domain-seconds of each level against the
   named cost centers the engine already attributes: queue-wait,
   snapshot copying, result merge, and the (volatile) GC word deltas.

   The column model follows {!Attribution}'s two classes.  A level's
   scenario/execution/op/race/witness counts and snapshot bytes are
   deterministic work — identical for every --jobs count — so the
   [fields ~timing:false] projection of a sweep is byte-stable and CI
   cmp-able, and {!check} enforces that invariance across the sweep's
   own levels.  Wall clocks, speedup, efficiency, serial fraction and
   GC word deltas are scheduling-dependent and render only in the full
   ([~timing:true]) rows. *)

type level = {
  v_jobs : int;
  v_elapsed_s : float;
  v_cpu_s : float;
  v_scenarios : int;
  v_completed : int;
  v_faulted : int;
  v_executions : int;
  v_ops : int;
  v_races : int;
  v_witnesses : int;
  v_snapshot_bytes : int;  (* px86/snapshot_copy charged units *)
  v_queue_wait_us : int;  (* engine/queue_wait wall *)
  v_snapshot_us : int;  (* px86/snapshot_copy wall *)
  v_merge_us : int;  (* engine/merge wall *)
  v_gc_minor_words : int;  (* volatile: process-global GC deltas *)
  v_gc_major_words : int;
}

(* Pull the cost-center quantities a level needs out of an
   [Attribution.diff] window. *)
let of_attribution rows =
  let find name = List.find_opt (fun r -> r.Attribution.r_center = name) rows in
  let wall name =
    match find name with Some r -> r.Attribution.r_wall_us | None -> 0
  in
  let units name =
    match find name with Some r -> r.Attribution.r_units | None -> 0
  in
  ( units "px86/snapshot_copy",
    wall "engine/queue_wait",
    wall "px86/snapshot_copy",
    wall "engine/merge",
    units "gc/minor",
    units "gc/major" )

type derived = {
  d_speedup : float;  (* T_ref / T_n *)
  d_efficiency : float;  (* speedup / (jobs / ref_jobs) *)
  d_serial_fraction : float option;
      (* per-level Amdahl estimate; None at the reference level *)
  d_lost_s : float;  (* jobs * elapsed - ref elapsed: extra domain-seconds *)
}

type analysis = {
  a_program : string;
  a_reference_jobs : int;
  a_levels : (level * derived) list;  (* ascending jobs *)
  a_serial_fraction : float option;  (* Amdahl fit over jobs > reference *)
  a_loss_centers : (string * float) list;
      (* lost seconds by named center at the highest level, descending *)
}

let finite f =
  match Float.classify_float f with FP_nan | FP_infinite -> 0. | _ -> f

let clamp01 f = Float.max 0. (Float.min 1. f)

(* Amdahl per-level estimate: with T(n) = T1 * (s + (1-s)/n), the
   serial fraction observed at effective parallelism [n] is
   s = (n/speedup - 1) / (n - 1). *)
let amdahl_fraction ~n ~speedup =
  if n <= 1. || speedup <= 0. then None
  else Some (clamp01 ((n /. speedup -. 1.) /. (n -. 1.)))

let analyze ~program levels =
  match List.sort (fun a b -> compare a.v_jobs b.v_jobs) levels with
  | [] -> Error "scaling analysis needs at least one jobs level"
  | reference :: _ as sorted ->
      let dup =
        let rec find = function
          | a :: (b :: _ as rest) ->
              if a.v_jobs = b.v_jobs then Some a.v_jobs else find rest
          | _ -> None
        in
        find sorted
      in
      (match dup with
      | Some j -> Error (Printf.sprintf "duplicate jobs level %d" j)
      | None ->
          let t_ref = reference.v_elapsed_s in
          let derive l =
            let n =
              float_of_int l.v_jobs /. float_of_int (max 1 reference.v_jobs)
            in
            let speedup =
              if l.v_elapsed_s > 0. then finite (t_ref /. l.v_elapsed_s) else 0.
            in
            let efficiency = if n > 0. then finite (speedup /. n) else 0. in
            {
              d_speedup = speedup;
              d_efficiency = efficiency;
              d_serial_fraction = amdahl_fraction ~n ~speedup;
              d_lost_s =
                Float.max 0.
                  ((float_of_int l.v_jobs *. l.v_elapsed_s) -. t_ref);
            }
          in
          let pairs = List.map (fun l -> (l, derive l)) sorted in
          let estimates =
            List.filter_map (fun (_, d) -> d.d_serial_fraction) pairs
          in
          let fitted =
            match estimates with
            | [] -> None
            | es ->
                Some (List.fold_left ( +. ) 0. es /. float_of_int (List.length es))
          in
          let loss_centers =
            match List.rev pairs with
            | [] -> []
            | (top, d) :: _ ->
                let s us = float_of_int us /. 1_000_000. in
                let named =
                  [
                    ("engine/queue_wait", s top.v_queue_wait_us);
                    ("px86/snapshot_copy", s top.v_snapshot_us);
                    ("engine/merge", s top.v_merge_us);
                  ]
                in
                let accounted =
                  List.fold_left (fun acc (_, v) -> acc +. v) 0. named
                in
                let rows =
                  named @ [ ("other", Float.max 0. (d.d_lost_s -. accounted)) ]
                in
                List.sort (fun (_, a) (_, b) -> compare b a) rows
          in
          Ok
            {
              a_program = program;
              a_reference_jobs = reference.v_jobs;
              a_levels = pairs;
              a_serial_fraction = fitted;
              a_loss_centers = loss_centers;
            })

(* ------------------------------------------------------------------ *)
(* The two-class export                                                 *)

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

(* Flat JSONL row per level (corpus-codec shape).  The [timing:false]
   prefix is the jobs-invariant projection; [timing:true] appends the
   wall-clock class after it, so projection consumers keep a stable
   field prefix. *)
let fields ?(timing = true) ~program (l, d) : (string * field) list =
  let invariant =
    [
      ("program", `S program);
      ("jobs", `I l.v_jobs);
      ("scenarios", `I l.v_scenarios);
      ("completed", `I l.v_completed);
      ("faulted", `I l.v_faulted);
      ("executions", `I l.v_executions);
      ("ops", `I l.v_ops);
      ("races", `I l.v_races);
      ("witnesses", `I l.v_witnesses);
      ("snapshot_bytes", `I l.v_snapshot_bytes);
    ]
  in
  if not timing then invariant
  else
    invariant
    @ [
        ("elapsed_s", `F l.v_elapsed_s);
        ("cpu_s", `F l.v_cpu_s);
        ("speedup", `F d.d_speedup);
        ("efficiency", `F d.d_efficiency);
        ( "serial_fraction",
          match d.d_serial_fraction with Some s -> `F s | None -> `Null );
        ("lost_s", `F d.d_lost_s);
        ("queue_wait_s", `F (float_of_int l.v_queue_wait_us /. 1_000_000.));
        ("snapshot_s", `F (float_of_int l.v_snapshot_us /. 1_000_000.));
        ("merge_s", `F (float_of_int l.v_merge_us /. 1_000_000.));
        ("gc_minor_words", `I l.v_gc_minor_words);
        ("gc_major_words", `I l.v_gc_major_words);
      ]

(* The sweep's own determinism check: every level's non-timing
   projection (minus the [jobs] identity) must equal the reference
   level's.  Names the first diverging field, so a violation of the
   engine's determinism contract is diagnosable from the CI log. *)
let check ~program levels =
  match List.sort (fun a b -> compare a.v_jobs b.v_jobs) levels with
  | [] -> Error "scaling check needs at least one jobs level"
  | reference :: rest ->
      let zero = { d_speedup = 0.; d_efficiency = 0.; d_serial_fraction = None; d_lost_s = 0. } in
      let projection l =
        List.filter
          (fun (k, _) -> k <> "jobs")
          (fields ~timing:false ~program (l, zero))
      in
      let ref_proj = projection reference in
      let rec scan = function
        | [] -> Ok ()
        | l :: rest -> (
            let proj = projection l in
            match
              List.find_opt
                (fun ((k, v), (_, v')) -> ignore k; v <> v')
                (List.combine ref_proj proj)
            with
            | Some ((k, _), _) ->
                Error
                  (Printf.sprintf
                     "non-timing field %S differs between jobs=%d and jobs=%d"
                     k reference.v_jobs l.v_jobs)
            | None -> scan rest)
      in
      scan rest

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let fmt_s v = Printf.sprintf "%.4fs" v
let fmt_words w =
  if w >= 1_000_000 then Printf.sprintf "%.1fMw" (float_of_int w /. 1_000_000.)
  else if w >= 1_000 then Printf.sprintf "%.1fkw" (float_of_int w /. 1_000.)
  else Printf.sprintf "%dw" w

let pp ppf a =
  Format.fprintf ppf "@[<v>%s scaling (reference jobs=%d):" a.a_program
    a.a_reference_jobs;
  let header =
    [ "jobs"; "elapsed"; "speedup"; "efficiency"; "queue-wait"; "snapshot";
      "merge"; "gc-minor"; "lost" ]
  in
  let rows =
    List.map
      (fun (l, d) ->
        [
          string_of_int l.v_jobs;
          fmt_s l.v_elapsed_s;
          Printf.sprintf "%.2fx" d.d_speedup;
          Printf.sprintf "%.1f%%" (100. *. d.d_efficiency);
          fmt_s (float_of_int l.v_queue_wait_us /. 1_000_000.);
          fmt_s (float_of_int l.v_snapshot_us /. 1_000_000.);
          fmt_s (float_of_int l.v_merge_us /. 1_000_000.);
          fmt_words l.v_gc_minor_words;
          (if l.v_jobs = a.a_reference_jobs then "-" else fmt_s d.d_lost_s);
        ])
      a.a_levels
  in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      rows
  in
  let render row =
    String.concat "  " (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths row)
  in
  Format.fprintf ppf "@,  %s" (render header);
  List.iter (fun row -> Format.fprintf ppf "@,  %s" (render row)) rows;
  (match a.a_serial_fraction with
  | Some s -> Format.fprintf ppf "@,  serial fraction (Amdahl fit): %.2f" s
  | None -> Format.fprintf ppf "@,  serial fraction: n/a (single jobs level)");
  (match a.a_loss_centers with
  | [] -> ()
  | centers ->
      Format.fprintf ppf "@,  loss centers at jobs=%d: %s"
        (match List.rev a.a_levels with (l, _) :: _ -> l.v_jobs | [] -> 0)
        (String.concat ", "
           (List.map (fun (n, v) -> Printf.sprintf "%s %s" n (fmt_s v)) centers)));
  Format.fprintf ppf "@]"

let to_string a = Format.asprintf "%a" pp a
