(** Span timers over the {!Trace} sink. *)

(** [with_ ~cat ~args name f] runs [f] and records a {!Trace.Complete}
    event covering its duration (also when [f] raises).  When the sink
    is not recording this is [f ()] behind a single branch.  Spans on
    one (pid, tid) lane nest by interval containment in the Chrome
    viewer, so wrap coarse units of work (an execution, a scenario),
    not individual memory operations. *)
val with_ :
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
