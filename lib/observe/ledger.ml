(* The durable run ledger: one versioned manifest per detection run.

   A ledger file is JSONL — one flat object per run, encoded/decoded by
   the corpus codec (this module only builds and consumes the field
   lists; [Pm_corpus.Ledger_store] owns the file I/O, because lib/corpus
   depends on lib/observe and not the other way around).

   The schema is versioned ([v] = {!version}); a line written by a
   newer build is a positioned decode error, never a silent
   misinterpretation.  Fields split into three comparison classes:
   - identity fields ([run], [v]) that name a run and are never diffed,
   - timing fields ([ts], [elapsed_s], [cpu_s], every [cc:*:wall_us]
     and the [cc:gc/*] charges) — wall-clock/GC-word class, excluded
     from regression gating,
   - everything else, which is deterministic for a fixed configuration:
     two identical-config runs must show zero deltas there. *)

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

let version = 1

type cost = { c_center : string; c_count : int; c_units : int; c_wall_us : int }

type entry = {
  e_version : int;
  e_run : string; (* free-form label; identity, never compared *)
  e_ts : float; (* unix seconds at append time *)
  e_program : string;
  e_variant : string;
  e_mode : string; (* mc | mc-recovery | random | bench *)
  e_jobs : int;
  e_seed : int;
  e_scenarios : int;
  e_completed : int;
  e_faulted : int;
  e_diverged : int;
  e_executions : int;
  e_ops : int;
  e_races : int;
  e_benign : int;
  e_raw_races : int;
  e_recovery_failures : int;
  e_witnesses : int;
  e_elapsed_s : float;
  e_cpu_s : float;
  e_metrics_digest : string;
  e_coverage_digest : string;
  e_cost : cost list; (* sorted by center name *)
}

(* ------------------------------------------------------------------ *)
(* Digests: FNV-1a 64-bit over a canonical rendering.  [Hashtbl.hash]
   only samples a bounded prefix of its input, which would let distinct
   metric snapshots collide silently — a real hash of every byte is the
   point of a digest. *)

let digest_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let digest_counters counters =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) counters in
  digest_string
    (String.concat ";"
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) sorted))

let render_field = function
  | `S s -> s
  | `I i -> string_of_int i
  | `B b -> string_of_bool b
  | `F f -> Printf.sprintf "%.17g" f
  | `Null -> "null"

let digest_fields (fields : (string * field) list) =
  digest_string
    (String.concat ";"
       (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (render_field v)) fields))

(* ------------------------------------------------------------------ *)
(* Field classification                                                 *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let timing_field name =
  name = "ts" || name = "elapsed_s" || name = "cpu_s"
  || ends_with ~suffix:":wall_us" name
  || starts_with ~prefix:"cc:gc/" name

let identity_field name = name = "run" || name = "v"

(* Regression direction of a numeric field: losing races/witnesses is
   the regression the gate exists to catch; timing only informs. *)
let direction name : [ `Higher | `Lower | `Neutral ] =
  if timing_field name then `Lower
  else
    match name with
    | "races" | "raw_races" | "benign" | "recovery_failures" | "witnesses" ->
        `Higher
    | _ -> `Neutral

(* ------------------------------------------------------------------ *)
(* Encoding to / from flat field lists                                  *)

let cost_field_names center =
  ( Printf.sprintf "cc:%s:count" center,
    Printf.sprintf "cc:%s:units" center,
    Printf.sprintf "cc:%s:wall_us" center )

let fields e : (string * field) list =
  [
    ("v", `I e.e_version);
    ("run", `S e.e_run);
    ("ts", `F e.e_ts);
    ("program", `S e.e_program);
    ("variant", `S e.e_variant);
    ("mode", `S e.e_mode);
    ("jobs", `I e.e_jobs);
    ("seed", `I e.e_seed);
    ("scenarios", `I e.e_scenarios);
    ("completed", `I e.e_completed);
    ("faulted", `I e.e_faulted);
    ("diverged", `I e.e_diverged);
    ("executions", `I e.e_executions);
    ("ops", `I e.e_ops);
    ("races", `I e.e_races);
    ("benign", `I e.e_benign);
    ("raw_races", `I e.e_raw_races);
    ("recovery_failures", `I e.e_recovery_failures);
    ("witnesses", `I e.e_witnesses);
    ("elapsed_s", `F e.e_elapsed_s);
    ("cpu_s", `F e.e_cpu_s);
    ("metrics_digest", `S e.e_metrics_digest);
    ("coverage_digest", `S e.e_coverage_digest);
  ]
  @ List.concat_map
      (fun c ->
        let kc, ku, kw = cost_field_names c.c_center in
        [ (kc, `I c.c_count); (ku, `I c.c_units); (kw, `I c.c_wall_us) ])
      (List.sort (fun a b -> compare a.c_center b.c_center) e.e_cost)

(* Parse "cc:<center>:count|units|wall_us"; everything between the
   first "cc:" and the last ':' is the center name (centers themselves
   contain '/' but never ':'). *)
let cost_key name =
  if not (starts_with ~prefix:"cc:" name) then None
  else
    match String.rindex_opt name ':' with
    | None | Some 2 -> None
    | Some i ->
        let center = String.sub name 3 (i - 3) in
        let kind = String.sub name (i + 1) (String.length name - i - 1) in
        if center = "" then None
        else (
          match kind with
          | "count" | "units" | "wall_us" -> Some (center, kind)
          | _ -> None)

let of_fields fields =
  let str name =
    match List.assoc_opt name fields with
    | Some (`S s) -> Ok s
    | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let int name =
    match List.assoc_opt name fields with
    | Some (`I i) -> Ok i
    | Some _ -> Error (Printf.sprintf "field %S is not an integer" name)
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let flt name =
    match List.assoc_opt name fields with
    | Some (`F f) -> Ok f
    | Some (`I i) -> Ok (float_of_int i)
    | Some _ -> Error (Printf.sprintf "field %S is not a number" name)
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let* v = int "v" in
  if v > version then
    Error
      (Printf.sprintf
         "ledger version %d is newer than this build supports (max %d)" v
         version)
  else if v < 1 then Error (Printf.sprintf "bad ledger version %d" v)
  else
    let* run = str "run" in
    let* ts = flt "ts" in
    let* program = str "program" in
    let* variant = str "variant" in
    let* mode = str "mode" in
    let* jobs = int "jobs" in
    let* seed = int "seed" in
    let* scenarios = int "scenarios" in
    let* completed = int "completed" in
    let* faulted = int "faulted" in
    let* diverged = int "diverged" in
    let* executions = int "executions" in
    let* ops = int "ops" in
    let* races = int "races" in
    let* benign = int "benign" in
    let* raw_races = int "raw_races" in
    let* recovery_failures = int "recovery_failures" in
    let* witnesses = int "witnesses" in
    let* elapsed_s = flt "elapsed_s" in
    let* cpu_s = flt "cpu_s" in
    let* metrics_digest = str "metrics_digest" in
    let* coverage_digest = str "coverage_digest" in
    let costs : (string, cost) Hashtbl.t = Hashtbl.create 16 in
    let* () =
      List.fold_left
        (fun acc (name, v) ->
          let* () = acc in
          match cost_key name with
          | None -> Ok ()
          | Some (center, kind) -> (
              match v with
              | `I n ->
                  let c =
                    match Hashtbl.find_opt costs center with
                    | Some c -> c
                    | None ->
                        {
                          c_center = center;
                          c_count = 0;
                          c_units = 0;
                          c_wall_us = 0;
                        }
                  in
                  let c =
                    match kind with
                    | "count" -> { c with c_count = n }
                    | "units" -> { c with c_units = n }
                    | _ -> { c with c_wall_us = n }
                  in
                  Hashtbl.replace costs center c;
                  Ok ()
              | _ -> Error (Printf.sprintf "field %S is not an integer" name)))
        (Ok ()) fields
    in
    let cost =
      Hashtbl.fold (fun _ c acc -> c :: acc) costs []
      |> List.sort (fun a b -> compare a.c_center b.c_center)
    in
    Ok
      {
        e_version = v;
        e_run = run;
        e_ts = ts;
        e_program = program;
        e_variant = variant;
        e_mode = mode;
        e_jobs = jobs;
        e_seed = seed;
        e_scenarios = scenarios;
        e_completed = completed;
        e_faulted = faulted;
        e_diverged = diverged;
        e_executions = executions;
        e_ops = ops;
        e_races = races;
        e_benign = benign;
        e_raw_races = raw_races;
        e_recovery_failures = recovery_failures;
        e_witnesses = witnesses;
        e_elapsed_s = elapsed_s;
        e_cpu_s = cpu_s;
        e_metrics_digest = metrics_digest;
        e_coverage_digest = coverage_digest;
        e_cost = cost;
      }

(* ------------------------------------------------------------------ *)
(* Comparison projections                                               *)

(* Every numeric field of the manifest (timing included — the caller
   classifies with {!timing_field}), in {!fields} order. *)
let numeric_fields e =
  List.filter_map
    (fun (name, v) ->
      if identity_field name then None
      else
        match v with
        | `I i -> Some (name, float_of_int i)
        | `F f -> Some (name, f)
        | `S _ | `B _ | `Null -> None)
    (fields e)

(* Configuration/digest strings; two comparable runs must agree on all
   of them ([run] is identity and excluded). *)
let string_fields e =
  [
    ("program", e.e_program);
    ("variant", e.e_variant);
    ("mode", e.e_mode);
    ("metrics_digest", e.e_metrics_digest);
    ("coverage_digest", e.e_coverage_digest);
  ]

(* Attribution rows fold into cost records verbatim; the volatile-unit
   distinction is recovered at comparison time by {!timing_field}
   ([cc:gc/*] charges are GC words, wall-clock class). *)
let costs_of_rows rows =
  List.map
    (fun (r : Attribution.row) ->
      {
        c_center = r.Attribution.r_center;
        c_count = r.Attribution.r_count;
        c_units = r.Attribution.r_units;
        c_wall_us = r.Attribution.r_wall_us;
      })
    rows
