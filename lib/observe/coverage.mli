(** Crash-space coverage accounting.

    Answers, per program, how much of the crash space a run actually
    explored: crash-plan indices exercised, crash points that actually
    fired, detector prefix expansions vs pruned checks (coherence /
    persisted), and distinct cache lines materialized by crashes.

    Hooks attribute to the {e ambient program} of the calling domain —
    set by the engine around each scenario with {!with_program} — and
    accumulate into per-domain shards merged on read.  Every quantity
    is a set union or a counter sum and each scenario executes exactly
    once regardless of the pool size, so {!snapshot} (and everything
    rendered from it) is byte-identical for every [--jobs] count.
    Hooks fired with no ambient program (setup memoization, flush-point
    probes) are dropped, keeping the totals scenario-attributed.

    Disabled by default: each hook is a no-op behind a single
    [Atomic.get] branch, and nothing here influences the exploration
    being measured. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

(** Drop all recorded coverage (the shards are kept). *)
val reset : unit -> unit

(** The variant label assumed when none is supplied; matches
    [Px86.Variant.default_label] by convention (this module stays free
    of px86 types). *)
val default_variant : string

(** [with_program p f] runs [f] with [p] as the calling domain's
    ambient program, restoring the previous ambient on exit (also on
    exceptions).  [variant] attributes the work to a persistency-model
    variant (default {!default_variant}); coverage accumulates per
    (program, variant) pair. *)
val with_program : ?variant:string -> string -> (unit -> 'a) -> 'a

(** {2 Accounting hooks} — no-ops when disabled or outside
    {!with_program}. *)

(** One scenario began executing. *)
val scenario_started : unit -> unit

(** A crash-plan index was scheduled ([-1] is crash-at-end). *)
val plan_exercised : int -> unit

(** The crash of plan index [i] actually fired. *)
val crash_point : int -> unit

(** The detector expanded a consistent prefix (cvpre join). *)
val prefix_expanded : unit -> unit

(** The detector pruned a candidate check. *)
val pruned : [ `Coherence | `Persisted ] -> unit

(** A crash materialization persisted cache line [line]. *)
val line_materialized : int -> unit

(** The invariant oracle checked one post-crash-recovery observation. *)
val oracle_checked : unit -> unit

(** The oracle reported one consistency violation. *)
val oracle_violation : unit -> unit

(** {2 Merge-on-read snapshots} *)

type stats = {
  program : string;
  variant : string;  (** persistency-model variant label *)
  scenarios : int;
  plan_indices : int list;  (** sorted; [-1] = crash-at-end *)
  crash_points : int list;  (** sorted; indices whose crash fired *)
  prefix_expansions : int;
  pruned_coherence : int;
  pruned_persisted : int;
  lines_materialized : int;  (** distinct cache lines *)
  oracle_checks : int;  (** oracle observe phases run *)
  oracle_violations : int;
}

(** Merged per-(program, variant) coverage, sorted by program then
    variant label. *)
val snapshot : unit -> stats list

val find : ?variant:string -> string -> stats option

(** Compact range rendering of a sorted index set (e.g. ["0-9,12,end"];
    [-1] renders as ["end"], the empty set as ["-"]). *)
val indices_label : int list -> string

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

(** Flat, order-stable field list — the shape [Pm_corpus.Json]
    encodes verbatim as one JSON object per program. *)
val fields : stats -> (string * field) list

(** The [\[coverage\]] block rendered under a report. *)
val pp : Format.formatter -> stats -> unit

val to_string : stats -> string
