(** Jobs-sweep analysis: speedup, parallel efficiency, Amdahl serial
    fraction, and a named decomposition of lost parallel wall-clock.

    The driver runs the same program at several [--jobs] levels and
    feeds one {!level} per count; {!analyze} derives everything else.
    Columns follow {!Attribution}'s two classes: counts and charged
    units are jobs-invariant and form the byte-stable
    [fields ~timing:false] projection ({!check} enforces it across a
    sweep), while wall clocks, speedup/efficiency and GC word deltas
    are scheduling-dependent and appear only in full rows. *)

(** One observed jobs level: engine stats plus the cost-center window
    ({!Attribution.diff}) around the run. *)
type level = {
  v_jobs : int;
  v_elapsed_s : float;
  v_cpu_s : float;
  v_scenarios : int;
  v_completed : int;
  v_faulted : int;
  v_executions : int;
  v_ops : int;
  v_races : int;
  v_witnesses : int;
  v_snapshot_bytes : int;  (** px86/snapshot_copy charged units *)
  v_queue_wait_us : int;  (** engine/queue_wait wall *)
  v_snapshot_us : int;  (** px86/snapshot_copy wall *)
  v_merge_us : int;  (** engine/merge wall *)
  v_gc_minor_words : int;  (** volatile GC word delta over the run *)
  v_gc_major_words : int;
}

(** Extract [(snapshot_bytes, queue_wait_us, snapshot_us, merge_us,
    gc_minor_words, gc_major_words)] from an {!Attribution.diff}
    window; absent centers read as zero. *)
val of_attribution : Attribution.row list -> int * int * int * int * int * int

type derived = {
  d_speedup : float;  (** T_ref / T_n *)
  d_efficiency : float;  (** speedup / (jobs / reference jobs) *)
  d_serial_fraction : float option;
      (** per-level Amdahl estimate; [None] at the reference level *)
  d_lost_s : float;
      (** jobs * elapsed - reference elapsed: extra domain-seconds
          spent versus a perfect split of the reference run *)
}

type analysis = {
  a_program : string;
  a_reference_jobs : int;  (** lowest jobs level: the speedup baseline *)
  a_levels : (level * derived) list;  (** ascending jobs *)
  a_serial_fraction : float option;
      (** mean per-level Amdahl estimate over levels above the
          reference; [None] for a single-level sweep *)
  a_loss_centers : (string * float) list;
      (** lost seconds by named center at the highest jobs level,
          descending; the residual is labelled ["other"] *)
}

(** Errors on an empty sweep or duplicate jobs levels; otherwise sorts
    ascending and derives per-level and fitted quantities. *)
val analyze : program:string -> level list -> (analysis, string) result

(** The engine-determinism check a sweep carries its own evidence for:
    every level's non-timing projection (minus the [jobs] identity)
    must match the reference level's.  Names the first diverging
    field. *)
val check : program:string -> level list -> (unit, string) result

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

(** Flat JSONL row for one level (corpus-codec shape).
    [timing:false] keeps only the jobs-invariant class; the full row
    appends the wall-clock class after it so the projection is a
    stable field prefix. *)
val fields :
  ?timing:bool -> program:string -> level * derived -> (string * field) list

(** Aligned per-level table plus the serial-fraction fit and the
    loss-center decomposition. *)
val pp : Format.formatter -> analysis -> unit

val to_string : analysis -> string
