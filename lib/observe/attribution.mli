(** Per-scenario cost attribution: named cost centers with
    domain-sharded count / charged-unit / wall-clock accumulators,
    merged on read.

    Counts and charged units of deterministic work are jobs-invariant
    (addition commutes across shards); wall clocks are not, and neither
    are GC word deltas ([Gc.quick_stat] counters are flushed globally
    at minor collections, so per-domain deltas absorb other domains'
    allocation).  Centers carrying such quantities are registered with
    [volatile_units]; the invariant projection ([to_string
    ~timing:false], {!fields}) excludes wall clocks and volatile units,
    and is what determinism tests and the run-ledger comparison gate
    on.

    Disabled by default: every charge is a no-op behind a single
    [Atomic.get] branch, and nothing here influences the exploration
    being measured (attribution on vs off never changes a race
    report). *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

type center

(** Find-or-create the cost center registered under [name].  [units]
    labels the charged-unit column (e.g. ["bytes"], ["ops"]; default
    none); [volatile_units] marks the units as wall-clock class (GC
    words), excluded from the invariant projection.  The first
    registration of a name fixes its labels. *)
val center : ?units:string -> ?volatile_units:bool -> string -> center

val center_name : center -> string

(** Charge the calling domain's shard: [count] occurrences (default 1),
    [units] charged units and [wall_us] microseconds of wall clock.
    No-op when disabled. *)
val charge : center -> ?count:int -> ?units:int -> ?wall_us:int -> unit -> unit

(** [charge c ()] minus the optional-argument plumbing: the cheapest
    possible hot-path hook (one branch, one fetch-and-add). *)
val tick : center -> unit

type row = {
  r_center : string;
  r_units_label : string;
  r_volatile_units : bool;
  r_count : int;
  r_units : int;
  r_wall_us : int;
}

(** Merged rows of every center charged since the last {!reset},
    sorted by center name; uncharged centers are dropped. *)
val snapshot : unit -> row list

(** [diff before after] is the per-center delta, dropping all-zero
    rows; centers absent from [before] count as zero there. *)
val diff : row list -> row list -> row list

(** Zero every registered accumulator (the registry itself is kept). *)
val reset : unit -> unit

(** The [\[attribution\]] cost-center table.  [timing] (default true)
    includes the wall column and volatile charged units; [~timing:false]
    is the jobs-invariant projection — byte-identical for every
    [--jobs] count over the same work. *)
val pp : ?timing:bool -> Format.formatter -> row list -> unit

val to_string : ?timing:bool -> row list -> string

type field = [ `S of string | `I of int | `B of bool | `F of float | `Null ]

(** One flat, order-stable field list per row — the invariant
    projection only (volatile units encode as [`Null]), in the shape
    [Pm_corpus.Json] encodes verbatim. *)
val fields : row -> (string * field) list

(** Inverse of {!fields} (wall clocks are not serialized and read back
    as 0).  Errors on a field list that is not an attribution row. *)
val of_fields : (string * field) list -> (row, string) result
