(* Live exploration progress.

   The engine announces each batch ([batch n]) and ticks once per
   finished scenario; this module turns the ticks into a throttled
   heartbeat on stderr and, optionally, a machine-readable JSONL
   stream (one flat object per emission, accepted by
   [Trace.check_jsonl]).

   Progress is wall-clock by nature (rate, ETA), so it is kept
   strictly out of the deterministic report path: nothing here is read
   back by the harness, and when inactive a tick costs one [Atomic.get]
   branch. *)

let active = Atomic.make false
let is_active () = Atomic.get active

type state = {
  mutable total : int;
  mutable finished : int;
  mutable races : int;
  mutable faults : int;
  mutable jobs : int;
  lanes : (int, int) Hashtbl.t;  (* worker slot -> scenarios finished *)
  mutable t0 : float;
  mutable last_emit : float;
  mutable interval_s : float;
  mutable heartbeat : bool;
  mutable jsonl : Yashme_util.Atomic_file.stream option;
  mutable emitted : int;
}

let lock = Mutex.create ()

let st =
  {
    total = 0;
    finished = 0;
    races = 0;
    faults = 0;
    jobs = 0;
    lanes = Hashtbl.create 8;
    t0 = 0.;
    last_emit = 0.;
    interval_s = 0.5;
    heartbeat = true;
    jsonl = None;
    emitted = 0;
  }

(* Rate and ETA are clamped to finite non-negative values: a tick
   arriving before any work (or before the clock advances), a zero op
   rate, or a clock step backwards must never leak inf/nan into the
   stderr heartbeat or the JSONL stream. *)
let finite f =
  match Float.classify_float f with FP_nan | FP_infinite -> 0. | _ -> f

let rate_of ~elapsed_s ~finished =
  if elapsed_s > 0. && finished > 0 then
    finite (float_of_int finished /. elapsed_s)
  else 0.

let eta_of ~rate ~remaining =
  if rate > 0. && remaining > 0 then finite (float_of_int remaining /. rate)
  else 0.

(* "slot:count" per worker lane, ascending slot — the final summary's
   after-the-fact attribution of scenarios to domains. *)
let lanes_label () =
  Hashtbl.fold (fun lane n acc -> (lane, n) :: acc) st.lanes []
  |> List.sort compare
  |> List.map (fun (lane, n) -> Printf.sprintf "%d:%d" lane n)
  |> String.concat ","

(* One emission; call with the lock held.  [final] appends the run
   identity (jobs, per-domain scenario counts) to the JSONL line;
   throttled mid-run lines keep the historical shape. *)
let emit ?(final = false) ~now () =
  st.last_emit <- now;
  st.emitted <- st.emitted + 1;
  let elapsed_s = Float.max 0. (now -. st.t0) in
  let remaining = max 0 (st.total - st.finished) in
  let rate = rate_of ~elapsed_s ~finished:st.finished in
  let eta_s = eta_of ~rate ~remaining in
  (* The heartbeat is stderr chatter like any log line: level [off]
     (--quiet) silences it.  The JSONL stream is machine-facing and
     unaffected. *)
  if st.heartbeat && not (Log.quiet ()) then begin
    let pct =
      if st.total > 0 then 100. *. float_of_int st.finished /. float_of_int st.total
      else 0.
    in
    (* With work remaining but no observed rate yet, there is no ETA to
       claim — print "--" rather than a misleading 0.0s. *)
    let eta =
      if remaining > 0 && rate <= 0. then "--"
      else Printf.sprintf "%.1fs" eta_s
    in
    Printf.eprintf
      "yashme: progress %d/%d scenario(s) (%.0f%%), %.1f/s, %d race(s), %d \
       fault(s), eta %s\n\
       %!"
      st.finished st.total pct rate st.races st.faults eta
  end;
  match st.jsonl with
  | None -> ()
  | Some s ->
      let summary =
        if final && st.jobs > 0 then
          Printf.sprintf ",\"jobs\":%d,\"per_domain\":\"%s\"" st.jobs
            (lanes_label ())
        else ""
      in
      Yashme_util.Atomic_file.output_string s
        (Printf.sprintf
           "{\"done\":%d,\"total\":%d,\"races\":%d,\"faults\":%d,\
            \"rate_per_s\":%.6f,\"eta_s\":%.6f,\"elapsed_s\":%.6f%s}\n"
           st.finished st.total st.races st.faults rate eta_s elapsed_s summary)

let start ?(interval_s = 0.5) ?(heartbeat = true) ?jsonl () =
  Mutex.protect lock (fun () ->
      (match st.jsonl with
      | Some s -> Yashme_util.Atomic_file.abort s
      | None -> ());
      st.total <- 0;
      st.finished <- 0;
      st.races <- 0;
      st.faults <- 0;
      st.jobs <- 0;
      Hashtbl.reset st.lanes;
      st.t0 <- Unix.gettimeofday ();
      st.last_emit <- 0.;
      st.interval_s <- interval_s;
      st.heartbeat <- heartbeat;
      st.jsonl <- Option.map Yashme_util.Atomic_file.stream jsonl;
      st.emitted <- 0);
  Atomic.set active true

let batch n =
  if Atomic.get active then
    Mutex.protect lock (fun () -> st.total <- st.total + n)

let set_jobs jobs =
  if Atomic.get active then
    Mutex.protect lock (fun () -> st.jobs <- jobs)

let tick ?lane ~races ~faulted () =
  if Atomic.get active then
    Mutex.protect lock (fun () ->
        st.finished <- st.finished + 1;
        st.races <- st.races + races;
        if faulted then st.faults <- st.faults + 1;
        (match lane with
        | Some l ->
            Hashtbl.replace st.lanes l
              (1 + Option.value ~default:0 (Hashtbl.find_opt st.lanes l))
        | None -> ());
        let now = Unix.gettimeofday () in
        if now -. st.last_emit >= st.interval_s then emit ~now ())

(* Final emission happens unconditionally, so a [--progress-out] file
   always carries at least one (summary) line even for runs faster
   than the throttle interval.  The JSONL stream only appears under its
   destination name here — the commit's atomic rename means a killed
   run leaves no truncated artifact behind. *)
let stop () =
  if not (Atomic.get active) then 0
  else begin
    Atomic.set active false;
    Mutex.protect lock (fun () ->
        emit ~final:true ~now:(Unix.gettimeofday ()) ();
        (match st.jsonl with
        | Some s -> Yashme_util.Atomic_file.commit s
        | None -> ());
        st.jsonl <- None;
        st.emitted)
  end
