type t = {
  store : Px86.Event.store;
  store_exec : int;
  load_addr : Px86.Addr.t;
  load_size : int;
  load_tid : int;
  load_exec : int;
  committed : bool;
  benign : bool;
}

let label t =
  match t.store.Px86.Event.label with Some l -> l | None -> "<unlabelled>"

let dedup_key t = label t

(* Races from independently explored failure scenarios carry no global
   order of their own; downstream deduplication picks the first
   observation of each key as the exemplar and folds benignity in
   encounter order.  Merging in scenario order therefore makes a
   parallel exploration byte-identical to the sequential one. *)
let merge_ordered groups = List.concat groups

let pp ppf t =
  Format.fprintf ppf
    "persistency race on %s: non-atomic %a races with crash (exec %d); observed by \
     load of %a..+%d in exec %d%s%s"
    (label t) Px86.Event.pp_store t.store t.store_exec Px86.Addr.pp t.load_addr
    t.load_size t.load_exec
    (if t.committed then "" else " [candidate]")
    (if t.benign then " [benign: checksum-validated]" else "")

let to_string t = Format.asprintf "%a" pp t
