(** Persistency race reports. *)

type t = {
  store : Px86.Event.store;  (** the racing pre-crash store *)
  store_exec : int;  (** execution in which the store committed *)
  load_addr : Px86.Addr.t;
  load_size : int;
  load_tid : int;
  load_exec : int;  (** post-crash execution performing the load *)
  committed : bool;
      (** true when the post-crash execution actually read this store;
          false when it is another candidate the load could have read
          (still a race in a consistent execution, paper section 6) *)
  benign : bool;
      (** the observing load belongs to a checksum-validation region
          (paper, section 7.5 "Benign Issues") *)
}

(** Field label of the racing store; ["<unlabelled>"] if none. *)
val label : t -> string

(** Deduplication key: races on the same source-level field are one bug
    (the paper deduplicates manually at this granularity). *)
val dedup_key : t -> string

(** Merge per-scenario race lists into one list, preserving scenario
    order and, within a scenario, report order.  This is the merge the
    exploration engine uses: because deduplication keeps the first
    observation of each key as its exemplar, an engine that merges in
    scenario order produces output byte-identical to a sequential run,
    regardless of the order scenarios actually finished in. *)
val merge_ordered : t list list -> t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
