module Clockvec = Yashme_util.Clockvec
module Metrics = Observe.Metrics
module Coverage = Observe.Coverage

(* Exploration-effort counters (paper Tables 4-5: counts and costs).
   All of them accumulate per-scenario detector work, so their merged
   totals are identical for every engine job count. *)
let m_candidate_checks = Metrics.counter "detector/candidate_checks"
let m_committed_checks = Metrics.counter "detector/committed_checks"
let m_atomic_loads = Metrics.counter "detector/atomic_loads"
let m_cv_comparisons = Metrics.counter "detector/cv_comparisons"
let m_prefix_expansions = Metrics.counter "detector/prefix_expansions"
let m_flush_records = Metrics.counter "detector/flush_records"
let m_races_raised = Metrics.counter "detector/races_raised"
let m_races_benign = Metrics.counter "detector/races_benign"
let m_pruned_coherence = Metrics.counter "detector/pruned_coherence"
let m_pruned_persisted = Metrics.counter "detector/pruned_persisted"

(* Attribution cost centers for the two detector hot paths ROADMAP
   names as scaling suspects: clock-vector comparisons and prefix
   expansions.  Tick-only — the charge is the occurrence count; wall
   time is attributed at phase granularity by the executor. *)
let ct_cv_compare = Observe.Attribution.center "detector/cv_compare"
let ct_prefix_expansion = Observe.Attribution.center "detector/prefix_expansion"

let count_cv_comparison () =
  Metrics.incr m_cv_comparisons;
  Observe.Attribution.tick ct_cv_compare

let count_prefix_expansion () =
  Metrics.incr m_prefix_expansions;
  Observe.Attribution.tick ct_prefix_expansion

type mode = Prefix | Baseline

type t = {
  dmode : mode;
  deadr : bool;
  dcoherence : bool;
  records : (int, Exec_record.t) Hashtbl.t;
  mutable current : Exec_record.t option;
  mutable reported : Race.t list;  (* newest first *)
}

let create ?(mode = Prefix) ?(eadr = false) ?(coherence = true) () =
  { dmode = mode; deadr = eadr; dcoherence = coherence;
    records = Hashtbl.create 4; current = None; reported = [] }

let mode t = t.dmode
let eadr t = t.deadr
let races t = List.rev t.reported

let begin_exec t ~id =
  let r = Exec_record.create ~id in
  Hashtbl.replace t.records id r;
  t.current <- Some r;
  r

let record t ~id = Hashtbl.find_opt t.records id

(* Figure 8, Evict_SB(clflush) / Evict_FB: record a flush for the latest
   store to every address on the flushed cache line, provided the store
   happens-before the flush and no happens-before-earlier flush is
   already recorded. *)
let note_flush r ~line ~flush_cv ~entry =
  List.iter
    (fun addr ->
      match Exec_record.store_at r addr with
      | None -> ()
      | Some s ->
          let store_hb_flush =
            s.Px86.Event.lclk <= Clockvec.get flush_cv s.Px86.Event.tid
          in
          let already =
            List.exists
              (fun (e : Exec_record.flush_entry) ->
                e.Exec_record.fe_lclk <= Clockvec.get flush_cv e.Exec_record.fe_tid)
              (Exec_record.flushes_of r s.Px86.Event.seq)
          in
          if store_hb_flush && not already then begin
            Metrics.incr m_flush_records;
            Exec_record.add_flush r ~seq:s.Px86.Event.seq entry
          end)
    (Exec_record.line_addrs r line)

let observer t =
  let with_current f = match t.current with Some r -> f r | None -> () in
  {
    Px86.Observer.on_store_commit =
      (fun s -> with_current (fun r -> Exec_record.set_store r s));
    on_clflush_commit =
      (fun f ->
        with_current (fun r ->
            note_flush r
              ~line:(Px86.Addr.line f.Px86.Event.faddr)
              ~flush_cv:f.Px86.Event.fcv
              ~entry:
                {
                  Exec_record.fe_tid = f.Px86.Event.ftid;
                  fe_lclk = f.Px86.Event.flclk;
                }));
    on_clwb_commit = (fun _ -> ());
    on_flush_applied =
      (fun f ~fence ->
        with_current (fun r ->
            note_flush r
              ~line:(Px86.Addr.line f.Px86.Event.faddr)
              ~flush_cv:f.Px86.Event.fcv
              ~entry:
                {
                  Exec_record.fe_tid = fence.Px86.Event.ktid;
                  fe_lclk = fence.Px86.Event.klclk;
                }));
    on_nt_persisted =
      (fun st ~fence ->
        with_current (fun r ->
            (* A fenced movnt store is durable on its own: record the
               fence as its flush (no other store on the line is
               affected). *)
            Exec_record.add_flush r ~seq:st.Px86.Event.seq
              {
                Exec_record.fe_tid = fence.Px86.Event.ktid;
                fe_lclk = fence.Px86.Event.klclk;
              }));
    on_fence = (fun _ -> ());
  }

(* Executions never registered with the detector (e.g. a clean setup
   phase that shut down with everything persisted) are trusted: loads
   reading their stores are not race-checked. *)
let record_of t exec = Hashtbl.find_opt t.records exec

let load_atomic t ~exec ~store =
  match record_of t exec with
  | None -> ()
  | Some r ->
      Metrics.incr m_atomic_loads;
      count_prefix_expansion ();
      Coverage.prefix_expanded ();
      let line = Px86.Addr.line store.Px86.Event.addr in
      Exec_record.join_lastflush r ~line store.Px86.Event.cv;
      Exec_record.join_cvpre r store.Px86.Event.cv

let load_non_atomic t ~exec ~store ~load_addr ~load_size ~load_tid ~load_exec ~commit
    ~benign =
  match record_of t exec with
  | None -> None
  | Some r ->
  Metrics.incr (if commit then m_committed_checks else m_candidate_checks);
  let result =
    if Px86.Access.is_atomic store.Px86.Event.access then None
    else begin
      let line = Px86.Addr.line store.Px86.Event.addr in
      let lastflush = Exec_record.lastflush r ~line in
      let covered_by_coherence =
        t.dcoherence
        && begin
             count_cv_comparison ();
             Clockvec.get store.Px86.Event.cv store.Px86.Event.tid
             <= Clockvec.get lastflush store.Px86.Event.tid
           end
      in
      let flush_counts (e : Exec_record.flush_entry) =
        match t.dmode with
        | Baseline -> true
        | Prefix ->
            (* Only flushes inside the smallest consistent prefix are
               mandatory; any shorter prefix omits the others (5.1). *)
            count_cv_comparison ();
            e.Exec_record.fe_lclk
            <= Clockvec.get (Exec_record.cvpre r) e.Exec_record.fe_tid
      in
      let persisted =
        if t.deadr then
          (* eADR (section 7.5): the cache is in the persistence domain,
             so the store is durable once its cache commit is forced
             into every consistent prefix.  In baseline mode a committed
             store is durable outright. *)
          (match t.dmode with
          | Baseline -> true
          | Prefix ->
              count_cv_comparison ();
              store.Px86.Event.lclk
              <= Clockvec.get (Exec_record.cvpre r) store.Px86.Event.tid)
        else
          List.exists flush_counts (Exec_record.flushes_of r store.Px86.Event.seq)
      in
      if covered_by_coherence || persisted then begin
        Metrics.incr
          (if covered_by_coherence then m_pruned_coherence else m_pruned_persisted);
        Coverage.pruned (if covered_by_coherence then `Coherence else `Persisted);
        None
      end
      else begin
        let race =
          {
            Race.store;
            store_exec = exec;
            load_addr;
            load_size;
            load_tid;
            load_exec;
            committed = commit;
            benign;
          }
        in
        Metrics.incr (if benign then m_races_benign else m_races_raised);
        t.reported <- race :: t.reported;
        Some race
      end
    end
  in
  if commit then begin
    count_prefix_expansion ();
    Coverage.prefix_expanded ();
    Exec_record.join_cvpre r store.Px86.Event.cv
  end;
  result
