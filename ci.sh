#!/bin/sh
# Minimal CI for the Yashme reproduction.
#
#   ./ci.sh          build, (optionally) check formatting, run the tests
#
# The formatting gate only runs when ocamlformat is installed: dune's
# @fmt alias shells out to it, so on images without ocamlformat the
# step is skipped rather than failing the whole pipeline.
set -eu

cd "$(dirname "$0")"

echo "== dune build"
dune build @all

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt (ocamlformat $(ocamlformat --version))"
  dune build @fmt
else
  echo "== skip formatting check (ocamlformat not installed)"
fi

echo "== dune runtest"
dune runtest

echo "== observability smoke (check --metrics --trace-out + trace-lint)"
trace=$(mktemp /tmp/yashme-ci-trace.XXXXXX.json)
trap 'rm -f "$trace"' EXIT
dune exec bin/yashme_cli.exe -- check CCEH --jobs 2 --metrics \
  --trace-out "$trace" --quiet >/dev/null
dune exec bin/yashme_cli.exe -- trace-lint "$trace"

echo "== fault-injection smoke (budgets + recovery-failure witnesses)"
# demo-diverge spins forever without a budget; under --max-ops the run
# must terminate cleanly (exit 0) and classify the spin as diverged.
out=$(dune exec bin/yashme_cli.exe -- check demo-diverge \
  --max-ops 400 --jobs 2 --quiet)
echo "$out" | grep -q "diverged" || {
  echo "ci: demo-diverge report lacks a diverged classification" >&2
  echo "$out" >&2
  exit 1
}
# demo-faulty-recovery's recovery raises on a real crash image; the
# batch must survive and report a recovery-failure finding.
out=$(dune exec bin/yashme_cli.exe -- check demo-faulty-recovery \
  --jobs 2 --quiet)
echo "$out" | grep -q "recovery-failure" || {
  echo "ci: demo-faulty-recovery report lacks a recovery-failure finding" >&2
  echo "$out" >&2
  exit 1
}

echo "== witness-corpus smoke (--corpus-out + replay + minimize + merge)"
corpus=$(mktemp /tmp/yashme-ci-corpus.XXXXXX.jsonl)
minimized=$(mktemp /tmp/yashme-ci-corpus-min.XXXXXX.jsonl)
merged=$(mktemp /tmp/yashme-ci-corpus-merged.XXXXXX.jsonl)
trap 'rm -f "$trace" "$corpus" "$minimized" "$merged"' EXIT
# A racy benchmark records witnesses; the corpus must replay clean
# (exit 0) in the very build that produced it.
dune exec bin/yashme_cli.exe -- check Btree --jobs 2 --quiet \
  --corpus-out "$corpus" >/dev/null
test -s "$corpus" || {
  echo "ci: check --corpus-out wrote no witnesses for Btree" >&2
  exit 1
}
dune exec bin/yashme_cli.exe -- replay "$corpus" --quiet
# Minimization must keep every witness reproducing and never grow a
# crash-plan index.
dune exec bin/yashme_cli.exe -- minimize "$corpus" -o "$minimized" --quiet \
  2>/dev/null >/dev/null
orig_max=$(grep -o '"plan":"crash_before_flush:[0-9]*"' "$corpus" \
  | grep -o '[0-9]*' | sort -n | tail -1)
min_max=$(grep -o '"plan":"crash_before_flush:[0-9]*"' "$minimized" \
  | grep -o '[0-9]*' | sort -n | tail -1)
[ "${min_max:-0}" -le "${orig_max:-0}" ] || {
  echo "ci: minimize grew a crash-plan index ($orig_max -> $min_max)" >&2
  exit 1
}
dune exec bin/yashme_cli.exe -- replay "$minimized" --quiet
# Merging a corpus with itself is the identity, byte for byte.
dune exec bin/yashme_cli.exe -- corpus merge "$corpus" "$corpus" \
  -o "$merged" >/dev/null
cmp "$corpus" "$merged" || {
  echo "ci: corpus merge of a file with itself is not byte-identical" >&2
  exit 1
}

echo "== telemetry smoke (--coverage --progress-out + coverage determinism)"
progress=$(mktemp /tmp/yashme-ci-progress.XXXXXX.jsonl)
cov1=$(mktemp /tmp/yashme-ci-cov1.XXXXXX.jsonl)
cov4=$(mktemp /tmp/yashme-ci-cov4.XXXXXX.jsonl)
bench_cur=$(mktemp /tmp/yashme-ci-bench-cur.XXXXXX.json)
bench_rerun=$(mktemp /tmp/yashme-ci-bench-rerun.XXXXXX.json)
trap 'rm -f "$trace" "$corpus" "$minimized" "$merged" "$progress" "$cov1" "$cov4" "$bench_cur" "$bench_rerun"' EXIT
dune exec bin/yashme_cli.exe -- check-all --jobs 1 --quiet \
  --coverage-out "$cov1" --progress-out "$progress" >/dev/null
# the progress stream is machine-readable JSONL and non-empty
test -s "$progress" || {
  echo "ci: --progress-out wrote nothing" >&2
  exit 1
}
dune exec bin/yashme_cli.exe -- trace-lint "$progress"
# coverage totals are byte-identical across --jobs counts
dune exec bin/yashme_cli.exe -- check-all --jobs 4 --quiet \
  --coverage-out "$cov4" >/dev/null
cmp "$cov1" "$cov4" || {
  echo "ci: coverage snapshot differs between --jobs 1 and --jobs 4" >&2
  exit 1
}
dune exec bin/yashme_cli.exe -- trace-lint "$cov1"

echo "== litmus-matrix smoke (variants x litmus vs committed golden)"
# The matrix pins every built-in persistency-model variant's divergence
# from strict-tso; any semantic drift fails against the committed table.
dune exec bin/yashme_cli.exe -- litmus --jobs 2 --quiet \
  --expect LITMUS_matrix.txt >/dev/null
# strict-tso is the default: an explicit --variant must not change a
# single report byte.
va=$(dune exec bin/yashme_cli.exe -- check CCEH --jobs 2 --quiet)
vb=$(dune exec bin/yashme_cli.exe -- check CCEH --jobs 2 --quiet \
  --variant strict-tso)
[ "$va" = "$vb" ] || {
  echo "ci: --variant strict-tso changed the CCEH report" >&2
  exit 1
}

echo "== profile smoke (trace -> hot-spot tables)"
dune exec bin/yashme_cli.exe -- profile "$trace" --top 5 >/dev/null

echo "== observatory smoke (--attribution invariance + ledger runs/compare)"
att1=$(mktemp /tmp/yashme-ci-att1.XXXXXX.jsonl)
att4=$(mktemp /tmp/yashme-ci-att4.XXXXXX.jsonl)
ledger=$(mktemp /tmp/yashme-ci-ledger.XXXXXX.jsonl)
trap 'rm -f "$trace" "$corpus" "$minimized" "$merged" "$progress" "$cov1" "$cov4" "$bench_cur" "$bench_rerun" "$att1" "$att4" "$ledger"' EXIT
rm -f "$ledger"
# the attribution invariant projection is byte-identical across --jobs
dune exec bin/yashme_cli.exe -- check CCEH --jobs 1 --quiet \
  --attribution-out "$att1" >/dev/null
dune exec bin/yashme_cli.exe -- check CCEH --jobs 4 --quiet \
  --attribution-out "$att4" >/dev/null
cmp "$att1" "$att4" || {
  echo "ci: attribution export differs between --jobs 1 and --jobs 4" >&2
  exit 1
}
# the [attribution] block names the distinct cost centers on CCEH
out=$(dune exec bin/yashme_cli.exe -- check CCEH --jobs 2 --quiet \
  --attribution --ledger "$ledger")
for center in px86/snapshot_copy engine/queue_wait gc/minor; do
  echo "$out" | grep -q "$center" || {
    echo "ci: [attribution] block lacks cost center $center" >&2
    echo "$out" >&2
    exit 1
  }
done
# a second identical-config run must compare with zero non-timing deltas
dune exec bin/yashme_cli.exe -- check CCEH --jobs 2 --quiet \
  --ledger "$ledger" >/dev/null
dune exec bin/yashme_cli.exe -- runs "$ledger" >/dev/null
dune exec bin/yashme_cli.exe -- trace-lint "$ledger"
dune exec bin/yashme_cli.exe -- compare "$ledger" 1 2
dune exec bin/yashme_cli.exe -- profile "$att1" --attribution >/dev/null

echo "== soak smoke (budgets + checkpoint/resume + quarantine)"
soak_m1=$(mktemp /tmp/yashme-ci-soak-m1.XXXXXX.jsonl)
soak_m2=$(mktemp /tmp/yashme-ci-soak-m2.XXXXXX.jsonl)
soak_c1=$(mktemp /tmp/yashme-ci-soak-c1.XXXXXX.jsonl)
soak_c2=$(mktemp /tmp/yashme-ci-soak-c2.XXXXXX.jsonl)
soak_mr=$(mktemp /tmp/yashme-ci-soak-mr.XXXXXX.jsonl)
soak_cr=$(mktemp /tmp/yashme-ci-soak-cr.XXXXXX.jsonl)
soak_prog=$(mktemp /tmp/yashme-ci-soak-prog.XXXXXX.jsonl)
oracle_c1=$(mktemp /tmp/yashme-ci-oracle-c1.XXXXXX.jsonl)
oracle_c4=$(mktemp /tmp/yashme-ci-oracle-c4.XXXXXX.jsonl)
oracle_min=$(mktemp /tmp/yashme-ci-oracle-min.XXXXXX.jsonl)
oracle_b0=$(mktemp /tmp/yashme-ci-oracle-b0.XXXXXX.jsonl)
oracle_b1=$(mktemp /tmp/yashme-ci-oracle-b1.XXXXXX.jsonl)
trap 'rm -f "$trace" "$corpus" "$minimized" "$merged" "$progress" "$cov1" "$cov4" "$bench_cur" "$bench_rerun" "$att1" "$att4" "$ledger" "$soak_m1" "$soak_m2" "$soak_c1" "$soak_c2" "$soak_mr" "$soak_cr" "$soak_prog" ${soak_m1}.s ${soak_m2}.s "$oracle_c1" "$oracle_c4" "$oracle_min" "$oracle_b0" "$oracle_b1"' EXIT
# A budgeted soak run must stop cleanly (soak_ok=true) with a
# manifest and progress stream the existing JSONL codec accepts.
dune exec bin/yashme_cli.exe -- soak cceh --seed 7 --max-ops 1200 --jobs 2 \
  --manifest "$soak_m1" --corpus-out "$soak_c1" --progress-out "$soak_prog" \
  --quiet >/dev/null
grep -q '"soak_ok":true' "$soak_m1" || {
  echo "ci: budgeted soak run did not end soak_ok=true" >&2
  exit 1
}
dune exec bin/yashme_cli.exe -- trace-lint "$soak_m1"
dune exec bin/yashme_cli.exe -- trace-lint "$soak_prog"
# Same seed, same budget: witnesses byte-identical, manifests
# identical modulo the timing stamps and the corpus path.
dune exec bin/yashme_cli.exe -- soak cceh --seed 7 --max-ops 1200 --jobs 2 \
  --manifest "$soak_m2" --corpus-out "$soak_c2" --quiet >/dev/null
cmp "$soak_c1" "$soak_c2" || {
  echo "ci: same-seed soak runs wrote different corpora" >&2
  exit 1
}
strip_soak_manifest() {
  sed -E 's/"ts":[0-9.eE+-]+//; s/"elapsed_s":[0-9.eE+-]+//; s/"corpus":"[^"]*"//' "$1"
}
strip_soak_manifest "$soak_m1" > "${soak_m1}.s"
strip_soak_manifest "$soak_m2" > "${soak_m2}.s"
cmp "${soak_m1}.s" "${soak_m2}.s" || {
  echo "ci: same-seed soak manifests differ beyond timing fields" >&2
  exit 1
}
# Soak witnesses replay through the ordinary corpus machinery.
dune exec bin/yashme_cli.exe -- replay "$soak_c1" --quiet
# Interrupt mid-soak (the SIGINT-equivalent cooperative stop), then
# resume from the checkpoint: the run must reach the exact witness
# bytes of the uninterrupted run.
dune exec bin/yashme_cli.exe -- soak cceh --seed 7 --max-ops 1200 --jobs 2 \
  --manifest "$soak_mr" --corpus-out "$soak_cr" --stop-after 3 --quiet \
  >/dev/null || true
grep -q '"soak_ok":false' "$soak_mr" || {
  echo "ci: interrupted soak run did not checkpoint soak_ok=false" >&2
  exit 1
}
dune exec bin/yashme_cli.exe -- soak --resume "$soak_mr" --quiet >/dev/null
grep -q '"soak_ok":true' "$soak_mr" || {
  echo "ci: resumed soak run did not end soak_ok=true" >&2
  exit 1
}
cmp "$soak_c1" "$soak_cr" || {
  echo "ci: resumed soak corpus differs from the uninterrupted run" >&2
  exit 1
}
# A fault storm (demo-storm's crashing delete handler) must be
# quarantined, not fatal: the run still reaches its budget.
out=$(dune exec bin/yashme_cli.exe -- soak demo-storm --seed 7 \
  --max-ops 800 --quiet)
echo "$out" | grep -q "soak_ok: true" || {
  echo "ci: fault-storm soak run did not survive to its budget" >&2
  echo "$out" >&2
  exit 1
}
echo "$out" | grep -q "quarantined" || {
  echo "ci: fault-storm soak run quarantined nothing" >&2
  echo "$out" >&2
  exit 1
}

echo "== invariant-oracle smoke (check --oracle + corpus + replay + minimize)"
# The fixture the race detector must NOT flag: fully fenced, but the
# flag publishes before the data it guards persists — an oracle-only
# consistency violation with a stable plan-free key.
out=$(dune exec bin/yashme_cli.exe -- check --oracle demo-inconsistency \
  --corpus-out "$oracle_c1")
echo "$out" | grep -q "0 distinct persistency race(s)" || {
  echo "ci: race detector flagged demo-inconsistency" >&2
  echo "$out" >&2
  exit 1
}
echo "$out" | grep -q "consistency-violation.*order:demo.data<demo.flag" || {
  echo "ci: oracle missed the demo-inconsistency ordering violation" >&2
  echo "$out" >&2
  exit 1
}
# Consistency witnesses replay (exit 0) and minimize in the build that
# recorded them.
dune exec bin/yashme_cli.exe -- replay "$oracle_c1" --quiet
dune exec bin/yashme_cli.exe -- minimize "$oracle_c1" -o "$oracle_min" --quiet
dune exec bin/yashme_cli.exe -- replay "$oracle_min" --quiet
# The oracle report (violations and the [oracle] block) is
# byte-identical across job counts, like every other report.
dune exec bin/yashme_cli.exe -- check --oracle demo-inconsistency --jobs 4 \
  --corpus-out "$oracle_c4" >/dev/null
cmp "$oracle_c1" "$oracle_c4" || {
  echo "ci: oracle corpus differs between --jobs 1 and --jobs 4" >&2
  exit 1
}
# The oracle subcommands: infer prints the invariant set, check exits 1
# on a violation (the CI-gate contract).
dune exec bin/yashme_cli.exe -- oracle infer demo-inconsistency \
  | grep -q "order demo.data < demo.flag" || {
  echo "ci: oracle infer did not print the ordering invariant" >&2
  exit 1
}
if dune exec bin/yashme_cli.exe -- oracle check demo-inconsistency \
  >/dev/null 2>&1; then
  echo "ci: oracle check exited 0 on a violating program" >&2
  exit 1
fi

echo "== bench gate (committed baseline + back-to-back run)"
# The committed baseline must gate cleanly against a fresh run of the
# same tree.  Throughput numbers are machine-dependent, so the
# tolerance here is deliberately loose: the gate's job in CI is to
# catch collapses (and exercise the exit paths), not 5% noise.
dune exec bench/main.exe -- --throughput-only --jobs 2 --repeats 1 \
  --out "$bench_cur" >/dev/null
dune exec bin/yashme_cli.exe -- bench-diff BENCH_engine_throughput.json \
  "$bench_cur" --tolerance 400
# Two back-to-back runs of the same build must pass a generous gate.
dune exec bench/main.exe -- --throughput-only --jobs 2 --repeats 1 \
  --out "$bench_rerun" >/dev/null
dune exec bin/yashme_cli.exe -- bench-diff "$bench_cur" "$bench_rerun" \
  --tolerance 200
# The gate compares only the named metric, so rows may gain or lose
# observability columns (e.g. the oracle counters) without tripping
# it — assert that in both directions with synthetic summaries.
printf '{"bench":"synthetic","jobs":2,"ops_per_s":100.0}\n' > "$oracle_b0"
printf '{"bench":"synthetic","jobs":2,"ops_per_s":100.0,"oracle_invariants":3,"oracle_violations":1}\n' > "$oracle_b1"
dune exec bin/yashme_cli.exe -- bench-diff "$oracle_b0" "$oracle_b1" >/dev/null || {
  echo "ci: bench-diff choked on a current file with extra metrics" >&2
  exit 1
}
dune exec bin/yashme_cli.exe -- bench-diff "$oracle_b1" "$oracle_b0" >/dev/null || {
  echo "ci: bench-diff choked on a baseline file with extra metrics" >&2
  exit 1
}

echo "== scaling observatory"
scale_out=$(mktemp /tmp/yashme-ci-scale.XXXXXX.jsonl)
scale_proj=$(mktemp /tmp/yashme-ci-scale-proj.XXXXXX.jsonl)
scale_proj2=$(mktemp /tmp/yashme-ci-scale-proj2.XXXXXX.jsonl)
scale_svg=$(mktemp /tmp/yashme-ci-scale.XXXXXX.svg)
scale_sweep=$(mktemp /tmp/yashme-ci-scale-sweep.XXXXXX.json)
trap 'rm -f "$trace" "$corpus" "$minimized" "$merged" "$progress" "$cov1" "$cov4" "$bench_cur" "$bench_rerun" "$att1" "$att4" "$ledger" "$soak_m1" "$soak_m2" "$soak_c1" "$soak_c2" "$soak_mr" "$soak_cr" "$soak_prog" ${soak_m1}.s ${soak_m2}.s "$oracle_c1" "$oracle_c4" "$oracle_min" "$oracle_b0" "$oracle_b1" "$scale_out" "$scale_proj" "$scale_proj2" "$scale_svg" "$scale_sweep"' EXIT
# A jobs sweep over one program: the full report, the non-timing
# projection, and the per-domain timeline SVG must all come out
# well-formed.
dune exec bin/yashme_cli.exe -- scaling Memcached --jobs-list 1,2 \
  --out "$scale_out" --projection-out "$scale_proj" --svg "$scale_svg" \
  --quiet >/dev/null
dune exec bin/yashme_cli.exe -- trace-lint "$scale_out"
dune exec bin/yashme_cli.exe -- trace-lint "$scale_svg"
# The non-timing projection is a function of the workload alone: a
# second sweep (levels listed in the opposite order) must reproduce it
# byte for byte.
dune exec bin/yashme_cli.exe -- scaling Memcached --jobs-list 2,1 \
  --projection-out "$scale_proj2" --quiet >/dev/null
cmp "$scale_proj" "$scale_proj2" || {
  echo "ci: scaling projection differs between sweep runs" >&2
  exit 1
}
# The scaling gate: a sweep summary self-compares clean, and the
# committed baseline gates a fresh sweep under a collapse-sized
# tolerance (speedup/efficiency are noisy in CI; the gate is there to
# catch a parallelism collapse, not scheduler jitter).
dune exec bench/main.exe -- --throughput-only --jobs-sweep 1,2 --repeats 1 \
  --out "$scale_sweep" >/dev/null
dune exec bin/yashme_cli.exe -- bench-diff --scaling "$scale_sweep" \
  "$scale_sweep"
dune exec bin/yashme_cli.exe -- bench-diff --scaling \
  BENCH_engine_throughput.json "$scale_sweep" --tolerance 300

echo "CI OK"
