#!/bin/sh
# Minimal CI for the Yashme reproduction.
#
#   ./ci.sh          build, (optionally) check formatting, run the tests
#
# The formatting gate only runs when ocamlformat is installed: dune's
# @fmt alias shells out to it, so on images without ocamlformat the
# step is skipped rather than failing the whole pipeline.
set -eu

cd "$(dirname "$0")"

echo "== dune build"
dune build @all

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt (ocamlformat $(ocamlformat --version))"
  dune build @fmt
else
  echo "== skip formatting check (ocamlformat not installed)"
fi

echo "== dune runtest"
dune runtest

echo "== observability smoke (check --metrics --trace-out + trace-lint)"
trace=$(mktemp /tmp/yashme-ci-trace.XXXXXX.json)
trap 'rm -f "$trace"' EXIT
dune exec bin/yashme_cli.exe -- check CCEH --jobs 2 --metrics \
  --trace-out "$trace" --quiet >/dev/null
dune exec bin/yashme_cli.exe -- trace-lint "$trace"

echo "CI OK"
