(* Tests for the crash-consistency invariant oracle: inference
   determinism, the demo-inconsistency fixture (oracle-only finding),
   jobs-invariant report and [oracle] block bytes, witness v3
   round-trip with v2/v1 decode compat, and the JSON codec's UTF-16
   surrogate-pair handling. *)

module Runner = Pm_harness.Runner
module Report = Pm_harness.Report
module Program = Pm_harness.Program
module Scenario = Pm_harness.Scenario
module Invariant = Pm_oracle.Invariant
module Json = Pm_corpus.Json
module Witness = Pm_corpus.Witness
module Replay = Pm_corpus.Replay
module Minimize = Pm_corpus.Minimize

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_strs = Alcotest.(check (list string))

let demo = Pm_benchmarks.Demo_faults.inconsistency

let lookup name =
  if name = demo.Program.name then Some demo
  else
    match Pm_benchmarks.Registry.find name with
    | exception Not_found -> None
    | p -> Some p

(* ------------------------------------------------------------------ *)
(* Invariant inference                                                  *)

(* Two independent preparations over the same program infer the same
   sorted invariant set — inference is a pure function of the
   reference trace, which is itself deterministic. *)
let test_inference_deterministic () =
  let labels () =
    match Runner.prepare_oracle demo with
    | None -> Alcotest.fail "demo-inconsistency must have an observe hook"
    | Some prep -> Runner.oracle_invariant_labels prep
  in
  let a = labels () and b = labels () in
  check "inference produced invariants" true (a <> []);
  check_strs "invariant sets identical across preparations" a b

let test_invariant_lines_roundtrip () =
  match Runner.prepare_oracle demo with
  | None -> Alcotest.fail "demo-inconsistency must have an observe hook"
  | Some prep -> (
      let invs = prep.Runner.op_invariants in
      let text = Invariant.to_lines invs in
      match Invariant.of_lines text with
      | Error msg -> Alcotest.fail msg
      | Ok invs' ->
          check_strs "to_lines/of_lines round-trip"
            (List.map Invariant.label invs)
            (List.map Invariant.label invs');
          check_str "re-rendering is byte-identical" text
            (Invariant.to_lines invs'))

(* ------------------------------------------------------------------ *)
(* The demo-inconsistency fixture                                       *)

(* The fixture's bug (flag flushed before the data it guards) is
   invisible to the race detector — every store is flushed and fenced
   before the crash-free end — but the oracle's ordering invariant
   catches the window where only the flag persisted. *)
let test_demo_oracle_only () =
  let o = Runner.model_check_outcome ~oracle:true demo in
  let r = o.Runner.o_report in
  check_strs "race detector stays silent" [] (Report.keys r);
  check_strs "oracle flags the ordering bug"
    [ "order:demo.data<demo.flag" ]
    (Report.consistency_keys r)

(* With the oracle off the same run reports nothing at all, and its
   rendering carries no trace of the oracle subsystem. *)
let test_demo_oracle_off_silent () =
  let r = Runner.model_check demo in
  check_strs "no races" [] (Report.keys r);
  check_strs "no consistency violations" [] (Report.consistency_keys r);
  let text = Report.to_string r in
  check "report text mentions no violations" true
    (try
       ignore
         (Str.search_forward (Str.regexp_string "consistency-violation") text 0);
       false
     with Not_found -> true)

(* A program without an observe hook runs byte-identically with the
   oracle requested: prepare_oracle yields no context to attach. *)
let test_no_observe_hook_is_identity () =
  let p = Option.get (lookup "litmus-publish-flag") in
  check "litmus program has no observe hook" true
    (Runner.prepare_oracle p = None);
  let off = Report.to_string (Runner.model_check p) in
  let on, _ = Runner.model_check_run ~oracle:true p in
  check_str "oracle-on bytes unchanged" off (Report.to_string on)

(* ------------------------------------------------------------------ *)
(* Determinism across job counts                                        *)

let test_jobs_invariant () =
  let run jobs = (Runner.model_check_outcome ~oracle:true ~jobs demo).Runner.o_report in
  let r1 = run 1 and r4 = run 4 in
  check_str "report bytes identical jobs 1 vs 4" (Report.to_string r1)
    (Report.to_string r4);
  check_str "[oracle] block bytes identical jobs 1 vs 4"
    (Report.oracle_to_string r1)
    (Report.oracle_to_string r4)

(* ------------------------------------------------------------------ *)
(* Witness v3                                                           *)

let consistency_witnesses () =
  let o = Runner.model_check_outcome ~oracle:true demo in
  (Witness.of_outcome ~program:demo.Program.name o).Witness.witnesses
  |> List.filter (fun (w : Witness.t) ->
         w.Witness.kind = Witness.Consistency_violation)

let test_witness_v3_roundtrip () =
  match consistency_witnesses () with
  | [] -> Alcotest.fail "expected a consistency-violation witness"
  | w :: _ -> (
      let line = Witness.encode w in
      check "line carries v3" true
        (try
           ignore (Str.search_forward (Str.regexp_string "{\"v\":3,") line 0);
           true
         with Not_found -> false);
      match Witness.decode line with
      | Error msg -> Alcotest.fail msg
      | Ok w' ->
          check_str "decode/encode round-trip bytes" line (Witness.encode w');
          check_str "kind preserved" "consistency_violation"
            (Witness.kind_label w'.Witness.kind);
          let r = Replay.replay_all ~lookup [ w' ] in
          check_int "v3 witness reproduces" r.Replay.total r.Replay.reproduced)

let test_witness_v3_minimizes () =
  match consistency_witnesses () with
  | [] -> Alcotest.fail "expected a consistency-violation witness"
  | w :: _ ->
      let m = Minimize.minimize ~lookup w in
      check "minimization reproduced the violation" true
        m.Minimize.reproduced

(* Older corpus lines still decode: a v2 line (same shape, older
   version stamp) and a v1 line (additionally missing the variant
   field) both load and replay. *)
let race_witness () =
  let p = Option.get (lookup "litmus-publish-flag") in
  let o = Runner.model_check_outcome p in
  List.hd (Witness.of_outcome ~program:p.Program.name o).Witness.witnesses

let test_witness_v2_compat () =
  let line = Witness.encode (race_witness ()) in
  let v2 =
    Str.global_replace (Str.regexp_string "{\"v\":3,") "{\"v\":2," line
  in
  match Witness.decode v2 with
  | Error msg -> Alcotest.fail msg
  | Ok w' ->
      let r = Replay.replay_all ~lookup [ w' ] in
      check_int "v2 witness reproduces" r.Replay.total r.Replay.reproduced

let test_witness_v1_compat () =
  let line = Witness.encode (race_witness ()) in
  let v1 =
    line
    |> Str.global_replace (Str.regexp_string "{\"v\":3,") "{\"v\":1,"
    |> Str.global_replace (Str.regexp_string "\"variant\":\"strict-tso\",") ""
  in
  match Witness.decode v1 with
  | Error msg -> Alcotest.fail msg
  | Ok w' ->
      check "missing variant defaults to strict-tso" true
        (Px86.Variant.is_default w'.Witness.options.Scenario.variant);
      let r = Replay.replay_all ~lookup [ w' ] in
      check_int "v1 witness reproduces" r.Replay.total r.Replay.reproduced

(* ------------------------------------------------------------------ *)
(* JSON surrogate pairs                                                 *)

let decode_single line =
  match Json.decode_obj line with
  | Error msg -> Alcotest.fail msg
  | Ok [ (_, `S s) ] -> s
  | Ok _ -> Alcotest.fail "expected a single string field"

let test_surrogate_pair_decodes () =
  (* U+1F600 as its UTF-16 escape pair decodes to 4-byte UTF-8. *)
  let s = decode_single "{\"k\":\"\\ud83d\\ude00\"}" in
  check_str "astral codepoint decodes" "\xf0\x9f\x98\x80" s;
  (* The encoder emits raw UTF-8, which decodes back unchanged. *)
  let line = Json.encode_obj [ ("k", `S s) ] in
  check_str "round-trip through raw UTF-8" s (decode_single line)

let test_surrogate_errors () =
  let rejected line =
    match Json.decode_obj line with Error _ -> true | Ok _ -> false
  in
  check "lone high surrogate rejected" true
    (rejected "{\"k\":\"\\ud83d\"}");
  check "lone low surrogate rejected" true
    (rejected "{\"k\":\"\\ude00\"}");
  check "high surrogate before non-surrogate rejected" true
    (rejected "{\"k\":\"\\ud83d\\u0041\"}");
  (* A BMP escape next to the pair still works. *)
  check_str "bmp escape unaffected" "A\xf0\x9f\x98\x80"
    (decode_single "{\"k\":\"\\u0041\\ud83d\\ude00\"}")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "invariant-oracle"
    [
      ( "inference",
        [
          Alcotest.test_case "deterministic" `Quick
            test_inference_deterministic;
          Alcotest.test_case "lines round-trip" `Quick
            test_invariant_lines_roundtrip;
        ] );
      ( "demo-inconsistency",
        [
          Alcotest.test_case "oracle-only finding" `Quick
            test_demo_oracle_only;
          Alcotest.test_case "silent with oracle off" `Quick
            test_demo_oracle_off_silent;
          Alcotest.test_case "no observe hook = identity" `Quick
            test_no_observe_hook_is_identity;
        ] );
      ( "determinism",
        [ Alcotest.test_case "jobs 1 vs 4 bytes" `Quick test_jobs_invariant ] );
      ( "witness-v3",
        [
          Alcotest.test_case "round-trip + replay" `Quick
            test_witness_v3_roundtrip;
          Alcotest.test_case "minimizes" `Quick test_witness_v3_minimizes;
          Alcotest.test_case "v2 decode compat" `Quick test_witness_v2_compat;
          Alcotest.test_case "v1 decode compat" `Quick test_witness_v1_compat;
        ] );
      ( "json-surrogates",
        [
          Alcotest.test_case "pair decodes + round-trip" `Quick
            test_surrogate_pair_decodes;
          Alcotest.test_case "lone/mismatched rejected" `Quick
            test_surrogate_errors;
        ] );
    ]
