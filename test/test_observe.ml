(* Tests for the observe layer: domain-safe counter/histogram merging,
   span nesting, trace export well-formedness, and the determinism
   contract (metrics/tracing on vs off never changes a race report;
   detector counters are identical for every job count). *)

module Metrics = Observe.Metrics
module Trace = Observe.Trace
module Span = Observe.Span
module Runner = Pm_harness.Runner
module Report = Pm_harness.Report
module Program = Pm_harness.Program

open Pm_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let toy =
  Program.make ~name:"toy"
    ~setup:(fun () ->
      let a = Pmem.alloc ~align:64 16 in
      Pmem.set_root 0 a)
    ~pre:(fun () ->
      let a = Pmem.get_root 0 in
      Pmem.store ~label:"racy" a 1L;
      Pmem.store ~label:"safe" ~atomic:Px86.Access.Release (a + 8) 2L;
      Pmem.clflush a;
      Pmem.mfence ())
    ~post:(fun () ->
      let a = Pmem.get_root 0 in
      ignore (Pmem.load a);
      ignore (Pmem.load ~atomic:Px86.Access.Acquire (a + 8)))
    ()

(* Every test leaves the global observe state as it found it:
   disabled, not recording, counters zeroed. *)
let quiesce () =
  Metrics.disable ();
  Metrics.reset ();
  Trace.stop ();
  Trace.clear ()

(* ------------------------------------------------------------------ *)
(* Counters and histograms                                              *)

let test_counter_disabled_is_noop () =
  quiesce ();
  let c = Metrics.counter "test/disabled" in
  Metrics.incr c;
  Metrics.add c 41;
  check_int "writes while disabled don't count" 0 (Metrics.value c)

let test_counter_registration_idempotent () =
  quiesce ();
  Metrics.enable ();
  let a = Metrics.counter "test/idem" in
  let b = Metrics.counter "test/idem" in
  Metrics.incr a;
  Metrics.incr b;
  check_int "same name, same cells" 2 (Metrics.value a);
  check_str "name kept" "test/idem" (Metrics.counter_name b);
  quiesce ()

let test_counter_merge_across_domains () =
  quiesce ();
  Metrics.enable ();
  let c = Metrics.counter "test/domains" in
  let per_domain = 10_000 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.incr c
    done
  in
  let ds = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  check_int "4 domains x 10k increments merge exactly" (4 * per_domain)
    (Metrics.value c);
  quiesce ()

let test_histogram_merge_across_domains () =
  quiesce ();
  Metrics.enable ();
  let h = Metrics.histogram "test/hist" in
  (* Each domain records 1..100; stats must merge across shards. *)
  let worker () =
    for i = 1 to 100 do
      Metrics.observe h i
    done
  in
  let ds = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  let s = Metrics.hstats h in
  check_int "count" 400 s.Metrics.count;
  check_int "sum" (4 * 5050) s.Metrics.sum;
  check_int "max" 100 s.Metrics.max;
  let buckets = Metrics.bucket_counts h in
  check_int "bucket totals = count" 400
    (Array.fold_left ( + ) 0 buckets);
  (* bucket 1 holds the sample value 1, once per domain *)
  check_int "smallest bucket" 4 buckets.(1);
  quiesce ()

let test_snapshot_diff () =
  quiesce ();
  Metrics.enable ();
  let c = Metrics.counter "test/diffed" in
  let before = Metrics.snapshot () in
  Metrics.add c 7;
  let d = Metrics.diff before (Metrics.snapshot ()) in
  check "only the changed counter appears" true
    (List.for_all (fun (name, v) -> name <> "test/diffed" || v = 7) d
    && List.mem_assoc "test/diffed" d);
  check "zero deltas dropped" false (List.mem_assoc "test/disabled" d);
  quiesce ()

(* ------------------------------------------------------------------ *)
(* Spans and trace export                                               *)

let find_event name events =
  match List.find_opt (fun (e : Trace.event) -> e.Trace.name = name) events with
  | Some e -> e
  | None -> Alcotest.failf "event %S not recorded" name

let test_span_nesting () =
  quiesce ();
  Trace.start ();
  let r =
    Span.with_ ~cat:"test" "outer" (fun () ->
        Span.with_ ~cat:"test" "inner" (fun () -> 42))
  in
  Trace.stop ();
  check_int "span returns the body's value" 42 r;
  let events = Trace.events () in
  let outer = find_event "outer" events in
  let inner = find_event "inner" events in
  check "inner starts within outer" true (inner.Trace.ts_us >= outer.Trace.ts_us);
  check "inner ends within outer" true
    (inner.Trace.ts_us + inner.Trace.dur_us
    <= outer.Trace.ts_us + outer.Trace.dur_us);
  check "same lane" true
    (inner.Trace.tid = outer.Trace.tid && inner.Trace.pid = outer.Trace.pid);
  check "parents sort before children" true
    (let rec precedes = function
       | (e : Trace.event) :: rest ->
           if e.Trace.name = "outer" then true
           else if e.Trace.name = "inner" then false
           else precedes rest
       | [] -> false
     in
     precedes events);
  quiesce ()

let test_span_off_costs_nothing () =
  quiesce ();
  check_int "no recording, no events" 0
    (Span.with_ "unrecorded" (fun () -> Trace.event_count ()));
  quiesce ()

let test_chrome_json_well_formed () =
  quiesce ();
  Trace.start ();
  (* Args exercising every escape path of the emitter. *)
  Trace.instant ~cat:"test"
    ~args:[ ("tricky", "quote\" backslash\\ newline\n tab\t control\x01") ]
    "escape me";
  Span.with_ ~cat:"test" "span" (fun () -> ());
  Trace.stop ();
  (match Trace.check_json (Trace.to_chrome_json ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "chrome json rejected: %s" msg);
  (match Trace.check_jsonl (Trace.to_jsonl ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "jsonl rejected: %s" msg);
  quiesce ()

let test_check_json_rejects_malformed () =
  List.iter
    (fun s ->
      match Trace.check_json s with
      | Ok () -> Alcotest.failf "accepted malformed JSON %S" s
      | Error _ -> ())
    [
      ""; "{"; "[1,]"; "{\"a\":}"; "{\"a\" 1}"; "\"unterminated";
      "{\"a\":1} trailing"; "nulll"; "[1 2]"; "{\"bad\\x\":1}";
    ];
  List.iter
    (fun s ->
      match Trace.check_json s with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "rejected valid JSON %S: %s" s msg)
    [ "{}"; "[]"; "null"; "-1.5e3"; "{\"a\":[1,true,\"x\\u0041\"]}" ]

let test_write_and_lint_roundtrip () =
  quiesce ();
  Trace.start ();
  Span.with_ ~cat:"test" ~args:[ ("k", "v") ] "roundtrip" (fun () -> ());
  Trace.stop ();
  let json = Filename.temp_file "yashme-trace" ".json" in
  let jsonl = Filename.temp_file "yashme-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove json;
      Sys.remove jsonl)
    (fun () ->
      Trace.write json;
      Trace.write jsonl;
      (match Trace.check_file json with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" json msg);
      match Trace.check_file jsonl with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" jsonl msg);
  quiesce ()

(* Edge cases of the snapshot/diff algebra. *)

let test_diff_absent_and_negative () =
  quiesce ();
  Metrics.enable ();
  let before = Metrics.snapshot () in
  (* A counter registered only after [before] counts from zero... *)
  let c = Metrics.counter "test/born_late" in
  Metrics.add c 5;
  let d = Metrics.diff before (Metrics.snapshot ()) in
  check_int "name absent from before counts as 0" 5
    (List.assoc "test/born_late" d);
  (* ...and a reset between the snapshots yields a negative delta,
     which diff keeps (only exact zeros are dropped). *)
  let before = Metrics.snapshot () in
  Metrics.reset ();
  let d = Metrics.diff before (Metrics.snapshot ()) in
  check_int "post-reset delta is negative, not dropped" (-5)
    (List.assoc "test/born_late" d);
  check "empty diffs are empty" true (Metrics.diff [] [] = []);
  quiesce ()

let test_histogram_zero_samples () =
  quiesce ();
  Metrics.enable ();
  let h = Metrics.histogram "test/empty_hist" in
  let s = Metrics.hstats h in
  check_int "zero-sample count" 0 s.Metrics.count;
  check_int "zero-sample sum" 0 s.Metrics.sum;
  check_int "zero-sample max" 0 s.Metrics.max;
  check_int "zero-sample buckets all empty" 0
    (Array.fold_left ( + ) 0 (Metrics.bucket_counts h));
  (* a zero-observation histogram contributes nothing to a diff *)
  let before = Metrics.snapshot () in
  let d = Metrics.diff before (Metrics.snapshot ()) in
  check "no delta entries for untouched histogram" false
    (List.exists (fun (name, _) -> name = "test/empty_hist#count") d);
  (* observing 0 is a sample, not a no-op *)
  Metrics.observe h 0;
  let s = Metrics.hstats h in
  check_int "sample of value 0 counted" 1 s.Metrics.count;
  check_int "bucket 0 holds value 0" 1 (Metrics.bucket_counts h).(0);
  quiesce ()

(* Regression: empty/truncated trace files must lint as malformed with
   a positioned error, for both formats.  (check_jsonl of zero lines
   used to be vacuously Ok.) *)
let test_trace_lint_rejects_empty_and_truncated () =
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  List.iter
    (fun (suffix, content) ->
      let tmp = Filename.temp_file "yashme-lint" suffix in
      Fun.protect
        ~finally:(fun () -> Sys.remove tmp)
        (fun () ->
          let oc = open_out tmp in
          output_string oc content;
          close_out oc;
          match Trace.check_file tmp with
          | Ok () ->
              Alcotest.failf "accepted %s file with %d byte(s)" suffix
                (String.length content)
          | Error msg ->
              check ("positioned error for " ^ suffix) true
                (starts_with "offset" msg || starts_with "line" msg)))
    [
      (".json", "");
      (".jsonl", "");
      (".json", "  \n \t ");
      (".jsonl", "\n\n");
      (* truncated mid-event: a crash while writing must not lint *)
      (".json", "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\"");
      (".jsonl", "{\"name\":\"x\",\"ph\":\"X\"}\n{\"name\":\"y\",");
    ]

(* ------------------------------------------------------------------ *)
(* Log levels                                                           *)

let test_log_levels () =
  quiesce ();
  let saved = Observe.Log.level () in
  Fun.protect
    ~finally:(fun () -> Observe.Log.set_level saved)
    (fun () ->
      Observe.Log.set_level Observe.Log.Debug;
      check "debug threshold" true (Observe.Log.level () = Observe.Log.Debug);
      check "debug is not quiet" false (Observe.Log.quiet ());
      (* --quiet compatibility aliases *)
      Observe.Log.set_quiet true;
      check "set_quiet true = Off" true (Observe.Log.level () = Observe.Log.Off);
      check "off is quiet" true (Observe.Log.quiet ());
      Observe.Log.set_quiet false;
      check "set_quiet false restores Warn" true
        (Observe.Log.level () = Observe.Log.Warn);
      (* parsing *)
      List.iter
        (fun (s, expect) ->
          check ("parse " ^ s) true (Observe.Log.level_of_string s = expect))
        [
          ("off", Some Observe.Log.Off); ("quiet", Some Observe.Log.Off);
          ("warn", Some Observe.Log.Warn); ("warning", Some Observe.Log.Warn);
          ("info", Some Observe.Log.Info); ("debug", Some Observe.Log.Debug);
          ("verbose", None);
        ];
      check_str "to_string roundtrip" "info"
        (Observe.Log.level_to_string Observe.Log.Info);
      (* the trace mirror fires regardless of the stderr threshold *)
      Observe.Log.set_level Observe.Log.Off;
      Trace.start ();
      Observe.Log.warn "suppressed on stderr";
      Observe.Log.info "also mirrored";
      Observe.Log.debug "this too";
      Trace.stop ();
      let logged name =
        List.exists
          (fun (e : Trace.event) ->
            e.Trace.name = name && e.Trace.cat = "log")
          (Trace.events ())
      in
      check "warning mirrored while Off" true (logged "warning");
      check "info mirrored while Off" true (logged "info");
      check "debug mirrored while Off" true (logged "debug"));
  quiesce ()

(* ------------------------------------------------------------------ *)
(* Determinism contract                                                 *)

let test_report_identical_with_observability_on () =
  quiesce ();
  let off = Report.to_string (Runner.model_check ~jobs:2 toy) in
  Metrics.enable ();
  Trace.start ();
  let on = Report.to_string (Runner.model_check ~jobs:2 toy) in
  Trace.stop ();
  Metrics.disable ();
  check_str "race report byte-identical with metrics+trace on" off on;
  check "a parallel run actually recorded spans" true (Trace.event_count () > 0);
  quiesce ()

let detector_counters () =
  List.filter
    (fun (name, _) -> String.length name >= 9 && String.sub name 0 9 = "detector/")
    (Metrics.snapshot ())

let test_detector_counters_jobs_invariant () =
  quiesce ();
  Metrics.enable ();
  let p = Pm_benchmarks.Cceh.program in
  ignore (Runner.model_check ~jobs:1 p);
  let j1 = detector_counters () in
  Metrics.reset ();
  ignore (Runner.model_check ~jobs:4 p);
  let j4 = detector_counters () in
  check "counters recorded" true
    (List.exists (fun (_, v) -> v > 0) j1);
  check "detector counters identical for jobs=1 and jobs=4" true (j1 = j4);
  quiesce ()

let () =
  Alcotest.run "observe"
    [
      ( "metrics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_counter_disabled_is_noop;
          Alcotest.test_case "registration idempotent" `Quick
            test_counter_registration_idempotent;
          Alcotest.test_case "counter merge across 4 domains" `Quick
            test_counter_merge_across_domains;
          Alcotest.test_case "histogram merge across 4 domains" `Quick
            test_histogram_merge_across_domains;
          Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
          Alcotest.test_case "diff absent names and negatives" `Quick
            test_diff_absent_and_negative;
          Alcotest.test_case "zero-sample histograms" `Quick
            test_histogram_zero_samples;
        ] );
      ( "log",
        [ Alcotest.test_case "levels and aliases" `Quick test_log_levels ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "spans free when off" `Quick
            test_span_off_costs_nothing;
          Alcotest.test_case "chrome/jsonl well-formed" `Quick
            test_chrome_json_well_formed;
          Alcotest.test_case "json checker rejects malformed" `Quick
            test_check_json_rejects_malformed;
          Alcotest.test_case "write + lint roundtrip" `Quick
            test_write_and_lint_roundtrip;
          Alcotest.test_case "lint rejects empty/truncated files" `Quick
            test_trace_lint_rejects_empty_and_truncated;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "report identical with observability on" `Quick
            test_report_identical_with_observability_on;
          Alcotest.test_case "detector counters jobs-invariant" `Slow
            test_detector_counters_jobs_invariant;
        ] );
    ]
