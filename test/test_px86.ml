(* Tests for the Px86 machine model: addresses, the Table-1 reordering
   matrix, memory images, store buffers (TSO FIFO + clwb overtaking +
   forwarding), the persistence domain (flush cuts, candidates), and the
   machine itself (bypassing, coherence order, crash materialization,
   store-buffer volatility). *)

module Clockvec = Yashme_util.Clockvec
module Rng = Yashme_util.Rng
open Px86

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

(* ------------------------------------------------------------------ *)
(* Addr                                                                 *)

let test_addr_lines () =
  check_int "line of 0" 0 (Addr.line 0);
  check_int "line of 63" 0 (Addr.line 63);
  check_int "line of 64" 1 (Addr.line 64);
  check "same line" true (Addr.same_line 10 63);
  check "different line" false (Addr.same_line 63 64);
  check_int "line base" 64 (Addr.line_base 100);
  Alcotest.(check (list int)) "covering one line" [ 1 ] (Addr.lines_covering 64 64);
  Alcotest.(check (list int)) "straddling" [ 0; 1 ] (Addr.lines_covering 60 8)

(* ------------------------------------------------------------------ *)
(* Reorder: spot-check every interesting cell of Table 1                *)

let test_reorder_matrix () =
  let req e l sl = Reorder.required ~earlier:e ~later:l ~same_line:sl in
  (* Read row: everything ordered. *)
  List.iter
    (fun l -> check "read row" true (req Reorder.Read l false))
    Reorder.all_kinds;
  (* Write row. *)
  check "W->R reorders" false (req Reorder.Write Reorder.Read false);
  check "W->W ordered" true (req Reorder.Write Reorder.Write false);
  check "W->clfopt same line" true (req Reorder.Write Reorder.Clflushopt true);
  check "W->clfopt other line" false (req Reorder.Write Reorder.Clflushopt false);
  check "W->clf ordered" true (req Reorder.Write Reorder.Clflush_k false);
  check "W->sfence ordered" true (req Reorder.Write Reorder.Sfence_k false);
  (* RMW and mfence rows: everything ordered. *)
  List.iter
    (fun l ->
      check "rmw row" true (req Reorder.Rmw l false);
      check "mfence row" true (req Reorder.Mfence_k l false))
    Reorder.all_kinds;
  (* sfence row. *)
  check "sfence->R reorders" false (req Reorder.Sfence_k Reorder.Read false);
  check "sfence->clfopt ordered" true (req Reorder.Sfence_k Reorder.Clflushopt false);
  (* clflushopt row. *)
  check "clfopt->W reorders" false (req Reorder.Clflushopt Reorder.Write false);
  check "clfopt->clfopt reorders" false (req Reorder.Clflushopt Reorder.Clflushopt true);
  check "clfopt->clf same line" true (req Reorder.Clflushopt Reorder.Clflush_k true);
  check "clfopt->clf other line" false (req Reorder.Clflushopt Reorder.Clflush_k false);
  check "clfopt->mfence ordered" true (req Reorder.Clflushopt Reorder.Mfence_k false);
  check "clfopt->sfence ordered" true (req Reorder.Clflushopt Reorder.Sfence_k false);
  (* clflush row. *)
  check "clf->W ordered" true (req Reorder.Clflush_k Reorder.Write false);
  check "clf->clfopt same line" true (req Reorder.Clflush_k Reorder.Clflushopt true);
  check "clf->clfopt other line" false (req Reorder.Clflush_k Reorder.Clflushopt false);
  check "clf->clf ordered" true (req Reorder.Clflush_k Reorder.Clflush_k false)

let test_reorder_table_renders () =
  let t = Reorder.table () in
  check "mentions clflushopt" true
    (String.length t > 100 && String.contains t 'Y' && String.contains t 'x')

(* ------------------------------------------------------------------ *)
(* Memimage                                                             *)

let test_memimage_rw () =
  let m = Memimage.create () in
  Memimage.write m ~addr:100 ~size:8 ~value:0x1122334455667788L;
  check_i64 "read back" 0x1122334455667788L (Memimage.read m ~addr:100 ~size:8);
  check_i64 "unwritten is zero" 0L (Memimage.read m ~addr:5000 ~size:8);
  check_i64 "partial read low" 0x55667788L (Memimage.read m ~addr:100 ~size:4);
  check_i64 "partial read high" 0x11223344L (Memimage.read m ~addr:104 ~size:4)

let test_memimage_byte_overwrite () =
  let m = Memimage.create () in
  Memimage.write m ~addr:0 ~size:8 ~value:(-1L);
  Memimage.write m ~addr:2 ~size:1 ~value:0L;
  check_i64 "byte poked" 0xFFFFFFFFFF00FFFFL (Memimage.read m ~addr:0 ~size:8)

let test_memimage_grow () =
  let m = Memimage.create () in
  Memimage.write m ~addr:100_000 ~size:8 ~value:7L;
  check_i64 "grows on demand" 7L (Memimage.read m ~addr:100_000 ~size:8);
  check_int "extent" 100_008 (Memimage.extent m)

let test_memimage_copy_isolated () =
  let m = Memimage.create () in
  Memimage.write m ~addr:8 ~size:8 ~value:1L;
  let c = Memimage.copy m in
  Memimage.write m ~addr:8 ~size:8 ~value:2L;
  check_i64 "copy unaffected" 1L (Memimage.read c ~addr:8 ~size:8)

let test_memimage_blit_line () =
  let src = Memimage.create () and dst = Memimage.create () in
  Memimage.write src ~addr:64 ~size:8 ~value:99L;
  Memimage.blit_line ~src ~dst 1;
  check_i64 "line copied" 99L (Memimage.read dst ~addr:64 ~size:8)

let test_memimage_bad_size () =
  let m = Memimage.create () in
  Alcotest.check_raises "size 0" (Invalid_argument "Memimage: size must be in 1..8")
    (fun () -> ignore (Memimage.read m ~addr:0 ~size:0))

(* ------------------------------------------------------------------ *)
(* Store buffer                                                         *)

let mk_store ?(tid = 0) ?(lclk = 0) ?(addr = 0) ?(size = 8) ?(value = 0L)
    ?(access = Access.Plain) () =
  { Event.seq = -1; tid; lclk; cv = Clockvec.empty; addr; size; value; access;
    nt = false; label = None }

let mk_flush ?(tid = 0) ?(addr = 0) kind =
  { Event.fseq = -1; ftid = tid; flclk = 0; fcv = Clockvec.empty; faddr = addr; kind }

(* ------------------------------------------------------------------ *)
(* Access & Event helpers                                               *)

let test_access_classification () =
  check "plain not atomic" false (Access.is_atomic Access.Plain);
  check "relaxed atomic" true (Access.is_atomic (Access.Atomic Access.Relaxed));
  check "plain not release" false (Access.is_release Access.Plain);
  check "relaxed not release" false (Access.is_release (Access.Atomic Access.Relaxed));
  check "release is release" true (Access.is_release (Access.Atomic Access.Release));
  check "acq_rel is release" true (Access.is_release (Access.Atomic Access.Acq_rel));
  check "seq_cst is release" true (Access.is_release (Access.Atomic Access.Seq_cst));
  check "acquire not release" false (Access.is_release (Access.Atomic Access.Acquire));
  check "acquire is acquire" true (Access.is_acquire (Access.Atomic Access.Acquire));
  check "release not acquire" false (Access.is_acquire (Access.Atomic Access.Release));
  Alcotest.(check string) "to_string" "atomic(release)"
    (Access.to_string (Access.Atomic Access.Release))

(* ------------------------------------------------------------------ *)
(* Event coverage helpers                                                *)

let test_event_covers_overlaps () =
  let s = mk_store ~addr:16 ~size:8 () in
  check "covers exact" true (Event.store_covers s 16 8);
  check "covers inner" true (Event.store_covers s 18 4);
  check "not covers wider" false (Event.store_covers s 16 16);
  check "not covers before" false (Event.store_covers s 8 8);
  check "overlaps left edge" true (Event.store_overlaps s 10 8);
  check "overlaps right edge" true (Event.store_overlaps s 23 8);
  check "no overlap" false (Event.store_overlaps s 24 8);
  check "no overlap before" false (Event.store_overlaps s 0 16)


let test_sb_fifo () =
  let sb = Store_buffer.create () in
  check "fresh empty" true (Store_buffer.is_empty sb);
  Store_buffer.push sb (Store_buffer.Store (mk_store ~addr:0 ~value:1L ()));
  Store_buffer.push sb (Store_buffer.Store (mk_store ~addr:8 ~value:2L ()));
  check_int "length" 2 (Store_buffer.length sb);
  (* Only the head store may leave first: stores never reorder. *)
  Alcotest.(check (list int)) "stores evict in order" [ 0 ] (Store_buffer.evictable sb);
  (match Store_buffer.take sb 0 with
  | Store_buffer.Store s -> check_i64 "head first" 1L s.Event.value
  | _ -> Alcotest.fail "expected store");
  check_int "one left" 1 (Store_buffer.length sb)

let test_sb_clwb_overtakes_other_line () =
  let sb = Store_buffer.create () in
  Store_buffer.push sb (Store_buffer.Store (mk_store ~addr:0 ()));
  Store_buffer.push sb (Store_buffer.Flush (mk_flush ~addr:128 Event.Clwb));
  (* clflushopt may pass a store to a different cache line. *)
  Alcotest.(check (list int)) "clwb can overtake" [ 0; 1 ] (Store_buffer.evictable sb)

let test_sb_clwb_blocked_same_line () =
  let sb = Store_buffer.create () in
  Store_buffer.push sb (Store_buffer.Store (mk_store ~addr:0 ()));
  Store_buffer.push sb (Store_buffer.Flush (mk_flush ~addr:32 Event.Clwb));
  Alcotest.(check (list int)) "same line keeps order" [ 0 ] (Store_buffer.evictable sb)

let test_sb_clflush_never_overtakes_store () =
  let sb = Store_buffer.create () in
  Store_buffer.push sb (Store_buffer.Store (mk_store ~addr:0 ()));
  Store_buffer.push sb (Store_buffer.Flush (mk_flush ~addr:512 Event.Clflush));
  (* Write -> clflush is ordered even across lines. *)
  Alcotest.(check (list int)) "clflush stays behind" [ 0 ] (Store_buffer.evictable sb)

let test_sb_clwb_blocked_by_sfence () =
  let sb = Store_buffer.create () in
  Store_buffer.push sb
    (Store_buffer.Sfence { Event.ktid = 0; klclk = 0; kcv = Clockvec.empty;
                           kkind = Event.Sfence });
  Store_buffer.push sb (Store_buffer.Flush (mk_flush ~addr:512 Event.Clwb));
  Alcotest.(check (list int)) "sfence fences clwb" [ 0 ] (Store_buffer.evictable sb)

let test_sb_forwarding () =
  let sb = Store_buffer.create () in
  Store_buffer.push sb (Store_buffer.Store (mk_store ~addr:16 ~value:1L ()));
  Store_buffer.push sb (Store_buffer.Store (mk_store ~addr:16 ~value:2L ()));
  (match Store_buffer.forward sb ~addr:16 ~size:8 with
  | Store_buffer.Covered s -> check_i64 "newest wins" 2L s.Event.value
  | _ -> Alcotest.fail "expected coverage");
  (match Store_buffer.forward sb ~addr:16 ~size:4 with
  | Store_buffer.Covered _ -> ()
  | _ -> Alcotest.fail "smaller load covered");
  (match Store_buffer.forward sb ~addr:12 ~size:8 with
  | Store_buffer.Partial -> ()
  | _ -> Alcotest.fail "overlap should stall");
  match Store_buffer.forward sb ~addr:64 ~size:8 with
  | Store_buffer.Miss -> ()
  | _ -> Alcotest.fail "expected miss"

(* ------------------------------------------------------------------ *)
(* Flush buffer                                                         *)

let test_fb_drain_order () =
  let fb = Flush_buffer.create () in
  check "fresh empty" true (Flush_buffer.is_empty fb);
  Flush_buffer.add fb (mk_flush ~addr:0 Event.Clwb);
  Flush_buffer.add fb (mk_flush ~addr:64 Event.Clwb);
  Alcotest.(check (list int)) "pending oldest first" [ 0; 64 ]
    (List.map (fun (f : Event.flush) -> f.Event.faddr) (Flush_buffer.pending fb));
  let drained = Flush_buffer.drain fb in
  check_int "drained all" 2 (List.length drained);
  check "empty after drain" true (Flush_buffer.is_empty fb)

(* ------------------------------------------------------------------ *)
(* Persistence domain                                                   *)

let committed ?(seq = 0) ?(addr = 0) ?(value = 0L) () =
  let s = mk_store ~addr ~value () in
  s.Event.seq <- seq;
  s

let test_pers_candidates_unflushed () =
  let p = Persistence.create () in
  Persistence.commit_store p (committed ~seq:1 ~addr:0 ~value:1L ());
  Persistence.commit_store p (committed ~seq:2 ~addr:0 ~value:2L ());
  let cands = Persistence.candidates p ~addr:0 ~size:8 in
  Alcotest.(check (list int)) "both candidates (no flush)" [ 1; 2 ]
    (List.map (fun (s : Event.store) -> s.Event.seq) cands)

let test_pers_candidates_flushed () =
  let p = Persistence.create () in
  Persistence.commit_store p (committed ~seq:1 ~addr:0 ~value:1L ());
  Persistence.flush_line p ~line:0 ~seq:2;
  Persistence.commit_store p (committed ~seq:3 ~addr:0 ~value:2L ());
  let cands = Persistence.candidates p ~addr:0 ~size:8 in
  Alcotest.(check (list int)) "flushed base + later" [ 1; 3 ]
    (List.map (fun (s : Event.store) -> s.Event.seq) cands);
  (* Flushing past the second store leaves only it. *)
  Persistence.flush_line p ~line:0 ~seq:4;
  let cands = Persistence.candidates p ~addr:0 ~size:8 in
  Alcotest.(check (list int)) "only the durable store" [ 3 ]
    (List.map (fun (s : Event.store) -> s.Event.seq) cands)

let test_pers_flush_monotone () =
  let p = Persistence.create () in
  Persistence.flush_line p ~line:3 ~seq:10;
  Persistence.flush_line p ~line:3 ~seq:5;
  check_int "cut never decreases" 10 (Persistence.cut_lb p 3)

let test_pers_straddling_store () =
  let p = Persistence.create () in
  Persistence.commit_store p (committed ~seq:1 ~addr:60 ~value:1L ());
  (* A store straddling lines 0 and 1 is indexed on both. *)
  check_int "on line 0" 1 (List.length (Persistence.line_stores p 0));
  check_int "on line 1" 1 (List.length (Persistence.line_stores p 1))

let test_pers_latest_at_or_below () =
  let p = Persistence.create () in
  Persistence.commit_store p (committed ~seq:1 ~addr:0 ~value:1L ());
  Persistence.commit_store p (committed ~seq:5 ~addr:0 ~value:2L ());
  (match Persistence.latest_at_or_below p ~addr:0 ~size:8 ~cut:3 with
  | Some s -> check_int "cut 3 selects seq 1" 1 s.Event.seq
  | None -> Alcotest.fail "expected a store");
  match Persistence.latest_at_or_below p ~addr:0 ~size:8 ~cut:0 with
  | None -> ()
  | Some _ -> Alcotest.fail "nothing at cut 0"

(* ------------------------------------------------------------------ *)
(* Machine                                                              *)

let machine ?(policy = Machine.Eager) ?(seed = 0) () =
  Machine.create ~exec_id:0
    { Machine.sb_policy = policy; variant = Variant.strict_tso;
      rng = Rng.create seed; observer = Observer.nop }

(* The executor calls [background] between instructions; these wrappers
   do the same for direct machine tests. *)
let store_d m ~tid ~addr ~size ~value ~access =
  Machine.store m ~tid ~addr ~size ~value ~access ~label:None;
  Machine.background m

let clflush_d m ~tid ~addr =
  Machine.clflush m ~tid ~addr;
  Machine.background m

let clwb_d m ~tid ~addr =
  Machine.clwb m ~tid ~addr;
  Machine.background m

let sfence_d m ~tid =
  Machine.sfence m ~tid;
  Machine.background m

let test_machine_store_load () =
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:42L ~access:Access.Plain;
  let v, src = Machine.load m ~tid:0 ~addr:0 ~size:8 ~access:Access.Plain in
  check_i64 "load sees store" 42L v;
  match src with
  | Machine.From_cache _ -> ()
  | _ -> Alcotest.fail "expected cache read under eager policy"

let test_machine_bypass () =
  (* With a lazy policy the store sits in the buffer: the owning thread
     sees it (bypassing); another thread does not (TSO). *)
  let m = machine ~policy:(Machine.Random_drain 0.0) () in
  Machine.store m ~tid:0 ~addr:0 ~size:8 ~value:7L ~access:Access.Plain ~label:None;
  let v0, src0 = Machine.load m ~tid:0 ~addr:0 ~size:8 ~access:Access.Plain in
  check_i64 "own store forwarded" 7L v0;
  (match src0 with
  | Machine.From_buffer _ -> ()
  | _ -> Alcotest.fail "expected store-buffer forwarding");
  let v1, _ = Machine.load m ~tid:1 ~addr:0 ~size:8 ~access:Access.Plain in
  check_i64 "other thread sees old value" 0L v1;
  check_int "one buffered store" 1 (Machine.buffered_stores m)

let test_machine_mfence_drains () =
  let m = machine ~policy:(Machine.Random_drain 0.0) () in
  Machine.store m ~tid:0 ~addr:0 ~size:8 ~value:7L ~access:Access.Plain ~label:None;
  Machine.mfence m ~tid:0;
  check_int "buffer empty after mfence" 0 (Machine.buffered_stores m);
  let v, _ = Machine.load m ~tid:1 ~addr:0 ~size:8 ~access:Access.Plain in
  check_i64 "visible to others" 7L v

let test_machine_cas () =
  let m = machine () in
  store_d m ~tid:0 ~addr:8 ~size:8 ~value:1L ~access:Access.Plain;
  let ok, observed, _ = Machine.cas m ~tid:1 ~addr:8 ~size:8 ~expected:1L ~desired:2L ~label:None in
  check "cas succeeds" true ok;
  check_i64 "cas observed" 1L observed;
  let ok2, observed2, _ = Machine.cas m ~tid:1 ~addr:8 ~size:8 ~expected:1L ~desired:3L ~label:None in
  check "cas fails" false ok2;
  check_i64 "cas sees new value" 2L observed2

let test_machine_sb_lost_on_crash () =
  let m = machine ~policy:(Machine.Random_drain 0.0) () in
  Machine.store m ~tid:0 ~addr:0 ~size:8 ~value:9L ~access:Access.Plain ~label:None;
  let cs = Machine.crash m ~strategy:Machine.Cut_all in
  check_i64 "buffered store never persisted" 0L
    (Memimage.read cs.Crashstate.image ~addr:0 ~size:8);
  check "no origin" true (Crashstate.find_origin cs ~addr:0 ~size:8 = None)

let test_machine_committed_unflushed_may_persist () =
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:9L ~access:Access.Plain;
  let all = Machine.crash m ~strategy:Machine.Cut_all in
  check_i64 "Cut_all keeps it" 9L (Memimage.read all.Crashstate.image ~addr:0 ~size:8)

let test_machine_lowerbound_cut_drops_unflushed () =
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:9L ~access:Access.Plain;
  let lb = Machine.crash m ~strategy:Machine.Cut_lowerbound in
  check_i64 "Cut_lowerbound drops it" 0L (Memimage.read lb.Crashstate.image ~addr:0 ~size:8)

let test_machine_clflush_persists () =
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:9L ~access:Access.Plain;
  clflush_d m ~tid:0 ~addr:0;
  let lb = Machine.crash m ~strategy:Machine.Cut_lowerbound in
  check_i64 "flushed store survives any cut" 9L
    (Memimage.read lb.Crashstate.image ~addr:0 ~size:8)

let test_machine_clwb_needs_fence () =
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:9L ~access:Access.Plain;
  clwb_d m ~tid:0 ~addr:0;
  let lb = Machine.crash m ~strategy:Machine.Cut_lowerbound in
  check_i64 "clwb alone does not guarantee" 0L
    (Memimage.read lb.Crashstate.image ~addr:0 ~size:8);
  (* Same again, with the fence. *)
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:9L ~access:Access.Plain;
  clwb_d m ~tid:0 ~addr:0;
  sfence_d m ~tid:0;
  let lb = Machine.crash m ~strategy:Machine.Cut_lowerbound in
  check_i64 "clwb+sfence guarantees" 9L
    (Memimage.read lb.Crashstate.image ~addr:0 ~size:8)

let test_machine_same_line_prefix_cut () =
  (* Same-line stores persist in order: a cut can drop the second store
     but never keep it while dropping the first. *)
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:1L ~access:Access.Plain;
  store_d m ~tid:0 ~addr:8 ~size:8 ~value:2L ~access:Access.Plain;
  let rng = Rng.create 11 in
  for _ = 1 to 50 do
    let m' = machine () in
    store_d m' ~tid:0 ~addr:0 ~size:8 ~value:1L ~access:Access.Plain;
    store_d m' ~tid:0 ~addr:8 ~size:8 ~value:2L ~access:Access.Plain;
    let cs = Machine.crash m' ~strategy:(Machine.Cut_random (Rng.split rng)) in
    let a = Memimage.read cs.Crashstate.image ~addr:0 ~size:8 in
    let b = Memimage.read cs.Crashstate.image ~addr:8 ~size:8 in
    check "no second-without-first" false (a = 0L && b = 2L)
  done;
  ignore m

let test_machine_crash_candidates () =
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:1L ~access:Access.Plain;
  clflush_d m ~tid:0 ~addr:0;
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:2L ~access:Access.Plain;
  let cs = Machine.crash m ~strategy:Machine.Cut_all in
  let cands = Crashstate.find_candidates cs ~addr:0 ~size:8 in
  Alcotest.(check (list int64)) "flushed base plus later store" [ 1L; 2L ]
    (List.map (fun (o : Crashstate.origin) -> o.Crashstate.store.Event.value) cands)

let test_machine_shutdown_concrete () =
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:5L ~access:Access.Plain;
  let cs = Machine.shutdown m in
  check_i64 "shutdown persists" 5L (Memimage.read cs.Crashstate.image ~addr:0 ~size:8);
  check_int "single candidate" 1
    (List.length (Crashstate.find_candidates cs ~addr:0 ~size:8))

let test_machine_inherited_chain () =
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:5L ~access:Access.Plain;
  let cs = Machine.shutdown m in
  let m2 =
    Machine.create ~inherited:cs ~exec_id:1
      { Machine.sb_policy = Machine.Eager; variant = Variant.strict_tso;
        rng = Rng.create 0; observer = Observer.nop }
  in
  let v, src = Machine.load m2 ~tid:0 ~addr:0 ~size:8 ~access:Access.Plain in
  check_i64 "reads inherited value" 5L v;
  (match src with
  | Machine.From_crash (o, _) -> check_int "origin from exec 0" 0 o.Crashstate.exec_id
  | _ -> Alcotest.fail "expected From_crash");
  (* Overwrite in exec 1, then crash: origin moves to exec 1. *)
  Machine.store m2 ~tid:0 ~addr:0 ~size:8 ~value:6L ~access:Access.Plain ~label:None;
  Machine.background m2;
  let cs2 = Machine.crash m2 ~strategy:Machine.Cut_all in
  match Crashstate.find_origin cs2 ~addr:0 ~size:8 with
  | Some (o, _) -> check_int "origin from exec 1" 1 o.Crashstate.exec_id
  | None -> Alcotest.fail "expected origin"

let test_machine_acquire_joins_cv () =
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:1L ~access:(Access.Atomic Access.Release);
  let _ = Machine.load m ~tid:1 ~addr:0 ~size:8 ~access:(Access.Atomic Access.Acquire) in
  let cv = Machine.thread_cv m ~tid:1 in
  check "synchronizes-with" true (Clockvec.get cv 0 >= 1)

let test_machine_nt_store_durable_after_fence () =
  let m = machine () in
  Machine.store ~nt:true m ~tid:0 ~addr:0 ~size:8 ~value:7L ~access:Access.Plain
    ~label:None;
  Machine.background m;
  Machine.sfence m ~tid:0;
  Machine.background m;
  let lb = Machine.crash m ~strategy:Machine.Cut_lowerbound in
  check_i64 "fenced movnt survives any cut" 7L
    (Memimage.read lb.Crashstate.image ~addr:0 ~size:8)

let test_machine_nt_store_not_durable_without_fence () =
  let m = machine () in
  Machine.store ~nt:true m ~tid:0 ~addr:0 ~size:8 ~value:7L ~access:Access.Plain
    ~label:None;
  Machine.background m;
  let lb = Machine.crash m ~strategy:Machine.Cut_lowerbound in
  check_i64 "unfenced movnt may be lost" 0L
    (Memimage.read lb.Crashstate.image ~addr:0 ~size:8)

let test_machine_nt_does_not_cover_neighbours () =
  (* A fenced movnt makes only ITSELF durable, not earlier plain stores
     on the same line (movnt bypasses the cache's line granularity). *)
  let m = machine () in
  store_d m ~tid:0 ~addr:0 ~size:8 ~value:1L ~access:Access.Plain;
  Machine.store ~nt:true m ~tid:0 ~addr:8 ~size:8 ~value:2L ~access:Access.Plain
    ~label:None;
  Machine.background m;
  Machine.sfence m ~tid:0;
  Machine.background m;
  let lb = Machine.crash m ~strategy:Machine.Cut_lowerbound in
  check_i64 "movnt durable" 2L (Memimage.read lb.Crashstate.image ~addr:8 ~size:8);
  check_i64 "plain neighbour not covered" 0L
    (Memimage.read lb.Crashstate.image ~addr:0 ~size:8)

(* Random-drain policy: whatever interleaving of evictions happens, TSO
   per-thread store order is preserved in the cache commit order. *)
let prop_random_drain_fifo =
  QCheck.Test.make ~name:"random drain preserves per-thread store order" ~count:50
    QCheck.(int_bound 10_000) (fun seed ->
      let committed = ref [] in
      let observer =
        { Observer.nop with
          Observer.on_store_commit = (fun s -> committed := s :: !committed) }
      in
      let m =
        Machine.create ~exec_id:0
          { Machine.sb_policy = Machine.Random_drain 0.3;
            variant = Variant.strict_tso; rng = Rng.create seed;
            observer }
      in
      for i = 1 to 10 do
        Machine.store m ~tid:0 ~addr:(8 * i) ~size:8 ~value:(Int64.of_int i)
          ~access:Access.Plain ~label:None
      done;
      Machine.background m;
      Machine.drain_all_sb m;
      let order =
        List.rev_map (fun (s : Event.store) -> Int64.to_int s.Event.value) !committed
      in
      order = List.sort compare order)

(* Any eviction order the store buffer permits satisfies every pairwise
   Table-1 constraint: if the matrix requires (earlier, later) order for
   two buffered entries, the earlier one always leaves first. *)
let sb_entry_gen =
  QCheck.Gen.(
    list_size (int_range 2 10)
      (frequency
         [
           (4, map (fun slot -> `Store (slot * 32)) (int_bound 3));
           (2, map (fun slot -> `Clwb (slot * 32)) (int_bound 3));
           (2, map (fun slot -> `Clflush (slot * 32)) (int_bound 3));
           (1, return `Sfence);
         ]))

let sb_entry_arb =
  QCheck.make
    ~print:(fun es ->
      String.concat ";"
        (List.map
           (function
             | `Store a -> Printf.sprintf "st@%d" a
             | `Clwb a -> Printf.sprintf "clwb@%d" a
             | `Clflush a -> Printf.sprintf "clf@%d" a
             | `Sfence -> "sfence")
           es))
    sb_entry_gen

let entry_of = function
  | `Store a -> Store_buffer.Store (mk_store ~addr:a ())
  | `Clwb a -> Store_buffer.Flush (mk_flush ~addr:a Event.Clwb)
  | `Clflush a -> Store_buffer.Flush (mk_flush ~addr:a Event.Clflush)
  | `Sfence ->
      Store_buffer.Sfence
        { Event.ktid = 0; klclk = 0; kcv = Clockvec.empty; kkind = Event.Sfence }

let kind_of = function
  | `Store _ -> Reorder.Write
  | `Clwb _ -> Reorder.Clflushopt
  | `Clflush _ -> Reorder.Clflush_k
  | `Sfence -> Reorder.Sfence_k

let line_of = function
  | `Store a | `Clwb a | `Clflush a -> Some (Addr.line a)
  | `Sfence -> None

let prop_sb_legal_orders =
  QCheck.Test.make ~name:"store-buffer evictions satisfy Table 1" ~count:150
    (QCheck.pair sb_entry_arb QCheck.(int_bound 10_000)) (fun (descr, seed) ->
      let sb = Store_buffer.create () in
      (* Tag each description with its program-order position. *)
      let tagged = List.mapi (fun i d -> (i, d)) descr in
      List.iter (fun d -> Store_buffer.push sb (entry_of d)) descr;
      (* Drain in a random legal order, recovering each evicted entry's
         program position by matching its identity. *)
      let rng = Rng.create seed in
      let remaining = ref tagged in
      let order = ref [] in
      while not (Store_buffer.is_empty sb) do
        let idx = Rng.pick rng (Store_buffer.evictable sb) in
        ignore (Store_buffer.take sb idx);
        (* [evictable] indexes [entries]; mirror the removal. *)
        let rec remove i = function
          | [] -> []
          | x :: rest -> if i = idx then rest else x :: remove (i + 1) rest
        in
        let evicted = List.nth !remaining idx in
        remaining := remove 0 !remaining;
        order := fst evicted :: !order
      done;
      let eviction_rank = List.mapi (fun rank pos -> (pos, rank)) (List.rev !order) in
      let rank pos = List.assoc pos eviction_rank in
      (* Check every required pair kept its order. *)
      List.for_all
        (fun (i, di) ->
          List.for_all
            (fun (j, dj) ->
              if i >= j then true
              else
                let same_line =
                  match line_of di, line_of dj with
                  | Some a, Some b -> a = b
                  | _ -> false
                in
                if Reorder.required ~earlier:(kind_of di) ~later:(kind_of dj) ~same_line
                then rank i < rank j
                else true)
            tagged)
        tagged)

let prop_sb_forward_newest =
  QCheck.Test.make ~name:"forwarding returns the newest covering store" ~count:150
    (QCheck.pair
       (QCheck.make
          QCheck.Gen.(list_size (int_range 1 8) (pair (int_bound 3) (int_bound 100))))
       QCheck.(int_bound 3))
    (fun (stores, target) ->
      let sb = Store_buffer.create () in
      List.iter
        (fun (slot, v) ->
          Store_buffer.push sb
            (Store_buffer.Store (mk_store ~addr:(slot * 8) ~value:(Int64.of_int v) ())))
        stores;
      let expected =
        List.fold_left
          (fun acc (slot, v) -> if slot = target then Some (Int64.of_int v) else acc)
          None stores
      in
      match Store_buffer.forward sb ~addr:(target * 8) ~size:8, expected with
      | Store_buffer.Covered s, Some v -> s.Event.value = v
      | Store_buffer.Miss, None -> true
      | _ -> false)

(* Under any drain policy a flushed store survives every crash cut. *)
let prop_flushed_survives =
  QCheck.Test.make ~name:"flushed stores survive every cut" ~count:50
    QCheck.(pair (int_bound 10_000) (int_bound 5)) (fun (seed, nstores) ->
      let m =
        Machine.create ~exec_id:0
          { Machine.sb_policy = Machine.Random_drain 0.5;
            variant = Variant.strict_tso; rng = Rng.create seed;
            observer = Observer.nop }
      in
      let n = nstores + 1 in
      for i = 1 to n do
        Machine.store m ~tid:0 ~addr:(64 * i) ~size:8 ~value:(Int64.of_int i)
          ~access:Access.Plain ~label:None;
        Machine.clflush m ~tid:0 ~addr:(64 * i)
      done;
      Machine.mfence m ~tid:0;
      let cs = Machine.crash m ~strategy:(Machine.Cut_random (Rng.create (seed + 1))) in
      List.for_all
        (fun i ->
          Memimage.read cs.Crashstate.image ~addr:(64 * i) ~size:8 = Int64.of_int i)
        (List.init n (fun i -> i + 1)))

let () =
  Alcotest.run "px86"
    [
      ("addr", [ Alcotest.test_case "lines" `Quick test_addr_lines ]);
      ( "access-event",
        [
          Alcotest.test_case "access classification" `Quick test_access_classification;
          Alcotest.test_case "covers/overlaps" `Quick test_event_covers_overlaps;
        ] );
      ( "reorder",
        [
          Alcotest.test_case "table-1 matrix" `Quick test_reorder_matrix;
          Alcotest.test_case "table renders" `Quick test_reorder_table_renders;
        ] );
      ( "memimage",
        [
          Alcotest.test_case "read/write" `Quick test_memimage_rw;
          Alcotest.test_case "byte overwrite" `Quick test_memimage_byte_overwrite;
          Alcotest.test_case "grow" `Quick test_memimage_grow;
          Alcotest.test_case "copy isolation" `Quick test_memimage_copy_isolated;
          Alcotest.test_case "blit line" `Quick test_memimage_blit_line;
          Alcotest.test_case "bad size" `Quick test_memimage_bad_size;
        ] );
      ( "store-buffer",
        [
          Alcotest.test_case "fifo" `Quick test_sb_fifo;
          Alcotest.test_case "clwb overtakes other line" `Quick
            test_sb_clwb_overtakes_other_line;
          Alcotest.test_case "clwb blocked same line" `Quick
            test_sb_clwb_blocked_same_line;
          Alcotest.test_case "clflush never overtakes store" `Quick
            test_sb_clflush_never_overtakes_store;
          Alcotest.test_case "clwb blocked by sfence" `Quick
            test_sb_clwb_blocked_by_sfence;
          Alcotest.test_case "forwarding" `Quick test_sb_forwarding;
        ] );
      ("flush-buffer", [ Alcotest.test_case "drain order" `Quick test_fb_drain_order ]);
      ( "persistence",
        [
          Alcotest.test_case "candidates unflushed" `Quick test_pers_candidates_unflushed;
          Alcotest.test_case "candidates flushed" `Quick test_pers_candidates_flushed;
          Alcotest.test_case "flush monotone" `Quick test_pers_flush_monotone;
          Alcotest.test_case "straddling store" `Quick test_pers_straddling_store;
          Alcotest.test_case "latest at or below" `Quick test_pers_latest_at_or_below;
        ] );
      ( "machine",
        [
          Alcotest.test_case "store/load" `Quick test_machine_store_load;
          Alcotest.test_case "TSO bypass" `Quick test_machine_bypass;
          Alcotest.test_case "mfence drains" `Quick test_machine_mfence_drains;
          Alcotest.test_case "cas" `Quick test_machine_cas;
          Alcotest.test_case "SB lost on crash" `Quick test_machine_sb_lost_on_crash;
          Alcotest.test_case "unflushed may persist" `Quick
            test_machine_committed_unflushed_may_persist;
          Alcotest.test_case "lowerbound cut" `Quick
            test_machine_lowerbound_cut_drops_unflushed;
          Alcotest.test_case "clflush persists" `Quick test_machine_clflush_persists;
          Alcotest.test_case "clwb needs fence" `Quick test_machine_clwb_needs_fence;
          Alcotest.test_case "same-line cut order" `Quick test_machine_same_line_prefix_cut;
          Alcotest.test_case "crash candidates" `Quick test_machine_crash_candidates;
          Alcotest.test_case "shutdown concrete" `Quick test_machine_shutdown_concrete;
          Alcotest.test_case "inherited chain" `Quick test_machine_inherited_chain;
          Alcotest.test_case "acquire joins cv" `Quick test_machine_acquire_joins_cv;
          Alcotest.test_case "nt durable after fence" `Quick
            test_machine_nt_store_durable_after_fence;
          Alcotest.test_case "nt needs fence" `Quick
            test_machine_nt_store_not_durable_without_fence;
          Alcotest.test_case "nt precision" `Quick test_machine_nt_does_not_cover_neighbours;
        ] );
      ( "machine-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_drain_fifo;
            prop_flushed_survives;
            prop_sb_legal_orders;
            prop_sb_forward_newest;
          ] );
    ]
