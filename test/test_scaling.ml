(* Tests for the scaling observatory: per-domain timeline
   reconstruction (busy/wait/idle classification, edge cases, ASCII and
   SVG rendering, idle-gap histograms), the jobs-sweep analyzer (Amdahl
   fit, loss decomposition, the non-timing-projection determinism
   check) and the multi-metric scaling gate.  The crux contract is
   asserted end to end on a real engine run: the non-timing projection
   of a sweep level is byte-identical at jobs=1 and jobs=4. *)

module Timeline = Observe.Timeline
module Scaling = Observe.Scaling
module Trace = Observe.Trace
module Bench_gate = Pm_corpus.Bench_gate
module Json = Pm_corpus.Json
module Runner = Pm_harness.Runner
module Report = Pm_harness.Report

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Synthetic traces                                                     *)

let span ?(cat = "scenario") ?(pid = 0) ~tid ~ts ~dur name =
  {
    Trace.name;
    cat;
    ph = Trace.Complete;
    ts_us = ts;
    dur_us = dur;
    pid;
    tid;
    args = [];
  }

(* An engine-shaped 2-lane trace: workers alive [0,100], lane 0 busy
   [10,40] and [50,80], lane 1 busy [20,60]; plus the batch span on the
   main lane (cat engine, not a work span). *)
let engine_trace =
  [
    span ~cat:"engine" ~tid:0 ~ts:0 ~dur:100 "worker";
    span ~tid:0 ~ts:10 ~dur:30 "s0";
    span ~tid:0 ~ts:50 ~dur:30 "s1";
    span ~cat:"engine" ~tid:1 ~ts:0 ~dur:100 "worker";
    span ~tid:1 ~ts:20 ~dur:40 "s2";
    span ~cat:"engine" ~tid:0 ~ts:0 ~dur:100 "batch";
  ]

let reconstruct events =
  match Timeline.of_events events with
  | Ok t -> t
  | Error msg -> Alcotest.failf "of_events: %s" msg

let lane t ~tid =
  match
    List.find_opt (fun l -> l.Timeline.tl_tid = tid) t.Timeline.t_lanes
  with
  | Some l -> l
  | None -> Alcotest.failf "no lane tid=%d" tid

let test_timeline_classification () =
  let t = reconstruct engine_trace in
  check_int "two lanes" 2 (List.length t.Timeline.t_lanes);
  check_int "makespan" 100 t.Timeline.t_makespan_us;
  let l0 = lane t ~tid:0 and l1 = lane t ~tid:1 in
  check_int "lane0 busy" 60 l0.Timeline.tl_busy_us;
  check_int "lane0 wait" 40 l0.Timeline.tl_wait_us;
  check_int "lane0 idle" 0 l0.Timeline.tl_idle_us;
  check_int "lane0 spans" 2 l0.Timeline.tl_spans;
  check_int "lane1 busy" 40 l1.Timeline.tl_busy_us;
  check_int "lane1 wait" 60 l1.Timeline.tl_wait_us;
  check_int "critical path" 60 t.Timeline.t_critical_path_us;
  check "straggler is lane 0 (busy ends at 80 vs 60)" true
    (t.Timeline.t_straggler = Some (0, 0));
  check_int "straggler tail" 20 t.Timeline.t_straggler_tail_us;
  (* 10us gap between lane0's busy segments *)
  check "lane0 gaps" true (l0.Timeline.tl_gaps = [ 10 ]);
  check_int "lane0 max gap" 10 (Timeline.max_gap_us l0);
  check "gap histogram bucket <=16us" true
    (Timeline.gap_histogram l0 = [ (16, 1) ]);
  check_str "gap label" "<=16us:1" (Timeline.histogram_label l0);
  check_str "gap-free label" "-" (Timeline.histogram_label l1)

let test_timeline_out_of_order () =
  (* The same trace, reversed and shuffled: reconstruction must not
     depend on event order. *)
  let t = reconstruct engine_trace in
  let t' = reconstruct (List.rev engine_trace) in
  check "order-independent" true
    (List.map
       (fun l -> (l.Timeline.tl_tid, l.Timeline.tl_busy_us, l.Timeline.tl_wait_us))
       t.Timeline.t_lanes
    = List.map
        (fun l -> (l.Timeline.tl_tid, l.Timeline.tl_busy_us, l.Timeline.tl_wait_us))
        t'.Timeline.t_lanes)

let test_timeline_zero_length_spans () =
  (* 0-us parent and child spans: counted as work spans, contribute no
     busy time, and never crash the interval algebra. *)
  let events =
    [
      span ~cat:"engine" ~tid:0 ~ts:0 ~dur:50 "worker";
      span ~tid:0 ~ts:10 ~dur:0 "instantaneous";
      span ~tid:0 ~ts:20 ~dur:10 "real";
      span ~cat:"engine" ~tid:0 ~ts:10 ~dur:0 "worker";
    ]
  in
  let t = reconstruct events in
  let l = lane t ~tid:0 in
  check_int "zero-length spans still counted" 2 l.Timeline.tl_spans;
  check_int "busy excludes 0-us spans" 10 l.Timeline.tl_busy_us;
  check_int "wait" 40 l.Timeline.tl_wait_us

let test_timeline_single_lane () =
  let events = [ span ~tid:0 ~ts:5 ~dur:20 "only" ] in
  let t = reconstruct events in
  check_int "one lane" 1 (List.length t.Timeline.t_lanes);
  let l = lane t ~tid:0 in
  (* No worker span: the lane's own extent is the alive cover. *)
  check_int "busy" 20 l.Timeline.tl_busy_us;
  check_int "no wait" 0 l.Timeline.tl_wait_us;
  check "single lane is its own straggler, tail 0" true
    (t.Timeline.t_straggler = Some (0, 0) && t.Timeline.t_straggler_tail_us = 0)

let test_timeline_top_level_fallback () =
  (* A trace with no "scenario"-cat spans: top-level spans become the
     work cover (nested children are not double-counted). *)
  let events =
    [
      span ~cat:"phase" ~tid:0 ~ts:0 ~dur:40 "outer";
      span ~cat:"phase" ~tid:0 ~ts:10 ~dur:10 "inner";
    ]
  in
  let t = reconstruct events in
  let l = lane t ~tid:0 in
  check_int "only the outer span is work" 1 l.Timeline.tl_spans;
  check_int "busy = outer extent" 40 l.Timeline.tl_busy_us

let test_timeline_empty_rejected () =
  (match Timeline.of_events [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty trace accepted");
  (* Instants alone are not spans either. *)
  match
    Timeline.of_events
      [ { (span ~tid:0 ~ts:0 ~dur:0 "i") with Trace.ph = Trace.Instant } ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "instants-only trace accepted"

let test_timeline_ascii () =
  let t = reconstruct engine_trace in
  let chart = Timeline.ascii ~width:20 t in
  check "chart has busy cells" true (String.contains chart '#');
  check "chart has wait cells" true (String.contains chart '.');
  check "legend present" true
    (let re = Str.regexp_string "pool utilization" in
     try ignore (Str.search_forward re chart 0); true
     with Not_found -> false);
  check_int "one row per lane + legend" 3
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' chart)))

let test_timeline_svg_well_formed () =
  let t = reconstruct engine_trace in
  let doc = Timeline.svg t in
  (match Timeline.check_svg doc with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "emitted SVG rejected: %s" msg);
  (* The checker is a real checker: unbalanced and ill-quoted documents
     are rejected. *)
  check "unbalanced rejected" true
    (Result.is_error (Timeline.check_svg "<svg><rect></svg>"));
  check "unquoted attr rejected" true
    (Result.is_error (Timeline.check_svg "<svg width=3></svg>"));
  check "bad entity rejected" true
    (Result.is_error (Timeline.check_svg "<svg>&nope;</svg>"));
  check "non-svg root rejected" true
    (Result.is_error (Timeline.check_svg "<html></html>"));
  check "prolog accepted" true
    (Result.is_ok (Timeline.check_svg "<?xml version=\"1.0\"?><svg></svg>"))

let test_timeline_lane_fields_flat () =
  let t = reconstruct engine_trace in
  List.iter
    (fun l ->
      let line = Json.encode_obj (Timeline.lane_fields t l) in
      match Trace.check_json line with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "lane JSONL rejected: %s" msg)
    t.Timeline.t_lanes

(* ------------------------------------------------------------------ *)
(* Jobs-sweep analysis                                                  *)

let level ?(scenarios = 28) ?(races = 4) ~jobs ~elapsed_s () =
  {
    Scaling.v_jobs = jobs;
    v_elapsed_s = elapsed_s;
    v_cpu_s = elapsed_s;
    v_scenarios = scenarios;
    v_completed = scenarios;
    v_faulted = 0;
    v_executions = 2 * scenarios;
    v_ops = 100 * scenarios;
    v_races = races;
    v_witnesses = races;
    v_snapshot_bytes = 0;
    v_queue_wait_us = 0;
    v_snapshot_us = 0;
    v_merge_us = 0;
    v_gc_minor_words = 0;
    v_gc_major_words = 0;
  }

let analyze levels =
  match Scaling.analyze ~program:"toy" levels with
  | Ok a -> a
  | Error msg -> Alcotest.failf "analyze: %s" msg

let test_scaling_perfect () =
  (* T(n) = T1/n: speedup n, efficiency 1, serial fraction 0. *)
  let a =
    analyze
      [ level ~jobs:1 ~elapsed_s:1.0 (); level ~jobs:2 ~elapsed_s:0.5 ();
        level ~jobs:4 ~elapsed_s:0.25 () ]
  in
  let _, d4 = List.nth a.Scaling.a_levels 2 in
  check "speedup 4 at jobs=4" true (abs_float (d4.Scaling.d_speedup -. 4.) < 1e-9);
  check "efficiency 1" true (abs_float (d4.Scaling.d_efficiency -. 1.) < 1e-9);
  (match a.Scaling.a_serial_fraction with
  | Some s -> check "serial fraction ~0" true (s < 1e-9)
  | None -> Alcotest.fail "no serial fraction fitted")

let test_scaling_flat () =
  (* T(n) = T1: no parallelism at all, serial fraction 1. *)
  let a =
    analyze
      [ level ~jobs:1 ~elapsed_s:1.0 (); level ~jobs:4 ~elapsed_s:1.0 () ]
  in
  (match a.Scaling.a_serial_fraction with
  | Some s -> check "serial fraction ~1" true (abs_float (s -. 1.) < 1e-9)
  | None -> Alcotest.fail "no serial fraction fitted");
  let _, d4 = List.nth a.Scaling.a_levels 1 in
  check "lost domain-seconds" true (abs_float (d4.Scaling.d_lost_s -. 3.) < 1e-9)

let test_scaling_single_level () =
  let a = analyze [ level ~jobs:2 ~elapsed_s:0.5 () ] in
  check "single level: no fit" true (a.Scaling.a_serial_fraction = None);
  check_int "reference is itself" 2 a.Scaling.a_reference_jobs;
  check "analyze [] errors" true
    (Result.is_error (Scaling.analyze ~program:"toy" []));
  check "duplicate jobs rejected" true
    (Result.is_error
       (Scaling.analyze ~program:"toy"
          [ level ~jobs:2 ~elapsed_s:0.5 (); level ~jobs:2 ~elapsed_s:0.6 () ]))

let test_scaling_loss_centers () =
  let slow =
    { (level ~jobs:4 ~elapsed_s:1.0 ()) with
      Scaling.v_queue_wait_us = 2_000_000;
      v_snapshot_us = 500_000;
      v_merge_us = 100_000;
    }
  in
  let a = analyze [ level ~jobs:1 ~elapsed_s:1.0 (); slow ] in
  (match a.Scaling.a_loss_centers with
  | (top_name, top_s) :: _ ->
      check_str "queue-wait dominates" "engine/queue_wait" top_name;
      check "2 seconds charged" true (abs_float (top_s -. 2.) < 1e-9)
  | [] -> Alcotest.fail "no loss centers");
  check "residual labelled other" true
    (List.mem_assoc "other" a.Scaling.a_loss_centers)

let test_scaling_check () =
  let l1 = level ~jobs:1 ~elapsed_s:1.0 () in
  let l4 = level ~jobs:4 ~elapsed_s:0.9 () in
  check "matching projections pass" true
    (Scaling.check ~program:"toy" [ l1; l4 ] = Ok ());
  let diverged = { l4 with Scaling.v_races = 5 } in
  (match Scaling.check ~program:"toy" [ l1; diverged ] with
  | Error msg ->
      check "divergence names the field" true
        (let re = Str.regexp_string "races" in
         try ignore (Str.search_forward re msg 0); true
         with Not_found -> false)
  | Ok () -> Alcotest.fail "diverging races passed the check");
  (* Timing may differ arbitrarily without tripping the check. *)
  let slow = { l4 with Scaling.v_elapsed_s = 99.; v_gc_minor_words = 123 } in
  check "timing divergence tolerated" true
    (Scaling.check ~program:"toy" [ l1; slow ] = Ok ())

let test_scaling_fields_projection () =
  let l = level ~jobs:2 ~elapsed_s:0.5 () in
  let a = analyze [ l ] in
  let pair = List.hd a.Scaling.a_levels in
  let full = Scaling.fields ~program:"toy" pair in
  let proj = Scaling.fields ~timing:false ~program:"toy" pair in
  (* The projection is a strict prefix of the full row. *)
  check_int "projection size" 10 (List.length proj);
  check "projection is a prefix" true
    (List.filteri (fun i _ -> i < List.length proj) full = proj);
  check "full row carries timing" true (List.mem_assoc "efficiency" full);
  check "projection does not" true (not (List.mem_assoc "elapsed_s" proj));
  (* Both encode as valid flat JSON. *)
  check "full encodes" true (Result.is_ok (Trace.check_json (Json.encode_obj full)));
  check "proj encodes" true (Result.is_ok (Trace.check_json (Json.encode_obj proj)))

(* ------------------------------------------------------------------ *)
(* The scaling gate                                                     *)

let entry ~bench ~jobs ~speedup ~efficiency =
  {
    Bench_gate.e_key = Printf.sprintf "%s[jobs=%d]" bench jobs;
    e_fields =
      [ ("bench", `S bench); ("jobs", `I jobs); ("speedup", `F speedup);
        ("efficiency", `F efficiency) ];
  }

let test_gate_pass_and_regress () =
  let baseline = [ entry ~bench:"CCEH" ~jobs:2 ~speedup:1.5 ~efficiency:0.75 ] in
  let same =
    Bench_gate.diff_metrics ~metrics:Bench_gate.scaling_metrics ~tolerance:10.
      ~baseline ~current:baseline ()
  in
  check "self-compare passes" true same.Bench_gate.passed;
  check_int "one verdict per metric" 2 (List.length same.Bench_gate.verdicts);
  let worse = [ entry ~bench:"CCEH" ~jobs:2 ~speedup:1.0 ~efficiency:0.5 ] in
  let o =
    Bench_gate.diff_metrics ~metrics:Bench_gate.scaling_metrics ~tolerance:10.
      ~baseline ~current:worse ()
  in
  check "collapse fails" true (not o.Bench_gate.passed);
  check_int "both metrics regressed" 2
    (List.length
       (List.filter (fun v -> v.Bench_gate.v_regressed) o.Bench_gate.verdicts));
  (* A better current never regresses a higher-is-better metric. *)
  let better = [ entry ~bench:"CCEH" ~jobs:2 ~speedup:2.0 ~efficiency:1.0 ] in
  check "improvement passes" true
    (Bench_gate.diff_metrics ~metrics:Bench_gate.scaling_metrics ~tolerance:10.
       ~baseline ~current:better ())
      .Bench_gate.passed

let test_gate_missing_metric () =
  let baseline = [ entry ~bench:"CCEH" ~jobs:2 ~speedup:1.5 ~efficiency:0.75 ] in
  let no_eff =
    [ { (List.hd baseline) with
        Bench_gate.e_fields =
          [ ("bench", `S "CCEH"); ("jobs", `I 2); ("speedup", `F 1.5) ];
      } ]
  in
  let o =
    Bench_gate.diff_metrics ~metrics:Bench_gate.scaling_metrics ~tolerance:10.
      ~baseline ~current:no_eff ()
  in
  check "missing metric fails" true (not o.Bench_gate.passed);
  check "named key.metric" true
    (List.mem "CCEH[jobs=2].efficiency" o.Bench_gate.missing);
  (* A missing row fails too. *)
  let o =
    Bench_gate.diff_metrics ~metrics:Bench_gate.scaling_metrics ~tolerance:10.
      ~baseline ~current:[] ()
  in
  check "missing bench fails" true (not o.Bench_gate.passed)

(* ------------------------------------------------------------------ *)
(* The crux, end to end: jobs 1 vs 4 non-timing byte-identity           *)

let run_level ~jobs p =
  Observe.Attribution.enable ();
  let att0 = Observe.Attribution.snapshot () in
  let o = Runner.model_check_outcome ~jobs p in
  let att = Observe.Attribution.diff att0 (Observe.Attribution.snapshot ()) in
  Observe.Attribution.disable ();
  let stats = o.Runner.o_stats in
  let r = o.Runner.o_report in
  let ex =
    Pm_corpus.Witness.of_outcome ~program:p.Pm_harness.Program.name o
  in
  let snapshot_bytes, queue_wait_us, snapshot_us, merge_us, gc_minor, gc_major =
    Scaling.of_attribution att
  in
  {
    Scaling.v_jobs = stats.Pm_harness.Engine.jobs;
    v_elapsed_s = stats.Pm_harness.Engine.elapsed_s;
    v_cpu_s = stats.Pm_harness.Engine.cpu_s;
    v_scenarios = stats.Pm_harness.Engine.scenarios;
    v_completed = stats.Pm_harness.Engine.completed;
    v_faulted = stats.Pm_harness.Engine.faulted;
    v_executions = stats.Pm_harness.Engine.executions;
    v_ops = stats.Pm_harness.Engine.ops;
    v_races = List.length (Report.real r);
    v_witnesses = List.length ex.Pm_corpus.Witness.witnesses;
    v_snapshot_bytes = snapshot_bytes;
    v_queue_wait_us = queue_wait_us;
    v_snapshot_us = snapshot_us;
    v_merge_us = merge_us;
    v_gc_minor_words = gc_minor;
    v_gc_major_words = gc_major;
  }

let test_projection_jobs_identity () =
  let p = Pm_benchmarks.Memcached.program in
  let l1 = run_level ~jobs:1 p in
  let l4 = run_level ~jobs:4 p in
  (match Scaling.check ~program:"Memcached" [ l1; l4 ] with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "projection diverged: %s" msg);
  (* Byte-level: encode both projections minus the jobs field. *)
  let zero =
    { Scaling.d_speedup = 0.; d_efficiency = 0.; d_serial_fraction = None;
      d_lost_s = 0. }
  in
  let line l =
    Json.encode_obj
      (List.filter
         (fun (k, _) -> k <> "jobs")
         (Scaling.fields ~timing:false ~program:"Memcached" (l, zero)))
  in
  check_str "byte-identical projection at jobs 1 and 4" (line l1) (line l4);
  check "the run found races" true (l1.Scaling.v_races > 0)

let () =
  Alcotest.run "scaling"
    [
      ( "timeline",
        [
          Alcotest.test_case "busy/wait/idle classification" `Quick
            test_timeline_classification;
          Alcotest.test_case "out-of-order events" `Quick
            test_timeline_out_of_order;
          Alcotest.test_case "0-us parent/child spans" `Quick
            test_timeline_zero_length_spans;
          Alcotest.test_case "single-lane trace" `Quick test_timeline_single_lane;
          Alcotest.test_case "top-level fallback" `Quick
            test_timeline_top_level_fallback;
          Alcotest.test_case "empty trace rejected" `Quick
            test_timeline_empty_rejected;
          Alcotest.test_case "ascii chart" `Quick test_timeline_ascii;
          Alcotest.test_case "svg well-formedness" `Quick
            test_timeline_svg_well_formed;
          Alcotest.test_case "lane JSONL" `Quick test_timeline_lane_fields_flat;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "perfect scaling" `Quick test_scaling_perfect;
          Alcotest.test_case "flat scaling" `Quick test_scaling_flat;
          Alcotest.test_case "single level" `Quick test_scaling_single_level;
          Alcotest.test_case "loss centers" `Quick test_scaling_loss_centers;
          Alcotest.test_case "determinism check" `Quick test_scaling_check;
          Alcotest.test_case "field projection" `Quick
            test_scaling_fields_projection;
        ] );
      ( "gate",
        [
          Alcotest.test_case "pass and regress" `Quick test_gate_pass_and_regress;
          Alcotest.test_case "missing metric" `Quick test_gate_missing_metric;
        ] );
      ( "engine",
        [
          Alcotest.test_case "jobs 1v4 projection byte-identity" `Quick
            test_projection_jobs_identity;
        ] );
    ]
