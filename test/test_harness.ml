(* Tests for the crash-testing harness: flush-point counting, the
   model-checking and random modes, report deduplication and benign
   accounting. *)

open Pm_runtime
module Runner = Pm_harness.Runner
module Report = Pm_harness.Report
module Program = Pm_harness.Program
module Scenario = Pm_harness.Scenario

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A toy program with one racy field and one safe (atomic) field. *)
let toy =
  Program.make ~name:"toy"
    ~setup:(fun () ->
      let a = Pmem.alloc ~align:64 16 in
      Pmem.set_root 0 a)
    ~pre:(fun () ->
      let a = Pmem.get_root 0 in
      Pmem.store ~label:"racy" a 1L;
      Pmem.store ~label:"safe" ~atomic:Px86.Access.Release (a + 8) 2L;
      Pmem.clflush a;
      Pmem.mfence ())
    ~post:(fun () ->
      let a = Pmem.get_root 0 in
      ignore (Pmem.load a);
      ignore (Pmem.load ~atomic:Px86.Access.Acquire (a + 8)))
    ()

let test_count_flush_points () =
  (* pre has exactly clflush + mfence. *)
  check_int "two flush points" 2 (Runner.count_flush_points toy)

let test_model_check_toy () =
  let r = Runner.model_check toy in
  check_int "3 executions (2 points + at-end)" 3 r.Report.executions;
  Alcotest.(check (list string)) "only the racy field" [ "racy" ]
    (List.map (fun (f : Report.finding) -> f.Report.label) (Report.real r))

let test_run_once_no_crash_no_post () =
  (* A targeted plan beyond the program's flush points never fires: no
     crash, no recovery, no races. *)
  let d, pre, post = Runner.run_once ~plan:(Executor.Crash_before_flush 99) toy in
  check "completed" true (pre.Executor.outcome = Executor.Completed);
  check "no post" true (post = None);
  check_int "no races" 0 (List.length (Yashme.Detector.races d))

let test_random_mode_runs () =
  let r = Runner.random_mode ~execs:5 toy in
  check_int "five executions" 5 r.Report.executions;
  check "finds the race eventually" true
    (List.exists (fun (f : Report.finding) -> f.Report.label = "racy") r.Report.findings)

let test_random_mode_deterministic () =
  let a = Runner.random_mode ~execs:3 toy in
  let b = Runner.random_mode ~execs:3 toy in
  check_int "same raw count" a.Report.raw_races b.Report.raw_races

let test_baseline_leq_prefix_on_suite () =
  let opts mode = { Runner.default_options with mode } in
  let p = Pm_benchmarks.Cceh.program in
  let rp = Runner.model_check ~options:(opts Yashme.Detector.Prefix) p in
  let rb = Runner.model_check ~options:(opts Yashme.Detector.Baseline) p in
  check "baseline finds no more than prefix" true
    (List.length (Report.real rb) <= List.length (Report.real rp))

(* A recovery procedure with its own persistency race: the repair
   marker is checked then set; only a crash inside the recovery (a
   two-crash scenario) exposes it to the next recovery. *)
let buggy_recovery =
  Program.make ~name:"buggy-recovery"
    ~setup:(fun () ->
      let a = Pmem.alloc ~align:64 16 in
      Pmem.set_root 0 a)
    ~pre:(fun () ->
      let a = Pmem.get_root 0 in
      Pmem.store ~label:"data" a 1L;
      Pmem.clflush a;
      Pmem.mfence ())
    ~post:(fun () ->
      let a = Pmem.get_root 0 in
      ignore (Pmem.load a);
      if Pmem.load (a + 8) = 0L then begin
        Pmem.store ~label:"repair-marker" (a + 8) 1L;
        Pmem.clflush (a + 8);
        Pmem.mfence ()
      end)
    ()

let test_recovery_race_needs_two_crashes () =
  let labels r =
    List.map (fun (f : Report.finding) -> f.Report.label) (Report.real r)
  in
  let single = labels (Runner.model_check buggy_recovery) in
  let double = labels (Runner.model_check_recovery buggy_recovery) in
  check "single-crash misses the recovery race" false
    (List.mem "repair-marker" single);
  check "two-crash finds it" true (List.mem "repair-marker" double);
  check "two-crash also finds the pre-crash race" true (List.mem "data" double)

let test_recovery_mc_on_clean_recovery () =
  (* The toy program's recovery only reads — it has no flush points, so
     there are no two-crash scenarios to explore and nothing to report
     (single-crash findings come from [model_check]). *)
  let r = Runner.model_check_recovery toy in
  check_int "no crashy-recovery executions" 0 r.Report.executions;
  check_int "no findings" 0 (List.length r.Report.findings)

(* ------------------------------------------------------------------ *)
(* Trace + witness                                                      *)

let test_trace_records_commits () =
  let trace, observer = Px86.Trace.recorder () in
  let _ =
    Executor.run ~observer ~exec_id:0 (fun () ->
        let a = Pmem.alloc ~align:64 8 in
        Pmem.store a 1L;
        Pmem.clflush a;
        Pmem.mfence ();
        Pmem.store a 2L;
        Pmem.clwb a;
        Pmem.sfence ())
  in
  let entries = Px86.Trace.entries trace in
  let count f = List.length (List.filter f entries) in
  check_int "two stores" 2 (count (function Px86.Trace.Store _ -> true | _ -> false));
  check_int "one clflush" 1 (count (function Px86.Trace.Clflush _ -> true | _ -> false));
  check_int "one clwb applied" 1
    (count (function Px86.Trace.Clwb_applied _ -> true | _ -> false))

let test_trace_prefix_filter () =
  let trace, observer = Px86.Trace.recorder () in
  let _ =
    Executor.run ~observer ~exec_id:0 (fun () ->
        let a = Pmem.alloc ~align:64 16 in
        Pmem.store a 1L;
        Pmem.store (a + 8) 2L)
  in
  (* A CVpre covering only the first store's clock. *)
  let cvpre = Yashme_util.Clockvec.of_list [ (0, 1) ] in
  check_int "prefix stops at CVpre" 1 (List.length (Px86.Trace.prefix trace ~cvpre))

let test_witness_renders () =
  let detector, trace =
    Runner.run_once_traced ~plan:Executor.Crash_at_end toy
  in
  match Yashme.Detector.races detector with
  | [] -> Alcotest.fail "expected a race on the toy program"
  | race :: _ ->
      let w = Pm_harness.Witness.explain ~trace ~detector ~race () in
      check "mentions the racing field" true
        (String.length w > 100
        &&
        let rec contains i =
          i + 4 <= String.length w && (String.sub w i 4 = "racy" || contains (i + 1))
        in
        contains 0)

(* ------------------------------------------------------------------ *)
(* Report                                                               *)

let mk_race ?(benign = false) label =
  let store =
    { Px86.Event.seq = 1; tid = 0; lclk = 1; cv = Yashme_util.Clockvec.empty; addr = 0;
      size = 8; value = 0L; access = Px86.Access.Plain; nt = false; label = Some label }
  in
  { Yashme.Race.store; store_exec = 0; load_addr = 0; load_size = 8; load_tid = 0;
    load_exec = 1; committed = true; benign }

let test_dedup_by_label () =
  let r =
    Report.dedup ~program:"p" ~executions:1
      [ mk_race "a"; mk_race "a"; mk_race "b" ]
  in
  check_int "two findings" 2 (List.length r.Report.findings);
  check_int "raw count" 3 r.Report.raw_races;
  let a = List.find (fun (f : Report.finding) -> f.Report.label = "a") r.Report.findings in
  check_int "a seen twice" 2 a.Report.count

let test_benign_only_if_all_benign () =
  let r =
    Report.dedup ~program:"p" ~executions:1
      [ mk_race ~benign:true "a"; mk_race ~benign:false "a"; mk_race ~benign:true "b" ]
  in
  let find l = List.find (fun (f : Report.finding) -> f.Report.label = l) r.Report.findings in
  check "mixed label is real" false (find "a").Report.benign;
  check "all-benign label is benign" true (find "b").Report.benign;
  check_int "real list" 1 (List.length (Report.real r));
  check_int "benign list" 1 (List.length (Report.benign r))

let test_report_renders () =
  let r = Report.dedup ~program:"p" ~executions:2 [ mk_race "a" ] in
  let s = Report.to_string r in
  check "mentions program" true (String.length s > 0 && s.[0] = 'p')

(* The [variant] line is rendered ONLY for non-default variants, so
   every report and witness ever produced under the default model stays
   byte-identical. *)
let test_report_variant_line () =
  let contains hay needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  let default_r = Report.dedup ~program:"p" ~executions:2 [ mk_race "a" ] in
  check "default report has no variant line" false
    (contains (Report.to_string default_r) "[variant");
  let r =
    Report.dedup ~program:"p" ~variant:"fence-nop" ~executions:2
      [ mk_race "a" ]
  in
  check "non-default report names its variant" true
    (contains (Report.to_string r) "[variant fence-nop]");
  (* An explicit strict-tso label is the default: still no line. *)
  let r' =
    Report.dedup ~program:"p" ~variant:Px86.Variant.default_label ~executions:2
      [ mk_race "a" ]
  in
  Alcotest.(check string)
    "explicit strict-tso renders byte-identically"
    (Report.to_string default_r) (Report.to_string r');
  (* Same contract for the witness explanation. *)
  let detector, trace =
    Runner.run_once_traced ~plan:Executor.Crash_at_end toy
  in
  match Yashme.Detector.races detector with
  | [] -> Alcotest.fail "expected a race on the toy program"
  | race :: _ ->
      let plain = Pm_harness.Witness.explain ~trace ~detector ~race () in
      let strict =
        Pm_harness.Witness.explain ~variant:Px86.Variant.default_label ~trace
          ~detector ~race ()
      in
      let nop =
        Pm_harness.Witness.explain ~variant:"fence-nop" ~trace ~detector ~race
          ()
      in
      Alcotest.(check string) "explain: default == strict-tso" plain strict;
      check "explain: fence-nop adds the line" true
        (contains nop "[variant fence-nop]")

(* Composed options round-trip through the corpus field codec for every
   built-in variant (the pre-variant default path is covered by the
   corpus v1-compat test). *)
let test_options_fields_variant_roundtrip () =
  List.iter
    (fun (name, v, _) ->
      let o = { Scenario.default_options with Scenario.variant = v; seed = 9 } in
      match Scenario.options_of_fields (Scenario.options_fields o) with
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg)
      | Ok o' ->
          check (name ^ " options round-trip") true (o = o'))
    Px86.Variant.builtins;
  match
    Scenario.options_of_fields
      (("variant", `S "no-such-model")
      :: List.remove_assoc "variant"
           (Scenario.options_fields Scenario.default_options))
  with
  | Ok _ -> Alcotest.fail "unknown variant label must be rejected"
  | Error msg ->
      check "error names the label" true
        (let n = String.length msg in
         let rec go i =
           i + 13 <= n && (String.sub msg i 13 = "no-such-model" || go (i + 1))
         in
         go 0)

let test_unlabelled_dedup () =
  let store =
    { Px86.Event.seq = 1; tid = 0; lclk = 1; cv = Yashme_util.Clockvec.empty; addr = 4;
      size = 8; value = 0L; access = Px86.Access.Plain; nt = false; label = None }
  in
  let race =
    { Yashme.Race.store; store_exec = 0; load_addr = 4; load_size = 8; load_tid = 0;
      load_exec = 1; committed = true; benign = false }
  in
  Alcotest.(check string) "unlabelled key" "<unlabelled>" (Yashme.Race.dedup_key race)

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "count flush points" `Quick test_count_flush_points;
          Alcotest.test_case "model check toy" `Quick test_model_check_toy;
          Alcotest.test_case "plan misses -> no post" `Quick test_run_once_no_crash_no_post;
          Alcotest.test_case "random mode" `Quick test_random_mode_runs;
          Alcotest.test_case "random deterministic" `Quick test_random_mode_deterministic;
          Alcotest.test_case "baseline <= prefix" `Quick test_baseline_leq_prefix_on_suite;
        ] );
      ( "multi-crash",
        [
          Alcotest.test_case "recovery race needs two crashes" `Slow
            test_recovery_race_needs_two_crashes;
          Alcotest.test_case "clean recovery" `Slow test_recovery_mc_on_clean_recovery;
        ] );
      ( "trace-witness",
        [
          Alcotest.test_case "trace records commits" `Quick test_trace_records_commits;
          Alcotest.test_case "trace prefix filter" `Quick test_trace_prefix_filter;
          Alcotest.test_case "witness renders" `Quick test_witness_renders;
        ] );
      ( "report",
        [
          Alcotest.test_case "dedup by label" `Quick test_dedup_by_label;
          Alcotest.test_case "benign accounting" `Quick test_benign_only_if_all_benign;
          Alcotest.test_case "renders" `Quick test_report_renders;
          Alcotest.test_case "variant line only when non-default" `Quick
            test_report_variant_line;
          Alcotest.test_case "options variant round-trip" `Quick
            test_options_fields_variant_roundtrip;
          Alcotest.test_case "unlabelled key" `Quick test_unlabelled_dedup;
        ] );
    ]
