(* Tests for the engine observatory: per-scenario cost attribution
   (jobs-invariant projection, serialization) and the durable run
   ledger (schema round-trip, version gate, run comparison, file
   store).  The crux contract is asserted end to end: the attribution
   invariant projection is byte-identical across --jobs counts, and
   two identical-config ledger entries compare with zero non-timing
   deltas. *)

module Attribution = Observe.Attribution
module Ledger = Observe.Ledger
module Metrics = Observe.Metrics
module Log = Observe.Log
module Progress = Observe.Progress
module Runner = Pm_harness.Runner
module Report = Pm_harness.Report
module Program = Pm_harness.Program
module Json = Pm_corpus.Json
module Ledger_store = Pm_corpus.Ledger_store
module Bench_gate = Pm_corpus.Bench_gate

open Pm_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let toy =
  Program.make ~name:"toy"
    ~setup:(fun () ->
      let a = Pmem.alloc ~align:64 16 in
      Pmem.set_root 0 a)
    ~pre:(fun () ->
      let a = Pmem.get_root 0 in
      Pmem.store ~label:"racy" a 1L;
      Pmem.store ~label:"safe" ~atomic:Px86.Access.Release (a + 8) 2L;
      Pmem.clflush a;
      Pmem.mfence ())
    ~post:(fun () ->
      let a = Pmem.get_root 0 in
      ignore (Pmem.load a);
      ignore (Pmem.load ~atomic:Px86.Access.Acquire (a + 8)))
    ()

(* Every test leaves the global observe state as it found it. *)
let quiesce () =
  Attribution.disable ();
  Attribution.reset ();
  Metrics.disable ();
  Metrics.reset ();
  Log.set_quiet false;
  ignore (Progress.stop ())

(* The attribution table in its exported JSONL form: the byte string
   the jobs-invariance contract quantifies over. *)
let attribution_jsonl rows =
  String.concat "\n" (List.map (fun r -> Json.encode_obj (Attribution.fields r)) rows)

(* ------------------------------------------------------------------ *)
(* Attribution                                                          *)

let test_attribution_disabled_is_noop () =
  quiesce ();
  let c = Attribution.center ~units:"ops" "test/noop" in
  Attribution.charge c ~count:3 ~units:7 ~wall_us:11 ();
  Attribution.tick c;
  check_int "nothing recorded while disabled" 0
    (List.length (Attribution.snapshot ()));
  quiesce ()

let test_attribution_accumulates_and_merges () =
  quiesce ();
  Attribution.enable ();
  let c = Attribution.center ~units:"bytes" "test/merge" in
  (* charges from two domains land on different shards and sum on read *)
  let work () =
    for _ = 1 to 5 do
      Attribution.charge c ~count:1 ~units:10 ~wall_us:2 ()
    done
  in
  let d = Domain.spawn work in
  work ();
  Domain.join d;
  (match Attribution.snapshot () with
  | [ r ] ->
      check_str "center name" "test/merge" r.Attribution.r_center;
      check_int "counts sum across domains" 10 r.Attribution.r_count;
      check_int "units sum across domains" 100 r.Attribution.r_units;
      check_int "wall sums across domains" 20 r.Attribution.r_wall_us
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows));
  quiesce ()

let test_attribution_diff_and_registry () =
  quiesce ();
  Attribution.enable ();
  (* the registry is find-or-create: same name, same cells *)
  let a = Attribution.center ~units:"ops" "test/diff" in
  let a' = Attribution.center "test/diff" in
  Attribution.charge a ~units:5 ();
  Attribution.charge a' ~units:5 ();
  let before = Attribution.snapshot () in
  Attribution.charge a ~count:2 ~units:3 ();
  let d = Attribution.diff before (Attribution.snapshot ()) in
  (match d with
  | [ r ] ->
      check_int "diff count" 2 r.Attribution.r_count;
      check_int "diff units" 3 r.Attribution.r_units
  | rows -> Alcotest.failf "expected one delta row, got %d" (List.length rows));
  check "no-change diff is empty" true
    (Attribution.diff before before = []);
  quiesce ()

let test_attribution_fields_roundtrip () =
  let row =
    {
      Attribution.r_center = "px86/snapshot_copy";
      r_units_label = "bytes";
      r_volatile_units = false;
      r_count = 82;
      r_units = 465760;
      r_wall_us = 1234;
    }
  in
  (match Attribution.of_fields (Attribution.fields row) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check_str "center" row.Attribution.r_center r.Attribution.r_center;
      check_int "count" row.Attribution.r_count r.Attribution.r_count;
      check_int "units" row.Attribution.r_units r.Attribution.r_units;
      (* wall clocks are deliberately not serialized *)
      check_int "wall not serialized" 0 r.Attribution.r_wall_us);
  (* volatile units encode as null and decode back as volatile *)
  let gc = { row with Attribution.r_center = "gc/minor";
             r_units_label = "words"; r_volatile_units = true } in
  (match Attribution.of_fields (Attribution.fields gc) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check "volatile flag survives" true r.Attribution.r_volatile_units;
      check_int "volatile units drop to zero" 0 r.Attribution.r_units);
  match Attribution.of_fields [ ("bench", `S "CCEH") ] with
  | Ok _ -> Alcotest.fail "non-attribution row accepted"
  | Error _ -> ()

let test_attribution_jobs_invariant () =
  quiesce ();
  Attribution.enable ();
  ignore (Runner.model_check_outcome ~jobs:1 toy);
  let r1 = Attribution.snapshot () in
  Attribution.reset ();
  ignore (Runner.model_check_outcome ~jobs:4 toy);
  let r4 = Attribution.snapshot () in
  check "toy charged something" true (r1 <> []);
  check "engine work recorded" true
    (List.exists (fun r -> r.Attribution.r_center = "engine/work") r1);
  check "snapshot copying recorded" true
    (List.exists (fun r -> r.Attribution.r_center = "px86/snapshot_copy") r1);
  check_str "invariant projection byte-identical for jobs=1 vs jobs=4"
    (Attribution.to_string ~timing:false r1)
    (Attribution.to_string ~timing:false r4);
  check_str "exported JSONL byte-identical for jobs=1 vs jobs=4"
    (attribution_jsonl r1) (attribution_jsonl r4);
  quiesce ()

let test_report_identical_with_attribution_on () =
  quiesce ();
  let plain =
    Report.to_string (Runner.model_check_outcome ~jobs:2 toy).Runner.o_report
  in
  Attribution.enable ();
  let loud =
    Report.to_string (Runner.model_check_outcome ~jobs:2 toy).Runner.o_report
  in
  check_str "race report byte-identical with attribution on" plain loud;
  quiesce ()

(* ------------------------------------------------------------------ *)
(* Ledger schema                                                        *)

let entry =
  {
    Ledger.e_version = Ledger.version;
    e_run = "r1";
    e_ts = 1754600000.25;
    e_program = "CCEH";
    e_variant = "strict-tso";
    e_mode = "mc";
    e_jobs = 2;
    e_seed = 1;
    e_scenarios = 81;
    e_completed = 81;
    e_faulted = 0;
    e_diverged = 0;
    e_executions = 162;
    e_ops = 20054;
    e_races = 2;
    e_benign = 0;
    e_raw_races = 1452;
    e_recovery_failures = 0;
    e_witnesses = 2;
    e_elapsed_s = 0.05;
    e_cpu_s = 0.09;
    e_metrics_digest = "00baadf00dbaad00";
    e_coverage_digest = "00c0ffeec0ffee00";
    e_cost =
      [
        { Ledger.c_center = "engine/work"; c_count = 81; c_units = 162;
          c_wall_us = 5000 };
        { Ledger.c_center = "px86/snapshot_copy"; c_count = 82;
          c_units = 465760; c_wall_us = 0 };
      ];
  }

let test_ledger_roundtrip () =
  (* entry -> fields -> JSONL -> fields -> entry, through the same
     codec the store uses *)
  let line = Json.encode_obj (Ledger.fields entry) in
  match Json.decode_obj line with
  | Error e -> Alcotest.fail e
  | Ok fields -> (
      match Ledger.of_fields fields with
      | Error e -> Alcotest.fail e
      | Ok e -> check "round-trip is the identity" true (e = entry))

let test_ledger_version_gate () =
  let newer =
    ("v", `I 99)
    :: List.filter (fun (k, _) -> k <> "v") (Ledger.fields entry)
  in
  (match Ledger.of_fields newer with
  | Ok _ -> Alcotest.fail "future-version line accepted"
  | Error e ->
      check "error names the version skew" true
        (String.length e > 0
        && Str.string_match (Str.regexp ".*newer.*") e 0));
  match Ledger.of_fields [ ("v", `I 0) ] with
  | Ok _ -> Alcotest.fail "version 0 accepted"
  | Error _ -> ()

let test_ledger_digests () =
  (* FNV-1a hashes every byte; sorting makes shard order irrelevant *)
  check_str "counter digest is order-independent"
    (Ledger.digest_counters [ ("a", 1); ("b", 2) ])
    (Ledger.digest_counters [ ("b", 2); ("a", 1) ]);
  check "distinct counters, distinct digests" true
    (Ledger.digest_counters [ ("a", 1) ]
    <> Ledger.digest_counters [ ("a", 2) ]);
  check_int "digest is 16 hex chars" 16
    (String.length (Ledger.digest_string "x"));
  (* long inputs differing only late still differ (Hashtbl.hash
     would sample a prefix and collide) *)
  let long tail = String.make 4096 'y' ^ tail in
  check "late bytes reach the digest" true
    (Ledger.digest_string (long "a") <> Ledger.digest_string (long "b"))

let test_ledger_field_classes () =
  check "ts is timing" true (Ledger.timing_field "ts");
  check "wall_us cost columns are timing" true
    (Ledger.timing_field "cc:engine/work:wall_us");
  check "gc charges are timing" true
    (Ledger.timing_field "cc:gc/minor:units");
  check "snapshot bytes are not timing" true
    (not (Ledger.timing_field "cc:px86/snapshot_copy:units"));
  check "races gate higher-is-better" true (Ledger.direction "races" = `Higher);
  check "elapsed gates lower-is-better" true
    (Ledger.direction "elapsed_s" = `Lower);
  check "scenarios gate neutrally" true
    (Ledger.direction "scenarios" = `Neutral);
  check "run is identity" true (Ledger.identity_field "run")

(* ------------------------------------------------------------------ *)
(* Ledger store                                                         *)

let with_temp_ledger f =
  let tmp = Filename.temp_file "yashme_ledger" ".jsonl" in
  Sys.remove tmp;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () -> f tmp)

let test_store_roundtrip_and_find () =
  with_temp_ledger (fun tmp ->
      Ledger_store.append tmp entry;
      Ledger_store.append tmp { entry with Ledger.e_run = "r2"; e_jobs = 4 };
      match Ledger_store.load tmp with
      | Error e -> Alcotest.fail e
      | Ok entries ->
          check_int "both runs load" 2 (List.length entries);
          check "first run survives append" true (List.hd entries = entry);
          (match Ledger_store.find entries "2" with
          | Ok e -> check_str "ordinal selects" "r2" e.Ledger.e_run
          | Error e -> Alcotest.fail e);
          (match Ledger_store.find entries "r1" with
          | Ok e -> check_int "label selects" 2 e.Ledger.e_jobs
          | Error e -> Alcotest.fail e);
          (match Ledger_store.find entries "9" with
          | Ok _ -> Alcotest.fail "out-of-range ordinal accepted"
          | Error _ -> ());
          match Ledger_store.find entries "nope" with
          | Ok _ -> Alcotest.fail "unknown label accepted"
          | Error _ -> ())

let test_store_positioned_errors () =
  with_temp_ledger (fun tmp ->
      (match Ledger_store.load tmp with
      | Ok _ -> Alcotest.fail "missing ledger accepted"
      | Error _ -> ());
      (* a future-version first line is a positioned decode error *)
      let oc = open_out tmp in
      output_string oc "{\"v\":99,\"run\":\"future\"}\n";
      close_out oc;
      (match Ledger_store.load tmp with
      | Ok _ -> Alcotest.fail "future-version ledger accepted"
      | Error e ->
          check "error is positioned" true
            (Str.string_match (Str.regexp "line 1:.*newer.*") e 0));
      (* a bad line after a good one is positioned at line 2 *)
      let oc = open_out tmp in
      output_string oc (Json.encode_obj (Ledger.fields entry));
      output_string oc "\nnot json\n";
      close_out oc;
      match Ledger_store.load tmp with
      | Ok _ -> Alcotest.fail "garbage second line accepted"
      | Error e ->
          check "second line positioned" true
            (Str.string_match (Str.regexp "line 2:") e 0))

(* ------------------------------------------------------------------ *)
(* Comparison                                                           *)

let test_compare_identical_runs () =
  (* identical configuration, different wall clocks: the acceptance
     contract — zero non-timing deltas, PASS *)
  let current =
    { entry with Ledger.e_run = "r2"; e_ts = 1754600100.5; e_elapsed_s = 0.07;
      e_cpu_s = 0.11 }
  in
  let c = Ledger_store.compare_runs ~baseline:entry ~current in
  check "identical-config compare passes" true c.Ledger_store.cmp_passed;
  check_int "no non-timing deltas" 0 (List.length c.Ledger_store.cmp_changed);
  check_int "no string mismatches" 0
    (List.length c.Ledger_store.cmp_mismatched);
  check "timing deltas are informational" true
    (List.for_all
       (fun v -> not v.Bench_gate.v_regressed)
       c.Ledger_store.cmp_timing);
  let rendered = Ledger_store.render ~a_label:"r1" ~b_label:"r2" c in
  check "render reports a clean compare" true
    (Str.string_match (Str.regexp ".*no non-timing deltas.*") rendered 0
     || String.length rendered > 0);
  check "render says PASS" true
    (Str.string_match (Str.regexp ".*ledger compare: PASS.*")
       (String.concat " " (String.split_on_char '\n' rendered)) 0)

let test_compare_direction_aware () =
  (* losing a race finding is the regression the gate exists for *)
  let fewer = { entry with Ledger.e_run = "r2"; e_races = 1 } in
  let c = Ledger_store.compare_runs ~baseline:entry ~current:fewer in
  check "lost race fails" true (not c.Ledger_store.cmp_passed);
  (match c.Ledger_store.cmp_changed with
  | [ v ] ->
      check_str "races flagged" "races" v.Bench_gate.v_key;
      check "flagged as regression" true v.Bench_gate.v_regressed
  | l -> Alcotest.failf "expected one delta, got %d" (List.length l));
  (* gaining one is a change, not a regression *)
  let more = { entry with Ledger.e_run = "r2"; e_races = 3 } in
  let c = Ledger_store.compare_runs ~baseline:entry ~current:more in
  check "gained race is not a regression" true
    (List.for_all
       (fun v -> not v.Bench_gate.v_regressed)
       c.Ledger_store.cmp_changed);
  (* but still fails the zero-delta gate *)
  check "gained race still fails zero-delta gate" true
    (not c.Ledger_store.cmp_passed);
  (* a neutral config delta (jobs) is a change, never a regression *)
  let j4 = { entry with Ledger.e_run = "r2"; e_jobs = 4 } in
  let c = Ledger_store.compare_runs ~baseline:entry ~current:j4 in
  check "neutral delta flagged" true
    (List.exists (fun v -> v.Bench_gate.v_key = "jobs")
       c.Ledger_store.cmp_changed);
  check "neutral delta never regresses" true
    (List.for_all
       (fun v -> not v.Bench_gate.v_regressed)
       c.Ledger_store.cmp_changed)

let test_compare_mismatched_config () =
  let other =
    { entry with Ledger.e_run = "r2"; e_variant = "fence-nop";
      e_metrics_digest = "deadbeefdeadbeef" }
  in
  let c = Ledger_store.compare_runs ~baseline:entry ~current:other in
  check "config mismatch fails" true (not c.Ledger_store.cmp_passed);
  Alcotest.(check (list string))
    "mismatched fields named" [ "variant"; "metrics_digest" ]
    (List.map (fun (k, _, _) -> k) c.Ledger_store.cmp_mismatched)

let test_compare_one_sided_cost_center () =
  (* a center recorded by only one run surfaces as a delta against 0 *)
  let fewer_centers = { entry with Ledger.e_run = "r2"; e_cost = [
      List.hd entry.Ledger.e_cost ] } in
  let c = Ledger_store.compare_runs ~baseline:entry ~current:fewer_centers in
  check "dropped center fails" true (not c.Ledger_store.cmp_passed);
  check "dropped center surfaces against zero" true
    (List.exists
       (fun v ->
         v.Bench_gate.v_key = "cc:px86/snapshot_copy:units"
         && v.Bench_gate.v_current = 0.)
       c.Ledger_store.cmp_changed)

let test_compare_golden_render () =
  let current =
    { entry with Ledger.e_run = "r2"; e_ts = entry.Ledger.e_ts;
      e_elapsed_s = entry.Ledger.e_elapsed_s; e_cpu_s = entry.Ledger.e_cpu_s;
      e_scenarios = 82; e_races = 1 }
  in
  let c = Ledger_store.compare_runs ~baseline:entry ~current in
  check_str "golden compare rendering"
    "ledger compare: r1 (baseline) vs r2 (current)\n\
    \  scenarios: 81 -> 82 (+1.2%) CHANGED\n\
    \  races: 2 -> 1 (-50.0%) REGRESSED\n\
     ledger compare: FAIL"
    (Ledger_store.render ~a_label:"r1" ~b_label:"r2" c)

(* ------------------------------------------------------------------ *)
(* Bench rows with extra metrics                                        *)

let test_bench_gate_ignores_extra_metrics () =
  (* rows grown by new columns (gc words, snapshot bytes) still diff
     cleanly against a baseline that predates them *)
  let old_row = "{\"bench\":\"CCEH\",\"jobs\":2,\"ops_per_s\":1000.0}\n" in
  let new_row =
    "{\"bench\":\"CCEH\",\"jobs\":2,\"ops_per_s\":1000.0,\
     \"gc_minor_words\":3877727,\"gc_major_words\":409765,\
     \"snapshot_bytes\":465760}\n"
  in
  let parse s =
    match Bench_gate.of_jsonl s with
    | Ok es -> es
    | Error e -> Alcotest.fail e
  in
  let o =
    Bench_gate.diff ~tolerance:0. ~baseline:(parse old_row)
      ~current:(parse new_row) ()
  in
  check "extra metrics in current rows don't gate" true o.Bench_gate.passed;
  let o' =
    Bench_gate.diff ~tolerance:0. ~baseline:(parse new_row)
      ~current:(parse old_row) ()
  in
  check "extra metrics in baseline rows don't gate" true o'.Bench_gate.passed

let test_bench_gate_judge_directions () =
  let v =
    Bench_gate.judge ~key:"k" ~metric:"elapsed_s" ~better:Bench_gate.Lower
      ~tolerance:10. ~baseline:1.0 ~current:1.2 ()
  in
  check "lower-is-better: +20%% beyond 10%% tolerance regresses" true
    v.Bench_gate.v_regressed;
  let v =
    Bench_gate.judge ~key:"k" ~metric:"elapsed_s" ~better:Bench_gate.Lower
      ~tolerance:10. ~baseline:1.0 ~current:0.5 ()
  in
  check "lower-is-better: speedup passes" true (not v.Bench_gate.v_regressed);
  let v =
    Bench_gate.judge ~key:"k" ~metric:"ops_per_s" ~better:Bench_gate.Higher
      ~tolerance:10. ~baseline:1.0 ~current:0.5 ()
  in
  check "higher-is-better: drop regresses" true v.Bench_gate.v_regressed

(* ------------------------------------------------------------------ *)
(* Progress heartbeat vs log level                                      *)

(* The heartbeat is stderr chatter: level [off] (--quiet) must silence
   it while the JSONL stream keeps flowing.  Asserted by swapping a
   temp file onto fd 2 around the emission. *)
let capture_stderr f =
  let tmp = Filename.temp_file "yashme_stderr" ".txt" in
  flush stderr;
  let saved = Unix.dup Unix.stderr in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stderr;
      Unix.dup2 saved Unix.stderr;
      Unix.close saved)
    f;
  let ic = open_in tmp in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  data

let test_progress_heartbeat_respects_quiet () =
  quiesce ();
  let jsonl = Filename.temp_file "yashme_progress" ".jsonl" in
  Log.set_quiet true;
  let quiet_err =
    capture_stderr (fun () ->
        Progress.start ~heartbeat:true ~jsonl ();
        Progress.batch 1;
        Progress.tick ~races:0 ~faulted:false ();
        ignore (Progress.stop ()))
  in
  check_str "quiet silences the heartbeat" "" quiet_err;
  check "jsonl stream unaffected by log level" true
    ((Unix.stat jsonl).Unix.st_size > 0);
  Log.set_quiet false;
  let loud_err =
    capture_stderr (fun () ->
        Progress.start ~heartbeat:true ();
        Progress.batch 1;
        Progress.tick ~races:0 ~faulted:false ();
        ignore (Progress.stop ()))
  in
  check "default level prints the heartbeat" true
    (Str.string_match (Str.regexp "yashme: progress") loud_err 0);
  Sys.remove jsonl;
  quiesce ()

let () =
  Alcotest.run "observatory"
    [
      ( "attribution",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_attribution_disabled_is_noop;
          Alcotest.test_case "accumulates and merges across domains" `Quick
            test_attribution_accumulates_and_merges;
          Alcotest.test_case "diff and find-or-create registry" `Quick
            test_attribution_diff_and_registry;
          Alcotest.test_case "fields round-trip" `Quick
            test_attribution_fields_roundtrip;
          Alcotest.test_case "jobs-invariant projection" `Slow
            test_attribution_jobs_invariant;
          Alcotest.test_case "report identical with attribution on" `Quick
            test_report_identical_with_attribution_on;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "fields round-trip" `Quick test_ledger_roundtrip;
          Alcotest.test_case "version gate" `Quick test_ledger_version_gate;
          Alcotest.test_case "digests" `Quick test_ledger_digests;
          Alcotest.test_case "field classes" `Quick test_ledger_field_classes;
        ] );
      ( "ledger-store",
        [
          Alcotest.test_case "append/load/find round-trip" `Quick
            test_store_roundtrip_and_find;
          Alcotest.test_case "positioned errors" `Quick
            test_store_positioned_errors;
        ] );
      ( "compare",
        [
          Alcotest.test_case "identical runs pass" `Quick
            test_compare_identical_runs;
          Alcotest.test_case "direction-aware verdicts" `Quick
            test_compare_direction_aware;
          Alcotest.test_case "mismatched config" `Quick
            test_compare_mismatched_config;
          Alcotest.test_case "one-sided cost center" `Quick
            test_compare_one_sided_cost_center;
          Alcotest.test_case "golden render" `Quick test_compare_golden_render;
        ] );
      ( "bench-rows",
        [
          Alcotest.test_case "extra metrics ignored" `Quick
            test_bench_gate_ignores_extra_metrics;
          Alcotest.test_case "judge directions" `Quick
            test_bench_gate_judge_directions;
        ] );
      ( "progress",
        [
          Alcotest.test_case "heartbeat respects --quiet" `Quick
            test_progress_heartbeat_respects_quiet;
        ] );
    ]
