(* Tests for the soak service: driver determinism (same seed, any jobs
   count), cooperative cancellation with checkpoint/resume byte
   identity, fault-storm quarantine, the manifest codec, and the
   crash-safety guards on the file formats the service reads back
   (corpus, ledger, progress stream). *)

module Soak = Pm_harness.Soak
module Scenario = Pm_harness.Scenario
module Json = Pm_corpus.Json
module Corpus = Pm_corpus.Corpus
module Witness = Pm_corpus.Witness
module Soak_store = Pm_corpus.Soak_store
module Ledger_store = Pm_corpus.Ledger_store
module Progress = Observe.Progress

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let () = Observe.Log.set_quiet true

(* A small soak configuration that finishes in a couple of rounds. *)
let small_config ?(streams = [ Pm_benchmarks.Memcached.soak_stream ])
    ?(seed = 11) ?(jobs = 1) ?(fault_budget = 3) ~max_ops () =
  {
    (Soak.default_config ~streams) with
    Soak.sk_options = { Scenario.default_options with Scenario.seed };
    sk_jobs = jobs;
    sk_ops_per_exec = 8;
    sk_fault_budget = fault_budget;
    sk_max_ops = Some max_ops;
    sk_checkpoint_every = 0;
  }

(* Drive a run collecting witnesses through a store sink, like the
   CLI does. *)
let run_with_sink ?resume ?preload ?stop_after_rounds cfg =
  let sink = Soak_store.sink () in
  Option.iter (Soak_store.preload sink) preload;
  let rounds = ref 0 in
  let on_batch triples =
    Soak_store.absorb sink triples;
    incr rounds;
    match stop_after_rounds with
    | Some n when !rounds >= n -> Soak.request_stop ()
    | _ -> ()
  in
  let r = Soak.run ?resume ~on_batch cfg in
  (r, sink)

(* ------------------------------------------------------------------ *)
(* Determinism                                                          *)

let test_same_seed_same_bytes () =
  let r1, s1 = run_with_sink (small_config ~max_ops:100 ()) in
  let r2, s2 = run_with_sink (small_config ~max_ops:100 ()) in
  check "stop reason reproduces" true
    (r1.Soak.r_reason = r2.Soak.r_reason);
  check "snapshots identical" true (r1.Soak.r_snapshot = r2.Soak.r_snapshot);
  check_str "witness corpus byte-identical"
    (Corpus.to_jsonl (Soak_store.witnesses s1))
    (Corpus.to_jsonl (Soak_store.witnesses s2));
  check "budget stop is ok" true r1.Soak.r_ok;
  check "some client ops streamed" true
    (r1.Soak.r_snapshot.Soak.snap_client_ops >= 100)

let test_jobs_invariant () =
  let r1, s1 = run_with_sink (small_config ~jobs:1 ~max_ops:100 ()) in
  let r2, s2 = run_with_sink (small_config ~jobs:2 ~max_ops:100 ()) in
  check "snapshots identical across jobs" true
    (r1.Soak.r_snapshot = r2.Soak.r_snapshot);
  check_str "witness corpus byte-identical across jobs"
    (Corpus.to_jsonl (Soak_store.witnesses s1))
    (Corpus.to_jsonl (Soak_store.witnesses s2))

let test_seed_matters () =
  let _, s1 = run_with_sink (small_config ~seed:11 ~max_ops:100 ()) in
  let _, s2 = run_with_sink (small_config ~seed:12 ~max_ops:100 ()) in
  (* Different seeds draw different ops and crash plans; the witness
     sets coinciding byte-for-byte would mean the seed is ignored. *)
  check "different seed, different corpus" true
    (Corpus.to_jsonl (Soak_store.witnesses s1)
    <> Corpus.to_jsonl (Soak_store.witnesses s2))

(* ------------------------------------------------------------------ *)
(* Cancellation and resume                                              *)

let test_interrupt_then_resume_reaches_same_bytes () =
  let cfg = small_config ~max_ops:200 () in
  (* The uninterrupted reference run. *)
  let full, full_sink = run_with_sink cfg in
  check "reference run stops on budget" true
    (full.Soak.r_reason = Soak.Op_budget);
  (* The same run, cooperatively stopped mid-soak (the SIGINT path:
     the handler calls request_stop, the loop stops at the round
     boundary). *)
  let cut, cut_sink = run_with_sink ~stop_after_rounds:2 cfg in
  check "cooperative stop reports Interrupted" true
    (cut.Soak.r_reason = Soak.Interrupted);
  check "interrupted run is not ok" true (not cut.Soak.r_ok);
  check "interrupted earlier than the reference" true
    (cut.Soak.r_snapshot.Soak.snap_next_round
    < full.Soak.r_snapshot.Soak.snap_next_round);
  (* Checkpoint round-trip through the manifest codec, as the service
     does, then resume from it with the checkpoint corpus preloaded. *)
  let manifest =
    {
      Soak_store.m_run = "soak-test";
      m_streams = [ "memcached" ];
      m_seed = 11;
      m_variant = Px86.Variant.default_label;
      m_jobs = 1;
      m_ops_per_exec = 8;
      m_fault_budget = 3;
      m_max_ops = Some 200;
      m_wall_s = None;
      m_checkpoint_every = 0;
      m_corpus = "soak-test.corpus.jsonl";
      m_snapshot = cut.Soak.r_snapshot;
      m_witnesses = List.length (Soak_store.witnesses cut_sink);
      m_raw = Soak_store.raw cut_sink;
      m_duplicates = Soak_store.duplicates cut_sink;
      m_coverage_digest = "";
      m_soak_ok = false;
      m_stopped = Soak.stop_reason_label cut.Soak.r_reason;
      m_ts = 0.;
      m_elapsed_s = 0.;
    }
  in
  let decoded =
    match Soak_store.decode (Soak_store.encode manifest) with
    | Ok m -> m
    | Error e -> Alcotest.fail ("manifest round-trip: " ^ e)
  in
  check "manifest snapshot survives the codec" true
    (decoded.Soak_store.m_snapshot = cut.Soak.r_snapshot);
  let resumed, resumed_sink =
    run_with_sink ~resume:decoded.Soak_store.m_snapshot
      ~preload:(Soak_store.witnesses cut_sink) cfg
  in
  check "resumed run stops on budget" true
    (resumed.Soak.r_reason = Soak.Op_budget);
  check "resumed snapshot equals the uninterrupted one" true
    (resumed.Soak.r_snapshot = full.Soak.r_snapshot);
  check_str "resumed corpus byte-identical to the uninterrupted one"
    (Corpus.to_jsonl (Soak_store.witnesses full_sink))
    (Corpus.to_jsonl (Soak_store.witnesses resumed_sink))

(* ------------------------------------------------------------------ *)
(* Quarantine                                                           *)

let storm = Pm_benchmarks.Demo_faults.storm_stream

let test_storm_quarantine_keeps_run_alive () =
  let cfg =
    small_config ~streams:[ storm ] ~fault_budget:2 ~max_ops:250 ()
  in
  let r, _ = run_with_sink cfg in
  (* The crashing delete handler storms the delete-bearing mixes; the
     delete-free ones (read-heavy, rmw-heavy) must keep the service
     alive to its op budget. *)
  check "run survives the fault storm to its budget" true
    (r.Soak.r_reason = Soak.Op_budget);
  check "budget stop is ok" true r.Soak.r_ok;
  let quarantined, healthy =
    List.partition
      (fun b -> b.Soak.bs_quarantined)
      r.Soak.r_snapshot.Soak.snap_buckets
  in
  check "some combos quarantined" true (quarantined <> []);
  check "some combos still healthy" true (healthy <> []);
  List.iter
    (fun b ->
      check "quarantined combos exhausted their fault budget" true
        (b.Soak.bs_faults >= 2))
    quarantined

let test_all_quarantined_is_exhausted () =
  let churn = List.find (fun m -> m.Soak.mix_label = "churn") Soak.default_mixes in
  let cfg =
    {
      (small_config ~streams:[ storm ] ~fault_budget:1 ~max_ops:10_000 ()) with
      Soak.sk_buckets = [ { Soak.b_mix = churn; b_dist = Soak.Uniform } ];
    }
  in
  let r, _ = run_with_sink cfg in
  check "every combo quarantined stops the run" true
    (r.Soak.r_reason = Soak.Exhausted);
  check "exhausted run is not ok" true (not r.Soak.r_ok)

(* ------------------------------------------------------------------ *)
(* Manifest codec                                                       *)

let manifest_fixture =
  {
    Soak_store.m_run = "nightly";
    m_streams = [ "memcached"; "redis"; "cceh" ];
    m_seed = 42;
    m_variant = "strict-tso";
    m_jobs = 4;
    m_ops_per_exec = 24;
    m_fault_budget = 3;
    m_max_ops = None;
    m_wall_s = Some 3600.;
    m_checkpoint_every = 10;
    m_corpus = "nightly.corpus.jsonl";
    m_snapshot =
      {
        Soak.snap_next_round = 17;
        snap_scenarios = 408;
        snap_completed = 400;
        snap_faulted = 8;
        snap_diverged = 0;
        snap_crashed = 311;
        snap_executions = 816;
        snap_ops = 61_203;
        snap_client_ops = 9_792;
        snap_races = 231;
        snap_buckets =
          [
            {
              Soak.bs_combo = "soak:memcached:churn:uniform";
              bs_faults = 1;
              bs_quarantined = false;
            };
            {
              Soak.bs_combo = "soak:redis:rmw-heavy:hotspot";
              bs_faults = 3;
              bs_quarantined = true;
            };
          ];
      };
    m_witnesses = 57;
    m_raw = 231;
    m_duplicates = 174;
    m_coverage_digest = "abc123";
    m_soak_ok = true;
    m_stopped = "wall-budget";
    m_ts = 1754650000.5;
    m_elapsed_s = 3600.25;
  }

let test_manifest_roundtrip () =
  match Soak_store.decode (Soak_store.encode manifest_fixture) with
  | Error e -> Alcotest.fail e
  | Ok m -> check "decode inverts encode" true (m = manifest_fixture)

let test_manifest_identity_excludes_timing () =
  let later = { manifest_fixture with Soak_store.m_ts = 9.; m_elapsed_s = 1. } in
  check_str "identity projection ignores timing stamps"
    (Json.encode_obj (Soak_store.identity_fields manifest_fixture))
    (Json.encode_obj (Soak_store.identity_fields later));
  check "full encodings do differ" true
    (Soak_store.encode manifest_fixture <> Soak_store.encode later)

let test_manifest_rejects_newer_version () =
  let line = Soak_store.encode manifest_fixture in
  let bumped =
    Str.replace_first
      (Str.regexp_string
         (Printf.sprintf "\"manifest_version\":%d" Soak_store.version))
      (Printf.sprintf "\"manifest_version\":%d" (Soak_store.version + 1))
      line
  in
  match Soak_store.decode bumped with
  | Ok _ -> Alcotest.fail "a newer manifest version must not decode"
  | Error e ->
      check "error names the version gate" true
        (Str.string_match (Str.regexp ".*newer.*") e 0)

let test_manifest_file_guards () =
  (* Missing file: a positioned error, not an exception. *)
  (match Soak_store.load "/nonexistent/soak.manifest.jsonl" with
  | Ok _ -> Alcotest.fail "missing manifest must not load"
  | Error _ -> ());
  (* Empty file: the signature of an interrupted non-atomic writer. *)
  let tmp = Filename.temp_file "yashme_soak_manifest" ".jsonl" in
  (match Soak_store.load tmp with
  | Ok _ -> Alcotest.fail "empty manifest must not load"
  | Error e ->
      check "empty-manifest error carries the path" true
        (Str.string_match (Str.regexp_string tmp) e 0));
  (* Atomic save then load round-trips. *)
  Soak_store.save tmp manifest_fixture;
  (match Soak_store.load tmp with
  | Ok m -> check "saved manifest loads back" true (m = manifest_fixture)
  | Error e -> Alcotest.fail e);
  Sys.remove tmp

(* ------------------------------------------------------------------ *)
(* Crash-safety guards on loaded formats                                *)

let test_corpus_empty_and_missing_guards () =
  (match Corpus.load "/nonexistent/corpus.jsonl" with
  | Ok _ -> Alcotest.fail "missing corpus must not load"
  | Error _ -> ());
  let tmp = Filename.temp_file "yashme_soak_corpus" ".jsonl" in
  (match Corpus.load tmp with
  | Ok _ -> Alcotest.fail "empty corpus must not load"
  | Error e ->
      check "empty-corpus error is positioned" true
        (Str.string_match (Str.regexp (Str.quote tmp ^ ":1:.*empty")) e 0));
  Sys.remove tmp

let test_corpus_truncated_line_guard () =
  (* A witness line chopped mid-object — what a torn non-atomic write
     would leave — must be a positioned error, not an exception. *)
  let _, sink = run_with_sink (small_config ~max_ops:50 ()) in
  let jsonl = Corpus.to_jsonl (Soak_store.witnesses sink) in
  check "fixture produced witnesses" true (String.length jsonl > 40);
  let tmp = Filename.temp_file "yashme_soak_corpus" ".jsonl" in
  let oc = open_out_bin tmp in
  output_string oc (String.sub jsonl 0 (String.length jsonl - 20));
  close_out oc;
  (match Corpus.load tmp with
  | Ok _ -> Alcotest.fail "truncated corpus must not load"
  | Error e ->
      check "truncation error carries file and line" true
        (Str.string_match (Str.regexp (Str.quote tmp ^ ":[0-9]+:")) e 0));
  Sys.remove tmp

let test_ledger_truncated_line_guard () =
  let tmp = Filename.temp_file "yashme_soak_ledger" ".jsonl" in
  Sys.remove tmp;
  (* Empty ledger file. *)
  let oc = open_out_bin tmp in
  close_out oc;
  (match Ledger_store.load tmp with
  | Ok _ -> Alcotest.fail "empty ledger must not load"
  | Error e ->
      check "empty-ledger error mentions emptiness" true
        (Str.string_match (Str.regexp ".*empty") e 0));
  (* One valid line followed by a mid-line truncation. *)
  let entry =
    {
      Observe.Ledger.e_version = Observe.Ledger.version;
      e_run = "soak";
      e_ts = 0.;
      e_program = "soak:memcached";
      e_variant = "strict-tso";
      e_mode = "soak";
      e_jobs = 1;
      e_seed = 11;
      e_scenarios = 16;
      e_completed = 16;
      e_faulted = 0;
      e_diverged = 0;
      e_executions = 32;
      e_ops = 1000;
      e_races = 3;
      e_benign = 0;
      e_raw_races = 9;
      e_recovery_failures = 0;
      e_witnesses = 3;
      e_elapsed_s = 1.;
      e_cpu_s = 1.;
      e_metrics_digest = "";
      e_coverage_digest = "";
      e_cost = [];
    }
  in
  Ledger_store.append tmp entry;
  let line = Json.encode_obj (Observe.Ledger.fields entry) in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 tmp in
  output_string oc (String.sub line 0 (String.length line / 2));
  close_out oc;
  (match Ledger_store.load tmp with
  | Ok _ -> Alcotest.fail "truncated ledger must not load"
  | Error e ->
      check "truncation reported at line 2" true
        (Str.string_match (Str.regexp "line 2:") e 0));
  Sys.remove tmp

(* ------------------------------------------------------------------ *)
(* Progress ETA clamping                                                *)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

let assert_finite_stream tmp =
  let lines = read_lines tmp in
  check "stream is non-empty" true (lines <> []);
  List.iter
    (fun line ->
      check "no inf/nan leaks into the stream" false
        (Str.string_match (Str.regexp ".*\\(inf\\|nan\\).*") line 0);
      match Json.decode_obj line with
      | Error e -> Alcotest.fail ("progress line not decodable: " ^ e)
      | Ok fields ->
          List.iter
            (fun key ->
              match List.assoc_opt key fields with
              | Some (`F f) ->
                  check
                    (Printf.sprintf "%s is finite and non-negative" key)
                    true
                    (Float.is_finite f && f >= 0.)
              | _ -> Alcotest.fail ("missing float field " ^ key))
            [ "rate_per_s"; "eta_s"; "elapsed_s" ])
    lines

let test_progress_eta_clamped_before_any_work () =
  (* First tick before any batch was announced: no total, no elapsed
     work to extrapolate from — rate and ETA must clamp to 0, never
     inf/nan, on stderr or in the JSONL stream. *)
  let tmp = Filename.temp_file "yashme_soak_progress" ".jsonl" in
  Progress.start ~heartbeat:false ~jsonl:tmp ();
  Progress.tick ~races:0 ~faulted:false ();
  ignore (Progress.stop ());
  assert_finite_stream tmp;
  Sys.remove tmp

let test_progress_eta_clamped_at_zero_rate () =
  (* Work announced but none finished: remaining > 0 at rate 0 is the
     division-by-zero shape of the old ETA; it must render as 0. *)
  let tmp = Filename.temp_file "yashme_soak_progress" ".jsonl" in
  Progress.start ~heartbeat:false ~jsonl:tmp ();
  Progress.batch 5;
  ignore (Progress.stop ());
  assert_finite_stream tmp;
  let last = List.nth_opt (List.rev (read_lines tmp)) 0 in
  (match last with
  | None -> Alcotest.fail "no final emission"
  | Some line -> (
      match Json.decode_obj line with
      | Error e -> Alcotest.fail e
      | Ok fields ->
          check "eta clamps to 0 at zero rate" true
            (List.assoc "eta_s" fields = `F 0.);
          check "rate clamps to 0 with nothing finished" true
            (List.assoc "rate_per_s" fields = `F 0.)));
  Sys.remove tmp

let test_progress_stream_atomic_commit () =
  (* The stream is written through a temporary and renamed at stop, so
     a reader polling the path never sees a half-written file; after
     stop it must exist and lint as JSONL. *)
  let tmp = Filename.temp_file "yashme_soak_progress" ".jsonl" in
  Sys.remove tmp;
  Progress.start ~heartbeat:false ~jsonl:tmp ();
  Progress.batch 2;
  Progress.tick ~races:0 ~faulted:false ();
  check "no file visible before commit" false (Sys.file_exists tmp);
  Progress.tick ~races:1 ~faulted:false ();
  ignore (Progress.stop ());
  check "file visible after stop" true (Sys.file_exists tmp);
  (match Observe.Trace.check_file tmp with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("progress stream not well-formed: " ^ e));
  assert_finite_stream tmp;
  Sys.remove tmp

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "soak"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same bytes" `Slow
            test_same_seed_same_bytes;
          Alcotest.test_case "jobs-invariant" `Slow test_jobs_invariant;
          Alcotest.test_case "seed matters" `Slow test_seed_matters;
        ] );
      ( "resume",
        [
          Alcotest.test_case "interrupt, checkpoint, resume, same bytes" `Slow
            test_interrupt_then_resume_reaches_same_bytes;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "fault storm survives to budget" `Slow
            test_storm_quarantine_keeps_run_alive;
          Alcotest.test_case "all quarantined = exhausted" `Quick
            test_all_quarantined_is_exhausted;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "encode/decode round-trip" `Quick
            test_manifest_roundtrip;
          Alcotest.test_case "identity excludes timing" `Quick
            test_manifest_identity_excludes_timing;
          Alcotest.test_case "rejects newer version" `Quick
            test_manifest_rejects_newer_version;
          Alcotest.test_case "file guards (missing/empty/save-load)" `Quick
            test_manifest_file_guards;
        ] );
      ( "guards",
        [
          Alcotest.test_case "corpus: empty and missing" `Quick
            test_corpus_empty_and_missing_guards;
          Alcotest.test_case "corpus: mid-line truncation" `Slow
            test_corpus_truncated_line_guard;
          Alcotest.test_case "ledger: empty and truncation" `Quick
            test_ledger_truncated_line_guard;
        ] );
      ( "progress",
        [
          Alcotest.test_case "eta finite before any work" `Quick
            test_progress_eta_clamped_before_any_work;
          Alcotest.test_case "eta clamps at zero rate" `Quick
            test_progress_eta_clamped_at_zero_rate;
          Alcotest.test_case "jsonl stream commits atomically" `Quick
            test_progress_stream_atomic_commit;
        ] );
    ]
