(* Tests for the domain-parallel exploration engine: the determinism
   contract (engine at any job count == legacy sequential loops), the
   memoized setup snapshot (never mutated by scenario runs) and the
   Crashstate snapshot API. *)

open Pm_runtime
module Runner = Pm_harness.Runner
module Report = Pm_harness.Report
module Program = Pm_harness.Program
module Scenario = Pm_harness.Scenario
module Engine = Pm_harness.Engine
module Registry = Pm_benchmarks.Registry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let toy =
  Program.make ~name:"toy"
    ~setup:(fun () ->
      let a = Pmem.alloc ~align:64 16 in
      Pmem.set_root 0 a)
    ~pre:(fun () ->
      let a = Pmem.get_root 0 in
      Pmem.store ~label:"racy" a 1L;
      Pmem.store ~label:"safe" ~atomic:Px86.Access.Release (a + 8) 2L;
      Pmem.clflush a;
      Pmem.mfence ())
    ~post:(fun () ->
      let a = Pmem.get_root 0 in
      ignore (Pmem.load a);
      ignore (Pmem.load ~atomic:Px86.Access.Acquire (a + 8)))
    ()

(* ------------------------------------------------------------------ *)
(* Determinism suite: engine jobs=1, jobs=4 and the legacy sequential
   path must produce identical dedup'd race reports. *)

let test_model_check_determinism () =
  List.iter
    (fun (p : Program.t) ->
      let seq = Report.to_string (Runner.model_check_seq p) in
      let j1 = Report.to_string (Runner.model_check ~jobs:1 p) in
      let j4 = Report.to_string (Runner.model_check ~jobs:4 p) in
      check_str (p.Program.name ^ ": jobs=1 == seq") seq j1;
      check_str (p.Program.name ^ ": jobs=4 == seq") seq j4)
    Registry.all

let test_recovery_mc_determinism () =
  List.iter
    (fun (p : Program.t) ->
      let seq = Report.to_string (Runner.model_check_recovery_seq p) in
      let j1 = Report.to_string (Runner.model_check_recovery ~jobs:1 p) in
      let j4 = Report.to_string (Runner.model_check_recovery ~jobs:4 p) in
      check_str (p.Program.name ^ ": jobs=1 == seq") seq j1;
      check_str (p.Program.name ^ ": jobs=4 == seq") seq j4)
    [ toy; Pm_benchmarks.Cceh.program ]

let test_random_mode_determinism () =
  List.iter
    (fun (p : Program.t) ->
      let seq = Report.to_string (Runner.random_mode_seq ~execs:5 p) in
      let j1 = Report.to_string (Runner.random_mode ~jobs:1 ~execs:5 p) in
      let j4 = Report.to_string (Runner.random_mode ~jobs:4 ~execs:5 p) in
      check_str (p.Program.name ^ ": jobs=1 == seq") seq j1;
      check_str (p.Program.name ^ ": jobs=4 == seq") seq j4)
    [ Pm_benchmarks.Memcached.program; Pm_benchmarks.Redis.program;
      Pm_benchmarks.Fast_fair.program ]

(* Random mode is seeded, not stateful: with a fixed seed, two
   consecutive runs in the same process render byte-identical
   reports. *)
let test_random_mode_repeatable () =
  List.iter
    (fun (p : Program.t) ->
      let options = { Runner.default_options with seed = 7 } in
      let r1 = Report.to_string (Runner.random_mode ~options ~execs:5 p) in
      let r2 = Report.to_string (Runner.random_mode ~options ~execs:5 p) in
      check_str (p.Program.name ^ ": fixed seed, byte-identical reruns") r1 r2)
    [ Pm_benchmarks.Memcached.program; Pm_benchmarks.Redis.program ]

(* Oversubscription and degenerate job counts must not change anything
   (jobs is clamped to the batch size and to >= 1). *)
let test_job_count_clamping () =
  let seq = Report.to_string (Runner.model_check_seq toy) in
  List.iter
    (fun jobs ->
      check_str
        (Printf.sprintf "jobs=%d" jobs)
        seq
        (Report.to_string (Runner.model_check ~jobs toy)))
    [ 0; 2; 16 ]

(* A Cut_random strategy embeds a shared mutable Rng: the engine must
   refuse to parallelize it (and still complete) — and say so, loudly:
   the fallback emits a warning through the observe layer rather than
   degrading silently. *)
let test_cut_random_forces_sequential () =
  let options =
    { Runner.default_options with
      cut = Px86.Machine.Cut_random (Yashme_util.Rng.create 7) }
  in
  let scenarios =
    [ Scenario.of_program ~setup:Scenario.No_setup
        ~plan:Executor.Crash_at_end ~options toy ]
  in
  check "not parallel safe" false (Scenario.parallel_safe (List.hd scenarios));
  Observe.Log.set_quiet true;
  Observe.Trace.clear ();
  Observe.Trace.start ();
  let run = Engine.run ~jobs:4 scenarios in
  Observe.Trace.stop ();
  Observe.Log.set_quiet false;
  check_int "forced to one domain" 1 run.Engine.stats.Engine.jobs;
  let warned =
    List.exists
      (fun (e : Observe.Trace.event) ->
        e.Observe.Trace.name = "warning" && e.Observe.Trace.cat = "log")
      (Observe.Trace.events ())
  in
  check "degradation warned through the observe layer" true warned;
  Observe.Trace.clear ();
  (* jobs=1 was granted, not clamped: no warning. *)
  Observe.Trace.start ();
  ignore (Engine.run ~jobs:1 scenarios);
  Observe.Trace.stop ();
  let warned_j1 =
    List.exists
      (fun (e : Observe.Trace.event) -> e.Observe.Trace.name = "warning")
      (Observe.Trace.events ())
  in
  check "no warning when jobs=1 was requested" false warned_j1;
  Observe.Trace.clear ()

(* ------------------------------------------------------------------ *)
(* Snapshot semantics                                                   *)

let test_setup_snapshot_memoized () =
  match Engine.materialize_setup ~options:Runner.default_options toy with
  | Scenario.No_setup | Scenario.Run_setup _ ->
      Alcotest.fail "expected a memoized snapshot for an eager-drain setup"
  | Scenario.Snapshot cs ->
      (* A scenario run must never mutate the shared snapshot. *)
      let fingerprint () = Marshal.to_string cs [] in
      let before = fingerprint () in
      let scenario =
        Scenario.of_program ~setup:(Scenario.Snapshot cs)
          ~plan:(Executor.Crash_before_flush 0)
          ~options:Runner.default_options toy
      in
      let completed = function
        | Engine.Completed c -> c
        | Engine.Faulted _ -> Alcotest.fail "scenario unexpectedly faulted"
      in
      let r1 = completed (Engine.run_scenario scenario) in
      check_str "snapshot unchanged by a scenario run" before (fingerprint ());
      (* And re-running from the same snapshot reproduces the result. *)
      let r2 = completed (Engine.run_scenario scenario) in
      check_int "same race count on re-run" (List.length r1.Engine.races)
        (List.length r2.Engine.races);
      check "snapshot still unchanged" true (before = fingerprint ())

let test_random_drain_setup_not_memoized () =
  let options =
    { Runner.default_options with sb_policy = Px86.Machine.Random_drain 0.5 }
  in
  match Engine.materialize_setup ~options toy with
  | Scenario.Run_setup _ -> ()
  | Scenario.No_setup | Scenario.Snapshot _ ->
      Alcotest.fail "seed-dependent setup must be re-run per scenario"

let test_crashstate_copy_independent () =
  match Engine.run_setup Runner.default_options toy with
  | None -> Alcotest.fail "toy has a setup phase"
  | Some cs ->
      let snap = Px86.Crashstate.copy cs in
      let addr = 8 * Px86.Addr.line_size in
      (* Mutate every mutable component of the copy... *)
      Px86.Memimage.write snap.Px86.Crashstate.image ~addr ~size:8
        ~value:0xDEADL;
      Hashtbl.reset snap.Px86.Crashstate.origins;
      Hashtbl.reset snap.Px86.Crashstate.cands;
      snap.Px86.Crashstate.heap_break <- 0;
      (* ...and the original must not notice. *)
      Alcotest.(check int64)
        "image unshared" 0L
        (Px86.Memimage.read cs.Px86.Crashstate.image ~addr ~size:8);
      check "origins unshared" true
        (Hashtbl.length cs.Px86.Crashstate.origins > 0);
      check "heap break unshared" true (cs.Px86.Crashstate.heap_break > 0)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)

let test_engine_stats () =
  let report, stats = Runner.model_check_run ~jobs:2 toy in
  check_int "one scenario per crash point" report.Report.executions
    stats.Engine.scenarios;
  check "explored executions counted" true
    (stats.Engine.executions >= stats.Engine.scenarios);
  check "ops counted" true (stats.Engine.ops > 0);
  check "worker time accumulated" true (stats.Engine.cpu_s >= 0.);
  check "elapsed measured" true (stats.Engine.elapsed_s >= 0.);
  check_int "domains clamped to batch" 2 stats.Engine.jobs;
  (* The timing-free projection is what determinism comparisons use:
     repeated runs agree on it even though cpu_s/elapsed_s differ. *)
  let _, stats' = Runner.model_check_run ~jobs:2 toy in
  check "structural stats reproducible" true
    (Engine.structural stats = Engine.structural stats')

let test_scenario_results_in_submission_order () =
  let options = Runner.default_options in
  let setup = Engine.materialize_setup ~options toy in
  let plans =
    [ Executor.Crash_before_flush 0; Executor.Crash_before_flush 1;
      Executor.Crash_at_end ]
  in
  let scenarios =
    List.map (fun plan -> Scenario.of_program ~setup ~plan ~options toy) plans
  in
  let a = Engine.run ~jobs:1 scenarios in
  let b = Engine.run ~jobs:3 scenarios in
  (* [Engine.signature] drops wall_s, the only field allowed to vary;
     everything else must match field for field, in submission order. *)
  let sig_of run = List.map Engine.signature run.Engine.results in
  check "same per-scenario results in same order" true (sig_of a = sig_of b)

(* ------------------------------------------------------------------ *)
(* Fault isolation                                                      *)

module Finding = Pm_harness.Finding
module Demo = Pm_benchmarks.Demo_faults

let raising =
  Program.make ~name:"raising"
    ~pre:(fun () ->
      let a = Pmem.alloc ~align:64 8 in
      Pmem.store ~label:"pre-fault" a 1L;
      failwith "boom")
    ~post:(fun () -> ())
    ()

(* The acceptance batch: a healthy scenario, a raising one and a
   non-terminating one under a fuel budget.  All three must come back,
   classified, and identically at every job count. *)
let test_fault_isolation_batch () =
  let options = { Runner.default_options with max_ops = Some 400 } in
  let toy_setup = Engine.materialize_setup ~options toy in
  let demo_setup = Engine.materialize_setup ~options Demo.diverge in
  let scenarios =
    [ Scenario.of_program ~setup:toy_setup
        ~plan:(Executor.Crash_before_flush 0) ~options toy;
      Scenario.of_program ~setup:Scenario.No_setup ~plan:Executor.Crash_at_end
        ~options raising;
      Scenario.of_program ~setup:demo_setup ~plan:Executor.Crash_at_end
        ~options Demo.diverge ]
  in
  let classify run =
    check_int "all scenarios come back" 3 (List.length run.Engine.results);
    (match run.Engine.results with
    | [ Engine.Completed c0; Engine.Faulted f; Engine.Completed c2 ] ->
        check "healthy scenario not diverged" false c0.Engine.diverged;
        check "fault in the pre-crash phase" true
          (f.Engine.f_info.Finding.phase = Finding.Pre_crash);
        check_str "fault text preserved" "Failure(\"boom\")"
          f.Engine.f_info.Finding.exn_text;
        check "no crash before the fault" false
          f.Engine.f_info.Finding.crash_fired;
        check "spinner killed by the fuel budget" true c2.Engine.diverged
    | _ -> Alcotest.fail "unexpected result classification");
    check_int "one fault in stats" 1 run.Engine.stats.Engine.faulted;
    check_int "one divergence in stats" 1 run.Engine.stats.Engine.diverged
  in
  let report run =
    Report.to_string
      (Report.dedup ~program:"batch" ~executions:3
         ~faults:(Engine.faults run) ~diverged:(Engine.diverged_count run)
         (Engine.races run))
  in
  let a = Engine.run ~jobs:1 scenarios in
  let b = Engine.run ~jobs:4 scenarios in
  classify a;
  classify b;
  let sig_of run = List.map Engine.signature run.Engine.results in
  check "per-scenario results jobs-invariant" true (sig_of a = sig_of b);
  check_str "report byte-identical jobs=1 vs jobs=4" (report a) (report b);
  let contains s sub =
    let n = String.length sub in
    let rec at i = i + n <= String.length s && (String.sub s i n = sub || at (i + 1)) in
    at 0
  in
  check "contained faults render" true
    (contains (report a) "[contained] 1 scenario fault(s), 1 diverged (budget)")

let test_setup_phase_fault () =
  let options = Runner.default_options in
  let scenario =
    Scenario.make ~label:"bad-setup"
      ~setup:(Scenario.Run_setup (fun () -> failwith "setup exploded"))
      ~pre:(fun () -> ())
      ~post:(fun () -> ())
      ~plan:Executor.Crash_at_end ~options ()
  in
  match Engine.run_scenario scenario with
  | Engine.Completed _ -> Alcotest.fail "setup fault must be captured"
  | Engine.Faulted f ->
      check "classified as a setup fault" true
        (f.Engine.f_info.Finding.phase = Finding.Setup);
      check "not a recovery failure" false
        (Finding.is_recovery_failure f.Engine.f_info)

let test_fuel_exhaustion_diverges () =
  let options = { Runner.default_options with max_ops = Some 50 } in
  let r =
    Engine.run_phase ~options ~plan:Executor.Run_to_end ~seed:1
      ~exec_id:Engine.pre_exec (fun () ->
        while true do
          Pmem.yield ()
        done)
  in
  check "budget terminates the phase" true
    (r.Executor.outcome = Executor.Diverged)

let test_recovery_failure_witness () =
  let p = Demo.faulty_recovery in
  let r1 = Runner.model_check ~jobs:1 p in
  let r4 = Runner.model_check ~jobs:4 p in
  check_str "recovery-failure report byte-identical jobs=1 vs jobs=4"
    (Report.to_string r1) (Report.to_string r4);
  check "recovery failure found" true (r1.Report.recovery_failures <> []);
  List.iter
    (fun (rf : Report.recovery_failure) ->
      check "witness carries a real crash" true
        rf.Report.rf_example.Finding.crash_fired;
      check "witness is a recovery-phase fault" true
        (match rf.Report.rf_example.Finding.phase with
        | Finding.Recovery _ -> true
        | Finding.Setup | Finding.Pre_crash | Finding.Observe -> false))
    r1.Report.recovery_failures

let test_fail_fast () =
  let options = Runner.default_options in
  let setup = Engine.materialize_setup ~options toy in
  let scenarios =
    [ Scenario.of_program ~setup:Scenario.No_setup ~plan:Executor.Crash_at_end
        ~options raising;
      Scenario.of_program ~setup ~plan:(Executor.Crash_before_flush 0)
        ~options toy;
      Scenario.of_program ~setup ~plan:Executor.Crash_at_end ~options toy ]
  in
  (* Containment is the default: the whole batch comes back. *)
  let contained = Engine.run ~jobs:1 scenarios in
  check_int "no fail-fast: every result materializes" 3
    (List.length contained.Engine.results);
  (* Fail-fast re-raises the original exception and cancels the rest;
     the cancelled entries are visible as metric ticks. *)
  Observe.Metrics.enable ();
  let before = Observe.Metrics.snapshot () in
  (match Engine.run ~jobs:1 ~fail_fast:true scenarios with
  | _ -> Alcotest.fail "fail-fast must re-raise the scenario fault"
  | exception Failure msg -> check_str "original exception re-raised" "boom" msg);
  let diff = Observe.Metrics.diff before (Observe.Metrics.snapshot ()) in
  Observe.Metrics.disable ();
  check_int "both queued scenarios cancelled" 2
    (Option.value ~default:0 (List.assoc_opt "engine/cancelled" diff))

let () =
  Alcotest.run "engine"
    [
      ( "determinism",
        [
          Alcotest.test_case "model-check: all registry benchmarks" `Slow
            test_model_check_determinism;
          Alcotest.test_case "recovery model-check" `Slow
            test_recovery_mc_determinism;
          Alcotest.test_case "random mode" `Quick test_random_mode_determinism;
          Alcotest.test_case "random mode: fixed seed repeatable" `Quick
            test_random_mode_repeatable;
          Alcotest.test_case "job-count clamping" `Quick test_job_count_clamping;
          Alcotest.test_case "Cut_random forces sequential" `Quick
            test_cut_random_forces_sequential;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "memoized setup never mutated" `Quick
            test_setup_snapshot_memoized;
          Alcotest.test_case "random-drain setup re-run" `Quick
            test_random_drain_setup_not_memoized;
          Alcotest.test_case "Crashstate.copy independence" `Quick
            test_crashstate_copy_independent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "engine stats" `Quick test_engine_stats;
          Alcotest.test_case "submission-order merge" `Quick
            test_scenario_results_in_submission_order;
        ] );
      ( "fault-isolation",
        [
          Alcotest.test_case "mixed batch survives faults" `Quick
            test_fault_isolation_batch;
          Alcotest.test_case "setup-phase fault captured" `Quick
            test_setup_phase_fault;
          Alcotest.test_case "fuel budget diverges" `Quick
            test_fuel_exhaustion_diverges;
          Alcotest.test_case "recovery-failure witness" `Quick
            test_recovery_failure_witness;
          Alcotest.test_case "fail-fast cancels and re-raises" `Quick
            test_fail_fast;
        ] );
    ]
