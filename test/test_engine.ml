(* Tests for the domain-parallel exploration engine: the determinism
   contract (engine at any job count == legacy sequential loops), the
   memoized setup snapshot (never mutated by scenario runs) and the
   Crashstate snapshot API. *)

open Pm_runtime
module Runner = Pm_harness.Runner
module Report = Pm_harness.Report
module Program = Pm_harness.Program
module Scenario = Pm_harness.Scenario
module Engine = Pm_harness.Engine
module Registry = Pm_benchmarks.Registry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let toy =
  Program.make ~name:"toy"
    ~setup:(fun () ->
      let a = Pmem.alloc ~align:64 16 in
      Pmem.set_root 0 a)
    ~pre:(fun () ->
      let a = Pmem.get_root 0 in
      Pmem.store ~label:"racy" a 1L;
      Pmem.store ~label:"safe" ~atomic:Px86.Access.Release (a + 8) 2L;
      Pmem.clflush a;
      Pmem.mfence ())
    ~post:(fun () ->
      let a = Pmem.get_root 0 in
      ignore (Pmem.load a);
      ignore (Pmem.load ~atomic:Px86.Access.Acquire (a + 8)))
    ()

(* ------------------------------------------------------------------ *)
(* Determinism suite: engine jobs=1, jobs=4 and the legacy sequential
   path must produce identical dedup'd race reports. *)

let test_model_check_determinism () =
  List.iter
    (fun (p : Program.t) ->
      let seq = Report.to_string (Runner.model_check_seq p) in
      let j1 = Report.to_string (Runner.model_check ~jobs:1 p) in
      let j4 = Report.to_string (Runner.model_check ~jobs:4 p) in
      check_str (p.Program.name ^ ": jobs=1 == seq") seq j1;
      check_str (p.Program.name ^ ": jobs=4 == seq") seq j4)
    Registry.all

let test_recovery_mc_determinism () =
  List.iter
    (fun (p : Program.t) ->
      let seq = Report.to_string (Runner.model_check_recovery_seq p) in
      let j1 = Report.to_string (Runner.model_check_recovery ~jobs:1 p) in
      let j4 = Report.to_string (Runner.model_check_recovery ~jobs:4 p) in
      check_str (p.Program.name ^ ": jobs=1 == seq") seq j1;
      check_str (p.Program.name ^ ": jobs=4 == seq") seq j4)
    [ toy; Pm_benchmarks.Cceh.program ]

let test_random_mode_determinism () =
  List.iter
    (fun (p : Program.t) ->
      let seq = Report.to_string (Runner.random_mode_seq ~execs:5 p) in
      let j1 = Report.to_string (Runner.random_mode ~jobs:1 ~execs:5 p) in
      let j4 = Report.to_string (Runner.random_mode ~jobs:4 ~execs:5 p) in
      check_str (p.Program.name ^ ": jobs=1 == seq") seq j1;
      check_str (p.Program.name ^ ": jobs=4 == seq") seq j4)
    [ Pm_benchmarks.Memcached.program; Pm_benchmarks.Redis.program;
      Pm_benchmarks.Fast_fair.program ]

(* Oversubscription and degenerate job counts must not change anything
   (jobs is clamped to the batch size and to >= 1). *)
let test_job_count_clamping () =
  let seq = Report.to_string (Runner.model_check_seq toy) in
  List.iter
    (fun jobs ->
      check_str
        (Printf.sprintf "jobs=%d" jobs)
        seq
        (Report.to_string (Runner.model_check ~jobs toy)))
    [ 0; 2; 16 ]

(* A Cut_random strategy embeds a shared mutable Rng: the engine must
   refuse to parallelize it (and still complete) — and say so, loudly:
   the fallback emits a warning through the observe layer rather than
   degrading silently. *)
let test_cut_random_forces_sequential () =
  let options =
    { Runner.default_options with
      cut = Px86.Machine.Cut_random (Yashme_util.Rng.create 7) }
  in
  let scenarios =
    [ Scenario.of_program ~setup:Scenario.No_setup
        ~plan:Executor.Crash_at_end ~options toy ]
  in
  check "not parallel safe" false (Scenario.parallel_safe (List.hd scenarios));
  Observe.Log.set_quiet true;
  Observe.Trace.clear ();
  Observe.Trace.start ();
  let run = Engine.run ~jobs:4 scenarios in
  Observe.Trace.stop ();
  Observe.Log.set_quiet false;
  check_int "forced to one domain" 1 run.Engine.stats.Engine.jobs;
  let warned =
    List.exists
      (fun (e : Observe.Trace.event) ->
        e.Observe.Trace.name = "warning" && e.Observe.Trace.cat = "log")
      (Observe.Trace.events ())
  in
  check "degradation warned through the observe layer" true warned;
  Observe.Trace.clear ();
  (* jobs=1 was granted, not clamped: no warning. *)
  Observe.Trace.start ();
  ignore (Engine.run ~jobs:1 scenarios);
  Observe.Trace.stop ();
  let warned_j1 =
    List.exists
      (fun (e : Observe.Trace.event) -> e.Observe.Trace.name = "warning")
      (Observe.Trace.events ())
  in
  check "no warning when jobs=1 was requested" false warned_j1;
  Observe.Trace.clear ()

(* ------------------------------------------------------------------ *)
(* Snapshot semantics                                                   *)

let test_setup_snapshot_memoized () =
  match Engine.materialize_setup ~options:Runner.default_options toy with
  | Scenario.No_setup | Scenario.Run_setup _ ->
      Alcotest.fail "expected a memoized snapshot for an eager-drain setup"
  | Scenario.Snapshot cs ->
      (* A scenario run must never mutate the shared snapshot. *)
      let fingerprint () = Marshal.to_string cs [] in
      let before = fingerprint () in
      let scenario =
        Scenario.of_program ~setup:(Scenario.Snapshot cs)
          ~plan:(Executor.Crash_before_flush 0)
          ~options:Runner.default_options toy
      in
      let r1 = Engine.run_scenario scenario in
      check_str "snapshot unchanged by a scenario run" before (fingerprint ());
      (* And re-running from the same snapshot reproduces the result. *)
      let r2 = Engine.run_scenario scenario in
      check_int "same race count on re-run" (List.length r1.Engine.races)
        (List.length r2.Engine.races);
      check "snapshot still unchanged" true (before = fingerprint ())

let test_random_drain_setup_not_memoized () =
  let options =
    { Runner.default_options with sb_policy = Px86.Machine.Random_drain 0.5 }
  in
  match Engine.materialize_setup ~options toy with
  | Scenario.Run_setup _ -> ()
  | Scenario.No_setup | Scenario.Snapshot _ ->
      Alcotest.fail "seed-dependent setup must be re-run per scenario"

let test_crashstate_copy_independent () =
  match Engine.run_setup Runner.default_options toy with
  | None -> Alcotest.fail "toy has a setup phase"
  | Some cs ->
      let snap = Px86.Crashstate.copy cs in
      let addr = 8 * Px86.Addr.line_size in
      (* Mutate every mutable component of the copy... *)
      Px86.Memimage.write snap.Px86.Crashstate.image ~addr ~size:8
        ~value:0xDEADL;
      Hashtbl.reset snap.Px86.Crashstate.origins;
      Hashtbl.reset snap.Px86.Crashstate.cands;
      snap.Px86.Crashstate.heap_break <- 0;
      (* ...and the original must not notice. *)
      Alcotest.(check int64)
        "image unshared" 0L
        (Px86.Memimage.read cs.Px86.Crashstate.image ~addr ~size:8);
      check "origins unshared" true
        (Hashtbl.length cs.Px86.Crashstate.origins > 0);
      check "heap break unshared" true (cs.Px86.Crashstate.heap_break > 0)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)

let test_engine_stats () =
  let report, stats = Runner.model_check_run ~jobs:2 toy in
  check_int "one scenario per crash point" report.Report.executions
    stats.Engine.scenarios;
  check "explored executions counted" true
    (stats.Engine.executions >= stats.Engine.scenarios);
  check "ops counted" true (stats.Engine.ops > 0);
  check "worker time accumulated" true (stats.Engine.cpu_s >= 0.);
  check "elapsed measured" true (stats.Engine.elapsed_s >= 0.);
  check_int "domains clamped to batch" 2 stats.Engine.jobs;
  (* The timing-free projection is what determinism comparisons use:
     repeated runs agree on it even though cpu_s/elapsed_s differ. *)
  let _, stats' = Runner.model_check_run ~jobs:2 toy in
  check "structural stats reproducible" true
    (Engine.structural stats = Engine.structural stats')

let test_scenario_results_in_submission_order () =
  let options = Runner.default_options in
  let setup = Engine.materialize_setup ~options toy in
  let plans =
    [ Executor.Crash_before_flush 0; Executor.Crash_before_flush 1;
      Executor.Crash_at_end ]
  in
  let scenarios =
    List.map (fun plan -> Scenario.of_program ~setup ~plan ~options toy) plans
  in
  let a = Engine.run ~jobs:1 scenarios in
  let b = Engine.run ~jobs:3 scenarios in
  (* [Engine.signature] drops wall_s, the only field allowed to vary;
     everything else must match field for field, in submission order. *)
  let sig_of run = List.map Engine.signature run.Engine.results in
  check "same per-scenario results in same order" true (sig_of a = sig_of b)

let () =
  Alcotest.run "engine"
    [
      ( "determinism",
        [
          Alcotest.test_case "model-check: all registry benchmarks" `Slow
            test_model_check_determinism;
          Alcotest.test_case "recovery model-check" `Slow
            test_recovery_mc_determinism;
          Alcotest.test_case "random mode" `Quick test_random_mode_determinism;
          Alcotest.test_case "job-count clamping" `Quick test_job_count_clamping;
          Alcotest.test_case "Cut_random forces sequential" `Quick
            test_cut_random_forces_sequential;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "memoized setup never mutated" `Quick
            test_setup_snapshot_memoized;
          Alcotest.test_case "random-drain setup re-run" `Quick
            test_random_drain_setup_not_memoized;
          Alcotest.test_case "Crashstate.copy independence" `Quick
            test_crashstate_copy_independent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "engine stats" `Quick test_engine_stats;
          Alcotest.test_case "submission-order merge" `Quick
            test_scenario_results_in_submission_order;
        ] );
    ]
